package cruz_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"cruz"
	"cruz/internal/trace"
)

// tracedCycle runs the reference workload with tracing on: an slm ring,
// one coordinated checkpoint, a crash of every pod, and a coordinated
// restart. It returns both exporter outputs.
func tracedCycle(t *testing.T, seed int64, opts cruz.CheckpointOptions) (chrome, timeline []byte) {
	t.Helper()
	cl, err := cruz.New(cruz.Config{Nodes: 3, Seed: seed, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	names, job := deployRing(t, cl, 3)
	cl.Run(100 * cruz.Millisecond)
	res, err := cl.Checkpoint(job, opts)
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(50 * cruz.Millisecond)
	for _, name := range names {
		cl.Pod(name).Destroy()
	}
	if _, err := cl.Restart(job, res.Seq); err != nil {
		t.Fatal(err)
	}
	cl.Run(100 * cruz.Millisecond)

	tr := cl.Trace()
	if tr == nil {
		t.Fatal("Config.Trace did not attach a tracer")
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("%d spans still open after a settled run", n)
	}
	var cb, tb bytes.Buffer
	if err := trace.WriteChromeTrace(&cb, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTimeline(&tb, tr.Events()); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), tb.Bytes()
}

// TestTraceDeterminism is the tentpole's determinism guarantee: two runs
// with the same seed must produce byte-identical traces in both export
// formats.
func TestTraceDeterminism(t *testing.T) {
	c1, t1 := tracedCycle(t, 42, cruz.CheckpointOptions{})
	c2, t2 := tracedCycle(t, 42, cruz.CheckpointOptions{})
	if !bytes.Equal(c1, c2) {
		t.Error("same-seed runs produced different Chrome traces")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("same-seed runs produced different timelines")
	}
	// Guard against a vacuous pass: the trace must be substantial and
	// must cover every node. (Different seeds can legitimately produce
	// identical traces here — the rng only perturbs TCP initial sequence
	// numbers, which no trace point records.)
	if len(t1) < 2048 {
		t.Errorf("timeline suspiciously small (%d bytes):\n%s", len(t1), t1)
	}
	for _, node := range []string{"node0", "node1", "node2"} {
		if !bytes.Contains(t1, []byte(node)) {
			t.Errorf("timeline has no events for %s", node)
		}
	}
}

// TestTraceCheckpointPhases asserts the acceptance shape: the Chrome
// export is valid JSON and every node records the nested checkpoint
// phases quiesce -> drain -> capture -> write -> commit.
func TestTraceCheckpointPhases(t *testing.T) {
	chrome, _ := tracedCycle(t, 7, cruz.CheckpointOptions{})
	var ct struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Ts   float64
			Pid  int `json:"pid"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &ct); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	// Map pid -> node name from metadata, then collect phase begin times
	// per node.
	nodeOf := map[int]string{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			nodeOf[ev.Pid] = ev.Args["name"].(string)
		}
	}
	type stamp struct {
		name string
		ts   float64
	}
	begins := map[string][]stamp{}
	for _, ev := range ct.TraceEvents {
		if ev.Cat == "phase" && ev.Ph == "b" {
			node := nodeOf[ev.Pid]
			begins[node] = append(begins[node], stamp{ev.Name, ev.Ts})
		}
	}
	order := []string{"quiesce", "drain", "capture", "write", "commit"}
	for n := 0; n < 3; n++ {
		node := fmt.Sprintf("node%d", n)
		got := begins[node]
		// The checkpoint phases must appear once each, in protocol order,
		// before the restart phases (load/restore).
		i := 0
		for _, s := range got {
			if i < len(order) && s.name == order[i] {
				i++
			}
		}
		if i != len(order) {
			t.Errorf("%s: phase begins %v missing ordered %v", node, got, order)
		}
	}
}

// TestTracePrecopyDeterministicPhases: a pre-copy checkpoint cycle is as
// deterministic as the plain one — two same-seed runs export byte-identical
// traces — and every node records the new precopy-round and residual-stop
// phases (the quiesce phase is renamed when only the residual is frozen).
func TestTracePrecopyDeterministicPhases(t *testing.T) {
	opts := cruz.CheckpointOptions{
		Precopy: cruz.PrecopyConfig{MaxRounds: 2},
	}
	c1, t1 := tracedCycle(t, 42, opts)
	c2, t2 := tracedCycle(t, 42, opts)
	if !bytes.Equal(c1, c2) {
		t.Error("same-seed precopy runs produced different Chrome traces")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("same-seed precopy runs produced different timelines")
	}
	for _, phase := range []string{"precopy-round", "residual-stop"} {
		if !bytes.Contains(t1, []byte(phase)) {
			t.Errorf("timeline records no %q phase", phase)
		}
	}
	if bytes.Contains(t1, []byte("\tquiesce")) || bytes.Contains(t1, []byte(" quiesce")) {
		t.Error("precopy checkpoint still records a full quiesce phase")
	}
}

// TestTraceDisabledZeroEvents checks the off-by-default contract: without
// Config.Trace the cluster has no tracer and trace points are inert.
func TestTraceDisabledZeroEvents(t *testing.T) {
	cl, err := cruz.New(cruz.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Trace() != nil {
		t.Fatal("tracer attached without Config.Trace")
	}
	_, job := deployRing(t, cl, 2)
	cl.Run(50 * cruz.Millisecond)
	if _, err := cl.Checkpoint(job, cruz.CheckpointOptions{}); err != nil {
		t.Fatal(err)
	}
	if cl.Trace() != nil {
		t.Fatal("tracer appeared mid-run")
	}
}
