package cruz_test

import (
	"fmt"
	"testing"

	"cruz"
	"cruz/internal/apps/slm"
)

// ecCluster builds an auto-recovering cluster with 4+2 erasure-coded
// durability, deploys a 3-worker ring on nodes 0..2, and takes one
// deduplicated checkpoint, waiting until every pod's full shard set is
// registered with the coordinator.
func ecCluster(t *testing.T, seed int64) (*cruz.Cluster, []string, *cruz.Job, int) {
	t.Helper()
	ec, err := cruz.ParseECParams("4+2")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cruz.New(cruz.Config{
		Nodes: 8, Seed: seed, EC: ec, AutoRecover: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	names, job := deployRing(t, cl, 3)
	cl.Run(200 * cruz.Millisecond)
	res, err := cl.Checkpoint(job, cruz.CheckpointOptions{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	shards := ec.M + ec.R
	ok := cl.RunUntil(func() bool {
		for _, name := range names {
			if cl.Coordinator.KnownECShards(name, res.Seq) < shards {
				return false
			}
		}
		return true
	}, 30*cruz.Second)
	if !ok {
		t.Fatal("shard distribution never completed")
	}
	return cl, names, job, res.Seq
}

// runECRecoveryScenario kills one shard holder and then the node hosting
// a pod: with erasure coding no surviving node holds that pod's full
// image, so recovery must pull shard subsets from M live holders and
// reconstruct on the new home. The returned summary captures everything
// determinism should preserve.
func runECRecoveryScenario(t *testing.T, seed int64) string {
	t.Helper()
	cl, names, _, seq := ecCluster(t, seed)

	// Each pod-hosting primary ran one shard exchange per holder and no
	// full replication at all.
	for i := 0; i < 3; i++ {
		st := &cl.Nodes[i].Agent.Stats
		if st.ECDistributions != 6 || st.ECFailures != 0 {
			t.Fatalf("node %d: ECDistributions=%d ECFailures=%d, want 6/0", i, st.ECDistributions, st.ECFailures)
		}
		if st.ECShardBytes <= 0 {
			t.Fatalf("node %d moved no shard bytes", i)
		}
		if st.Replications != 0 {
			t.Fatalf("node %d fell back to replication (%d)", i, st.Replications)
		}
	}

	// Kill a shard holder that hosts no pods (node 4 holds one shard per
	// stripe of wb's set), wait for its lease to expire, then kill wb's
	// own node. Two losses = R; four of wb's six shard positions survive.
	cl.FailNode(4)
	cl.Run(600 * cruz.Millisecond)
	cl.FailNode(1)
	if !cl.AwaitRecovery(1, 30*cruz.Second) {
		t.Fatal("automatic recovery never completed")
	}
	if err := cl.RecoveryErr(); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	res := cl.Recoveries()[0]
	if res.FailedNode != "node1" || res.Seq != seq {
		t.Fatalf("recovered from %s seq %d, want node1 seq %d", res.FailedNode, res.Seq, seq)
	}
	if len(res.Pods) != 1 || res.Pods[0].Pod != names[1] {
		t.Fatalf("recovered pods: %+v", res.Pods)
	}
	rp := res.Pods[0]
	if !rp.Reconstructed || !rp.Transferred {
		t.Fatalf("expected a reconstructing transfer, got %+v", rp)
	}
	if res.Reconstruct <= 0 || res.Reconstruct > res.Transfer {
		t.Fatalf("reconstruct window %v outside transfer phase %v", res.Reconstruct, res.Transfer)
	}
	if res.TransferBytes <= 0 {
		t.Fatal("reconstruction moved no bytes")
	}
	if res.MTTR != res.Detect+res.Place+res.Transfer+res.Restart {
		t.Fatalf("MTTR %v is not the sum of its phases", res.MTTR)
	}
	target := cl.PodNode(names[1])
	if target == nil || target.Index == 1 || target.Index == 4 {
		t.Fatalf("pod re-homed to %+v", target)
	}
	if target.Agent.Stats.Reconstructs != 1 || target.Agent.Stats.ReconstructedChunks == 0 {
		t.Fatalf("target stats: %+v", target.Agent.Stats)
	}

	// The decoded state is the real checkpoint: the whole ring resumes
	// from seq* and keeps computing with no halo fault.
	before := make(map[string]int)
	for _, name := range names {
		before[name] = cl.Pod(name).Process(1).Program().(*slm.Worker).StepsDone
	}
	cl.Run(500 * cruz.Millisecond)
	for _, name := range names {
		w := cl.Pod(name).Process(1).Program().(*slm.Worker)
		if w.Fault != "" {
			t.Fatalf("pod %s fault after reconstruction: %q", name, w.Fault)
		}
		if w.StepsDone <= before[name] {
			t.Fatalf("pod %s stuck after reconstruction", name)
		}
	}
	for i, node := range cl.Nodes {
		if i == 1 || i == 4 {
			continue // dead nodes' agents are unreachable, not cleaned
		}
		if n := node.Agent.OpenOps(); n != 0 {
			t.Fatalf("agent %d leaked %d ops", i, n)
		}
	}
	if n := cl.Coordinator.OpenOps(); n != 0 {
		t.Fatalf("coordinator leaked %d ops", n)
	}
	return fmt.Sprintf("mttr=%v reconstruct=%v bytes=%d to=%s from=%s",
		res.MTTR, res.Reconstruct, res.TransferBytes, rp.To, rp.From)
}

// TestErasureCodedRecovery is the storage tier's tentpole check: with
// 4+2 striping instead of replication, a double node loss (the primary
// and a shard holder) still recovers automatically — the new home
// reconstructs the image from the four surviving shard subsets — and the
// whole scenario is deterministic per seed.
func TestErasureCodedRecovery(t *testing.T) {
	a := runECRecoveryScenario(t, 31)
	b := runECRecoveryScenario(t, 31)
	if a != b {
		t.Fatalf("scenario diverged:\n  %s\n  %s", a, b)
	}
}

// migrateUnderEC runs the standard wb→node3 pre-copy migration while a
// deduplicated checkpoint's durability distribution is still in flight
// (shard fan-out when ec is set, nothing when it is zero), and returns
// the migration result. The checkpoint is NOT awaited: the point is
// that its background traffic coexists with the migration stream.
func migrateUnderEC(t *testing.T, ec cruz.ECParams) *cruz.MigrationResult {
	t.Helper()
	cfg := cruz.Config{Nodes: 8, Seed: 19}
	if ec.Enabled() {
		cfg.EC = ec
	}
	cl, err := cruz.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names, job := deployRingCfg(t, cl, migrateSlm(3))
	cl.Run(300 * cruz.Millisecond)
	if _, err := cl.Checkpoint(job, cruz.CheckpointOptions{Dedup: true}); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Migrate(job, "wb", 3, cruz.MigrateOptions{
		Precopy: cruz.PrecopyConfig{MaxRounds: 6, DirtyThresholdPages: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(500 * cruz.Millisecond)
	for _, n := range names {
		w := ringWorker(cl, n)
		if w.Fault != "" || w.StepsDone == 0 {
			t.Fatalf("worker %s fault=%q steps=%d", n, w.Fault, w.StepsDone)
		}
	}
	return res
}

// TestECPacingDoesNotSlowMigration is the bandwidth-tier guarantee:
// shard distribution rides the background tier behind the token-bucket
// pacer, below the migration stream — so migrating while an EC fan-out
// is in flight must cost at most 5% in downtime and round time over a
// cluster with durability off entirely.
func TestECPacingDoesNotSlowMigration(t *testing.T) {
	ec, err := cruz.ParseECParams("4+2")
	if err != nil {
		t.Fatal(err)
	}
	under := migrateUnderEC(t, ec)
	plain := migrateUnderEC(t, cruz.ECParams{})
	if under.Downtime > plain.Downtime+plain.Downtime/20 {
		t.Fatalf("downtime regressed >5%% under EC traffic: %v vs %v", under.Downtime, plain.Downtime)
	}
	if under.Latency > plain.Latency+plain.Latency/20 {
		t.Fatalf("total migration time regressed >5%% under EC traffic: %v vs %v", under.Latency, plain.Latency)
	}
	if under.Rounds != plain.Rounds {
		t.Fatalf("pre-copy converged differently under EC traffic: %d rounds vs %d", under.Rounds, plain.Rounds)
	}
}

// TestECFallbackToReplication: a checkpoint that cannot stripe (no
// dedup) under an EC-configured cluster must fall back to R-way
// replication, preserving the survive-R-losses guarantee.
func TestECFallbackToReplication(t *testing.T) {
	ec, err := cruz.ParseECParams("4+2")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cruz.New(cruz.Config{Nodes: 8, Seed: 33, EC: ec, AutoRecover: true})
	if err != nil {
		t.Fatal(err)
	}
	names, job := deployRing(t, cl, 3)
	cl.Run(200 * cruz.Millisecond)
	res, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ok := cl.RunUntil(func() bool {
		for _, name := range names {
			// Commit holder + R fallback replicas.
			if cl.Coordinator.KnownHolders(name, res.Seq) < 1+ec.R {
				return false
			}
		}
		return true
	}, 30*cruz.Second)
	if !ok {
		t.Fatal("fallback replication never completed")
	}
	for i := 0; i < 3; i++ {
		st := &cl.Nodes[i].Agent.Stats
		if st.ECDistributions != 0 {
			t.Fatalf("node %d erasure-coded a non-dedup image", i)
		}
		if st.Replications != uint64(ec.R) {
			t.Fatalf("node %d: Replications=%d, want %d", i, st.Replications, ec.R)
		}
	}
}
