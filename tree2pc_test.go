package cruz_test

import (
	"bytes"
	"fmt"
	"testing"

	"cruz"
	"cruz/internal/apps/slm"
	"cruz/internal/coord"
	"cruz/internal/core"
	"cruz/internal/sim"
	"cruz/internal/trace"
)

// Hierarchical (two-level tree) coordination tests: the ISSUE's
// acceptance is equivalence — same commit/abort decisions as the flat
// fan-out under the same seed, byte-identical traces across same-seed
// tree runs — plus the O(√N) root message scaling that motivates the
// tree in the first place.

// lightSlm is a reduced workload for wide clusters: small grids keep
// the n=64 image writes cheap while still exercising every pod.
func lightSlm(workers int) slm.Config {
	return slm.Config{
		Workers:             workers,
		Steps:               0,
		TotalComputePerStep: 2 * sim.Millisecond,
		StepOverhead:        200 * sim.Microsecond,
		HaloBytes:           1 << 10,
		GridBytes:           64 << 10,
		DirtyPagesPerStep:   4,
		Port:                9300,
	}
}

// deployWideRing places one light slm worker pod per node, with
// zero-padded names so member order is stable and readable.
func deployWideRing(t testing.TB, cl *cruz.Cluster, n int) ([]string, *cruz.Job) {
	t.Helper()
	cfg := lightSlm(n)
	names := make([]string, n)
	ips := make([]cruz.Addr, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("w%03d", i)
		pod, err := cl.NewPod(i, names[i])
		if err != nil {
			t.Fatal(err)
		}
		ips[i] = pod.IP()
	}
	for i, name := range names {
		if _, err := cl.Pod(name).Spawn("slm", slm.NewWorker(cfg, i, ips[(i+1)%n])); err != nil {
			t.Fatal(err)
		}
	}
	job, err := cl.DefineJob("ring", names...)
	if err != nil {
		t.Fatal(err)
	}
	return names, job
}

// ckptCycle builds a cluster, runs one checkpoint + crash + restart
// cycle, and returns the results plus post-restart worker progress.
func ckptCycle(t *testing.T, n, groupSize int, seed int64, opts cruz.CheckpointOptions) (*cruz.CheckpointResult, *cruz.RestartResult, int) {
	t.Helper()
	cl, err := cruz.New(cruz.Config{Nodes: n, Seed: seed, GroupSize: groupSize})
	if err != nil {
		t.Fatal(err)
	}
	names, job := deployWideRing(t, cl, n)
	cl.Run(50 * cruz.Millisecond)
	res, err := cl.Checkpoint(job, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		cl.Pod(name).Destroy()
	}
	rres, err := cl.Restart(job, res.Seq)
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(100 * cruz.Millisecond)
	steps := cl.Pod(names[0]).Process(1).Program().(*slm.Worker).StepsDone
	for _, name := range names {
		if w := cl.Pod(name).Process(1).Program().(*slm.Worker); w.Fault != "" {
			t.Fatalf("pod %s faulted after restart: %q", name, w.Fault)
		}
	}
	return res, rres, steps
}

// TestTreeFlatEquivalence runs the identical seeded workload under the
// flat fan-out and the tree and demands the same protocol outcomes:
// same committed sequence, a working restart, and the same application
// progress afterwards. The root's message count must shrink under the
// tree — that is its entire point.
func TestTreeFlatEquivalence(t *testing.T) {
	const n = 8
	for _, opts := range []cruz.CheckpointOptions{
		{},
		{Optimized: true},
		{COW: true},
	} {
		flatRes, flatR, flatSteps := ckptCycle(t, n, 0, 11, opts)
		treeRes, treeR, treeSteps := ckptCycle(t, n, coord.GroupSizeFor(n), 11, opts)
		if flatRes.Seq != treeRes.Seq || flatR.Seq != treeR.Seq {
			t.Fatalf("opts %+v: committed seqs diverged: flat ckpt=%d restart=%d, tree ckpt=%d restart=%d",
				opts, flatRes.Seq, flatR.Seq, treeRes.Seq, treeR.Seq)
		}
		// The tree changes latencies (one extra hop), never decisions: the
		// restarted ring must make progress either way, but step counts at
		// a fixed virtual deadline may differ by the hop's worth of time.
		if flatSteps == 0 || treeSteps == 0 {
			t.Errorf("opts %+v: ring stuck after restart: flat %d steps, tree %d", opts, flatSteps, treeSteps)
		}
		if treeRes.Messages >= flatRes.Messages {
			t.Errorf("opts %+v: tree root messages %d not below flat %d", opts, treeRes.Messages, flatRes.Messages)
		}
	}
}

// TestTreeMessageScalingN64 pins the asymptotic claim at n=64: the flat
// root exchanges Θ(N) control messages per op, the tree root Θ(√N).
// With size-8 groups the root talks to 8 leaders instead of 64 members,
// so tree messages must come in under a quarter of flat.
func TestTreeMessageScalingN64(t *testing.T) {
	if testing.Short() {
		t.Skip("n=64 cluster in -short mode")
	}
	const n = 64
	flatRes, _, _ := ckptCycle(t, n, 0, 5, cruz.CheckpointOptions{})
	treeRes, _, _ := ckptCycle(t, n, coord.GroupSizeFor(n), 5, cruz.CheckpointOptions{})
	if flatRes.Seq != treeRes.Seq {
		t.Fatalf("committed seqs diverged at n=64: flat %d, tree %d", flatRes.Seq, treeRes.Seq)
	}
	if treeRes.Messages*4 > flatRes.Messages {
		t.Errorf("tree root messages %d, want < 1/4 of flat %d", treeRes.Messages, flatRes.Messages)
	}
}

// treeTracedCycle is the n=64 determinism probe: a full traced
// checkpoint + crash + restart cycle under the tree coordinator,
// returning both exporter outputs.
func treeTracedCycle(t *testing.T, seed int64) (chrome, timeline []byte) {
	t.Helper()
	const n = 64
	cl, err := cruz.New(cruz.Config{
		Nodes: n, Seed: seed, Trace: true,
		GroupSize: coord.GroupSizeFor(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	names, job := deployWideRing(t, cl, n)
	cl.Run(30 * cruz.Millisecond)
	res, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		cl.Pod(name).Destroy()
	}
	if _, err := cl.Restart(job, res.Seq); err != nil {
		t.Fatal(err)
	}
	cl.Run(30 * cruz.Millisecond)
	tr := cl.Trace()
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("%d spans still open after a settled tree run", n)
	}
	var cb, tb bytes.Buffer
	if err := trace.WriteChromeTrace(&cb, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTimeline(&tb, tr.Events()); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), tb.Bytes()
}

// TestTreeTraceDeterminismN64: two fresh same-seed clusters at n=64
// under the tree coordinator export byte-identical traces, and those
// traces actually contain the relay layer.
func TestTreeTraceDeterminismN64(t *testing.T) {
	if testing.Short() {
		t.Skip("n=64 traced cluster in -short mode")
	}
	c1, t1 := treeTracedCycle(t, 42)
	c2, t2 := treeTracedCycle(t, 42)
	if !bytes.Equal(c1, c2) {
		t.Error("same-seed n=64 tree runs produced different Chrome traces")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("same-seed n=64 tree runs produced different timelines")
	}
	for _, span := range []string{"relay.checkpoint", "relay.restart"} {
		if !bytes.Contains(t1, []byte(span)) {
			t.Errorf("tree timeline records no %q span", span)
		}
	}
}

// abortDecision drives a checkpoint asynchronously, kills a node
// mid-2PC, and reports whether the op committed and with what error.
func abortDecision(t *testing.T, groupSize, killNode int) (committed bool, err error) {
	t.Helper()
	const n = 8
	// A short op timeout bounds how long either coordinator waits on the
	// silenced node; the decision (abort) must not depend on the topology.
	params := core.DefaultCoordinatorParams()
	params.Timeout = 2 * cruz.Second
	cl, cerr := cruz.New(cruz.Config{
		Nodes: n, Seed: 3, GroupSize: groupSize,
		Coordinator: params,
	})
	if cerr != nil {
		t.Fatal(cerr)
	}
	_, job := deployWideRing(t, cl, n)
	cl.Run(50 * cruz.Millisecond)
	fired := false
	cl.Coordinator.Checkpoint(job, cruz.CheckpointOptions{}, func(r *cruz.CheckpointResult, cbErr error) {
		committed, err, fired = cbErr == nil, cbErr, true
	})
	// Let the fan-out reach the agents, then yank a machine mid-protocol.
	cl.Run(2 * cruz.Millisecond)
	cl.FailNode(killNode)
	if !cl.RunUntil(func() bool { return fired }, 30*cruz.Second) {
		t.Fatal("checkpoint never resolved after mid-2PC node kill")
	}
	return committed, err
}

// TestTreeFlatAbortEquivalence injects a node kill mid-2PC and demands
// the same decision from both coordinators: abort. Killing a group
// *leader* is the interesting tree case — the root must still abort
// (leader silence trips the op timeout exactly as member silence does
// flat), not hang or half-commit.
func TestTreeFlatAbortEquivalence(t *testing.T) {
	size := coord.GroupSizeFor(8) // 3 → groups {0,1,2},{3,4,5},{6,7}; leaders 0,3,6
	cases := []struct {
		name      string
		groupSize int
		kill      int
	}{
		{"flat/member", 0, 4},
		{"tree/member", size, 4}, // mid-group member of group 1
		{"tree/leader", size, 3}, // leader of group 1
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			committed, err := abortDecision(t, tc.groupSize, tc.kill)
			if committed {
				t.Fatalf("%s: checkpoint committed despite killing node %d mid-2PC", tc.name, tc.kill)
			}
			if err == nil {
				t.Fatalf("%s: no error surfaced for the aborted op", tc.name)
			}
		})
	}
}
