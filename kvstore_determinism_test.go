package cruz_test

import (
	"bytes"
	"testing"

	"cruz"
	"cruz/internal/apps/kvstore"
	"cruz/internal/trace"
)

// multiClientKV runs one kvstore server pod with several concurrent
// clients and returns the timeline export plus per-client op counts.
//
// Regression test for a maporder finding: Server.Step used to sweep
// its Clients map with a raw range, so the order of Recv/Send syscalls
// — and therefore every downstream TCP event and trace record — could
// differ between two runs of the same seed once more than one client
// was connected. The sweep now iterates FDs in sorted order.
func multiClientKV(t *testing.T, seed int64, nclients int) ([]byte, []uint64) {
	t.Helper()
	cl, err := cruz.New(cruz.Config{Nodes: 2, Seed: seed, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	pod, err := cl.NewPod(0, "db")
	if err != nil {
		t.Fatal(err)
	}
	pod.Spawn("kvd", kvstore.NewServer(0))
	clients := make([]*kvstore.Client, nclients)
	for i := range clients {
		c := kvstore.NewClient(cruz.AddrPort{Addr: pod.IP(), Port: kvstore.DefaultPort})
		// Distinct think times keep the sessions interleaved rather
		// than lock-stepped, which is what exposed the map-order bug.
		c.Think = cruz.Duration(50+17*i) * cruz.Microsecond
		clients[i] = c
		cl.Service.Kernel.Spawn("kvc", c, 0)
	}
	cl.Run(200 * cruz.Millisecond)

	done := make([]uint64, nclients)
	total := uint64(0)
	for i, c := range clients {
		if c.Fault != "" {
			t.Fatalf("client %d faulted: %s", i, c.Fault)
		}
		done[i] = c.Done
		total += c.Done
	}
	if total == 0 {
		t.Fatal("no client completed any ops; the scenario is vacuous")
	}
	var tb bytes.Buffer
	if err := trace.WriteTimeline(&tb, cl.Trace().Events()); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), done
}

// TestKVStoreMultiClientDeterminism asserts that the multi-client
// kvstore path is a pure function of the seed: byte-identical traces
// and identical per-client progress across two runs.
func TestKVStoreMultiClientDeterminism(t *testing.T) {
	t1, d1 := multiClientKV(t, 7, 3)
	t2, d2 := multiClientKV(t, 7, 3)
	if !bytes.Equal(t1, t2) {
		t.Error("same-seed multi-client kvstore runs produced different timelines")
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Errorf("client %d completed %d ops in run 1 but %d in run 2", i, d1[i], d2[i])
		}
	}
}
