package cruz_test

import (
	"fmt"
	"testing"

	"cruz"
	"cruz/internal/apps/kvstore"
	"cruz/internal/apps/slm"
	"cruz/internal/apps/stream"
	"cruz/internal/batch"
	"cruz/internal/ckpt"
	"cruz/internal/sim"
)

func init() {
	cruz.RegisterProgram(&kvstore.Server{})
	cruz.RegisterProgram(&kvstore.Client{})
	cruz.RegisterProgram(&stream.Sender{})
	cruz.RegisterProgram(&stream.Receiver{})
}

// TestSoakMixedWorkloads runs the whole system at once, the way a real
// cluster would be used: an slm job under the batch scheduler with
// periodic optimized checkpoints, a kvstore service with an external
// client, and a TCP stream — all sharing the network — while the kvstore
// pod migrates between nodes and the slm job crashes and recovers. Every
// application carries its own integrity checks (sequence counters, value
// verification, byte-position stamps); the test asserts none of them ever
// trips.
func TestSoakMixedWorkloads(t *testing.T) {
	cl, err := cruz.New(cruz.Config{Nodes: 4, Seed: 2026})
	if err != nil {
		t.Fatal(err)
	}
	sched := batch.New(cl)

	// 1. slm job on all four nodes, checkpointing every second.
	cfg := slm.Config{
		Workers:             4,
		Steps:               0,
		TotalComputePerStep: 40 * sim.Millisecond,
		StepOverhead:        4 * sim.Millisecond,
		HaloBytes:           16 << 10,
		GridBytes:           2 << 20,
		DirtyPagesPerStep:   32,
		Port:                9200,
	}
	job, err := sched.Submit(batch.JobSpec{
		Name:            "wx",
		Tasks:           4,
		CheckpointEvery: cruz.Second,
		Optimized:       true,
		Make: func(rank, n int, ips []cruz.Addr) cruz.Program {
			return slm.NewWorker(cfg, rank, ips[(rank+1)%n])
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// 2. kvstore service in a pod on node 0 with a native client on the
	// service node.
	dbPod, err := cl.NewPod(0, "db")
	if err != nil {
		t.Fatal(err)
	}
	dbPod.Spawn("kvd", kvstore.NewServer(0))
	kvc := kvstore.NewClient(cruz.AddrPort{Addr: dbPod.IP(), Port: kvstore.DefaultPort})
	cl.Service.Kernel.Spawn("kvc", kvc, 0)

	// 3. TCP stream between pods on nodes 2 and 3.
	rp, err := cl.NewPod(2, "s-recv")
	if err != nil {
		t.Fatal(err)
	}
	recv := stream.NewReceiver(0)
	rp.Spawn("recv", recv)
	sp, err := cl.NewPod(3, "s-send")
	if err != nil {
		t.Fatal(err)
	}
	sp.Spawn("send", stream.NewSender(cruz.AddrPort{Addr: rp.IP(), Port: stream.DefaultPort}))

	slmWorker := func(i int) *slm.Worker {
		p := cl.Pod(fmt.Sprintf("wx-%d", i))
		if p == nil || p.Process(1) == nil {
			t.Fatalf("wx-%d missing", i)
		}
		return p.Process(1).Program().(*slm.Worker)
	}
	healthy := func(when string) {
		t.Helper()
		for i := 0; i < 4; i++ {
			if f := slmWorker(i).Fault; f != "" {
				t.Fatalf("%s: slm %d fault: %s", when, i, f)
			}
		}
		if kvc.Fault != "" {
			t.Fatalf("%s: kv client fault: %s", when, kvc.Fault)
		}
		r := cl.Pod("s-recv").Process(1).Program().(*stream.Receiver)
		if r.Fault != "" {
			t.Fatalf("%s: stream fault: %s", when, r.Fault)
		}
	}

	cl.Run(2 * cruz.Second)
	healthy("warmup")
	kvOps := kvc.Done
	streamBytes := cl.Pod("s-recv").Process(1).Program().(*stream.Receiver).Received
	if kvOps == 0 || streamBytes == 0 || slmWorker(0).StepsDone == 0 {
		t.Fatalf("workloads idle: kv=%d stream=%d slm=%d", kvOps, streamBytes, slmWorker(0).StepsDone)
	}

	// Migrate the kvstore pod from node 0 to node 1 while everything
	// else keeps running.
	{
		pod := cl.Pod("db")
		f := pod.Kernel().Stack().Filter()
		rule := f.AddDropAddr(pod.IP())
		stopped := false
		pod.Stop(func() { stopped = true })
		if !cl.RunUntil(func() bool { return stopped }, cruz.Second) {
			t.Fatal("db pod did not quiesce")
		}
		img, cerr := ckpt.Capture(pod, 1, ckpt.Options{})
		if cerr != nil {
			t.Fatal(cerr)
		}
		pod.Destroy()
		f.RemoveRule(rule)
		pod2, rerr := ckpt.Restore(cl.Nodes[1].Kernel, img)
		if rerr != nil {
			t.Fatal(rerr)
		}
		pod2.Resume()
		cl.Nodes[1].Agent.Manage(pod2)
		cl.MovePod("db", 1)
	}
	cl.Run(2 * cruz.Second)
	healthy("after db migration")
	if kvc.Done <= kvOps {
		t.Fatal("kv client stalled after migration")
	}

	// Crash the slm job and recover it from its periodic checkpoints —
	// under the still-running stream and kvstore traffic.
	if job.Checkpoints == 0 {
		t.Fatal("no periodic checkpoints before crash")
	}
	for i := 0; i < 4; i++ {
		cl.Pod(fmt.Sprintf("wx-%d", i)).Destroy()
	}
	if err := job.RecoverFromCrash(); err != nil {
		t.Fatal(err)
	}
	cl.Run(2 * cruz.Second)
	healthy("after slm recovery")

	// Final accounting: everything kept moving.
	finalRecv := cl.Pod("s-recv").Process(1).Program().(*stream.Receiver)
	if finalRecv.Received <= streamBytes {
		t.Fatal("stream stalled across the soak")
	}
	if got := slmWorker(0).StepsDone; got == 0 {
		t.Fatalf("slm at step %d after recovery", got)
	}
	// At most one periodic attempt may have failed: the one the crash
	// interrupted (it aborts cleanly). Anything more is a protocol bug.
	if job.CheckpointErrs > 1 {
		t.Fatalf("periodic checkpoint errors: %d", job.CheckpointErrs)
	}
	t.Logf("soak: kv ops=%d, stream=%d MB, slm steps=%d, checkpoints=%d",
		kvc.Done, finalRecv.Received>>20, slmWorker(0).StepsDone, job.Checkpoints)
}
