package cruz_test

import (
	"bytes"
	"testing"

	"cruz"
	"cruz/internal/trace/critpath"
)

// tracedRecovery runs one traced kill-and-recover episode and returns the
// rendered recovery span tree, its critical-path report, and the
// lease-expiry flight dump — the three artifacts the tentpole promises are
// causally linked and deterministic — plus the recovery result MTTR.
func tracedRecovery(t *testing.T, seed int64) (tree, report, dump string, mttrMs float64) {
	t.Helper()
	cl, _, _ := replicatedCluster(t, cruz.Config{
		Nodes: 3, Spares: 1, Seed: seed, Replicas: 1, AutoRecover: true,
		Trace: true, TraceCapacity: 1 << 17,
	}, 3)
	cl.FailNode(1)
	if !cl.AwaitRecovery(1, 10*cruz.Second) {
		t.Fatal("automatic recovery never completed")
	}
	if err := cl.RecoveryErr(); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}

	tr := cl.Trace()
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("%d spans still open after recovery: %v", n, tr.OpenSpanNames())
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("trace ring overflowed (%d events dropped)", d)
	}

	rt := critpath.FindRoot(critpath.BuildTrees(tr.Events()), "recovery")
	if rt == nil {
		t.Fatal("no recovery op in the trace")
	}
	// One causally-linked tree: the coordinator's root plus spans adopted
	// by at least two other machines, with nothing orphaned.
	if len(rt.Nodes) < 3 {
		t.Fatalf("recovery tree spans only %v, want coordinator + >=2 agents", rt.Nodes)
	}
	if len(rt.Orphans) != 0 {
		t.Fatalf("%d spans lost their parent link", len(rt.Orphans))
	}
	rep := critpath.Analyze(rt)
	if rep == nil {
		t.Fatal("recovery root span never ended")
	}

	// The phase decomposition must re-derive the MTTR the recovery result
	// reports, within 1%.
	res := cl.Recoveries()[0]
	mttrMs = res.MTTR.Milliseconds()
	var sum float64
	for _, s := range rep.Phases {
		sum += s.Ms
	}
	if diff := sum - mttrMs; diff > mttrMs/100 || diff < -mttrMs/100 {
		t.Fatalf("critical-path phase sum %.3f ms vs MTTR %.3f ms: off by more than 1%%", sum, mttrMs)
	}

	// The lease expiry must have auto-dumped the flight recorder with a
	// non-empty pre-trigger window.
	for _, d := range tr.FlightDumps() {
		if d.Trigger == "lease.expiry" {
			if len(d.Events) == 0 {
				t.Fatal("lease-expiry flight dump is empty")
			}
			if d.Reason != "node node1" {
				t.Fatalf("flight dump reason = %q, want %q", d.Reason, "node node1")
			}
			return rt.Format(), rep.Format(), d.Format(), mttrMs
		}
	}
	t.Fatal("lease expiry produced no flight dump")
	return "", "", "", 0
}

// TestRecoveryTraceCausalTree is the acceptance check for the tentpole:
// a kill-and-recover episode renders as a single causally-linked span
// tree across coordinator and agents, its critical path explains the
// MTTR, the flight recorder preserved the window before the lease
// expiry — and all three artifacts are byte-identical across same-seed
// re-runs.
func TestRecoveryTraceCausalTree(t *testing.T) {
	tree1, rep1, dump1, mttr1 := tracedRecovery(t, 11)
	tree2, rep2, dump2, mttr2 := tracedRecovery(t, 11)
	if tree1 != tree2 {
		t.Error("same-seed recovery runs rendered different span trees")
	}
	if rep1 != rep2 {
		t.Error("same-seed recovery runs rendered different critical paths")
	}
	if dump1 != dump2 {
		t.Error("same-seed recovery runs rendered different flight dumps")
	}
	if mttr1 != mttr2 {
		t.Errorf("same-seed recovery MTTR differs: %.3f vs %.3f ms", mttr1, mttr2)
	}
	// Guard against a vacuous pass.
	if len(tree1) < 256 || len(dump1) < 256 {
		t.Fatalf("suspiciously small artifacts: tree %dB dump %dB", len(tree1), len(dump1))
	}
}

// TestChromeGoldenDeterminismTwoSeeds pins the Chrome exporter's golden
// property for make check: for each seed, two runs export byte-identical
// JSON, and the two seeds both produce substantial traces.
func TestChromeGoldenDeterminismTwoSeeds(t *testing.T) {
	for _, seed := range []int64{3, 9} {
		a, _ := tracedCycle(t, seed, cruz.CheckpointOptions{})
		b, _ := tracedCycle(t, seed, cruz.CheckpointOptions{})
		if !bytes.Equal(a, b) {
			t.Errorf("seed %d: same-seed runs exported different Chrome traces", seed)
		}
		if len(a) < 4096 {
			t.Errorf("seed %d: Chrome trace suspiciously small (%d bytes)", seed, len(a))
		}
	}
}
