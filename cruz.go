// Package cruz is the public API of the Cruz reproduction: a simulated
// cluster on which distributed applications run inside Zap pods and are
// checkpointed, restarted, and migrated by the Cruz coordinated protocol
// (Janakiraman, Santos, Subhraveti, Turner — DSN 2005).
//
// A Cluster bundles the discrete-event engine, the Ethernet fabric, one
// simulated node (kernel + TCP/IP stack + checkpoint agent + image store)
// per machine, a service node hosting the Checkpoint Coordinator, and
// helpers that drive the event loop until asynchronous operations finish.
//
// Quick start:
//
//	cl, _ := cruz.New(cruz.Config{Nodes: 4})
//	pod, _ := cl.NewPod(0, "db")
//	pod.Spawn("server", myProgram) // any kernel.Program
//	job := cl.DefineJob("myjob", "db")
//	res, _ := cl.Checkpoint(job, cruz.CheckpointOptions{})
//
// See examples/ for complete programs and DESIGN.md for the mapping from
// the paper's systems and experiments to packages in this repository.
package cruz

import (
	"errors"
	"fmt"

	"cruz/internal/ckpt"
	"cruz/internal/core"
	"cruz/internal/ether"
	"cruz/internal/flush"
	"cruz/internal/kernel"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/trace"
	"cruz/internal/zap"
)

// Re-exported types: the facade keeps user code to one import for the
// common workflow.
type (
	// Job names a distributed application managed as a unit.
	Job = core.Job
	// Member binds one pod to the agent managing it.
	Member = core.Member
	// CheckpointOptions selects the protocol variant.
	CheckpointOptions = core.CheckpointOptions
	// PrecopyConfig enables pre-copy rounds (CheckpointOptions.Precopy):
	// the image streams while the pod runs; only the residual dirty set
	// is saved under SIGSTOP.
	PrecopyConfig = core.PrecopyConfig
	// CheckpointResult reports a coordinated checkpoint's measurements.
	CheckpointResult = core.CheckpointResult
	// RestartResult reports a coordinated restart's measurements.
	RestartResult = core.RestartResult
	// RecoveryResult reports one automatic recovery with its MTTR split
	// into detect/place/transfer/restart phases.
	RecoveryResult = core.RecoveryResult
	// RecoveredPod describes where one failed pod was re-homed.
	RecoveredPod = core.RecoveredPod
	// MigrateOptions tunes one live migration (pre-copy rounds, dedup,
	// pipelined saves).
	MigrateOptions = core.MigrateOptions
	// MigrationResult reports one live migration: rounds, convergence
	// curve, bytes streamed, and the freeze-to-resume downtime.
	MigrationResult = core.MigrationResult
	// Pod is a Zap PrOcess Domain.
	Pod = zap.Pod
	// Program is the state-machine interface application code implements.
	Program = kernel.Program
	// Duration and Time are virtual-time units.
	Duration = sim.Duration
	// Time is a point in virtual time.
	Time = sim.Time
	// Addr is an IPv4 address on the simulated network.
	Addr = tcpip.Addr
	// AddrPort is an address-port endpoint.
	AddrPort = tcpip.AddrPort
	// ECParams selects Reed-Solomon erasure coding for checkpoint
	// durability: M data + R parity shards per stripe (see Config.EC).
	ECParams = ckpt.ECParams
)

// ParseECParams parses an "m+r" string (e.g. "4+2") into ECParams.
func ParseECParams(s string) (ECParams, error) { return ckpt.ParseECParams(s) }

// Common virtual durations, re-exported for callers of Run.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// DefaultBackgroundBPS is the token-bucket rate applied to background
// durability traffic (replica streams, EC shard pushes) when Config.EC
// is enabled and Agent.BackgroundBPS is unset: half a gigabit link, so
// checkpoint distribution leaves headroom for foreground rounds.
const DefaultBackgroundBPS int64 = 64 << 20

// RegisterProgram must be called for every concrete Program type that
// will be checkpointed (usually from an init function).
func RegisterProgram(p Program) { ckpt.RegisterProgram(p) }

// Config describes the cluster to build.
type Config struct {
	// Nodes is the number of application machines (a service machine for
	// the coordinator is added automatically).
	Nodes int
	// Seed drives all simulation randomness; runs are reproducible per
	// seed. Zero means 1.
	Seed int64
	// Kernel overrides node hardware parameters (zero value = defaults:
	// 2 CPUs, 110 MB/s disk).
	Kernel kernel.Params
	// Link overrides the Ethernet links (zero value = gigabit).
	Link ether.LinkConfig
	// Agent and Coordinator override daemon cost models.
	Agent       core.AgentParams
	Coordinator core.CoordinatorParams
	// GroupSize enables hierarchical (two-level tree) coordination: the
	// coordinator partitions each job into groups of this size and talks
	// to one deterministic leader per group, which relays to its members
	// and batches their replies — O(N/GroupSize) root messages per
	// protocol phase instead of O(N). 0 or 1 keeps the flat fan-out. A
	// good value is ⌈√N⌉ for N-pod jobs; commit/abort decisions are
	// identical either way. Shorthand for Coordinator.GroupSize.
	GroupSize int
	// AutoCompact, when > 0, makes every node's store fold a pod's
	// incremental manifest chain into a synthetic full manifest (freeing
	// unreferenced chunks) once the chain exceeds this many deduplicated
	// checkpoints. Only affects Dedup checkpoints.
	AutoCompact int
	// Replicas is the default number of peer nodes each committed
	// checkpoint image is streamed to (CheckpointOptions.Replicas
	// overrides per call). With at least one replica, a failed node's
	// pods can restart elsewhere with no manual CopyImages.
	Replicas int
	// EC switches checkpoint durability from whole-image replication to
	// Reed-Solomon erasure coding: each dedup checkpoint's chunks are
	// striped into groups of EC.M data shards, EC.R parity shards are
	// computed, and each of the first M+R ring peers stores one shard per
	// stripe (rotated placement) — the image survives any R node losses
	// for (M+R)/M× storage instead of (1+R)×. Requires Dedup checkpoints
	// and at least M+R peers; otherwise the agent falls back to R-way
	// replication. Recovery reconstructs from any M live holders when no
	// full copy survives. Zero value disables EC.
	EC ECParams
	// AutoRecover puts every job defined with DefineJob under the
	// coordinator's heartbeat/lease failure detector: a detected node
	// failure automatically restarts affected jobs from the newest
	// checkpoint with surviving replicas. Results arrive via
	// Recoveries / AwaitRecovery.
	AutoRecover bool
	// Spares adds this many standby nodes that host no pods but are
	// registered with the coordinator as recovery targets. They follow
	// the application nodes in Cluster.Nodes.
	Spares int
	// FlushBaseline also starts a CoCheck-style flushing agent on every
	// node and a flushing coordinator, for comparison experiments.
	FlushBaseline bool
	// Trace enables the deterministic tracing subsystem (internal/trace):
	// spans, instants, and counters from every layer, exportable as a
	// timeline or Chrome trace JSON via Cluster.Trace(). Off by default;
	// when off there is zero overhead beyond a nil check at trace points.
	Trace bool
	// TraceCapacity bounds the tracer's event ring buffer (0 = default).
	TraceCapacity int
	// Flight tunes the always-on flight recorder (zero value = defaults).
	// The recorder runs whether or not Trace is set: a bounded per-node
	// ring of recent events is kept and snapshotted on faults (op abort,
	// lease expiry, recovery start) via Cluster.FlightRecorder().
	Flight trace.FlightConfig
}

// Node is one simulated machine.
type Node struct {
	Index      int
	Spare      bool // standby recovery target, hosts no pods initially
	Kernel     *kernel.Kernel
	NIC        *ether.NIC
	Agent      *core.Agent
	FlushAgent *flush.Agent
	Store      *ckpt.Store
}

// Addr returns the node's physical IP address.
func (n *Node) Addr() Addr { return nodeAddr(n.Index) }

// nodeAddr maps a node index to its physical IP. The first 255 nodes
// keep the historical 10.0.0.x addresses (so small-cluster traces stay
// byte-identical); larger clusters spill into 10.0.(200+k).x, well clear
// of the pod subnets at 10.0.(1+k).x.
func nodeAddr(i int) Addr {
	n := i + 1
	if n <= 255 {
		return Addr{10, 0, 0, byte(n)}
	}
	return Addr{10, 0, byte(200 + n>>8), byte(n)}
}

// nodeMAC maps a node index to its NIC MAC, widening into the fifth
// byte (zero for the first 255 nodes, preserving historical addresses).
func nodeMAC(i int) ether.MAC {
	n := i + 1
	return ether.MAC{0x02, 0, 0, 0, byte(n >> 8), byte(n)}
}

// podNet maps a pod id (1-based creation order) to its externally
// routable IP and VIF MAC. The first 255 pods keep the historical
// 10.0.1.x addresses; later pods spill into 10.0.(1+k).x.
func podNet(id int) (Addr, ether.MAC) {
	return Addr{10, 0, byte(1 + id>>8), byte(id)},
		ether.MAC{0x02, 0, 0, 1, byte(id >> 8), byte(id)}
}

// Cluster is a complete simulated deployment.
type Cluster struct {
	Engine           *sim.Engine
	Switch           *ether.Switch
	Nodes            []*Node
	Service          *Node // hosts the coordinator (and any native daemons)
	Coordinator      *core.Coordinator
	FlushCoordinator *flush.Coordinator

	cfg          Config
	tracer       *trace.Tracer
	flight       *trace.Tracer // flight-only recorder when Trace is off
	pods         map[string]podRef
	podCount     int
	nodeByAddr   map[AddrPort]*Node
	recoveries   []*RecoveryResult
	recoveryErrs []error
}

// Trace returns the cluster's tracer, or nil when Config.Trace was false.
// The nil tracer is safe to pass around; use internal/trace exporters on
// its Events() to render timelines or Chrome trace JSON.
func (cl *Cluster) Trace() *trace.Tracer { return cl.tracer }

// FlightRecorder returns the tracer holding the always-on flight
// recorder: the full tracer when Config.Trace was set, otherwise the
// flight-only recorder (never nil). Faults — op aborts, lease expiries,
// recovery starts — snapshot the recent event window; read the dumps with
// FlightDumps on the returned tracer.
func (cl *Cluster) FlightRecorder() *trace.Tracer {
	if cl.tracer != nil {
		return cl.tracer
	}
	return cl.flight
}

type podRef struct {
	pod  *zap.Pod
	node *Node
}

// ErrUnknownPod is returned when a job references a pod the cluster never
// created.
var ErrUnknownPod = errors.New("cruz: unknown pod")

// New builds a cluster per cfg.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Kernel.NumCPUs == 0 {
		cfg.Kernel = kernel.DefaultParams()
	}
	if cfg.Link.BandwidthBPS == 0 {
		cfg.Link = ether.GigabitLink
	}
	if cfg.Agent.MsgCost == 0 {
		cfg.Agent = core.DefaultAgentParams()
	}
	if cfg.Coordinator.MsgCost == 0 {
		cfg.Coordinator = core.DefaultCoordinatorParams()
	}
	if cfg.EC.Enabled() {
		if err := cfg.EC.Validate(); err != nil {
			return nil, err
		}
		if cfg.Agent.BackgroundBPS == 0 {
			// EC distribution is background traffic; pace it by default so
			// shard pushes cannot starve foreground protocol rounds.
			cfg.Agent.BackgroundBPS = DefaultBackgroundBPS
		}
	}
	if cfg.GroupSize != 0 {
		cfg.Coordinator.GroupSize = cfg.GroupSize
	}
	cl := &Cluster{
		Engine:     sim.NewEngine(cfg.Seed),
		cfg:        cfg,
		pods:       make(map[string]podRef),
		nodeByAddr: make(map[AddrPort]*Node),
	}
	if cfg.Trace {
		// Attach before any component is built: constructors snapshot the
		// engine's trace sink.
		cl.tracer = trace.New(cl.Engine, trace.Config{Capacity: cfg.TraceCapacity, Flight: cfg.Flight})
	} else {
		// The flight recorder is always on: a flight-only tracer keeps the
		// bounded per-node rings (no main event ring, no engine sampling)
		// so faults still yield a pre-trigger window in untraced runs.
		cl.flight = trace.New(cl.Engine, trace.Config{FlightOnly: true, SampleEvery: -1, Flight: cfg.Flight})
	}
	cl.Switch = ether.NewSwitch(cl.Engine)

	mkNode := func(i int) (*Node, error) {
		mac := nodeMAC(i)
		nic := ether.NewNIC(cl.Engine, fmt.Sprintf("node%d/eth0", i), mac)
		cl.Switch.Attach(nic, cfg.Link)
		st := tcpip.NewStack(cl.Engine, fmt.Sprintf("node%d", i))
		if _, err := st.AddInterface("eth0", nodeAddr(i), mac, nic, false); err != nil {
			return nil, err
		}
		k := kernel.New(cl.Engine, fmt.Sprintf("node%d", i), cfg.Kernel, st)
		store := ckpt.NewStore(k.Disk())
		store.SetAutoCompact(cfg.AutoCompact)
		return &Node{Index: i, Kernel: k, NIC: nic, Store: store}, nil
	}

	for i := 0; i < cfg.Nodes+cfg.Spares; i++ {
		n, err := mkNode(i)
		if err != nil {
			return nil, err
		}
		n.Spare = i >= cfg.Nodes
		agent, err := core.NewAgent(n.Kernel, n.Store, cfg.Agent)
		if err != nil {
			return nil, err
		}
		if cfg.EC.Enabled() {
			agent.SetEC(cfg.EC)
		}
		n.Agent = agent
		if cfg.FlushBaseline {
			fa, ferr := flush.NewAgent(n.Kernel, n.Store, flush.DefaultAgentParams())
			if ferr != nil {
				return nil, ferr
			}
			n.FlushAgent = fa
		}
		cl.Nodes = append(cl.Nodes, n)
		cl.nodeByAddr[agent.Addr()] = n
	}
	// Replication ring over every agent node (spares included): node i
	// pushes to i+1, i+2, ... — so k replicas survive any k node losses.
	total := len(cl.Nodes)
	for i, n := range cl.Nodes {
		peers := make([]AddrPort, 0, total-1)
		for j := 1; j < total; j++ {
			peers = append(peers, cl.Nodes[(i+j)%total].Agent.Addr())
		}
		n.Agent.SetPeers(peers)
	}
	svc, err := mkNode(cfg.Nodes + cfg.Spares)
	if err != nil {
		return nil, err
	}
	cl.Service = svc
	cl.Coordinator = core.NewCoordinator(svc.Kernel.Stack(), cfg.Coordinator)
	for _, n := range cl.Nodes {
		cl.Coordinator.RegisterNode(n.Kernel.Name(), n.Agent.Addr(), n.Spare)
	}
	if cfg.FlushBaseline {
		cl.FlushCoordinator = flush.NewCoordinator(svc.Kernel.Stack())
	}
	return cl, nil
}

// Run advances virtual time by d.
func (cl *Cluster) Run(d Duration) {
	// RunFor only errors when Stop is called, which the facade never does.
	_ = cl.Engine.RunFor(d)
}

// RunUntil advances time in small slices until cond holds or max time
// elapses, reporting whether cond held.
func (cl *Cluster) RunUntil(cond func() bool, max Duration) bool {
	const slice = 5 * sim.Millisecond
	for waited := Duration(0); waited < max; waited += slice {
		if cond() {
			return true
		}
		cl.Run(slice)
	}
	return cond()
}

// NewPod creates a pod on node with an automatically assigned externally
// routable IP (10.0.1.x) and VIF MAC, and registers it with the node's
// agents.
func (cl *Cluster) NewPod(node int, name string) (*Pod, error) {
	if node < 0 || node >= len(cl.Nodes) {
		return nil, fmt.Errorf("cruz: no node %d", node)
	}
	if _, dup := cl.pods[name]; dup {
		return nil, fmt.Errorf("cruz: pod %q already exists", name)
	}
	cl.podCount++
	ip, mac := podNet(cl.podCount)
	n := cl.Nodes[node]
	pod, err := zap.New(n.Kernel, name, zap.NetConfig{IP: ip, MAC: mac})
	if err != nil {
		return nil, err
	}
	n.Agent.Manage(pod)
	if n.FlushAgent != nil {
		n.FlushAgent.Manage(pod)
	}
	cl.pods[name] = podRef{pod: pod, node: n}
	return pod, nil
}

// Pod returns a pod by name (its current incarnation after any restart).
func (cl *Cluster) Pod(name string) *Pod {
	if ref, ok := cl.pods[name]; ok {
		if cur := ref.node.Agent.Pod(name); cur != nil {
			return cur
		}
		return ref.pod
	}
	return nil
}

// PodNode returns the node currently responsible for a pod.
func (cl *Cluster) PodNode(name string) *Node {
	if ref, ok := cl.pods[name]; ok {
		return ref.node
	}
	return nil
}

// PodIP returns a pod's externally routable address.
func (cl *Cluster) PodIP(name string) (Addr, error) {
	if ref, ok := cl.pods[name]; ok {
		return ref.pod.IP(), nil
	}
	return Addr{}, fmt.Errorf("%w: %s", ErrUnknownPod, name)
}

// DefineJob builds a Job from pod names and connects the coordinator to
// the agents involved.
func (cl *Cluster) DefineJob(name string, podNames ...string) (*Job, error) {
	job := &Job{Name: name}
	for _, pn := range podNames {
		ref, ok := cl.pods[pn]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownPod, pn)
		}
		job.Members = append(job.Members, Member{Pod: pn, Agent: ref.node.Agent.Addr()})
	}
	var connectErr error
	connected := false
	cl.Coordinator.Connect(job, func(err error) { connectErr, connected = err, true })
	if !cl.RunUntil(func() bool { return connected }, 10*Second) {
		return nil, errors.New("cruz: coordinator connect timed out")
	}
	if connectErr != nil {
		return nil, connectErr
	}
	if cl.cfg.AutoRecover {
		cl.Coordinator.Watch(job, func(res *RecoveryResult, err error) {
			if err != nil {
				cl.recoveryErrs = append(cl.recoveryErrs, err)
				return
			}
			// Re-home the facade's pod bookkeeping to the new nodes.
			for _, rp := range res.Pods {
				for _, m := range job.Members {
					if m.Pod != rp.Pod {
						continue
					}
					if n, ok := cl.nodeByAddr[m.Agent]; ok {
						ref := cl.pods[rp.Pod]
						ref.node = n
						cl.pods[rp.Pod] = ref
					}
				}
			}
			cl.recoveries = append(cl.recoveries, res)
		})
	}
	return job, nil
}

// Recoveries returns every automatic recovery completed so far.
func (cl *Cluster) Recoveries() []*RecoveryResult { return cl.recoveries }

// RecoveryErr returns the first automatic-recovery failure, if any.
func (cl *Cluster) RecoveryErr() error {
	if len(cl.recoveryErrs) > 0 {
		return cl.recoveryErrs[0]
	}
	return nil
}

// AwaitRecovery drives the event loop until n automatic recoveries have
// completed (or one has failed), reporting whether it got there within
// max virtual time.
func (cl *Cluster) AwaitRecovery(n int, max Duration) bool {
	return cl.RunUntil(func() bool {
		return len(cl.recoveries) >= n || len(cl.recoveryErrs) > 0
	}, max)
}

// Checkpoint runs one coordinated checkpoint synchronously (driving the
// event loop until the protocol completes).
func (cl *Cluster) Checkpoint(job *Job, opts CheckpointOptions) (*CheckpointResult, error) {
	if opts.Replicas == 0 {
		opts.Replicas = cl.cfg.Replicas
	}
	var res *CheckpointResult
	var cerr error
	fired := false
	cl.Coordinator.Checkpoint(job, opts, func(r *CheckpointResult, err error) {
		res, cerr, fired = r, err, true
	})
	if !cl.RunUntil(func() bool { return fired }, 10*60*Second) {
		return nil, errors.New("cruz: checkpoint timed out")
	}
	return res, cerr
}

// Restart runs a coordinated restart from checkpoint seq (0 = latest
// committed) synchronously.
func (cl *Cluster) Restart(job *Job, seq int) (*RestartResult, error) {
	var res *RestartResult
	var rerr error
	fired := false
	cl.Coordinator.Restart(job, seq, func(r *RestartResult, err error) {
		res, rerr, fired = r, err, true
	})
	if !cl.RunUntil(func() bool { return fired }, 10*60*Second) {
		return nil, errors.New("cruz: restart timed out")
	}
	return res, rerr
}

// Migrate moves one pod of the job to the target node live, driving the
// event loop until the migration commits: pre-copy rounds stream into
// the target's store while the pod runs, only the residual dirty set is
// transferred under freeze, and the address (VIF IP + MAC) moves with
// the live TCP state — established connections survive. On success the
// facade's pod bookkeeping re-homes, so Pod/PodNode resolve to the new
// node.
func (cl *Cluster) Migrate(job *Job, podName string, targetNode int, opts MigrateOptions) (*MigrationResult, error) {
	if targetNode < 0 || targetNode >= len(cl.Nodes) {
		return nil, fmt.Errorf("cruz: no node %d", targetNode)
	}
	ref, ok := cl.pods[podName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPod, podName)
	}
	target := cl.Nodes[targetNode]
	var res *MigrationResult
	var merr error
	fired := false
	cl.Coordinator.Migrate(job, podName, target.Agent.Addr(), opts, func(r *MigrationResult, err error) {
		res, merr, fired = r, err, true
	})
	if !cl.RunUntil(func() bool { return fired }, 10*60*Second) {
		return nil, errors.New("cruz: migration timed out")
	}
	if merr != nil {
		return nil, merr
	}
	ref.node = target
	cl.pods[podName] = ref
	return res, nil
}

// DefineFlushJob builds the flushing-baseline version of a job (requires
// Config.FlushBaseline).
func (cl *Cluster) DefineFlushJob(name string, podNames ...string) (*flush.Job, error) {
	if cl.FlushCoordinator == nil {
		return nil, errors.New("cruz: cluster built without FlushBaseline")
	}
	job := &flush.Job{Name: name}
	for _, pn := range podNames {
		ref, ok := cl.pods[pn]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownPod, pn)
		}
		job.Members = append(job.Members, flush.Member{
			Pod:   pn,
			PodIP: ref.pod.IP(),
			Agent: ref.node.FlushAgent.Addr(),
		})
	}
	connected := false
	cl.FlushCoordinator.Connect(job, func(err error) { connected = err == nil })
	if !cl.RunUntil(func() bool { return connected }, 10*Second) {
		return nil, errors.New("cruz: flush coordinator connect timed out")
	}
	return job, nil
}

// FlushCheckpoint runs one flushing-baseline checkpoint synchronously.
func (cl *Cluster) FlushCheckpoint(job *flush.Job) (*flush.Result, error) {
	var res *flush.Result
	var cerr error
	fired := false
	cl.FlushCoordinator.Checkpoint(job, func(r *flush.Result, err error) {
		res, cerr, fired = r, err, true
	})
	if !cl.RunUntil(func() bool { return fired }, 10*60*Second) {
		return nil, errors.New("cruz: flush checkpoint timed out")
	}
	return res, cerr
}

// FailNode simulates a machine failure: its link goes down and every
// process on it is killed. With Config.Replicas ≥ 1 and AutoRecover, the
// coordinator detects the failure and restarts affected jobs on
// surviving nodes automatically — no CopyImages or MovePod needed. Without
// replication, pods it hosted can still be restarted manually elsewhere
// once their images are reachable; see CopyImages.
func (cl *Cluster) FailNode(i int) {
	n := cl.Nodes[i]
	cl.Switch.SetLinkDown(n.NIC, true)
	for _, p := range n.Kernel.Processes() {
		n.Kernel.Signal(p.PID(), kernel.SIGKILL)
	}
}

// CopyImages copies every stored checkpoint of a pod from one node's
// store to another's, modeling retrieval over the network file system
// (read on the source disk, write on the destination disk).
func (cl *Cluster) CopyImages(pod string, from, to *Node) error {
	seq, ok := from.Store.LatestSeq(pod)
	if !ok {
		return fmt.Errorf("cruz: no images for pod %s", pod)
	}
	var copyErr error
	done := false
	from.Store.LoadMerged(pod, seq, func(img *ckpt.Image, err error) {
		if err != nil {
			copyErr, done = err, true
			return
		}
		to.Store.Save(img, func(_ int64, serr error) {
			copyErr, done = serr, true
		})
	})
	if !cl.RunUntil(func() bool { return done }, 10*60*Second) {
		return errors.New("cruz: image copy timed out")
	}
	return copyErr
}

// MovePod reassigns responsibility for a pod to another node's agent
// (used with CopyImages to restart a failed node's pod elsewhere). The
// job must be re-defined afterwards so members point at the new agent.
func (cl *Cluster) MovePod(pod string, to int) error {
	ref, ok := cl.pods[pod]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPod, pod)
	}
	ref.node = cl.Nodes[to]
	cl.pods[pod] = ref
	return nil
}
