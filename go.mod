module cruz

go 1.22
