# Developer entry points. `make check` is the extended tier-1 gate
# (see ROADMAP.md): vet + build + full tests, plus race-detector runs of
# the packages with concurrency-sensitive bookkeeping.

GO ?= go

.PHONY: check build test vet race cruzvet bench gobench scale-smoke migrate-smoke ec-smoke trace-demo

check: vet cruzvet build test race

vet:
	$(GO) vet ./...

# cruzvet is the in-tree determinism-and-invariant lint suite
# (internal/analysis, driven by cmd/cruzvet): no wall-clock/ambient
# entropy in sim-side packages, no map-order leaking into sim-visible
# state, spans ended on every path, no lock-order cycles, pool buffers
# returned exactly once, ctl ops always completed, trace contexts
# propagated, no dropped errors on sim-side paths. The build fails on
# any unsuppressed finding and (-strict-allow) on any stale
# //cruzvet:allow directive; see DESIGN.md "Determinism rules".
cruzvet:
	$(GO) run ./cmd/cruzvet -stats -strict-allow ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/trace/... ./internal/metrics/... ./internal/ctl/... ./internal/core/... ./internal/coord/... ./internal/tcpip/... ./internal/ckpt/...

# Regenerate the machine-readable benchmark report and fail if the
# output is not valid BENCH_cruz.json-shaped JSON.
bench:
	$(GO) run ./cmd/cruzbench -exp none -json -jsonfile bench.tmp.json
	$(GO) run ./cmd/cruzbench -checkjson bench.tmp.json
	rm -f bench.tmp.json

# Micro-benchmark smoke: the tracer-overhead guard (trace=false must
# match the pre-tracing baseline) plus one iteration each of the hot-path
# micro-benchmarks (dirty-page tracking, event scheduling, pooled TCP
# bulk transfer) so CI notices when a benchmark rots. No thresholds —
# timings are informational; allocs/op on the scheduling and TCP
# benchmarks is the fast-path pooling ablation's headline.
gobench:
	$(GO) test -run XXX -bench=BenchmarkCheckpoint -benchmem .
	$(GO) test -run XXX -bench=BenchmarkDirtyTracking -benchtime=1x -benchmem ./internal/mem/
	$(GO) test -run XXX -bench=BenchmarkEngineSchedule -benchtime=1x -benchmem ./internal/sim/
	$(GO) test -run XXX -bench=BenchmarkTCPBulkTransfer -benchtime=1x -benchmem ./internal/tcpip/
	$(GO) test -run XXX -bench=BenchmarkMigrationStream -benchtime=1x -benchmem ./internal/ctl/

# Scaling smoke: the A9 flat-vs-tree ablation at reduced workload scale
# (n = 8/64/256, light slm ring). Exercises the hierarchical
# coordinator, the widened >255-node addressing, and the engine fast
# path end to end in a few seconds.
scale-smoke:
	$(GO) run ./cmd/cruzbench -exp scale -scale 0.25

# Migration smoke: the A10 live-vs-stop-and-copy ablation at reduced
# workload scale plus the cruzsim scenario where an established TCP
# connection must survive two live migrations. Exercises the pre-copy
# round loop, the residual freeze, and the address takeover end to end.
migrate-smoke:
	$(GO) run ./cmd/cruzbench -exp migrate -scale 0.25
	$(GO) run ./cmd/cruzsim -scenario migrate

# Erasure-coding smoke: the double-node-loss reconstruction test (4+2
# striping, kill a shard holder and a primary, byte-identical restore)
# plus the cruzsim scenario that narrates the same recovery. Exercises
# the RS codec, shard placement/distribution, the background pacer, and
# the reconstruct-restore path end to end.
ec-smoke:
	$(GO) test -run 'TestErasureCodedRecovery|TestECFallbackToReplication' -v .
	$(GO) run ./cmd/cruzsim -scenario failover -ec 4+2

# Worked example from README: quickstart scenario with a Chrome trace.
trace-demo:
	$(GO) run ./cmd/cruzsim -scenario quickstart -nodes 3 -trace cruz-trace.json
