// Benchmarks regenerating the paper's evaluation (§6): one benchmark per
// table/figure, plus ablations for the §5.2 optimizations. Each reports
// the *virtual-time* measurements of the simulated cluster via
// b.ReportMetric (wall-clock ns/op only measures the simulator itself).
//
// The benchmarks run at scale 0.25 (≈25 MB pod images) to keep iteration
// time moderate; `go run ./cmd/cruzbench` reproduces the full paper-scale
// (≈100 MB) numbers recorded in EXPERIMENTS.md. All shape results are
// scale-invariant.
package cruz_test

import (
	"fmt"
	"testing"

	"cruz"
	"cruz/internal/exp"
)

const benchScale = 0.25

// BenchmarkFig5aCheckpointLatency regenerates Fig. 5(a): total
// coordinated checkpoint latency of the slm benchmark versus node count.
// Paper: ≈1 s, roughly flat from 2 to 8 nodes.
func BenchmarkFig5aCheckpointLatency(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := exp.Fig5([]int{n}, 2, 2*cruz.Second, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].LatencyMeanMs, "vms/ckpt")
				b.ReportMetric(rows[0].LatencyStdMs, "vms/stddev")
				b.ReportMetric(rows[0].PerPodImageMB, "MB/pod")
			}
		})
	}
}

// BenchmarkFig5bCoordinationOverhead regenerates Fig. 5(b): the
// coordination overhead of the checkpoint protocol. Paper: 350–550 µs,
// growing ≈50 µs per node past 4 nodes — negligible against the ≈1 s
// local checkpoint.
func BenchmarkFig5bCoordinationOverhead(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := exp.Fig5([]int{n}, 2, 2*cruz.Second, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].OverheadMeanUs, "vus/ckpt")
			}
		})
	}
}

// BenchmarkFig6StreamRecovery regenerates Fig. 6: the receive-rate
// timeline of a maximum-rate TCP stream across a checkpoint. Paper:
// rate drops to zero, checkpoint completes at ≈120 ms, and TCP
// retransmission restores the full rate ≈100 ms later.
func BenchmarkFig6StreamRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SteadyMbps, "vMbps/steady")
		b.ReportMetric(res.CheckpointMs, "vms/ckpt")
		b.ReportMetric(res.RecoveryMs, "vms/recovery")
		b.ReportMetric(res.RecoveryMs-res.CheckpointMs, "vms/tcp-gap")
	}
}

// BenchmarkRuntimeOverhead regenerates the §6 claim that Cruz's runtime
// virtualization overhead is negligible (paper: <0.5%).
func BenchmarkRuntimeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RuntimeOverhead()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverheadPct, "%overhead")
	}
}

// BenchmarkMessageComplexity regenerates the §5.2 comparison: Cruz's O(N)
// coordination messages versus the flushing baselines' O(N²) markers —
// and the end-to-end latency of both protocols on the same workload
// (ablation A3).
func BenchmarkMessageComplexity(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := exp.MessageComplexity([]int{n}, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				r := rows[0]
				b.ReportMetric(float64(r.CruzMsgs), "msgs/cruz")
				b.ReportMetric(float64(r.FlushCoordMsgs+r.FlushMarkerMsgs), "msgs/flush")
				b.ReportMetric(r.CruzLatencyMs, "vms/cruz")
				b.ReportMetric(r.FlushLatencyMs, "vms/flush")
			}
		})
	}
}

// BenchmarkFig4Optimization regenerates the Fig. 4 early-continue
// comparison plus the copy-on-write ablation (A2): how long the
// application stays frozen under each protocol variant.
func BenchmarkFig4Optimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig4Compare([]int{4}, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range rows[0].Variants {
			switch v.Name {
			case "blocking":
				b.ReportMetric(v.MinBlockedMs, "vms/blocking")
			case "fig4-optimized":
				b.ReportMetric(v.MinBlockedMs, "vms/fig4")
			case "copy-on-write":
				b.ReportMetric(v.MinBlockedMs, "vms/cow")
			}
		}
	}
}

// BenchmarkRestartLatency regenerates the restart measurement the paper
// summarizes as "similar to the results of Figures 5(a) and 5(b)".
func BenchmarkRestartLatency(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := exp.RestartLatency([]int{n}, 1, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].LatencyMeanMs, "vms/restart")
				b.ReportMetric(rows[0].OverheadMeanUs, "vus/overhead")
			}
		})
	}
}

// BenchmarkCheckpoint measures the simulator-side cost (wall-clock time
// and allocations) of a full coordinated checkpoint cycle, with tracing
// off and on. The trace=false case is the regression baseline: enabling
// the tracing subsystem must not change it, and the trace=true case
// bounds the tracer's own overhead.
func BenchmarkCheckpoint(b *testing.B) {
	for _, traced := range []bool{false, true} {
		b.Run(fmt.Sprintf("trace=%v", traced), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cl, err := cruz.New(cruz.Config{Nodes: 2, Seed: 11, Trace: traced})
				if err != nil {
					b.Fatal(err)
				}
				_, job := deployRing(b, cl, 2)
				cl.Run(50 * cruz.Millisecond)
				if _, err := cl.Checkpoint(job, cruz.CheckpointOptions{}); err != nil {
					b.Fatal(err)
				}
				cl.Run(20 * cruz.Millisecond)
			}
		})
	}
}

// BenchmarkIncrementalCheckpoint is ablation A1: dirty-page incremental
// checkpoints versus full checkpoints on the slm workload.
func BenchmarkIncrementalCheckpoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.IncrementalAblation(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].ImageMB, "MB/full")
		b.ReportMetric(rows[1].ImageMB, "MB/incremental")
		b.ReportMetric(rows[0].LatencyMs, "vms/full")
		b.ReportMetric(rows[1].LatencyMs, "vms/incremental")
	}
}

// BenchmarkPrecopyDowntime is ablation A7: checkpoint downtime (the
// slowest pod's freeze window) under stop-and-copy versus pre-copy
// rounds with copy-on-write capture, at the workload's native write
// rate.
func BenchmarkPrecopyDowntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.PrecopyAblation(3, 2, benchScale, []float64{1})
		if err != nil {
			b.Fatal(err)
		}
		byName := map[string]exp.PrecopyRow{}
		for _, r := range rows {
			byName[r.Variant] = r
		}
		b.ReportMetric(byName["stop-and-copy"].DowntimeMs, "vms/stopcopy")
		b.ReportMetric(byName["precopy"].DowntimeMs, "vms/precopy")
		b.ReportMetric(byName["precopy"].LatencyMs, "vms/precopy-latency")
	}
}
