package cruz_test

import (
	"errors"
	"testing"

	"cruz"
	"cruz/internal/apps/slm"
	"cruz/internal/sim"
)

func init() {
	cruz.RegisterProgram(&slm.Worker{})
}

func smallSlm(workers int) slm.Config {
	return slm.Config{
		Workers:             workers,
		Steps:               0,
		TotalComputePerStep: 4 * sim.Millisecond,
		StepOverhead:        500 * sim.Microsecond,
		HaloBytes:           4 << 10,
		GridBytes:           1 << 20,
		DirtyPagesPerStep:   16,
		Port:                9200,
	}
}

// deployRing places one slm worker pod per node.
func deployRing(t testing.TB, cl *cruz.Cluster, n int) ([]string, *cruz.Job) {
	t.Helper()
	return deployRingCfg(t, cl, smallSlm(n))
}

// deployRingCfg is deployRing with an explicit slm config (finite step
// counts, different grids); cfg.Workers pods land on nodes 0..Workers-1.
func deployRingCfg(t testing.TB, cl *cruz.Cluster, cfg slm.Config) ([]string, *cruz.Job) {
	t.Helper()
	n := cfg.Workers
	var names []string
	var ips []cruz.Addr
	for i := 0; i < n; i++ {
		name := "w" + string(rune('a'+i))
		pod, err := cl.NewPod(i, name)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		ips = append(ips, pod.IP())
	}
	for i, name := range names {
		if _, err := cl.Pod(name).Spawn("slm", slm.NewWorker(cfg, i, ips[(i+1)%n])); err != nil {
			t.Fatal(err)
		}
	}
	job, err := cl.DefineJob("ring", names...)
	if err != nil {
		t.Fatal(err)
	}
	return names, job
}

func TestClusterBasics(t *testing.T) {
	cl, err := cruz.New(cruz.Config{Nodes: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Nodes) != 3 || cl.Service == nil {
		t.Fatalf("nodes=%d service=%v", len(cl.Nodes), cl.Service)
	}
	if cl.Nodes[1].Addr() != (cruz.Addr{10, 0, 0, 2}) {
		t.Fatalf("node addr = %v", cl.Nodes[1].Addr())
	}
	pod, err := cl.NewPod(0, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.NewPod(1, "a"); err == nil {
		t.Fatal("duplicate pod name accepted")
	}
	if _, err := cl.NewPod(99, "b"); err == nil {
		t.Fatal("bad node accepted")
	}
	ip, err := cl.PodIP("a")
	if err != nil || ip != pod.IP() {
		t.Fatalf("PodIP = %v/%v", ip, err)
	}
	if _, err := cl.PodIP("ghost"); !errors.Is(err, cruz.ErrUnknownPod) {
		t.Fatalf("PodIP ghost = %v", err)
	}
	if _, err := cl.DefineJob("j", "ghost"); !errors.Is(err, cruz.ErrUnknownPod) {
		t.Fatalf("DefineJob ghost = %v", err)
	}
}

func TestCheckpointRestartViaFacade(t *testing.T) {
	cl, err := cruz.New(cruz.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	names, job := deployRing(t, cl, 2)
	cl.Run(200 * cruz.Millisecond)
	res, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 1 || res.Latency <= 0 {
		t.Fatalf("result %+v", res)
	}
	for _, n := range names {
		cl.Pod(n).Destroy()
	}
	rres, err := cl.Restart(job, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rres.Seq != 1 {
		t.Fatalf("restart seq = %d", rres.Seq)
	}
	cl.Run(200 * cruz.Millisecond)
	for _, n := range names {
		w := cl.Pod(n).Process(1).Program().(*slm.Worker)
		if w.Fault != "" || w.StepsDone == 0 {
			t.Fatalf("pod %s after restart: steps=%d fault=%q", n, w.StepsDone, w.Fault)
		}
	}
}

func TestNodeFailureRecoveryOnSpareNode(t *testing.T) {
	// The fault-tolerance story end to end: checkpoint, lose a machine,
	// restart its pod on a spare node from the (network-FS) image.
	cl, err := cruz.New(cruz.Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Ring on nodes 0 and 1; node 2 is the spare.
	names, job := deployRing(t, cl, 2)
	cl.Run(200 * cruz.Millisecond)
	if _, err := cl.Checkpoint(job, cruz.CheckpointOptions{}); err != nil {
		t.Fatal(err)
	}
	stepsAt := cl.Pod(names[1]).Process(1).Program().(*slm.Worker).StepsDone

	cl.FailNode(1)
	cl.Run(50 * cruz.Millisecond)

	// Surviving pod is destroyed too (a restart is a rollback of the
	// whole job), its peer's image is fetched to the spare node, and the
	// job is re-defined with the new placement.
	cl.Pod(names[0]).Destroy()
	if err := cl.CopyImages(names[1], cl.Nodes[1], cl.Nodes[2]); err != nil {
		t.Fatal(err)
	}
	if err := cl.MovePod(names[1], 2); err != nil {
		t.Fatal(err)
	}
	job2, err := cl.DefineJob("ring2", names...)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the new job's committed state by restarting from the explicit
	// sequence number of the original checkpoint.
	if _, err := cl.Restart(job2, 1); err != nil {
		t.Fatal(err)
	}
	w0 := cl.Pod(names[0]).Process(1).Program().(*slm.Worker)
	w1 := cl.Pod(names[1]).Process(1).Program().(*slm.Worker)
	if w1.StepsDone > stepsAt+1 || w1.StepsDone+1 < stepsAt {
		t.Fatalf("restarted steps %d, checkpointed %d", w1.StepsDone, stepsAt)
	}
	cl.Run(300 * cruz.Millisecond)
	if w0.Fault != "" || w1.Fault != "" {
		t.Fatalf("faults after spare-node recovery: %q %q", w0.Fault, w1.Fault)
	}
	if w1.StepsDone <= stepsAt {
		t.Fatal("ring stuck after spare-node recovery")
	}
	// The migrated pod really lives on node 2 now.
	if got := cl.PodNode(names[1]); got != cl.Nodes[2] {
		t.Fatalf("pod node = %d", got.Index)
	}
}

func TestFlushBaselineViaFacade(t *testing.T) {
	cl, err := cruz.New(cruz.Config{Nodes: 2, FlushBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	names, _ := deployRing(t, cl, 2)
	cl.Run(200 * cruz.Millisecond)
	fjob, err := cl.DefineFlushJob("fring", names...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.FlushCheckpoint(fjob)
	if err != nil {
		t.Fatal(err)
	}
	if res.MarkerMessages != 2 {
		t.Fatalf("markers = %d, want 2", res.MarkerMessages)
	}
	cl.Run(200 * cruz.Millisecond)
	for _, n := range names {
		w := cl.Pod(n).Process(1).Program().(*slm.Worker)
		if w.Fault != "" {
			t.Fatalf("fault after flush checkpoint: %q", w.Fault)
		}
	}
}

func TestFlushRequiresConfig(t *testing.T) {
	cl, _ := cruz.New(cruz.Config{Nodes: 2})
	if _, err := cl.DefineFlushJob("x"); err == nil {
		t.Fatal("flush job without FlushBaseline accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (cruz.Duration, int) {
		cl, err := cruz.New(cruz.Config{Nodes: 2, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		_, job := deployRing(t, cl, 2)
		cl.Run(200 * cruz.Millisecond)
		res, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency, res.Messages
	}
	l1, m1 := run()
	l2, m2 := run()
	if l1 != l2 || m1 != m2 {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", l1, m1, l2, m2)
	}
}
