// Package metrics provides the measurement instruments the paper's
// evaluation uses: sliding-window throughput meters (Fig. 6 plots the
// receive rate "averaged ... during a sliding window of 10 ms duration"),
// time series, and simple summary statistics with standard deviations
// (the error bars of Fig. 5).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cruz/internal/sim"
)

// RateMeter measures throughput over a trailing window.
type RateMeter struct {
	window sim.Duration
	events []rateEvent
	total  uint64
}

type rateEvent struct {
	at    sim.Time
	bytes int
}

// NewRateMeter returns a meter with the given trailing window.
func NewRateMeter(window sim.Duration) *RateMeter {
	if window <= 0 {
		window = 10 * sim.Millisecond
	}
	return &RateMeter{window: window}
}

// Record notes that n bytes arrived at time t. Calls must be in
// nondecreasing time order.
func (m *RateMeter) Record(t sim.Time, n int) {
	m.events = append(m.events, rateEvent{at: t, bytes: n})
	m.total += uint64(n)
	m.prune(t)
}

func (m *RateMeter) prune(now sim.Time) {
	cutoff := now.Add(-m.window)
	i := 0
	for i < len(m.events) && m.events[i].at <= cutoff {
		i++
	}
	if i > 0 {
		m.events = m.events[i:]
	}
}

// RateMbps returns the average rate over the window ending at now, in
// megabits per second.
func (m *RateMeter) RateMbps(now sim.Time) float64 {
	m.prune(now)
	var bytes int
	for _, e := range m.events {
		bytes += e.bytes
	}
	return float64(bytes) * 8 / 1e6 / m.window.Seconds()
}

// TotalBytes returns all bytes ever recorded.
func (m *RateMeter) TotalBytes() uint64 { return m.total }

// Point is one sample of a time series.
type Point struct {
	T sim.Time
	V float64
}

// Series is a named time series, used to regenerate the paper's figures
// as data tables.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t sim.Time, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Shifted returns a copy with all timestamps offset by -origin, so plots
// can place an event (e.g. checkpoint start) at t=0 as Fig. 6 does.
func (s *Series) Shifted(origin sim.Time) *Series {
	out := &Series{Name: s.Name, Points: make([]Point, len(s.Points))}
	for i, p := range s.Points {
		out.Points[i] = Point{T: p.T - origin, V: p.V}
	}
	return out
}

// Format renders the series as aligned "time value" rows, with time in
// milliseconds.
func (s *Series) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n#   t(ms)    value\n", s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%9.2f %9.2f\n", sim.Duration(p.T).Milliseconds(), p.V)
	}
	return b.String()
}

// MinMax returns the extreme values of the series.
func (s *Series) MinMax() (min, max float64) {
	if len(s.Points) == 0 {
		return 0, 0
	}
	min, max = s.Points[0].V, s.Points[0].V
	for _, p := range s.Points {
		if p.V < min {
			min = p.V
		}
		if p.V > max {
			max = p.V
		}
	}
	return min, max
}

// Summary accumulates samples and reports mean/deviation, mirroring the
// paper's "error bars represent the standard deviation of the
// measurements".
type Summary struct {
	Name    string
	samples []float64
	// sorted memoizes the sorted copy Percentile needs; Add invalidates
	// it so repeated percentile queries cost one sort, not one each.
	sorted []float64
}

// Add appends a sample.
func (s *Summary) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = nil
}

// AddDuration appends a duration sample in milliseconds.
func (s *Summary) AddDuration(d sim.Duration) { s.Add(d.Milliseconds()) }

// Merge folds other's samples into s, as if each had been Added here in
// other's insertion order. A nil or empty other is a no-op; other is not
// modified. Keeps the receiver's Name.
func (s *Summary) Merge(other *Summary) {
	if other == nil || len(other.samples) == 0 {
		return
	}
	s.samples = append(s.samples, other.samples...)
	s.sorted = nil
}

// N returns the sample count.
func (s *Summary) N() int { return len(s.samples) }

// Mean returns the sample mean.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.samples {
		sum += v
	}
	return sum / float64(len(s.samples))
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 {
	n := len(s.samples)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the smallest sample.
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	min := s.samples[0]
	for _, v := range s.samples {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest sample.
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	max := s.samples[0]
	for _, v := range s.samples {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if s.sorted == nil {
		s.sorted = make([]float64, n)
		copy(s.sorted, s.samples)
		sort.Float64s(s.sorted)
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return s.sorted[rank-1]
}

// Dist is a serializable snapshot of a Summary's distribution, used by
// cruzbench -json to record per-experiment statistics.
type Dist struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	Max    float64 `json:"max"`
}

// Dist returns the summary's distribution snapshot.
func (s *Summary) Dist() Dist {
	return Dist{
		N:      s.N(),
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
		Min:    s.Min(),
		P50:    s.Percentile(50),
		P90:    s.Percentile(90),
		P99:    s.Percentile(99),
		Max:    s.Max(),
	}
}

// String renders "name: mean ± stddev (n=N)".
func (s *Summary) String() string {
	return fmt.Sprintf("%s: %.3f ± %.3f (n=%d)", s.Name, s.Mean(), s.StdDev(), s.N())
}
