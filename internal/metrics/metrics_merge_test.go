package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
)

// Merging two summaries must be indistinguishable from having Added every
// sample to one summary in the same overall order.
func TestMergeEquivalence(t *testing.T) {
	var a, b, direct Summary
	for v := 1; v <= 5; v++ {
		a.Add(float64(v))
		direct.Add(float64(v))
	}
	for v := 6; v <= 10; v++ {
		b.Add(float64(v))
		direct.Add(float64(v))
	}
	a.Merge(&b)
	if a.N() != 10 {
		t.Fatalf("merged N = %d, want 10", a.N())
	}
	if got, want := a.Dist(), direct.Dist(); got != want {
		t.Fatalf("merged Dist = %+v, want %+v", got, want)
	}
	// The donor is left intact.
	if b.N() != 5 || b.Min() != 6 || b.Max() != 10 {
		t.Fatalf("donor modified by Merge: n=%d min=%v max=%v", b.N(), b.Min(), b.Max())
	}
}

func TestMergeNilAndEmpty(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(2)
	s.Merge(nil)
	s.Merge(&Summary{})
	if s.N() != 2 || s.Mean() != 1.5 {
		t.Fatalf("no-op merges changed the summary: n=%d mean=%v", s.N(), s.Mean())
	}

	// Merging into an empty summary adopts the donor's samples.
	var empty Summary
	empty.Merge(&s)
	if empty.N() != 2 || empty.Percentile(100) != 2 {
		t.Fatalf("merge into empty: n=%d p100=%v", empty.N(), empty.Percentile(100))
	}
}

// Merge must invalidate the memoized sort just like Add does.
func TestMergeMemoInvalidation(t *testing.T) {
	var s, other Summary
	s.Add(1)
	s.Add(2)
	if got := s.Percentile(100); got != 2 { // populates the memo
		t.Fatalf("p100 = %v, want 2", got)
	}
	other.Add(10)
	s.Merge(&other)
	if got := s.Percentile(100); got != 10 {
		t.Fatalf("p100 after Merge = %v, want 10 (stale sort cache?)", got)
	}
}

// Nearest-rank percentiles on a duplicate-heavy distribution: the long
// flat run must absorb every rank that lands inside it.
func TestPercentileDuplicateHeavy(t *testing.T) {
	var s Summary
	for i := 0; i < 97; i++ {
		s.Add(1)
	}
	s.Add(2)
	s.Add(3)
	s.Add(4)
	cases := []struct {
		p    float64
		want float64
	}{
		{50, 1}, {90, 1}, {97, 1}, {98, 2}, {99, 3}, {100, 4},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
}

// Two summaries fed the same deterministic sample stream must export
// byte-identical JSON — the property BENCH_cruz.json regeneration
// relies on.
func TestDistExportByteIdentical(t *testing.T) {
	build := func() []byte {
		var part1, part2, merged Summary
		x := uint64(12345)
		for i := 0; i < 500; i++ {
			x = x*6364136223846793005 + 1442695040888963407 // fixed-seed LCG
			v := float64(x>>33) / float64(1<<31)
			if i < 250 {
				part1.Add(v)
			} else {
				part2.Add(v)
			}
		}
		merged.Merge(&part1)
		merged.Merge(&part2)
		out, err := json.Marshal(merged.Dist())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed Dist export differs:\n%s\n%s", a, b)
	}
}
