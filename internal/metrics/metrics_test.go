package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cruz/internal/sim"
)

func TestRateMeterSteadyStream(t *testing.T) {
	m := NewRateMeter(10 * sim.Millisecond)
	// 1250 bytes every 10 µs = 1 Gb/s.
	for i := 0; i < 2000; i++ {
		m.Record(sim.Time(i)*sim.Time(10*sim.Microsecond), 1250)
	}
	now := sim.Time(1999 * 10 * int64(sim.Microsecond))
	rate := m.RateMbps(now)
	if math.Abs(rate-1000) > 10 {
		t.Fatalf("rate = %.1f Mb/s, want ~1000", rate)
	}
	if m.TotalBytes() != 2000*1250 {
		t.Fatalf("TotalBytes = %d", m.TotalBytes())
	}
}

func TestRateMeterDropsToZero(t *testing.T) {
	m := NewRateMeter(10 * sim.Millisecond)
	m.Record(sim.Time(0), 100000)
	// 20 ms later the window is empty.
	if rate := m.RateMbps(sim.Time(20 * sim.Millisecond)); rate != 0 {
		t.Fatalf("rate after quiet period = %f, want 0", rate)
	}
}

func TestRateMeterWindowEdges(t *testing.T) {
	m := NewRateMeter(10 * sim.Millisecond)
	m.Record(sim.Time(0), 1000)
	m.Record(sim.Time(5*sim.Millisecond), 1000)
	// At t=10ms, the event at t=0 is exactly at the cutoff: excluded.
	rate := m.RateMbps(sim.Time(10 * sim.Millisecond))
	want := 1000.0 * 8 / 1e6 / 0.01
	if math.Abs(rate-want) > 1e-9 {
		t.Fatalf("rate = %f, want %f", rate, want)
	}
}

func TestSeriesShiftAndFormat(t *testing.T) {
	var s Series
	s.Name = "rate"
	s.Add(sim.Time(100*sim.Millisecond), 900)
	s.Add(sim.Time(110*sim.Millisecond), 0)
	sh := s.Shifted(sim.Time(100 * sim.Millisecond))
	if sh.Points[0].T != 0 || sh.Points[1].T != sim.Time(10*sim.Millisecond) {
		t.Fatalf("shifted points: %+v", sh.Points)
	}
	out := sh.Format()
	if !strings.Contains(out, "rate") || !strings.Contains(out, "900.00") {
		t.Fatalf("format output:\n%s", out)
	}
	min, max := s.MinMax()
	if min != 0 || max != 900 {
		t.Fatalf("minmax = %f,%f", min, max)
	}
}

func TestSummaryStats(t *testing.T) {
	var s Summary
	s.Name = "lat"
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("mean = %f", got)
	}
	if got := s.StdDev(); got != 2 {
		t.Fatalf("stddev = %f", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %f/%f", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 4 {
		t.Fatalf("p50 = %f", got)
	}
	if got := s.Percentile(100); got != 9 {
		t.Fatalf("p100 = %f", got)
	}
	if !strings.Contains(s.String(), "5.000 ± 2.000") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSummaryDegenerate(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty summary not all-zero")
	}
	s.Add(3)
	if s.StdDev() != 0 {
		t.Fatal("single-sample stddev not 0")
	}
	s.AddDuration(7 * sim.Millisecond)
	if s.N() != 2 || s.Max() != 7 {
		t.Fatalf("N=%d max=%f", s.N(), s.Max())
	}
}

// Property: the meter's windowed rate times the window never exceeds
// total recorded bytes, and total matches the sum of records.
func TestPropertyRateMeterConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := NewRateMeter(10 * sim.Millisecond)
		var total uint64
		now := sim.Time(0)
		for i, sz := range sizes {
			now = sim.Time(i) * sim.Time(sim.Millisecond)
			m.Record(now, int(sz))
			total += uint64(sz)
		}
		if m.TotalBytes() != total {
			return false
		}
		windowBits := m.RateMbps(now) * 1e6 * 0.01
		return windowBits <= float64(total)*8+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
