package metrics

import (
	"testing"

	"cruz/internal/sim"
)

func TestPercentileNearestRank(t *testing.T) {
	var s Summary
	for v := 1; v <= 10; v++ {
		s.Add(float64(v))
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},    // rank clamps to the smallest sample
		{10, 1},   // ceil(0.1*10) = 1
		{50, 5},   // ceil(0.5*10) = 5
		{90, 9},   // ceil(0.9*10) = 9
		{99, 10},  // ceil(0.99*10) = 10
		{100, 10}, // rank clamps to the largest sample
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleSample(t *testing.T) {
	var s Summary
	s.Add(42)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := s.Percentile(p); got != 42 {
			t.Errorf("n=1 p%v = %v, want 42", p, got)
		}
	}
}

// Memoized sorting must be invalidated by Add: a percentile query between
// Adds must not freeze the distribution.
func TestPercentileMemoInvalidation(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(2)
	if got := s.Percentile(100); got != 2 {
		t.Fatalf("p100 = %v, want 2", got)
	}
	s.Add(10)
	if got := s.Percentile(100); got != 10 {
		t.Fatalf("p100 after Add = %v, want 10 (stale sort cache?)", got)
	}
	// Adds out of order: the cached sort must not leak into samples.
	s.Add(0)
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("p0 after Add = %v, want 0", got)
	}
	if got := s.Percentile(50); got != 1 {
		t.Fatalf("p50 = %v, want 1 (nearest-rank of {0,1,2,10})", got)
	}
}

func TestEmptySeriesMinMax(t *testing.T) {
	var s Series
	min, max := s.MinMax()
	if min != 0 || max != 0 {
		t.Fatalf("empty MinMax = %v,%v, want 0,0", min, max)
	}
}

// The window is half-open (now-window, now]: an event exactly at
// now-window is pruned, one tick later it still counts.
func TestRateMeterWindowBoundaryExact(t *testing.T) {
	w := 10 * sim.Millisecond
	now := sim.Time(20 * sim.Millisecond)

	m := NewRateMeter(w)
	m.Record(now.Add(-w), 1000) // exactly at the cutoff
	if rate := m.RateMbps(now); rate != 0 {
		t.Fatalf("event at now-window counted: rate = %v", rate)
	}

	m = NewRateMeter(w)
	m.Record(now.Add(-w)+1, 1000) // one nanosecond inside
	if rate := m.RateMbps(now); rate == 0 {
		t.Fatal("event at now-window+1ns pruned")
	}
}

func TestDistSnapshot(t *testing.T) {
	var s Summary
	for v := 1; v <= 100; v++ {
		s.Add(float64(v))
	}
	d := s.Dist()
	if d.N != 100 || d.Min != 1 || d.Max != 100 {
		t.Fatalf("dist = %+v", d)
	}
	if d.Mean != 50.5 {
		t.Fatalf("mean = %v", d.Mean)
	}
	if d.P50 != 50 || d.P90 != 90 || d.P99 != 99 {
		t.Fatalf("percentiles = %v/%v/%v", d.P50, d.P90, d.P99)
	}
	if d.StdDev <= 0 {
		t.Fatalf("stddev = %v", d.StdDev)
	}
}
