// Package coord computes the deterministic two-level aggregation tree
// used by the hierarchical checkpoint coordinator.
//
// Cruz's global coordinator (§3 of the paper) fans the 2PC out to every
// agent from one root; with hundreds of nodes the root's serialized
// message handling becomes the bottleneck. This package partitions a
// job's members into contiguous groups of roughly √N members. A
// deterministic leader per group relays the root's messages to its
// group and aggregates the members' votes, so the root exchanges
// messages with only ⌈N/size⌉ leaders per protocol phase.
//
// Everything here is a pure function of the member order and the
// liveness predicate: the same inputs always yield the same tree, which
// keeps same-seed runs byte-identical and makes leader replacement
// after a lease expiry reproducible — the next live member of the group,
// in member order, is promoted.
package coord

import "math"

// Group is one aggregation unit of the two-level tree. Members are
// indexes into the job's member list, in job order; Leader is one of
// Members.
type Group struct {
	// Leader is the member index that relays and aggregates for the
	// group. -1 if no member of the group is alive.
	Leader int
	// Members are the group's member indexes, leader included.
	Members []int
}

// GroupSizeFor returns the default group size for n members: ⌈√n⌉.
// This balances the root's fan-out (⌈n/size⌉ leaders) against each
// leader's fan-out (size members), minimizing the larger of the two.
func GroupSizeFor(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Sqrt(float64(n))))
}

// Plan partitions n members into contiguous groups of at most size and
// picks each group's leader: the first member of the group for which
// alive returns true. A nil alive treats every member as alive.
//
// The partition depends only on n and size — never on liveness — so a
// lease expiry between two operations moves a leadership, not the group
// boundaries. That is what makes the promotion deterministic: the
// members of a group agree on the replacement (the next live member in
// order) without any election traffic.
func Plan(n, size int, alive func(int) bool) []Group {
	if n <= 0 {
		return nil
	}
	if size <= 0 {
		size = GroupSizeFor(n)
	}
	groups := make([]Group, 0, (n+size-1)/size)
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		g := Group{Leader: -1, Members: make([]int, 0, end-start)}
		for i := start; i < end; i++ {
			g.Members = append(g.Members, i)
			if g.Leader < 0 && (alive == nil || alive(i)) {
				g.Leader = i
			}
		}
		groups = append(groups, g)
	}
	return groups
}

// Promote returns the group's leader after failed members are excluded:
// the first member in group order for which alive returns true, or -1
// if none. It is Plan's leader rule applied to one group, exposed so a
// caller holding an existing plan can recompute a single leadership.
func Promote(g Group, alive func(int) bool) int {
	for _, i := range g.Members {
		if alive == nil || alive(i) {
			return i
		}
	}
	return -1
}

// RootMessagesPerPhase returns how many messages the root exchanges in
// one protocol phase under the plan: one per group (versus n for the
// flat fan-out). Used by the scaling experiment's analytic check.
func RootMessagesPerPhase(groups []Group) int { return len(groups) }
