package coord

import "testing"

func TestGroupSizeFor(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 4: 2, 8: 3, 9: 3, 64: 8, 100: 10, 256: 16}
	for n, want := range cases {
		if got := GroupSizeFor(n); got != want {
			t.Errorf("GroupSizeFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPlanPartition(t *testing.T) {
	groups := Plan(10, 3, nil)
	if len(groups) != 4 {
		t.Fatalf("got %d groups, want 4", len(groups))
	}
	next := 0
	for gi, g := range groups {
		if g.Leader != g.Members[0] {
			t.Errorf("group %d leader %d, want first member %d", gi, g.Leader, g.Members[0])
		}
		for _, m := range g.Members {
			if m != next {
				t.Fatalf("group %d member %d, want contiguous %d", gi, m, next)
			}
			next++
		}
	}
	if next != 10 {
		t.Fatalf("partition covered %d members, want 10", next)
	}
}

// TestPlanDeterministic pins that two identical calls yield the same
// tree — the property the byte-identical trace tests lean on.
func TestPlanDeterministic(t *testing.T) {
	a := Plan(64, 8, nil)
	b := Plan(64, 8, nil)
	if len(a) != len(b) {
		t.Fatal("plans differ in group count")
	}
	for i := range a {
		if a[i].Leader != b[i].Leader || len(a[i].Members) != len(b[i].Members) {
			t.Fatalf("group %d differs between identical plans", i)
		}
	}
}

// TestLeaderPromotion pins the deterministic replacement rule: liveness
// never moves group boundaries, only the leadership — to the next live
// member in group order.
func TestLeaderPromotion(t *testing.T) {
	dead := map[int]bool{0: true}
	alive := func(i int) bool { return !dead[i] }
	groups := Plan(9, 3, alive)
	if groups[0].Leader != 1 {
		t.Fatalf("group 0 leader %d after member 0 died, want 1", groups[0].Leader)
	}
	// Boundaries unchanged versus the all-alive plan.
	base := Plan(9, 3, nil)
	for i := range groups {
		if len(groups[i].Members) != len(base[i].Members) ||
			groups[i].Members[0] != base[i].Members[0] {
			t.Fatalf("liveness moved group %d boundaries", i)
		}
	}
	if base[0].Leader != 0 {
		t.Fatalf("all-alive group 0 leader %d, want 0", base[0].Leader)
	}
	// Promote matches Plan's rule, including the whole-group-dead case.
	dead[1] = true
	if got := Promote(base[0], alive); got != 2 {
		t.Fatalf("Promote after two deaths = %d, want 2", got)
	}
	dead[2] = true
	if got := Promote(base[0], alive); got != -1 {
		t.Fatalf("Promote of a fully dead group = %d, want -1", got)
	}
}

func TestRootMessagesPerPhase(t *testing.T) {
	if got := RootMessagesPerPhase(Plan(256, 16, nil)); got != 16 {
		t.Fatalf("256/16 plan root fan-out = %d, want 16", got)
	}
}
