// Package stream implements the paper's TCP streaming benchmark (§6,
// Fig. 6): "a transmitting node sending data through a TCP socket
// connection to a receiving node at maximum rate". The receiver exposes
// byte counters that the benchmark harness samples into the sliding-
// window rate trace of Fig. 6.
package stream

import (
	"cruz/internal/kernel"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
)

// DefaultPort is the streaming port.
const DefaultPort uint16 = 9300

// Sender pushes an unbounded byte stream at maximum rate.
type Sender struct {
	Target tcpip.AddrPort
	// ChunkBytes is the write size per send call.
	ChunkBytes int
	// TotalBytes stops after this many bytes (0 = forever).
	TotalBytes uint64
	// Ballast allocates working-set memory so checkpoints of the
	// benchmark carry a realistic image size.
	Ballast uint64

	Phase int
	FD    int
	Sent  uint64
	Fault string
}

// NewSender streams to target.
func NewSender(target tcpip.AddrPort) *Sender {
	return &Sender{Target: target, ChunkBytes: 32 << 10}
}

func (s *Sender) fail(m string) kernel.StepResult {
	s.Fault = m
	return kernel.Exit(0, 2)
}

// Step implements kernel.Program.
func (s *Sender) Step(ctx *kernel.ProcContext) kernel.StepResult {
	switch s.Phase {
	case 0:
		if err := allocBallast(ctx, s.Ballast); err != nil {
			return s.fail("ballast: " + err.Error())
		}
		fd, err := ctx.Connect(s.Target)
		if err != nil {
			return s.fail("connect: " + err.Error())
		}
		s.FD = fd
		s.Phase = 1
		return kernel.Continue(0)
	case 1:
		ok, err := ctx.ConnEstablished(s.FD)
		if err != nil {
			return s.fail("establish: " + err.Error())
		}
		if !ok {
			return kernel.Sleep(0, sim.Millisecond)
		}
		s.Phase = 2
		return kernel.Continue(0)
	default:
		if s.TotalBytes > 0 && s.Sent >= s.TotalBytes {
			ctx.CloseFD(s.FD) //cruzvet:allow errdrop close immediately before exit; the kernel reaps the fd table anyway
			return kernel.Exit(0, 0)
		}
		chunk := make([]byte, s.ChunkBytes)
		// Stream content: position-stamped bytes so the receiver can
		// verify integrity across checkpoints.
		for i := range chunk {
			chunk[i] = byte(s.Sent + uint64(i))
		}
		n, err := ctx.Send(s.FD, chunk)
		if err == kernel.ErrWouldBlock {
			return kernel.BlockOnWrite(0, s.FD)
		}
		if err != nil {
			return s.fail("send: " + err.Error())
		}
		s.Sent += uint64(n)
		return kernel.Continue(0)
	}
}

// allocBallast materializes n bytes of working set.
func allocBallast(ctx *kernel.ProcContext, n uint64) error {
	if n == 0 {
		return nil
	}
	base, err := ctx.Mem().Alloc(n, "ballast")
	if err != nil {
		return err
	}
	for off := uint64(0); off < n; off += 4096 {
		if err := ctx.Mem().WriteUint64(base+off, off); err != nil {
			return err
		}
	}
	return nil
}

// Receiver drains the stream, validating content and counting bytes.
type Receiver struct {
	Port uint16
	// Ballast allocates working-set memory (see Sender.Ballast).
	Ballast uint64

	Phase int
	LFD   int
	FD    int
	// Received is the total byte count; the harness samples it to build
	// the Fig. 6 rate trace.
	Received uint64
	Fault    string
}

// NewReceiver listens on port (0 = DefaultPort).
func NewReceiver(port uint16) *Receiver {
	if port == 0 {
		port = DefaultPort
	}
	return &Receiver{Port: port}
}

func (r *Receiver) fail(m string) kernel.StepResult {
	r.Fault = m
	return kernel.Exit(0, 2)
}

// Step implements kernel.Program.
func (r *Receiver) Step(ctx *kernel.ProcContext) kernel.StepResult {
	switch r.Phase {
	case 0:
		if err := allocBallast(ctx, r.Ballast); err != nil {
			return r.fail("ballast: " + err.Error())
		}
		fd, err := ctx.Listen(tcpip.AddrPort{Port: r.Port}, 4)
		if err != nil {
			return r.fail("listen: " + err.Error())
		}
		r.LFD = fd
		r.Phase = 1
		return kernel.Continue(0)
	case 1:
		fd, err := ctx.Accept(r.LFD)
		if err == kernel.ErrWouldBlock {
			return kernel.BlockOnRead(0, r.LFD)
		}
		if err != nil {
			return r.fail("accept: " + err.Error())
		}
		r.FD = fd
		r.Phase = 2
		return kernel.Continue(0)
	default:
		buf := make([]byte, 64<<10)
		n, err := ctx.Recv(r.FD, buf, false)
		if err == kernel.ErrWouldBlock {
			return kernel.BlockOnRead(0, r.FD)
		}
		if err != nil {
			// EOF ends the benchmark cleanly.
			return kernel.Exit(0, 0)
		}
		for i := 0; i < n; i++ {
			if buf[i] != byte(r.Received+uint64(i)) {
				return r.fail("stream corruption")
			}
		}
		r.Received += uint64(n)
		// Consuming the stream costs a little CPU per chunk, like a real
		// receiver touching its data.
		return kernel.Continue(2 * sim.Microsecond)
	}
}
