package stream

import (
	"testing"

	"cruz"
	"cruz/internal/metrics"
)

func init() {
	cruz.RegisterProgram(&Sender{})
	cruz.RegisterProgram(&Receiver{})
}

// deploy places the receiver pod on node 0 and the sender pod on node 1.
func deploy(t *testing.T) (*cruz.Cluster, *cruz.Job, *Sender, *Receiver) {
	t.Helper()
	cl, err := cruz.New(cruz.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	rpod, err := cl.NewPod(0, "recv")
	if err != nil {
		t.Fatal(err)
	}
	spod, err := cl.NewPod(1, "send")
	if err != nil {
		t.Fatal(err)
	}
	recv := NewReceiver(0)
	if _, err := rpod.Spawn("receiver", recv); err != nil {
		t.Fatal(err)
	}
	send := NewSender(cruz.AddrPort{Addr: rpod.IP(), Port: DefaultPort})
	if _, err := spod.Spawn("sender", send); err != nil {
		t.Fatal(err)
	}
	job, err := cl.DefineJob("stream", "recv", "send")
	if err != nil {
		t.Fatal(err)
	}
	return cl, job, send, recv
}

func TestStreamsNearLineRate(t *testing.T) {
	cl, _, send, recv := deploy(t)
	cl.Run(500 * cruz.Millisecond)
	if send.Fault != "" || recv.Fault != "" {
		t.Fatalf("faults: %q %q", send.Fault, recv.Fault)
	}
	// 500 ms at gigabit ≈ 59 MB payload ceiling; demand > 80% of it.
	gotMbps := float64(recv.Received) * 8 / 1e6 / 0.5
	if gotMbps < 750 || gotMbps > 1000 {
		t.Fatalf("throughput = %.0f Mb/s, want near line rate", gotMbps)
	}
}

func TestStreamSurvivesCheckpointWithFig6Shape(t *testing.T) {
	cl, job, _, recv := deploy(t)
	cl.Run(300 * cruz.Millisecond)

	// Sample the receive rate every millisecond over a 10 ms sliding
	// window, exactly like Fig. 6.
	meter := metrics.NewRateMeter(10 * cruz.Millisecond)
	var series metrics.Series
	series.Name = "receive rate (Mb/s)"
	var lastSeen uint64 = recv.Received
	resolve := func() *Receiver {
		return cl.Pod("recv").Process(1).Program().(*Receiver)
	}
	ticker := cl.Engine.NewTicker(cruz.Millisecond, func() {
		r := resolve()
		if r.Received >= lastSeen {
			meter.Record(cl.Engine.Now(), int(r.Received-lastSeen))
		}
		lastSeen = r.Received
		series.Add(cl.Engine.Now(), meter.RateMbps(cl.Engine.Now()))
	})
	defer ticker.Stop()

	ckptStart := cl.Engine.Now()
	res, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(600 * cruz.Millisecond)
	r := resolve()
	s := cl.Pod("send").Process(1).Program().(*Sender)
	if r.Fault != "" || s.Fault != "" {
		t.Fatalf("faults after checkpoint: %q %q", r.Fault, s.Fault)
	}

	// Fig. 6 shape: the rate hits zero during the checkpoint, then
	// recovers to full rate after TCP retransmission.
	shifted := series.Shifted(ckptStart)
	var sawZero, recovered bool
	for _, p := range shifted.Points {
		if p.T < 0 {
			continue
		}
		if p.V == 0 {
			sawZero = true
		}
		if sawZero && p.T > cruz.Time(res.CycleLatency) && p.V > 700 {
			recovered = true
		}
	}
	if !sawZero {
		t.Fatal("rate never dropped to zero during checkpoint")
	}
	if !recovered {
		min, max := shifted.MinMax()
		t.Fatalf("rate never recovered after checkpoint (range %.0f..%.0f)", min, max)
	}
}

func TestBoundedStreamCompletes(t *testing.T) {
	cl, err := cruz.New(cruz.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	rpod, _ := cl.NewPod(0, "recv")
	spod, _ := cl.NewPod(1, "send")
	recv := NewReceiver(0)
	rpod.Spawn("receiver", recv)
	send := NewSender(cruz.AddrPort{Addr: rpod.IP(), Port: DefaultPort})
	send.TotalBytes = 1 << 20
	spod.Spawn("sender", send)
	if !cl.RunUntil(func() bool { return recv.Received >= 1<<20 }, 5*cruz.Second) {
		t.Fatalf("received %d of %d", recv.Received, 1<<20)
	}
	if send.Fault != "" || recv.Fault != "" {
		t.Fatalf("faults: %q %q", send.Fault, recv.Fault)
	}
}
