package slm

import (
	"testing"

	"cruz"
	"cruz/internal/sim"
)

func init() {
	cruz.RegisterProgram(&Worker{})
}

// smallConfig is a scaled-down slm for fast tests: the structure (ring
// halo exchange, lockstep steps, grid memory) matches the benchmark
// configuration, only the magnitudes shrink.
func smallConfig(workers int) Config {
	return Config{
		Workers:             workers,
		Steps:               40,
		TotalComputePerStep: 4 * sim.Millisecond,
		StepOverhead:        500 * sim.Microsecond,
		HaloBytes:           4 << 10,
		GridBytes:           1 << 20,
		DirtyPagesPerStep:   16,
		Port:                9200,
	}
}

// deploy builds a cluster with one slm worker pod per node.
func deploy(t *testing.T, cfg Config) (*cruz.Cluster, *cruz.Job, []*Worker) {
	t.Helper()
	cl, err := cruz.New(cruz.Config{Nodes: cfg.Workers})
	if err != nil {
		t.Fatal(err)
	}
	var workers []*Worker
	var names []string
	// Create pods first so worker i can learn the IP of worker i+1.
	var ips []cruz.Addr
	for i := 0; i < cfg.Workers; i++ {
		name := "slm-" + string(rune('a'+i))
		pod, perr := cl.NewPod(i, name)
		if perr != nil {
			t.Fatal(perr)
		}
		ips = append(ips, pod.IP())
		names = append(names, name)
	}
	for i := 0; i < cfg.Workers; i++ {
		w := NewWorker(cfg, i, ips[(i+1)%cfg.Workers])
		if _, err := cl.Pod(names[i]).Spawn("slm", w); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	job, err := cl.DefineJob("slm", names...)
	if err != nil {
		t.Fatal(err)
	}
	return cl, job, workers
}

func checkWorkers(t *testing.T, ws []*Worker) {
	t.Helper()
	for i, w := range ws {
		if w.Fault != "" {
			t.Fatalf("worker %d fault: %s", i, w.Fault)
		}
	}
}

func TestRunsToCompletion(t *testing.T) {
	cfg := smallConfig(3)
	cl, _, workers := deploy(t, cfg)
	expected := cfg.ExpectedRuntime()
	done := func() bool {
		for _, w := range workers {
			if !w.Done() {
				return false
			}
		}
		return true
	}
	if !cl.RunUntil(done, 4*expected) {
		t.Fatalf("slm did not finish within 4x expected runtime (steps: %d/%d)",
			workers[0].StepsDone, cfg.Steps)
	}
	checkWorkers(t, workers)
	// Runtime matches the analytic model within tolerance (the model
	// ignores communication time, which is small at this scale).
	actual := sim.Duration(workers[0].FinishedAt - workers[0].StartedAt)
	if actual < expected || actual > expected+expected/4 {
		t.Fatalf("runtime %v vs expected %v", actual, expected)
	}
}

func TestScalingMatchesPaperShape(t *testing.T) {
	// With the paper-calibrated constants the analytic runtime must
	// land on the published numbers: ~545s at 2 workers, ~205s at 8.
	two := DefaultConfig(2).ExpectedRuntime().Seconds()
	eight := DefaultConfig(8).ExpectedRuntime().Seconds()
	if two < 530 || two > 560 {
		t.Fatalf("2-worker runtime = %.0fs, want ~545s", two)
	}
	if eight < 195 || eight > 215 {
		t.Fatalf("8-worker runtime = %.0fs, want ~205s", eight)
	}
}

func TestSurvivesCoordinatedCheckpoint(t *testing.T) {
	cfg := smallConfig(3)
	cfg.Steps = 0 // run forever
	cl, job, workers := deploy(t, cfg)
	cl.Run(200 * cruz.Millisecond)
	checkWorkers(t, workers)
	before := workers[0].StepsDone
	if before == 0 {
		t.Fatal("no progress before checkpoint")
	}
	if _, err := cl.Checkpoint(job, cruz.CheckpointOptions{}); err != nil {
		t.Fatal(err)
	}
	cl.Run(200 * cruz.Millisecond)
	checkWorkers(t, workers)
	if workers[0].StepsDone <= before {
		t.Fatal("no progress after checkpoint")
	}
}

func TestCrashRestartRollsBack(t *testing.T) {
	cfg := smallConfig(2)
	cfg.Steps = 0
	cl, job, workers := deploy(t, cfg)
	cl.Run(200 * cruz.Millisecond)
	if _, err := cl.Checkpoint(job, cruz.CheckpointOptions{}); err != nil {
		t.Fatal(err)
	}
	atCkpt := workers[0].StepsDone
	cl.Run(200 * cruz.Millisecond)
	// Crash both pods.
	cl.Pod("slm-a").Destroy()
	cl.Pod("slm-b").Destroy()
	if _, err := cl.Restart(job, 0); err != nil {
		t.Fatal(err)
	}
	// Resolve the new incarnations.
	w0 := cl.Pod("slm-a").Process(1).Program().(*Worker)
	w1 := cl.Pod("slm-b").Process(1).Program().(*Worker)
	if w0.StepsDone < atCkpt-1 || w0.StepsDone > atCkpt+1 {
		t.Fatalf("restarted at step %d, checkpointed at %d", w0.StepsDone, atCkpt)
	}
	cl.Run(300 * cruz.Millisecond)
	checkWorkers(t, []*Worker{w0, w1})
	if w0.StepsDone <= atCkpt || w1.StepsDone <= atCkpt {
		t.Fatal("ring stuck after restart")
	}
}
