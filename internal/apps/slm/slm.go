// Package slm models the paper's "semi-Lagrangian atmospheric model"
// benchmark (§6): a parallel iterative weather-prediction kernel with a
// 1-D latitude-band decomposition. Each worker holds a grid partition in
// memory; every model step it computes over its partition, then exchanges
// halo bands with both ring neighbours over TCP, in lockstep.
//
// The workload's two tunable regimes reproduce the paper's run times —
// total work that scales down with workers (545 s on 2 nodes → 205 s on
// 8) plus a fixed per-step overhead — and its checkpoint profile: the
// grid dominates the image, so local checkpoint time is disk-write-bound
// at roughly one second for the calibrated 100 MB pod image.
package slm

import (
	"cruz/internal/kernel"
	"cruz/internal/mem"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
)

// Config parameterizes one slm job.
type Config struct {
	// Workers is the number of ring workers (one per node in the paper).
	Workers int
	// Steps is the number of model steps to run (0 = run forever).
	Steps int
	// TotalComputePerStep is the whole-model CPU work per step; each
	// worker performs 1/Workers of it.
	TotalComputePerStep sim.Duration
	// StepOverhead is the fixed, non-scaling per-worker cost per step
	// (synchronization, fixed-size boundary work).
	StepOverhead sim.Duration
	// HaloBytes is the boundary-band size exchanged with each neighbour
	// each step.
	HaloBytes int
	// GridBytes is each worker's partition size; it dominates the
	// checkpoint image.
	GridBytes uint64
	// DirtyPagesPerStep is how many grid pages each step rewrites
	// (bounds incremental-checkpoint size).
	DirtyPagesPerStep int
	// Port is the halo-exchange TCP port.
	Port uint16
	// Linger keeps the rank alive (idle) after its last step instead of
	// exiting, so tests can inspect the end-state memory of a finite run
	// (an exited process's address space is reaped).
	Linger bool
	// UniquePages salts every grid page with the rank so page content is
	// distinct across (rank, page, step). The default fill (pn^rank)
	// yields the same page SET in every rank — fine for latency
	// experiments, but it lets content-addressed dedup collapse one
	// pod's image against another's, which degenerates storage-tier
	// byte measurements.
	UniquePages bool
}

// DefaultConfig matches the calibration in DESIGN.md §5: run time scales
// from ≈545 s at 2 workers to ≈205 s at 8, and each pod checkpoints
// ≈100 MB.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:             workers,
		Steps:               1000,
		TotalComputePerStep: 907 * sim.Millisecond,
		StepOverhead:        91 * sim.Millisecond,
		HaloBytes:           64 << 10,
		GridBytes:           100 << 20,
		DirtyPagesPerStep:   256,
		Port:                9200,
	}
}

// ExpectedRuntime returns the model's predicted execution time, used by
// tests to validate the scaling calibration.
func (c Config) ExpectedRuntime() sim.Duration {
	perStep := c.TotalComputePerStep/sim.Duration(c.Workers) + c.StepOverhead
	return sim.Duration(c.Steps) * perStep
}

// Worker phases.
const (
	phaseInit = iota
	phaseListen
	phaseConnect
	phaseEstablish
	phaseAccept
	phaseCompute
	phaseSendHalos
	phaseRecvHalos
	phaseDone
)

// Worker is one slm rank. It is a checkpointable program: all state is
// exported and the grid lives in the simulated address space.
type Worker struct {
	Cfg     Config
	Rank    int
	RightIP tcpip.Addr // neighbour we dial
	// Phase machine state.
	Phase int
	LFD   int
	OutFD int // to right neighbour
	InFD  int // from left neighbour
	Grid  uint64

	// Step progress.
	StepsDone int
	// Halo exchange bookkeeping.
	SentRight, SentLeft int
	RecvRight, RecvLeft []byte
	// Fault records a detected inconsistency (lost/duplicated halo).
	Fault string

	// StartedAt/FinishedAt bound the run for throughput accounting.
	StartedAt  sim.Time
	FinishedAt sim.Time
}

// NewWorker builds rank r of an n-worker ring. Ring wiring: worker i
// dials worker (i+1) mod n and accepts from worker (i-1) mod n.
func NewWorker(cfg Config, rank int, rightIP tcpip.Addr) *Worker {
	return &Worker{Cfg: cfg, Rank: rank, RightIP: rightIP}
}

// Done reports whether the worker completed all steps.
func (w *Worker) Done() bool { return w.Phase == phaseDone }

func (w *Worker) fail(msg string) kernel.StepResult {
	w.Fault = msg
	return kernel.Exit(0, 2)
}

// perStepCompute is this worker's share of a step's work.
func (w *Worker) perStepCompute() sim.Duration {
	return w.Cfg.TotalComputePerStep/sim.Duration(w.Cfg.Workers) + w.Cfg.StepOverhead
}

// halo builds the outgoing halo band for the current step: every byte
// carries the step stamp so the receiver can detect corruption.
func (w *Worker) halo() []byte {
	b := make([]byte, w.Cfg.HaloBytes)
	stamp := byte(w.StepsDone + 1)
	for i := range b {
		b[i] = stamp
	}
	return b
}

// Step implements kernel.Program.
func (w *Worker) Step(ctx *kernel.ProcContext) kernel.StepResult {
	switch w.Phase {
	case phaseInit:
		base, err := ctx.Mem().Alloc(w.Cfg.GridBytes, "grid")
		if err != nil {
			return w.fail("grid alloc: " + err.Error())
		}
		w.Grid = base
		// Materialize the partition (demand-zero pages don't checkpoint;
		// a real model initializes its whole field).
		pages := w.Cfg.GridBytes / mem.PageSize
		for pn := uint64(0); pn < pages; pn++ {
			val := pn ^ uint64(w.Rank)
			if w.Cfg.UniquePages {
				val = pn*0x9E3779B97F4A7C15 + uint64(w.Rank)
			}
			if err := ctx.Mem().WriteUint64(base+pn*mem.PageSize, val); err != nil {
				return w.fail("grid init: " + err.Error())
			}
		}
		w.Phase = phaseListen
		return kernel.Continue(10 * sim.Millisecond) // model setup cost
	case phaseListen:
		fd, err := ctx.Listen(tcpip.AddrPort{Port: w.Cfg.Port}, 4)
		if err != nil {
			return w.fail("listen: " + err.Error())
		}
		w.LFD = fd
		w.Phase = phaseConnect
		return kernel.Sleep(0, 20*sim.Millisecond)
	case phaseConnect:
		fd, err := ctx.Connect(tcpip.AddrPort{Addr: w.RightIP, Port: w.Cfg.Port})
		if err != nil {
			return w.fail("connect: " + err.Error())
		}
		w.OutFD = fd
		w.Phase = phaseEstablish
		return kernel.Continue(0)
	case phaseEstablish:
		ok, err := ctx.ConnEstablished(w.OutFD)
		if err != nil {
			return w.fail("establish: " + err.Error())
		}
		if !ok {
			return kernel.Sleep(0, sim.Millisecond)
		}
		w.Phase = phaseAccept
		return kernel.Continue(0)
	case phaseAccept:
		fd, err := ctx.Accept(w.LFD)
		if err == kernel.ErrWouldBlock {
			return kernel.BlockOnRead(0, w.LFD)
		}
		if err != nil {
			return w.fail("accept: " + err.Error())
		}
		w.InFD = fd
		w.Phase = phaseCompute
		// StartedAt marks the start of the stepped computation; setup
		// (grid init, listen barrier, handshakes) is excluded from the
		// runtime model.
		w.StartedAt = ctx.Now()
		return kernel.Continue(0)

	case phaseCompute:
		if w.Cfg.Steps > 0 && w.StepsDone >= w.Cfg.Steps {
			w.FinishedAt = ctx.Now()
			w.Phase = phaseDone
			if w.Cfg.Linger {
				return kernel.Sleep(0, sim.Second)
			}
			return kernel.Exit(0, 0)
		}
		// Advance the model: touch a rotating set of grid pages.
		pages := w.Cfg.GridBytes / mem.PageSize
		for i := 0; i < w.Cfg.DirtyPagesPerStep; i++ {
			pn := (uint64(w.StepsDone)*uint64(w.Cfg.DirtyPagesPerStep) + uint64(i)) % pages
			val := uint64(w.StepsDone)
			if w.Cfg.UniquePages {
				val = (uint64(w.StepsDone)+1)*0x9E3779B97F4A7C15 + uint64(w.Rank)<<32 + pn
			}
			if err := ctx.Mem().WriteUint64(w.Grid+pn*mem.PageSize, val); err != nil {
				return w.fail("grid update: " + err.Error())
			}
		}
		w.Phase = phaseSendHalos
		return kernel.Continue(w.perStepCompute())

	case phaseSendHalos:
		// Send to the right neighbour over the dialed connection and to
		// the left neighbour over the accepted one (TCP is full duplex).
		if w.SentRight < w.Cfg.HaloBytes {
			n, err := ctx.Send(w.OutFD, w.halo()[w.SentRight:])
			if err == kernel.ErrWouldBlock {
				return kernel.BlockOnWrite(0, w.OutFD)
			}
			if err != nil {
				return w.fail("send right: " + err.Error())
			}
			w.SentRight += n
			return kernel.Continue(0)
		}
		if w.SentLeft < w.Cfg.HaloBytes {
			n, err := ctx.Send(w.InFD, w.halo()[w.SentLeft:])
			if err == kernel.ErrWouldBlock {
				return kernel.BlockOnWrite(0, w.InFD)
			}
			if err != nil {
				return w.fail("send left: " + err.Error())
			}
			w.SentLeft += n
			return kernel.Continue(0)
		}
		w.Phase = phaseRecvHalos
		return kernel.Continue(0)

	case phaseRecvHalos:
		if len(w.RecvLeft) < w.Cfg.HaloBytes {
			buf := make([]byte, w.Cfg.HaloBytes-len(w.RecvLeft))
			n, err := ctx.Recv(w.InFD, buf, false)
			if err == kernel.ErrWouldBlock {
				return kernel.BlockOnRead(0, w.InFD)
			}
			if err != nil {
				return w.fail("recv left: " + err.Error())
			}
			w.RecvLeft = append(w.RecvLeft, buf[:n]...)
			return kernel.Continue(0)
		}
		if len(w.RecvRight) < w.Cfg.HaloBytes {
			buf := make([]byte, w.Cfg.HaloBytes-len(w.RecvRight))
			n, err := ctx.Recv(w.OutFD, buf, false)
			if err == kernel.ErrWouldBlock {
				return kernel.BlockOnRead(0, w.OutFD)
			}
			if err != nil {
				return w.fail("recv right: " + err.Error())
			}
			w.RecvRight = append(w.RecvRight, buf[:n]...)
			return kernel.Continue(0)
		}
		// Both halos in: verify the step stamps.
		stamp := byte(w.StepsDone + 1)
		for _, b := range w.RecvLeft {
			if b != stamp {
				return w.fail("left halo stamp mismatch")
			}
		}
		for _, b := range w.RecvRight {
			if b != stamp {
				return w.fail("right halo stamp mismatch")
			}
		}
		w.RecvLeft, w.RecvRight = nil, nil
		w.SentRight, w.SentLeft = 0, 0
		w.StepsDone++
		w.Phase = phaseCompute
		return kernel.Continue(0)

	case phaseDone:
		// Lingering rank: finished, parked.
		return kernel.Sleep(0, sim.Second)
	}
	return w.fail("bad phase")
}
