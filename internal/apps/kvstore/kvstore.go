// Package kvstore is a small networked key-value database — the kind of
// stateful, connection-oriented service the paper's introduction
// motivates checkpointing ("complex applications such as databases").
// The migration example checkpoints a live server mid-session and revives
// it on another machine without its clients noticing more than a pause.
//
// Wire protocol (binary, length-delimited):
//
//	request:  op(1: 'S'|'G') keyLen(2 BE) key valLen(4 BE) val
//	response: status(1: 'K'|'N') valLen(4 BE) val
//
// 'N' answers a GET for a missing key.
package kvstore

import (
	"encoding/binary"
	"sort"

	"cruz/internal/kernel"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
)

// DefaultPort is the server port.
const DefaultPort uint16 = 9400

// OpSet and OpGet are the request opcodes.
const (
	OpSet byte = 'S'
	OpGet byte = 'G'
)

// Server is the database process. All state — the table and per-client
// parse buffers — is exported, so a checkpoint captures sessions
// mid-request.
type Server struct {
	Port uint16

	Phase   int
	LFD     int
	Table   map[string][]byte
	Clients map[int]*Session
	// Ops counts executed requests.
	Ops   uint64
	Fault string
}

// Session is one client connection's parse state.
type Session struct {
	FD  int
	Buf []byte
}

// NewServer creates a server on port (0 = DefaultPort).
func NewServer(port uint16) *Server {
	if port == 0 {
		port = DefaultPort
	}
	return &Server{Port: port, Table: make(map[string][]byte), Clients: make(map[int]*Session)}
}

func (s *Server) fail(m string) kernel.StepResult {
	s.Fault = m
	return kernel.Exit(0, 2)
}

// Step implements kernel.Program. The server polls its sessions; with a
// single client it blocks on that session's descriptor, otherwise it
// naps briefly between sweeps.
func (s *Server) Step(ctx *kernel.ProcContext) kernel.StepResult {
	if s.Phase == 0 {
		fd, err := ctx.Listen(tcpip.AddrPort{Port: s.Port}, 16)
		if err != nil {
			return s.fail("listen: " + err.Error())
		}
		s.LFD = fd
		s.Phase = 1
		return kernel.Continue(0)
	}
	progress := false
	// Accept any waiting clients.
	for {
		fd, err := ctx.Accept(s.LFD)
		if err != nil {
			break
		}
		s.Clients[fd] = &Session{FD: fd}
		progress = true
	}
	// Serve each session in ascending FD order. The sweep order is
	// wire-visible (it decides the order of Recv/Send syscalls and so
	// of every downstream TCP event), so ranging over the Clients map
	// directly would make runs of the same seed diverge.
	fds := make([]int, 0, len(s.Clients))
	for fd := range s.Clients {
		fds = append(fds, fd)
	}
	sort.Ints(fds)
	for _, fd := range fds {
		sess := s.Clients[fd]
		buf := make([]byte, 4096)
		n, err := ctx.Recv(fd, buf, false)
		if err == kernel.ErrWouldBlock {
			continue
		}
		if err != nil {
			ctx.CloseFD(fd) //cruzvet:allow errdrop tearing down a dead client; close failure has no recipient
			delete(s.Clients, fd)
			progress = true
			continue
		}
		sess.Buf = append(sess.Buf, buf[:n]...)
		progress = true
		for {
			resp, consumed := s.serveOne(sess.Buf)
			if consumed == 0 {
				break
			}
			sess.Buf = sess.Buf[consumed:]
			if _, err := ctx.Send(fd, resp); err != nil {
				ctx.CloseFD(fd) //cruzvet:allow errdrop tearing down a dead client; close failure has no recipient
				delete(s.Clients, fd)
				break
			}
		}
	}
	if progress {
		return kernel.Continue(5 * sim.Microsecond)
	}
	if len(s.Clients) == 1 {
		for fd := range s.Clients {
			return kernel.BlockOnRead(0, fd)
		}
	}
	if len(s.Clients) == 0 {
		return kernel.BlockOnRead(0, s.LFD)
	}
	return kernel.Sleep(0, 500*sim.Microsecond)
}

// serveOne parses and executes one complete request from b, returning
// the response and bytes consumed (0 if incomplete).
func (s *Server) serveOne(b []byte) (resp []byte, consumed int) {
	if len(b) < 3 {
		return nil, 0
	}
	op := b[0]
	keyLen := int(binary.BigEndian.Uint16(b[1:3]))
	if len(b) < 3+keyLen+4 {
		return nil, 0
	}
	key := string(b[3 : 3+keyLen])
	valLen := int(binary.BigEndian.Uint32(b[3+keyLen:]))
	end := 3 + keyLen + 4 + valLen
	if len(b) < end {
		return nil, 0
	}
	val := b[3+keyLen+4 : end]
	s.Ops++
	switch op {
	case OpSet:
		cp := make([]byte, len(val))
		copy(cp, val)
		s.Table[key] = cp
		return encodeResp('K', nil), end
	case OpGet:
		if v, ok := s.Table[key]; ok {
			return encodeResp('K', v), end
		}
		return encodeResp('N', nil), end
	default:
		return encodeResp('N', nil), end
	}
}

func encodeResp(status byte, val []byte) []byte {
	out := make([]byte, 1+4+len(val))
	out[0] = status
	binary.BigEndian.PutUint32(out[1:], uint32(len(val)))
	copy(out[5:], val)
	return out
}

// EncodeRequest builds a wire request (exported for clients and tests).
func EncodeRequest(op byte, key string, val []byte) []byte {
	out := make([]byte, 1+2+len(key)+4+len(val))
	out[0] = op
	binary.BigEndian.PutUint16(out[1:], uint16(len(key)))
	copy(out[3:], key)
	binary.BigEndian.PutUint32(out[3+len(key):], uint32(len(val)))
	copy(out[3+len(key)+4:], val)
	return out
}

// Client runs a verify-as-you-go workload: it SETs key i to a derived
// value, GETs it back, and checks the result, forever (or until Ops).
type Client struct {
	Server tcpip.AddrPort
	// MaxOps stops the client after this many operations (0 = forever).
	MaxOps uint64
	// Think is idle time between operations.
	Think sim.Duration

	Phase       int
	FD          int
	Pending     []byte // unparsed response bytes
	AwaitingGet bool
	Seq         uint64
	Done        uint64
	Fault       string
}

// NewClient targets the given server endpoint.
func NewClient(server tcpip.AddrPort) *Client {
	return &Client{Server: server, Think: 200 * sim.Microsecond}
}

func (c *Client) fail(m string) kernel.StepResult {
	c.Fault = m
	return kernel.Exit(0, 2)
}

func (c *Client) key() string {
	return "key-" + itoa(c.Seq%512)
}

func (c *Client) val() []byte {
	v := make([]byte, 64)
	for i := range v {
		v[i] = byte(c.Seq + uint64(i))
	}
	return v
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var d []byte
	for v > 0 {
		d = append([]byte{byte('0' + v%10)}, d...)
		v /= 10
	}
	return string(d)
}

// Step implements kernel.Program.
func (c *Client) Step(ctx *kernel.ProcContext) kernel.StepResult {
	switch c.Phase {
	case 0:
		fd, err := ctx.Connect(c.Server)
		if err != nil {
			return c.fail("connect: " + err.Error())
		}
		c.FD = fd
		c.Phase = 1
		return kernel.Continue(0)
	case 1:
		ok, err := ctx.ConnEstablished(c.FD)
		if err != nil {
			return c.fail("establish: " + err.Error())
		}
		if !ok {
			return kernel.Sleep(0, sim.Millisecond)
		}
		c.Phase = 2
		return kernel.Continue(0)
	case 2: // issue SET then GET back-to-back
		if c.MaxOps > 0 && c.Done >= c.MaxOps {
			ctx.CloseFD(c.FD) //cruzvet:allow errdrop close immediately before exit; the kernel reaps the fd table anyway
			return kernel.Exit(0, 0)
		}
		req := append(EncodeRequest(OpSet, c.key(), c.val()), EncodeRequest(OpGet, c.key(), nil)...)
		if _, err := ctx.Send(c.FD, req); err != nil {
			if err == kernel.ErrWouldBlock {
				return kernel.BlockOnWrite(0, c.FD)
			}
			return c.fail("send: " + err.Error())
		}
		c.Phase = 3
		return kernel.Continue(0)
	case 3: // read both responses
		buf := make([]byte, 4096)
		n, err := ctx.Recv(c.FD, buf, false)
		if err == kernel.ErrWouldBlock {
			return kernel.BlockOnRead(0, c.FD)
		}
		if err != nil {
			return c.fail("recv: " + err.Error())
		}
		c.Pending = append(c.Pending, buf[:n]...)
		// Need: SET ack (5 bytes) + GET response (5+64 bytes).
		if len(c.Pending) < 5+5+64 {
			return kernel.Continue(0)
		}
		if c.Pending[0] != 'K' {
			return c.fail("set not acked")
		}
		get := c.Pending[5:]
		if get[0] != 'K' {
			return c.fail("get missed fresh key")
		}
		want := c.val()
		for i := range want {
			if get[5+i] != want[i] {
				return c.fail("get returned wrong value")
			}
		}
		c.Pending = c.Pending[5+5+64:]
		c.Seq++
		c.Done++
		c.Phase = 2
		return kernel.Sleep(3*sim.Microsecond, c.Think)
	}
	return c.fail("bad phase")
}
