package kvstore

import (
	"bytes"
	"testing"
	"testing/quick"

	"cruz"
)

func init() {
	cruz.RegisterProgram(&Server{})
	cruz.RegisterProgram(&Client{})
}

func TestRequestEncodingRoundTrip(t *testing.T) {
	s := NewServer(0)
	req := EncodeRequest(OpSet, "hello", []byte("world"))
	resp, consumed := s.serveOne(req)
	if consumed != len(req) {
		t.Fatalf("consumed %d of %d", consumed, len(req))
	}
	if resp[0] != 'K' {
		t.Fatalf("set response = %q", resp)
	}
	get := EncodeRequest(OpGet, "hello", nil)
	resp, consumed = s.serveOne(get)
	if consumed != len(get) || resp[0] != 'K' || string(resp[5:]) != "world" {
		t.Fatalf("get response = %q (consumed %d)", resp, consumed)
	}
	miss := EncodeRequest(OpGet, "absent", nil)
	resp, _ = s.serveOne(miss)
	if resp[0] != 'N' {
		t.Fatalf("miss response = %q", resp)
	}
}

func TestPartialRequestsNotConsumed(t *testing.T) {
	s := NewServer(0)
	req := EncodeRequest(OpSet, "key", []byte("value"))
	for i := 0; i < len(req); i++ {
		if _, consumed := s.serveOne(req[:i]); consumed != 0 {
			t.Fatalf("prefix of %d bytes consumed %d", i, consumed)
		}
	}
	// Pipelined requests parse one at a time.
	double := append(append([]byte{}, req...), EncodeRequest(OpGet, "key", nil)...)
	_, c1 := s.serveOne(double)
	if c1 != len(req) {
		t.Fatalf("first consume = %d, want %d", c1, len(req))
	}
}

// Property: any op/key/value encodes to something the server parses back
// with full consumption and stores faithfully.
func TestPropertyEncodeParse(t *testing.T) {
	s := NewServer(0)
	f := func(key string, val []byte) bool {
		if len(key) > 60000 {
			key = key[:60000]
		}
		req := EncodeRequest(OpSet, key, val)
		_, consumed := s.serveOne(req)
		if consumed != len(req) {
			return false
		}
		return bytes.Equal(s.Table[key], val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func deploy(t *testing.T) (*cruz.Cluster, *cruz.Job, *Server, *Client) {
	t.Helper()
	cl, err := cruz.New(cruz.Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	spod, err := cl.NewPod(0, "db")
	if err != nil {
		t.Fatal(err)
	}
	cpod, err := cl.NewPod(1, "app")
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(0)
	if _, err := spod.Spawn("kvd", server); err != nil {
		t.Fatal(err)
	}
	client := NewClient(cruz.AddrPort{Addr: spod.IP(), Port: DefaultPort})
	if _, err := cpod.Spawn("kvc", client); err != nil {
		t.Fatal(err)
	}
	job, err := cl.DefineJob("kv", "db", "app")
	if err != nil {
		t.Fatal(err)
	}
	return cl, job, server, client
}

func TestClientServerWorkload(t *testing.T) {
	cl, _, server, client := deploy(t)
	cl.Run(500 * cruz.Millisecond)
	if server.Fault != "" || client.Fault != "" {
		t.Fatalf("faults: %q %q", server.Fault, client.Fault)
	}
	if client.Done == 0 || server.Ops == 0 {
		t.Fatalf("no progress: client=%d server=%d", client.Done, server.Ops)
	}
}

func TestDatabaseSurvivesCrashRestart(t *testing.T) {
	cl, job, _, _ := deploy(t)
	cl.Run(300 * cruz.Millisecond)
	if _, err := cl.Checkpoint(job, cruz.CheckpointOptions{}); err != nil {
		t.Fatal(err)
	}
	cl.Run(200 * cruz.Millisecond)
	cl.Pod("db").Destroy()
	cl.Pod("app").Destroy()
	if _, err := cl.Restart(job, 0); err != nil {
		t.Fatal(err)
	}
	server2 := cl.Pod("db").Process(1).Program().(*Server)
	client2 := cl.Pod("app").Process(1).Program().(*Client)
	opsAtRestart := client2.Done
	if len(server2.Table) == 0 {
		t.Fatal("restored database lost its table")
	}
	cl.Run(500 * cruz.Millisecond)
	if server2.Fault != "" || client2.Fault != "" {
		t.Fatalf("faults after restart: %q %q", server2.Fault, client2.Fault)
	}
	if client2.Done <= opsAtRestart {
		t.Fatal("client made no progress after restart")
	}
}

func TestMultipleClients(t *testing.T) {
	cl, err := cruz.New(cruz.Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	spod, _ := cl.NewPod(0, "db")
	server := NewServer(0)
	spod.Spawn("kvd", server)
	var clients []*Client
	for i := 0; i < 3; i++ {
		cpod, cerr := cl.NewPod(1+i%2, "app-"+string(rune('a'+i)))
		if cerr != nil {
			t.Fatal(cerr)
		}
		c := NewClient(cruz.AddrPort{Addr: spod.IP(), Port: DefaultPort})
		c.MaxOps = 50
		cpod.Spawn("kvc", c)
		clients = append(clients, c)
	}
	done := func() bool {
		for _, c := range clients {
			if c.Done < 50 {
				return false
			}
		}
		return true
	}
	if !cl.RunUntil(done, 10*cruz.Second) {
		t.Fatalf("clients stalled: %d %d %d", clients[0].Done, clients[1].Done, clients[2].Done)
	}
	for i, c := range clients {
		if c.Fault != "" {
			t.Fatalf("client %d fault: %s", i, c.Fault)
		}
	}
	if server.Ops != 3*50*2 {
		t.Fatalf("server ops = %d, want 300", server.Ops)
	}
}
