package tcpip

import (
	"bytes"
	"math/rand"
	"testing"

	"cruz/internal/sim"
)

// TestPropertyStreamIntegrityUnderLoss drives random bidirectional
// traffic over a lossy link and asserts TCP's contract: every byte
// arrives, exactly once, in order.
func TestPropertyStreamIntegrityUnderLoss(t *testing.T) {
	for _, loss := range []float64{0, 0.01, 0.05, 0.1} {
		loss := loss
		t.Run("", func(t *testing.T) {
			tn := newTestNet(t, 2)
			c, s := tn.connect(0, 1, 5000)
			// Loss on node0's link hits both data out and ACKs in.
			tn.sw.SetDropRate(tn.nics[0], loss)
			rng := rand.New(rand.NewSource(int64(loss*1000) + 17))

			var wantCS, wantSC []byte
			for i := 0; i < 30; i++ {
				n := rng.Intn(8000) + 1
				chunk := pattern(n, byte(i))
				if rng.Intn(2) == 0 {
					tn.sendAll(c, chunk)
					wantCS = append(wantCS, chunk...)
				} else {
					tn.sendAll(s, chunk)
					wantSC = append(wantSC, chunk...)
				}
			}
			gotCS := tn.recvN(s, len(wantCS))
			gotSC := tn.recvN(c, len(wantSC))
			if !bytes.Equal(gotCS, wantCS) {
				t.Fatalf("loss=%v: client->server stream corrupted", loss)
			}
			if !bytes.Equal(gotSC, wantSC) {
				t.Fatalf("loss=%v: server->client stream corrupted", loss)
			}
			if loss > 0 && c.Stats.Retransmits+s.Stats.Retransmits == 0 {
				t.Fatalf("loss=%v but no retransmissions happened", loss)
			}
		})
	}
}

// TestPropertyCheckpointAnytimePreservesStream checkpoints both endpoints
// at random moments while traffic flows and asserts the §5.1 consistency
// result: the restored system delivers the exact original byte stream with
// no loss, duplication, or reordering — even though every checkpoint
// discards all in-flight packets.
func TestPropertyCheckpointAnytimePreservesStream(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			tn := newTestNet(t, 2)
			c, s := tn.connect(0, 1, 5000)
			rng := rand.New(rand.NewSource(seed))

			var want, gotTotal []byte
			buf := make([]byte, 32768)
			pushed := 0
			read := 0

			drain := func(conn *TCPConn) {
				for {
					n, err := conn.Recv(buf, false)
					if err != nil {
						return
					}
					gotTotal = append(gotTotal, buf[:n]...)
					read += n
				}
			}

			for round := 0; round < 6; round++ {
				// Random traffic, partially drained.
				for i := 0; i < 10; i++ {
					chunk := pattern(rng.Intn(5000)+1, byte(rng.Intn(256)))
					want = append(want, chunk...)
					pushed += len(chunk)
					rem := chunk
					for len(rem) > 0 {
						n, err := c.Send(rem)
						if err == ErrWouldBlock {
							tn.run(5 * sim.Millisecond)
							drain(s)
							continue
						}
						if err != nil {
							t.Fatalf("send: %v", err)
						}
						rem = rem[n:]
					}
					tn.run(sim.Duration(rng.Intn(int(2 * sim.Millisecond))))
					if rng.Intn(3) == 0 {
						drain(s)
					}
				}

				// Checkpoint at an arbitrary instant: disable comms,
				// capture, destroy, restore, re-enable.
				thaw := freeze(tn, 0, 1)
				tn.run(sim.Duration(rng.Intn(int(3 * sim.Millisecond))))
				stC, err := c.CaptureState()
				if err != nil {
					t.Fatalf("capture client: %v", err)
				}
				stS, err := s.CaptureState()
				if err != nil {
					t.Fatalf("capture server: %v", err)
				}
				c.Destroy()
				s.Destroy()
				if c, err = tn.stacks[0].RestoreTCP(stC); err != nil {
					t.Fatalf("restore client: %v", err)
				}
				if s, err = tn.stacks[1].RestoreTCP(stS); err != nil {
					t.Fatalf("restore server: %v", err)
				}
				thaw()
				tn.run(sim.Duration(rng.Intn(int(10 * sim.Millisecond))))
				drain(s)
			}

			// Final drain: everything pushed must arrive.
			deadline := 0
			for read < pushed {
				tn.run(20 * sim.Millisecond)
				drain(s)
				deadline++
				if deadline > 5000 {
					t.Fatalf("stalled: read %d of %d", read, pushed)
				}
			}
			if !bytes.Equal(gotTotal, want) {
				t.Fatalf("seed %d: stream corrupted across %d checkpoints (len %d vs %d)",
					seed, 6, len(gotTotal), len(want))
			}
		})
	}
}

// TestPropertyInvariantAtEveryCapture samples the §5.1 TCP invariant
// (unack_nxt <= rcv_nxt <= snd_nxt) at many random capture points.
func TestPropertyInvariantAtEveryCapture(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		chunk := pattern(rng.Intn(4000)+1, byte(i))
		for len(chunk) > 0 {
			n, err := c.Send(chunk)
			if err == ErrWouldBlock {
				tn.run(2 * sim.Millisecond)
				tn.recvN(s, s.ReadableBytes())
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			chunk = chunk[n:]
		}
		tn.run(sim.Duration(rng.Intn(int(sim.Millisecond))))

		thaw := freeze(tn, 0, 1)
		stC, err := c.CaptureState()
		if err != nil {
			t.Fatal(err)
		}
		stS, err := s.CaptureState()
		if err != nil {
			t.Fatal(err)
		}
		thaw()
		sndNxt := stC.SndUna
		for _, sg := range stC.SendSegments {
			sndNxt += uint32(len(sg.Data))
		}
		sndNxt += uint32(len(stC.SendPending))
		if !seqLE(stC.SndUna, stS.RcvNxt) || !seqLE(stS.RcvNxt, sndNxt) {
			t.Fatalf("iteration %d: invariant violated una=%d rcv=%d nxt=%d",
				i, stC.SndUna, stS.RcvNxt, sndNxt)
		}
	}
}
