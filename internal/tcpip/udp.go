package tcpip

import "fmt"

// UDPMessage is a received datagram with its source endpoint.
type UDPMessage struct {
	From AddrPort
	Data []byte
}

// UDPConn is a UDP socket. The simulation uses UDP for DHCP (§4.2) and
// for test traffic.
type UDPConn struct {
	stack  *Stack
	local  AddrPort
	queue  []UDPMessage
	limit  int
	closed bool
	notify func()

	// Broadcast permits sending to the limited broadcast address, like
	// SO_BROADCAST.
	Broadcast bool
}

// defaultUDPQueueLimit bounds the receive queue in datagrams.
const defaultUDPQueueLimit = 64

// OpenUDP binds a UDP socket to local. A zero port allocates an ephemeral
// port; an unspecified address receives datagrams for any interface.
func (s *Stack) OpenUDP(local AddrPort) (*UDPConn, error) {
	if !local.Addr.IsAny() && s.ifaceByIP(local.Addr) == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, local.Addr)
	}
	if local.Port == 0 {
		p, err := s.allocEphemeralPort(local.Addr)
		if err != nil {
			return nil, err
		}
		local.Port = p
	} else if _, ok := s.udpConns[local]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, local)
	}
	u := &UDPConn{stack: s, local: local, limit: defaultUDPQueueLimit}
	s.udpConns[local] = u
	return u, nil
}

// LocalAddr returns the socket's bound endpoint.
func (u *UDPConn) LocalAddr() AddrPort { return u.local }

// SetNotify installs a callback invoked whenever a datagram arrives.
func (u *UDPConn) SetNotify(fn func()) { u.notify = fn }

// SendTo transmits data to remote. The source address is the socket's
// bound address, or the first interface when bound to the unspecified
// address.
func (u *UDPConn) SendTo(remote AddrPort, data []byte) error {
	if u.closed {
		return ErrClosed
	}
	src := u.local.Addr
	if src.IsAny() {
		a, ok := u.stack.FirstAddr()
		if !ok {
			return ErrNoRoute
		}
		src = a
	}
	if remote.Addr.IsBroadcast() && !u.Broadcast {
		return fmt.Errorf("tcpip: broadcast not enabled on socket %s", u.local)
	}
	body := make([]byte, len(data))
	copy(body, data)
	pkt := &Packet{
		Src:   src,
		Dst:   remote.Addr,
		Proto: ProtoUDP,
		TTL:   64,
		Body:  &Datagram{SrcPort: u.local.Port, DstPort: remote.Port, Data: body},
	}
	return u.stack.sendIP(pkt)
}

// RecvFrom dequeues one datagram, or returns ErrWouldBlock.
func (u *UDPConn) RecvFrom() (UDPMessage, error) {
	if len(u.queue) == 0 {
		if u.closed {
			return UDPMessage{}, ErrClosed
		}
		return UDPMessage{}, ErrWouldBlock
	}
	m := u.queue[0]
	u.queue = u.queue[1:]
	return m, nil
}

// Pending returns the number of queued datagrams.
func (u *UDPConn) Pending() int { return len(u.queue) }

// Close releases the socket.
func (u *UDPConn) Close() {
	if u.closed {
		return
	}
	u.closed = true
	delete(u.stack.udpConns, u.local)
}

// PendingMessages returns a copy of the receive queue (checkpointer).
func (u *UDPConn) PendingMessages() []UDPMessage {
	out := make([]UDPMessage, len(u.queue))
	copy(out, u.queue)
	return out
}

// RestoreMessages refills the receive queue from a checkpoint image.
func (u *UDPConn) RestoreMessages(ms []UDPMessage) {
	u.queue = append(u.queue, ms...)
}

// rxUDP delivers a datagram to the matching socket: exact address match
// first, then wildcard-address match, including broadcasts.
func (s *Stack) rxUDP(p *Packet, d *Datagram) {
	deliver := func(u *UDPConn) {
		if len(u.queue) >= u.limit {
			return // tail drop, like a full socket buffer
		}
		u.queue = append(u.queue, UDPMessage{
			From: AddrPort{Addr: p.Src, Port: d.SrcPort},
			Data: d.Data,
		})
		if u.notify != nil {
			u.notify()
		}
	}
	if p.Dst.IsBroadcast() {
		// Broadcasts reach every socket on the port, however bound.
		for ap, u := range s.udpConns {
			if ap.Port == d.DstPort {
				deliver(u)
			}
		}
		return
	}
	if u, ok := s.udpConns[AddrPort{Addr: p.Dst, Port: d.DstPort}]; ok {
		deliver(u)
		return
	}
	if u, ok := s.udpConns[AddrPort{Port: d.DstPort}]; ok {
		deliver(u)
	}
}
