package tcpip

import (
	"fmt"
	"io"

	"cruz/internal/sim"
	"cruz/internal/trace"
)

// State is a TCP connection state (RFC 793).
type State int

// TCP states.
const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

var stateNames = map[State]string{
	StateClosed:      "CLOSED",
	StateListen:      "LISTEN",
	StateSynSent:     "SYN_SENT",
	StateSynRcvd:     "SYN_RCVD",
	StateEstablished: "ESTABLISHED",
	StateFinWait1:    "FIN_WAIT_1",
	StateFinWait2:    "FIN_WAIT_2",
	StateCloseWait:   "CLOSE_WAIT",
	StateClosing:     "CLOSING",
	StateLastAck:     "LAST_ACK",
	StateTimeWait:    "TIME_WAIT",
}

func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// TCPParams tunes the TCP implementation. DefaultTCPParams matches the
// behaviour of the Linux 2.4 systems in the paper's testbed closely
// enough for the reproduced experiments.
type TCPParams struct {
	MSS         int          // maximum segment payload
	SndBufLimit int          // send buffer size in bytes
	RcvBufLimit int          // receive buffer / max advertised window
	RTOInit     sim.Duration // retransmission timeout before first RTT sample
	RTOMin      sim.Duration // floor for the computed RTO
	RTOMax      sim.Duration // cap under exponential backoff
	MSL         sim.Duration // maximum segment lifetime (TIME_WAIT = 2*MSL)
	SynRetries  int          // SYN retransmissions before giving up
	DataRetries int          // data retransmissions before reset
	InitialCwnd int          // initial congestion window, in segments
}

// DefaultTCPParams returns the standard parameter set.
func DefaultTCPParams() TCPParams {
	return TCPParams{
		MSS:         1460,
		SndBufLimit: 65536,
		RcvBufLimit: 65535,
		RTOInit:     1 * sim.Second,
		RTOMin:      200 * sim.Millisecond,
		RTOMax:      120 * sim.Second,
		MSL:         2 * sim.Second,
		SynRetries:  5,
		DataRetries: 15,
		InitialCwnd: 2,
	}
}

// TCPConnStats counts per-connection activity.
type TCPConnStats struct {
	BytesSent, BytesReceived uint64
	SegsSent, SegsReceived   uint64
	Retransmits              uint64
	FastRetransmits          uint64
	RTOFirings               uint64
	DupAcksReceived          uint64
}

// inflightSeg is one packetized, possibly-unsent-yet-unacked segment in
// the send buffer. The paper's checkpoint walks exactly this structure:
// "read and save the application-level data found in the send buffer and
// record the packet boundaries".
type inflightSeg struct {
	seq    uint32
	data   []byte
	fin    bool
	sentAt sim.Time
	retx   int
	// needsRetx marks a segment presumed lost after an RTO; recovery
	// retransmits marked segments under congestion-window clocking
	// (go-back-N with slow start, as classic TCP does after a timeout).
	needsRetx bool
}

func (g *inflightSeg) seqLen() uint32 {
	n := uint32(len(g.data))
	if g.fin {
		n++
	}
	return n
}

func (g *inflightSeg) end() uint32 { return g.seq + g.seqLen() }

// oooSeg is an out-of-order received segment awaiting reassembly.
type oooSeg struct {
	seq  uint32
	data []byte
	fin  bool
}

// TCPConn is a TCP connection endpoint. All operations are non-blocking:
// Send/Recv return ErrWouldBlock and the kernel layer sleeps the calling
// process until the notify callback fires.
type TCPConn struct {
	stack  *Stack
	params TCPParams
	tuple  FourTuple
	state  State

	// Send side. Sequence space: sndUna <= sndNxt; segs covers
	// [sndUna, sndNxt) in packetized form; pending holds accepted bytes
	// not yet packetized.
	iss       uint32
	sndUna    uint32
	sndNxt    uint32
	sndWnd    uint32
	segs      []*inflightSeg
	pending   []byte
	finQueued bool
	finSent   bool

	// Congestion control (Reno-flavoured, byte-counted).
	cwnd     int
	ssthresh int
	dupAcks  int

	// Receive side.
	irs               uint32
	rcvNxt            uint32
	rcvQueue          []byte
	rcvClosed         bool // in-order FIN consumed
	ooo               []oooSeg
	lastWndAdvertised uint32

	// altQueue holds receive-buffer bytes restored from a checkpoint
	// image. Zap's interposed recv drains it before touching live TCP
	// data (§4.1).
	altQueue []byte

	// Options.
	noDelay bool
	cork    bool

	// Timers and RTT estimation (Jacobson/Karn).
	rtoTimer     *sim.Event
	persistTimer *sim.Event
	twTimer      *sim.Event
	rto          sim.Duration
	srtt         sim.Duration
	rttvar       sim.Duration
	hasRTT       bool
	sampleSeq    uint32
	sampleAt     sim.Time
	sampleValid  bool

	synRetriesUsed int

	notify   func()
	err      error
	listener *TCPListener // set while a passive open completes

	// Stats counts activity on this connection.
	Stats TCPConnStats
}

// TCPListener is a passive TCP socket.
type TCPListener struct {
	stack   *Stack
	local   AddrPort
	backlog int
	synRcvd int
	acceptQ []*TCPConn
	notify  func()
	closed  bool
}

// ListenTCP creates a listening socket on local. A zero port allocates an
// ephemeral port; an unspecified address accepts connections to any local
// interface.
func (s *Stack) ListenTCP(local AddrPort, backlog int) (*TCPListener, error) {
	if !local.Addr.IsAny() && s.ifaceByIP(local.Addr) == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, local.Addr)
	}
	if local.Port == 0 {
		p, err := s.allocEphemeralPort(local.Addr)
		if err != nil {
			return nil, err
		}
		local.Port = p
	} else if !s.portFree(local.Addr, local.Port) {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, local)
	}
	if backlog <= 0 {
		backlog = 8
	}
	l := &TCPListener{stack: s, local: local, backlog: backlog}
	s.listeners[local] = l
	return l, nil
}

// LocalAddr returns the listening endpoint.
func (l *TCPListener) LocalAddr() AddrPort { return l.local }

// SetNotify installs a callback fired when a connection becomes ready to
// accept.
func (l *TCPListener) SetNotify(fn func()) { l.notify = fn }

// Acceptable reports whether Accept would succeed now.
func (l *TCPListener) Acceptable() bool { return len(l.acceptQ) > 0 }

// Accept dequeues an established connection or returns ErrWouldBlock.
func (l *TCPListener) Accept() (*TCPConn, error) {
	if l.closed {
		return nil, ErrClosed
	}
	if len(l.acceptQ) == 0 {
		return nil, ErrWouldBlock
	}
	c := l.acceptQ[0]
	l.acceptQ = l.acceptQ[1:]
	return c, nil
}

// Close stops listening. Connections already established or queued are
// aborted.
func (l *TCPListener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.stack.listeners, l.local)
	for _, c := range l.acceptQ {
		c.Abort()
	}
	l.acceptQ = nil
}

// DialTCP starts an active open from local to remote. If local.Addr is
// unspecified the first interface's address is used (the paper's Zap layer
// interposes bind/connect to force the pod's VIF address; see
// internal/zap). If local.Port is zero an ephemeral port is allocated.
// The returned connection is in SYN_SENT; the notify callback fires when
// it becomes established or fails.
func (s *Stack) DialTCP(local AddrPort, remote AddrPort) (*TCPConn, error) {
	if local.Addr.IsAny() {
		a, ok := s.FirstAddr()
		if !ok {
			return nil, ErrNoRoute
		}
		local.Addr = a
	}
	if s.ifaceByIP(local.Addr) == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, local.Addr)
	}
	if local.Port == 0 {
		p, err := s.allocEphemeralPort(local.Addr)
		if err != nil {
			return nil, err
		}
		local.Port = p
	}
	tuple := FourTuple{Local: local, Remote: remote}
	if _, ok := s.conns[tuple]; ok {
		return nil, fmt.Errorf("%w: %s", ErrConnExists, tuple)
	}
	c := s.newConn(tuple)
	c.setState(StateSynSent)
	s.conns[tuple] = c
	c.sendControl(FlagSYN, c.iss, 0)
	c.sndNxt = c.iss + 1
	c.armRTO()
	return c, nil
}

// newConn builds a connection with fresh sequence state.
func (s *Stack) newConn(tuple FourTuple) *TCPConn {
	p := DefaultTCPParams()
	iss := uint32(s.engine.Rand().Int63())
	c := &TCPConn{
		stack:             s,
		params:            p,
		tuple:             tuple,
		iss:               iss,
		sndUna:            iss,
		sndNxt:            iss,
		sndWnd:            uint32(p.MSS),
		cwnd:              p.InitialCwnd * p.MSS,
		ssthresh:          p.RcvBufLimit,
		rto:               p.RTOInit,
		lastWndAdvertised: uint32(p.RcvBufLimit),
	}
	return c
}

// Accessors.

// State returns the connection state.
func (c *TCPConn) State() State { return c.state }

// setState transitions the RFC 793 state machine, tracing the transition.
// All state changes (except construction and checkpoint restore, which
// install state rather than transition it) flow through here.
func (c *TCPConn) setState(next State) {
	if c.state == next {
		return
	}
	if tr := c.stack.tr; tr.Enabled() {
		tr.Instant(c.stack.name, "tcp", "state",
			trace.Str("conn", c.tuple.String()),
			trace.Str("from", c.state.String()),
			trace.Str("to", next.String()))
	}
	c.state = next
}

// LocalAddr returns the local endpoint.
func (c *TCPConn) LocalAddr() AddrPort { return c.tuple.Local }

// RemoteAddr returns the remote endpoint.
func (c *TCPConn) RemoteAddr() AddrPort { return c.tuple.Remote }

// Tuple returns the connection four-tuple.
func (c *TCPConn) Tuple() FourTuple { return c.tuple }

// Err returns the terminal error, if the connection failed.
func (c *TCPConn) Err() error { return c.err }

// SetNotify installs the state-change callback.
func (c *TCPConn) SetNotify(fn func()) { c.notify = fn }

// SetNoDelay disables (true) or enables (false) the Nagle algorithm.
// Restore sets it true while replaying the saved send buffer so packet
// boundaries survive (§4.1).
func (c *TCPConn) SetNoDelay(v bool) { c.noDelay = v; c.trySend() }

// NoDelay reports the Nagle setting.
func (c *TCPConn) NoDelay() bool { return c.noDelay }

// SetCork corks (true) or uncorks (false) the connection, like TCP_CORK.
func (c *TCPConn) SetCork(v bool) {
	c.cork = v
	if !v {
		c.trySend()
	}
}

// Cork reports the cork setting.
func (c *TCPConn) Cork() bool { return c.cork }

// Readable reports whether Recv would return data or EOF now.
func (c *TCPConn) Readable() bool {
	return len(c.altQueue) > 0 || len(c.rcvQueue) > 0 || c.rcvClosed || c.err != nil
}

// ReadableBytes returns the number of buffered readable bytes (restored
// alternate buffer plus live receive queue).
func (c *TCPConn) ReadableBytes() int { return len(c.altQueue) + len(c.rcvQueue) }

// WritableSpace returns the free send-buffer space in bytes.
func (c *TCPConn) WritableSpace() int {
	used := int(c.sndNxt-c.sndUna) + len(c.pending)
	space := c.params.SndBufLimit - used
	if space < 0 {
		return 0
	}
	return space
}

// Established reports whether the connection is in a data-transfer state.
func (c *TCPConn) Established() bool {
	switch c.state {
	case StateEstablished, StateCloseWait, StateFinWait1, StateFinWait2, StateClosing:
		return true
	}
	return false
}

// Send queues bytes for transmission, returning how many were accepted.
// It returns ErrWouldBlock when the send buffer is full, and the terminal
// error if the connection failed or is closing.
func (c *TCPConn) Send(b []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	switch c.state {
	case StateEstablished, StateCloseWait:
	case StateSynSent, StateSynRcvd:
		return 0, ErrNotConnected
	default:
		return 0, ErrClosed
	}
	space := c.WritableSpace()
	if space == 0 {
		return 0, ErrWouldBlock
	}
	n := len(b)
	if n > space {
		n = space
	}
	c.pending = append(c.pending, b[:n]...)
	c.trySend()
	return n, nil
}

// Recv copies buffered data into b. With peek set, the data is not
// consumed (MSG_PEEK; the paper's checkpoint uses this to read receive
// buffers non-destructively). At end of stream it returns (0, io.EOF).
func (c *TCPConn) Recv(b []byte, peek bool) (int, error) {
	if len(c.altQueue) == 0 && len(c.rcvQueue) == 0 {
		if c.err != nil {
			return 0, c.err
		}
		if c.rcvClosed {
			return 0, io.EOF
		}
		if !c.Established() && c.state != StateTimeWait {
			return 0, ErrNotConnected
		}
		return 0, ErrWouldBlock
	}
	n := 0
	// Alternate (restored) buffer drains first, transparently.
	n += copyFrom(b, c.altQueue)
	if n < len(b) {
		n += copyFrom(b[n:], c.rcvQueue)
	}
	if peek {
		return n, nil
	}
	fromAlt := n
	if fromAlt > len(c.altQueue) {
		fromAlt = len(c.altQueue)
	}
	c.altQueue = c.altQueue[fromAlt:]
	fromLive := n - fromAlt
	c.rcvQueue = c.rcvQueue[fromLive:]
	c.maybeSendWindowUpdate(fromLive)
	return n, nil
}

func copyFrom(dst, src []byte) int {
	if len(src) == 0 {
		return 0
	}
	return copy(dst, src)
}

// maybeSendWindowUpdate sends a pure ACK when the app's read reopens a
// window the peer may believe is closed or nearly closed.
func (c *TCPConn) maybeSendWindowUpdate(consumed int) {
	if consumed == 0 || !c.Established() {
		return
	}
	newWnd := c.rcvWindow()
	if c.lastWndAdvertised == 0 || (newWnd >= uint32(c.params.MSS) && c.lastWndAdvertised < uint32(c.params.MSS)) {
		c.sendControl(FlagACK, c.sndNxt, c.rcvNxt)
	}
}

// Close initiates an orderly close. Buffered data is still delivered; the
// FIN follows the last pending byte.
func (c *TCPConn) Close() error {
	switch c.state {
	case StateClosed, StateTimeWait, StateLastAck, StateClosing, StateFinWait1, StateFinWait2:
		return nil
	case StateSynSent, StateSynRcvd:
		c.teardown(nil)
		return nil
	case StateEstablished:
		c.setState(StateFinWait1)
	case StateCloseWait:
		c.setState(StateLastAck)
	}
	c.finQueued = true
	c.trySend()
	return nil
}

// Abort sends a RST and destroys the connection immediately (SO_LINGER-0
// semantics). Pod teardown after a checkpointed migration uses it so the
// old instance never speaks again.
func (c *TCPConn) Abort() {
	if c.state == StateClosed {
		return
	}
	if c.Established() || c.state == StateSynRcvd {
		c.sendControl(FlagRST, c.sndNxt, 0)
	}
	c.teardown(ErrClosed)
}

// Destroy removes the connection silently — no RST, no FIN. It is used
// after a connection's state has been captured into a checkpoint image:
// the peer must keep retransmitting into the void (or to the restored
// incarnation), never learning that this endpoint went away.
func (c *TCPConn) Destroy() {
	if c.state == StateClosed {
		return
	}
	c.teardown(ErrClosed)
}

// teardown releases timers and the connection-table entry.
func (c *TCPConn) teardown(err error) {
	if c.err == nil {
		c.err = err
	}
	c.setState(StateClosed)
	c.stack.engine.Cancel(c.rtoTimer)
	c.rtoTimer = nil
	c.stack.engine.Cancel(c.persistTimer)
	c.persistTimer = nil
	c.stack.engine.Cancel(c.twTimer)
	c.twTimer = nil
	delete(c.stack.conns, c.tuple)
	c.wake()
}

func (c *TCPConn) wake() {
	if c.notify != nil {
		c.notify()
	}
}

// rcvWindow returns the advertised receive window.
func (c *TCPConn) rcvWindow() uint32 {
	w := c.params.RcvBufLimit - len(c.rcvQueue)
	if w < 0 {
		w = 0
	}
	if w > 65535 {
		w = 65535
	}
	return uint32(w)
}

// sendControl emits a data-less segment with the given flags.
func (c *TCPConn) sendControl(flags Flags, seq, ack uint32) {
	seg := &Segment{
		SrcPort: c.tuple.Local.Port,
		DstPort: c.tuple.Remote.Port,
		Seq:     seq,
		Ack:     ack,
		Flags:   flags,
		Window:  uint16(c.rcvWindow()),
	}
	c.lastWndAdvertised = uint32(seg.Window)
	c.Stats.SegsSent++
	//cruzvet:allow errdrop segment transmit is best-effort; a no-route failure looks like loss and the RTO recovers it
	c.stack.sendIP(&Packet{
		Src:   c.tuple.Local.Addr,
		Dst:   c.tuple.Remote.Addr,
		Proto: ProtoTCP,
		TTL:   64,
		Body:  seg,
	})
}

// transmitSeg puts an in-flight segment on the wire.
func (c *TCPConn) transmitSeg(g *inflightSeg) {
	flags := FlagACK
	if g.fin {
		flags |= FlagFIN
	}
	if len(g.data) > 0 {
		flags |= FlagPSH
	}
	seg := &Segment{
		SrcPort: c.tuple.Local.Port,
		DstPort: c.tuple.Remote.Port,
		Seq:     g.seq,
		Ack:     c.rcvNxt,
		Flags:   flags,
		Window:  uint16(c.rcvWindow()),
		Data:    g.data,
	}
	c.lastWndAdvertised = uint32(seg.Window)
	g.sentAt = c.stack.engine.Now()
	c.Stats.SegsSent++
	c.Stats.BytesSent += uint64(len(g.data))
	//cruzvet:allow errdrop segment transmit is best-effort; a no-route failure looks like loss and the RTO recovers it
	c.stack.sendIP(&Packet{
		Src:   c.tuple.Local.Addr,
		Dst:   c.tuple.Remote.Addr,
		Proto: ProtoTCP,
		TTL:   64,
		Body:  seg,
	})
	// Time one segment at a time for RTT (Karn's rule: never a
	// retransmitted one).
	if !c.sampleValid && g.retx == 0 {
		c.sampleValid = true
		c.sampleSeq = g.end()
		c.sampleAt = g.sentAt
	}
}

// inflightBytes returns the sequence-space span currently unacknowledged.
func (c *TCPConn) inflightBytes() int { return int(c.sndNxt - c.sndUna) }

// usableWindow returns how many more bytes may enter flight.
func (c *TCPConn) usableWindow() int {
	wnd := int(c.sndWnd)
	if c.cwnd < wnd {
		wnd = c.cwnd
	}
	u := wnd - c.inflightBytes()
	if u < 0 {
		return 0
	}
	return u
}

// trySend packetizes pending data and transmits whatever the send window
// permits, applying Nagle and cork rules, and finally the queued FIN.
func (c *TCPConn) trySend() {
	if !c.Established() && c.state != StateLastAck {
		return
	}
	for len(c.pending) > 0 {
		usable := c.usableWindow()
		if usable == 0 {
			c.armPersistIfNeeded()
			break
		}
		n := len(c.pending)
		if n > c.params.MSS {
			n = c.params.MSS
		}
		if n > usable {
			n = usable
		}
		if n < c.params.MSS && len(c.pending) < c.params.MSS {
			// Sub-MSS segment: cork always holds it; Nagle holds it
			// while anything is in flight.
			if c.cork {
				break
			}
			if !c.noDelay && c.inflightBytes() > 0 {
				break
			}
		}
		data := c.stack.getSegBuf(n)
		copy(data, c.pending)
		c.pending = c.pending[n:]
		g := &inflightSeg{seq: c.sndNxt, data: data}
		c.segs = append(c.segs, g)
		c.sndNxt += uint32(n)
		c.transmitSeg(g)
	}
	if c.finQueued && !c.finSent && len(c.pending) == 0 {
		g := &inflightSeg{seq: c.sndNxt, fin: true}
		c.segs = append(c.segs, g)
		c.sndNxt++
		c.finSent = true
		c.transmitSeg(g)
	}
	if len(c.segs) > 0 {
		c.armRTO()
	}
}

// armRTO starts the retransmission timer if it is not already running.
// The timer field is nil'd whenever the event fires or is canceled (the
// engine recycles dead events), so non-nil means pending.
func (c *TCPConn) armRTO() {
	if c.rtoTimer != nil {
		return
	}
	c.rtoTimer = c.stack.engine.Schedule(c.rto, c.onRTO)
}

// resetRTO restarts the retransmission timer.
func (c *TCPConn) resetRTO() {
	c.stack.engine.Cancel(c.rtoTimer)
	c.rtoTimer = c.stack.engine.Schedule(c.rto, c.onRTO)
}

// onRTO fires when the oldest outstanding segment times out.
func (c *TCPConn) onRTO() {
	c.rtoTimer = nil // fired: the engine recycles it
	switch c.state {
	case StateSynSent:
		c.Stats.RTOFirings++
		if c.retrySYN() {
			return
		}
		c.teardown(ErrTimeout)
		return
	case StateClosed, StateListen, StateTimeWait:
		return
	}
	if len(c.segs) == 0 {
		return
	}
	c.Stats.RTOFirings++
	g := c.segs[0]
	if g.retx >= c.params.DataRetries {
		c.teardown(ErrTimeout)
		return
	}
	g.retx++
	c.Stats.Retransmits++
	if tr := c.stack.tr; tr.Enabled() {
		tr.Instant(c.stack.name, "tcp", "rto",
			trace.Str("conn", c.tuple.String()),
			trace.Int("retx", int64(g.retx)),
			trace.Num("rto_ms", c.rto.Milliseconds()))
	}
	// Loss response: collapse to one segment and slow-start again. All
	// other outstanding segments are presumed lost too and will be
	// retransmitted as the window reopens (pumpRetransmits).
	c.ssthresh = maxInt(c.inflightBytes()/2, 2*c.params.MSS)
	c.cwnd = c.params.MSS
	c.dupAcks = 0
	c.sampleValid = false // Karn: no sample across retransmission
	for _, other := range c.segs[1:] {
		other.needsRetx = true
	}
	g.needsRetx = false
	c.transmitSeg(g)
	// Exponential backoff.
	c.rto *= 2
	if c.rto > c.params.RTOMax {
		c.rto = c.params.RTOMax
	}
	c.resetRTO()
}

// retrySYN retransmits the initial SYN with backoff; reports whether a
// retry was scheduled.
func (c *TCPConn) retrySYN() bool {
	if c.synRetriesUsed >= c.params.SynRetries {
		return false
	}
	c.synRetriesUsed++
	c.Stats.Retransmits++
	c.sendControl(FlagSYN, c.iss, 0)
	c.rto *= 2
	if c.rto > c.params.RTOMax {
		c.rto = c.params.RTOMax
	}
	c.resetRTO()
	return true
}

// pumpRetransmits re-sends segments presumed lost after an RTO, limited
// by the congestion window measured from the left edge of the send
// buffer. Called on each ACK that makes forward progress, it yields the
// exponential slow-start recovery of the outstanding flight.
func (c *TCPConn) pumpRetransmits() {
	budget := c.cwnd
	for _, g := range c.segs {
		if budget <= 0 {
			return
		}
		if g.needsRetx {
			g.needsRetx = false
			g.retx++
			c.Stats.Retransmits++
			c.transmitSeg(g)
		}
		budget -= maxInt(len(g.data), 1)
	}
}

// armPersistIfNeeded starts the zero-window probe timer.
func (c *TCPConn) armPersistIfNeeded() {
	if c.sndWnd != 0 || len(c.pending) == 0 || c.inflightBytes() > 0 {
		return
	}
	if c.persistTimer != nil {
		return
	}
	c.persistTimer = c.stack.engine.Schedule(c.rto, func() {
		c.persistTimer = nil // fired: the engine recycles it
		if c.sndWnd == 0 && len(c.pending) > 0 && c.Established() {
			// Probe with one byte of pending data.
			g := &inflightSeg{seq: c.sndNxt, data: []byte{c.pending[0]}}
			c.pending = c.pending[1:]
			c.segs = append(c.segs, g)
			c.sndNxt++
			c.transmitSeg(g)
			c.armRTO()
		}
	})
}

// updateRTT folds an RTT measurement into the estimator (Jacobson).
func (c *TCPConn) updateRTT(sample sim.Duration) {
	if !c.hasRTT {
		c.srtt = sample
		c.rttvar = sample / 2
		c.hasRTT = true
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.computeRTO()
}

// computeRTO derives the timeout from the estimator, clamped to the
// configured bounds.
func (c *TCPConn) computeRTO() sim.Duration {
	if !c.hasRTT {
		return c.params.RTOInit
	}
	rto := c.srtt + 4*c.rttvar
	if rto < c.params.RTOMin {
		rto = c.params.RTOMin
	}
	if rto > c.params.RTOMax {
		rto = c.params.RTOMax
	}
	return rto
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// rxTCP demultiplexes an inbound TCP segment to a connection or listener.
func (s *Stack) rxTCP(p *Packet, seg *Segment) {
	tuple := FourTuple{
		Local:  AddrPort{Addr: p.Dst, Port: seg.DstPort},
		Remote: AddrPort{Addr: p.Src, Port: seg.SrcPort},
	}
	if c, ok := s.conns[tuple]; ok {
		c.handleSegment(seg)
		return
	}
	// New connection request?
	if seg.Flags.Has(FlagSYN) && !seg.Flags.Has(FlagACK) {
		l := s.listeners[tuple.Local]
		if l == nil {
			l = s.listeners[AddrPort{Port: seg.DstPort}]
		}
		if l != nil && !l.closed {
			l.handleSYN(tuple, seg)
			return
		}
	}
	// No socket: answer with RST (unless the segment itself is a RST).
	if !seg.Flags.Has(FlagRST) {
		s.Stats.NoSocketRSTs++
		rst := &Segment{
			SrcPort: seg.DstPort,
			DstPort: seg.SrcPort,
			Flags:   FlagRST | FlagACK,
			Seq:     seg.Ack,
			Ack:     seg.Seq + seg.seqLen(),
		}
		s.sendIP(&Packet{Src: p.Dst, Dst: p.Src, Proto: ProtoTCP, TTL: 64, Body: rst}) //cruzvet:allow errdrop RST is fire-and-forget per TCP semantics
	}
}

// handleSYN performs the passive open.
func (l *TCPListener) handleSYN(tuple FourTuple, seg *Segment) {
	if l.synRcvd+len(l.acceptQ) >= l.backlog {
		return // backlog full: drop, client will retry
	}
	c := l.stack.newConn(tuple)
	c.setState(StateSynRcvd)
	c.listener = l
	c.irs = seg.Seq
	c.rcvNxt = seg.Seq + 1
	c.sndWnd = uint32(seg.Window)
	l.stack.conns[tuple] = c
	l.synRcvd++
	c.sendControl(FlagSYN|FlagACK, c.iss, c.rcvNxt)
	c.sndNxt = c.iss + 1
	c.armRTO()
}

// handleSegment is the connection-state machine.
func (c *TCPConn) handleSegment(seg *Segment) {
	c.Stats.SegsReceived++

	if seg.Flags.Has(FlagRST) {
		c.handleRST(seg)
		return
	}

	switch c.state {
	case StateSynSent:
		if seg.Flags.Has(FlagSYN) && seg.Flags.Has(FlagACK) && seg.Ack == c.iss+1 {
			c.irs = seg.Seq
			c.rcvNxt = seg.Seq + 1
			c.sndUna = seg.Ack
			c.sndWnd = uint32(seg.Window)
			c.setState(StateEstablished)
			c.rto = c.params.RTOInit
			c.stack.engine.Cancel(c.rtoTimer)
			c.rtoTimer = nil
			c.sendControl(FlagACK, c.sndNxt, c.rcvNxt)
			c.wake()
			c.trySend()
		}
		return
	case StateSynRcvd:
		if seg.Flags.Has(FlagACK) && seg.Ack == c.iss+1 {
			c.sndUna = seg.Ack
			c.sndWnd = uint32(seg.Window)
			c.setState(StateEstablished)
			c.stack.engine.Cancel(c.rtoTimer)
			c.rtoTimer = nil
			if l := c.listener; l != nil {
				l.synRcvd--
				l.acceptQ = append(l.acceptQ, c)
				c.listener = nil
				if l.notify != nil {
					l.notify()
				}
			}
			// Fall through: the ACK may carry data.
		} else if seg.Flags.Has(FlagSYN) {
			// Duplicate SYN: re-answer.
			c.sendControl(FlagSYN|FlagACK, c.iss, c.rcvNxt)
			return
		} else {
			return
		}
	case StateClosed, StateListen:
		return
	}

	if seg.Flags.Has(FlagACK) {
		c.processACK(seg)
		if c.state == StateClosed {
			return
		}
	}
	if len(seg.Data) > 0 || seg.Flags.Has(FlagFIN) {
		c.processData(seg)
	}
}

// handleRST validates and applies a reset.
func (c *TCPConn) handleRST(seg *Segment) {
	switch c.state {
	case StateSynSent:
		if seg.Flags.Has(FlagACK) && seg.Ack == c.iss+1 {
			c.teardown(ErrReset)
		}
	case StateClosed:
	default:
		// Acceptable if within the receive window (simplified check).
		if seqLE(c.rcvNxt, seg.Seq) || seg.Seq == c.rcvNxt-1 || c.rcvNxt == seg.Seq {
			c.teardown(ErrReset)
		} else {
			c.teardown(ErrReset)
		}
	}
}

// processACK handles acknowledgement, window update, RTT sampling,
// congestion control, and FIN-progress transitions.
func (c *TCPConn) processACK(seg *Segment) {
	ack := seg.Ack
	if seqGT(ack, c.sndNxt) {
		// Acks something not yet sent: ignore (stale restore peer will
		// be corrected by retransmission).
		return
	}
	if seqGT(ack, c.sndUna) {
		acked := ack - c.sndUna
		c.sndUna = ack
		c.dupAcks = 0
		// Drop fully acknowledged segments, recycling the buffers of
		// those sent exactly once: their single frame has been consumed
		// or dropped, so nothing can still reference the bytes. A
		// retransmitted segment may have a duplicate frame in flight and
		// its buffer is left to the GC.
		for len(c.segs) > 0 && seqLE(c.segs[0].end(), ack) {
			if g := c.segs[0]; g.retx == 0 && len(g.data) > 0 {
				c.stack.putSegBuf(g.data)
			}
			c.segs = c.segs[1:]
		}
		// RTT sample (Karn-filtered at transmit time).
		if c.sampleValid && seqLE(c.sampleSeq, ack) {
			c.updateRTT(c.stack.engine.Now().Sub(c.sampleAt))
			c.sampleValid = false
		}
		// Congestion window growth.
		if c.cwnd < c.ssthresh {
			c.cwnd += int(acked) // slow start
		} else {
			c.cwnd += maxInt(c.params.MSS*c.params.MSS/maxInt(c.cwnd, 1), 1)
		}
		if c.cwnd > c.params.SndBufLimit {
			c.cwnd = c.params.SndBufLimit
		}
		// Forward progress clears any retransmission backoff: the RTO
		// returns to the estimator's value, as in Linux.
		c.rto = c.computeRTO()
		c.sndWnd = uint32(seg.Window)
		if len(c.segs) == 0 {
			c.stack.engine.Cancel(c.rtoTimer)
			c.rtoTimer = nil
		} else {
			c.resetRTO()
		}
		c.pumpRetransmits()
		// Our FIN acknowledged?
		if c.finSent && ack == c.sndNxt {
			switch c.state {
			case StateFinWait1:
				c.setState(StateFinWait2)
			case StateClosing:
				c.enterTimeWait()
			case StateLastAck:
				c.teardown(nil)
				return
			}
		}
		c.wake() // writable space opened
		c.trySend()
		return
	}
	// Duplicate ACK.
	c.sndWnd = uint32(seg.Window)
	if ack == c.sndUna && len(c.segs) > 0 && len(seg.Data) == 0 {
		c.dupAcks++
		c.Stats.DupAcksReceived++
		if c.dupAcks == 3 {
			// Fast retransmit.
			g := c.segs[0]
			g.retx++
			c.Stats.FastRetransmits++
			c.Stats.Retransmits++
			if tr := c.stack.tr; tr.Enabled() {
				tr.Instant(c.stack.name, "tcp", "fast_retransmit",
					trace.Str("conn", c.tuple.String()),
					trace.Int("seq", int64(g.seq)))
			}
			c.ssthresh = maxInt(c.inflightBytes()/2, 2*c.params.MSS)
			c.cwnd = c.ssthresh
			c.sampleValid = false
			c.transmitSeg(g)
			c.resetRTO()
		}
	}
	if c.sndWnd > 0 {
		c.trySend() // window may have opened
	}
}

// processData handles payload bytes and FIN sequencing, with out-of-order
// reassembly and cumulative ACK generation.
func (c *TCPConn) processData(seg *Segment) {
	seq := seg.Seq
	data := seg.Data
	fin := seg.Flags.Has(FlagFIN)

	// Trim data the receiver already has.
	if seqLT(seq, c.rcvNxt) {
		skip := c.rcvNxt - seq
		if skip >= uint32(len(data)) {
			if !(fin && seq+uint32(len(data)) == c.rcvNxt) {
				// Entirely old: re-ACK and stop (keeps dup-data loops
				// from growing the queue after restore replays).
				c.sendControl(FlagACK, c.sndNxt, c.rcvNxt)
				return
			}
			data = nil
		} else {
			data = data[skip:]
		}
		seq = c.rcvNxt
	}

	if seq == c.rcvNxt {
		c.ingest(data, fin)
		c.drainOOO()
	} else {
		// Out of order: queue and send a duplicate ACK.
		c.insertOOO(oooSeg{seq: seq, data: data, fin: fin})
	}
	c.sendControl(FlagACK, c.sndNxt, c.rcvNxt)
	c.wake()
}

// ingest appends in-order data (and FIN) at rcvNxt.
func (c *TCPConn) ingest(data []byte, fin bool) {
	if len(data) > 0 {
		c.Stats.BytesReceived += uint64(len(data))
		c.rcvQueue = append(c.rcvQueue, data...)
		c.rcvNxt += uint32(len(data))
	}
	if fin && !c.rcvClosed {
		c.rcvNxt++
		c.rcvClosed = true
		switch c.state {
		case StateEstablished:
			c.setState(StateCloseWait)
		case StateFinWait1:
			// Their FIN before our FIN's ACK: simultaneous close.
			c.setState(StateClosing)
		case StateFinWait2:
			c.enterTimeWait()
		}
	}
}

// insertOOO stores an out-of-order segment, keeping the list seq-sorted.
func (c *TCPConn) insertOOO(s oooSeg) {
	const maxOOO = 256
	if len(c.ooo) >= maxOOO {
		return
	}
	for _, e := range c.ooo {
		if e.seq == s.seq {
			return // duplicate
		}
	}
	c.ooo = append(c.ooo, s)
	for i := len(c.ooo) - 1; i > 0 && seqLT(c.ooo[i].seq, c.ooo[i-1].seq); i-- {
		c.ooo[i], c.ooo[i-1] = c.ooo[i-1], c.ooo[i]
	}
}

// drainOOO ingests any queued segments now contiguous with rcvNxt.
func (c *TCPConn) drainOOO() {
	for len(c.ooo) > 0 {
		s := c.ooo[0]
		if seqGT(s.seq, c.rcvNxt) {
			return
		}
		c.ooo = c.ooo[1:]
		data := s.data
		if seqLT(s.seq, c.rcvNxt) {
			skip := c.rcvNxt - s.seq
			if skip >= uint32(len(data)) {
				if !s.fin {
					continue
				}
				data = nil
			} else {
				data = data[skip:]
			}
		}
		c.ingest(data, s.fin)
	}
}

// enterTimeWait parks the connection for 2*MSL, then frees the tuple.
func (c *TCPConn) enterTimeWait() {
	c.setState(StateTimeWait)
	c.stack.engine.Cancel(c.rtoTimer)
	c.rtoTimer = nil
	c.twTimer = c.stack.engine.Schedule(2*c.params.MSL, func() { c.teardown(nil) })
	c.wake()
}
