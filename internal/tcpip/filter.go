package tcpip

// This file implements the packet-filter hook the Cruz coordination
// protocol depends on. In the paper (§5), each Checkpoint Agent installs a
// netfilter rule that silently drops all traffic to or from the local pod
// before the local checkpoint is taken, and removes it when the pod is
// allowed to continue. The filter sits at the lowest level of the stack:
// it sees packets after the NIC but before demultiplexing (input hook) and
// after the transport layer but before ARP/transmit (output hook).

// Verdict is a filter decision.
type Verdict int

// Verdicts.
const (
	VerdictAccept Verdict = iota
	VerdictDrop
)

// Hook identifies where in the stack a rule applies.
type Hook int

// Hooks.
const (
	HookInput Hook = 1 << iota
	HookOutput
	HookBoth = HookInput | HookOutput
)

// Rule is one filter rule.
type Rule struct {
	id    int
	hooks Hook
	match func(*Packet) bool
}

// Filter is an ordered rule list, one per stack. The zero value accepts
// everything.
type Filter struct {
	rules  []*Rule
	nextID int
	// Stats count verdicts for observability and tests.
	Stats FilterStats
}

// FilterStats counts filter activity.
type FilterStats struct {
	InputDropped  uint64
	OutputDropped uint64
}

// AddRule installs a rule at the given hooks and returns its id.
func (f *Filter) AddRule(hooks Hook, match func(*Packet) bool) int {
	f.nextID++
	f.rules = append(f.rules, &Rule{id: f.nextID, hooks: hooks, match: match})
	return f.nextID
}

// AddDropAddr installs the rule Cruz agents use: silently drop every
// packet whose source or destination is ip, in both directions.
func (f *Filter) AddDropAddr(ip Addr) int {
	return f.AddRule(HookBoth, func(p *Packet) bool {
		return p.Src == ip || p.Dst == ip
	})
}

// RemoveRule deletes the rule with the given id. Removing an unknown id is
// a no-op.
func (f *Filter) RemoveRule(id int) {
	for i, r := range f.rules {
		if r.id == id {
			f.rules = append(f.rules[:i], f.rules[i+1:]...)
			return
		}
	}
}

// RuleCount returns the number of installed rules.
func (f *Filter) RuleCount() int { return len(f.rules) }

// verdict evaluates the packet at the given hook.
func (f *Filter) verdict(hook Hook, p *Packet) Verdict {
	for _, r := range f.rules {
		if r.hooks&hook != 0 && r.match(p) {
			if hook == HookInput {
				f.Stats.InputDropped++
			} else {
				f.Stats.OutputDropped++
			}
			return VerdictDrop
		}
	}
	return VerdictAccept
}
