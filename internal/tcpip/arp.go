package tcpip

import (
	"fmt"

	"cruz/internal/ether"
	"cruz/internal/sim"
)

// ARP operation codes.
const (
	arpRequest = 1
	arpReply   = 2
)

// ARPPacket is an Address Resolution Protocol message, carried directly in
// an Ethernet frame.
type ARPPacket struct {
	Op         int
	SenderMAC  ether.MAC
	SenderIP   Addr
	TargetMAC  ether.MAC
	TargetIP   Addr
	Gratuitous bool // announcement after migration (§4.2)
}

// WireSize implements ether.Payload.
func (a *ARPPacket) WireSize() int { return 28 }

func (a *ARPPacket) String() string {
	op := "request"
	if a.Op == arpReply {
		op = "reply"
	}
	return fmt.Sprintf("ARP %s %s(%s)->%s(%s)", op, a.SenderIP, a.SenderMAC, a.TargetIP, a.TargetMAC)
}

// arpEntry is one resolution-table entry.
type arpEntry struct {
	mac    ether.MAC
	static bool
}

// arpTable resolves IPv4 addresses to MACs, queueing packets that miss.
type arpTable struct {
	stack   *Stack
	entries map[Addr]arpEntry
	// waiting holds packets queued for in-flight resolutions, keyed by
	// the target address, together with the interface to send them from.
	waiting map[Addr][]pendingPacket
}

type pendingPacket struct {
	pkt   *Packet
	iface *Interface
}

func newARPTable(s *Stack) *arpTable {
	return &arpTable{
		stack:   s,
		entries: make(map[Addr]arpEntry),
		waiting: make(map[Addr][]pendingPacket),
	}
}

// lookup returns the MAC for ip if known.
func (t *arpTable) lookup(ip Addr) (ether.MAC, bool) {
	e, ok := t.entries[ip]
	return e.mac, ok
}

// learn records or updates a dynamic mapping and flushes queued packets.
func (t *arpTable) learn(ip Addr, mac ether.MAC) {
	if e, ok := t.entries[ip]; ok && e.static {
		return
	}
	t.entries[ip] = arpEntry{mac: mac}
	if queued := t.waiting[ip]; len(queued) > 0 {
		delete(t.waiting, ip)
		for _, pp := range queued {
			t.stack.transmit(pp.iface, pp.pkt, mac)
		}
	}
}

// forget removes a mapping (used when a pod migrates away and its old
// mapping must not linger in tests).
func (t *arpTable) forget(ip Addr) { delete(t.entries, ip) }

// resolve queues pkt for transmission from iface once ip resolves,
// broadcasting an ARP request if a resolution is not already in flight.
func (t *arpTable) resolve(ip Addr, pkt *Packet, iface *Interface) {
	first := len(t.waiting[ip]) == 0
	t.waiting[ip] = append(t.waiting[ip], pendingPacket{pkt: pkt, iface: iface})
	if !first {
		return
	}
	req := &ARPPacket{
		Op:        arpRequest,
		SenderMAC: iface.MAC,
		SenderIP:  iface.IP,
		TargetIP:  ip,
	}
	iface.nic.Send(ether.Frame{
		Src:     iface.MAC,
		Dst:     ether.Broadcast,
		Type:    ether.TypeARP,
		Payload: req,
	})
	// If the target never answers, drop the queued packets after a
	// timeout so they do not pin memory forever. TCP retransmission will
	// re-attempt resolution.
	t.stack.engine.Schedule(arpTimeout, func() {
		if len(t.waiting[ip]) > 0 {
			if _, ok := t.entries[ip]; !ok {
				delete(t.waiting, ip)
			}
		}
	})
}

const arpTimeout = 500 * sim.Millisecond

// handle processes a received ARP packet on iface's NIC.
func (s *Stack) handleARP(a *ARPPacket) {
	// Any ARP traffic teaches us the sender's mapping if we already have
	// (or are waiting on) one — this is what makes gratuitous ARP after
	// migration update peers (§4.2).
	_, known := s.arp.entries[a.SenderIP]
	_, wanted := s.arp.waiting[a.SenderIP]
	if known || wanted || a.Gratuitous {
		s.arp.learn(a.SenderIP, a.SenderMAC)
	}
	if a.Op != arpRequest || a.Gratuitous {
		// A gratuitous ARP is an announcement, not a question (RFC 5227):
		// never answer it. During a migration's handover window both the
		// frozen source VIF and the restored destination VIF hold the
		// address; if the stale source answered the destination's
		// announcement, its reply would re-teach the switch the dead
		// port and peers would black-hole until the source is destroyed.
		return
	}
	// Answer requests for any of our interfaces' addresses.
	iface := s.ifaceByIP(a.TargetIP)
	if iface == nil {
		return
	}
	s.arp.learn(a.SenderIP, a.SenderMAC)
	reply := &ARPPacket{
		Op:        arpReply,
		SenderMAC: iface.MAC,
		SenderIP:  iface.IP,
		TargetMAC: a.SenderMAC,
		TargetIP:  a.SenderIP,
	}
	iface.nic.Send(ether.Frame{
		Src:     iface.MAC,
		Dst:     a.SenderMAC,
		Type:    ether.TypeARP,
		Payload: reply,
	})
}

// AnnounceGratuitousARP broadcasts the interface's current IP-to-MAC
// binding. Cruz calls this after restoring a pod on a new machine so
// remote peers and the switch learn the new location (§4.2).
func (s *Stack) AnnounceGratuitousARP(iface *Interface) {
	ann := &ARPPacket{
		Op:         arpRequest,
		SenderMAC:  iface.MAC,
		SenderIP:   iface.IP,
		TargetIP:   iface.IP,
		Gratuitous: true,
	}
	iface.nic.Send(ether.Frame{
		Src:     iface.MAC,
		Dst:     ether.Broadcast,
		Type:    ether.TypeARP,
		Payload: ann,
	})
}

// AddStaticARP installs a permanent resolution entry (used by tests and by
// the DHCP server for its own address).
func (s *Stack) AddStaticARP(ip Addr, mac ether.MAC) {
	s.arp.entries[ip] = arpEntry{mac: mac, static: true}
}
