package tcpip

import (
	"errors"
	"fmt"

	"cruz/internal/trace"
)

// This file implements the paper's central capability (§4.1): saving and
// restoring the state of live TCP connections as part of a checkpoint.
//
// The original Linux implementation walks kernel socket structures under
// the network-stack spin locks. The paper notes that "porting effort can
// be minimized if OSes can be extended with a small set of new interfaces
// to provide high-level access to internal network state" (citing the
// 'Unveiling the transport' HotNets proposal). CaptureState/RestoreTCP
// *are* that proposed interface for our simulated stack. The simulation is
// single-threaded, so the capture is trivially atomic — the moral
// equivalent of holding the spin locks for the duration of the copy.

// SavedSegment is one send-buffer packet. Boundaries must be preserved
// across checkpoint-restart "because the Linux TCP stack expects ACK
// sequence numbers to correspond to packet boundaries" (§4.1); our stack
// keeps the same discipline.
type SavedSegment struct {
	Data []byte
	FIN  bool
}

// TCPSavedState is the serializable image of one TCP connection. Per
// §4.1, the sequence numbers are saved in the *adjusted* form: the saved
// connection reflects an empty receive buffer whose contents were already
// delivered to the application, and an empty send buffer whose contents
// were never issued to the OS. The buffer contents travel alongside in
// SendSegments/SendPending/RecvData and are replayed at restore.
type TCPSavedState struct {
	Tuple FourTuple
	State State

	ISS, IRS uint32
	// SndUna is unack_nxt; the saved snd_nxt equals it (empty send
	// buffer adjustment).
	SndUna uint32
	// RcvNxt is unchanged by the adjustment: received data was already
	// acknowledged, and is treated as delivered to the application.
	RcvNxt uint32
	// SndWnd is the peer's last advertised window, used to prime the
	// restored sender.
	SndWnd uint32

	// SendSegments is the packetized unacknowledged data in
	// [unack_nxt, snd_nxt), boundaries preserved. SendPending is data
	// accepted from the application but not yet packetized.
	SendSegments []SavedSegment
	SendPending  []byte

	// RecvData is the receive-side application byte stream not yet read
	// by the application: any previously restored alternate-buffer bytes
	// concatenated with the live receive queue (§4.1: "data from both
	// buffers are concatenated and saved in the checkpoint").
	RecvData []byte

	// Socket options.
	NoDelay bool
	Cork    bool

	// Close-sequence progress.
	FinQueued bool
	RcvClosed bool
}

// TCPListenerState is the serializable image of a listening socket.
type TCPListenerState struct {
	Local   AddrPort
	Backlog int
}

// ErrNotCheckpointable is returned when a connection is in a state the
// checkpoint does not support (mid-handshake or already dead). Pods
// checkpoint such sockets as closed; clients see a reset and retry, which
// is also what the paper's implementation yields for embryonic
// connections.
var ErrNotCheckpointable = errors.New("tcpip: connection not in a checkpointable state")

// CaptureState returns the connection's saved image. The operation is
// non-destructive: the live connection continues unchanged, exactly as
// the paper requires ("checkpointing should be a non-destructive
// operation"). Out-of-order segments queued for reassembly are *not*
// captured: they are indistinguishable from in-flight packets, which the
// protocol deliberately drops and lets TCP retransmit.
func (c *TCPConn) CaptureState() (*TCPSavedState, error) {
	switch c.state {
	case StateEstablished, StateCloseWait, StateFinWait1, StateFinWait2, StateClosing, StateLastAck:
	default:
		return nil, fmt.Errorf("%w: %v", ErrNotCheckpointable, c.state)
	}
	st := &TCPSavedState{
		Tuple:     c.tuple,
		State:     c.state,
		ISS:       c.iss,
		IRS:       c.irs,
		SndUna:    c.sndUna,
		RcvNxt:    c.rcvNxt,
		SndWnd:    c.sndWnd,
		NoDelay:   c.noDelay,
		Cork:      c.cork,
		FinQueued: c.finQueued,
		RcvClosed: c.rcvClosed,
	}
	for _, g := range c.segs {
		data := make([]byte, len(g.data))
		copy(data, g.data)
		st.SendSegments = append(st.SendSegments, SavedSegment{Data: data, FIN: g.fin})
	}
	st.SendPending = append([]byte(nil), c.pending...)
	// MSG_PEEK semantics: read without consuming. Alternate buffer (from
	// an earlier restore) concatenates with the live queue.
	st.RecvData = make([]byte, 0, len(c.altQueue)+len(c.rcvQueue))
	st.RecvData = append(st.RecvData, c.altQueue...)
	st.RecvData = append(st.RecvData, c.rcvQueue...)
	return st, nil
}

// RestoreTCP recreates a connection from its saved image on this stack.
// The interface owning the local address (normally the pod's migrated
// VIF) must already exist.
//
// The restore follows §4.1: the socket is created with the adjusted
// sequence state (empty buffers); the saved send-buffer data is then
// re-issued one send per saved packet so boundaries are preserved, with
// Nagle and CORK forced off for the duration; and the saved receive data
// is parked in the socket's alternate buffer, which the interposed
// receive path drains before live data.
//
// Restored segments are transmitted immediately — if the coordination
// protocol has communication disabled (as it must; §5), the packet filter
// silently drops them and the armed retransmission timer recovers after
// communication is re-enabled. The restored RTO starts at the minimum so
// recovery is prompt.
func (s *Stack) RestoreTCP(st *TCPSavedState) (*TCPConn, error) {
	if s.ifaceByIP(st.Tuple.Local.Addr) == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, st.Tuple.Local.Addr)
	}
	if _, ok := s.conns[st.Tuple]; ok {
		return nil, fmt.Errorf("%w: %s", ErrConnExists, st.Tuple)
	}
	p := DefaultTCPParams()
	c := &TCPConn{
		stack:             s,
		params:            p,
		tuple:             st.Tuple,
		state:             st.State,
		iss:               st.ISS,
		irs:               st.IRS,
		sndUna:            st.SndUna,
		sndNxt:            st.SndUna, // empty-send-buffer adjustment
		sndWnd:            st.SndWnd,
		rcvNxt:            st.RcvNxt,
		rcvClosed:         st.RcvClosed,
		noDelay:           st.NoDelay,
		cork:              st.Cork,
		finQueued:         st.FinQueued,
		cwnd:              p.InitialCwnd * p.MSS,
		ssthresh:          p.RcvBufLimit,
		rto:               p.RTOMin,
		lastWndAdvertised: uint32(p.RcvBufLimit),
	}
	c.altQueue = append([]byte(nil), st.RecvData...)
	s.conns[st.Tuple] = c

	// Re-issue the send buffer, one send per saved packet, Nagle/CORK
	// off so boundaries hold.
	savedNoDelay, savedCork := c.noDelay, c.cork
	c.noDelay, c.cork = true, false
	for _, sg := range st.SendSegments {
		g := &inflightSeg{seq: c.sndNxt, data: append([]byte(nil), sg.Data...), fin: sg.FIN}
		c.segs = append(c.segs, g)
		c.sndNxt += g.seqLen()
		if sg.FIN {
			c.finSent = true
		}
		c.transmitSeg(g)
	}
	c.noDelay, c.cork = savedNoDelay, savedCork
	if len(st.SendPending) > 0 {
		c.pending = append(c.pending, st.SendPending...)
		c.trySend()
	}
	if len(c.segs) > 0 {
		c.armRTO()
	}
	// A connection whose close was in progress but whose FIN was already
	// acknowledged has nothing in flight; reconstruct finSent from the
	// state so the machine can finish the close.
	if st.FinQueued && len(st.SendSegments) == 0 {
		switch st.State {
		case StateFinWait2, StateClosing:
			c.finSent = true
		}
	}
	return c, nil
}

// CaptureState returns the listener's saved image.
func (l *TCPListener) CaptureState() *TCPListenerState {
	return &TCPListenerState{Local: l.local, Backlog: l.backlog}
}

// RestoreListener recreates a listening socket from its saved image.
// Half-open connections at checkpoint time are not restored; clients'
// SYN retransmissions re-establish them.
func (s *Stack) RestoreListener(st *TCPListenerState) (*TCPListener, error) {
	return s.ListenTCP(st.Local, st.Backlog)
}

// Conns returns the stack's live TCP connections, for diagnostics and
// tests. The slice is freshly allocated; order is unspecified.
func (s *Stack) Conns() []*TCPConn {
	out := make([]*TCPConn, 0, len(s.conns))
	for _, c := range s.conns {
		out = append(out, c)
	}
	return out
}

// StreamProgress returns the application-level byte-stream positions of
// this endpoint: sent is every byte the application has successfully
// handed to the socket (packetized or still pending), rcvd is every byte
// received in order (whether or not the application has read it,
// including restored alternate-buffer bytes). Flushing checkpoint
// protocols (CoCheck/MPVM-style, implemented in internal/flush) exchange
// these positions as channel markers.
func (c *TCPConn) StreamProgress() (sent, rcvd uint64) {
	if c.state == StateListen || c.state == StateClosed && c.iss == 0 {
		return 0, 0
	}
	sent = uint64(c.sndNxt - c.iss - 1)
	if c.finSent {
		sent-- // the FIN occupies one sequence number
	}
	sent += uint64(len(c.pending))
	rcvd = uint64(c.rcvNxt - c.irs - 1)
	if c.rcvClosed {
		rcvd--
	}
	return sent, rcvd
}

// DrainToAlt moves the contents of the live receive queue into the
// alternate (library) buffer, reopening the advertised window, and
// returns the number of bytes moved. Stream order is preserved: the
// application reads the alternate buffer before live data. Flushing
// checkpoint protocols use this to drain in-flight channel data while
// the application is stopped — the moral equivalent of CoCheck's
// library-level message buffer.
func (c *TCPConn) DrainToAlt() int {
	n := len(c.rcvQueue)
	if n == 0 {
		return 0
	}
	c.altQueue = append(c.altQueue, c.rcvQueue...)
	c.rcvQueue = nil
	if tr := c.stack.tr; tr.Enabled() {
		tr.Instant(c.stack.name, "tcp", "drain",
			trace.Str("conn", c.tuple.String()),
			trace.Int("bytes", int64(n)),
			trace.Int("alt_total", int64(len(c.altQueue))))
	}
	c.maybeSendWindowUpdate(n)
	return n
}

// SndUna exposes unack_nxt for invariant checks in tests and the
// correctness harness (§5.1).
func (c *TCPConn) SndUna() uint32 { return c.sndUna }

// SndNxt exposes snd_nxt for invariant checks.
func (c *TCPConn) SndNxt() uint32 { return c.sndNxt }

// RcvNxt exposes rcv_nxt for invariant checks.
func (c *TCPConn) RcvNxt() uint32 { return c.rcvNxt }
