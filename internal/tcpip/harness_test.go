package tcpip

import (
	"testing"

	"cruz/internal/ether"
	"cruz/internal/sim"
)

// testNet is a two-or-more-node network fixture: one switch, one stack
// per node, one interface per stack.
type testNet struct {
	t      *testing.T
	engine *sim.Engine
	sw     *ether.Switch
	stacks []*Stack
	nics   []*ether.NIC
}

func addrOf(i int) Addr { return Addr{10, 0, 0, byte(i + 1)} }

func macOf(i int) ether.MAC { return ether.MAC{0x02, 0, 0, 0, 0, byte(i + 1)} }

func newTestNet(t *testing.T, n int) *testNet {
	t.Helper()
	tn := &testNet{t: t, engine: sim.NewEngine(1234)}
	tn.sw = ether.NewSwitch(tn.engine)
	for i := 0; i < n; i++ {
		nic := ether.NewNIC(tn.engine, "eth0", macOf(i))
		tn.sw.Attach(nic, ether.GigabitLink)
		st := NewStack(tn.engine, "node")
		if _, err := st.AddInterface("eth0", addrOf(i), macOf(i), nic, false); err != nil {
			t.Fatalf("AddInterface: %v", err)
		}
		tn.stacks = append(tn.stacks, st)
		tn.nics = append(tn.nics, nic)
	}
	return tn
}

// run advances virtual time by d.
func (tn *testNet) run(d sim.Duration) {
	tn.t.Helper()
	if err := tn.engine.RunFor(d); err != nil {
		tn.t.Fatalf("RunFor: %v", err)
	}
}

// connect establishes a connection from stack a to a listener on stack b
// and returns both endpoints.
func (tn *testNet) connect(a, b int, port uint16) (client, server *TCPConn) {
	tn.t.Helper()
	l, err := tn.stacks[b].ListenTCP(AddrPort{Addr: addrOf(b), Port: port}, 8)
	if err != nil {
		tn.t.Fatalf("ListenTCP: %v", err)
	}
	c, err := tn.stacks[a].DialTCP(AddrPort{Addr: addrOf(a)}, AddrPort{Addr: addrOf(b), Port: port})
	if err != nil {
		tn.t.Fatalf("DialTCP: %v", err)
	}
	tn.run(50 * sim.Millisecond)
	s, err := l.Accept()
	if err != nil {
		tn.t.Fatalf("Accept after handshake window: %v", err)
	}
	if c.State() != StateEstablished || s.State() != StateEstablished {
		tn.t.Fatalf("states after handshake: client=%v server=%v", c.State(), s.State())
	}
	l.Close()
	return c, s
}

// sendAll pushes all of data through c, draining as the window allows.
func (tn *testNet) sendAll(c *TCPConn, data []byte) {
	tn.t.Helper()
	for len(data) > 0 {
		n, err := c.Send(data)
		if err == ErrWouldBlock {
			tn.run(10 * sim.Millisecond)
			continue
		}
		if err != nil {
			tn.t.Fatalf("Send: %v", err)
		}
		data = data[n:]
		tn.run(sim.Millisecond)
	}
}

// recvN reads exactly n bytes from c, advancing time as needed.
func (tn *testNet) recvN(c *TCPConn, n int) []byte {
	tn.t.Helper()
	out := make([]byte, 0, n)
	buf := make([]byte, 16384)
	deadline := 0
	for len(out) < n {
		got, err := c.Recv(buf, false)
		if err == ErrWouldBlock {
			tn.run(10 * sim.Millisecond)
			deadline++
			if deadline > 10000 {
				tn.t.Fatalf("recvN stalled at %d/%d bytes", len(out), n)
			}
			continue
		}
		if err != nil {
			tn.t.Fatalf("Recv: %v (have %d/%d)", err, len(out), n)
		}
		out = append(out, buf[:got]...)
	}
	return out
}

// pattern produces a deterministic byte pattern for payload checks.
func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

func bytesEqual(t *testing.T, got, want []byte, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: byte %d = %#x, want %#x", what, i, got[i], want[i])
		}
	}
}
