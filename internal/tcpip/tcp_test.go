package tcpip

import (
	"errors"
	"testing"

	"cruz/internal/sim"
)

func TestHandshakeAndTransfer(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)

	msg := pattern(100000, 3)
	tn.sendAll(c, msg)
	got := tn.recvN(s, len(msg))
	bytesEqual(t, got, msg, "client->server stream")

	// And the reverse direction on the same connection.
	reply := pattern(5000, 9)
	tn.sendAll(s, reply)
	bytesEqual(t, tn.recvN(c, len(reply)), reply, "server->client stream")
}

func TestConnectNoListener(t *testing.T) {
	tn := newTestNet(t, 2)
	c, err := tn.stacks[0].DialTCP(AddrPort{Addr: addrOf(0)}, AddrPort{Addr: addrOf(1), Port: 7})
	if err != nil {
		t.Fatal(err)
	}
	tn.run(100 * sim.Millisecond)
	if c.State() != StateClosed {
		t.Fatalf("state = %v, want CLOSED after RST", c.State())
	}
	if !errors.Is(c.Err(), ErrReset) {
		t.Fatalf("Err = %v, want ErrReset", c.Err())
	}
}

func TestConnectToUnreachableHostTimesOut(t *testing.T) {
	tn := newTestNet(t, 2)
	// An address nobody owns: ARP never resolves, SYN retries exhaust.
	c, err := tn.stacks[0].DialTCP(AddrPort{Addr: addrOf(0)}, AddrPort{Addr: Addr{10, 0, 0, 99}, Port: 7})
	if err != nil {
		t.Fatal(err)
	}
	tn.run(600 * sim.Second)
	if c.State() != StateClosed || !errors.Is(c.Err(), ErrTimeout) {
		t.Fatalf("state=%v err=%v, want CLOSED/ErrTimeout", c.State(), c.Err())
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	tn := newTestNet(t, 2)
	l, _ := tn.stacks[1].ListenTCP(AddrPort{Addr: addrOf(1), Port: 80}, 8)
	seen := map[uint16]bool{}
	for i := 0; i < 5; i++ {
		c, err := tn.stacks[0].DialTCP(AddrPort{Addr: addrOf(0)}, AddrPort{Addr: addrOf(1), Port: 80})
		if err != nil {
			t.Fatal(err)
		}
		p := c.LocalAddr().Port
		if seen[p] {
			t.Fatalf("ephemeral port %d reused", p)
		}
		seen[p] = true
	}
	tn.run(50 * sim.Millisecond)
	for i := 0; i < 5; i++ {
		if _, err := l.Accept(); err != nil {
			t.Fatalf("Accept %d: %v", i, err)
		}
	}
}

func TestListenerBacklogDropsExcessSYNs(t *testing.T) {
	tn := newTestNet(t, 2)
	_, err := tn.stacks[1].ListenTCP(AddrPort{Addr: addrOf(1), Port: 80}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var conns []*TCPConn
	for i := 0; i < 4; i++ {
		c, err := tn.stacks[0].DialTCP(AddrPort{Addr: addrOf(0)}, AddrPort{Addr: addrOf(1), Port: 80})
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	tn.run(20 * sim.Millisecond)
	established := 0
	for _, c := range conns {
		if c.State() == StateEstablished {
			established++
		}
	}
	if established != 2 {
		t.Fatalf("established = %d, want 2 (backlog)", established)
	}
}

func TestAddrInUse(t *testing.T) {
	tn := newTestNet(t, 1)
	if _, err := tn.stacks[0].ListenTCP(AddrPort{Addr: addrOf(0), Port: 80}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.stacks[0].ListenTCP(AddrPort{Addr: addrOf(0), Port: 80}, 1); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("err = %v, want ErrAddrInUse", err)
	}
	if _, err := tn.stacks[0].ListenTCP(AddrPort{Addr: Addr{1, 2, 3, 4}, Port: 81}, 1); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestWildcardListener(t *testing.T) {
	tn := newTestNet(t, 2)
	l, err := tn.stacks[1].ListenTCP(AddrPort{Port: 80}, 8) // INADDR_ANY
	if err != nil {
		t.Fatal(err)
	}
	_, err = tn.stacks[0].DialTCP(AddrPort{Addr: addrOf(0)}, AddrPort{Addr: addrOf(1), Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	tn.run(20 * sim.Millisecond)
	s, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if s.LocalAddr().Addr != addrOf(1) {
		t.Fatalf("accepted local addr = %v", s.LocalAddr())
	}
}

func TestMSGPeekDoesNotConsume(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	msg := []byte("peek me gently")
	tn.sendAll(c, msg)
	tn.run(10 * sim.Millisecond)

	buf := make([]byte, 64)
	n, err := s.Recv(buf, true) // MSG_PEEK
	if err != nil || string(buf[:n]) != string(msg) {
		t.Fatalf("peek = %q/%v", buf[:n], err)
	}
	// A second peek sees the same data.
	n2, err := s.Recv(buf, true)
	if err != nil || n2 != n {
		t.Fatalf("second peek = %d/%v, want %d", n2, err, n)
	}
	// A real read still gets everything.
	n3, err := s.Recv(buf, false)
	if err != nil || string(buf[:n3]) != string(msg) {
		t.Fatalf("read after peek = %q/%v", buf[:n3], err)
	}
	if _, err := s.Recv(buf, false); err != ErrWouldBlock {
		t.Fatalf("read after drain: %v, want ErrWouldBlock", err)
	}
}

func TestNagleCoalescesSmallWrites(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	base := c.Stats.SegsSent
	// 50 tiny writes, faster than the RTT, with Nagle on: they must
	// coalesce into far fewer than 50 data segments.
	for i := 0; i < 50; i++ {
		if _, err := c.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	tn.run(50 * sim.Millisecond)
	got := tn.recvN(s, 50)
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d corrupted", i)
		}
	}
	segs := c.Stats.SegsSent - base
	if segs > 10 {
		t.Fatalf("Nagle sent %d segments for 50 tiny writes", segs)
	}
}

func TestNoDelaySendsImmediately(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	c.SetNoDelay(true)
	dataSegs := func() uint64 { return c.Stats.SegsSent }
	base := dataSegs()
	for i := 0; i < 10; i++ {
		if _, err := c.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// All ten went out as individual segments without waiting for ACKs.
	if got := dataSegs() - base; got != 10 {
		t.Fatalf("segments sent = %d, want 10", got)
	}
	tn.recvN(s, 10)
}

func TestCorkHoldsPartialSegments(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	c.SetCork(true)
	if _, err := c.Send([]byte("held")); err != nil {
		t.Fatal(err)
	}
	tn.run(50 * sim.Millisecond)
	if s.ReadableBytes() != 0 {
		t.Fatal("corked data leaked")
	}
	c.SetCork(false)
	tn.run(10 * sim.Millisecond)
	bytesEqual(t, tn.recvN(s, 4), []byte("held"), "uncorked data")
}

func TestRetransmissionAfterLoss(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	// Kill the link, send (packets vanish), then heal and wait for RTO.
	tn.sw.SetLinkDown(tn.nics[0], true)
	msg := []byte("must arrive eventually")
	if _, err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	tn.run(50 * sim.Millisecond)
	if s.ReadableBytes() != 0 {
		t.Fatal("data crossed a dead link")
	}
	tn.sw.SetLinkDown(tn.nics[0], false)
	tn.run(5 * sim.Second)
	bytesEqual(t, tn.recvN(s, len(msg)), msg, "retransmitted data")
	if c.Stats.Retransmits == 0 {
		t.Fatal("no retransmissions recorded")
	}
}

func TestRTOExponentialBackoff(t *testing.T) {
	tn := newTestNet(t, 2)
	c, _ := tn.connect(0, 1, 5000)
	tn.sw.SetLinkDown(tn.nics[0], true)
	c.Send([]byte("x"))
	tn.run(10 * sim.Second)
	// With RTOmin 200ms doubling: ~200+400+800+1600+3200+6400 ≈ 12.6s of
	// budget; in 10s we expect around 5-6 firings, certainly not 50.
	if c.Stats.RTOFirings < 3 || c.Stats.RTOFirings > 8 {
		t.Fatalf("RTO firings in 10s = %d, want 3..8 (exponential backoff)", c.Stats.RTOFirings)
	}
}

func TestConnectionTimesOutAfterRepeatedLoss(t *testing.T) {
	tn := newTestNet(t, 2)
	c, _ := tn.connect(0, 1, 5000)
	tn.sw.SetLinkDown(tn.nics[0], true)
	c.Send([]byte("x"))
	tn.run(3000 * sim.Second)
	if c.State() != StateClosed || !errors.Is(c.Err(), ErrTimeout) {
		t.Fatalf("state=%v err=%v, want CLOSED/ErrTimeout", c.State(), c.Err())
	}
}

func TestFastRetransmitOnDupAcks(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	c.SetNoDelay(true)
	// Warm the congestion window up so several segments can be in
	// flight at once (the initial window is only 2 MSS).
	warm := pattern(50000, 7)
	tn.sendAll(c, warm)
	bytesEqual(t, tn.recvN(s, len(warm)), warm, "warmup stream")

	// Drop exactly one MSS-sized segment by momentarily downing the link.
	tn.sw.SetLinkDown(tn.nics[0], true)
	c.Send(pattern(1460, 1))
	tn.run(500 * sim.Microsecond)
	tn.sw.SetLinkDown(tn.nics[0], false)
	// Following segments arrive out of order, generating dup ACKs.
	for i := 0; i < 6; i++ {
		c.Send(pattern(1460, byte(2+i)))
		tn.run(200 * sim.Microsecond)
	}
	tn.run(100 * sim.Millisecond)
	if c.Stats.FastRetransmits == 0 {
		t.Fatal("expected a fast retransmit")
	}
	// All data must still arrive, in order.
	want := pattern(1460, 1)
	for i := 0; i < 6; i++ {
		want = append(want, pattern(1460, byte(2+i))...)
	}
	bytesEqual(t, tn.recvN(s, len(want)), want, "post-fast-retransmit stream")
	// Recovery should have happened well before the 200ms RTO floor.
	if c.Stats.RTOFirings != 0 {
		t.Fatalf("RTO fired %d times; fast retransmit should have recovered", c.Stats.RTOFirings)
	}
}
