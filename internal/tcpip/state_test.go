package tcpip

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"testing"

	"cruz/internal/ether"
	"cruz/internal/sim"
)

// freeze installs the agent-style drop rules for both endpoints' addresses
// on both stacks, returning a thaw function.
func freeze(tn *testNet, idx ...int) func() {
	type installed struct {
		f  *Filter
		id int
	}
	var rules []installed
	for _, i := range idx {
		f := tn.stacks[i].Filter()
		id := f.AddDropAddr(addrOf(i))
		rules = append(rules, installed{f, id})
	}
	return func() {
		for _, r := range rules {
			r.f.RemoveRule(r.id)
		}
	}
}

func TestCaptureRestoreInPlace(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)

	// Phase 1: deliver some data that sits unread in the server's
	// receive buffer.
	early := pattern(3000, 1)
	tn.sendAll(c, early)
	tn.run(10 * sim.Millisecond)
	if s.ReadableBytes() != len(early) {
		t.Fatalf("server buffered %d, want %d", s.ReadableBytes(), len(early))
	}

	// Phase 2: disable communication (the coordination protocol's first
	// step), then send more in both directions. These packets are
	// silently dropped; the data stays in the senders' buffers unacked.
	thaw := freeze(tn, 0, 1)
	late := pattern(5000, 2)
	if _, err := c.Send(late); err != nil {
		t.Fatal(err)
	}
	reply := pattern(2500, 3)
	if _, err := s.Send(reply); err != nil {
		t.Fatal(err)
	}
	tn.run(10 * sim.Millisecond)

	// Phase 3: capture both endpoints.
	stC, err := c.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	stS, err := s.CaptureState()
	if err != nil {
		t.Fatal(err)
	}

	// The §5.1 invariant must hold in the saved global state:
	// unack_nxt <= rcv_nxt <= snd_nxt (snd_nxt = una + unacked data).
	sndNxtC := stC.SndUna
	for _, sg := range stC.SendSegments {
		sndNxtC += uint32(len(sg.Data))
	}
	if !(seqLE(stC.SndUna, stS.RcvNxt) && seqLE(stS.RcvNxt, sndNxtC)) {
		t.Fatalf("TCP invariant violated: una=%d rcv=%d nxt=%d", stC.SndUna, stS.RcvNxt, sndNxtC)
	}
	// Captured receive data matches what was delivered but unread.
	if !bytes.Equal(stS.RecvData, early) {
		t.Fatalf("captured RecvData %d bytes, want %d", len(stS.RecvData), len(early))
	}
	// CaptureState is non-destructive.
	if s.ReadableBytes() != len(early) || c.State() != StateEstablished {
		t.Fatal("capture disturbed the live connection")
	}

	// Phase 4: destroy the originals and restore from the images (in
	// place — a crash-recovery rollback), still under the filter.
	c.Destroy()
	s.Destroy()
	c2, err := tn.stacks[0].RestoreTCP(stC)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tn.stacks[1].RestoreTCP(stS)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 5: re-enable communication. TCP retransmission recovers the
	// dropped bytes.
	thaw()
	got := tn.recvN(s2, len(early)+len(late))
	want := append(append([]byte{}, early...), late...)
	bytesEqual(t, got, want, "server stream across checkpoint-restart")
	gotReply := tn.recvN(c2, len(reply))
	bytesEqual(t, gotReply, reply, "client stream across checkpoint-restart")

	// The revived connection stays fully usable in both directions.
	post := pattern(4000, 4)
	tn.sendAll(c2, post)
	bytesEqual(t, tn.recvN(s2, len(post)), post, "post-restore stream")
}

func TestMigrationTransparentToRemotePeer(t *testing.T) {
	// Three machines: a client on node0 (NOT under checkpoint control),
	// a server on node1 that migrates to node2. The server's address
	// moves with it (VIF semantics); the client's connection survives.
	tn := newTestNet(t, 3)
	c, s := tn.connect(0, 1, 5000)

	first := pattern(2000, 1)
	tn.sendAll(c, first)
	bytesEqual(t, tn.recvN(s, len(first)), first, "pre-migration stream")

	// Freeze only the server side (the client is not ours to control).
	f := tn.stacks[1].Filter()
	rule := f.AddDropAddr(addrOf(1))

	// Client keeps talking during the migration; these packets are lost
	// and must be recovered by TCP afterwards.
	inflight := pattern(3000, 2)
	if _, err := c.Send(inflight); err != nil {
		t.Fatal(err)
	}
	tn.run(5 * sim.Millisecond)

	st, err := s.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	s.Destroy()

	// Tear down the VIF at the source and recreate it at the target
	// with the same IP and MAC (paper §4.2: NIC multi-MAC support).
	srcIface := tn.stacks[1].InterfaceByName("eth0")
	if err := tn.stacks[1].RemoveInterface(srcIface); err != nil {
		t.Fatal(err)
	}
	f.RemoveRule(rule)
	vif, err := tn.stacks[2].AddInterface("vif1", addrOf(1), macOf(1), tn.nics[2], true)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tn.stacks[2].RestoreTCP(st)
	if err != nil {
		t.Fatal(err)
	}
	// Announce the new location.
	tn.stacks[2].AnnounceGratuitousARP(vif)
	tn.run(sim.Millisecond)

	// The switch now forwards the migrated MAC to node2's port.
	if got := tn.sw.LearnedPortOf(macOf(1)); got != tn.nics[2] {
		t.Fatalf("switch learned port = %v, want node2's NIC", got)
	}

	// The client's lost bytes arrive at the new incarnation via
	// retransmission, transparently.
	got := tn.recvN(s2, len(inflight))
	bytesEqual(t, got, inflight, "stream across migration")

	// And the reverse path works from the new home.
	back := pattern(1500, 3)
	tn.sendAll(s2, back)
	bytesEqual(t, tn.recvN(c, len(back)), back, "post-migration reverse stream")
	if c.Err() != nil {
		t.Fatalf("client connection disturbed: %v", c.Err())
	}
}

func TestRestoredAltBufferServedFirstAndPeekable(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	buffered := []byte("buffered-before-checkpoint")
	tn.sendAll(c, buffered)
	tn.run(10 * sim.Millisecond)

	thaw := freeze(tn, 0, 1)
	stC, _ := c.CaptureState()
	stS, _ := s.CaptureState()
	c.Destroy()
	s.Destroy()
	c2, _ := tn.stacks[0].RestoreTCP(stC)
	s2, err := tn.stacks[1].RestoreTCP(stS)
	if err != nil {
		t.Fatal(err)
	}
	thaw()

	// Peek sees the restored bytes without consuming.
	buf := make([]byte, 64)
	n, err := s2.Recv(buf, true)
	if err != nil || string(buf[:n]) != string(buffered) {
		t.Fatalf("peek restored = %q/%v", buf[:n], err)
	}
	// New live data queues behind the alternate buffer.
	fresh := []byte("|fresh-after-restart")
	tn.sendAll(c2, fresh)
	tn.run(10 * sim.Millisecond)
	want := append(append([]byte{}, buffered...), fresh...)
	bytesEqual(t, tn.recvN(s2, len(want)), want, "alt-then-live ordering")
}

func TestSecondCheckpointConcatenatesAltAndLive(t *testing.T) {
	// §4.1: "If a checkpoint is initiated when the alternate buffers are
	// not empty, data in the alternate buffers and any data in the
	// socket receive buffers are both retrieved ... concatenated and
	// saved in the checkpoint."
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	first := []byte("first-round")
	tn.sendAll(c, first)
	tn.run(10 * sim.Millisecond)

	thaw := freeze(tn, 0, 1)
	stC, _ := c.CaptureState()
	stS, _ := s.CaptureState()
	c.Destroy()
	s.Destroy()
	c2, _ := tn.stacks[0].RestoreTCP(stC)
	s2, _ := tn.stacks[1].RestoreTCP(stS)
	thaw()

	// More data arrives but the app still reads nothing.
	second := []byte("|second-round")
	tn.sendAll(c2, second)
	tn.run(10 * sim.Millisecond)

	thaw2 := freeze(tn, 0, 1)
	stS2, err := s2.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, first...), second...)
	if !bytes.Equal(stS2.RecvData, want) {
		t.Fatalf("second capture RecvData = %q, want %q", stS2.RecvData, want)
	}
	stC2, _ := c2.CaptureState()
	c2.Destroy()
	s2.Destroy()
	c3, _ := tn.stacks[0].RestoreTCP(stC2)
	s3, _ := tn.stacks[1].RestoreTCP(stS2)
	thaw2()
	bytesEqual(t, tn.recvN(s3, len(want)), want, "doubly-checkpointed stream")
	_ = c3
}

func TestCaptureRejectsEmbryonicConnections(t *testing.T) {
	tn := newTestNet(t, 2)
	c, err := tn.stacks[0].DialTCP(AddrPort{Addr: addrOf(0)}, AddrPort{Addr: addrOf(1), Port: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CaptureState(); !errors.Is(err, ErrNotCheckpointable) {
		t.Fatalf("capture in SYN_SENT = %v, want ErrNotCheckpointable", err)
	}
}

func TestCaptureCloseWaitRestoresHalfClose(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	c.Close()
	tn.run(50 * sim.Millisecond)
	if s.State() != StateCloseWait {
		t.Fatalf("server state = %v", s.State())
	}
	thaw := freeze(tn, 1)
	st, err := s.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCloseWait || !st.RcvClosed {
		t.Fatalf("saved state = %+v", st)
	}
	s.Destroy()
	s2, err := tn.stacks[1].RestoreTCP(st)
	if err != nil {
		t.Fatal(err)
	}
	thaw()
	// EOF is still visible after restore.
	if _, err := s2.Recv(make([]byte, 4), false); err != io.EOF {
		t.Fatalf("Recv = %v, want io.EOF", err)
	}
	// The restored half-open side can still send and then finish the
	// close.
	msg := []byte("parting words")
	tn.sendAll(s2, msg)
	bytesEqual(t, tn.recvN(c, len(msg)), msg, "half-close data after restore")
	s2.Close()
	tn.run(20 * sim.Second)
	if s2.State() != StateClosed || c.State() != StateClosed {
		t.Fatalf("states = %v/%v after full close", s2.State(), c.State())
	}
}

func TestSavedStateGobRoundTrip(t *testing.T) {
	tn := newTestNet(t, 2)
	c, _ := tn.connect(0, 1, 5000)
	thaw := freeze(tn, 0, 1)
	defer thaw()
	c.Send(pattern(2000, 7))
	tn.run(5 * sim.Millisecond)
	st, err := c.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	var got TCPSavedState
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Tuple != st.Tuple || got.SndUna != st.SndUna || got.RcvNxt != st.RcvNxt ||
		len(got.SendSegments) != len(st.SendSegments) {
		t.Fatalf("gob round trip mismatch: %+v vs %+v", got, st)
	}
}

func TestRestoreRequiresInterface(t *testing.T) {
	tn := newTestNet(t, 2)
	c, _ := tn.connect(0, 1, 5000)
	thaw := freeze(tn, 0, 1)
	defer thaw()
	st, _ := c.CaptureState()
	// Restore on a stack that does not own the local address.
	if _, err := tn.stacks[1].RestoreTCP(st); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("restore without interface = %v, want ErrNoRoute", err)
	}
	// Restore over a still-live connection is rejected.
	if _, err := tn.stacks[0].RestoreTCP(st); !errors.Is(err, ErrConnExists) {
		t.Fatalf("restore over live conn = %v, want ErrConnExists", err)
	}
}

func TestListenerCaptureRestore(t *testing.T) {
	tn := newTestNet(t, 2)
	l, err := tn.stacks[1].ListenTCP(AddrPort{Addr: addrOf(1), Port: 80}, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := l.CaptureState()
	l.Close()
	l2, err := tn.stacks[1].RestoreListener(st)
	if err != nil {
		t.Fatal(err)
	}
	if l2.LocalAddr() != (AddrPort{Addr: addrOf(1), Port: 80}) {
		t.Fatalf("restored listener addr = %v", l2.LocalAddr())
	}
	// It accepts connections again.
	_, err = tn.stacks[0].DialTCP(AddrPort{Addr: addrOf(0)}, AddrPort{Addr: addrOf(1), Port: 80})
	if err != nil {
		t.Fatal(err)
	}
	tn.run(20 * sim.Millisecond)
	if _, err := l2.Accept(); err != nil {
		t.Fatalf("Accept on restored listener: %v", err)
	}
}

// Guard: the ether import is used by the migration test through macOf and
// NIC types; keep the compiler satisfied if that changes.
var _ = ether.Broadcast
