package tcpip

import (
	"errors"
	"testing"

	"cruz/internal/sim"
)

func TestStreamProgressCountsEverything(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	msg := pattern(5000, 1)
	tn.sendAll(c, msg)
	tn.run(20 * sim.Millisecond)

	sent, _ := c.StreamProgress()
	if sent != 5000 {
		t.Fatalf("sender progress = %d, want 5000", sent)
	}
	_, rcvd := s.StreamProgress()
	if rcvd != 5000 {
		t.Fatalf("receiver progress = %d, want 5000", rcvd)
	}

	// Freeze the network; pending (unpacketized) bytes must still count
	// toward the sender's position — markers must cover them.
	thaw := freeze(tn, 0, 1)
	defer thaw()
	big := pattern(100000, 2)
	n, err := c.Send(big)
	if err != nil {
		t.Fatal(err)
	}
	sent2, _ := c.StreamProgress()
	if sent2 != 5000+uint64(n) {
		t.Fatalf("sender progress = %d, want %d", sent2, 5000+n)
	}
}

func TestStreamProgressExcludesFIN(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	tn.sendAll(c, []byte("bye"))
	c.Close()
	tn.run(50 * sim.Millisecond)
	sent, _ := c.StreamProgress()
	if sent != 3 {
		t.Fatalf("sent progress = %d, want 3 (FIN excluded)", sent)
	}
	tn.recvN(s, 3)
	_, rcvd := s.StreamProgress()
	if rcvd != 3 {
		t.Fatalf("rcvd progress = %d, want 3 (FIN excluded)", rcvd)
	}
}

func TestDrainToAltPreservesOrderAndReopensWindow(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	// Fill the receiver to (near) zero window.
	msg := pattern(200000, 3)
	sent := 0
	for i := 0; i < 200 && sent < len(msg); i++ {
		n, err := c.Send(msg[sent:])
		if err == nil {
			sent += n
		}
		tn.run(5 * sim.Millisecond)
		if s.rcvWindow() == 0 {
			break
		}
	}
	if s.rcvWindow() != 0 {
		t.Fatalf("window never closed (wnd=%d)", s.rcvWindow())
	}
	// Drain to the library buffer: window reopens, stream continues.
	moved := s.DrainToAlt()
	if moved == 0 {
		t.Fatal("nothing drained")
	}
	if s.rcvWindow() == 0 {
		t.Fatal("window still closed after drain")
	}
	// Push the rest through, draining periodically.
	for i := 0; i < 2000 && sent < len(msg); i++ {
		n, err := c.Send(msg[sent:])
		if err == nil {
			sent += n
		}
		tn.run(2 * sim.Millisecond)
		s.DrainToAlt()
	}
	if sent != len(msg) {
		t.Fatalf("only %d of %d accepted", sent, len(msg))
	}
	// Everything reads back in order through the normal Recv path.
	got := tn.recvN(s, len(msg))
	bytesEqual(t, got, msg, "drained+live stream")
}

func TestZeroWindowProbeRecovers(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	// Stuff the receiver full and keep data pending at the sender.
	total := pattern(3*DefaultTCPParams().RcvBufLimit, 9)
	sent := 0
	for i := 0; i < 100; i++ {
		n, err := c.Send(total[sent:])
		if err == nil {
			sent += n
		}
		tn.run(10 * sim.Millisecond)
		if s.rcvWindow() == 0 && c.inflightBytes() == 0 && len(c.pending) > 0 {
			break
		}
	}
	if s.rcvWindow() != 0 {
		t.Skip("window never fully closed in this configuration")
	}
	// Do not read for a long stretch: probes must not kill the conn.
	tn.run(2 * sim.Second)
	if c.Err() != nil {
		t.Fatalf("sender errored during zero-window: %v", c.Err())
	}
	// Now read everything; the stream completes.
	got := tn.recvN(s, sent)
	bytesEqual(t, got, total[:sent], "post-zero-window stream")
}

func TestTimeWaitTupleBlocksReuse(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	cLocal := c.LocalAddr()
	c.Close()
	tn.run(20 * sim.Millisecond)
	s.Close()
	tn.run(20 * sim.Millisecond)
	if c.State() != StateTimeWait {
		t.Fatalf("client state = %v, want TIME_WAIT", c.State())
	}
	// Redialing with the exact same 4-tuple collides with TIME_WAIT.
	l, err := tn.stacks[1].ListenTCP(AddrPort{Addr: addrOf(1), Port: 5000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = l
	if _, err := tn.stacks[0].DialTCP(cLocal, AddrPort{Addr: addrOf(1), Port: 5000}); !errors.Is(err, ErrConnExists) {
		t.Fatalf("redial during TIME_WAIT = %v, want ErrConnExists", err)
	}
	// After 2*MSL the tuple frees up.
	tn.run(10 * sim.Second)
	if _, err := tn.stacks[0].DialTCP(cLocal, AddrPort{Addr: addrOf(1), Port: 5000}); err != nil {
		t.Fatalf("redial after TIME_WAIT: %v", err)
	}
}

func TestCaptureFinWait1CompletesCloseAfterRestore(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	// Freeze the wire, then close: the FIN stays unacknowledged in the
	// send buffer and the connection parks in FIN_WAIT_1.
	thaw := freeze(tn, 0, 1)
	tn.sendAll(c, []byte("last words"))
	c.Close()
	tn.run(10 * sim.Millisecond)
	if c.State() != StateFinWait1 {
		t.Fatalf("state = %v, want FIN_WAIT_1", c.State())
	}
	st, err := c.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	finSegs := 0
	for _, sg := range st.SendSegments {
		if sg.FIN {
			finSegs++
		}
	}
	if finSegs != 1 {
		t.Fatalf("captured FIN segments = %d, want 1", finSegs)
	}
	c.Destroy()
	c2, err := tn.stacks[0].RestoreTCP(st)
	if err != nil {
		t.Fatal(err)
	}
	thaw()
	// The restored close completes end to end.
	bytesEqual(t, tn.recvN(s, 10), []byte("last words"), "pre-close data")
	tn.run(100 * sim.Millisecond)
	s.Close()
	tn.run(20 * sim.Second)
	if c2.State() != StateClosed || s.State() != StateClosed {
		t.Fatalf("states after restored close: %v / %v", c2.State(), s.State())
	}
}

func TestSynToTimeWaitIsIgnored(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	c.Close()
	tn.run(20 * sim.Millisecond)
	s.Close()
	tn.run(20 * sim.Millisecond)
	// Inject a stray SYN at the TIME_WAIT endpoint's tuple: it must not
	// tear down or crash anything.
	before := c.State()
	c.handleSegment(&Segment{Flags: FlagSYN, Seq: 12345})
	if c.State() != before {
		t.Fatalf("stray SYN changed state %v -> %v", before, c.State())
	}
}

func TestListenerNotifyOnAccept(t *testing.T) {
	tn := newTestNet(t, 2)
	l, _ := tn.stacks[1].ListenTCP(AddrPort{Addr: addrOf(1), Port: 80}, 8)
	notified := 0
	l.SetNotify(func() { notified++ })
	tn.stacks[0].DialTCP(AddrPort{Addr: addrOf(0)}, AddrPort{Addr: addrOf(1), Port: 80})
	tn.run(20 * sim.Millisecond)
	if notified == 0 {
		t.Fatal("listener notify never fired")
	}
	if !l.Acceptable() {
		t.Fatal("listener not acceptable")
	}
}

func TestConnStatsAccounting(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	msg := pattern(10000, 4)
	tn.sendAll(c, msg)
	tn.recvN(s, len(msg))
	if c.Stats.BytesSent < 10000 {
		t.Fatalf("BytesSent = %d", c.Stats.BytesSent)
	}
	if s.Stats.BytesReceived != 10000 {
		t.Fatalf("BytesReceived = %d", s.Stats.BytesReceived)
	}
	if c.Stats.SegsSent == 0 || s.Stats.SegsReceived == 0 {
		t.Fatal("segment counters empty")
	}
}
