package tcpip

import (
	"testing"

	"cruz/internal/ether"
	"cruz/internal/sim"
)

// TestSegPoolRecycles pins the send-path free list: a bulk transfer must
// mostly reuse segment buffers (pool hits) rather than allocate one per
// segment, and the data must still arrive intact.
func TestSegPoolRecycles(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 9000)
	src := tn.stacks[0]

	// Interleave sending and draining so the stream flows at window
	// speed (a send-everything-then-read pattern would stall on the
	// receive window and trickle through persist probes instead).
	data := pattern(512<<10, 3)
	got := make([]byte, 0, len(data))
	buf := make([]byte, 16384)
	sent := 0
	for len(got) < len(data) {
		for sent < len(data) {
			n, err := c.Send(data[sent:])
			if err != nil {
				break
			}
			sent += n
		}
		tn.run(sim.Millisecond)
		for {
			n, err := s.Recv(buf, false)
			if err != nil || n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
	}
	bytesEqual(t, got, data, "pooled bulk transfer")

	segs := int(c.Stats.SegsSent)
	hits := int(src.Stats.SegPoolHits)
	misses := int(src.Stats.SegPoolMisses)
	if hits+misses == 0 {
		t.Fatal("segment pool never consulted")
	}
	// The first window's worth of segments miss; steady state must hit.
	if hits < segs/2 {
		t.Errorf("pool hits %d of %d data segments (misses %d): free list not engaging", hits, segs, misses)
	}
	if len(src.segPool) > segPoolMax {
		t.Errorf("pool grew past its bound: %d > %d", len(src.segPool), segPoolMax)
	}
}

// TestSegPoolSurvivesRetransmit: buffers of retransmitted segments are
// never recycled (a duplicate frame may still be in flight), and the
// stream stays correct across loss.
func TestSegPoolSurvivesRetransmit(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 9001)

	tn.sw.SetDropRate(tn.nics[1], 0.2)
	data := pattern(128<<10, 9)
	tn.sendAll(c, data)
	tn.sw.SetDropRate(tn.nics[1], 0)
	tn.run(2 * sim.Second) // let recovery finish
	got := tn.recvN(s, len(data))
	bytesEqual(t, got, data, "pooled transfer across 20% loss")
	if c.Stats.Retransmits == 0 {
		t.Skip("no retransmits at this seed; loss path not exercised")
	}
}

// BenchmarkTCPBulkTransfer measures the segment send path end to end
// (packetize, transmit, deliver, ACK) over simulated gigabit. The
// allocs/op figure is the pooling ablation's headline.
func BenchmarkTCPBulkTransfer(b *testing.B) {
	chunk := pattern(64<<10, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		engine := sim.NewEngine(7)
		sw := ether.NewSwitch(engine)
		stacks := make([]*Stack, 2)
		for j := 0; j < 2; j++ {
			nic := ether.NewNIC(engine, "eth0", macOf(j))
			sw.Attach(nic, ether.GigabitLink)
			st := NewStack(engine, "node")
			if _, err := st.AddInterface("eth0", addrOf(j), macOf(j), nic, false); err != nil {
				b.Fatal(err)
			}
			stacks[j] = st
		}
		l, _ := stacks[1].ListenTCP(AddrPort{Addr: addrOf(1), Port: 9002}, 8)
		c, _ := stacks[0].DialTCP(AddrPort{Addr: addrOf(0)}, AddrPort{Addr: addrOf(1), Port: 9002})
		_ = engine.RunFor(50 * sim.Millisecond)
		s, _ := l.Accept()
		l.Close()
		b.StartTimer()

		sent, rcvd := 0, 0
		buf := make([]byte, 16384)
		for rcvd < len(chunk) {
			for sent < len(chunk) {
				n, err := c.Send(chunk[sent:])
				if err != nil {
					break
				}
				sent += n
			}
			_ = engine.RunFor(sim.Millisecond)
			for {
				n, err := s.Recv(buf, false)
				if err != nil || n == 0 {
					break
				}
				rcvd += n
			}
		}
	}
}
