package tcpip

import "fmt"

// IP protocol numbers used by the simulation.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

const ipHeaderBytes = 20

// Packet is an IPv4 packet. It is carried as the payload of an Ethernet
// frame.
type Packet struct {
	Src, Dst Addr
	Proto    uint8
	TTL      uint8
	// Body is the transport payload: *Segment for TCP, *Datagram for UDP.
	Body interface{ WireSize() int }
}

// WireSize implements ether.Payload.
func (p *Packet) WireSize() int {
	n := ipHeaderBytes
	if p.Body != nil {
		n += p.Body.WireSize()
	}
	return n
}

func (p *Packet) String() string {
	return fmt.Sprintf("IP %s->%s proto=%d %v", p.Src, p.Dst, p.Proto, p.Body)
}

// TCP segment flags.
type Flags uint8

// Flag bits.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
	FlagPSH
)

func (f Flags) Has(bit Flags) bool { return f&bit != 0 }

func (f Flags) String() string {
	var s []byte
	add := func(bit Flags, c byte) {
		if f.Has(bit) {
			s = append(s, c)
		}
	}
	add(FlagSYN, 'S')
	add(FlagACK, 'A')
	add(FlagFIN, 'F')
	add(FlagRST, 'R')
	add(FlagPSH, 'P')
	if len(s) == 0 {
		return "-"
	}
	return string(s)
}

const tcpHeaderBytes = 20

// Segment is a TCP segment.
type Segment struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            Flags
	Window           uint16
	Data             []byte
}

// WireSize returns the segment's encoded size.
func (s *Segment) WireSize() int { return tcpHeaderBytes + len(s.Data) }

func (s *Segment) String() string {
	return fmt.Sprintf("TCP %d->%d [%s] seq=%d ack=%d win=%d len=%d",
		s.SrcPort, s.DstPort, s.Flags, s.Seq, s.Ack, s.Window, len(s.Data))
}

// seqLen returns the sequence-space length of the segment (data plus one
// for each of SYN and FIN).
func (s *Segment) seqLen() uint32 {
	n := uint32(len(s.Data))
	if s.Flags.Has(FlagSYN) {
		n++
	}
	if s.Flags.Has(FlagFIN) {
		n++
	}
	return n
}

const udpHeaderBytes = 8

// Datagram is a UDP datagram.
type Datagram struct {
	SrcPort, DstPort uint16
	Data             []byte
}

// WireSize returns the datagram's encoded size.
func (d *Datagram) WireSize() int { return udpHeaderBytes + len(d.Data) }

func (d *Datagram) String() string {
	return fmt.Sprintf("UDP %d->%d len=%d", d.SrcPort, d.DstPort, len(d.Data))
}

// Sequence-number arithmetic (mod 2^32), following RFC 793 conventions.

// seqLT reports a < b in sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLE reports a <= b in sequence space.
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

// seqGT reports a > b in sequence space.
func seqGT(a, b uint32) bool { return int32(a-b) > 0 }

// seqMax returns the later of a and b in sequence space.
func seqMax(a, b uint32) uint32 {
	if seqGT(a, b) {
		return a
	}
	return b
}
