package tcpip

import (
	"errors"
	"fmt"

	"cruz/internal/ether"
	"cruz/internal/sim"
	"cruz/internal/trace"
)

// Errors returned by stack operations.
var (
	ErrWouldBlock   = errors.New("tcpip: operation would block")
	ErrAddrInUse    = errors.New("tcpip: address already in use")
	ErrNoRoute      = errors.New("tcpip: no interface for address")
	ErrClosed       = errors.New("tcpip: socket closed")
	ErrReset        = errors.New("tcpip: connection reset by peer")
	ErrNotConnected = errors.New("tcpip: not connected")
	ErrTimeout      = errors.New("tcpip: connection timed out")
	ErrNoPorts      = errors.New("tcpip: ephemeral ports exhausted")
	ErrConnExists   = errors.New("tcpip: connection already exists")
	ErrIfaceExists  = errors.New("tcpip: interface address already exists")
	ErrUnknownIface = errors.New("tcpip: no such interface")
)

// LoopbackLatency is the delivery delay for packets whose destination is
// an interface on the sending stack (pod-to-pod traffic on one node).
const LoopbackLatency = 10 * sim.Microsecond

// Interface is a network interface: an IP address bound to a MAC, sending
// and receiving through a NIC. A physical interface and any number of
// virtual interfaces (pod VIFs, §4.2) may share one NIC; VIFs with their
// own MAC rely on the NIC's multi-MAC support.
type Interface struct {
	Name string
	IP   Addr
	MAC  ether.MAC
	// Virtual marks pod VIFs, which are torn down on migration.
	Virtual bool

	stack *Stack
	nic   *ether.NIC
}

// NIC returns the hardware NIC backing this interface.
func (i *Interface) NIC() *ether.NIC { return i.nic }

// Stack is one node's network stack. All methods must be called from the
// simulation event loop (the simulation is single-threaded by design).
type Stack struct {
	engine *sim.Engine
	name   string
	tr     *trace.Tracer

	ifaces []*Interface
	arp    *arpTable
	filter *Filter

	conns     map[FourTuple]*TCPConn
	listeners map[AddrPort]*TCPListener
	udpConns  map[AddrPort]*UDPConn

	nextEphemeral uint16

	// segPool is the send-path segment-buffer free list: trySend draws
	// packetization buffers here and processACK returns them once a
	// segment is cumulatively acknowledged (never-retransmitted segments
	// only — see putSegBuf). Bulk transfers then recycle a small working
	// set of MSS-sized buffers instead of allocating one per segment.
	segPool [][]byte

	// Stats counts stack-level events.
	Stats StackStats
}

// StackStats counts stack activity.
type StackStats struct {
	IPReceived   uint64
	IPDelivered  uint64
	IPSent       uint64
	NoSocketRSTs uint64

	// Segment-pool traffic: buffers drawn from / returned to the free
	// list versus fresh allocations, for the engine fast-path ablation.
	SegPoolHits   uint64
	SegPoolMisses uint64
}

// Segment-pool sizing. Buffers are MSS-capacity; the pool is bounded so
// a burst never pins more than a small working set.
const (
	segPoolBufCap = 1460 // DefaultTCPParams().MSS
	segPoolMax    = 64
)

// getSegBuf returns a length-n buffer for packetizing send data, reusing
// a pooled buffer when one fits.
func (s *Stack) getSegBuf(n int) []byte {
	if n <= segPoolBufCap {
		if last := len(s.segPool) - 1; last >= 0 {
			b := s.segPool[last]
			s.segPool = s.segPool[:last]
			s.Stats.SegPoolHits++
			return b[:n]
		}
		s.Stats.SegPoolMisses++
		return make([]byte, n, segPoolBufCap)
	}
	s.Stats.SegPoolMisses++
	return make([]byte, n)
}

// putSegBuf returns a segment buffer to the free list. Callers may only
// recycle buffers of segments that were transmitted exactly once and are
// now cumulatively acknowledged: the unique frame carrying the buffer
// has been consumed (its bytes copied into the receiver's queue) or
// dropped, so no in-flight or reassembly reference can remain. Buffers
// of other shapes (persist probes, oversize) are left to the GC.
func (s *Stack) putSegBuf(b []byte) {
	if cap(b) != segPoolBufCap || len(s.segPool) >= segPoolMax {
		return
	}
	s.segPool = append(s.segPool, b[:0])
}

// NewStack returns a stack with no interfaces.
func NewStack(engine *sim.Engine, name string) *Stack {
	s := &Stack{
		engine:        engine,
		name:          name,
		tr:            trace.FromEngine(engine),
		conns:         make(map[FourTuple]*TCPConn),
		listeners:     make(map[AddrPort]*TCPListener),
		udpConns:      make(map[AddrPort]*UDPConn),
		nextEphemeral: 32768,
	}
	s.arp = newARPTable(s)
	s.filter = &Filter{}
	return s
}

// Name returns the stack's node name (for diagnostics).
func (s *Stack) Name() string { return s.name }

// Engine returns the simulation engine the stack runs on.
func (s *Stack) Engine() *sim.Engine { return s.engine }

// Filter returns the stack's packet filter.
func (s *Stack) Filter() *Filter { return s.filter }

// AddInterface binds ip/mac to the NIC as a new interface. If mac differs
// from the NIC's primary MAC it is added to the NIC's unicast filter. The
// first frame receiver registered on the NIC is the stack's demultiplexer.
func (s *Stack) AddInterface(name string, ip Addr, mac ether.MAC, nic *ether.NIC, virtual bool) (*Interface, error) {
	if s.ifaceByIP(ip) != nil {
		return nil, fmt.Errorf("%w: %s", ErrIfaceExists, ip)
	}
	iface := &Interface{Name: name, IP: ip, MAC: mac, Virtual: virtual, stack: s, nic: nic}
	if !nic.HasMAC(mac) {
		nic.AddMAC(mac)
	}
	s.ifaces = append(s.ifaces, iface)
	nic.SetReceiver(s.rxFrame)
	return iface, nil
}

// RemoveInterface tears an interface down (pod migration deletes the
// source VIF). Established connections bound to its address survive in
// the connection table — they are about to be checkpointed or are already
// dead — but no further traffic flows for them here.
func (s *Stack) RemoveInterface(iface *Interface) error {
	for i, f := range s.ifaces {
		if f == iface {
			s.ifaces = append(s.ifaces[:i], s.ifaces[i+1:]...)
			if iface.MAC != iface.nic.PrimaryMAC() {
				iface.nic.RemoveMAC(iface.MAC)
			}
			return nil
		}
	}
	return ErrUnknownIface
}

// Interfaces returns the stack's interfaces.
func (s *Stack) Interfaces() []*Interface {
	out := make([]*Interface, len(s.ifaces))
	copy(out, s.ifaces)
	return out
}

// InterfaceByName returns the named interface, or nil.
func (s *Stack) InterfaceByName(name string) *Interface {
	for _, f := range s.ifaces {
		if f.Name == name {
			return f
		}
	}
	return nil
}

func (s *Stack) ifaceByIP(ip Addr) *Interface {
	for _, f := range s.ifaces {
		if f.IP == ip {
			return f
		}
	}
	return nil
}

// FirstAddr returns the address of the first interface, used when sockets
// bind to the unspecified address.
func (s *Stack) FirstAddr() (Addr, bool) {
	if len(s.ifaces) == 0 {
		return Addr{}, false
	}
	return s.ifaces[0].IP, true
}

// rxFrame is the NIC receive handler: demultiplex ARP and IPv4.
func (s *Stack) rxFrame(f ether.Frame) {
	switch f.Type {
	case ether.TypeARP:
		if a, ok := f.Payload.(*ARPPacket); ok {
			s.handleARP(a)
		}
	case ether.TypeIPv4:
		if p, ok := f.Payload.(*Packet); ok {
			s.rxPacket(p)
		}
	}
}

// rxPacket handles a received IP packet: filter, address check, demux.
func (s *Stack) rxPacket(p *Packet) {
	s.Stats.IPReceived++
	if s.filter.verdict(HookInput, p) == VerdictDrop {
		return
	}
	if !p.Dst.IsBroadcast() && s.ifaceByIP(p.Dst) == nil {
		// Not ours (promiscuous reception or stale flood); ignore.
		return
	}
	s.Stats.IPDelivered++
	switch p.Proto {
	case ProtoTCP:
		if seg, ok := p.Body.(*Segment); ok {
			s.rxTCP(p, seg)
		}
	case ProtoUDP:
		if d, ok := p.Body.(*Datagram); ok {
			s.rxUDP(p, d)
		}
	}
}

// sendIP routes and transmits an IP packet from the interface owning the
// source address. The output filter hook applies here, below TCP — so a
// checkpoint's drop rule silences retransmissions too, exactly like the
// paper's netfilter usage.
func (s *Stack) sendIP(p *Packet) error {
	iface := s.ifaceByIP(p.Src)
	if iface == nil {
		return fmt.Errorf("%w: src %s", ErrNoRoute, p.Src)
	}
	if s.filter.verdict(HookOutput, p) == VerdictDrop {
		return nil // silently dropped, per netfilter semantics
	}
	s.Stats.IPSent++
	if p.Dst.IsBroadcast() {
		iface.nic.Send(ether.Frame{Src: iface.MAC, Dst: ether.Broadcast, Type: ether.TypeIPv4, Payload: p})
		return nil
	}
	if s.ifaceByIP(p.Dst) != nil {
		// Local delivery: both endpoints live on this stack (e.g. two pods
		// co-located on one node after recovery re-homes one). A switch
		// never hairpins a frame back out its ingress port, so loop the
		// packet back here, below the output hook and above the input hook
		// — the same place a real kernel's loopback sits, which keeps a
		// checkpoint's comm-disable rules effective for co-located pods.
		s.engine.Schedule(LoopbackLatency, func() { s.rxPacket(p) })
		return nil
	}
	if mac, ok := s.arp.lookup(p.Dst); ok {
		s.transmit(iface, p, mac)
		return nil
	}
	s.arp.resolve(p.Dst, p, iface)
	return nil
}

// transmit emits a resolved packet on the wire.
func (s *Stack) transmit(iface *Interface, p *Packet, dst ether.MAC) {
	iface.nic.Send(ether.Frame{Src: iface.MAC, Dst: dst, Type: ether.TypeIPv4, Payload: p})
}

// allocEphemeralPort returns a free local port for the given address.
func (s *Stack) allocEphemeralPort(ip Addr) (uint16, error) {
	for tries := 0; tries < 28232; tries++ {
		port := s.nextEphemeral
		s.nextEphemeral++
		if s.nextEphemeral == 0 {
			s.nextEphemeral = 32768
		}
		if s.portFree(ip, port) {
			return port, nil
		}
	}
	return 0, ErrNoPorts
}

// portFree reports whether ip:port is unused by listeners, connections,
// and UDP sockets.
func (s *Stack) portFree(ip Addr, port uint16) bool {
	probe := AddrPort{Addr: ip, Port: port}
	if _, ok := s.listeners[probe]; ok {
		return false
	}
	if _, ok := s.listeners[AddrPort{Port: port}]; ok {
		return false
	}
	if ip.IsAny() {
		// A wildcard bind conflicts with any specific bind on the port.
		for ap := range s.listeners {
			if ap.Port == port {
				return false
			}
		}
		for ap := range s.udpConns {
			if ap.Port == port {
				return false
			}
		}
	}
	if _, ok := s.udpConns[probe]; ok {
		return false
	}
	for ft := range s.conns {
		if ft.Local.Port == port && (ft.Local.Addr == ip || ip.IsAny()) {
			return false
		}
	}
	return true
}
