// Package tcpip implements the simulated network stack: IPv4, ARP,
// interfaces (including per-pod virtual interfaces), a netfilter-style
// packet filter, UDP, and a from-scratch TCP with real sequence-number,
// retransmission, and backoff semantics.
//
// Cruz's core capability — saving and restoring live TCP connection state
// (paper §4.1) — is exposed through TCPConn.CaptureState and
// Stack.RestoreTCP. The stack deliberately implements the small set of
// mechanisms the paper's correctness argument (§5.1) depends on: the
// invariant unack_nxt <= rcv_nxt < snd_nxt, send buffers with packet
// boundaries, cumulative ACKs, and timer-driven retransmission with
// exponential backoff.
package tcpip

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address.
type Addr [4]byte

// Well-known addresses.
var (
	// AddrAny is the unspecified address (INADDR_ANY).
	AddrAny = Addr{}
	// AddrBroadcast is the limited broadcast address.
	AddrBroadcast = Addr{255, 255, 255, 255}
)

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IsAny reports whether a is the unspecified address.
func (a Addr) IsAny() bool { return a == AddrAny }

// IsBroadcast reports whether a is the limited broadcast address.
func (a Addr) IsBroadcast() bool { return a == AddrBroadcast }

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return Addr{}, fmt.Errorf("tcpip: invalid address %q", s)
	}
	var a Addr
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return Addr{}, fmt.Errorf("tcpip: invalid address %q", s)
		}
		a[i] = byte(v)
	}
	return a, nil
}

// MustParseAddr is ParseAddr that panics on error, for constants in tests
// and examples.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// AddrPort is an address-port pair identifying one endpoint.
type AddrPort struct {
	Addr Addr
	Port uint16
}

func (ap AddrPort) String() string {
	return fmt.Sprintf("%s:%d", ap.Addr, ap.Port)
}

// FourTuple identifies a TCP connection.
type FourTuple struct {
	Local, Remote AddrPort
}

func (ft FourTuple) String() string {
	return fmt.Sprintf("%s->%s", ft.Local, ft.Remote)
}

// reversed returns the tuple from the peer's point of view.
func (ft FourTuple) reversed() FourTuple {
	return FourTuple{Local: ft.Remote, Remote: ft.Local}
}
