package tcpip

import (
	"errors"
	"io"
	"testing"

	"cruz/internal/sim"
)

func TestOrderlyClose(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	tn.sendAll(c, []byte("goodbye"))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	tn.run(50 * sim.Millisecond)

	// Server still reads the final data, then sees EOF.
	bytesEqual(t, tn.recvN(s, 7), []byte("goodbye"), "final data")
	if _, err := s.Recv(make([]byte, 8), false); err != io.EOF {
		t.Fatalf("Recv after FIN = %v, want io.EOF", err)
	}
	if s.State() != StateCloseWait {
		t.Fatalf("server state = %v, want CLOSE_WAIT", s.State())
	}
	// Server can still send in CLOSE_WAIT (half-close).
	if _, err := s.Send([]byte("late reply")); err != nil {
		t.Fatalf("Send in CLOSE_WAIT: %v", err)
	}
	tn.run(50 * sim.Millisecond)
	bytesEqual(t, tn.recvN(c, 10), []byte("late reply"), "half-close data")

	// Server closes; both sides converge.
	s.Close()
	tn.run(50 * sim.Millisecond)
	if s.State() != StateClosed {
		t.Fatalf("server state = %v, want CLOSED", s.State())
	}
	if c.State() != StateTimeWait {
		t.Fatalf("client state = %v, want TIME_WAIT", c.State())
	}
	// TIME_WAIT expires after 2*MSL.
	tn.run(10 * sim.Second)
	if c.State() != StateClosed {
		t.Fatalf("client state after 2MSL = %v, want CLOSED", c.State())
	}
}

func TestCloseFlushesPendingData(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	// Queue more than one window of data, then close immediately: every
	// byte must still be delivered before the FIN.
	msg := pattern(200000, 5)
	var queued int
	for queued < len(msg) {
		n, err := c.Send(msg[queued:])
		if err == ErrWouldBlock {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		queued += n
	}
	c.Close()
	// Cannot send after close.
	if _, err := c.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	got := tn.recvN(s, queued)
	bytesEqual(t, got, msg[:queued], "data flushed by close")
	tn.run(100 * sim.Millisecond)
	if _, err := s.Recv(make([]byte, 1), false); err != io.EOF {
		t.Fatalf("after flush: %v, want io.EOF", err)
	}
}

func TestSimultaneousClose(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	c.Close()
	s.Close()
	tn.run(100 * sim.Millisecond)
	// Both went through CLOSING/TIME_WAIT; after 2MSL both are gone.
	tn.run(10 * sim.Second)
	if c.State() != StateClosed || s.State() != StateClosed {
		t.Fatalf("states = %v/%v, want CLOSED/CLOSED", c.State(), s.State())
	}
	if len(tn.stacks[0].Conns()) != 0 || len(tn.stacks[1].Conns()) != 0 {
		t.Fatal("connection table not empty after close")
	}
}

func TestAbortSendsRST(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	c.Abort()
	if c.State() != StateClosed {
		t.Fatal("Abort did not close locally")
	}
	tn.run(10 * sim.Millisecond)
	if s.State() != StateClosed || !errors.Is(s.Err(), ErrReset) {
		t.Fatalf("peer state=%v err=%v, want CLOSED/ErrReset", s.State(), s.Err())
	}
	// Reads on the reset connection surface the error.
	if _, err := s.Recv(make([]byte, 1), false); !errors.Is(err, ErrReset) {
		t.Fatalf("Recv after RST = %v, want ErrReset", err)
	}
}

func TestListenerCloseAbortsQueued(t *testing.T) {
	tn := newTestNet(t, 2)
	l, err := tn.stacks[1].ListenTCP(AddrPort{Addr: addrOf(1), Port: 80}, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := tn.stacks[0].DialTCP(AddrPort{Addr: addrOf(0)}, AddrPort{Addr: addrOf(1), Port: 80})
	tn.run(20 * sim.Millisecond)
	l.Close()
	tn.run(20 * sim.Millisecond)
	if c.State() != StateClosed {
		t.Fatalf("client state = %v after listener close", c.State())
	}
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Accept on closed listener = %v", err)
	}
}

func TestFlowControlZeroWindowRecovery(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	// Fill the receiver's buffer without reading.
	msg := pattern(300000, 11)
	sent := 0
	for sent < len(msg) {
		n, err := c.Send(msg[sent:])
		if err == ErrWouldBlock {
			tn.run(20 * sim.Millisecond)
			// Stop once the receive buffer is pinned full.
			if s.ReadableBytes() >= DefaultTCPParams().RcvBufLimit {
				break
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		sent += n
		tn.run(sim.Millisecond)
	}
	if s.ReadableBytes() < DefaultTCPParams().RcvBufLimit {
		t.Fatalf("receive buffer only %d bytes; wanted it full", s.ReadableBytes())
	}
	// Now drain the receiver; the window reopens and the rest flows.
	got := tn.recvN(s, sent)
	bytesEqual(t, got, msg[:sent], "zero-window stream")
}

func TestReceiverNeverExceedsBufferLimit(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	limit := DefaultTCPParams().RcvBufLimit
	msg := pattern(4*limit, 13)
	sent := 0
	for i := 0; i < 500 && sent < len(msg); i++ {
		n, err := c.Send(msg[sent:])
		if err == nil {
			sent += n
		}
		tn.run(5 * sim.Millisecond)
		if s.ReadableBytes() > limit+DefaultTCPParams().MSS {
			t.Fatalf("receive queue %d exceeds limit %d", s.ReadableBytes(), limit)
		}
	}
}
