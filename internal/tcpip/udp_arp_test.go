package tcpip

import (
	"errors"
	"testing"

	"cruz/internal/sim"
)

func TestUDPRoundTrip(t *testing.T) {
	tn := newTestNet(t, 2)
	a, err := tn.stacks[0].OpenUDP(AddrPort{Addr: addrOf(0), Port: 1000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := tn.stacks[1].OpenUDP(AddrPort{Addr: addrOf(1), Port: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SendTo(b.LocalAddr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	tn.run(sim.Millisecond)
	m, err := b.RecvFrom()
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Data) != "ping" || m.From != a.LocalAddr() {
		t.Fatalf("got %q from %v", m.Data, m.From)
	}
	// Reply using the source endpoint from the message.
	if err := b.SendTo(m.From, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	tn.run(sim.Millisecond)
	m2, err := a.RecvFrom()
	if err != nil || string(m2.Data) != "pong" {
		t.Fatalf("reply = %q/%v", m2.Data, err)
	}
}

func TestUDPBroadcastRequiresOptIn(t *testing.T) {
	tn := newTestNet(t, 3)
	a, _ := tn.stacks[0].OpenUDP(AddrPort{Addr: addrOf(0), Port: 68})
	if err := a.SendTo(AddrPort{Addr: AddrBroadcast, Port: 67}, []byte("x")); err == nil {
		t.Fatal("broadcast without SO_BROADCAST succeeded")
	}
	a.Broadcast = true
	var servers []*UDPConn
	for i := 1; i < 3; i++ {
		u, err := tn.stacks[i].OpenUDP(AddrPort{Addr: addrOf(i), Port: 67})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, u)
	}
	if err := a.SendTo(AddrPort{Addr: AddrBroadcast, Port: 67}, []byte("discover")); err != nil {
		t.Fatal(err)
	}
	tn.run(sim.Millisecond)
	for i, u := range servers {
		m, err := u.RecvFrom()
		if err != nil || string(m.Data) != "discover" {
			t.Fatalf("server %d: %q/%v", i, m.Data, err)
		}
	}
}

func TestUDPWildcardBind(t *testing.T) {
	tn := newTestNet(t, 2)
	u, err := tn.stacks[1].OpenUDP(AddrPort{Port: 53}) // any address
	if err != nil {
		t.Fatal(err)
	}
	a, _ := tn.stacks[0].OpenUDP(AddrPort{Addr: addrOf(0), Port: 0})
	a.SendTo(AddrPort{Addr: addrOf(1), Port: 53}, []byte("q"))
	tn.run(sim.Millisecond)
	if _, err := u.RecvFrom(); err != nil {
		t.Fatalf("wildcard-bound socket missed datagram: %v", err)
	}
}

func TestUDPQueueLimitTailDrop(t *testing.T) {
	tn := newTestNet(t, 2)
	a, _ := tn.stacks[0].OpenUDP(AddrPort{Addr: addrOf(0), Port: 1})
	b, _ := tn.stacks[1].OpenUDP(AddrPort{Addr: addrOf(1), Port: 2})
	for i := 0; i < defaultUDPQueueLimit+10; i++ {
		a.SendTo(b.LocalAddr(), []byte{byte(i)})
	}
	tn.run(10 * sim.Millisecond)
	if b.Pending() != defaultUDPQueueLimit {
		t.Fatalf("queued = %d, want %d", b.Pending(), defaultUDPQueueLimit)
	}
}

func TestUDPCloseReleasesPort(t *testing.T) {
	tn := newTestNet(t, 1)
	u, err := tn.stacks[0].OpenUDP(AddrPort{Addr: addrOf(0), Port: 99})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.stacks[0].OpenUDP(AddrPort{Addr: addrOf(0), Port: 99}); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("rebind while open = %v", err)
	}
	u.Close()
	if _, err := tn.stacks[0].OpenUDP(AddrPort{Addr: addrOf(0), Port: 99}); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	if err := u.SendTo(AddrPort{Addr: addrOf(0), Port: 1}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed = %v", err)
	}
}

func TestARPResolutionQueuesAndFlushes(t *testing.T) {
	tn := newTestNet(t, 2)
	a, _ := tn.stacks[0].OpenUDP(AddrPort{Addr: addrOf(0), Port: 1})
	b, _ := tn.stacks[1].OpenUDP(AddrPort{Addr: addrOf(1), Port: 2})
	// Three quick sends before resolution completes: one ARP request,
	// all three datagrams delivered after the reply.
	for i := 0; i < 3; i++ {
		a.SendTo(b.LocalAddr(), []byte{byte(i)})
	}
	tn.run(10 * sim.Millisecond)
	if b.Pending() != 3 {
		t.Fatalf("delivered %d datagrams, want 3", b.Pending())
	}
}

func TestFilterDropsBothDirections(t *testing.T) {
	tn := newTestNet(t, 2)
	c, s := tn.connect(0, 1, 5000)
	f := tn.stacks[0].Filter()
	id := f.AddDropAddr(addrOf(0))
	if f.RuleCount() != 1 {
		t.Fatal("rule not installed")
	}
	c.Send([]byte("out")) // output hook drops
	s.Send([]byte("in"))  // arrives at node0, input hook drops
	tn.run(50 * sim.Millisecond)
	if s.ReadableBytes() != 0 || c.ReadableBytes() != 0 {
		t.Fatal("filtered traffic leaked")
	}
	if f.Stats.OutputDropped == 0 || f.Stats.InputDropped == 0 {
		t.Fatalf("filter stats: %+v", f.Stats)
	}
	f.RemoveRule(id)
	if f.RuleCount() != 0 {
		t.Fatal("rule not removed")
	}
	// Traffic recovers after the rule is removed (retransmission).
	got := tn.recvN(s, 3)
	bytesEqual(t, got, []byte("out"), "recovered outbound")
	got = tn.recvN(c, 2)
	bytesEqual(t, got, []byte("in"), "recovered inbound")
}

func TestFilterDoesNotAffectOtherAddresses(t *testing.T) {
	tn := newTestNet(t, 3)
	// Drop node2's address on node0's stack; node0<->node1 unaffected.
	tn.stacks[0].Filter().AddDropAddr(addrOf(2))
	c, s := tn.connect(0, 1, 5000)
	msg := []byte("unimpeded")
	tn.sendAll(c, msg)
	bytesEqual(t, tn.recvN(s, len(msg)), msg, "unfiltered flow")
}

func TestRemoveUnknownRuleIsNoOp(t *testing.T) {
	var f Filter
	f.RemoveRule(42)
	if f.RuleCount() != 0 {
		t.Fatal("phantom rule")
	}
}

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		ok   bool
		want Addr
	}{
		{"10.0.0.1", true, Addr{10, 0, 0, 1}},
		{"255.255.255.255", true, AddrBroadcast},
		{"0.0.0.0", true, AddrAny},
		{"1.2.3", false, Addr{}},
		{"1.2.3.4.5", false, Addr{}},
		{"a.b.c.d", false, Addr{}},
		{"1.2.3.256", false, Addr{}},
		{"-1.2.3.4", false, Addr{}},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err = %v, ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if MustParseAddr("10.0.0.9").String() != "10.0.0.9" {
		t.Error("String round trip failed")
	}
}

func TestSeqArithmetic(t *testing.T) {
	// Wraparound behaviour near 2^32.
	near := uint32(0xFFFFFFF0)
	wrapped := near + 32 // wraps to 16
	if !seqLT(near, wrapped) {
		t.Error("seqLT across wrap")
	}
	if !seqGT(wrapped, near) {
		t.Error("seqGT across wrap")
	}
	if !seqLE(near, near) {
		t.Error("seqLE equality")
	}
	if seqMax(near, wrapped) != wrapped {
		t.Error("seqMax across wrap")
	}
}
