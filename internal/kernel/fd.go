package kernel

import (
	"fmt"
	"io"

	"cruz/internal/tcpip"
)

// FDKind tags what a descriptor refers to, primarily for the
// checkpointer, which saves each kind differently.
type FDKind int

// Descriptor kinds.
const (
	FDConn FDKind = iota + 1
	FDListener
	FDUDP
	FDPipeRead
	FDPipeWrite
)

var fdKindNames = map[FDKind]string{
	FDConn:      "tcp",
	FDListener:  "listener",
	FDUDP:       "udp",
	FDPipeRead:  "pipe-r",
	FDPipeWrite: "pipe-w",
}

func (k FDKind) String() string {
	if n, ok := fdKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("FDKind(%d)", int(k))
}

// file is the kernel-internal interface descriptors point at.
type file interface {
	read(b []byte, peek bool) (int, error)
	write(b []byte) (int, error)
	close()
	// ready reports whether the wanted direction would not block.
	ready(write bool) bool
}

// FD is one slot in a process's descriptor table.
type FD struct {
	file file
	kind FDKind
	refs *int // shared among duplicated descriptors (pipe inheritance)
}

// Kind returns the descriptor's kind.
func (f *FD) Kind() FDKind { return f.kind }

// Conn returns the TCP connection behind an FDConn descriptor, or nil.
func (f *FD) Conn() *tcpip.TCPConn {
	if cf, ok := f.file.(*connFile); ok {
		return cf.c
	}
	return nil
}

// Listener returns the listener behind an FDListener descriptor, or nil.
func (f *FD) Listener() *tcpip.TCPListener {
	if lf, ok := f.file.(*listenerFile); ok {
		return lf.l
	}
	return nil
}

// UDP returns the UDP socket behind an FDUDP descriptor, or nil.
func (f *FD) UDP() *tcpip.UDPConn {
	if uf, ok := f.file.(*udpFile); ok {
		return uf.u
	}
	return nil
}

// PipeObj returns the pipe behind a pipe descriptor, or nil.
func (f *FD) PipeObj() *Pipe {
	switch v := f.file.(type) {
	case *pipeReadFile:
		return v.p
	case *pipeWriteFile:
		return v.p
	}
	return nil
}

// installFD adds a file to the process's table, returning its number.
func (p *Process) installFD(f file, kind FDKind) int {
	fd := p.nextFD
	p.nextFD++
	one := 1
	p.fds[fd] = &FD{file: f, kind: kind, refs: &one}
	return fd
}

// installFDAt places a file at a specific descriptor number (restore).
func (p *Process) installFDAt(num int, f file, kind FDKind) {
	one := 1
	p.fds[num] = &FD{file: f, kind: kind, refs: &one}
	if num >= p.nextFD {
		p.nextFD = num + 1
	}
}

// lookupFD fetches a descriptor and checks its kind.
func (p *Process) lookupFD(fd int, kind FDKind) (*FD, error) {
	f, ok := p.fds[fd]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	if f.kind != kind {
		return nil, fmt.Errorf("%w: fd %d is %v, want %v", ErrBadFD, fd, f.kind, kind)
	}
	return f, nil
}

// closeFD removes and closes a descriptor.
func (p *Process) closeFD(fd int) error {
	f, ok := p.fds[fd]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	delete(p.fds, fd)
	*f.refs--
	if *f.refs <= 0 {
		f.file.close()
	}
	return nil
}

// FDs returns the descriptor table (fd number -> FD), for the
// checkpointer. The map is the live table; callers must not mutate it.
func (p *Process) FDs() map[int]*FD { return p.fds }

// fdNotify builds the callback wiring a socket's state changes to the
// scheduler: if this process is blocked on that fd, wake it.
func (p *Process) fdNotify(fd int) func() {
	return func() {
		if p.state == StateBlocked && p.waitFD == fd {
			p.kernel.wake(p)
		}
	}
}

// InstallConnFD exposes descriptor installation for the restore path: it
// wires a restored TCP connection into the process at a fixed fd number.
func (p *Process) InstallConnFD(num int, c *tcpip.TCPConn) {
	p.installFDAt(num, &connFile{c: c}, FDConn)
	c.SetNotify(p.fdNotify(num))
}

// InstallListenerFD wires a restored listener at a fixed fd number.
func (p *Process) InstallListenerFD(num int, l *tcpip.TCPListener) {
	p.installFDAt(num, &listenerFile{l: l}, FDListener)
	l.SetNotify(p.fdNotify(num))
}

// InstallUDPFD wires a restored UDP socket at a fixed fd number.
func (p *Process) InstallUDPFD(num int, u *tcpip.UDPConn) {
	p.installFDAt(num, &udpFile{u: u}, FDUDP)
	u.SetNotify(p.fdNotify(num))
}

// InstallPipeFD wires a restored pipe end at a fixed fd number,
// incrementing the pipe's end refcount.
func (p *Process) InstallPipeFD(num int, pipe *Pipe, writeEnd bool) {
	if writeEnd {
		p.installFDAt(num, &pipeWriteFile{p: pipe}, FDPipeWrite)
		pipe.writers++
		pipe.notifyWriters = append(pipe.notifyWriters, p.fdNotify(num))
	} else {
		p.installFDAt(num, &pipeReadFile{p: pipe}, FDPipeRead)
		pipe.readers++
		pipe.notifyReaders = append(pipe.notifyReaders, p.fdNotify(num))
	}
}

// NewPipe creates a bare pipe for the restore path. Its end counts start
// at zero; InstallPipeFD increments them as descriptors attach.
func NewPipe(k *Kernel) *Pipe {
	p := newPipe(k)
	p.readers, p.writers = 0, 0
	return p
}

// --- concrete files ----------------------------------------------------

type connFile struct{ c *tcpip.TCPConn }

func (f *connFile) read(b []byte, peek bool) (int, error) { return f.c.Recv(b, peek) }
func (f *connFile) write(b []byte) (int, error)           { return f.c.Send(b) }
func (f *connFile) close()                                { f.c.Close() }
func (f *connFile) ready(write bool) bool {
	if write {
		return f.c.WritableSpace() > 0 || f.c.Err() != nil
	}
	return f.c.Readable() || f.c.Err() != nil
}

type listenerFile struct{ l *tcpip.TCPListener }

func (f *listenerFile) read([]byte, bool) (int, error) { return 0, ErrBadFD }
func (f *listenerFile) write([]byte) (int, error)      { return 0, ErrBadFD }
func (f *listenerFile) close()                         { f.l.Close() }
func (f *listenerFile) ready(write bool) bool          { return !write && f.l.Acceptable() }

type udpFile struct{ u *tcpip.UDPConn }

func (f *udpFile) read(b []byte, peek bool) (int, error) {
	m, err := f.u.RecvFrom()
	if err != nil {
		return 0, err
	}
	return copy(b, m.Data), nil
}
func (f *udpFile) write([]byte) (int, error) { return 0, ErrBadFD } // use SendTo
func (f *udpFile) close()                    { f.u.Close() }
func (f *udpFile) ready(write bool) bool     { return write || f.u.Pending() > 0 }

// Pipe is a byte-stream pipe with a bounded kernel buffer.
type Pipe struct {
	kernel  *Kernel
	buf     []byte
	limit   int
	readers int
	writers int
	closedR bool
	closedW bool

	notifyReaders []func()
	notifyWriters []func()
}

// pipeBufBytes matches Linux's customary 64 KiB pipe buffer.
const pipeBufBytes = 65536

func newPipe(k *Kernel) *Pipe {
	return &Pipe{kernel: k, limit: pipeBufBytes, readers: 1, writers: 1}
}

// Buffered returns the bytes currently in the pipe (checkpointer).
func (p *Pipe) Buffered() []byte {
	out := make([]byte, len(p.buf))
	copy(out, p.buf)
	return out
}

// RestoreBuffer replaces the pipe's contents (restore path).
func (p *Pipe) RestoreBuffer(b []byte) { p.buf = append([]byte(nil), b...) }

func (p *Pipe) wakeReaders() {
	for _, fn := range p.notifyReaders {
		fn()
	}
}
func (p *Pipe) wakeWriters() {
	for _, fn := range p.notifyWriters {
		fn()
	}
}

type pipeReadFile struct{ p *Pipe }

func (f *pipeReadFile) read(b []byte, peek bool) (int, error) {
	p := f.p
	if len(p.buf) == 0 {
		if p.closedW {
			return 0, io.EOF
		}
		return 0, ErrWouldBlock
	}
	n := copy(b, p.buf)
	if !peek {
		p.buf = p.buf[n:]
		p.wakeWriters()
	}
	return n, nil
}
func (f *pipeReadFile) write([]byte) (int, error) { return 0, ErrBadFD }
func (f *pipeReadFile) close() {
	f.p.readers--
	if f.p.readers <= 0 {
		f.p.closedR = true
		f.p.wakeWriters()
	}
}
func (f *pipeReadFile) ready(write bool) bool {
	return !write && (len(f.p.buf) > 0 || f.p.closedW)
}

type pipeWriteFile struct{ p *Pipe }

func (f *pipeWriteFile) read([]byte, bool) (int, error) { return 0, ErrBadFD }
func (f *pipeWriteFile) write(b []byte) (int, error) {
	p := f.p
	if p.closedR {
		return 0, fmt.Errorf("kernel: broken pipe")
	}
	space := p.limit - len(p.buf)
	if space == 0 {
		return 0, ErrWouldBlock
	}
	n := len(b)
	if n > space {
		n = space
	}
	p.buf = append(p.buf, b[:n]...)
	p.wakeReaders()
	return n, nil
}
func (f *pipeWriteFile) close() {
	f.p.writers--
	if f.p.writers <= 0 {
		f.p.closedW = true
		f.p.wakeReaders()
	}
}
func (f *pipeWriteFile) ready(write bool) bool {
	return write && (len(f.p.buf) < f.p.limit || f.p.closedR)
}
