// Package kernel simulates a node's operating system: a process table,
// a scheduler over virtual CPUs, signals, file descriptors, pipes,
// System-V shared memory and semaphores, and the socket syscall layer
// bridging to the tcpip stack.
//
// Processes are "programs": deterministic state machines whose mutable
// state is gob-serializable. That explicit state is the simulation's
// stand-in for CPU registers and stack, and it is what makes
// checkpoint-restart application-transparent here: the checkpointer
// serializes the program value, the address space, and the kernel
// resources without the program's cooperation.
//
// Blocking is retry-based: a syscall that cannot complete returns
// ErrWouldBlock, the program's Step returns a wait disposition, and the
// kernel re-runs the step when the awaited resource signals (spurious
// wakeups are allowed and harmless). This is exactly the discipline that
// lets a restored process simply resume stepping after restart.
package kernel

import (
	"errors"
	"fmt"
	"sort"

	"cruz/internal/mem"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/trace"
)

// Errors returned by kernel operations.
var (
	// ErrWouldBlock mirrors tcpip.ErrWouldBlock for kernel resources.
	ErrWouldBlock = tcpip.ErrWouldBlock
	ErrBadFD      = errors.New("kernel: bad file descriptor")
	ErrNoProcess  = errors.New("kernel: no such process")
	ErrNoIPC      = errors.New("kernel: no such IPC object")
	ErrStopped    = errors.New("kernel: process is stopped")
)

// Params configures a simulated node's hardware and kernel costs.
type Params struct {
	// NumCPUs is the number of processors (the paper's testbed nodes
	// have two 1 GHz Pentium IIIs).
	NumCPUs int
	// SyscallCost is the base CPU cost charged per syscall.
	SyscallCost sim.Duration
	// DiskWriteBPS and DiskReadBPS are the local disk's sequential
	// bandwidths in bytes per second.
	DiskWriteBPS int64
	DiskReadBPS  int64
	// DiskLatency is the per-operation positioning latency.
	DiskLatency sim.Duration
	// CowFaultCost is the CPU cost charged to a process for each
	// copy-on-write break it takes writing to a snapshotted page — the
	// runtime overhead of checkpointing concurrently with execution
	// (§5.2). It models a write-protection fault plus a page copy.
	CowFaultCost sim.Duration
}

// DefaultParams matches the testbed calibration in DESIGN.md.
func DefaultParams() Params {
	return Params{
		NumCPUs:      2,
		SyscallCost:  1 * sim.Microsecond,
		DiskWriteBPS: 110 << 20, // 110 MB/s
		DiskReadBPS:  150 << 20,
		DiskLatency:  4 * sim.Millisecond,
		CowFaultCost: 2 * sim.Microsecond,
	}
}

// Kernel is one node's operating system instance.
type Kernel struct {
	engine *sim.Engine
	name   string
	params Params
	stack  *tcpip.Stack
	disk   *Disk
	tr     *trace.Tracer

	procs   map[int]*Process
	nextPID int

	busyCPUs int
	readyQ   []*Process

	shms    map[int]*ShmSegment
	sems    map[int]*Semaphore
	nextIPC int

	// Stats counts kernel activity.
	Stats KernelStats
}

// KernelStats counts kernel-level events.
type KernelStats struct {
	StepsRun     uint64
	Syscalls     uint64
	ContextTime  sim.Duration // total CPU time consumed by all processes
	ProcsSpawned uint64
	ProcsExited  uint64
	// CowFaults counts copy-on-write breaks taken by processes writing
	// to pages shared with an in-progress checkpoint snapshot.
	CowFaults uint64
}

// New creates a kernel for a node. The stack may be nil for pure-compute
// nodes (tests); socket syscalls then fail with ErrNoRoute.
func New(engine *sim.Engine, name string, params Params, stack *tcpip.Stack) *Kernel {
	if params.NumCPUs <= 0 {
		params.NumCPUs = 1
	}
	k := &Kernel{
		engine:  engine,
		name:    name,
		params:  params,
		stack:   stack,
		tr:      trace.FromEngine(engine),
		procs:   make(map[int]*Process),
		nextPID: 1,
		shms:    make(map[int]*ShmSegment),
		sems:    make(map[int]*Semaphore),
	}
	k.disk = &Disk{
		engine:   engine,
		name:     name,
		writeBPS: params.DiskWriteBPS,
		readBPS:  params.DiskReadBPS,
		latency:  params.DiskLatency,
	}
	return k
}

// Engine returns the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.engine }

// Name returns the node name.
func (k *Kernel) Name() string { return k.name }

// Stack returns the node's network stack (may be nil).
func (k *Kernel) Stack() *tcpip.Stack { return k.stack }

// Disk returns the node's disk.
func (k *Kernel) Disk() *Disk { return k.disk }

// Params returns the node's configuration.
func (k *Kernel) Params() Params { return k.params }

// Process returns the process with the given (physical) pid, or nil.
func (k *Kernel) Process(pid int) *Process { return k.procs[pid] }

// Processes returns all live processes, in pid order.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, 0, len(k.procs))
	for pid := 1; pid < k.nextPID; pid++ {
		if p, ok := k.procs[pid]; ok {
			out = append(out, p)
		}
	}
	return out
}

// Spawn creates a new process running prog and makes it runnable. The
// parent pid may be 0 for a detached (init-spawned) process.
func (k *Kernel) Spawn(name string, prog Program, parent int) *Process {
	p := &Process{
		kernel: k,
		pid:    k.nextPID,
		parent: parent,
		name:   name,
		prog:   prog,
		mem:    mem.NewAddressSpace(),
		fds:    make(map[int]*FD),
		nextFD: 3, // 0..2 reserved by convention
		state:  StateReady,
	}
	p.ctx.proc = p
	// Each COW break during a program step is charged to the step's CPU
	// cost in runStep; the hook only tallies.
	p.mem.SetFaultHook(func(uint64) {
		p.cowFaults++
		k.Stats.CowFaults++
	})
	k.nextPID++
	k.procs[p.pid] = p
	k.Stats.ProcsSpawned++
	if k.tr.Enabled() {
		k.tr.Instant(k.name, "kernel", "spawn",
			trace.Str("proc", name), trace.Int("pid", int64(p.pid)), trace.Int("parent", int64(parent)))
	}
	k.enqueue(p)
	return p
}

// enqueue makes p runnable and kicks the dispatcher.
func (k *Kernel) enqueue(p *Process) {
	if p.state == StateExited || p.state == StateStopped || p.queued {
		return
	}
	p.state = StateReady
	p.queued = true
	k.readyQ = append(k.readyQ, p)
	// Dispatch from a fresh event so callers (e.g. notify callbacks deep
	// in the TCP stack) never re-enter program code synchronously.
	k.engine.Schedule(0, k.dispatch)
}

// dispatch assigns ready processes to free CPUs.
func (k *Kernel) dispatch() {
	for k.busyCPUs < k.params.NumCPUs && len(k.readyQ) > 0 {
		p := k.readyQ[0]
		k.readyQ = k.readyQ[1:]
		p.queued = false
		if p.state != StateReady {
			continue
		}
		k.runStep(p)
	}
}

// runStep executes one program step. The step's effects are applied
// atomically now; the consumed CPU time occupies a processor until the
// completion event, at which point the wait disposition takes effect.
func (k *Kernel) runStep(p *Process) {
	p.state = StateRunning
	k.busyCPUs++
	k.Stats.StepsRun++

	p.ctx.reset()
	res := p.prog.Step(&p.ctx)

	cost := res.CPU
	if cost < 0 {
		cost = 0
	}
	sysCost := sim.Duration(p.ctx.syscalls) * k.params.SyscallCost
	if p.interposer != nil {
		sysCost += sim.Duration(p.ctx.syscalls) * p.interposer.SyscallOverhead()
	}
	cost += sysCost
	if p.cowFaults > 0 {
		cost += sim.Duration(p.cowFaults) * k.params.CowFaultCost
		p.cowFaults = 0
	}
	p.cpuTime += cost
	k.Stats.ContextTime += cost
	k.Stats.Syscalls += uint64(p.ctx.syscalls)

	k.engine.Schedule(cost, func() { k.finishStep(p, res) })
}

// finishStep releases the CPU and applies the step's disposition.
func (k *Kernel) finishStep(p *Process, res StepResult) {
	k.busyCPUs--
	defer k.dispatch()

	if p.state == StateExited {
		return // killed while the step's time was elapsing
	}
	if p.killed {
		k.exitProcess(p, 137)
		return
	}
	if res.Wait == WaitExit {
		k.exitProcess(p, res.ExitCode)
		return
	}
	if p.stopRequested {
		p.stopRequested = false
		p.state = StateStopped
		p.resumeWait = res
		if p.onStopped != nil {
			p.onStopped()
		}
		return
	}
	k.applyWait(p, res)
}

// applyWait parks or re-queues the process according to the disposition.
func (k *Kernel) applyWait(p *Process, res StepResult) {
	switch res.Wait {
	case WaitNone:
		p.state = StateReady
		k.enqueue(p)
	case WaitSleep:
		p.state = StateSleeping
		d := res.SleepFor
		if d < 0 {
			d = 0
		}
		p.sleepEv = k.engine.Schedule(d, func() { k.wake(p) })
	case WaitFD:
		// Re-check readiness before parking: the condition may have
		// become true during the step's CPU time.
		if fd, ok := p.fds[res.FD]; ok && fd.file.ready(res.WaitWrite) {
			p.state = StateReady
			k.enqueue(p)
			return
		}
		p.state = StateBlocked
		p.waitFD = res.FD
	case WaitSem:
		s, ok := k.sems[res.SemID]
		if !ok || s.value > 0 {
			// Bad id (retry so the program sees the error) or a release
			// landed while this step's CPU time was elapsing — parking
			// now would miss the wakeup.
			p.state = StateReady
			k.enqueue(p)
			return
		}
		p.state = StateBlocked
		s.waiters = append(s.waiters, p)
	case WaitChild:
		if p.hasZombieChild() {
			p.state = StateReady
			k.enqueue(p)
			return
		}
		p.state = StateBlocked
		p.waitingChild = true
	default:
		p.state = StateReady
		k.enqueue(p)
	}
}

// wake makes a parked process runnable again. Spurious wakeups are safe:
// the program re-runs its step and retries its syscall.
func (k *Kernel) wake(p *Process) {
	switch p.state {
	case StateBlocked, StateSleeping, StateReady:
		if p.sleepEv != nil {
			k.engine.Cancel(p.sleepEv)
			p.sleepEv = nil
		}
		p.waitFD = -1
		p.waitingChild = false
		k.enqueue(p)
	}
}

// exitProcess tears a process down and reaps resources.
func (k *Kernel) exitProcess(p *Process, code int) {
	if p.state == StateExited {
		return
	}
	p.state = StateExited
	p.exitCode = code
	if p.sleepEv != nil {
		k.engine.Cancel(p.sleepEv)
		p.sleepEv = nil
	}
	// Close in sorted FD order: closing tears down TCP state (FIN, RTO
	// timers), and map order here would make kill traces nondeterministic.
	fdns := make([]int, 0, len(p.fds))
	for fdn := range p.fds {
		fdns = append(fdns, fdn)
	}
	sort.Ints(fdns)
	for _, fdn := range fdns {
		p.closeFD(fdn) //cruzvet:allow errdrop exit teardown over the proc's own fd table; EBADF cannot happen for keys of p.fds
	}
	delete(k.procs, p.pid)
	k.Stats.ProcsExited++
	if k.tr.Enabled() {
		k.tr.Instant(k.name, "kernel", "exit",
			trace.Str("proc", p.name), trace.Int("pid", int64(p.pid)), trace.Int("code", int64(code)))
	}
	// Wake a parent blocked in WaitChild.
	if parent, ok := k.procs[p.parent]; ok {
		parent.zombies = append(parent.zombies, ChildExit{PID: p.pid, Code: code})
		if parent.waitingChild {
			k.wake(parent)
		}
	}
	if p.onExit != nil {
		p.onExit(code)
	}
}

// Signal delivers a signal to the process with the given pid.
func (k *Kernel) Signal(pid int, sig Signal) error {
	p, ok := k.procs[pid]
	if !ok {
		return fmt.Errorf("%w: pid %d", ErrNoProcess, pid)
	}
	if k.tr.Enabled() {
		k.tr.Instant(k.name, "kernel", "signal",
			trace.Str("sig", sig.String()), trace.Int("pid", int64(pid)))
	}
	p.deliverSignal(sig)
	return nil
}

// Disk models a node-local disk with sequential bandwidth and positioning
// latency. Checkpoint images are written through it, which is what makes
// local checkpoint time scale with image size (Fig. 5a is dominated by
// this).
type Disk struct {
	engine   *sim.Engine
	name     string // owning node, for trace scoping
	writeBPS int64
	readBPS  int64
	latency  sim.Duration
	freeAt   sim.Time

	// Stats counts disk activity.
	Stats DiskStats
}

// Engine returns the engine the disk schedules on.
func (d *Disk) Engine() *sim.Engine { return d.engine }

// Name returns the owning node's name (empty for bare test disks).
func (d *Disk) Name() string { return d.name }

// DiskStats counts disk activity.
type DiskStats struct {
	BytesWritten uint64
	BytesRead    uint64
	Ops          uint64
}

// xferTime returns how long size bytes take at bps.
func xferTime(size int64, bps int64) sim.Duration {
	if bps <= 0 {
		return 0
	}
	return sim.Duration(size * int64(sim.Second) / bps)
}

// Write schedules an asynchronous write of size bytes, invoking done when
// it completes. Concurrent operations queue behind each other.
func (d *Disk) Write(size int64, done func()) {
	d.Stats.BytesWritten += uint64(size)
	d.op(xferTime(size, d.writeBPS), done)
}

// WriteContig schedules a write that continues a sequential stream:
// positioning latency is charged only if the disk is idle (the head has
// had time to move away). Back-to-back segments of one checkpoint image
// thus pay the seek once, matching a single large Write — this is what
// makes a pipelined segmented save cost the same disk time as a
// monolithic one.
func (d *Disk) WriteContig(size int64, done func()) {
	d.Stats.BytesWritten += uint64(size)
	d.Stats.Ops++
	start := d.engine.Now()
	lat := d.latency
	if d.freeAt > start {
		start = d.freeAt
		lat = 0
	}
	end := start.Add(lat + xferTime(size, d.writeBPS))
	d.freeAt = end
	d.engine.ScheduleAt(end, done)
}

// Read schedules an asynchronous read of size bytes.
func (d *Disk) Read(size int64, done func()) {
	d.Stats.BytesRead += uint64(size)
	d.op(xferTime(size, d.readBPS), done)
}

func (d *Disk) op(xfer sim.Duration, done func()) {
	d.Stats.Ops++
	start := d.engine.Now()
	if d.freeAt > start {
		start = d.freeAt
	}
	end := start.Add(d.latency + xfer)
	d.freeAt = end
	d.engine.ScheduleAt(end, done)
}
