package kernel

import (
	"fmt"

	"cruz/internal/mem"
)

// ShmSegment is a System-V shared-memory segment. Processes access it by
// id through ShmRead/ShmWrite syscalls (the simulation does not alias
// page tables; the observable semantics — shared, persistent across the
// attaching processes' lifetimes, checkpointed with the pod — match).
type ShmSegment struct {
	ID   int
	Key  int
	Size int
	mem  *mem.AddressSpace
	base uint64
}

func newShmSegment(id, key, size int) (*ShmSegment, error) {
	s := &ShmSegment{ID: id, Key: key, Size: size, mem: mem.NewAddressSpace()}
	base, err := s.mem.Alloc(uint64(size), fmt.Sprintf("shm:%d", id))
	if err != nil {
		return nil, err
	}
	s.base = base
	return s, nil
}

// Write stores b at offset off.
func (s *ShmSegment) Write(off int, b []byte) error {
	if off < 0 || off+len(b) > s.Size {
		return fmt.Errorf("%w: shm write [%d,+%d) of %d", mem.ErrOutOfRange, off, len(b), s.Size)
	}
	return s.mem.Write(s.base+uint64(off), b)
}

// Read loads into b from offset off.
func (s *ShmSegment) Read(off int, b []byte) error {
	if off < 0 || off+len(b) > s.Size {
		return fmt.Errorf("%w: shm read [%d,+%d) of %d", mem.ErrOutOfRange, off, len(b), s.Size)
	}
	return s.mem.Read(s.base+uint64(off), b)
}

// Contents returns a copy of the whole segment (checkpointer).
func (s *ShmSegment) Contents() []byte {
	b := make([]byte, s.Size)
	_ = s.mem.Read(s.base, b) //cruzvet:allow errdrop in-bounds by construction: [base, base+Size) is the segment's own mapping
	return b
}

// Restore overwrites the segment contents (restore path).
func (s *ShmSegment) Restore(b []byte) error { return s.Write(0, b) }

// shmGet implements shmget(key, size): find-by-key or create.
func (k *Kernel) shmGet(key, size int) (int, error) {
	if key != 0 {
		for _, s := range k.shms {
			if s.Key == key {
				return s.ID, nil
			}
		}
	}
	k.nextIPC++
	s, err := newShmSegment(k.nextIPC, key, size)
	if err != nil {
		return 0, err
	}
	k.shms[s.ID] = s
	return s.ID, nil
}

// Shm returns a segment by id (checkpointer).
func (k *Kernel) Shm(id int) *ShmSegment { return k.shms[id] }

// InstallShm places a restored segment into the kernel's table at a
// specific id. It fails if the id is taken.
func (k *Kernel) InstallShm(id, key, size int, contents []byte) (*ShmSegment, error) {
	if _, ok := k.shms[id]; ok {
		return nil, fmt.Errorf("kernel: shm id %d already in use", id)
	}
	s, err := newShmSegment(id, key, size)
	if err != nil {
		return nil, err
	}
	if err := s.Restore(contents); err != nil {
		return nil, err
	}
	k.shms[s.ID] = s
	if id >= k.nextIPC {
		k.nextIPC = id + 1
	}
	return s, nil
}

// RemoveShm deletes a segment.
func (k *Kernel) RemoveShm(id int) { delete(k.shms, id) }

// Semaphore is a counting semaphore with a waiter queue.
type Semaphore struct {
	ID      int
	Key     int
	value   int
	waiters []*Process
}

// Value returns the current count (checkpointer).
func (s *Semaphore) Value() int { return s.value }

// semGet implements semget: find-by-key or create with initial value.
func (k *Kernel) semGet(key, val int) (int, error) {
	if key != 0 {
		for _, s := range k.sems {
			if s.Key == key {
				return s.ID, nil
			}
		}
	}
	k.nextIPC++
	s := &Semaphore{ID: k.nextIPC, Key: key, value: val}
	k.sems[s.ID] = s
	return s.ID, nil
}

// Sem returns a semaphore by id (checkpointer).
func (k *Kernel) Sem(id int) *Semaphore { return k.sems[id] }

// InstallSem places a restored semaphore at a specific id.
func (k *Kernel) InstallSem(id, key, value int) (*Semaphore, error) {
	if _, ok := k.sems[id]; ok {
		return nil, fmt.Errorf("kernel: sem id %d already in use", id)
	}
	s := &Semaphore{ID: id, Key: key, value: value}
	k.sems[id] = s
	if id >= k.nextIPC {
		k.nextIPC = id + 1
	}
	return s, nil
}

// RemoveSem deletes a semaphore; blocked waiters are woken (they will
// retry and get ErrNoIPC).
func (k *Kernel) RemoveSem(id int) {
	if s, ok := k.sems[id]; ok {
		for _, p := range s.waiters {
			k.wake(p)
		}
		delete(k.sems, id)
	}
}

// semOp implements semop with a single operation: delta>0 releases,
// delta<0 acquires (blocking if it would go negative), delta==0 is a
// wait-for-zero which we approximate as non-blocking read.
func (k *Kernel) semOp(id, delta int) error {
	s, ok := k.sems[id]
	if !ok {
		return fmt.Errorf("%w: sem %d", ErrNoIPC, id)
	}
	if delta < 0 && s.value+delta < 0 {
		return ErrWouldBlock
	}
	s.value += delta
	if delta > 0 && len(s.waiters) > 0 {
		// Wake everyone; they retry and re-block if unlucky. Simple and
		// starvation-free enough for simulation purposes.
		ws := s.waiters
		s.waiters = nil
		for _, p := range ws {
			k.wake(p)
		}
	}
	return nil
}
