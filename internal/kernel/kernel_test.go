package kernel

import (
	"errors"
	"io"
	"testing"

	"cruz/internal/ether"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
)

// testRig is a one- or two-node fixture with kernels and a network.
type testRig struct {
	t       *testing.T
	engine  *sim.Engine
	sw      *ether.Switch
	kernels []*Kernel
}

func newTestRig(t *testing.T, nodes int) *testRig {
	t.Helper()
	r := &testRig{t: t, engine: sim.NewEngine(7)}
	r.sw = ether.NewSwitch(r.engine)
	for i := 0; i < nodes; i++ {
		mac := ether.MAC{2, 0, 0, 0, 0, byte(i + 1)}
		nic := ether.NewNIC(r.engine, "eth0", mac)
		r.sw.Attach(nic, ether.GigabitLink)
		st := tcpip.NewStack(r.engine, "node")
		if _, err := st.AddInterface("eth0", tcpip.Addr{10, 0, 0, byte(i + 1)}, mac, nic, false); err != nil {
			t.Fatal(err)
		}
		r.kernels = append(r.kernels, New(r.engine, "node", DefaultParams(), st))
	}
	return r
}

func (r *testRig) run(d sim.Duration) {
	r.t.Helper()
	if err := r.engine.RunFor(d); err != nil {
		r.t.Fatalf("RunFor: %v", err)
	}
}

func nodeAddr(i int) tcpip.Addr { return tcpip.Addr{10, 0, 0, byte(i + 1)} }

// --- test programs ----------------------------------------------------

// counterProg counts to Target, spending BurstCPU per step.
type counterProg struct {
	Count, Target int
	BurstCPU      sim.Duration
}

func (p *counterProg) Step(ctx *ProcContext) StepResult {
	p.Count++
	if p.Count >= p.Target {
		return Exit(p.BurstCPU, 0)
	}
	return Continue(p.BurstCPU)
}

// sleeperProg sleeps N times for Interval each, recording wake times.
type sleeperProg struct {
	Remaining int
	Interval  sim.Duration
	Wakes     []sim.Time
}

func (p *sleeperProg) Step(ctx *ProcContext) StepResult {
	p.Wakes = append(p.Wakes, ctx.Now())
	p.Remaining--
	if p.Remaining <= 0 {
		return Exit(0, 0)
	}
	return Sleep(0, p.Interval)
}

// echoServerProg accepts one connection and echoes everything back.
type echoServerProg struct {
	Port   uint16
	phase  int
	lfd    int
	cfd    int
	buf    []byte
	Echoed int
}

func (p *echoServerProg) Step(ctx *ProcContext) StepResult {
	switch p.phase {
	case 0:
		fd, err := ctx.Listen(tcpip.AddrPort{Port: p.Port}, 4)
		if err != nil {
			return Exit(0, 1)
		}
		p.lfd = fd
		p.phase = 1
		return Continue(0)
	case 1:
		cfd, err := ctx.Accept(p.lfd)
		if err == ErrWouldBlock {
			return BlockOnRead(0, p.lfd)
		}
		if err != nil {
			return Exit(0, 1)
		}
		p.cfd = cfd
		p.phase = 2
		return Continue(0)
	case 2: // read
		buf := make([]byte, 4096)
		n, err := ctx.Recv(p.cfd, buf, false)
		if err == ErrWouldBlock {
			return BlockOnRead(0, p.cfd)
		}
		if err == io.EOF {
			ctx.CloseFD(p.cfd)
			return Exit(0, 0)
		}
		if err != nil {
			return Exit(0, 1)
		}
		p.buf = buf[:n]
		p.phase = 3
		return Continue(10 * sim.Microsecond)
	case 3: // write back
		n, err := ctx.Send(p.cfd, p.buf)
		if err == ErrWouldBlock {
			return BlockOnWrite(0, p.cfd)
		}
		if err != nil {
			return Exit(0, 1)
		}
		p.Echoed += n
		p.buf = p.buf[n:]
		if len(p.buf) == 0 {
			p.phase = 2
		}
		return Continue(0)
	}
	return Exit(0, 1)
}

// echoClientProg connects, sends Payload, reads the echo, exits 0 on match.
type echoClientProg struct {
	Server  tcpip.AddrPort
	Payload []byte
	phase   int
	fd      int
	sent    int
	got     []byte
}

func (p *echoClientProg) Step(ctx *ProcContext) StepResult {
	switch p.phase {
	case 0:
		fd, err := ctx.Connect(p.Server)
		if err != nil {
			return Exit(0, 1)
		}
		p.fd = fd
		p.phase = 1
		return Continue(0)
	case 1:
		ok, err := ctx.ConnEstablished(p.fd)
		if err != nil {
			return Exit(0, 1)
		}
		if !ok {
			return Sleep(0, sim.Millisecond)
		}
		p.phase = 2
		return Continue(0)
	case 2: // send
		n, err := ctx.Send(p.fd, p.Payload[p.sent:])
		if err == ErrWouldBlock {
			return BlockOnWrite(0, p.fd)
		}
		if err != nil {
			return Exit(0, 1)
		}
		p.sent += n
		if p.sent == len(p.Payload) {
			p.phase = 3
		}
		return Continue(0)
	case 3: // receive echo
		buf := make([]byte, 4096)
		n, err := ctx.Recv(p.fd, buf, false)
		if err == ErrWouldBlock {
			return BlockOnRead(0, p.fd)
		}
		if err != nil {
			return Exit(0, 1)
		}
		p.got = append(p.got, buf[:n]...)
		if len(p.got) >= len(p.Payload) {
			for i := range p.Payload {
				if p.got[i] != p.Payload[i] {
					return Exit(0, 2)
				}
			}
			ctx.CloseFD(p.fd)
			return Exit(0, 0)
		}
		return Continue(0)
	}
	return Exit(0, 1)
}

// --- tests --------------------------------------------------------------

func TestProcessRunsAndExits(t *testing.T) {
	r := newTestRig(t, 1)
	p := r.kernels[0].Spawn("counter", &counterProg{Target: 10, BurstCPU: sim.Millisecond}, 0)
	r.run(sim.Second)
	if p.State() != StateExited {
		t.Fatalf("state = %v, want EXITED", p.State())
	}
	if p.CPUTime() != 10*sim.Millisecond {
		t.Fatalf("CPUTime = %v, want 10ms", p.CPUTime())
	}
	if r.kernels[0].Process(p.PID()) != nil {
		t.Fatal("exited process still in table")
	}
}

func TestCPUContention(t *testing.T) {
	// 4 CPU-bound processes on 2 CPUs: wall time = 2x single-process.
	r := newTestRig(t, 1)
	var procs []*Process
	for i := 0; i < 4; i++ {
		procs = append(procs, r.kernels[0].Spawn("busy", &counterProg{Target: 100, BurstCPU: sim.Millisecond}, 0))
	}
	start := r.engine.Now()
	r.run(10 * sim.Second)
	for _, p := range procs {
		if p.State() != StateExited {
			t.Fatalf("process not finished")
		}
	}
	// 4 procs x 100ms on 2 CPUs ≈ 200ms of wall time.
	elapsed := r.kernels[0].Stats.ContextTime
	if elapsed != 400*sim.Millisecond {
		t.Fatalf("total CPU = %v, want 400ms", elapsed)
	}
	_ = start
}

func TestSleepWakesOnTime(t *testing.T) {
	r := newTestRig(t, 1)
	prog := &sleeperProg{Remaining: 3, Interval: 50 * sim.Millisecond}
	r.kernels[0].Spawn("sleeper", prog, 0)
	r.run(sim.Second)
	if len(prog.Wakes) != 3 {
		t.Fatalf("wakes = %d, want 3", len(prog.Wakes))
	}
	gap := prog.Wakes[1].Sub(prog.Wakes[0])
	if gap < 50*sim.Millisecond || gap > 51*sim.Millisecond {
		t.Fatalf("sleep gap = %v, want ~50ms", gap)
	}
}

func TestEchoOverNetwork(t *testing.T) {
	r := newTestRig(t, 2)
	server := &echoServerProg{Port: 7}
	r.kernels[1].Spawn("echod", server, 0)
	r.run(10 * sim.Millisecond)
	payload := make([]byte, 20000)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	client := &echoClientProg{Server: tcpip.AddrPort{Addr: nodeAddr(1), Port: 7}, Payload: payload}
	cp := r.kernels[0].Spawn("client", client, 0)
	r.run(5 * sim.Second)
	if cp.State() != StateExited || cp.ExitCode() != 0 {
		t.Fatalf("client state=%v code=%d phase=%d got=%d", cp.State(), cp.ExitCode(), client.phase, len(client.got))
	}
	if server.Echoed != len(payload) {
		t.Fatalf("server echoed %d, want %d", server.Echoed, len(payload))
	}
}

func TestSIGSTOPFreezesAndSIGCONTResumes(t *testing.T) {
	r := newTestRig(t, 1)
	prog := &counterProg{Target: 1 << 30, BurstCPU: sim.Millisecond}
	p := r.kernels[0].Spawn("busy", prog, 0)
	r.run(100 * sim.Millisecond)
	if err := r.kernels[0].Signal(p.PID(), SIGSTOP); err != nil {
		t.Fatal(err)
	}
	r.run(10 * sim.Millisecond) // let the in-flight step finish
	if !p.Stopped() {
		t.Fatalf("state = %v, want STOPPED", p.State())
	}
	frozen := prog.Count
	r.run(sim.Second)
	if prog.Count != frozen {
		t.Fatalf("stopped process kept running: %d -> %d", frozen, prog.Count)
	}
	r.kernels[0].Signal(p.PID(), SIGCONT)
	r.run(100 * sim.Millisecond)
	if prog.Count <= frozen {
		t.Fatal("SIGCONT did not resume execution")
	}
}

func TestOnStoppedCallbackFiresAtQuiescence(t *testing.T) {
	r := newTestRig(t, 1)
	p := r.kernels[0].Spawn("busy", &counterProg{Target: 1 << 30, BurstCPU: sim.Millisecond}, 0)
	var stoppedAt sim.Time
	p.SetOnStopped(func() { stoppedAt = r.engine.Now() })
	r.run(10 * sim.Millisecond)
	r.kernels[0].Signal(p.PID(), SIGSTOP)
	r.run(100 * sim.Millisecond)
	if stoppedAt == 0 {
		t.Fatal("onStopped never fired")
	}
}

func TestSIGKILL(t *testing.T) {
	r := newTestRig(t, 1)
	p := r.kernels[0].Spawn("victim", &counterProg{Target: 1 << 30, BurstCPU: sim.Millisecond}, 0)
	r.run(10 * sim.Millisecond)
	r.kernels[0].Signal(p.PID(), SIGKILL)
	r.run(10 * sim.Millisecond)
	if p.State() != StateExited || p.ExitCode() != 137 {
		t.Fatalf("state=%v code=%d", p.State(), p.ExitCode())
	}
	if err := r.kernels[0].Signal(p.PID(), SIGKILL); !errors.Is(err, ErrNoProcess) {
		t.Fatalf("signal to dead pid = %v", err)
	}
}

func TestStopWhileBlockedThenCont(t *testing.T) {
	// A process blocked on a socket read must stop immediately and, on
	// SIGCONT, re-block (spurious wakeup semantics).
	r := newTestRig(t, 2)
	server := &echoServerProg{Port: 7}
	sp := r.kernels[1].Spawn("echod", server, 0)
	r.run(50 * sim.Millisecond)
	if sp.State() != StateBlocked {
		t.Fatalf("server state = %v, want BLOCKED (accept)", sp.State())
	}
	r.kernels[1].Signal(sp.PID(), SIGSTOP)
	r.run(sim.Millisecond)
	if !sp.Stopped() {
		t.Fatalf("server state = %v, want STOPPED", sp.State())
	}
	r.kernels[1].Signal(sp.PID(), SIGCONT)
	r.run(50 * sim.Millisecond)
	if sp.State() != StateBlocked {
		t.Fatalf("server state after CONT = %v, want BLOCKED again", sp.State())
	}
	// And it still works.
	client := &echoClientProg{Server: tcpip.AddrPort{Addr: nodeAddr(1), Port: 7}, Payload: []byte("hi")}
	cp := r.kernels[0].Spawn("client", client, 0)
	r.run(5 * sim.Second)
	if cp.ExitCode() != 0 || cp.State() != StateExited {
		t.Fatalf("client failed after server stop/cont: state=%v code=%d", cp.State(), cp.ExitCode())
	}
}

func TestUserSignalWakesBlockedProcess(t *testing.T) {
	r := newTestRig(t, 2)
	server := &echoServerProg{Port: 7}
	sp := r.kernels[1].Spawn("echod", server, 0)
	r.run(50 * sim.Millisecond)
	r.kernels[1].Signal(sp.PID(), SIGUSR1)
	r.run(sim.Millisecond)
	// The process woke (retried accept, re-blocked) and holds the signal.
	if got := sp.PendingSignals(); len(got) != 1 || got[0] != SIGUSR1 {
		t.Fatalf("pending = %v", got)
	}
}
