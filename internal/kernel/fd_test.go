package kernel

import (
	"errors"
	"io"
	"testing"

	"cruz/internal/sim"
	"cruz/internal/tcpip"
)

// scriptProg runs a user-supplied closure each step — compact driver for
// syscall-surface tests.
type scriptProg struct {
	fn func(ctx *ProcContext) StepResult
}

func (p *scriptProg) Step(ctx *ProcContext) StepResult { return p.fn(ctx) }

func TestPipeEOFAndBrokenPipe(t *testing.T) {
	r := newTestRig(t, 1)
	var phase int
	var rfd, wfd int
	var gotEOF, gotBroken bool
	p := &scriptProg{fn: func(ctx *ProcContext) StepResult {
		switch phase {
		case 0:
			rfd, wfd, _ = ctx.Pipe()
			ctx.Send(wfd, []byte("tail"))
			ctx.CloseFD(wfd) // close write end with data still buffered
			phase = 1
			return Continue(0)
		case 1:
			buf := make([]byte, 16)
			n, err := ctx.Recv(rfd, buf, false)
			if err == nil && n == 4 {
				phase = 2
				return Continue(0)
			}
			return Exit(0, 1)
		case 2:
			// Buffered data gone; now EOF.
			if _, err := ctx.Recv(rfd, make([]byte, 4), false); err == io.EOF {
				gotEOF = true
			}
			// Fresh pipe: close the read end, then write -> broken pipe.
			r2, w2, _ := ctx.Pipe()
			ctx.CloseFD(r2)
			if _, err := ctx.Send(w2, []byte("x")); err != nil && err != ErrWouldBlock {
				gotBroken = true
			}
			return Exit(0, 0)
		}
		return Exit(0, 9)
	}}
	proc := r.kernels[0].Spawn("pipes", p, 0)
	r.run(50 * sim.Millisecond)
	if proc.State() != StateExited || proc.ExitCode() != 0 {
		t.Fatalf("proc state=%v code=%d", proc.State(), proc.ExitCode())
	}
	if !gotEOF {
		t.Fatal("no EOF after writer close")
	}
	if !gotBroken {
		t.Fatal("no broken-pipe error after reader close")
	}
}

func TestWaitChildReapsInOrder(t *testing.T) {
	r := newTestRig(t, 1)
	var reaped []ChildExit
	var phase int
	p := &scriptProg{fn: func(ctx *ProcContext) StepResult {
		switch phase {
		case 0:
			ctx.Spawn("c1", &counterProg{Target: 1})
			ctx.Spawn("c2", &counterProg{Target: 3, BurstCPU: sim.Millisecond})
			phase = 1
			return Continue(0)
		default:
			z, err := ctx.WaitChild()
			if err == ErrWouldBlock {
				return WaitForChild(0)
			}
			reaped = append(reaped, z)
			if len(reaped) == 2 {
				return Exit(0, 0)
			}
			return Continue(0)
		}
	}}
	proc := r.kernels[0].Spawn("parent", p, 0)
	r.run(sim.Second)
	if proc.State() != StateExited || len(reaped) != 2 {
		t.Fatalf("state=%v reaped=%v", proc.State(), reaped)
	}
	// The instant child (c1) exits before the 3ms child (c2).
	if reaped[0].PID >= reaped[1].PID && reaped[0].Code != 0 {
		t.Fatalf("reap order/codes: %v", reaped)
	}
}

func TestHWAddrSyscall(t *testing.T) {
	r := newTestRig(t, 1)
	var got string
	p := &scriptProg{fn: func(ctx *ProcContext) StepResult {
		mac, err := ctx.HWAddr("eth0")
		if err != nil {
			return Exit(0, 1)
		}
		got = mac.String()
		return Exit(0, 0)
	}}
	r.kernels[0].Spawn("hw", p, 0)
	r.run(10 * sim.Millisecond)
	if got != "02:00:00:00:00:01" {
		t.Fatalf("HWAddr = %q", got)
	}
}

func TestUDPSyscallSurface(t *testing.T) {
	r := newTestRig(t, 2)
	var serverGot []byte
	server := &scriptProg{fn: func(ctx *ProcContext) StepResult {
		if serverGot == nil {
			if _, err := ctx.OpenUDP(tcpip.AddrPort{Port: 500}, false); err != nil {
				return Exit(0, 1)
			}
			serverGot = []byte{}
			return Continue(0)
		}
		m, err := ctx.RecvFrom(3)
		if err == ErrWouldBlock {
			return BlockOnRead(0, 3)
		}
		if err != nil {
			return Exit(0, 1)
		}
		serverGot = m.Data
		ctx.SendTo(3, m.From, []byte("pong"))
		return Continue(0)
	}}
	r.kernels[1].Spawn("udpd", server, 0)
	r.run(5 * sim.Millisecond)

	var clientGot []byte
	phase := 0
	client := &scriptProg{fn: func(ctx *ProcContext) StepResult {
		switch phase {
		case 0:
			if _, err := ctx.OpenUDP(tcpip.AddrPort{Port: 0}, false); err != nil {
				return Exit(0, 1)
			}
			ctx.SendTo(3, tcpip.AddrPort{Addr: nodeAddr(1), Port: 500}, []byte("ping"))
			phase = 1
			return Continue(0)
		default:
			buf := make([]byte, 16)
			n, err := ctx.Recv(3, buf, false)
			if err == ErrWouldBlock {
				return BlockOnRead(0, 3)
			}
			if err != nil {
				return Exit(0, 1)
			}
			clientGot = buf[:n]
			return Exit(0, 0)
		}
	}}
	cp := r.kernels[0].Spawn("udpc", client, 0)
	r.run(100 * sim.Millisecond)
	if cp.State() != StateExited || cp.ExitCode() != 0 {
		t.Fatalf("client state=%v code=%d", cp.State(), cp.ExitCode())
	}
	if string(serverGot) != "ping" || string(clientGot) != "pong" {
		t.Fatalf("exchange: %q / %q", serverGot, clientGot)
	}
}

func TestBadFDErrors(t *testing.T) {
	r := newTestRig(t, 1)
	var errs []error
	p := &scriptProg{fn: func(ctx *ProcContext) StepResult {
		_, e1 := ctx.Recv(42, make([]byte, 1), false)
		_, e2 := ctx.Send(42, []byte{1})
		e3 := ctx.CloseFD(42)
		_, e4 := ctx.Accept(42)
		e5 := ctx.SetNoDelay(42, true)
		errs = append(errs, e1, e2, e3, e4, e5)
		return Exit(0, 0)
	}}
	r.kernels[0].Spawn("bad", p, 0)
	r.run(10 * sim.Millisecond)
	for i, err := range errs {
		if !errors.Is(err, ErrBadFD) {
			t.Fatalf("err %d = %v, want ErrBadFD", i, err)
		}
	}
}

func TestFDKindMismatch(t *testing.T) {
	r := newTestRig(t, 1)
	var got error
	p := &scriptProg{fn: func(ctx *ProcContext) StepResult {
		fd, err := ctx.Listen(tcpip.AddrPort{Port: 80}, 4)
		if err != nil {
			return Exit(0, 1)
		}
		// SetNoDelay on a listener is a kind mismatch.
		got = ctx.SetNoDelay(fd, true)
		return Exit(0, 0)
	}}
	r.kernels[0].Spawn("kind", p, 0)
	r.run(10 * sim.Millisecond)
	if !errors.Is(got, ErrBadFD) {
		t.Fatalf("kind mismatch err = %v", got)
	}
}

func TestSpawnInheritsListener(t *testing.T) {
	// A server parent opens a listener and hands it to a worker child —
	// the accept loop continues in the child (descriptor inheritance).
	r := newTestRig(t, 2)
	var accepted bool
	childFD := -1
	child := &scriptProg{fn: func(ctx *ProcContext) StepResult {
		if childFD < 0 {
			return Sleep(0, sim.Millisecond)
		}
		_, err := ctx.Accept(childFD)
		if err == ErrWouldBlock {
			return BlockOnRead(0, childFD)
		}
		if err != nil {
			return Exit(0, 1)
		}
		accepted = true
		return Exit(0, 0)
	}}
	parentPhase := 0
	parent := &scriptProg{fn: func(ctx *ProcContext) StepResult {
		if parentPhase == 0 {
			lfd, err := ctx.Listen(tcpip.AddrPort{Port: 81}, 4)
			if err != nil {
				return Exit(0, 1)
			}
			_, fds, err := ctx.Spawn("worker", child, lfd)
			if err != nil || len(fds) != 1 {
				return Exit(0, 1)
			}
			childFD = fds[0]
			parentPhase = 1
			return Continue(0)
		}
		return Sleep(0, sim.Second)
	}}
	r.kernels[1].Spawn("server", parent, 0)
	r.run(10 * sim.Millisecond)
	// Outside client connects; the child must accept it.
	conn, err := r.kernels[0].Stack().DialTCP(tcpip.AddrPort{}, tcpip.AddrPort{Addr: nodeAddr(1), Port: 81})
	if err != nil {
		t.Fatal(err)
	}
	r.run(100 * sim.Millisecond)
	if !accepted {
		t.Fatal("inherited listener never accepted")
	}
	// The worker exits right after accepting, so the client sees either
	// an established connection or an orderly half-close — never a reset.
	if st := conn.State(); st != tcpip.StateEstablished && st != tcpip.StateCloseWait {
		t.Fatalf("client state = %v", st)
	}
}

func TestSchedulerSkipsStoppedInQueue(t *testing.T) {
	// SIGSTOP delivered while the process sits in the ready queue must
	// prevent its next step.
	r := newTestRig(t, 1)
	prog := &counterProg{Target: 1 << 30, BurstCPU: sim.Millisecond}
	p := r.kernels[0].Spawn("busy", prog, 0)
	// Stop before any event has run.
	r.kernels[0].Signal(p.PID(), SIGSTOP)
	r.run(100 * sim.Millisecond)
	if prog.Count != 0 {
		t.Fatalf("stopped-at-spawn process ran %d steps", prog.Count)
	}
	r.kernels[0].Signal(p.PID(), SIGCONT)
	r.run(10 * sim.Millisecond)
	if prog.Count == 0 {
		t.Fatal("process never resumed")
	}
}
