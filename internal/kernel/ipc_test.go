package kernel

import (
	"errors"
	"io"
	"testing"

	"cruz/internal/sim"
)

// pipeWriterProg writes Payload into a pipe fd, then closes it.
type pipeWriterProg struct {
	FD      int
	Payload []byte
	sent    int
}

func (p *pipeWriterProg) Step(ctx *ProcContext) StepResult {
	if p.sent == len(p.Payload) {
		ctx.CloseFD(p.FD)
		return Exit(0, 0)
	}
	n, err := ctx.Send(p.FD, p.Payload[p.sent:])
	if err == ErrWouldBlock {
		return BlockOnWrite(0, p.FD)
	}
	if err != nil {
		return Exit(0, 1)
	}
	p.sent += n
	return Continue(0)
}

// pipeReaderProg drains a pipe fd until EOF.
type pipeReaderProg struct {
	FD  int
	Got []byte
}

func (p *pipeReaderProg) Step(ctx *ProcContext) StepResult {
	buf := make([]byte, 1000)
	n, err := ctx.Recv(p.FD, buf, false)
	if err == ErrWouldBlock {
		return BlockOnRead(0, p.FD)
	}
	if err == io.EOF {
		return Exit(0, 0)
	}
	if err != nil {
		return Exit(0, 1)
	}
	p.Got = append(p.Got, buf[:n]...)
	return Continue(0)
}

// pipeParentProg builds a pipe, spawns a writer child with the write end
// and a reader child with the read end, closes its own copies, and reaps
// both children.
type pipeParentProg struct {
	Payload []byte
	Reader  *pipeReaderProg
	phase   int
	reaped  int
}

func (p *pipeParentProg) Step(ctx *ProcContext) StepResult {
	switch p.phase {
	case 0:
		rfd, wfd, err := ctx.Pipe()
		if err != nil {
			return Exit(0, 1)
		}
		_, wfds, err := ctx.Spawn("writer", &pipeWriterProg{Payload: p.Payload}, wfd)
		if err != nil {
			return Exit(0, 1)
		}
		// Patch the child's program with its inherited fd number. (A real
		// fork shares the table; our Spawn returns the mapping instead.)
		wp := ctx.proc.kernel.Process(findChild(ctx, "writer")).Program().(*pipeWriterProg)
		wp.FD = wfds[0]
		_, rfds, err := ctx.Spawn("reader", p.Reader, rfd)
		if err != nil {
			return Exit(0, 1)
		}
		p.Reader.FD = rfds[0]
		ctx.CloseFD(rfd)
		ctx.CloseFD(wfd)
		p.phase = 1
		return Continue(0)
	case 1:
		_, err := ctx.WaitChild()
		if err == ErrWouldBlock {
			return WaitForChild(0)
		}
		p.reaped++
		if p.reaped == 2 {
			return Exit(0, 0)
		}
		return Continue(0)
	}
	return Exit(0, 1)
}

func findChild(ctx *ProcContext, name string) int {
	for _, pr := range ctx.proc.kernel.Processes() {
		if pr.Name() == name && pr.Parent() == ctx.proc.pid {
			return pr.PID()
		}
	}
	return -1
}

func TestPipeBetweenProcesses(t *testing.T) {
	r := newTestRig(t, 1)
	payload := make([]byte, 300000) // forces multiple fills of the 64K buffer
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	reader := &pipeReaderProg{}
	parent := &pipeParentProg{Payload: payload, Reader: reader}
	pp := r.kernels[0].Spawn("parent", parent, 0)
	r.run(10 * sim.Second)
	if pp.State() != StateExited || pp.ExitCode() != 0 {
		t.Fatalf("parent state=%v code=%d reaped=%d", pp.State(), pp.ExitCode(), parent.reaped)
	}
	if len(reader.Got) != len(payload) {
		t.Fatalf("reader got %d bytes, want %d", len(reader.Got), len(payload))
	}
	for i := range payload {
		if reader.Got[i] != payload[i] {
			t.Fatalf("byte %d corrupted", i)
		}
	}
}

// semPingPong alternates between two processes via two semaphores,
// recording the interleaving.
type semPingPong struct {
	MyKey, PeerKey int
	Rounds         int
	Log            *[]int
	ID             int
	myID, peerID   int
	phase          int
}

func (p *semPingPong) Step(ctx *ProcContext) StepResult {
	switch p.phase {
	case 0:
		var err error
		if p.myID, err = ctx.SemGet(p.MyKey, 0); err != nil {
			return Exit(0, 1)
		}
		if p.peerID, err = ctx.SemGet(p.PeerKey, 0); err != nil {
			return Exit(0, 1)
		}
		p.phase = 1
		// Player 1 starts: give itself a token.
		if p.ID == 1 {
			ctx.SemOp(p.myID, 1)
		}
		return Continue(0)
	case 1:
		if p.Rounds == 0 {
			return Exit(0, 0)
		}
		if err := ctx.SemOp(p.myID, -1); err == ErrWouldBlock {
			return BlockOnSem(0, p.myID)
		} else if err != nil {
			return Exit(0, 1)
		}
		*p.Log = append(*p.Log, p.ID)
		p.Rounds--
		ctx.SemOp(p.peerID, 1)
		return Continue(0)
	}
	return Exit(0, 1)
}

func TestSemaphorePingPong(t *testing.T) {
	r := newTestRig(t, 1)
	var log []int
	p1 := r.kernels[0].Spawn("p1", &semPingPong{ID: 1, MyKey: 101, PeerKey: 102, Rounds: 5, Log: &log}, 0)
	p2 := r.kernels[0].Spawn("p2", &semPingPong{ID: 2, MyKey: 102, PeerKey: 101, Rounds: 5, Log: &log}, 0)
	r.run(sim.Second)
	if p1.State() != StateExited || p2.State() != StateExited {
		t.Fatalf("states: %v %v", p1.State(), p2.State())
	}
	want := []int{1, 2, 1, 2, 1, 2, 1, 2, 1, 2}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("interleaving broken: %v", log)
		}
	}
}

// shmProg writes (ID==1) or polls-then-verifies (ID==2) a shared segment.
type shmProg struct {
	Key  int
	ID   int
	OK   bool
	shm  int
	done bool
}

func (p *shmProg) Step(ctx *ProcContext) StepResult {
	if p.shm == 0 {
		id, err := ctx.ShmGet(p.Key, 8192)
		if err != nil {
			return Exit(0, 1)
		}
		p.shm = id
	}
	if p.ID == 1 {
		if err := ctx.ShmWrite(p.shm, 4000, []byte("shared-hello")); err != nil {
			return Exit(0, 1)
		}
		return Exit(0, 0)
	}
	buf := make([]byte, 12)
	if err := ctx.ShmRead(p.shm, 4000, buf); err != nil {
		return Exit(0, 1)
	}
	if string(buf) == "shared-hello" {
		p.OK = true
		return Exit(0, 0)
	}
	return Sleep(0, sim.Millisecond)
}

func TestSharedMemoryVisibleAcrossProcesses(t *testing.T) {
	r := newTestRig(t, 1)
	writer := &shmProg{Key: 55, ID: 1}
	reader := &shmProg{Key: 55, ID: 2}
	r.kernels[0].Spawn("w", writer, 0)
	rp := r.kernels[0].Spawn("r", reader, 0)
	r.run(sim.Second)
	if rp.State() != StateExited || !reader.OK {
		t.Fatalf("reader state=%v ok=%v", rp.State(), reader.OK)
	}
	// Same key yields the same segment id.
	if writer.shm != reader.shm {
		t.Fatalf("shm ids differ: %d vs %d", writer.shm, reader.shm)
	}
}

func TestShmBounds(t *testing.T) {
	r := newTestRig(t, 1)
	id, err := r.kernels[0].shmGet(0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	s := r.kernels[0].Shm(id)
	if err := s.Write(4090, make([]byte, 10)); err == nil {
		t.Fatal("out-of-bounds shm write succeeded")
	}
	if err := s.Read(-1, make([]byte, 1)); err == nil {
		t.Fatal("negative-offset shm read succeeded")
	}
}

func TestSemOpErrors(t *testing.T) {
	r := newTestRig(t, 1)
	if err := r.kernels[0].semOp(999, 1); !errors.Is(err, ErrNoIPC) {
		t.Fatalf("bad sem id = %v", err)
	}
	id, _ := r.kernels[0].semGet(0, 1)
	if err := r.kernels[0].semOp(id, -1); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if err := r.kernels[0].semOp(id, -1); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("empty acquire = %v", err)
	}
}

func TestDiskTiming(t *testing.T) {
	r := newTestRig(t, 1)
	d := r.kernels[0].Disk()
	var doneAt sim.Time
	// 110 MB at 110 MB/s = 1s + 4ms latency.
	d.Write(110<<20, func() { doneAt = r.engine.Now() })
	r.run(5 * sim.Second)
	want := sim.Time(sim.Second + 4*sim.Millisecond)
	if doneAt != want {
		t.Fatalf("write completed at %v, want %v", doneAt, want)
	}
	// Two writes issued together queue behind each other.
	issue := r.engine.Now()
	var firstAt, secondAt sim.Time
	d.Write(110<<20, func() { firstAt = r.engine.Now() })
	d.Write(110<<20, func() { secondAt = r.engine.Now() })
	r.run(5 * sim.Second)
	per := sim.Duration(sim.Second + 4*sim.Millisecond)
	if firstAt.Sub(issue) != per || secondAt.Sub(issue) != 2*per {
		t.Fatalf("queued writes finished at +%v and +%v, want +%v and +%v",
			firstAt.Sub(issue), secondAt.Sub(issue), per, 2*per)
	}
}

func TestInstallIPCCollisions(t *testing.T) {
	r := newTestRig(t, 1)
	if _, err := r.kernels[0].InstallShm(5, 1, 4096, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.kernels[0].InstallShm(5, 1, 4096, nil); err == nil {
		t.Fatal("duplicate shm id accepted")
	}
	if _, err := r.kernels[0].InstallSem(6, 2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := r.kernels[0].InstallSem(6, 2, 3); err == nil {
		t.Fatal("duplicate sem id accepted")
	}
	if got := r.kernels[0].Sem(6).Value(); got != 3 {
		t.Fatalf("restored sem value = %d", got)
	}
}
