package kernel

import (
	"fmt"

	"cruz/internal/ether"
	"cruz/internal/mem"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
)

// ProcState is a process's scheduling state.
type ProcState int

// Process states.
const (
	StateReady ProcState = iota + 1
	StateRunning
	StateBlocked
	StateSleeping
	StateStopped
	StateExited
)

var procStateNames = map[ProcState]string{
	StateReady:    "READY",
	StateRunning:  "RUNNING",
	StateBlocked:  "BLOCKED",
	StateSleeping: "SLEEPING",
	StateStopped:  "STOPPED",
	StateExited:   "EXITED",
}

func (s ProcState) String() string {
	if n, ok := procStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("ProcState(%d)", int(s))
}

// Signal is a POSIX-style signal number.
type Signal int

// Signals used by the simulation.
const (
	SIGKILL Signal = 9
	SIGUSR1 Signal = 10
	SIGUSR2 Signal = 12
	SIGTERM Signal = 15
	SIGCONT Signal = 18
	SIGSTOP Signal = 19
)

func (s Signal) String() string {
	switch s {
	case SIGKILL:
		return "SIGKILL"
	case SIGUSR1:
		return "SIGUSR1"
	case SIGUSR2:
		return "SIGUSR2"
	case SIGTERM:
		return "SIGTERM"
	case SIGCONT:
		return "SIGCONT"
	case SIGSTOP:
		return "SIGSTOP"
	}
	return fmt.Sprintf("SIG(%d)", int(s))
}

// WaitKind says what a finished step is waiting for.
type WaitKind int

// Wait kinds.
const (
	// WaitNone re-queues the process immediately (it has more work).
	WaitNone WaitKind = iota
	// WaitFD parks the process until the file descriptor signals
	// readability (or writability if WaitWrite is set).
	WaitFD
	// WaitSleep parks the process for SleepFor of virtual time.
	WaitSleep
	// WaitSem parks the process until the semaphore signals.
	WaitSem
	// WaitChild parks the process until a child exits.
	WaitChild
	// WaitExit terminates the process with ExitCode.
	WaitExit
)

// StepResult tells the kernel what a program step consumed and what to do
// next.
type StepResult struct {
	// CPU is the user-mode compute time the step consumed (syscall costs
	// are added by the kernel automatically).
	CPU sim.Duration

	Wait      WaitKind
	FD        int          // for WaitFD
	WaitWrite bool         // for WaitFD: wait for writability
	SleepFor  sim.Duration // for WaitSleep
	SemID     int          // for WaitSem
	ExitCode  int          // for WaitExit
}

// Convenience constructors for StepResult.

// Continue re-queues the process after consuming cpu.
func Continue(cpu sim.Duration) StepResult { return StepResult{CPU: cpu} }

// BlockOnRead parks the process until fd is readable.
func BlockOnRead(cpu sim.Duration, fd int) StepResult {
	return StepResult{CPU: cpu, Wait: WaitFD, FD: fd}
}

// BlockOnWrite parks the process until fd is writable.
func BlockOnWrite(cpu sim.Duration, fd int) StepResult {
	return StepResult{CPU: cpu, Wait: WaitFD, FD: fd, WaitWrite: true}
}

// Sleep parks the process for d.
func Sleep(cpu, d sim.Duration) StepResult {
	return StepResult{CPU: cpu, Wait: WaitSleep, SleepFor: d}
}

// BlockOnSem parks the process on a semaphore.
func BlockOnSem(cpu sim.Duration, id int) StepResult {
	return StepResult{CPU: cpu, Wait: WaitSem, SemID: id}
}

// WaitForChild parks the process until a child exits.
func WaitForChild(cpu sim.Duration) StepResult {
	return StepResult{CPU: cpu, Wait: WaitChild}
}

// Exit terminates the process.
func Exit(cpu sim.Duration, code int) StepResult {
	return StepResult{CPU: cpu, Wait: WaitExit, ExitCode: code}
}

// Program is the user code of a simulated process: a deterministic state
// machine. All mutable state reachable from the Program value must be
// gob-serializable (register concrete types with gob.Register); the
// checkpointer encodes it as the process's "CPU state".
//
// Step is called each time the process is scheduled. It may issue
// syscalls through ctx. Blocking syscalls return ErrWouldBlock; the
// program then returns the matching wait disposition and retries on the
// next step. Spurious wakeups are allowed: a program must tolerate being
// re-stepped with its awaited condition still false.
type Program interface {
	Step(ctx *ProcContext) StepResult
}

// Interposer hooks the syscall layer; the Zap layer implements it to
// virtualize a pod's view of the system (paper §4.2).
type Interposer interface {
	// RewriteBind maps the address a socket asks to bind or listen on to
	// the address it must actually use (the pod VIF's address).
	RewriteBind(requested tcpip.AddrPort) tcpip.AddrPort
	// RewriteConnectLocal chooses the local address for an outgoing
	// connection (the implicit bind performed by connect).
	RewriteConnectLocal() tcpip.Addr
	// HWAddr is the SIOCGIFHWADDR interception: the MAC address the
	// process should believe an interface has.
	HWAddr(iface string, real ether.MAC) ether.MAC
	// VirtualPID maps a physical pid to the identifier the process
	// should see (its pod-private virtual pid).
	VirtualPID(real int) int
	// TranslatePID maps a virtual pid (as used by the process in kill
	// and friends) back to the physical pid.
	TranslatePID(virtual int) (int, bool)
	// SyscallOverhead is the extra CPU the interposition layer charges
	// per syscall.
	SyscallOverhead() sim.Duration
	// ChildSpawned is invoked when an interposed process forks a child,
	// so the virtualization layer can adopt it into the namespace.
	ChildSpawned(child *Process)
}

// ChildExit records a reaped child.
type ChildExit struct {
	PID  int
	Code int
}

// Process is one simulated process.
type Process struct {
	kernel *Kernel
	pid    int
	parent int
	name   string
	prog   Program
	mem    *mem.AddressSpace
	fds    map[int]*FD
	nextFD int

	state         ProcState
	queued        bool
	stopRequested bool
	killed        bool
	exitCode      int
	resumeWait    StepResult
	sleepEv       *sim.Event
	waitFD        int
	waitingChild  bool
	zombies       []ChildExit
	signals       []Signal

	cpuTime sim.Duration
	// cowFaults accumulates copy-on-write breaks taken during the
	// current program step; runStep folds them into the step's CPU cost
	// and resets the counter.
	cowFaults int

	interposer Interposer
	onStopped  func()
	onExit     func(code int)

	ctx ProcContext
}

// PID returns the kernel's (physical) process id.
func (p *Process) PID() int { return p.pid }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// State returns the scheduling state.
func (p *Process) State() ProcState { return p.state }

// ExitCode returns the exit code once the process has exited.
func (p *Process) ExitCode() int { return p.exitCode }

// CPUTime returns accumulated virtual CPU time.
func (p *Process) CPUTime() sim.Duration { return p.cpuTime }

// Program returns the process's program value (used by the checkpointer).
func (p *Process) Program() Program { return p.prog }

// Mem returns the process's address space.
func (p *Process) Mem() *mem.AddressSpace { return p.mem }

// Parent returns the parent pid.
func (p *Process) Parent() int { return p.parent }

// SetInterposer installs the Zap syscall-interposition hooks.
func (p *Process) SetInterposer(i Interposer) { p.interposer = i }

// SetOnStopped installs a callback fired when the process actually
// reaches the stopped state after SIGSTOP (pods use this to detect
// quiescence before checkpointing).
func (p *Process) SetOnStopped(fn func()) { p.onStopped = fn }

// SetOnExit installs a callback fired when the process exits.
func (p *Process) SetOnExit(fn func(code int)) { p.onExit = fn }

// RestoreSignals refills the pending-signal queue (restore path).
func (p *Process) RestoreSignals(sigs []Signal) {
	p.signals = append(p.signals, sigs...)
}

// RestoreCPUTime seeds the accumulated CPU time (restore path), keeping
// accounting continuous across checkpoint-restart.
func (p *Process) RestoreCPUTime(d sim.Duration) { p.cpuTime = d }

// PendingSignals returns queued (not yet consumed) signals.
func (p *Process) PendingSignals() []Signal {
	out := make([]Signal, len(p.signals))
	copy(out, p.signals)
	return out
}

// deliverSignal applies kernel-handled signals and queues the rest.
func (p *Process) deliverSignal(sig Signal) {
	switch sig {
	case SIGKILL:
		if p.state == StateRunning {
			p.killed = true // takes effect when the step's time elapses
			return
		}
		p.kernel.exitProcess(p, 137)
	case SIGSTOP:
		switch p.state {
		case StateRunning:
			p.stopRequested = true
		case StateReady, StateBlocked, StateSleeping:
			if p.sleepEv != nil {
				p.kernel.engine.Cancel(p.sleepEv)
				p.sleepEv = nil
			}
			p.state = StateStopped
			p.resumeWait = StepResult{Wait: WaitNone}
			if p.onStopped != nil {
				p.onStopped()
			}
		}
	case SIGCONT:
		if p.state == StateStopped {
			// Resume with a retry: programs tolerate spurious wakeups,
			// so we simply make the process runnable again.
			p.state = StateReady
			p.kernel.enqueue(p)
		}
	case SIGTERM:
		// Default disposition: terminate (no user handlers in the
		// simulation; programs that want graceful shutdown poll
		// TakeSignal for SIGUSR1/2 instead).
		p.deliverSignal(SIGKILL)
	default:
		p.signals = append(p.signals, sig)
		// A queued signal wakes a blocked process so it can notice.
		if p.state == StateBlocked || p.state == StateSleeping {
			p.kernel.wake(p)
		}
	}
}

// Stopped reports whether the process is currently stopped.
func (p *Process) Stopped() bool { return p.state == StateStopped }

// hasZombieChild reports whether an exited child awaits reaping.
func (p *Process) hasZombieChild() bool { return len(p.zombies) > 0 }

// ProcContext is the syscall interface handed to Program.Step. It is
// owned by the kernel; programs must not retain it across steps.
type ProcContext struct {
	proc     *Process
	syscalls int
}

func (c *ProcContext) reset() {
	c.syscalls = 0
}

func (c *ProcContext) charge() { c.syscalls++ }

// Now returns the current virtual time (a vDSO-style cheap read; not
// charged as a syscall).
func (c *ProcContext) Now() sim.Time { return c.proc.kernel.engine.Now() }

// PID returns the calling process's pid — virtualized by Zap when the
// process runs in a pod.
func (c *ProcContext) PID() int {
	c.charge()
	if ip := c.proc.interposer; ip != nil {
		return ip.VirtualPID(c.proc.pid)
	}
	return c.proc.pid
}

// Mem returns the process's address space. Access is direct (user-mode
// loads and stores are not syscalls).
func (c *ProcContext) Mem() *mem.AddressSpace { return c.proc.mem }

// TakeSignal dequeues one pending (user) signal.
func (c *ProcContext) TakeSignal() (Signal, bool) {
	c.charge()
	if len(c.proc.signals) == 0 {
		return 0, false
	}
	s := c.proc.signals[0]
	c.proc.signals = c.proc.signals[1:]
	return s, true
}

// Kill sends a signal to another process on this node. For pod processes
// the pid argument is a virtual pid, translated by the interposition
// layer; signalling outside the pod is refused (pod isolation).
func (c *ProcContext) Kill(pid int, sig Signal) error {
	c.charge()
	if ip := c.proc.interposer; ip != nil {
		real, ok := ip.TranslatePID(pid)
		if !ok {
			return fmt.Errorf("%w: pid %d", ErrNoProcess, pid)
		}
		pid = real
	}
	return c.proc.kernel.Signal(pid, sig)
}

// Spawn creates a child process running prog. Open descriptors listed in
// inherit are duplicated into the child (pipe ends, sockets), mirroring
// fork+exec descriptor inheritance; the returned slice gives the child's
// fd numbers in order. Pipe ends wake both holders; an inherited socket
// hands its wakeups to the child (the usual server-to-worker pattern).
func (c *ProcContext) Spawn(name string, prog Program, inherit ...int) (pid int, childFDs []int, err error) {
	c.charge()
	child := c.proc.kernel.Spawn(name, prog, c.proc.pid)
	if ip := c.proc.interposer; ip != nil {
		ip.ChildSpawned(child) // the pod adopts the child and interposes it
	}
	for _, fdn := range inherit {
		fd, ok := c.proc.fds[fdn]
		if !ok {
			return 0, nil, fmt.Errorf("%w: %d", ErrBadFD, fdn)
		}
		nfd := child.nextFD
		child.nextFD++
		child.fds[nfd] = &FD{file: fd.file, kind: fd.kind, refs: fd.refs}
		*fd.refs++
		switch v := fd.file.(type) {
		case *pipeReadFile:
			v.p.notifyReaders = append(v.p.notifyReaders, child.fdNotify(nfd))
		case *pipeWriteFile:
			v.p.notifyWriters = append(v.p.notifyWriters, child.fdNotify(nfd))
		case *connFile:
			v.c.SetNotify(child.fdNotify(nfd))
		case *listenerFile:
			v.l.SetNotify(child.fdNotify(nfd))
		case *udpFile:
			v.u.SetNotify(child.fdNotify(nfd))
		}
		childFDs = append(childFDs, nfd)
	}
	return child.pid, childFDs, nil
}

// WaitChild reaps one exited child, or returns ErrWouldBlock.
func (c *ProcContext) WaitChild() (ChildExit, error) {
	c.charge()
	if len(c.proc.zombies) == 0 {
		return ChildExit{}, ErrWouldBlock
	}
	z := c.proc.zombies[0]
	c.proc.zombies = c.proc.zombies[1:]
	return z, nil
}

// --- Socket syscalls -------------------------------------------------

func (c *ProcContext) stack() (*tcpip.Stack, error) {
	if c.proc.kernel.stack == nil {
		return nil, tcpip.ErrNoRoute
	}
	return c.proc.kernel.stack, nil
}

// Listen creates a listening TCP socket. The bind address is interposed
// for pod processes so it always lands on the pod's VIF (§4.2).
func (c *ProcContext) Listen(local tcpip.AddrPort, backlog int) (int, error) {
	c.charge()
	st, err := c.stack()
	if err != nil {
		return -1, err
	}
	if ip := c.proc.interposer; ip != nil {
		local = ip.RewriteBind(local)
	}
	l, err := st.ListenTCP(local, backlog)
	if err != nil {
		return -1, err
	}
	fd := c.proc.installFD(&listenerFile{l: l}, FDListener)
	l.SetNotify(c.proc.fdNotify(fd))
	return fd, nil
}

// Accept takes an established connection from a listening socket.
func (c *ProcContext) Accept(fd int) (int, error) {
	c.charge()
	f, err := c.proc.lookupFD(fd, FDListener)
	if err != nil {
		return -1, err
	}
	l := f.file.(*listenerFile).l
	conn, err := l.Accept()
	if err != nil {
		return -1, err
	}
	nfd := c.proc.installFD(&connFile{c: conn}, FDConn)
	conn.SetNotify(c.proc.fdNotify(nfd))
	return nfd, nil
}

// Connect starts an active TCP open. The implicit local bind is
// interposed for pod processes. The returned fd becomes writable when the
// connection establishes; ConnState/ConnErr report progress.
func (c *ProcContext) Connect(remote tcpip.AddrPort) (int, error) {
	c.charge()
	st, err := c.stack()
	if err != nil {
		return -1, err
	}
	local := tcpip.AddrPort{}
	if ip := c.proc.interposer; ip != nil {
		local.Addr = ip.RewriteConnectLocal()
	}
	conn, err := st.DialTCP(local, remote)
	if err != nil {
		return -1, err
	}
	fd := c.proc.installFD(&connFile{c: conn}, FDConn)
	conn.SetNotify(c.proc.fdNotify(fd))
	return fd, nil
}

// ConnEstablished reports whether the connection behind fd has completed
// its handshake.
func (c *ProcContext) ConnEstablished(fd int) (bool, error) {
	c.charge()
	f, err := c.proc.lookupFD(fd, FDConn)
	if err != nil {
		return false, err
	}
	conn := f.file.(*connFile).c
	if conn.Err() != nil {
		return false, conn.Err()
	}
	return conn.Established(), nil
}

// Send writes bytes to a connection or pipe.
func (c *ProcContext) Send(fd int, b []byte) (int, error) {
	c.charge()
	f, ok := c.proc.fds[fd]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return f.file.write(b)
}

// Recv reads bytes from a connection or pipe. peek leaves the data in
// the buffer (MSG_PEEK).
func (c *ProcContext) Recv(fd int, b []byte, peek bool) (int, error) {
	c.charge()
	f, ok := c.proc.fds[fd]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return f.file.read(b, peek)
}

// CloseFD closes a descriptor.
func (c *ProcContext) CloseFD(fd int) error {
	c.charge()
	return c.proc.closeFD(fd)
}

// SetNoDelay sets TCP_NODELAY on a connection fd.
func (c *ProcContext) SetNoDelay(fd int, v bool) error {
	c.charge()
	f, err := c.proc.lookupFD(fd, FDConn)
	if err != nil {
		return err
	}
	f.file.(*connFile).c.SetNoDelay(v)
	return nil
}

// SetCork sets TCP_CORK on a connection fd.
func (c *ProcContext) SetCork(fd int, v bool) error {
	c.charge()
	f, err := c.proc.lookupFD(fd, FDConn)
	if err != nil {
		return err
	}
	f.file.(*connFile).c.SetCork(v)
	return nil
}

// LocalAddr returns the local endpoint of a socket fd.
func (c *ProcContext) LocalAddr(fd int) (tcpip.AddrPort, error) {
	c.charge()
	if f, ok := c.proc.fds[fd]; ok {
		switch v := f.file.(type) {
		case *connFile:
			return v.c.LocalAddr(), nil
		case *listenerFile:
			return v.l.LocalAddr(), nil
		case *udpFile:
			return v.u.LocalAddr(), nil
		}
	}
	return tcpip.AddrPort{}, fmt.Errorf("%w: %d", ErrBadFD, fd)
}

// RemoteAddr returns the remote endpoint of a connection fd.
func (c *ProcContext) RemoteAddr(fd int) (tcpip.AddrPort, error) {
	c.charge()
	f, err := c.proc.lookupFD(fd, FDConn)
	if err != nil {
		return tcpip.AddrPort{}, err
	}
	return f.file.(*connFile).c.RemoteAddr(), nil
}

// OpenUDP creates a UDP socket; the bind address is interposed for pods.
func (c *ProcContext) OpenUDP(local tcpip.AddrPort, broadcast bool) (int, error) {
	c.charge()
	st, err := c.stack()
	if err != nil {
		return -1, err
	}
	if ip := c.proc.interposer; ip != nil {
		local = ip.RewriteBind(local)
	}
	u, err := st.OpenUDP(local)
	if err != nil {
		return -1, err
	}
	u.Broadcast = broadcast
	fd := c.proc.installFD(&udpFile{u: u}, FDUDP)
	u.SetNotify(c.proc.fdNotify(fd))
	return fd, nil
}

// SendTo transmits a datagram on a UDP fd.
func (c *ProcContext) SendTo(fd int, remote tcpip.AddrPort, data []byte) error {
	c.charge()
	f, err := c.proc.lookupFD(fd, FDUDP)
	if err != nil {
		return err
	}
	return f.file.(*udpFile).u.SendTo(remote, data)
}

// RecvFrom receives a datagram from a UDP fd.
func (c *ProcContext) RecvFrom(fd int) (tcpip.UDPMessage, error) {
	c.charge()
	f, err := c.proc.lookupFD(fd, FDUDP)
	if err != nil {
		return tcpip.UDPMessage{}, err
	}
	return f.file.(*udpFile).u.RecvFrom()
}

// HWAddr is the SIOCGIFHWADDR ioctl: the hardware address of a named
// interface. Zap interposes it to return the pod's fake MAC so DHCP
// leases survive migration (§4.2).
func (c *ProcContext) HWAddr(name string) (ether.MAC, error) {
	c.charge()
	st, err := c.stack()
	if err != nil {
		return ether.MAC{}, err
	}
	iface := st.InterfaceByName(name)
	if iface == nil {
		// Pod processes see only their VIF; fall back to the first
		// visible interface.
		ifaces := st.Interfaces()
		if len(ifaces) == 0 {
			return ether.MAC{}, tcpip.ErrUnknownIface
		}
		iface = ifaces[0]
	}
	real := iface.MAC
	if ip := c.proc.interposer; ip != nil {
		return ip.HWAddr(name, real), nil
	}
	return real, nil
}

// --- Pipes ------------------------------------------------------------

// Pipe creates a unidirectional pipe, returning (read fd, write fd).
func (c *ProcContext) Pipe() (int, int, error) {
	c.charge()
	p := newPipe(c.proc.kernel)
	rfd := c.proc.installFD(&pipeReadFile{p: p}, FDPipeRead)
	wfd := c.proc.installFD(&pipeWriteFile{p: p}, FDPipeWrite)
	p.notifyReaders = append(p.notifyReaders, c.proc.fdNotify(rfd))
	p.notifyWriters = append(p.notifyWriters, c.proc.fdNotify(wfd))
	return rfd, wfd, nil
}

// --- System-V IPC ----------------------------------------------------

// ShmGet creates (or finds, by key) a shared-memory segment.
func (c *ProcContext) ShmGet(key, size int) (int, error) {
	c.charge()
	return c.proc.kernel.shmGet(key, size)
}

// ShmWrite stores bytes into a shared segment.
func (c *ProcContext) ShmWrite(id int, off int, b []byte) error {
	c.charge()
	s, ok := c.proc.kernel.shms[id]
	if !ok {
		return fmt.Errorf("%w: shm %d", ErrNoIPC, id)
	}
	return s.Write(off, b)
}

// ShmRead loads bytes from a shared segment.
func (c *ProcContext) ShmRead(id int, off int, b []byte) error {
	c.charge()
	s, ok := c.proc.kernel.shms[id]
	if !ok {
		return fmt.Errorf("%w: shm %d", ErrNoIPC, id)
	}
	return s.Read(off, b)
}

// SemGet creates (or finds, by key) a semaphore with initial value val.
func (c *ProcContext) SemGet(key, val int) (int, error) {
	c.charge()
	return c.proc.kernel.semGet(key, val)
}

// SemOp adjusts a semaphore by delta. A decrement that would go negative
// returns ErrWouldBlock; the program should return BlockOnSem and retry.
func (c *ProcContext) SemOp(id, delta int) error {
	c.charge()
	return c.proc.kernel.semOp(id, delta)
}
