package dhcp

import (
	"testing"

	"cruz"
	"cruz/internal/ckpt"
	"cruz/internal/ether"
	"cruz/internal/tcpip"
)

func init() {
	cruz.RegisterProgram(&Server{})
	cruz.RegisterProgram(&Client{})
}

func pool() []tcpip.Addr {
	return []tcpip.Addr{
		{10, 0, 2, 1},
		{10, 0, 2, 2},
		{10, 0, 2, 3},
	}
}

// deploy starts a DHCP server as a native process on the service node
// and a client inside a pod on node 0.
func deploy(t *testing.T, fakeMAC ether.MAC) (*cruz.Cluster, *Server, *Client) {
	t.Helper()
	cl, err := cruz.New(cruz.Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(pool())
	cl.Service.Kernel.Spawn("dhcpd", server, 0)

	pod, err := cl.NewPod(0, "roamer")
	if err != nil {
		t.Fatal(err)
	}
	// Override the fake MAC if requested (NewPod assigns a real one).
	_ = fakeMAC
	client := NewClient(200 * cruz.Millisecond)
	if _, err := pod.Spawn("dhclient", client); err != nil {
		t.Fatal(err)
	}
	return cl, server, client
}

func TestLeaseAcquisition(t *testing.T) {
	cl, server, client := deploy(t, ether.MAC{})
	if !cl.RunUntil(func() bool { return client.Renewals > 0 }, 5*cruz.Second) {
		t.Fatalf("no lease acquired; fault=%q serverFault=%q", client.Fault, server.Fault)
	}
	if client.Lease != pool()[0] {
		t.Fatalf("lease = %v, want first pool address", client.Lease)
	}
	if server.Grants == 0 {
		t.Fatal("server granted nothing")
	}
}

func TestRenewalKeepsAddress(t *testing.T) {
	cl, _, client := deploy(t, ether.MAC{})
	if !cl.RunUntil(func() bool { return client.Renewals >= 3 }, 5*cruz.Second) {
		t.Fatalf("renewals = %d; fault=%q", client.Renewals, client.Fault)
	}
	if client.LeaseChanged {
		t.Fatal("lease changed across renewals")
	}
}

func TestDistinctClientsDistinctLeases(t *testing.T) {
	cl, server, c1 := deploy(t, ether.MAC{})
	pod2, err := cl.NewPod(1, "roamer2")
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewClient(200 * cruz.Millisecond)
	pod2.Spawn("dhclient", c2)
	ok := cl.RunUntil(func() bool { return c1.Renewals > 0 && c2.Renewals > 0 }, 5*cruz.Second)
	if !ok {
		t.Fatalf("leases: %v %v (faults %q %q, server %q)", c1.Lease, c2.Lease, c1.Fault, c2.Fault, server.Fault)
	}
	if c1.Lease == c2.Lease {
		t.Fatalf("both clients got %v", c1.Lease)
	}
}

func TestLeaseSurvivesMigration(t *testing.T) {
	// The §4.2 scenario: the pod migrates to a machine whose physical
	// MAC differs, but the interposed SIOCGIFHWADDR keeps reporting the
	// pod's fake MAC, so the DHCP server renews the same address.
	cl, server, client := deploy(t, ether.MAC{})
	if !cl.RunUntil(func() bool { return client.Renewals > 0 }, 5*cruz.Second) {
		t.Fatalf("no initial lease; fault=%q", client.Fault)
	}
	leaseBefore := client.Lease
	macBefore := client.MAC

	// Checkpoint the pod and migrate it to node 2.
	pod := cl.Pod("roamer")
	f := pod.Kernel().Stack().Filter()
	rule := f.AddDropAddr(pod.IP())
	stopped := false
	pod.Stop(func() { stopped = true })
	if !cl.RunUntil(func() bool { return stopped }, cruz.Second) {
		t.Fatal("pod did not stop")
	}
	img, err := ckpt.Capture(pod, 1, ckpt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pod.Destroy()
	f.RemoveRule(rule)
	pod2, err := ckpt.Restore(cl.Nodes[2].Kernel, img)
	if err != nil {
		t.Fatal(err)
	}
	pod2.Resume()

	client2 := pod2.Process(1).Program().(*Client)
	renewalsAt := client2.Renewals
	if !cl.RunUntil(func() bool { return client2.Renewals > renewalsAt }, 5*cruz.Second) {
		t.Fatalf("no renewal after migration; fault=%q serverFault=%q", client2.Fault, server.Fault)
	}
	if client2.LeaseChanged || client2.Lease != leaseBefore {
		t.Fatalf("lease changed across migration: %v -> %v", leaseBefore, client2.Lease)
	}
	if client2.MAC != macBefore {
		t.Fatalf("client-visible MAC changed across migration: %v -> %v", macBefore, client2.MAC)
	}
	// The server still has exactly one lease for this client.
	if len(server.Leases) != 1 {
		t.Fatalf("server lease table: %v", server.Leases)
	}
}
