// Package dhcp implements the simplified DHCP exchange of paper §4.2: a
// server leasing addresses keyed by client MAC, and an in-pod client
// whose hardware address comes from the interposed SIOCGIFHWADDR — the
// pod's stable "fake" MAC. Because that MAC survives migration, lease
// renewal from the new machine returns the same address and active
// connections survive.
//
// Messages are gob-encoded over UDP (ports 67/68), with the DISCOVER /
// OFFER / REQUEST / ACK handshake and RENEW via directed REQUEST.
package dhcp

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"cruz/internal/ether"
	"cruz/internal/kernel"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
)

// Standard DHCP ports.
const (
	ServerPort uint16 = 67
	ClientPort uint16 = 68
)

// MsgType is the DHCP message type.
type MsgType int

// DHCP message types (the subset the paper's scenario needs).
const (
	Discover MsgType = iota + 1
	Offer
	Request
	Ack
	Nak
)

// Message is the DHCP payload. ClientMAC is carried in the payload, not
// the frame header — which is exactly why the paper must interpose
// SIOCGIFHWADDR: "the DHCP server uses a MAC address specified in the
// payload of the DHCP request to identify the client".
type Message struct {
	Type      MsgType
	ClientMAC ether.MAC
	YourIP    tcpip.Addr
	LeaseSecs int
	XID       uint32
}

func encode(m *Message) []byte {
	var buf bytes.Buffer
	gob.NewEncoder(&buf).Encode(m)
	return buf.Bytes()
}

func decode(b []byte) (*Message, error) {
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return nil, fmt.Errorf("dhcp: decode: %w", err)
	}
	return &m, nil
}

// Server is the DHCP daemon, run as a native (non-pod) process.
type Server struct {
	// Pool is the assignable address list.
	Pool []tcpip.Addr
	// LeaseSecs is the advertised lease duration.
	LeaseSecs int

	Phase  int
	FD     int
	Leases map[ether.MAC]tcpip.Addr
	// Grants counts ACKs issued (renewals included).
	Grants uint64
	Fault  string
}

// NewServer serves the given address pool.
func NewServer(pool []tcpip.Addr) *Server {
	return &Server{Pool: pool, LeaseSecs: 60, Leases: make(map[ether.MAC]tcpip.Addr)}
}

// leaseFor returns (allocating if needed) the client's address. The MAC
// keying is what makes leases stable across migration.
func (s *Server) leaseFor(mac ether.MAC) (tcpip.Addr, bool) {
	if ip, ok := s.Leases[mac]; ok {
		return ip, true
	}
	used := make(map[tcpip.Addr]bool, len(s.Leases))
	for _, ip := range s.Leases {
		used[ip] = true
	}
	for _, ip := range s.Pool {
		if !used[ip] {
			s.Leases[mac] = ip
			return ip, true
		}
	}
	return tcpip.Addr{}, false
}

// Step implements kernel.Program.
func (s *Server) Step(ctx *kernel.ProcContext) kernel.StepResult {
	if s.Phase == 0 {
		fd, err := ctx.OpenUDP(tcpip.AddrPort{Port: ServerPort}, true)
		if err != nil {
			s.Fault = "open: " + err.Error()
			return kernel.Exit(0, 2)
		}
		s.FD = fd
		s.Phase = 1
		return kernel.Continue(0)
	}
	msg, err := ctx.RecvFrom(s.FD)
	if err == kernel.ErrWouldBlock {
		return kernel.BlockOnRead(0, s.FD)
	}
	if err != nil {
		s.Fault = "recv: " + err.Error()
		return kernel.Exit(0, 2)
	}
	m, derr := decode(msg.Data)
	if derr != nil {
		return kernel.Continue(sim.Microsecond)
	}
	reply := &Message{ClientMAC: m.ClientMAC, XID: m.XID, LeaseSecs: s.LeaseSecs}
	switch m.Type {
	case Discover:
		ip, ok := s.leaseFor(m.ClientMAC)
		if !ok {
			return kernel.Continue(sim.Microsecond) // pool exhausted: stay silent
		}
		reply.Type = Offer
		reply.YourIP = ip
	case Request:
		ip, ok := s.leaseFor(m.ClientMAC)
		if !ok || (m.YourIP != tcpip.Addr{} && m.YourIP != ip) {
			reply.Type = Nak
		} else {
			reply.Type = Ack
			reply.YourIP = ip
			s.Grants++
		}
	default:
		return kernel.Continue(sim.Microsecond)
	}
	// Answer to the client's source endpoint.
	if err := ctx.SendTo(s.FD, msg.From, encode(reply)); err != nil {
		s.Fault = "send: " + err.Error()
		return kernel.Exit(0, 2)
	}
	return kernel.Continue(5 * sim.Microsecond)
}

// Client is the in-pod DHCP client. It discovers a lease, then renews it
// every RenewEvery. Its identity comes from ctx.HWAddr — the interposed
// fake MAC inside a pod.
type Client struct {
	ServerAddr tcpip.AddrPort // directed renewals (zero = broadcast only)
	RenewEvery sim.Duration

	Phase    int
	FD       int
	MAC      ether.MAC
	XID      uint32
	Lease    tcpip.Addr
	Renewals uint64
	// LeaseChanged records a renewal that returned a different address —
	// exactly the failure the fake-MAC interposition prevents.
	LeaseChanged bool
	Fault        string
}

// NewClient builds a client that renews every renewEvery.
func NewClient(renewEvery sim.Duration) *Client {
	if renewEvery <= 0 {
		renewEvery = 10 * sim.Second
	}
	return &Client{RenewEvery: renewEvery}
}

func (c *Client) fail(m string) kernel.StepResult {
	c.Fault = m
	return kernel.Exit(0, 2)
}

// Step implements kernel.Program.
func (c *Client) Step(ctx *kernel.ProcContext) kernel.StepResult {
	switch c.Phase {
	case 0: // open socket, learn (interposed) MAC, broadcast DISCOVER
		fd, err := ctx.OpenUDP(tcpip.AddrPort{Port: ClientPort}, true)
		if err != nil {
			return c.fail("open: " + err.Error())
		}
		c.FD = fd
		mac, err := ctx.HWAddr("eth0")
		if err != nil {
			return c.fail("hwaddr: " + err.Error())
		}
		c.MAC = mac
		c.XID++
		msg := &Message{Type: Discover, ClientMAC: c.MAC, XID: c.XID}
		if err := ctx.SendTo(c.FD, tcpip.AddrPort{Addr: tcpip.AddrBroadcast, Port: ServerPort}, encode(msg)); err != nil {
			return c.fail("discover: " + err.Error())
		}
		c.Phase = 1
		return kernel.Continue(0)
	case 1: // await OFFER
		m, from, res := c.recvTyped(ctx, Offer)
		if res != nil {
			return *res
		}
		c.ServerAddr = from
		req := &Message{Type: Request, ClientMAC: c.MAC, YourIP: m.YourIP, XID: c.XID}
		if err := ctx.SendTo(c.FD, from, encode(req)); err != nil {
			return c.fail("request: " + err.Error())
		}
		c.Phase = 2
		return kernel.Continue(0)
	case 2: // await ACK
		m, _, res := c.recvTyped(ctx, Ack)
		if res != nil {
			return *res
		}
		if c.Lease != (tcpip.Addr{}) && m.YourIP != c.Lease {
			c.LeaseChanged = true
		}
		c.Lease = m.YourIP
		c.Renewals++
		c.Phase = 3
		return kernel.Continue(0)
	case 3: // hold the lease, then renew
		c.Phase = 4
		return kernel.Sleep(0, c.RenewEvery)
	default: // renew: directed REQUEST with our (fake) MAC
		mac, err := ctx.HWAddr("eth0")
		if err != nil {
			return c.fail("hwaddr: " + err.Error())
		}
		c.MAC = mac
		c.XID++
		req := &Message{Type: Request, ClientMAC: c.MAC, YourIP: c.Lease, XID: c.XID}
		if err := ctx.SendTo(c.FD, c.ServerAddr, encode(req)); err != nil {
			return c.fail("renew: " + err.Error())
		}
		c.Phase = 2
		return kernel.Continue(0)
	}
}

// recvTyped reads one message of the wanted type, handling blocking and
// NAKs. A non-nil StepResult means "return this from Step".
func (c *Client) recvTyped(ctx *kernel.ProcContext, want MsgType) (*Message, tcpip.AddrPort, *kernel.StepResult) {
	msg, err := ctx.RecvFrom(c.FD)
	if err == kernel.ErrWouldBlock {
		r := kernel.BlockOnRead(0, c.FD)
		return nil, tcpip.AddrPort{}, &r
	}
	if err != nil {
		r := c.fail("recv: " + err.Error())
		return nil, tcpip.AddrPort{}, &r
	}
	m, derr := decode(msg.Data)
	if derr != nil || m.XID != c.XID {
		r := kernel.Continue(sim.Microsecond) // stale datagram: ignore
		return nil, tcpip.AddrPort{}, &r
	}
	if m.Type == Nak {
		r := c.fail("lease NAKed")
		return nil, tcpip.AddrPort{}, &r
	}
	if m.Type != want {
		r := kernel.Continue(sim.Microsecond)
		return nil, tcpip.AddrPort{}, &r
	}
	return m, msg.From, nil
}
