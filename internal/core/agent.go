package core

import (
	"errors"
	"fmt"

	"cruz/internal/ckpt"
	"cruz/internal/ctl"
	"cruz/internal/kernel"
	"cruz/internal/mem"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/trace"
	"cruz/internal/zap"
)

// DefaultControlPort is the agents' control port.
const DefaultControlPort = 7077

// AgentParams models the agent daemon's local costs.
type AgentParams struct {
	// Port is the TCP control port the agent listens on.
	Port uint16
	// MsgCost is the CPU cost of handling one control message
	// (decode, dispatch, encode of the reply).
	MsgCost sim.Duration
	// FilterCost is the cost of installing or removing the packet-filter
	// rule that disables the pod's communication.
	FilterCost sim.Duration
	// CaptureCost is the in-kernel cost of walking process and socket
	// structures during the state copy (the short window the paper
	// holds the network-stack locks for).
	CaptureCost sim.Duration
	// CaptureBPS scales the capture window with the bytes copied (the
	// in-kernel memcpy rate). Zero leaves capture at the flat CaptureCost.
	CaptureBPS int64
	// EncodeBPS is the CPU rate at which image bytes are serialized into
	// the write stream. Zero makes encoding free (pre-pipeline behavior).
	EncodeBPS int64
	// HashBPS is the page-content hashing rate charged for pages whose
	// cached hash was stale at capture (Dedup checkpoints only).
	HashBPS int64
	// DedupPerChunk is the chunk-table lookup/refcount cost per captured
	// page (Dedup checkpoints only).
	DedupPerChunk sim.Duration
	// SegmentBytes is the pipelined save's segment size: with the
	// Pipeline option, segment k is encoded on the CPU while segment k-1
	// is on the disk. Zero or no Pipeline = one segment (serial
	// encode-then-write).
	SegmentBytes int64
	// ReplTimeout bounds one replication or fetch exchange; an offer is
	// retried once before the operation fails. Zero disables.
	ReplTimeout sim.Duration
	// BackgroundBPS rate-limits the node's ctl.TierBackground traffic
	// (durability replication and erasure-coded shard distribution)
	// through a shared token bucket, so it never saturates a link a
	// pre-copy stream or foreground pod traffic is using. Zero disables
	// pacing (pre-EC behavior).
	BackgroundBPS int64
}

// DefaultAgentParams returns costs calibrated for the paper's testbed.
func DefaultAgentParams() AgentParams {
	return AgentParams{
		Port:          DefaultControlPort,
		MsgCost:       60 * sim.Microsecond,
		FilterCost:    5 * sim.Microsecond,
		CaptureCost:   150 * sim.Microsecond,
		CaptureBPS:    4 << 30, // in-kernel copy, memory-bound
		EncodeBPS:     1 << 30, // serialization touches every byte once
		HashBPS:       2 << 30, // FNV-style streaming hash
		DedupPerChunk: 150 * sim.Nanosecond,
		SegmentBytes:  8 << 20,
		ReplTimeout:   30 * sim.Second,
	}
}

// bytesCost returns the CPU time to process n bytes at bps (0 = free).
func bytesCost(n int64, bps int64) sim.Duration {
	if bps <= 0 || n <= 0 {
		return 0
	}
	return sim.Duration(n * int64(sim.Second) / bps)
}

// Errors surfaced by agents.
var (
	ErrUnknownPod = errors.New("core: agent does not manage that pod")
	ErrBusy       = errors.New("core: operation already in progress for pod")
)

// Agent is the per-node checkpoint daemon. It runs outside any pod (so
// disabling a pod's communication never cuts the coordinator channel; see
// the paper's footnote 4) and executes the local steps of Fig. 2, plus
// the replication and fetch exchanges of the recovery extension.
type Agent struct {
	kern   *kernel.Kernel
	store  *ckpt.Store
	params AgentParams
	cpu    ctl.Serializer
	tr     *trace.Tracer

	pods     map[string]*zap.Pod
	table    *ctl.Table
	listener *tcpip.TCPListener

	// ec, when enabled, stripes committed deduplicated checkpoints M+R
	// across the first M+R ring peers instead of fully replicating them.
	ec ckpt.ECParams
	// pacer is the node's shared token bucket for TierBackground frames
	// (nil = unpaced).
	pacer *ctl.Pacer

	// peers is the replication ring: where committed checkpoints stream,
	// in preference order. peerConns are lazily dialed agent-to-agent
	// control connections.
	peers     []tcpip.AddrPort
	peerConns map[tcpip.AddrPort]*ctlConn
	// coordConn is the connection the latest coordinated op arrived on —
	// where replication placement reports go.
	coordConn msgSink

	// Stats counts agent activity.
	Stats AgentStats
}

// AgentStats counts agent activity.
type AgentStats struct {
	Checkpoints   uint64
	Restores      uint64
	Aborts        uint64
	Replications  uint64
	ReplBytes     int64
	ReplFailures  uint64
	Fetches       uint64
	MigrationsOut uint64
	MigrationsIn  uint64

	// Erasure-coded durability: completed holder exchanges, the shard
	// bytes they moved, failed exchanges, and — on recovery targets —
	// reconstructions run and chunks decoded from parity.
	ECDistributions     uint64
	ECShardBytes        int64
	ECFailures          uint64
	Reconstructs        uint64
	ReconstructedChunks uint64
}

// agentOp tracks one in-progress checkpoint or restart for a pod. The
// lifecycle (busy key, timeout, idempotent teardown) lives in the
// embedded ctl.Op; only the domain state is here.
type agentOp struct {
	*ctl.Op
	optimized bool
	cow       bool
	precopy   bool
	stoppedAt sim.Time
	conn      msgSink
	replicas  int
	captured  bool
	saveDone  bool
	contRecvd bool
	resumed   bool
	filterID  int

	// Pre-copy bookkeeping. The live rounds are abortable background
	// work: if the epoch fails mid-round, rounds' snapshots release,
	// redirty re-marks every page whose only saved copy lived in the
	// discarded epoch, and roundSeqs are struck from the store — as if
	// the epoch never happened.
	rounds    []*ckpt.LiveCapture
	redirty   []func()
	roundSeqs []int

	// Migration bookkeeping (migrate-out ops): where the rounds stream,
	// how many pages each round carried (residual last), and the bytes
	// the delta transfers actually moved. baseQuery holds the deferred
	// <migrate> request while the round-0 base negotiation is in flight.
	migrateTo  tcpip.AddrPort
	roundPages []int
	streamed   int64
	stream     *ctl.Op // in-flight round transfer, cancelled on abort
	baseQuery  *wireMsg

	// Trace spans for the op and its lifecycle phases. Zero values are
	// inert, so paths that never begin a phase may End it freely.
	span      trace.Span
	phRound   trace.Span
	phQuiesce trace.Span
	phDrain   trace.Span
	phCapture trace.Span
	phHash    trace.Span
	phDedup   trace.Span
	phWrite   trace.Span
	phCommit  trace.Span
}

// endSpans closes everything still open on the op (abort/failure paths).
func (op *agentOp) endSpans(args ...trace.Arg) {
	op.phRound.End(args...)
	op.phQuiesce.End(args...)
	op.phDrain.End(args...)
	op.phCapture.End(args...)
	op.phHash.End(args...)
	op.phDedup.End(args...)
	op.phWrite.End(args...)
	op.phCommit.End(args...)
	op.span.End(args...)
}

// NewAgent starts an agent on the node, listening on its control port.
// Images are written to and read from store (the node's local disk in the
// cluster-file-system arrangement the paper assumes).
func NewAgent(kern *kernel.Kernel, store *ckpt.Store, params AgentParams) (*Agent, error) {
	a := &Agent{
		kern:      kern,
		store:     store,
		params:    params,
		cpu:       ctl.Serializer{Engine: kern.Engine()},
		tr:        trace.FromEngine(kern.Engine()),
		pods:      make(map[string]*zap.Pod),
		table:     ctl.NewTable(kern.Engine()),
		peerConns: make(map[tcpip.AddrPort]*ctlConn),
	}
	addr, ok := kern.Stack().FirstAddr()
	if !ok {
		return nil, tcpip.ErrNoRoute
	}
	if params.BackgroundBPS > 0 {
		a.pacer = ctl.NewPacer(kern.Engine(), params.BackgroundBPS, 0)
	}
	l, err := kern.Stack().ListenTCP(tcpip.AddrPort{Addr: addr, Port: params.Port}, 16)
	if err != nil {
		return nil, fmt.Errorf("core: agent listen: %w", err)
	}
	a.listener = l
	l.SetNotify(a.acceptLoop)
	return a, nil
}

// Addr returns the agent's control endpoint.
func (a *Agent) Addr() tcpip.AddrPort { return a.listener.LocalAddr() }

// Store returns the agent's checkpoint store.
func (a *Agent) Store() *ckpt.Store { return a.store }

// Kernel returns the node the agent runs on.
func (a *Agent) Kernel() *kernel.Kernel { return a.kern }

// Manage registers a pod with the agent so coordinated operations can
// address it by name.
func (a *Agent) Manage(pod *zap.Pod) { a.pods[pod.Name()] = pod }

// Pod returns a managed pod by name, or nil.
func (a *Agent) Pod(name string) *zap.Pod { return a.pods[name] }

// SetPeers installs the replication ring: peers receive this agent's
// committed checkpoints, in order, when a checkpoint requests replicas.
func (a *Agent) SetPeers(peers []tcpip.AddrPort) { a.peers = peers }

// OpenOps returns the number of in-flight operations — the leak check
// recovery tests rely on.
func (a *Agent) OpenOps() int { return a.table.Len() }

// podOp returns the active checkpoint/restart op for a pod, or nil.
func (a *Agent) podOp(pod string) *agentOp {
	if o := a.table.Get(pod); o != nil {
		if op, ok := o.Data.(*agentOp); ok {
			return op
		}
	}
	return nil
}

// acceptLoop accepts coordinator and peer-agent connections.
func (a *Agent) acceptLoop() {
	for {
		tc, err := a.listener.Accept()
		if err != nil {
			return
		}
		cc := newCtlConn(tc, a.onMsg, nil)
		if a.pacer != nil {
			cc.SetPacer(a.pacer)
		}
	}
}

// onMsg dispatches a control message.
func (a *Agent) onMsg(c *ctlConn, m *wireMsg) {
	a.cpu.Do(a.params.MsgCost, func() {
		switch m.Type {
		case msgCheckpoint:
			a.startCheckpoint(c, m)
		case msgContinue:
			a.handleContinue(c, m)
		case msgRestart:
			a.startRestart(c, m)
		case msgAbort:
			a.handleAbort(m)
		case msgPing:
			c.send(&wireMsg{Type: msgPong, Seq: m.Seq, Load: a.liveLoad()})
		case msgReplOffer:
			a.handleReplOffer(c, m)
		case msgReplWant:
			a.handleReplWant(c, m)
		case msgReplData:
			a.handleReplData(c, m)
		case msgReplDone:
			a.handleReplDone(c, m)
		case msgFetch:
			a.handleFetch(c, m)
		case msgFetchPull:
			a.handleFetchPull(c, m)
		case msgECOffer:
			a.handleECOffer(c, m)
		case msgECWant:
			a.handleECWant(c, m)
		case msgECData:
			a.handleECData(c, m)
		case msgECDone:
			a.handleECDone(c, m)
		case msgECFetch:
			a.handleECFetch(c, m)
		case msgECPull:
			a.handleECPull(c, m)
		case msgECShards:
			a.handleECShards(c, m)
		case msgMigrate:
			a.startMigrateOut(c, m)
		case msgMigrateBase:
			a.handleMigrateBase(c, m)
		case msgMigrateBaseAck:
			a.handleMigrateBaseAck(m)
		case msgMigrateTarget:
			a.startMigrateIn(c, m)
		case msgMigrateRestore:
			a.handleMigrateRestore(m)
		case msgMigrateCommit:
			a.handleMigrateCommit(c, m)
		case msgGroupCheckpoint, msgGroupRestart:
			a.startGroupOp(c, m)
		case msgGroupContinue:
			a.handleGroupContinue(m)
		case msgGroupAbort:
			a.handleGroupAbort(m)
		case msgCommDisabled, msgDone, msgRestartDone, msgContinueDone, msgReplicated:
			// Protocol replies arriving at an agent are group members
			// reporting to their leader (this node) — aggregate them.
			a.relayMemberMsg(m)
		}
	})
}

// liveLoad counts live managed pods — the agent's placement load signal.
func (a *Agent) liveLoad() int {
	n := 0
	for _, p := range a.pods {
		if !p.Destroyed() {
			n++
		}
	}
	return n
}

// fail reports an operation failure for a pod, echoing the request's
// trace context so the error lands in the right span tree.
func (a *Agent) fail(c msgSink, t msgType, m *wireMsg, err error) {
	c.send(&wireMsg{Type: t, Seq: m.Seq, Pod: m.Pod, Err: err.Error(), ctx: m.ctx})
}

// beginPodOp registers a checkpoint/restart op for the pod with the
// shared rollback-on-failure hook: remove the filter, resume the pod,
// close spans. Every failure path (local error, coordinator abort,
// node-failure teardown) funnels through ctl.Op.Fail exactly once.
func (a *Agent) beginPodOp(kind string, m *wireMsg, c msgSink) (*agentOp, error) {
	o, err := a.table.Begin(kind, m.Pod, m.Seq)
	if err != nil {
		return nil, ErrBusy
	}
	op := &agentOp{Op: o, optimized: m.Optimized, cow: m.COW, conn: c, replicas: m.Replicas}
	o.Data = op
	name := m.Pod
	o.OnFail(func(_ *ctl.Op, err error) {
		a.Stats.Aborts++
		if op.filterID != 0 {
			a.kern.Stack().Filter().RemoveRule(op.filterID)
			op.filterID = 0
		}
		// A migration round transfer in flight when the op dies would
		// otherwise sit out its full replication timeout (the far node
		// may be dead and answer nothing).
		if op.stream != nil {
			s := op.stream
			op.stream = nil
			if s.Active() {
				s.Fail(err)
			}
		}
		// Discard the partial pre-copy epoch: release the rounds' COW
		// snapshots (writes stop faulting), re-mark the pages whose only
		// saved copy is being thrown away, and strike the uncommitted
		// round images from the store.
		for _, lc := range op.rounds {
			lc.Release()
		}
		for _, fn := range op.redirty {
			fn()
		}
		if len(op.roundSeqs) > 0 {
			a.store.Discard(name, op.roundSeqs...)
		}
		// Resolve the pod at failure time: a restart may have replaced it
		// since the op began.
		if p := a.pods[name]; p != nil && !p.Destroyed() && p.Stopped() {
			p.Resume()
		}
		op.endSpans(trace.Str("outcome", "aborted"))
	})
	return op, nil
}

// startCheckpoint runs the Agent steps of Fig. 2 (or Fig. 4 when
// optimized): disable communication, stop the pod, save its state, report
// done. With PrecopyRounds the stop is preceded by live pre-copy rounds
// that shrink the stopped work to the residual dirty set.
func (a *Agent) startCheckpoint(c msgSink, m *wireMsg) {
	pod, ok := a.pods[m.Pod]
	if !ok || pod.Destroyed() {
		a.fail(c, msgDone, m, ErrUnknownPod)
		return
	}
	op, err := a.beginPodOp("checkpoint", m, c)
	if err != nil {
		a.fail(c, msgDone, m, err)
		return
	}
	op.precopy = m.PrecopyRounds > 0
	a.coordConn = c
	a.Stats.Checkpoints++
	if a.tr.Enabled() {
		// Adopt the coordinator's op: the local span tree becomes a branch
		// of the distributed checkpoint.
		op.span = a.tr.BeginChild(m.ctx, a.kern.Name(), "core", "agent.checkpoint",
			trace.Str("pod", m.Pod), trace.Int("seq", int64(m.Seq)))
	}
	if op.precopy {
		a.runPrecopy(c, m, pod, op, 0, 0, 0)
		return
	}
	a.runStopAndCopy(c, m, pod, op, 0)
}

// runPrecopy drives one live pre-copy round (round-numbered from 0) and
// recurses, or hands off to the residual stop-and-copy once the policy
// says another round is not worth taking. The pod runs — and keeps
// communicating — throughout; each round captures a COW snapshot of the
// pages dirtied since the previous round and streams it to the store as
// an incremental image chained on baseSeq (0 = this round is the full
// base of a fresh chain).
func (a *Agent) runPrecopy(c msgSink, m *wireMsg, pod *zap.Pod, op *agentOp, round, prevPages, baseSeq int) {
	if op.Aborted() {
		return
	}
	if round == 0 && m.Incremental {
		// Chain round 0 onto the newest stored checkpoint, if any: the
		// dirty bits are relative to the last capture, which is exactly
		// what the store last registered.
		if s, ok := a.store.LatestSeq(m.Pod); ok {
			baseSeq = s
		}
	}
	full := baseSeq == 0
	candidate := pod.DirtyPages()
	if full {
		candidate = pod.ResidentPages()
	}
	converged := round >= m.PrecopyRounds ||
		(m.PrecopyThresholdPages > 0 && candidate <= m.PrecopyThresholdPages) ||
		(m.PrecopyMinGain > 0 && round > 0 &&
			float64(candidate) > (1-m.PrecopyMinGain)*float64(prevPages))
	if converged {
		a.runStopAndCopy(c, m, pod, op, baseSeq)
		return
	}

	// Rounds occupy the sequence block below the residual's m.Seq.
	seqR := m.Seq - m.PrecopyRounds + round
	if a.tr.Enabled() {
		op.phRound = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "precopy-round",
			trace.Str("pod", m.Pod), trace.Int("round", int64(round)),
			trace.Int("pages", int64(candidate)))
	}
	lc, err := ckpt.CaptureLive(pod, seqR, ckpt.Options{Incremental: !full, Hashes: m.Dedup, BaseSeq: baseSeq})
	if err != nil {
		op.Fail(err)
		a.fail(c, msgDone, m, err)
		return
	}
	op.rounds = append(op.rounds, lc)
	op.redirty = append(op.redirty, lc.Redirty)
	captureBytes := int64(lc.Pages()) * mem.PageSize
	// The snapshot is instant; the copy out of it costs CPU while the
	// pod runs (writes to not-yet-released pages take COW faults — the
	// concurrency overhead of §5.2, charged by the kernel).
	a.cpu.Do(a.params.CaptureCost+bytesCost(captureBytes, a.params.CaptureBPS), func() {
		if op.Aborted() {
			return
		}
		a.planImage(m, op, lc.Image, func(plan *ckpt.SavePlan, err error) {
			if op.Aborted() {
				return
			}
			if err != nil {
				op.Fail(err)
				a.fail(c, msgDone, m, err)
				return
			}
			op.roundSeqs = append(op.roundSeqs, seqR)
			a.streamPlan(m.Pipeline, op, plan.TotalBytes, func() {
				lc.Release()
				op.phRound.End(trace.Int("bytes", plan.TotalBytes))
				a.runPrecopy(c, m, pod, op, round+1, candidate, seqR)
			})
		})
	})
}

// runStopAndCopy is the classic freeze-and-save: disable communication,
// stop the pod, capture, plan, write, report done. Under a pre-copy
// epoch it saves only the residual dirty set, chained on the last round
// at baseSeq.
func (a *Agent) runStopAndCopy(c msgSink, m *wireMsg, pod *zap.Pod, op *agentOp, baseSeq int) {
	incremental := m.Incremental
	if op.precopy {
		// The residual is incremental on the last round (or on the
		// stored base when the policy skipped every round); a fresh
		// chain whose round 0 never ran stays a full save.
		incremental = baseSeq > 0
	}
	if a.tr.Enabled() {
		name := "quiesce"
		if op.precopy {
			name = "residual-stop"
		}
		op.phQuiesce = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, name, trace.Str("pod", m.Pod))
	}

	// Step 1: configure the filter to silently drop all pod traffic.
	a.cpu.Do(a.params.FilterCost, func() {
		if op.Aborted() {
			return
		}
		op.filterID = a.kern.Stack().Filter().AddDropAddr(pod.IP())
		if a.tr.Enabled() {
			a.tr.InstantCtx(op.span.Context(), a.kern.Name(), "core", "filter.install", trace.Str("pod", m.Pod))
		}
		if op.optimized && !op.cow {
			// Fig. 4: notify as soon as communication is disabled,
			// without waiting for the local save.
			c.send(&wireMsg{Type: msgCommDisabled, Seq: m.Seq, Pod: m.Pod, ctx: op.span.Context()})
		}
		// Step 2: stop the pod's processes and take the local checkpoint.
		pod.Stop(func() {
			if op.Aborted() {
				return
			}
			op.stoppedAt = a.kern.Engine().Now()
			op.phQuiesce.End()
			// In Cruz the filter drops in-flight pod traffic rather than
			// flushing it; the "drain" phase is the settle window between
			// full quiesce and the start of the state copy (the serialized
			// in-kernel walk of process and socket structures).
			if a.tr.Enabled() {
				op.phDrain = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "drain",
					trace.Str("pod", m.Pod), trace.Str("mode", "drop"))
			}
			// The capture window scales with the bytes copied (full:
			// resident pages; incremental: dirty pages only).
			var captureBytes int64
			for _, vpid := range pod.VPIDs() {
				as := pod.Process(vpid).Mem()
				if incremental {
					captureBytes += int64(as.DirtyBytes())
				} else {
					captureBytes += int64(as.ResidentBytes())
				}
			}
			a.cpu.Do(a.params.CaptureCost+bytesCost(captureBytes, a.params.CaptureBPS), func() {
				if op.Aborted() {
					return
				}
				op.phDrain.End()
				if a.tr.Enabled() {
					op.phCapture = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "capture",
						trace.Str("pod", m.Pod))
				}
				img, err := ckpt.Capture(pod, m.Seq, ckpt.Options{Incremental: incremental, Hashes: m.Dedup, BaseSeq: baseSeq})
				if err != nil {
					op.Fail(err)
					a.fail(c, msgDone, m, err)
					return
				}
				op.phCapture.End(trace.Int("mem_bytes", img.MemoryBytes()))
				op.captured = true
				if op.precopy {
					// The residual's capture cleared dirty bits for pages
					// whose image would vanish if the epoch aborts.
					op.redirty = append(op.redirty, func() {
						for i := range img.Processes {
							pi := &img.Processes[i]
							if proc := pod.Process(pi.VPID); proc != nil {
								for _, pn := range pi.Memory.PageNums {
									proc.Mem().MarkDirty(pn)
								}
							}
						}
					})
				}
				if op.cow {
					// §5.2 copy-on-write optimization: the captured copy
					// is consistent the moment it exists; the pod may
					// resume (once the coordinator confirms every node
					// has captured) while the image write proceeds from
					// the snapshot.
					if a.tr.Enabled() {
						op.phCommit = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "commit",
							trace.Str("pod", m.Pod), trace.Str("mode", "cow"))
					}
					c.send(&wireMsg{Type: msgCommDisabled, Seq: m.Seq, Pod: m.Pod, ctx: op.span.Context()})
					a.maybeFinishContinue(m.Pod, pod, op)
				}
				a.planAndWrite(c, m, pod, op, img)
			})
		})
	})
}

// planImage turns a captured image into a store plan — monolithic blob,
// or (Dedup) hash + chunk-table dedup charged as their own phases — and
// hands the plan to finishPlan. Shared by the residual stop-and-copy and
// every pre-copy round.
func (a *Agent) planImage(m *wireMsg, op *agentOp, img *ckpt.Image, finishPlan func(*ckpt.SavePlan, error)) {
	if !m.Dedup {
		plan, err := a.store.PlanSave(img)
		finishPlan(plan, err)
		return
	}
	// Hash phase: only pages written since the last hashing capture had
	// a stale cached hash; they alone cost CPU here.
	if a.tr.Enabled() {
		op.phHash = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "hash",
			trace.Str("pod", m.Pod))
	}
	a.cpu.Do(bytesCost(int64(img.FreshHashes)*mem.PageSize, a.params.HashBPS), func() {
		if op.Aborted() {
			return
		}
		op.phHash.End(trace.Int("fresh_pages", int64(img.FreshHashes)))
		var pages int64
		for i := range img.Processes {
			pages += int64(img.Processes[i].Memory.NumPages())
		}
		if a.tr.Enabled() {
			op.phDedup = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "dedup",
				trace.Str("pod", m.Pod))
		}
		a.cpu.Do(sim.Duration(pages)*a.params.DedupPerChunk, func() {
			if op.Aborted() {
				return
			}
			plan, err := a.store.PlanDedupSave(img)
			if err == nil {
				op.phDedup.End(
					trace.Int("new_chunks", int64(plan.Stats.NewChunks)),
					trace.Int("dup_chunks", int64(plan.Stats.DupChunks)))
			} else {
				op.phDedup.End(trace.Str("err", err.Error()))
			}
			finishPlan(plan, err)
		})
	})
}

// planAndWrite plans the residual image and drives the remaining disk
// bytes through writeImage.
func (a *Agent) planAndWrite(c msgSink, m *wireMsg, pod *zap.Pod, op *agentOp, img *ckpt.Image) {
	a.planImage(m, op, img, func(plan *ckpt.SavePlan, err error) {
		if op.Aborted() {
			return
		}
		if err != nil {
			op.Fail(err)
			a.fail(c, msgDone, m, err)
			return
		}
		if op.precopy {
			// Until the coordinator commits, the residual is part of the
			// abortable epoch like the rounds before it.
			op.roundSeqs = append(op.roundSeqs, m.Seq)
		}
		if a.tr.Enabled() {
			op.phWrite = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "write",
				trace.Str("pod", m.Pod))
		}
		a.writeImage(c, m, pod, op, plan)
	})
}

// streamPlan drives total bytes through the store's disk, invoking
// complete once the last segment lands. Without pipeline the bytes go as
// one segment (serial encode, then write); with it, SegmentBytes-sized
// segments stream so segment k is encoded on the daemon CPU while
// segment k-1 is on the disk, and contiguous segments pay the
// positioning latency once.
func (a *Agent) streamPlan(pipeline bool, op *agentOp, total int64, complete func()) {
	disk := a.store.Disk()
	segSize := total
	if pipeline && a.params.SegmentBytes > 0 && a.params.SegmentBytes < total {
		segSize = a.params.SegmentBytes
	}
	if total <= 0 {
		complete()
		return
	}
	var issued, landed int64
	var issue func()
	issue = func() {
		if op.Aborted() || issued >= total {
			return
		}
		seg := segSize
		if total-issued < seg {
			seg = total - issued
		}
		issued += seg
		a.cpu.Do(bytesCost(seg, a.params.EncodeBPS), func() {
			if op.Aborted() {
				return
			}
			disk.WriteContig(seg, func() {
				if op.Aborted() {
					return
				}
				landed += seg
				if landed == total {
					complete()
				}
			})
			issue()
		})
	}
	issue()
}

// writeImage streams the residual plan's bytes and completes the
// checkpoint: report <done>, kick compaction/replication, finish or hand
// over to the continue path.
func (a *Agent) writeImage(c msgSink, m *wireMsg, pod *zap.Pod, op *agentOp, plan *ckpt.SavePlan) {
	total := plan.TotalBytes
	a.streamPlan(m.Pipeline, op, total, func() {
		op.saveDone = true
		op.phWrite.End(trace.Int("bytes", total))
		// Step 3: send <done>.
		c.send(&wireMsg{
			Type:          msgDone,
			Seq:           m.Seq,
			Pod:           m.Pod,
			LocalDuration: a.kern.Engine().Now().Sub(op.Started()),
			ImageBytes:    total,
			ctx:           op.span.Context(),
		})
		if plan.CompactAfter {
			// GC off the critical path: fold the incremental chain once
			// the checkpoint is reported.
			a.store.Compact(m.Pod, nil)
		}
		if op.replicas > 0 || a.ec.Enabled() {
			// Stream the committed image's durability copies — erasure-
			// coded shards or full replicas — off the critical path of
			// the coordinated cycle but inside the checkpoint's span tree.
			a.startDurability(m.Pod, m.Seq, op.replicas, m.Dedup, c, op.span.Context())
		}
		if op.resumed {
			// COW: the pod resumed before the write finished; the
			// operation completes here.
			op.endSpans()
			op.Finish()
			return
		}
		if !op.phCommit.Active() && a.tr.Enabled() {
			op.phCommit = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "commit",
				trace.Str("pod", m.Pod))
		}
		a.maybeFinishContinue(m.Pod, pod, op)
	})
}

// handleContinue implements Steps 5-7: resume the pod, re-enable its
// communication, acknowledge. Under the Fig. 4 optimization the continue
// may arrive before the local save completes; the pod then resumes the
// moment its own save is done.
func (a *Agent) handleContinue(c msgSink, m *wireMsg) {
	pod, ok := a.pods[m.Pod]
	op := a.podOp(m.Pod)
	if !ok || op == nil || op.Seq != m.Seq {
		a.fail(c, msgContinueDone, m, ErrUnknownPod)
		return
	}
	op.contRecvd = true
	a.maybeFinishContinue(m.Pod, pod, op)
}

// maybeFinishContinue resumes once the coordinator's permission is in
// and the local state is safe: fully saved, or — under copy-on-write —
// merely captured (the write continues from the snapshot).
func (a *Agent) maybeFinishContinue(name string, pod *zap.Pod, op *agentOp) {
	localSafe := op.saveDone || (op.cow && op.captured)
	if !localSafe || !op.contRecvd || op.resumed || op.Aborted() {
		return
	}
	op.resumed = true
	t0 := a.kern.Engine().Now()
	a.cpu.Do(a.params.FilterCost, func() {
		pod.Resume()
		a.kern.Stack().Filter().RemoveRule(op.filterID)
		op.filterID = 0
		if a.tr.Enabled() {
			a.tr.InstantCtx(op.span.Context(), a.kern.Name(), "core", "filter.remove", trace.Str("pod", name))
		}
		op.phCommit.End()
		seq := op.Seq
		if op.saveDone {
			op.endSpans()
			op.Finish()
		}
		// op.span.Context() stays valid after endSpans: the reply is the
		// span's last causal act.
		op.conn.send(&wireMsg{
			Type:            msgContinueDone,
			Seq:             seq,
			Pod:             name,
			LocalDuration:   a.kern.Engine().Now().Sub(t0) + a.params.MsgCost,
			BlockedDuration: a.kern.Engine().Now().Sub(op.stoppedAt),
			ctx:             op.span.Context(),
		})
	})
}

// startRestart performs the local restart: disable communication for the
// pod's address before restoring (so restored TCP state cannot transmit
// prematurely, §5), load and restore the image, report done. A pod of the
// same name still running on this node (recovery restarts the whole job,
// including survivors) is destroyed only after the image loads, so a
// missing image leaves the application untouched. The restored pod
// resumes on <continue>.
func (a *Agent) startRestart(c msgSink, m *wireMsg) {
	op, err := a.beginPodOp("restart", m, c)
	if err != nil {
		a.fail(c, msgRestartDone, m, err)
		return
	}
	a.coordConn = c
	op.saveDone = true
	a.Stats.Restores++
	if a.tr.Enabled() {
		node := a.kern.Name()
		op.span = a.tr.BeginChild(m.ctx, node, "core", "agent.restart",
			trace.Str("pod", m.Pod), trace.Int("seq", int64(m.Seq)))
		// Reuse the quiesce/write slots for the restart phases so abort
		// cleanup covers them.
		op.phQuiesce = a.tr.BeginChild(op.span.Context(), node, trace.PhaseCat, "load", trace.Str("pod", m.Pod))
	}

	load := func(done func(*ckpt.Image, error)) {
		if m.Seq > 0 {
			a.store.LoadMergedCtx(m.Pod, m.Seq, op.span.Context(), done)
		} else {
			a.store.LoadLatestCtx(m.Pod, op.span.Context(), done)
		}
	}
	load(func(img *ckpt.Image, err error) {
		if op.Aborted() {
			return
		}
		if err != nil {
			op.Fail(err)
			a.fail(c, msgRestartDone, m, err)
			return
		}
		op.phQuiesce.End()
		if a.tr.Enabled() {
			op.phCapture = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "restore",
				trace.Str("pod", m.Pod))
		}
		// Disable communication for the pod's address first.
		a.cpu.Do(a.params.FilterCost+a.params.CaptureCost, func() {
			if op.Aborted() {
				return
			}
			op.filterID = a.kern.Stack().Filter().AddDropAddr(img.Net.IP)
			// The image is loadable: any live instance of the pod on this
			// node is superseded by the restore.
			if old := a.pods[m.Pod]; old != nil && !old.Destroyed() {
				old.Destroy()
			}
			pod, rerr := ckpt.Restore(a.kern, img)
			if rerr != nil {
				op.Fail(rerr)
				a.fail(c, msgRestartDone, m, rerr)
				return
			}
			a.pods[m.Pod] = pod
			op.phCapture.End(trace.Int("mem_bytes", img.MemoryBytes()))
			if a.tr.Enabled() {
				op.phCommit = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "commit",
					trace.Str("pod", m.Pod))
			}
			c.send(&wireMsg{
				Type:          msgRestartDone,
				Seq:           m.Seq,
				Pod:           m.Pod,
				LocalDuration: a.kern.Engine().Now().Sub(op.Started()),
				ImageBytes:    img.MemoryBytes(),
				ctx:           op.span.Context(),
			})
		})
	})
}

// handleAbort rolls back an in-progress operation: remove the filter,
// resume the pod, forget the op. Any image already written stays in the
// store but is never committed by the coordinator. The pod key covers
// every pod-scoped op kind — checkpoint, restart, migrate-out and
// migrate-in all register their rollback through OnFail.
func (a *Agent) handleAbort(m *wireMsg) {
	o := a.table.Get(m.Pod)
	if o == nil {
		return
	}
	o.Fail(ErrAborted)
}
