package core

import (
	"errors"
	"fmt"
	"strconv"

	"cruz/internal/ckpt"
	"cruz/internal/ctl"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/trace"
)

// Replication (agent side). After a checkpoint's local save commits, the
// agent streams the image to k peer agents over the simulated network.
// The exchange is delta-aware: an offer describes the chain and its
// distinct chunk hashes, the replica answers with what it is missing, and
// only that delta travels — so steady-state replication of a dedup chain
// costs little more than the manifest. The same exchange serves recovery
// fetches, with the coordinator telling the new home node which surviving
// replica to pull from.

// ErrReplTimeout marks a replication or fetch exchange that went silent.
var ErrReplTimeout = errors.New("core: replication timed out")

// replOp is the initiator side of one replication exchange (this agent
// pushing one checkpoint to one peer connection).
type replOp struct {
	*ctl.Op
	pod  string
	peer tcpip.AddrPort // peer's listener endpoint (zero when serving a fetch pull)
	conn *ctlConn
	// coord, when set, receives the <replicated> placement report the
	// coordinator's holder registry feeds on.
	coord msgSink
	// onDone, when set, fires exactly once when the exchange completes:
	// with the transferred byte count on success, or the failure error.
	// Migration rounds use it to pace the stream — the next round starts
	// only once the destination has adopted this one.
	onDone func(int64, error)
	// tier is the send-path priority of this exchange's bulk data frame:
	// TierBackground for durability replication (paced, yields to
	// everything), TierStream for migration rounds and recovery fetches.
	tier ctl.Tier
	span trace.Span
}

// fetchOp is the target side of a coordinator-directed fetch: this agent
// pulling a checkpoint it does not hold from a surviving replica.
type fetchOp struct {
	*ctl.Op
	conn *ctlConn // coordinator connection to report <fetch-done> on
	span trace.Span
}

func addrKey(ap tcpip.AddrPort) string {
	return fmt.Sprintf("%d.%d.%d.%d:%d", ap.Addr[0], ap.Addr[1], ap.Addr[2], ap.Addr[3], ap.Port)
}

func replKey(pod string, seq int, remote tcpip.AddrPort) string {
	return "repl/" + pod + "/" + strconv.Itoa(seq) + "/" + addrKey(remote)
}

// peerConn returns a live agent-to-agent connection to addr, dialing one
// if needed. Frames queue until the handshake completes, so callers may
// send immediately.
func (a *Agent) peerConn(addr tcpip.AddrPort) (*ctlConn, error) {
	if cc, ok := a.peerConns[addr]; ok && cc.TCP().Err() == nil {
		return cc, nil
	}
	tc, err := a.kern.Stack().DialTCP(tcpip.AddrPort{}, addr)
	if err != nil {
		return nil, err
	}
	cc := newCtlConn(tc, a.onMsg, func(c *ctlConn, _ error) {
		if a.peerConns[addr] == c {
			delete(a.peerConns, addr)
		}
	})
	if a.pacer != nil {
		cc.SetPacer(a.pacer)
	}
	a.peerConns[addr] = cc
	return cc, nil
}

// startReplication pushes the committed checkpoint to the first k ring
// peers. Runs off the coordinated cycle's critical path; ctx parents the
// exchanges under the checkpoint that produced the image.
func (a *Agent) startReplication(pod string, seq, replicas int, coord msgSink, ctx trace.SpanContext) {
	n := replicas
	if n > len(a.peers) {
		n = len(a.peers)
	}
	for i := 0; i < n; i++ {
		peer := a.peers[i]
		cc, err := a.peerConn(peer)
		if err != nil {
			a.Stats.ReplFailures++
			continue
		}
		a.replicateOn(cc, pod, seq, peer, coord, ctx, ctl.TierBackground, nil)
	}
}

// replicateOn runs one offer/want/data exchange for (pod, seq) over cc.
// onDone (optional) observes the exchange's completion. It returns the
// exchange's op (nil if one was already in flight) so callers that pace
// on the transfer — migration rounds — can cancel it on abort.
func (a *Agent) replicateOn(cc *ctlConn, pod string, seq int, peer tcpip.AddrPort, coord msgSink, ctx trace.SpanContext, tier ctl.Tier, onDone func(int64, error)) *ctl.Op {
	o, err := a.table.Begin("replicate", replKey(pod, seq, cc.TCP().RemoteAddr()), seq)
	if err != nil {
		if onDone != nil {
			onDone(0, ErrBusy)
		}
		return nil // this exchange is already in flight
	}
	op := &replOp{Op: o, pod: pod, peer: peer, conn: cc, coord: coord, onDone: onDone, tier: tier}
	o.Data = op
	if a.tr.Enabled() {
		op.span = a.tr.BeginChild(ctx, a.kern.Name(), "core", "agent.replicate",
			trace.Str("pod", pod), trace.Int("seq", int64(seq)))
	}
	o.OnFail(func(_ *ctl.Op, err error) {
		a.Stats.ReplFailures++
		op.span.End(trace.Str("err", err.Error()))
		if op.onDone != nil {
			op.onDone(0, err)
		}
	})
	offer, oerr := a.store.ExportOffer(pod, seq)
	if oerr != nil {
		o.Fail(oerr)
		return nil
	}
	send := func() {
		cc.send(&wireMsg{Type: msgReplOffer, Seq: seq, Pod: pod, ctx: op.span.Context(), Repl: &replPayload{
			Chain: offer.Chain, Dedup: offer.Dedup, Hashes: offer.Hashes,
		}})
	}
	o.ArmRetries(a.params.ReplTimeout, 1, func(*ctl.Op) { send() }, ErrReplTimeout)
	send()
	return o
}

// replOpFor locates the initiator-side op a reply on cc belongs to.
func (a *Agent) replOpFor(pod string, seq int, cc *ctlConn) *replOp {
	if o := a.table.Get(replKey(pod, seq, cc.TCP().RemoteAddr())); o != nil {
		if op, ok := o.Data.(*replOp); ok {
			return op
		}
	}
	return nil
}

// handleReplOffer is the replica side: answer with the missing delta.
// The chunk-set comparison costs DedupPerChunk per offered hash.
func (a *Agent) handleReplOffer(c *ctlConn, m *wireMsg) {
	if m.Err != "" {
		a.failFetch(m.Pod, m.Seq, fmt.Errorf("%s", m.Err))
		return
	}
	if m.Repl == nil {
		return
	}
	offer := &ckpt.Offer{Pod: m.Pod, Seq: m.Seq, Chain: m.Repl.Chain, Dedup: m.Repl.Dedup, Hashes: m.Repl.Hashes}
	a.cpu.Do(a.params.DedupPerChunk*sim.Duration(len(offer.Hashes)), func() {
		needSeqs, needHashes := a.store.MissingFor(offer)
		c.send(&wireMsg{Type: msgReplWant, Seq: m.Seq, Pod: m.Pod, ctx: m.ctx, Repl: &replPayload{
			NeedSeqs: needSeqs, NeedHashes: needHashes,
		}})
	})
}

// handleReplWant is the initiator side: build and ship the delta.
func (a *Agent) handleReplWant(c *ctlConn, m *wireMsg) {
	op := a.replOpFor(m.Pod, m.Seq, c)
	if op == nil || m.Repl == nil {
		return
	}
	tx, err := a.store.BuildTransfer(m.Pod, m.Seq, m.Repl.NeedSeqs, m.Repl.NeedHashes)
	if err != nil {
		op.Fail(err)
		return
	}
	// The offer reached the peer; from here a plain timeout guards the
	// bulk transfer (re-offering would duplicate adopted state).
	op.ArmTimeout(a.params.ReplTimeout, ErrReplTimeout)
	a.cpu.Do(bytesCost(tx.TotalBytes, a.params.EncodeBPS), func() {
		if !op.Active() {
			return
		}
		op.conn.send(&wireMsg{Type: msgReplData, Seq: m.Seq, Pod: m.Pod, ctx: op.span.Context(), tier: op.tier, Repl: &replPayload{
			Blobs: tx.Blobs, Manifests: tx.Manifests, Chunks: tx.Chunks, Bytes: tx.TotalBytes,
		}})
	})
}

// handleReplData is the replica side: adopt the delta into the local
// store (decode CPU, then the disk write), acknowledge, and complete any
// fetch waiting on it.
func (a *Agent) handleReplData(c *ctlConn, m *wireMsg) {
	if m.Repl == nil {
		return
	}
	tx := &ckpt.Transfer{
		Pod: m.Pod, Seq: m.Seq,
		Blobs: m.Repl.Blobs, Manifests: m.Repl.Manifests, Chunks: m.Repl.Chunks,
		TotalBytes: m.Repl.Bytes, Ctx: m.ctx,
	}
	a.cpu.Do(bytesCost(tx.TotalBytes, a.params.EncodeBPS), func() {
		a.store.Adopt(tx, func(n int64, err error) {
			if err != nil {
				a.fail(c, msgReplDone, m, err)
				a.failFetch(m.Pod, m.Seq, err)
				return
			}
			c.send(&wireMsg{Type: msgReplDone, Seq: m.Seq, Pod: m.Pod, ctx: m.ctx, Repl: &replPayload{Bytes: tx.TotalBytes}})
			a.finishFetch(m.Pod, m.Seq, tx.TotalBytes)
			a.migrateRoundArrived(m.Pod, m.Seq)
		})
	})
}

// handleReplDone is the initiator side: the replica holds the image.
func (a *Agent) handleReplDone(c *ctlConn, m *wireMsg) {
	op := a.replOpFor(m.Pod, m.Seq, c)
	if op == nil {
		return
	}
	if m.Err != "" {
		op.Fail(fmt.Errorf("core: replica: %s", m.Err))
		return
	}
	var n int64
	if m.Repl != nil {
		n = m.Repl.Bytes
	}
	a.Stats.Replications++
	a.Stats.ReplBytes += n
	op.span.End(trace.Int("bytes", n))
	if op.coord != nil && op.peer.Port != 0 {
		op.coord.send(&wireMsg{Type: msgReplicated, Seq: m.Seq, Pod: m.Pod, ctx: op.span.Context(), Repl: &replPayload{
			Bytes: n, PeerIP: op.peer.Addr, PeerPort: op.peer.Port,
		}})
	}
	op.Finish()
	if op.onDone != nil {
		op.onDone(n, nil)
	}
}

// handleFetch is the recovery pull, target side: the coordinator directs
// this agent to fetch (pod, seq) from a surviving replica before the
// restart lands here.
func (a *Agent) handleFetch(c *ctlConn, m *wireMsg) {
	if a.store.HasSeq(m.Pod, m.Seq) {
		// Already a replica — transfer cost is zero.
		c.send(&wireMsg{Type: msgFetchDone, Seq: m.Seq, Pod: m.Pod, ctx: m.ctx, Repl: &replPayload{Bytes: 0}})
		return
	}
	if m.Repl == nil {
		a.fail(c, msgFetchDone, m, ErrUnknownPod)
		return
	}
	o, err := a.table.Begin("fetch", "fetch/"+m.Pod, m.Seq)
	if err != nil {
		a.fail(c, msgFetchDone, m, ErrBusy)
		return
	}
	op := &fetchOp{Op: o, conn: c}
	o.Data = op
	if a.tr.Enabled() {
		op.span = a.tr.BeginChild(m.ctx, a.kern.Name(), "core", "agent.fetch",
			trace.Str("pod", m.Pod), trace.Int("seq", int64(m.Seq)))
	}
	o.OnFail(func(_ *ctl.Op, err error) {
		op.span.End(trace.Str("err", err.Error()))
		a.fail(c, msgFetchDone, m, err)
	})
	o.ArmTimeout(a.params.ReplTimeout, ErrReplTimeout)
	src := tcpip.AddrPort{Addr: m.Repl.PeerIP, Port: m.Repl.PeerPort}
	cc, cerr := a.peerConn(src)
	if cerr != nil {
		o.Fail(cerr)
		return
	}
	cc.send(&wireMsg{Type: msgFetchPull, Seq: m.Seq, Pod: m.Pod, ctx: op.span.Context()})
}

// handleFetchPull is the recovery pull, source side: a peer that needs
// one of our checkpoints; serve it with the normal replication exchange
// over the inbound connection.
func (a *Agent) handleFetchPull(c *ctlConn, m *wireMsg) {
	if !a.store.HasSeq(m.Pod, m.Seq) {
		a.fail(c, msgReplOffer, m, ckpt.ErrNoImage)
		return
	}
	a.replicateOn(c, m.Pod, m.Seq, tcpip.AddrPort{}, nil, m.ctx, ctl.TierStream, nil)
}

// finishFetch completes a pending fetch after the adopted transfer lands.
func (a *Agent) finishFetch(pod string, seq int, n int64) {
	o := a.table.Get("fetch/" + pod)
	if o == nil || o.Seq != seq {
		return
	}
	op, ok := o.Data.(*fetchOp)
	if !ok {
		return
	}
	a.Stats.Fetches++
	op.span.End(trace.Int("bytes", n))
	op.conn.send(&wireMsg{Type: msgFetchDone, Seq: seq, Pod: pod, ctx: op.span.Context(), Repl: &replPayload{Bytes: n}})
	o.Finish()
}

// failFetch fails a pending fetch for (pod, seq), if any.
func (a *Agent) failFetch(pod string, seq int, err error) {
	o := a.table.Get("fetch/" + pod)
	if o == nil || o.Seq != seq {
		return
	}
	if _, ok := o.Data.(*fetchOp); !ok {
		return
	}
	o.Fail(err)
}
