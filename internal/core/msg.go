// Package core implements Cruz's coordinated checkpoint-restart protocol
// (paper §5): a Checkpoint Coordinator and per-node Checkpoint Agents
// exchanging the minimum messages needed for atomicity — the two-phase
// pattern of Fig. 2 — with no channel flushing. In-flight packets are
// simply dropped by each node's packet filter while the local pod state
// (including live TCP state) is saved; TCP retransmission recovers them
// when communication is re-enabled.
//
// Both the blocking protocol of Fig. 2 and the early-continue
// optimization of Fig. 4 are implemented, plus coordinated restart, abort
// on agent failure (the "straightforward extension" of §5), and the
// bookkeeping the paper's evaluation needs: per-phase timings and message
// counts.
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"cruz/internal/ckpt"
	"cruz/internal/ctl"
	"cruz/internal/mem"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/trace"
)

// msgType discriminates control messages.
type msgType int

// Control message types. Names follow Fig. 2.
const (
	msgCheckpoint msgType = iota + 1
	msgCommDisabled
	msgDone
	msgContinue
	msgContinueDone
	msgRestart
	msgRestartDone
	msgAbort

	// Membership: coordinator-driven heartbeats.
	msgPing
	msgPong

	// Replication: agent-to-agent checkpoint streaming (offer/want/data
	// delta exchange) and the agent-to-coordinator placement report.
	msgReplOffer
	msgReplWant
	msgReplData
	msgReplDone
	msgReplicated

	// Recovery: coordinator-directed image fetch onto a new home node.
	msgFetch
	msgFetchPull
	msgFetchDone

	// Live migration (§4.2 taken live): the coordinator arms the
	// destination (migrate-target), directs the source to stream pre-copy
	// rounds into the destination's store (migrate), the source hands the
	// frozen residual over agent-to-agent (migrate-restore), the
	// destination reports takeover (migrate-done), and the coordinator
	// commits by telling the source to destroy its copy (migrate-commit,
	// acknowledged by migrate-src-done).
	msgMigrate
	msgMigrateTarget
	msgMigrateRestore
	msgMigrateDone
	msgMigrateCommit
	msgMigrateSrcDone

	// Hierarchical coordination (two-level tree): the root exchanges
	// these with group leaders instead of per-pod messages with every
	// member. Leaders relay the per-pod messages above to their group and
	// batch the members' replies, so the root sees O(N/size) messages per
	// protocol phase.
	msgGroupCheckpoint
	msgGroupRestart
	msgGroupContinue
	msgGroupAbort
	msgGroupDisabled
	msgGroupDone
	msgGroupRestartDone
	msgGroupContDone

	// Erasure-coded durability: the primary streams each holder its
	// rotated shard subset through the same offer/want/data delta shape
	// (ec-offer/ec-want/ec-data/ec-done), the holder's adoption is
	// reported to the coordinator (ec-holding), and recovery pulls the
	// surviving shard sets — ec-fetch directs the new home node, ec-pull
	// asks each holder for its shards, ec-shards answers — so the target
	// can reconstruct any missing chunks from m of m+r shards.
	msgECOffer
	msgECWant
	msgECData
	msgECDone
	msgECHolding
	msgECFetch
	msgECPull
	msgECShards

	// Migration round-0 base negotiation: before an opening full round,
	// the source asks the destination whether it already holds the pod's
	// replicated checkpoint chain at the source's latest sequence
	// (migrate-base); if so (migrate-base-ack), the first pre-copy round
	// streams the delta against that held chain instead of the full
	// image.
	msgMigrateBase
	msgMigrateBaseAck
)

var msgNames = map[msgType]string{
	msgCheckpoint:   "checkpoint",
	msgCommDisabled: "comm-disabled",
	msgDone:         "done",
	msgContinue:     "continue",
	msgContinueDone: "continue-done",
	msgRestart:      "restart",
	msgRestartDone:  "restart-done",
	msgAbort:        "abort",
	msgPing:         "ping",
	msgPong:         "pong",
	msgReplOffer:    "repl-offer",
	msgReplWant:     "repl-want",
	msgReplData:     "repl-data",
	msgReplDone:     "repl-done",
	msgReplicated:   "replicated",
	msgFetch:        "fetch",
	msgFetchPull:    "fetch-pull",
	msgFetchDone:    "fetch-done",

	msgMigrate:        "migrate",
	msgMigrateTarget:  "migrate-target",
	msgMigrateRestore: "migrate-restore",
	msgMigrateDone:    "migrate-done",
	msgMigrateCommit:  "migrate-commit",
	msgMigrateSrcDone: "migrate-src-done",

	msgGroupCheckpoint:  "group-checkpoint",
	msgGroupRestart:     "group-restart",
	msgGroupContinue:    "group-continue",
	msgGroupAbort:       "group-abort",
	msgGroupDisabled:    "group-disabled",
	msgGroupDone:        "group-done",
	msgGroupRestartDone: "group-restart-done",
	msgGroupContDone:    "group-cont-done",

	msgECOffer:   "ec-offer",
	msgECWant:    "ec-want",
	msgECData:    "ec-data",
	msgECDone:    "ec-done",
	msgECHolding: "ec-holding",
	msgECFetch:   "ec-fetch",
	msgECPull:    "ec-pull",
	msgECShards:  "ec-shards",

	msgMigrateBase:    "migrate-base",
	msgMigrateBaseAck: "migrate-base-ack",
}

func (t msgType) String() string {
	if n, ok := msgNames[t]; ok {
		return n
	}
	return fmt.Sprintf("msgType(%d)", int(t))
}

// wireMsg is the single on-wire control message shape.
type wireMsg struct {
	Type msgType
	Seq  int
	Pod  string
	Err  string

	// Reporting fields carried on done/continue-done/restart-done.
	LocalDuration sim.Duration // local checkpoint or restore duration
	// BlockedDuration (on continue-done) is how long the pod was
	// actually frozen: SIGSTOP quiescence to resume.
	BlockedDuration sim.Duration
	ImageBytes      int64

	// Checkpoint options.
	Incremental bool
	Optimized   bool
	COW         bool
	Dedup       bool
	Pipeline    bool
	// Replicas asks the agent to stream the committed image to this many
	// peer nodes after its local save.
	Replicas int

	// Pre-copy (PrecopyRounds > 0): the agent streams up to this many
	// live rounds — copy-on-write captures taken without stopping the
	// pod — before the residual stop-and-copy at Seq. Rounds occupy the
	// sequence numbers (Seq-PrecopyRounds, Seq); only Seq is committed.
	PrecopyRounds int
	// PrecopyThresholdPages stops the rounds early once the live dirty
	// set is at most this many pages (0 = no threshold).
	PrecopyThresholdPages int
	// PrecopyMinGain stops the rounds when a round shrinks the dirty
	// set by less than this fraction of the previous round's pages —
	// the write rate is outrunning the copy rate (0 = no gain check).
	PrecopyMinGain float64

	// Load (on pong) is how many live pods the agent hosts — the
	// coordinator's placement signal.
	Load int

	// Migration. FrozeAt (on migrate-restore) is the source-side instant
	// the pod quiesced — the start of the downtime window the destination
	// closes on first resume. RoundPages (on migrate-src-done) is the
	// per-round streamed page counts, residual last — the convergence
	// record the result reports.
	FrozeAt    sim.Time
	RoundPages []int

	// Hierarchical coordination. Job names the coordinated operation a
	// group message belongs to (group messages address a whole group, so
	// Pod alone cannot route them). Group is the leader's relay list on
	// group-checkpoint/group-restart; Reports carries the batched member
	// replies on the upward aggregates (group-disabled carries pods only,
	// group-done adds save timings, group-cont-done adds blocked windows).
	Job     string
	Group   []GroupMember
	Reports []GroupReport

	// Repl carries the replication/fetch payload when present.
	Repl *replPayload

	// ctx is the distributed trace context. It is deliberately unexported:
	// gob skips it, because the context travels in the ctl frame header —
	// not the gob body — and is re-attached by frame() on receipt. Senders
	// set it in the message literal; handlers read it to parent their
	// spans (zero when the message belongs to no traced operation).
	ctx trace.SpanContext

	// tier is the send-path priority (unexported like ctx — it shapes
	// transmission, not the payload). Zero is TierForeground; bulk
	// durability data messages set TierBackground so they yield to
	// control traffic and migration rounds and pass the node's pacer.
	tier ctl.Tier
}

// GroupMember is one entry of a leader's relay list: the pod and the
// agent that manages it.
type GroupMember struct {
	Pod  string
	IP   tcpip.Addr
	Port uint16
}

// addrPort returns the member's agent endpoint.
func (g GroupMember) addrPort() tcpip.AddrPort {
	return tcpip.AddrPort{Addr: g.IP, Port: g.Port}
}

// GroupReport is one member's reply inside a leader's upward aggregate.
type GroupReport struct {
	Pod             string
	LocalDuration   sim.Duration
	BlockedDuration sim.Duration
	ImageBytes      int64
}

// replPayload is the bulk half of replication and fetch messages. Only
// the fields the message type needs are populated.
type replPayload struct {
	// Offer: the chain and (dedup) chunk hashes available.
	Chain  []int
	Dedup  bool
	Hashes []mem.PageHash
	// Want: the delta the replica is missing.
	NeedSeqs   []int
	NeedHashes []mem.PageHash
	// Data: the delta itself (encoded images / manifests / chunks).
	Blobs     map[int][]byte
	Manifests map[int][]byte
	Chunks    []ckpt.ChunkData
	// Done / fetch-done / replicated bookkeeping.
	Bytes int64
	// Fetch: the source agent to pull from; replicated: the peer that
	// now holds the image.
	PeerIP   tcpip.Addr
	PeerPort uint16

	// EC: the encoded shard manifest, the destination holder's ring
	// position (which shard of each stripe it stores), and — on ec-fetch
	// — the surviving holders the reconstructing node must pull from
	// (Pod field unused). ECM, on ec-holding, is the set's data-shard
	// count: the coordinator needs it to judge whether enough holders
	// survive to reconstruct.
	ECSet   []byte
	Holder  int
	ECM     int
	Sources []GroupMember
}

// msgSink is where an agent's protocol replies go: the control
// connection the request arrived on, or — on a group leader — the local
// relay aggregator, which absorbs replies from the leader's own pods
// without a network hop (the leader is a member of its own group).
type msgSink interface {
	send(m *wireMsg) error
}

// ctlConn is a gob-typed control connection.
type ctlConn struct {
	*ctl.Conn
	onMsg func(*ctlConn, *wireMsg)
	onErr func(*ctlConn, error)

	// encBuf is the reusable gob staging buffer: SendCtx copies the
	// payload into its frame, so the buffer is dead as soon as send
	// returns and one per connection suffices. (Each message still gets
	// a fresh encoder — frames must be self-contained because the
	// receiver decodes each one independently.)
	encBuf bytes.Buffer
}

func newCtlConn(tc *tcpip.TCPConn, onMsg func(*ctlConn, *wireMsg), onErr func(*ctlConn, error)) *ctlConn {
	c := &ctlConn{onMsg: onMsg, onErr: onErr}
	c.Conn = ctl.NewConn(tc, c.frame, func(_ *ctl.Conn, err error) {
		if c.onErr != nil {
			c.onErr(c, err)
		}
	})
	return c
}

// send encodes and transmits one message.
func (c *ctlConn) send(m *wireMsg) error {
	c.encBuf.Reset()
	if err := gob.NewEncoder(&c.encBuf).Encode(m); err != nil {
		return fmt.Errorf("core: encode %v: %w", m.Type, err)
	}
	if err := c.Conn.SendTierCtx(c.encBuf.Bytes(), m.ctx, m.tier); err != nil {
		return fmt.Errorf("core: send %v: %w", m.Type, err)
	}
	return nil
}

// frame decodes a received payload and dispatches it. The frame header's
// trace context is captured onto the message here, synchronously, because
// handlers defer the actual processing behind daemon-CPU cost and the
// conn's FrameCtx is only valid during this callback.
func (c *ctlConn) frame(conn *ctl.Conn, payload []byte) {
	var m wireMsg
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		if c.onErr != nil {
			c.onErr(c, fmt.Errorf("core: decode frame: %w", err))
		}
		return
	}
	m.ctx = conn.FrameCtx()
	c.onMsg(c, &m)
}
