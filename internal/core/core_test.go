package core

import (
	"errors"
	"testing"

	"cruz/internal/ckpt"
	"cruz/internal/ether"
	"cruz/internal/kernel"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/zap"
)

func init() {
	ckpt.RegisterProgram(&ringWorker{})
}

// ringWorker is a miniature of the paper's parallel workloads: worker i
// sends a monotonically increasing round counter to its right neighbour
// and verifies the counter it receives from its left neighbour increments
// by exactly one each round. Any message lost, duplicated, or reordered
// across a checkpoint breaks the sequence and the worker records a fault.
type ringWorker struct {
	ID, N   int
	Port    uint16
	PeerIP  tcpip.Addr
	Compute sim.Duration

	// HeapPages, when nonzero, allocates a heap and stamps one page per
	// round, giving checkpoints a realistic memory payload.
	HeapPages uint64
	Heap      uint64

	Phase   int
	LFD     int
	InFD    int
	OutFD   int
	Rounds  uint64
	LastIn  uint64
	SendPtr int
	RecvBuf []byte
	Fault   string
}

func (w *ringWorker) fail(msg string) kernel.StepResult {
	w.Fault = msg
	return kernel.Exit(0, 2)
}

func (w *ringWorker) Step(ctx *kernel.ProcContext) kernel.StepResult {
	switch w.Phase {
	case 0: // listen
		fd, err := ctx.Listen(tcpip.AddrPort{Port: w.Port}, 4)
		if err != nil {
			return w.fail("listen: " + err.Error())
		}
		w.LFD = fd
		w.Phase = 1
		// Give every worker time to reach the listen state.
		return kernel.Sleep(0, 10*sim.Millisecond)
	case 1: // connect to the right neighbour
		fd, err := ctx.Connect(tcpip.AddrPort{Addr: w.PeerIP, Port: w.Port})
		if err != nil {
			return w.fail("connect: " + err.Error())
		}
		w.OutFD = fd
		w.Phase = 2
		return kernel.Continue(0)
	case 2: // wait for the outgoing connection
		ok, err := ctx.ConnEstablished(w.OutFD)
		if err != nil {
			return w.fail("establish: " + err.Error())
		}
		if !ok {
			return kernel.Sleep(0, sim.Millisecond)
		}
		w.Phase = 3
		return kernel.Continue(0)
	case 3: // accept from the left neighbour
		fd, err := ctx.Accept(w.LFD)
		if err == kernel.ErrWouldBlock {
			return kernel.BlockOnRead(0, w.LFD)
		}
		if err != nil {
			return w.fail("accept: " + err.Error())
		}
		w.InFD = fd
		w.Phase = 4
		return kernel.Continue(0)
	case 4: // compute, then send this round's counter
		if w.HeapPages > 0 {
			if w.Heap == 0 {
				base, err := ctx.Mem().Alloc(w.HeapPages*4096, "heap")
				if err != nil {
					return w.fail("alloc: " + err.Error())
				}
				w.Heap = base
			}
			off := (w.Rounds % w.HeapPages) * 4096
			if err := ctx.Mem().WriteUint64(w.Heap+off, w.Rounds); err != nil {
				return w.fail("stamp: " + err.Error())
			}
		}
		v := w.Rounds + 1
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		n, err := ctx.Send(w.OutFD, b[w.SendPtr:])
		if err == kernel.ErrWouldBlock {
			return kernel.BlockOnWrite(0, w.OutFD)
		}
		if err != nil {
			return w.fail("send: " + err.Error())
		}
		w.SendPtr += n
		if w.SendPtr < 8 {
			return kernel.Continue(0)
		}
		w.SendPtr = 0
		w.Phase = 5
		return kernel.Continue(w.Compute)
	case 5: // receive the left neighbour's counter
		buf := make([]byte, 8-len(w.RecvBuf))
		n, err := ctx.Recv(w.InFD, buf, false)
		if err == kernel.ErrWouldBlock {
			return kernel.BlockOnRead(0, w.InFD)
		}
		if err != nil {
			return w.fail("recv: " + err.Error())
		}
		w.RecvBuf = append(w.RecvBuf, buf[:n]...)
		if len(w.RecvBuf) < 8 {
			return kernel.Continue(0)
		}
		var v uint64
		for i, by := range w.RecvBuf {
			v |= uint64(by) << (8 * i)
		}
		w.RecvBuf = nil
		if v != w.LastIn+1 {
			return w.fail("sequence break")
		}
		w.LastIn = v
		w.Rounds++
		w.Phase = 4
		return kernel.Continue(0)
	}
	return w.fail("bad phase")
}

// cluster is the full test fixture: N application nodes with agents and
// pods running the ring, plus a coordinator node.
type cluster struct {
	t       *testing.T
	engine  *sim.Engine
	sw      *ether.Switch
	kernels []*kernel.Kernel
	agents  []*Agent
	stores  []*ckpt.Store
	pods    []*zap.Pod
	workers []*ringWorker
	coord   *Coordinator
	job     *Job
}

func podIP(i int) tcpip.Addr { return tcpip.Addr{10, 0, 1, byte(i + 1)} }

func newCluster(t *testing.T, n int, compute sim.Duration) *cluster {
	t.Helper()
	cl := &cluster{t: t, engine: sim.NewEngine(31)}
	cl.sw = ether.NewSwitch(cl.engine)
	mkNode := func(i int) *kernel.Kernel {
		mac := ether.MAC{2, 0, 0, 0, 0, byte(i + 1)}
		nic := ether.NewNIC(cl.engine, "eth0", mac)
		cl.sw.Attach(nic, ether.GigabitLink)
		st := tcpip.NewStack(cl.engine, "node")
		if _, err := st.AddInterface("eth0", tcpip.Addr{10, 0, 0, byte(i + 1)}, mac, nic, false); err != nil {
			t.Fatal(err)
		}
		return kernel.New(cl.engine, "node", kernel.DefaultParams(), st)
	}
	job := &Job{Name: "ring"}
	for i := 0; i < n; i++ {
		k := mkNode(i)
		cl.kernels = append(cl.kernels, k)
		store := ckpt.NewStore(k.Disk())
		cl.stores = append(cl.stores, store)
		ag, err := NewAgent(k, store, DefaultAgentParams())
		if err != nil {
			t.Fatal(err)
		}
		cl.agents = append(cl.agents, ag)
		pod, err := zap.New(k, podName(i), zap.NetConfig{
			IP:  podIP(i),
			MAC: ether.MAC{2, 0, 0, 1, 0, byte(i + 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		w := &ringWorker{ID: i, N: n, Port: 9000, PeerIP: podIP((i + 1) % n), Compute: compute, HeapPages: 1024}
		if _, err := pod.Spawn("worker", w); err != nil {
			t.Fatal(err)
		}
		ag.Manage(pod)
		cl.pods = append(cl.pods, pod)
		cl.workers = append(cl.workers, w)
		job.Members = append(job.Members, Member{Pod: podName(i), Agent: ag.Addr()})
	}
	// Coordinator on its own node.
	ck := mkNode(n)
	cl.kernels = append(cl.kernels, ck)
	cl.coord = NewCoordinator(ck.Stack(), DefaultCoordinatorParams())
	cl.job = job

	connected := false
	cl.coord.Connect(job, func(err error) {
		if err != nil {
			t.Fatalf("Connect: %v", err)
		}
		connected = true
	})
	cl.run(100 * sim.Millisecond)
	if !connected {
		t.Fatal("coordinator never connected to agents")
	}
	return cl
}

func podName(i int) string { return "ring-" + string(rune('a'+i)) }

func (cl *cluster) run(d sim.Duration) {
	cl.t.Helper()
	if err := cl.engine.RunFor(d); err != nil {
		cl.t.Fatal(err)
	}
}

// checkHealthy asserts no worker has recorded a fault or died.
func (cl *cluster) checkHealthy(workers []*ringWorker) {
	cl.t.Helper()
	for i, w := range workers {
		if w.Fault != "" {
			cl.t.Fatalf("worker %d fault: %s", i, w.Fault)
		}
	}
}

// currentWorkers re-resolves worker programs after a restart.
func (cl *cluster) currentWorkers() []*ringWorker {
	cl.t.Helper()
	out := make([]*ringWorker, len(cl.agents))
	for i, ag := range cl.agents {
		pod := ag.Pod(podName(i))
		if pod == nil {
			cl.t.Fatalf("agent %d lost its pod", i)
		}
		proc := pod.Process(1)
		if proc == nil {
			cl.t.Fatalf("pod %d has no process", i)
		}
		out[i] = proc.Program().(*ringWorker)
	}
	return out
}

// runUntil advances in slices until cond or the cap is reached.
func (cl *cluster) runUntil(cond func() bool, cap sim.Duration) bool {
	cl.t.Helper()
	for waited := sim.Duration(0); waited < cap; waited += 20 * sim.Millisecond {
		if cond() {
			return true
		}
		cl.run(20 * sim.Millisecond)
	}
	return cond()
}

func (cl *cluster) checkpoint(opts CheckpointOptions) *CheckpointResult {
	cl.t.Helper()
	var res *CheckpointResult
	var cerr error
	doneFired := false
	cl.coord.Checkpoint(cl.job, opts, func(r *CheckpointResult, err error) {
		res, cerr, doneFired = r, err, true
	})
	if !cl.runUntil(func() bool { return doneFired }, 30*sim.Second) {
		cl.t.Fatal("checkpoint never completed")
	}
	if cerr != nil {
		cl.t.Fatalf("checkpoint: %v", cerr)
	}
	return res
}

func (cl *cluster) restart(seq int) *RestartResult {
	cl.t.Helper()
	var res *RestartResult
	var rerr error
	fired := false
	cl.coord.Restart(cl.job, seq, func(r *RestartResult, err error) {
		res, rerr, fired = r, err, true
	})
	if !cl.runUntil(func() bool { return fired }, 30*sim.Second) {
		cl.t.Fatal("restart never completed")
	}
	if rerr != nil {
		cl.t.Fatalf("restart: %v", rerr)
	}
	return res
}

func TestCoordinatedCheckpointBlocking(t *testing.T) {
	cl := newCluster(t, 4, 200*sim.Microsecond)
	cl.run(2 * sim.Second)
	cl.checkHealthy(cl.workers)
	before := cl.workers[0].Rounds
	if before == 0 {
		t.Fatal("ring never started")
	}

	res := cl.checkpoint(CheckpointOptions{})
	if res.Seq != 1 {
		t.Fatalf("seq = %d", res.Seq)
	}
	if res.Latency <= 0 || res.MaxLocalCheckpoint <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Overhead <= 0 || res.Overhead > 5*sim.Millisecond {
		t.Fatalf("coordination overhead = %v, expected sub-millisecond", res.Overhead)
	}
	if res.Overhead >= res.Latency/10 {
		t.Fatalf("overhead %v not negligible vs latency %v", res.Overhead, res.Latency)
	}
	if got, want := res.Messages, 4*4; got != want {
		t.Fatalf("messages = %d, want %d (O(N))", got, want)
	}
	if seq, ok := cl.coord.CommittedSeq("ring"); !ok || seq != 1 {
		t.Fatalf("committed = %d/%v", seq, ok)
	}

	// The application continues unharmed.
	cl.run(2 * sim.Second)
	cl.checkHealthy(cl.workers)
	if cl.workers[0].Rounds <= before {
		t.Fatal("ring did not progress after checkpoint")
	}
}

func TestCoordinatedRestartAfterCrash(t *testing.T) {
	cl := newCluster(t, 4, 200*sim.Microsecond)
	cl.run(2 * sim.Second)
	cl.checkpoint(CheckpointOptions{})
	roundsAtCkpt := make([]uint64, 4)
	for i, w := range cl.workers {
		roundsAtCkpt[i] = w.Rounds
	}

	// Let it run past the checkpoint, then crash every pod.
	cl.run(2 * sim.Second)
	for _, p := range cl.pods {
		p.Destroy()
	}
	cl.run(100 * sim.Millisecond)

	res := cl.restart(0)
	if res.Latency <= 0 {
		t.Fatalf("restart result: %+v", res)
	}
	if got, want := res.Messages, 4*4; got != want {
		t.Fatalf("restart messages = %d, want %d", got, want)
	}

	workers := cl.currentWorkers()
	// Rolled back to the checkpoint, not to zero and not to the crash
	// point.
	for i, w := range workers {
		if w.Rounds < roundsAtCkpt[i] || w.Rounds > roundsAtCkpt[i]+2 {
			t.Fatalf("worker %d restarted at %d rounds, checkpointed at %d", i, w.Rounds, roundsAtCkpt[i])
		}
	}
	cl.run(2 * sim.Second)
	cl.checkHealthy(workers)
	for i, w := range workers {
		if w.Rounds <= roundsAtCkpt[i] {
			t.Fatalf("worker %d stuck after restart", i)
		}
	}
}

func TestOptimizedProtocolCorrectAndFaster(t *testing.T) {
	cl := newCluster(t, 4, 200*sim.Microsecond)
	cl.run(sim.Second)

	blocking := cl.checkpoint(CheckpointOptions{})
	cl.run(sim.Second)
	optimized := cl.checkpoint(CheckpointOptions{Optimized: true})
	cl.run(sim.Second)
	cl.checkHealthy(cl.workers)

	// Fig. 5(a) latency (to last done) is similar, but the full cycle —
	// which includes how long pods stay frozen — must shrink: with the
	// optimization each node resumes as soon as its own save completes.
	if optimized.CycleLatency >= blocking.CycleLatency {
		t.Fatalf("optimized cycle %v not faster than blocking %v",
			optimized.CycleLatency, blocking.CycleLatency)
	}
	if got, want := optimized.Messages, 5*4; got != want {
		t.Fatalf("optimized messages = %d, want %d", got, want)
	}
}

func TestSequentialCheckpointsAdvanceSeq(t *testing.T) {
	cl := newCluster(t, 2, 200*sim.Microsecond)
	cl.run(sim.Second)
	for want := 1; want <= 3; want++ {
		res := cl.checkpoint(CheckpointOptions{})
		if res.Seq != want {
			t.Fatalf("seq = %d, want %d", res.Seq, want)
		}
		cl.run(500 * sim.Millisecond)
	}
	cl.checkHealthy(cl.workers)
}

func TestIncrementalCoordinatedCheckpoint(t *testing.T) {
	cl := newCluster(t, 2, 200*sim.Microsecond)
	cl.run(sim.Second)
	full := cl.checkpoint(CheckpointOptions{})
	cl.run(50 * sim.Millisecond)
	inc := cl.checkpoint(CheckpointOptions{Incremental: true})
	if inc.TotalImageBytes >= full.TotalImageBytes {
		t.Fatalf("incremental image %d B not smaller than full %d B",
			inc.TotalImageBytes, full.TotalImageBytes)
	}
	// Crash and restart from the incremental chain.
	roundsAt := cl.workers[0].Rounds
	cl.run(sim.Second)
	for _, p := range cl.pods {
		p.Destroy()
	}
	cl.restart(0)
	workers := cl.currentWorkers()
	if workers[0].Rounds > roundsAt+2 || workers[0].Rounds == 0 {
		t.Fatalf("restored rounds = %d, ckpt at ~%d", workers[0].Rounds, roundsAt)
	}
	cl.run(sim.Second)
	cl.checkHealthy(workers)
}

func TestAbortOnAgentFailure(t *testing.T) {
	cl := newCluster(t, 3, 200*sim.Microsecond)
	cl.run(sim.Second)

	// An unknown pod in the job makes one agent report an error; the
	// coordinator must abort and the healthy pods must keep running.
	badJob := &Job{Name: "bad", Members: append([]Member{}, cl.job.Members...)}
	badJob.Members[2].Pod = "ghost"
	fired := false
	cl.coord.Connect(badJob, func(error) {})
	cl.run(50 * sim.Millisecond)
	cl.coord.Checkpoint(badJob, CheckpointOptions{}, func(r *CheckpointResult, err error) {
		fired = true
		if !errors.Is(err, ErrAgentFailed) {
			t.Errorf("err = %v, want ErrAgentFailed", err)
		}
	})
	cl.run(10 * sim.Second)
	if !fired {
		t.Fatal("checkpoint callback never fired")
	}
	// All pods must be running again (aborted agents rolled back).
	cl.run(sim.Second)
	cl.checkHealthy(cl.workers)
	for i, p := range cl.pods {
		if p.Stopped() {
			t.Fatalf("pod %d left stopped after abort", i)
		}
	}
	if _, ok := cl.coord.CommittedSeq("bad"); ok {
		t.Fatal("aborted checkpoint was committed")
	}
}

func TestAbortOnAgentTimeout(t *testing.T) {
	cl := newCluster(t, 3, 200*sim.Microsecond)
	cl.run(sim.Second)
	// Cut one agent's node off the network entirely after connect; its
	// done can never arrive. (Its own pod will stay frozen — that node
	// is "failed" — but the others must roll back.)
	params := DefaultCoordinatorParams()
	params.Timeout = 3 * sim.Second
	coord2 := NewCoordinator(cl.kernels[len(cl.kernels)-1].Stack(), params)
	connected := false
	coord2.Connect(cl.job, func(err error) { connected = err == nil })
	cl.run(100 * sim.Millisecond)
	if !connected {
		t.Fatal("second coordinator failed to connect")
	}
	deadNIC := cl.agents[2].Kernel().Stack().Interfaces()[0].NIC()
	cl.sw.SetLinkDown(deadNIC, true)

	fired := false
	coord2.Checkpoint(cl.job, CheckpointOptions{}, func(r *CheckpointResult, err error) {
		fired = true
		if !errors.Is(err, ErrAborted) {
			t.Errorf("err = %v, want ErrAborted", err)
		}
	})
	cl.run(20 * sim.Second)
	if !fired {
		t.Fatal("timeout abort never fired")
	}
	// The reachable pods must have been rolled back to running.
	for i := 0; i < 2; i++ {
		if cl.pods[i].Stopped() {
			t.Fatalf("pod %d left stopped after timeout abort", i)
		}
	}
}

func TestCheckpointUnknownJobPod(t *testing.T) {
	cl := newCluster(t, 2, 200*sim.Microsecond)
	// Double checkpoint: second call while first in flight must be
	// rejected.
	cl.coord.Checkpoint(cl.job, CheckpointOptions{}, func(*CheckpointResult, error) {})
	rejected := false
	cl.coord.Checkpoint(cl.job, CheckpointOptions{}, func(_ *CheckpointResult, err error) {
		rejected = errors.Is(err, ErrOpInProgress)
	})
	if !rejected {
		t.Fatal("concurrent checkpoint not rejected")
	}
	cl.run(10 * sim.Second)
}

func TestRingSurvivesManyCheckpointCycles(t *testing.T) {
	cl := newCluster(t, 3, 100*sim.Microsecond)
	cl.run(sim.Second)
	for i := 0; i < 5; i++ {
		cl.checkpoint(CheckpointOptions{Optimized: i%2 == 0})
		cl.run(300 * sim.Millisecond)
	}
	// Crash, restart, crash, restart.
	for cycle := 0; cycle < 2; cycle++ {
		cl.checkpoint(CheckpointOptions{})
		cl.run(200 * sim.Millisecond)
		for i, ag := range cl.agents {
			ag.Pod(podName(i)).Destroy()
		}
		cl.restart(0)
		cl.run(500 * sim.Millisecond)
		cl.checkHealthy(cl.currentWorkers())
	}
	workers := cl.currentWorkers()
	for i, w := range workers {
		if w.Rounds == 0 {
			t.Fatalf("worker %d made no progress", i)
		}
	}
}

func TestPrecopyShrinksFreezeAndRestores(t *testing.T) {
	cl := newCluster(t, 3, 200*sim.Microsecond)
	cl.run(sim.Second)

	plain := cl.checkpoint(CheckpointOptions{})
	cl.run(300 * sim.Millisecond)
	pre := cl.checkpoint(CheckpointOptions{
		Precopy: PrecopyConfig{MaxRounds: 3, DirtyThresholdPages: 8},
	})
	cl.run(300 * sim.Millisecond)
	cl.checkHealthy(cl.workers)

	// The pre-copy rounds stream the image while the ring runs; only the
	// residual dirty set is copied under SIGSTOP, so the freeze window
	// must collapse (the paper's O(image) → O(residual) claim).
	if pre.MaxBlocked*5 >= plain.MaxBlocked {
		t.Fatalf("precopy blocked %v vs plain %v — freeze did not shrink 5x",
			pre.MaxBlocked, plain.MaxBlocked)
	}
	// The committed sequence sits at the top of the reserved round block:
	// plain took 1, the precopy epoch occupies 2..5 with the residual at 5.
	if pre.Seq != 5 {
		t.Fatalf("precopy seq = %d, want 5 (rounds 2..4 + residual)", pre.Seq)
	}
	if seq, ok := cl.coord.CommittedSeq("ring"); !ok || seq != 5 {
		t.Fatalf("committed = %d/%v, want 5", seq, ok)
	}

	// Crash every pod and restart from the layered round chain.
	roundsAt := make([]uint64, len(cl.workers))
	for i, w := range cl.workers {
		roundsAt[i] = w.Rounds
	}
	for i, ag := range cl.agents {
		ag.Pod(podName(i)).Destroy()
	}
	cl.restart(0)
	workers := cl.currentWorkers()
	for i, w := range workers {
		if w.Rounds == 0 || w.Rounds > roundsAt[i] {
			t.Fatalf("worker %d restored at %d rounds, checkpoint was before %d",
				i, w.Rounds, roundsAt[i])
		}
	}
	cl.run(sim.Second)
	cl.checkHealthy(workers)
	for i, w := range workers {
		if w.Rounds <= roundsAt[i]/2 {
			t.Fatalf("worker %d stuck after precopy restart", i)
		}
	}
}

func TestPrecopyAbortRollsBackRounds(t *testing.T) {
	cl := newCluster(t, 3, 200*sim.Microsecond)
	cl.run(sim.Second)
	cl.checkpoint(CheckpointOptions{})
	cl.run(300 * sim.Millisecond)

	// An unknown pod makes one agent fail immediately; the healthy agents
	// may already be mid-round. The abort must discard every partial
	// round image and restore the dirty bits, so the next checkpoint is
	// still complete and restorable.
	badJob := &Job{Name: "ring", Members: append([]Member{}, cl.job.Members...)}
	badJob.Members[2].Pod = "ghost"
	fired := false
	cl.coord.Connect(badJob, func(error) {})
	cl.run(50 * sim.Millisecond)
	cl.coord.Checkpoint(badJob, CheckpointOptions{
		Precopy: PrecopyConfig{MaxRounds: 3},
	}, func(r *CheckpointResult, err error) {
		fired = true
		if err == nil {
			t.Error("checkpoint of job with ghost pod succeeded")
		}
	})
	cl.run(10 * sim.Second)
	if !fired {
		t.Fatal("abort callback never fired")
	}
	for i, p := range cl.pods {
		if p.Stopped() {
			t.Fatalf("pod %d left stopped after precopy abort", i)
		}
	}

	// A follow-up incremental precopy checkpoint must still restore
	// correctly: the redirtied pages are recaptured.
	cl.run(300 * sim.Millisecond)
	cl.checkpoint(CheckpointOptions{
		Incremental: true,
		Precopy:     PrecopyConfig{MaxRounds: 2},
	})
	roundsAt := cl.workers[0].Rounds
	for i, ag := range cl.agents {
		ag.Pod(podName(i)).Destroy()
	}
	cl.restart(0)
	workers := cl.currentWorkers()
	if workers[0].Rounds == 0 || workers[0].Rounds > roundsAt {
		t.Fatalf("restored rounds = %d, ckpt before %d", workers[0].Rounds, roundsAt)
	}
	cl.run(sim.Second)
	cl.checkHealthy(workers)
}

func TestCOWResumesBeforeWriteCompletes(t *testing.T) {
	cl := newCluster(t, 3, 200*sim.Microsecond)
	cl.run(sim.Second)

	plain := cl.checkpoint(CheckpointOptions{})
	cl.run(300 * sim.Millisecond)
	cow := cl.checkpoint(CheckpointOptions{COW: true})
	cl.run(300 * sim.Millisecond)
	cl.checkHealthy(cl.workers)

	// Under COW the pods are frozen only for quiesce+capture, not the
	// disk write: blocked time must collapse by an order of magnitude.
	if cow.MaxBlocked*5 >= plain.MaxBlocked {
		t.Fatalf("COW blocked %v vs plain %v — no real overlap", cow.MaxBlocked, plain.MaxBlocked)
	}
	// But the commit (Fig. 5a latency) still waits for the writes.
	if cow.Latency < plain.Latency/2 {
		t.Fatalf("COW latency %v suspiciously small vs %v", cow.Latency, plain.Latency)
	}
	// And a crash right after commit restarts cleanly from the COW image.
	for i, ag := range cl.agents {
		ag.Pod(podName(i)).Destroy()
	}
	cl.restart(0)
	cl.run(500 * sim.Millisecond)
	cl.checkHealthy(cl.currentWorkers())
}
