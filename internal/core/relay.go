package core

import (
	"fmt"

	"cruz/internal/ctl"
	"cruz/internal/trace"
)

// Group-leader relay: the agent-side half of hierarchical coordination.
//
// Under the two-level tree the root sends one <group-checkpoint> (or
// <group-restart>) per group to its deterministic leader. The leader
// relays the per-pod message to every group member — its own pods
// locally, the rest over agent-to-agent connections — and aggregates
// the members' replies, sending one batched message upward per protocol
// phase. The 2PC decision logic stays entirely at the root, which keeps
// commit/abort semantics identical to the flat fan-out: the leader
// forwards the first member error immediately, and the root's abort
// fan-out still reaches every member directly (plus a <group-abort> per
// leader so the relay state closes).

// relayKey is the leader's op-table key for a job's relay. The "grelay/"
// prefix keeps it clear of pod names and replication keys.
func relayKey(job string) string { return "grelay/" + job }

// relayOp tracks one group's relay on the leader: the wait-sets mirror
// the coordinator's ("disabled", "done", "cont" per member pod), the
// aggregates accumulate in member-reply order (deterministic under the
// simulation's total event order).
type relayOp struct {
	*ctl.Op
	job     string
	up      msgSink // toward the root
	members []GroupMember
	restart bool

	disabled []GroupReport // comm-disabled arrivals (pods only)
	reports  []GroupReport // done / restart-done arrivals
	contReps []GroupReport // continue-done arrivals

	span trace.Span
}

// localSink routes a leader-local member's replies into the relay
// aggregation. The hop charges one daemon-CPU message cost — the
// leader's receive processing — but no wire time: leader and member
// share a node, so the reply is local IPC.
type localSink struct{ a *Agent }

func (s localSink) send(m *wireMsg) error {
	a := s.a
	a.cpu.Do(a.params.MsgCost, func() { a.relayMemberMsg(m) })
	return nil
}

// relayFor finds the active relay op covering (pod, seq), or nil.
// Table iteration is key-sorted, so resolution is deterministic.
func (a *Agent) relayFor(pod string, seq int) *relayOp {
	var found *relayOp
	a.table.Each(func(o *ctl.Op) {
		if found != nil || o.Seq != seq {
			return
		}
		rop, ok := o.Data.(*relayOp)
		if !ok {
			return
		}
		for _, g := range rop.members {
			if g.Pod == pod {
				found = rop
				return
			}
		}
	})
	return found
}

// relayByJob finds the active relay op for a job, or nil.
func (a *Agent) relayByJob(job string, seq int) *relayOp {
	if o := a.table.Get(relayKey(job)); o != nil && o.Seq == seq {
		if rop, ok := o.Data.(*relayOp); ok {
			return rop
		}
	}
	return nil
}

// startGroupOp handles <group-checkpoint>/<group-restart>: begin the
// relay op, open its span under the root's context, and fan the per-pod
// message down to every member.
func (a *Agent) startGroupOp(c *ctlConn, m *wireMsg) {
	restart := m.Type == msgGroupRestart
	upDone := msgGroupDone
	if restart {
		upDone = msgGroupRestartDone
	}
	o, err := a.table.Begin("grelay", relayKey(m.Job), m.Seq)
	if err != nil {
		c.send(&wireMsg{Type: upDone, Job: m.Job, Seq: m.Seq, Err: ErrBusy.Error(), ctx: m.ctx})
		return
	}
	rop := &relayOp{Op: o, job: m.Job, up: c, members: m.Group, restart: restart}
	o.Data = rop
	if a.tr.Enabled() {
		kind := "relay.checkpoint"
		if restart {
			kind = "relay.restart"
		}
		// The relay span is the extra hop of the tree: it nests under the
		// root op span and parents every member's agent span, so the
		// critical path still tiles the root.
		rop.span = a.tr.BeginChild(m.ctx, a.kern.Name(), "core", kind,
			trace.Str("job", m.Job), trace.Int("seq", int64(m.Seq)),
			trace.Int("members", int64(len(m.Group))))
	}
	// The span ends exactly once, on completion or failure; the op's
	// removal from the table is what stops further member replies from
	// touching it.
	o.OnFinish(func(_ *ctl.Op, err error) {
		if err != nil {
			rop.span.End(trace.Str("outcome", "aborted"))
			return
		}
		rop.span.End()
	})

	for _, g := range m.Group {
		rop.Expect("done", g.Pod)
		rop.Expect("cont", g.Pod)
		if !restart {
			rop.Expect("disabled", g.Pod)
		}
	}

	// Fan down. The relayed message is the flat protocol's, verbatim,
	// with the relay span as its context — members cannot tell a leader
	// from the root.
	down := msgCheckpoint
	if restart {
		down = msgRestart
	}
	for _, g := range m.Group {
		mm := *m
		mm.Type = down
		mm.Pod = g.Pod
		mm.Job = ""
		mm.Group = nil
		mm.ctx = rop.span.Context()
		a.relaySend(rop, g, &mm)
	}
}

// relaySend delivers one relayed message to a member: leader-local pods
// dispatch on this agent directly (one message cost, no wire), remote
// members go over a peer connection (one send cost; the member's own
// receive cost is charged by its onMsg).
func (a *Agent) relaySend(rop *relayOp, g GroupMember, mm *wireMsg) {
	if g.addrPort() == a.Addr() {
		a.cpu.Do(a.params.MsgCost, func() {
			if rop.Aborted() {
				return
			}
			switch mm.Type {
			case msgCheckpoint:
				a.startCheckpoint(localSink{a}, mm)
			case msgRestart:
				a.startRestart(localSink{a}, mm)
			case msgContinue:
				a.handleContinue(localSink{a}, mm)
			}
		})
		return
	}
	a.cpu.Do(a.params.MsgCost, func() {
		if rop.Aborted() {
			return
		}
		cc, err := a.peerConn(g.addrPort())
		if err != nil {
			a.relayMemberFail(rop, g.Pod, err)
			return
		}
		cc.send(mm)
	})
}

// relayMemberFail forwards a member failure to the root and closes the
// relay. The root fails the whole op and aborts every member directly —
// exactly the flat protocol's abort semantics, one hop later.
func (a *Agent) relayMemberFail(rop *relayOp, pod string, err error) {
	if !rop.Active() {
		return
	}
	up := msgGroupDone
	if rop.restart {
		up = msgGroupRestartDone
	}
	rop.up.send(&wireMsg{
		Type: up, Job: rop.job, Seq: rop.Seq, Pod: pod,
		Err: err.Error(), ctx: rop.span.Context(),
	})
	rop.Fail(fmt.Errorf("%w: pod %s: %v", ErrAgentFailed, pod, err))
}

// relayMemberMsg aggregates one member reply. Remote members' replies
// arrive through onMsg; leader-local ones through localSink. Replies
// for which no relay is active (late arrivals after an abort) are
// dropped, as the root drops strays.
func (a *Agent) relayMemberMsg(m *wireMsg) {
	rop := a.relayFor(m.Pod, m.Seq)
	if rop == nil {
		return
	}
	if m.Type == msgReplicated {
		// Placement reports are root bookkeeping, not votes: forward
		// verbatim (the member addressed its coordinator, which is us).
		rop.up.send(m)
		return
	}
	if a.tr.Enabled() {
		a.tr.InstantCtx(rop.span.Context(), a.kern.Name(), "core", "relay.recv."+m.Type.String(),
			trace.Str("pod", m.Pod), trace.Int("seq", int64(m.Seq)))
	}
	if m.Err != "" {
		a.relayMemberFail(rop, m.Pod, fmt.Errorf("%s", m.Err))
		return
	}
	switch m.Type {
	case msgCommDisabled:
		if !rop.Arrive("disabled", m.Pod) {
			return
		}
		rop.disabled = append(rop.disabled, GroupReport{Pod: m.Pod})
		if rop.Cleared("disabled") {
			rop.up.send(&wireMsg{
				Type: msgGroupDisabled, Job: rop.job, Seq: rop.Seq,
				Reports: rop.disabled, ctx: rop.span.Context(),
			})
		}
	case msgDone, msgRestartDone:
		if !rop.Arrive("done", m.Pod) {
			return
		}
		rop.reports = append(rop.reports, GroupReport{
			Pod:           m.Pod,
			LocalDuration: m.LocalDuration,
			ImageBytes:    m.ImageBytes,
		})
		if rop.Cleared("done") {
			up := msgGroupDone
			if rop.restart {
				up = msgGroupRestartDone
			}
			rop.up.send(&wireMsg{
				Type: up, Job: rop.job, Seq: rop.Seq,
				Reports: rop.reports, ctx: rop.span.Context(),
			})
			if rop.Cleared("cont") {
				rop.Finish()
			}
		}
	case msgContinueDone:
		if !rop.Arrive("cont", m.Pod) {
			return
		}
		rop.contReps = append(rop.contReps, GroupReport{
			Pod:             m.Pod,
			LocalDuration:   m.LocalDuration,
			BlockedDuration: m.BlockedDuration,
		})
		if rop.Cleared("cont") {
			rop.up.send(&wireMsg{
				Type: msgGroupContDone, Job: rop.job, Seq: rop.Seq,
				Reports: rop.contReps, ctx: rop.span.Context(),
			})
			if rop.Cleared("done") {
				rop.Finish()
			}
		}
	}
}

// handleGroupContinue fans the root's <continue> down to the group.
func (a *Agent) handleGroupContinue(m *wireMsg) {
	rop := a.relayByJob(m.Job, m.Seq)
	if rop == nil {
		return
	}
	for _, g := range rop.members {
		mm := &wireMsg{Type: msgContinue, Seq: m.Seq, Pod: g.Pod, ctx: rop.span.Context()}
		a.relaySend(rop, g, mm)
	}
}

// handleGroupAbort closes the relay after the root aborted the op. The
// members' own rollbacks are driven by the root's direct <abort>s; the
// leader only has aggregation state to discard.
func (a *Agent) handleGroupAbort(m *wireMsg) {
	if rop := a.relayByJob(m.Job, m.Seq); rop != nil {
		rop.Fail(ErrAborted)
	}
}
