package core

import (
	"errors"
	"fmt"

	"cruz/internal/coord"
	"cruz/internal/ctl"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/trace"
)

// Errors surfaced by the coordinator.
var (
	ErrOpInProgress = errors.New("core: an operation is already in progress for this job")
	ErrAborted      = errors.New("core: operation aborted")
	ErrAgentFailed  = errors.New("core: agent reported failure")
	ErrNotConnected = errors.New("core: agent connection not established")
)

// Member is one piece of a distributed job: the pod and the agent that
// manages it. The paper uses "node" and "pod" interchangeably (§5).
type Member struct {
	Pod   string
	Agent tcpip.AddrPort
}

// Job names a distributed application: a set of pods across nodes that
// must checkpoint and restart consistently.
type Job struct {
	Name    string
	Members []Member
}

// CoordinatorParams models the coordinator daemon's costs.
type CoordinatorParams struct {
	// MsgCost is the CPU cost to build/send or receive/process one
	// control message. The coordinator is single-threaded, so fan-out to
	// N agents serializes — the origin of the per-node coordination
	// overhead slope in Fig. 5(b).
	MsgCost sim.Duration
	// Timeout aborts an operation if agents stay silent this long
	// (0 disables; the failure-handling extension of §5).
	Timeout sim.Duration
	// HeartbeatEvery is the membership ping period once a job is
	// watched (0 = DefaultHeartbeatEvery).
	HeartbeatEvery sim.Duration
	// LeaseTimeout declares a node failed after this much pong silence
	// (0 = DefaultLeaseTimeout).
	LeaseTimeout sim.Duration
	// GroupSize enables hierarchical (two-level tree) coordination when
	// > 1: members partition into contiguous groups of this size, and the
	// root exchanges aggregate messages with each group's deterministic
	// leader instead of per-pod messages with every member. The 2PC
	// decision logic is unchanged — the root still tracks every pod's
	// vote, leaders only batch the transport — so commit/abort outcomes
	// are identical to the flat fan-out. 0 or 1 keeps flat. A good value
	// is coord.GroupSizeFor(N) ≈ √N.
	GroupSize int
}

// Default membership timings: the lease spans several heartbeats so one
// delayed pong never trips failure detection.
const (
	DefaultHeartbeatEvery = 100 * sim.Millisecond
	DefaultLeaseTimeout   = 350 * sim.Millisecond
)

// DefaultCoordinatorParams returns testbed-calibrated costs.
func DefaultCoordinatorParams() CoordinatorParams {
	return CoordinatorParams{MsgCost: 20 * sim.Microsecond}
}

func (p CoordinatorParams) heartbeatEvery() sim.Duration {
	if p.HeartbeatEvery > 0 {
		return p.HeartbeatEvery
	}
	return DefaultHeartbeatEvery
}

func (p CoordinatorParams) leaseTimeout() sim.Duration {
	if p.LeaseTimeout > 0 {
		return p.LeaseTimeout
	}
	return DefaultLeaseTimeout
}

// PrecopyConfig tunes pre-copy checkpointing: the agent streams the
// pod's memory in live rounds — round 0 the whole image, each later
// round only the pages dirtied since the previous round — and stops the
// pod just for the final residual set. Freeze time then scales with the
// residual dirty set, not the image size.
type PrecopyConfig struct {
	// MaxRounds caps the live rounds (0 disables pre-copy entirely).
	MaxRounds int
	// DirtyThresholdPages ends the rounds as soon as the live dirty set
	// is at most this many pages: the residual stop-and-copy of that
	// little memory is cheaper than another round.
	DirtyThresholdPages int
	// MinRoundGain is the minimum fractional shrink of the dirty set a
	// round must achieve for another round to be worth taking. A
	// workload writing faster than the disk drains never converges;
	// this detects that and stops (0 = no check).
	MinRoundGain float64
}

// CheckpointOptions selects the protocol variant.
type CheckpointOptions struct {
	// Optimized selects the Fig. 4 early-continue protocol.
	Optimized bool
	// Incremental saves only pages dirtied since the previous capture.
	Incremental bool
	// COW selects the §5.2 copy-on-write optimization: pods resume as
	// soon as every node has *captured* its state, overlapping the image
	// writes with application execution.
	COW bool
	// Dedup stores the checkpoint content-addressed: a small manifest
	// plus refcounted page chunks, writing only chunks the store has
	// never seen. Captures record page hashes (cached; only pages
	// written since the last hashing capture cost a recompute).
	Dedup bool
	// Pipeline splits the agent's image write into segments, encoding
	// segment k on the CPU while segment k-1 is on the disk.
	Pipeline bool
	// Replicas streams each committed image to this many peer nodes
	// after the local save, off the critical path — the recovery
	// prerequisite that replaces manual image copying.
	Replicas int
	// Precopy, when MaxRounds > 0, streams the image in live rounds
	// before the stop-and-copy, shrinking the freeze to the residual
	// dirty set. The rounds are abortable background work: a failure
	// mid-round aborts the whole epoch and the agents discard the
	// partial round chain — the committed sequence never moves.
	Precopy PrecopyConfig
}

// PodReport is one agent's reported local timings.
type PodReport struct {
	Pod           string
	LocalDuration sim.Duration
	ImageBytes    int64
}

// CheckpointResult carries the measurements the paper's evaluation
// reports.
type CheckpointResult struct {
	Seq int
	// Latency is Fig. 5(a)'s metric: first <checkpoint> sent to last
	// <done> received at the coordinator.
	Latency sim.Duration
	// CycleLatency extends to the last <continue-done>.
	CycleLatency sim.Duration
	// MaxLocalCheckpoint and MaxLocalContinue are the slowest agents'
	// local phases.
	MaxLocalCheckpoint sim.Duration
	MaxLocalContinue   sim.Duration
	// MaxBlocked and MinBlocked bound how long pods were actually
	// frozen — the application-visible disruption. The Fig. 4
	// optimization shrinks MinBlocked (a fast node no longer waits for
	// the slowest save); COW shrinks both.
	MaxBlocked sim.Duration
	MinBlocked sim.Duration
	// Overhead is Fig. 5(b)'s metric: CycleLatency minus the global cost
	// of the local operations (their max across nodes, since they run in
	// parallel).
	Overhead sim.Duration
	// Messages counts control messages sent and received by the
	// coordinator for this operation — 4N for the blocking protocol,
	// 5N optimized: O(N), versus O(N²) for flushing baselines.
	Messages int
	// TotalImageBytes sums the agents' image sizes.
	TotalImageBytes int64
	// PerPod holds each agent's report.
	PerPod []PodReport
}

// RestartResult mirrors CheckpointResult for coordinated restart.
type RestartResult struct {
	Seq              int
	Latency          sim.Duration
	CycleLatency     sim.Duration
	MaxLocalRestore  sim.Duration
	MaxLocalContinue sim.Duration
	Overhead         sim.Duration
	Messages         int
	PerPod           []PodReport
}

// Coordinator drives the global protocol of Fig. 2 / Fig. 4, plus the
// membership and recovery extension: heartbeat/lease failure detection
// over registered nodes and automatic restart of watched jobs. It runs
// as a daemon on its own node (distinct from the application nodes, as
// in the paper's experiments).
type Coordinator struct {
	stack  *tcpip.Stack
	params CoordinatorParams
	cpu    ctl.Serializer
	tr     *trace.Tracer

	conns map[tcpip.AddrPort]*ctlConn
	table *ctl.Table

	// committed tracks the last globally committed checkpoint per job —
	// the atomicity record of the two-phase commit.
	committed map[string]int
	nextSeq   map[string]int

	// Membership and recovery state (recovery.go).
	nodes      []*nodeInfo
	nodeByAddr map[tcpip.AddrPort]*nodeInfo
	watches    []*watch
	ticker     *sim.Ticker
	// holders records which agents hold each committed (pod, seq) image —
	// fed by commits, <replicated> reports, and completed fetches.
	holders map[string]map[int]map[tcpip.AddrPort]bool
	// ecHolders records which agents hold each erasure-coded shard set's
	// subsets, by ring position — fed by <ec-holding> reports. Recovery
	// consults it when no full image survives: any M live positions
	// reconstruct.
	ecHolders map[string]map[int]*ecSetHolders
}

// ecSetHolders is the shard registry for one erasure-coded (pod, seq):
// the data-shard count M and each ring position's holder.
type ecSetHolders struct {
	m     int
	byPos map[int]tcpip.AddrPort
}

// coordOp is one coordinated checkpoint or restart: the lifecycle lives
// in the embedded ctl.Op (wait-sets "done", "disabled", "cont"), the
// measurements here.
type coordOp struct {
	*ctl.Op
	job        *Job
	restart    bool
	opts       CheckpointOptions
	doneAt     sim.Time
	maxLocal   sim.Duration
	maxCont    sim.Duration
	maxBlocked sim.Duration
	minBlocked sim.Duration
	reports    []PodReport
	msgBase    int
	span       trace.Span
	// groups is the op's aggregation tree (nil = flat fan-out). Computed
	// once per op from the member order and node liveness, so a leader
	// whose lease expired before the op began is deterministically
	// replaced by the next live member of its group.
	groups []coord.Group
}

// NewCoordinator creates a coordinator on the given node's stack.
func NewCoordinator(stack *tcpip.Stack, params CoordinatorParams) *Coordinator {
	return &Coordinator{
		stack:      stack,
		params:     params,
		cpu:        ctl.Serializer{Engine: stack.Engine()},
		tr:         trace.FromEngine(stack.Engine()),
		conns:      make(map[tcpip.AddrPort]*ctlConn),
		table:      ctl.NewTable(stack.Engine()),
		committed:  make(map[string]int),
		nextSeq:    make(map[string]int),
		nodeByAddr: make(map[tcpip.AddrPort]*nodeInfo),
		holders:    make(map[string]map[int]map[tcpip.AddrPort]bool),
		ecHolders:  make(map[string]map[int]*ecSetHolders),
	}
}

// CommittedSeq returns the last committed checkpoint sequence for a job.
func (c *Coordinator) CommittedSeq(job string) (int, bool) {
	seq, ok := c.committed[job]
	return seq, ok
}

// OpenOps returns the number of in-flight coordinated operations — the
// leak check recovery tests rely on.
func (c *Coordinator) OpenOps() int { return c.table.Len() }

// Connect establishes control connections to every agent of the job,
// invoking done when all are up (or with the first dial error).
func (c *Coordinator) Connect(job *Job, done func(error)) {
	addrs := make([]tcpip.AddrPort, 0, len(job.Members))
	for _, m := range job.Members {
		addrs = append(addrs, m.Agent)
	}
	c.connectAddrs(addrs, done)
}

// connectAddrs dials any not-yet-connected addresses, invoking done when
// every one is established.
func (c *Coordinator) connectAddrs(addrs []tcpip.AddrPort, done func(error)) {
	remaining := 0
	var failed error
	check := func() {
		if remaining == 0 && done != nil {
			done(failed)
			done = nil
		}
	}
	for _, addr := range addrs {
		addr := addr
		if _, ok := c.conns[addr]; ok {
			continue
		}
		tc, err := c.stack.DialTCP(tcpip.AddrPort{}, addr)
		if err != nil {
			if done != nil {
				done(err)
				done = nil
			}
			return
		}
		remaining++
		cc := newCtlConn(tc, c.onMsg, func(_ *ctlConn, err error) { c.onConnError(addr, err) })
		c.conns[addr] = cc
		established := false
		tc.SetNotify(func() {
			cc.Pump()
			if !established && tc.Established() {
				established = true
				remaining--
				check()
			}
			if err := tc.Err(); err != nil && failed == nil {
				failed = err
				remaining = 0
				check()
			}
		})
	}
	check()
}

// onConnError tears down a broken agent connection.
func (c *Coordinator) onConnError(addr tcpip.AddrPort, _ error) {
	delete(c.conns, addr)
}

// connFor finds the member's control connection.
func (c *Coordinator) connFor(m Member) (*ctlConn, error) {
	cc, ok := c.conns[m.Agent]
	if !ok || !cc.TCP().Established() {
		return nil, fmt.Errorf("%w: %s", ErrNotConnected, m.Agent)
	}
	return cc, nil
}

// msgCount sums message counters across the job's connections.
func (c *Coordinator) msgCount(job *Job) int {
	n := 0
	seen := map[tcpip.AddrPort]bool{}
	for _, m := range job.Members {
		if seen[m.Agent] {
			continue
		}
		seen[m.Agent] = true
		if cc, ok := c.conns[m.Agent]; ok {
			n += cc.Sent + cc.Received
		}
	}
	return n
}

// beginJobOp registers a coordinated op for the job, rejecting overlap
// with any other operation on it (including an in-flight recovery —
// except for the restart that recovery itself drives).
func (c *Coordinator) beginJobOp(kind string, job *Job, seq int, fromRecovery bool) (*coordOp, error) {
	if !fromRecovery && c.table.Get(recoveryKey(job.Name)) != nil {
		return nil, ErrOpInProgress
	}
	o, err := c.table.Begin(kind, job.Name, seq)
	if err != nil {
		return nil, ErrOpInProgress
	}
	op := &coordOp{Op: o, job: job, msgBase: c.msgCount(job)}
	o.Data = op
	// Failure fans <abort> out to every member before the finish hook
	// reports the error. This stays a direct fan-out even under the
	// hierarchical tree — abort is the exceptional path, and sending it
	// point-to-point preserves the flat protocol's semantics when the
	// failed party is a leader. Leaders additionally get <group-abort>
	// so their relay state closes.
	o.OnFail(func(_ *ctl.Op, err error) {
		for _, m := range job.Members {
			m := m
			c.cpu.Do(c.params.MsgCost, func() {
				if cc, cerr := c.connFor(m); cerr == nil {
					cc.send(&wireMsg{Type: msgAbort, Seq: seq, Pod: m.Pod, ctx: op.span.Context()})
				}
			})
		}
		for _, g := range op.groups {
			if g.Leader < 0 {
				continue
			}
			leader := job.Members[g.Leader]
			c.cpu.Do(c.params.MsgCost, func() {
				if cc, cerr := c.connFor(leader); cerr == nil {
					cc.send(&wireMsg{Type: msgGroupAbort, Job: job.Name, Seq: seq, ctx: op.span.Context()})
				}
			})
		}
	})
	return op, nil
}

// memberAlive reports whether a member's node is currently believed
// alive. Nodes the membership layer has never registered are presumed
// alive (tests and small clusters run without heartbeats).
func (c *Coordinator) memberAlive(m Member) bool {
	if ni, ok := c.nodeByAddr[m.Agent]; ok {
		return ni.alive
	}
	return true
}

// planGroups computes the op's aggregation tree, or nil for the flat
// fan-out. Group boundaries depend only on member order and GroupSize;
// liveness picks each group's leader, so a lease-expired leader is
// replaced by the next live member of its group — deterministically,
// with no election traffic.
func (c *Coordinator) planGroups(job *Job) []coord.Group {
	if c.params.GroupSize <= 1 || len(job.Members) <= 1 {
		return nil
	}
	return coord.Plan(len(job.Members), c.params.GroupSize, func(i int) bool {
		return c.memberAlive(job.Members[i])
	})
}

// sendGroupStart fans one <group-checkpoint>/<group-restart> per leader,
// carrying the group's relay list. A group with no live member fails
// the op outright — the flat fan-out would have failed on the first
// dead member's connection the same way.
func (c *Coordinator) sendGroupStart(op *coordOp, mk func(m Member) *wireMsg) {
	job := op.job
	for _, g := range op.groups {
		if g.Leader < 0 {
			op.Fail(fmt.Errorf("%w: group of %s has no live member", ErrNotConnected, job.Name))
			return
		}
		leader := job.Members[g.Leader]
		members := make([]GroupMember, 0, len(g.Members))
		for _, idx := range g.Members {
			m := job.Members[idx]
			members = append(members, GroupMember{Pod: m.Pod, IP: m.Agent.Addr, Port: m.Agent.Port})
		}
		c.cpu.Do(c.params.MsgCost, func() {
			cc, err := c.connFor(leader)
			if err != nil {
				op.Fail(err)
				return
			}
			wm := mk(leader)
			wm.Job = job.Name
			wm.Group = members
			cc.send(wm)
		})
	}
}

// Checkpoint runs one coordinated checkpoint of the job, invoking done
// with the result.
func (c *Coordinator) Checkpoint(job *Job, opts CheckpointOptions, done func(*CheckpointResult, error)) {
	// A pre-copy epoch consumes a block of sequence numbers: the live
	// rounds chain through (seq-MaxRounds, seq) and only the residual at
	// seq is ever committed, so an aborted epoch leaves a hole, never a
	// dangling base.
	stride := 1
	if opts.Precopy.MaxRounds > 0 {
		stride = opts.Precopy.MaxRounds + 1
	}
	c.nextSeq[job.Name] += stride
	seq := c.nextSeq[job.Name]
	op, err := c.beginJobOp("checkpoint", job, seq, false)
	if err != nil {
		c.nextSeq[job.Name] -= stride
		done(nil, err)
		return
	}
	op.opts = opts
	if c.tr.Enabled() {
		// The op root: every agent span, phase, replication exchange, and
		// coordinator instant of this checkpoint hangs off this context.
		op.span = c.tr.BeginOp(c.stack.Name(), "core", "checkpoint",
			trace.Str("job", job.Name), trace.Int("seq", int64(seq)),
			trace.Int("members", int64(len(job.Members))))
	}
	op.OnFinish(func(_ *ctl.Op, err error) {
		if err != nil {
			op.span.End(trace.Str("err", err.Error()))
			done(nil, err)
			return
		}
		c.committed[job.Name] = seq
		c.recordCommitHolders(job, seq)
		if c.tr.Enabled() {
			c.tr.InstantCtx(op.span.Context(), c.stack.Name(), "core", "commit",
				trace.Str("job", job.Name), trace.Int("seq", int64(seq)))
		}
		op.span.End()
		now := c.stack.Engine().Now()
		res := &CheckpointResult{
			Seq:                seq,
			Latency:            op.doneAt.Sub(op.Started()),
			CycleLatency:       now.Sub(op.Started()),
			MaxLocalCheckpoint: op.maxLocal,
			MaxLocalContinue:   op.maxCont,
			MaxBlocked:         op.maxBlocked,
			MinBlocked:         op.minBlocked,
			Messages:           c.msgCount(job) - op.msgBase,
			PerPod:             op.reports,
		}
		res.Overhead = res.CycleLatency - res.MaxLocalCheckpoint - res.MaxLocalContinue
		for _, r := range op.reports {
			res.TotalImageBytes += r.ImageBytes
		}
		done(res, nil)
	})

	// Step 1: send <checkpoint> to all agents (serialized daemon CPU).
	// The root's wait-sets always track every pod — under the tree the
	// leaders batch the transport, never the decision.
	for _, m := range job.Members {
		op.Expect("done", m.Pod)
		op.Expect("disabled", m.Pod)
		op.Expect("cont", m.Pod)
	}
	mkCkpt := func(m Member) *wireMsg {
		return &wireMsg{
			Type:                  msgCheckpoint,
			Seq:                   seq,
			Pod:                   m.Pod,
			ctx:                   op.span.Context(),
			Incremental:           opts.Incremental,
			Optimized:             opts.Optimized,
			COW:                   opts.COW,
			Dedup:                 opts.Dedup,
			Pipeline:              opts.Pipeline,
			Replicas:              opts.Replicas,
			PrecopyRounds:         opts.Precopy.MaxRounds,
			PrecopyThresholdPages: opts.Precopy.DirtyThresholdPages,
			PrecopyMinGain:        opts.Precopy.MinRoundGain,
		}
	}
	if op.groups = c.planGroups(job); op.groups != nil {
		c.sendGroupStart(op, func(leader Member) *wireMsg {
			wm := mkCkpt(leader)
			wm.Type = msgGroupCheckpoint
			wm.Pod = ""
			return wm
		})
	} else {
		for _, m := range job.Members {
			m := m
			c.cpu.Do(c.params.MsgCost, func() {
				cc, err := c.connFor(m)
				if err != nil {
					op.Fail(err)
					return
				}
				cc.send(mkCkpt(m))
			})
		}
	}
	if c.params.Timeout > 0 {
		op.ArmTimeout(c.params.Timeout, fmt.Errorf("%w: timeout after %v", ErrAborted, c.params.Timeout))
	}
}

// Restart runs a coordinated restart of the job from checkpoint seq
// (0 = latest committed).
func (c *Coordinator) Restart(job *Job, seq int, done func(*RestartResult, error)) {
	c.runRestart(job, seq, false, trace.SpanContext{}, done)
}

// runRestart is the restart driver; fromRecovery lets an in-flight
// recovery restart the job past its own table entry, and parent (set by
// recovery) nests the restart inside the recovery op's span tree instead
// of opening a fresh root.
func (c *Coordinator) runRestart(job *Job, seq int, fromRecovery bool, parent trace.SpanContext, done func(*RestartResult, error)) {
	if seq == 0 {
		seq = c.committed[job.Name]
	}
	op, err := c.beginJobOp("restart", job, seq, fromRecovery)
	if err != nil {
		done(nil, err)
		return
	}
	op.restart = true
	if c.tr.Enabled() {
		args := []trace.Arg{
			trace.Str("job", job.Name), trace.Int("seq", int64(seq)),
			trace.Int("members", int64(len(job.Members))),
		}
		if parent.Zero() {
			op.span = c.tr.BeginOp(c.stack.Name(), "core", "restart", args...)
		} else {
			op.span = c.tr.BeginChild(parent, c.stack.Name(), "core", "restart", args...)
		}
	}
	op.OnFinish(func(_ *ctl.Op, err error) {
		if err != nil {
			op.span.End(trace.Str("err", err.Error()))
			done(nil, err)
			return
		}
		op.span.End()
		now := c.stack.Engine().Now()
		res := &RestartResult{
			Seq:              seq,
			Latency:          op.doneAt.Sub(op.Started()),
			CycleLatency:     now.Sub(op.Started()),
			MaxLocalRestore:  op.maxLocal,
			MaxLocalContinue: op.maxCont,
			Messages:         c.msgCount(job) - op.msgBase,
			PerPod:           op.reports,
		}
		res.Overhead = res.CycleLatency - res.MaxLocalRestore - res.MaxLocalContinue
		done(res, nil)
	})
	for _, m := range job.Members {
		op.Expect("done", m.Pod)
		op.Expect("cont", m.Pod)
	}
	if op.groups = c.planGroups(job); op.groups != nil {
		c.sendGroupStart(op, func(leader Member) *wireMsg {
			return &wireMsg{Type: msgGroupRestart, Seq: seq, ctx: op.span.Context()}
		})
	} else {
		for _, m := range job.Members {
			m := m
			c.cpu.Do(c.params.MsgCost, func() {
				cc, err := c.connFor(m)
				if err != nil {
					op.Fail(err)
					return
				}
				cc.send(&wireMsg{Type: msgRestart, Seq: seq, Pod: m.Pod, ctx: op.span.Context()})
			})
		}
	}
	if c.params.Timeout > 0 {
		op.ArmTimeout(c.params.Timeout, fmt.Errorf("%w: timeout after %v", ErrAborted, c.params.Timeout))
	}
}

// opForPod locates the active coordinated operation covering a pod
// report. Table iteration is key-sorted, so resolution is deterministic.
func (c *Coordinator) opForPod(pod string, seq int) *coordOp {
	var found *coordOp
	c.table.Each(func(o *ctl.Op) {
		if found != nil || o.Seq != seq {
			return
		}
		op, ok := o.Data.(*coordOp)
		if !ok {
			return
		}
		for _, m := range op.job.Members {
			if m.Pod == pod {
				found = op
				return
			}
		}
	})
	return found
}

// onMsg handles agent replies.
func (c *Coordinator) onMsg(cc *ctlConn, m *wireMsg) {
	c.cpu.Do(c.params.MsgCost, func() {
		switch m.Type {
		case msgPong:
			c.handlePong(cc, m)
			return
		case msgReplicated:
			c.handleReplicated(m)
			return
		case msgECHolding:
			c.handleECHolding(m)
			return
		case msgFetchDone:
			c.handleFetchDone(m)
			return
		case msgMigrateDone:
			c.handleMigrateDone(m)
			return
		case msgMigrateSrcDone:
			c.handleMigrateSrcDone(m)
			return
		}
		switch m.Type {
		case msgGroupDisabled, msgGroupDone, msgGroupRestartDone, msgGroupContDone:
			c.handleGroupMsg(m)
			return
		}
		op := c.opForPod(m.Pod, m.Seq)
		if op == nil {
			return
		}
		if c.tr.Enabled() {
			c.tr.InstantCtx(op.span.Context(), c.stack.Name(), "core", "recv."+m.Type.String(),
				trace.Str("pod", m.Pod), trace.Int("seq", int64(m.Seq)))
		}
		if m.Err != "" {
			op.Fail(fmt.Errorf("%w: pod %s: %s", ErrAgentFailed, m.Pod, m.Err))
			return
		}
		switch m.Type {
		case msgCommDisabled:
			c.arriveDisabled(op, m.Pod)
		case msgDone, msgRestartDone:
			c.arriveDone(op, GroupReport{Pod: m.Pod, LocalDuration: m.LocalDuration, ImageBytes: m.ImageBytes})
		case msgContinueDone:
			c.arriveCont(op, GroupReport{Pod: m.Pod, LocalDuration: m.LocalDuration, BlockedDuration: m.BlockedDuration})
		}
	})
}

// handleGroupMsg applies a leader's batched aggregate: the identical
// per-pod arrival logic as the flat fan-out, replayed over the batch in
// the leader's (deterministic) arrival order. Commit/abort decisions
// therefore cannot differ between the two transports.
func (c *Coordinator) handleGroupMsg(m *wireMsg) {
	o := c.table.Get(m.Job)
	if o == nil || o.Seq != m.Seq {
		return
	}
	op, ok := o.Data.(*coordOp)
	if !ok {
		return
	}
	if c.tr.Enabled() {
		c.tr.InstantCtx(op.span.Context(), c.stack.Name(), "core", "recv."+m.Type.String(),
			trace.Str("job", m.Job), trace.Int("seq", int64(m.Seq)),
			trace.Int("batch", int64(len(m.Reports))))
	}
	if m.Err != "" {
		op.Fail(fmt.Errorf("%w: pod %s: %s", ErrAgentFailed, m.Pod, m.Err))
		return
	}
	for _, r := range m.Reports {
		if !op.Active() {
			return
		}
		switch m.Type {
		case msgGroupDisabled:
			c.arriveDisabled(op, r.Pod)
		case msgGroupDone, msgGroupRestartDone:
			c.arriveDone(op, r)
		case msgGroupContDone:
			c.arriveCont(op, r)
		}
	}
}

// arriveDisabled handles one pod's <comm-disabled> vote.
// Fig. 4: all communication disabled -> early continue.
func (c *Coordinator) arriveDisabled(op *coordOp, pod string) {
	if op.Arrive("disabled", pod) {
		if (op.opts.Optimized || op.opts.COW) && op.Cleared("disabled") {
			c.sendContinue(op)
		}
	}
}

// arriveDone handles one pod's <done>/<restart-done> vote and report.
func (c *Coordinator) arriveDone(op *coordOp, r GroupReport) {
	if !op.Arrive("done", r.Pod) {
		return
	}
	if r.LocalDuration > op.maxLocal {
		op.maxLocal = r.LocalDuration
	}
	op.reports = append(op.reports, PodReport{
		Pod:           r.Pod,
		LocalDuration: r.LocalDuration,
		ImageBytes:    r.ImageBytes,
	})
	if op.Cleared("done") {
		op.doneAt = c.stack.Engine().Now()
		if (!op.opts.Optimized && !op.opts.COW) || op.restart {
			c.sendContinue(op)
		} else if op.Cleared("cont") {
			// COW/optimized: continues may have completed before
			// the last image write finished.
			op.Finish()
		}
	}
}

// arriveCont handles one pod's <continue-done>.
func (c *Coordinator) arriveCont(op *coordOp, r GroupReport) {
	if !op.Arrive("cont", r.Pod) {
		return
	}
	if r.LocalDuration > op.maxCont {
		op.maxCont = r.LocalDuration
	}
	if r.BlockedDuration > op.maxBlocked {
		op.maxBlocked = r.BlockedDuration
	}
	if op.minBlocked == 0 || r.BlockedDuration < op.minBlocked {
		op.minBlocked = r.BlockedDuration
	}
	if op.Cleared("cont") && op.Cleared("done") {
		op.Finish()
	}
}

// sendContinue issues Step 3 of Fig. 2 — per leader under the tree,
// per member flat.
func (c *Coordinator) sendContinue(op *coordOp) {
	if op.groups != nil {
		for _, g := range op.groups {
			if g.Leader < 0 {
				continue
			}
			leader := op.job.Members[g.Leader]
			c.cpu.Do(c.params.MsgCost, func() {
				if cc, err := c.connFor(leader); err == nil {
					cc.send(&wireMsg{Type: msgGroupContinue, Job: op.job.Name, Seq: op.Seq, ctx: op.span.Context()})
				}
			})
		}
		return
	}
	for _, m := range op.job.Members {
		m := m
		c.cpu.Do(c.params.MsgCost, func() {
			if cc, err := c.connFor(m); err == nil {
				cc.send(&wireMsg{Type: msgContinue, Seq: op.Seq, Pod: m.Pod, ctx: op.span.Context()})
			}
		})
	}
}
