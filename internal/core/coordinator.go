package core

import (
	"errors"
	"fmt"

	"cruz/internal/ctl"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/trace"
)

// Errors surfaced by the coordinator.
var (
	ErrOpInProgress = errors.New("core: an operation is already in progress for this job")
	ErrAborted      = errors.New("core: operation aborted")
	ErrAgentFailed  = errors.New("core: agent reported failure")
	ErrNotConnected = errors.New("core: agent connection not established")
)

// Member is one piece of a distributed job: the pod and the agent that
// manages it. The paper uses "node" and "pod" interchangeably (§5).
type Member struct {
	Pod   string
	Agent tcpip.AddrPort
}

// Job names a distributed application: a set of pods across nodes that
// must checkpoint and restart consistently.
type Job struct {
	Name    string
	Members []Member
}

// CoordinatorParams models the coordinator daemon's costs.
type CoordinatorParams struct {
	// MsgCost is the CPU cost to build/send or receive/process one
	// control message. The coordinator is single-threaded, so fan-out to
	// N agents serializes — the origin of the per-node coordination
	// overhead slope in Fig. 5(b).
	MsgCost sim.Duration
	// Timeout aborts an operation if agents stay silent this long
	// (0 disables; the failure-handling extension of §5).
	Timeout sim.Duration
}

// DefaultCoordinatorParams returns testbed-calibrated costs.
func DefaultCoordinatorParams() CoordinatorParams {
	return CoordinatorParams{MsgCost: 20 * sim.Microsecond}
}

// CheckpointOptions selects the protocol variant.
type CheckpointOptions struct {
	// Optimized selects the Fig. 4 early-continue protocol.
	Optimized bool
	// Incremental saves only pages dirtied since the previous capture.
	Incremental bool
	// COW selects the §5.2 copy-on-write optimization: pods resume as
	// soon as every node has *captured* its state, overlapping the image
	// writes with application execution.
	COW bool
	// Dedup stores the checkpoint content-addressed: a small manifest
	// plus refcounted page chunks, writing only chunks the store has
	// never seen. Captures record page hashes (cached; only pages
	// written since the last hashing capture cost a recompute).
	Dedup bool
	// Pipeline splits the agent's image write into segments, encoding
	// segment k on the CPU while segment k-1 is on the disk.
	Pipeline bool
}

// PodReport is one agent's reported local timings.
type PodReport struct {
	Pod           string
	LocalDuration sim.Duration
	ImageBytes    int64
}

// CheckpointResult carries the measurements the paper's evaluation
// reports.
type CheckpointResult struct {
	Seq int
	// Latency is Fig. 5(a)'s metric: first <checkpoint> sent to last
	// <done> received at the coordinator.
	Latency sim.Duration
	// CycleLatency extends to the last <continue-done>.
	CycleLatency sim.Duration
	// MaxLocalCheckpoint and MaxLocalContinue are the slowest agents'
	// local phases.
	MaxLocalCheckpoint sim.Duration
	MaxLocalContinue   sim.Duration
	// MaxBlocked and MinBlocked bound how long pods were actually
	// frozen — the application-visible disruption. The Fig. 4
	// optimization shrinks MinBlocked (a fast node no longer waits for
	// the slowest save); COW shrinks both.
	MaxBlocked sim.Duration
	MinBlocked sim.Duration
	// Overhead is Fig. 5(b)'s metric: CycleLatency minus the global cost
	// of the local operations (their max across nodes, since they run in
	// parallel).
	Overhead sim.Duration
	// Messages counts control messages sent and received by the
	// coordinator for this operation — 4N for the blocking protocol,
	// 5N optimized: O(N), versus O(N²) for flushing baselines.
	Messages int
	// TotalImageBytes sums the agents' image sizes.
	TotalImageBytes int64
	// PerPod holds each agent's report.
	PerPod []PodReport
}

// RestartResult mirrors CheckpointResult for coordinated restart.
type RestartResult struct {
	Seq              int
	Latency          sim.Duration
	CycleLatency     sim.Duration
	MaxLocalRestore  sim.Duration
	MaxLocalContinue sim.Duration
	Overhead         sim.Duration
	Messages         int
	PerPod           []PodReport
}

// Coordinator drives the global protocol of Fig. 2 / Fig. 4. It runs as
// a daemon on its own node (distinct from the application nodes, as in
// the paper's experiments).
type Coordinator struct {
	stack  *tcpip.Stack
	params CoordinatorParams
	cpu    ctl.Serializer
	tr     *trace.Tracer

	conns map[tcpip.AddrPort]*ctlConn
	op    map[string]*coordOp // job name -> active op

	// committed tracks the last globally committed checkpoint per job —
	// the atomicity record of the two-phase commit.
	committed map[string]int
	nextSeq   map[string]int
}

type coordOp struct {
	job        *Job
	seq        int
	restart    bool
	opts       CheckpointOptions
	t0         sim.Time
	doneAt     sim.Time
	pending    map[string]bool // pods with outstanding done
	disabled   map[string]bool // (optimized) pods with outstanding comm-disabled
	contPend   map[string]bool
	maxLocal   sim.Duration
	maxCont    sim.Duration
	maxBlocked sim.Duration
	minBlocked sim.Duration
	reports    []PodReport
	msgBase    int
	timeout    *sim.Event
	finish     func(*coordOp, error)
	failed     error
	span       trace.Span
}

// NewCoordinator creates a coordinator on the given node's stack.
func NewCoordinator(stack *tcpip.Stack, params CoordinatorParams) *Coordinator {
	return &Coordinator{
		stack:     stack,
		params:    params,
		cpu:       ctl.Serializer{Engine: stack.Engine()},
		tr:        trace.FromEngine(stack.Engine()),
		conns:     make(map[tcpip.AddrPort]*ctlConn),
		op:        make(map[string]*coordOp),
		committed: make(map[string]int),
		nextSeq:   make(map[string]int),
	}
}

// CommittedSeq returns the last committed checkpoint sequence for a job.
func (c *Coordinator) CommittedSeq(job string) (int, bool) {
	seq, ok := c.committed[job]
	return seq, ok
}

// Connect establishes control connections to every agent of the job,
// invoking done when all are up (or with the first dial error).
func (c *Coordinator) Connect(job *Job, done func(error)) {
	remaining := 0
	var failed error
	check := func() {
		if remaining == 0 && done != nil {
			done(failed)
			done = nil
		}
	}
	for _, m := range job.Members {
		addr := m.Agent
		if _, ok := c.conns[addr]; ok {
			continue
		}
		tc, err := c.stack.DialTCP(tcpip.AddrPort{}, addr)
		if err != nil {
			done(err)
			return
		}
		remaining++
		cc := newCtlConn(tc, c.onMsg, func(_ *ctlConn, err error) { c.onConnError(addr, err) })
		c.conns[addr] = cc
		established := false
		tc.SetNotify(func() {
			cc.Pump()
			if !established && tc.Established() {
				established = true
				remaining--
				check()
			}
			if err := tc.Err(); err != nil && failed == nil {
				failed = err
				remaining = 0
				check()
			}
		})
	}
	check()
}

// onConnError tears down a broken agent connection.
func (c *Coordinator) onConnError(addr tcpip.AddrPort, _ error) {
	delete(c.conns, addr)
}

// connFor finds the member's control connection.
func (c *Coordinator) connFor(m Member) (*ctlConn, error) {
	cc, ok := c.conns[m.Agent]
	if !ok || !cc.TCP().Established() {
		return nil, fmt.Errorf("%w: %s", ErrNotConnected, m.Agent)
	}
	return cc, nil
}

// msgCount sums message counters across the job's connections.
func (c *Coordinator) msgCount(job *Job) int {
	n := 0
	seen := map[tcpip.AddrPort]bool{}
	for _, m := range job.Members {
		if seen[m.Agent] {
			continue
		}
		seen[m.Agent] = true
		if cc, ok := c.conns[m.Agent]; ok {
			n += cc.Sent + cc.Received
		}
	}
	return n
}

// Checkpoint runs one coordinated checkpoint of the job, invoking done
// with the result.
func (c *Coordinator) Checkpoint(job *Job, opts CheckpointOptions, done func(*CheckpointResult, error)) {
	if _, busy := c.op[job.Name]; busy {
		done(nil, ErrOpInProgress)
		return
	}
	c.nextSeq[job.Name]++
	seq := c.nextSeq[job.Name]
	op := &coordOp{
		job:      job,
		seq:      seq,
		opts:     opts,
		t0:       c.stack.Engine().Now(),
		pending:  make(map[string]bool),
		disabled: make(map[string]bool),
		contPend: make(map[string]bool),
		msgBase:  c.msgCount(job),
	}
	if c.tr.Enabled() {
		op.span = c.tr.Begin(c.stack.Name(), "core", "checkpoint",
			trace.Str("job", job.Name), trace.Int("seq", int64(seq)),
			trace.Int("members", int64(len(job.Members))))
	}
	op.finish = func(op *coordOp, err error) {
		delete(c.op, job.Name)
		if op.timeout != nil {
			c.stack.Engine().Cancel(op.timeout)
		}
		if err != nil {
			op.span.End(trace.Str("err", err.Error()))
			done(nil, err)
			return
		}
		c.committed[job.Name] = op.seq
		if c.tr.Enabled() {
			c.tr.Instant(c.stack.Name(), "core", "commit",
				trace.Str("job", job.Name), trace.Int("seq", int64(op.seq)))
		}
		op.span.End()
		now := c.stack.Engine().Now()
		res := &CheckpointResult{
			Seq:                op.seq,
			Latency:            op.doneAt.Sub(op.t0),
			CycleLatency:       now.Sub(op.t0),
			MaxLocalCheckpoint: op.maxLocal,
			MaxLocalContinue:   op.maxCont,
			MaxBlocked:         op.maxBlocked,
			MinBlocked:         op.minBlocked,
			Messages:           c.msgCount(job) - op.msgBase,
			PerPod:             op.reports,
		}
		res.Overhead = res.CycleLatency - res.MaxLocalCheckpoint - res.MaxLocalContinue
		for _, r := range op.reports {
			res.TotalImageBytes += r.ImageBytes
		}
		done(res, nil)
	}
	c.op[job.Name] = op

	// Step 1: send <checkpoint> to all agents (serialized daemon CPU).
	for _, m := range job.Members {
		op.pending[m.Pod] = true
		op.disabled[m.Pod] = true
		op.contPend[m.Pod] = true
		m := m
		c.cpu.Do(c.params.MsgCost, func() {
			cc, err := c.connFor(m)
			if err != nil {
				c.abortOp(op, err)
				return
			}
			cc.send(&wireMsg{
				Type:        msgCheckpoint,
				Seq:         seq,
				Pod:         m.Pod,
				Incremental: opts.Incremental,
				Optimized:   opts.Optimized,
				COW:         opts.COW,
				Dedup:       opts.Dedup,
				Pipeline:    opts.Pipeline,
			})
		})
	}
	c.armTimeout(op)
}

// Restart runs a coordinated restart of the job from checkpoint seq
// (0 = latest committed).
func (c *Coordinator) Restart(job *Job, seq int, done func(*RestartResult, error)) {
	if _, busy := c.op[job.Name]; busy {
		done(nil, ErrOpInProgress)
		return
	}
	if seq == 0 {
		seq = c.committed[job.Name]
	}
	op := &coordOp{
		job:      job,
		seq:      seq,
		restart:  true,
		t0:       c.stack.Engine().Now(),
		pending:  make(map[string]bool),
		contPend: make(map[string]bool),
		msgBase:  c.msgCount(job),
	}
	if c.tr.Enabled() {
		op.span = c.tr.Begin(c.stack.Name(), "core", "restart",
			trace.Str("job", job.Name), trace.Int("seq", int64(seq)),
			trace.Int("members", int64(len(job.Members))))
	}
	op.finish = func(op *coordOp, err error) {
		delete(c.op, job.Name)
		if op.timeout != nil {
			c.stack.Engine().Cancel(op.timeout)
		}
		if err != nil {
			op.span.End(trace.Str("err", err.Error()))
			done(nil, err)
			return
		}
		op.span.End()
		now := c.stack.Engine().Now()
		res := &RestartResult{
			Seq:              op.seq,
			Latency:          op.doneAt.Sub(op.t0),
			CycleLatency:     now.Sub(op.t0),
			MaxLocalRestore:  op.maxLocal,
			MaxLocalContinue: op.maxCont,
			Messages:         c.msgCount(job) - op.msgBase,
			PerPod:           op.reports,
		}
		res.Overhead = res.CycleLatency - res.MaxLocalRestore - res.MaxLocalContinue
		done(res, nil)
	}
	c.op[job.Name] = op
	for _, m := range job.Members {
		op.pending[m.Pod] = true
		op.contPend[m.Pod] = true
		m := m
		c.cpu.Do(c.params.MsgCost, func() {
			cc, err := c.connFor(m)
			if err != nil {
				c.abortOp(op, err)
				return
			}
			cc.send(&wireMsg{Type: msgRestart, Seq: seq, Pod: m.Pod})
		})
	}
	c.armTimeout(op)
}

// armTimeout schedules the failure-handling abort.
func (c *Coordinator) armTimeout(op *coordOp) {
	if c.params.Timeout <= 0 {
		return
	}
	op.timeout = c.stack.Engine().Schedule(c.params.Timeout, func() {
		if c.op[op.job.Name] == op {
			c.abortOp(op, fmt.Errorf("%w: timeout after %v", ErrAborted, c.params.Timeout))
		}
	})
}

// abortOp sends <abort> to every agent and fails the operation.
func (c *Coordinator) abortOp(op *coordOp, err error) {
	if op.failed != nil {
		return
	}
	op.failed = err
	for _, m := range op.job.Members {
		m := m
		c.cpu.Do(c.params.MsgCost, func() {
			if cc, cerr := c.connFor(m); cerr == nil {
				cc.send(&wireMsg{Type: msgAbort, Seq: op.seq, Pod: m.Pod})
			}
		})
	}
	op.finish(op, err)
}

// opForPod locates the active operation covering a pod report.
func (c *Coordinator) opForPod(pod string, seq int) *coordOp {
	for _, op := range c.op {
		if op.seq != seq || op.failed != nil {
			continue
		}
		for _, m := range op.job.Members {
			if m.Pod == pod {
				return op
			}
		}
	}
	return nil
}

// onMsg handles agent replies.
func (c *Coordinator) onMsg(_ *ctlConn, m *wireMsg) {
	c.cpu.Do(c.params.MsgCost, func() {
		op := c.opForPod(m.Pod, m.Seq)
		if op == nil {
			return
		}
		if c.tr.Enabled() {
			c.tr.Instant(c.stack.Name(), "core", "recv."+m.Type.String(),
				trace.Str("pod", m.Pod), trace.Int("seq", int64(m.Seq)))
		}
		if m.Err != "" {
			c.abortOp(op, fmt.Errorf("%w: pod %s: %s", ErrAgentFailed, m.Pod, m.Err))
			return
		}
		switch m.Type {
		case msgCommDisabled:
			// Fig. 4: all communication disabled -> early continue.
			if op.disabled[m.Pod] {
				delete(op.disabled, m.Pod)
				if (op.opts.Optimized || op.opts.COW) && len(op.disabled) == 0 {
					c.sendContinue(op)
				}
			}
		case msgDone, msgRestartDone:
			if !op.pending[m.Pod] {
				return
			}
			delete(op.pending, m.Pod)
			if m.LocalDuration > op.maxLocal {
				op.maxLocal = m.LocalDuration
			}
			op.reports = append(op.reports, PodReport{
				Pod:           m.Pod,
				LocalDuration: m.LocalDuration,
				ImageBytes:    m.ImageBytes,
			})
			if len(op.pending) == 0 {
				op.doneAt = c.stack.Engine().Now()
				if (!op.opts.Optimized && !op.opts.COW) || op.restart {
					c.sendContinue(op)
				} else if len(op.contPend) == 0 {
					// COW/optimized: continues may have completed before
					// the last image write finished.
					op.finish(op, nil)
				}
			}
		case msgContinueDone:
			if !op.contPend[m.Pod] {
				return
			}
			delete(op.contPend, m.Pod)
			if m.LocalDuration > op.maxCont {
				op.maxCont = m.LocalDuration
			}
			if m.BlockedDuration > op.maxBlocked {
				op.maxBlocked = m.BlockedDuration
			}
			if op.minBlocked == 0 || m.BlockedDuration < op.minBlocked {
				op.minBlocked = m.BlockedDuration
			}
			if len(op.contPend) == 0 && len(op.pending) == 0 {
				op.finish(op, nil)
			}
		}
	})
}

// sendContinue issues Step 3 of Fig. 2.
func (c *Coordinator) sendContinue(op *coordOp) {
	for _, m := range op.job.Members {
		m := m
		c.cpu.Do(c.params.MsgCost, func() {
			if cc, err := c.connFor(m); err == nil {
				cc.send(&wireMsg{Type: msgContinue, Seq: op.seq, Pod: m.Pod})
			}
		})
	}
}
