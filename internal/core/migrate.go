package core

import (
	"errors"
	"fmt"

	"cruz/internal/ckpt"
	"cruz/internal/ctl"
	"cruz/internal/mem"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/trace"
	"cruz/internal/zap"
)

// Live migration (the paper's §4.2 VIF/IP/MAC move, composed with the
// pre-copy and delta-replication machinery into a first-class primitive).
//
// The protocol has three parties: the coordinator C, the source agent S
// and the destination agent D.
//
//	C -> D  migrate-target       arm a migrate-in op (restore-on-arrival)
//	C -> S  migrate              start the pre-copy stream
//	S:      per live round: COW capture, local save, offer/want/data
//	        delta transfer into D's store; D pre-merges each round as it
//	        lands, while the pod keeps running on S
//	S:      on convergence: filter + freeze, capture the residual,
//	        save + stream it, then hand over
//	S -> D  migrate-restore      residual is in D's store; FrozeAt stamps
//	                             the start of the downtime window
//	D:      merge residual, filter, restore (VIF + TCP state install,
//	        gratuitous ARP last), resume — downtime ends here
//	D -> C  migrate-done         downtime report; commit point
//	C -> S  migrate-commit       roll forward: destroy the source copy
//	S -> C  migrate-src-done     rounds/bytes report; op complete
//
// Abort at any point before migrate-done rolls back like an aborted
// pre-copy checkpoint: S releases the COW rounds, re-marks their pages
// dirty, discards the uncommitted round images and resumes the pod; D
// discards whatever rounds it adopted. After migrate-done the migration
// only rolls forward — the pod is already live on D, so a late failure
// of S merely leaves its (filtered, frozen) copy for Destroy.

// ErrNoMigration reports an abort request with no migration in flight.
var ErrNoMigration = errors.New("core: no migration in flight for job")

// MigrateOptions tunes one live migration.
type MigrateOptions struct {
	// Incremental chains round 0 onto the source's newest stored
	// checkpoint; the delta protocol then ships only what the
	// destination's store is missing.
	Incremental bool
	// Dedup stores and streams the rounds content-addressed.
	Dedup bool
	// Pipeline segments the local round saves (encode ∥ write).
	Pipeline bool
	// Precopy bounds the live rounds. MaxRounds == 0 degenerates to
	// stop-and-copy migration: one freeze covering the whole image — the
	// baseline the ablation compares against.
	Precopy PrecopyConfig
}

// MigrationResult reports one completed migration.
type MigrationResult struct {
	Pod  string
	From tcpip.AddrPort
	To   tcpip.AddrPort
	// Seq is the image sequence the migration committed at the
	// destination (the residual at the top of the round chain).
	Seq int
	// Rounds is how many live pre-copy rounds ran before the freeze.
	Rounds int
	// RoundPages is the per-round streamed page counts, residual last —
	// the convergence curve.
	RoundPages []int
	// BytesStreamed is what the delta transfers actually moved.
	BytesStreamed int64
	// Downtime is the application-visible gap: source freeze to first
	// instant the pod is live (resumed, filter removed, ARP announced)
	// on the destination.
	Downtime sim.Duration
	// Latency is the whole operation, first message to commit.
	Latency sim.Duration
	// Messages counts control/stream messages on the coordinator's
	// source and destination connections.
	Messages int
}

// migrateOp is the coordinator's view of one in-flight migration.
type migrateOp struct {
	*ctl.Op
	job       *Job
	pod       string
	memberIdx int
	src, dst  tcpip.AddrPort
	opts      MigrateOptions

	downtime   sim.Duration
	imageBytes int64
	streamed   int64
	roundPages []int
	msgBase    int
	span       trace.Span
}

// migrateMsgCount sums the message counters on the op's two connections.
func (c *Coordinator) migrateMsgCount(op *migrateOp) int {
	n := 0
	for _, addr := range []tcpip.AddrPort{op.src, op.dst} {
		if cc, ok := c.conns[addr]; ok {
			n += cc.Sent + cc.Received
		}
	}
	return n
}

// Migrate moves one pod of the job to the target node with pre-copy
// streaming: the pod runs (and communicates) through the rounds and
// freezes only for the residual dirty set plus address takeover. On
// success the job's member record is re-homed to the target, so later
// checkpoints and recoveries address the pod there.
func (c *Coordinator) Migrate(job *Job, pod string, target tcpip.AddrPort, opts MigrateOptions, done func(*MigrationResult, error)) {
	idx := -1
	for i, m := range job.Members {
		if m.Pod == pod {
			idx = i
			break
		}
	}
	if idx < 0 {
		done(nil, fmt.Errorf("%w: %s", ErrUnknownPod, pod))
		return
	}
	src := job.Members[idx].Agent
	if src == target {
		done(nil, fmt.Errorf("core: pod %s already lives on %s", pod, addrKey(target)))
		return
	}
	if c.table.Get(recoveryKey(job.Name)) != nil {
		done(nil, ErrOpInProgress)
		return
	}
	// Like a pre-copy checkpoint, the migration consumes a block of
	// sequence numbers: rounds chain through (seq-MaxRounds, seq) and
	// only the residual at seq survives commit.
	stride := opts.Precopy.MaxRounds + 1
	c.nextSeq[job.Name] += stride
	seq := c.nextSeq[job.Name]
	o, err := c.table.Begin("migrate", job.Name, seq)
	if err != nil {
		c.nextSeq[job.Name] -= stride
		done(nil, ErrOpInProgress)
		return
	}
	op := &migrateOp{Op: o, job: job, pod: pod, memberIdx: idx, src: src, dst: target, opts: opts}
	o.Data = op
	if c.tr.Enabled() {
		op.span = c.tr.BeginOp(c.stack.Name(), "core", "migrate",
			trace.Str("job", job.Name), trace.Str("pod", pod),
			trace.Int("seq", int64(seq)),
			trace.Str("from", addrKey(src)), trace.Str("to", addrKey(target)))
	}
	// Failure before commit fans <abort> to both parties: the source
	// rolls the pre-copy epoch back and resumes the pod, the destination
	// discards the adopted rounds.
	o.OnFail(func(_ *ctl.Op, err error) {
		for _, addr := range []tcpip.AddrPort{src, target} {
			addr := addr
			c.cpu.Do(c.params.MsgCost, func() {
				if cc, ok := c.conns[addr]; ok && cc.TCP().Established() {
					cc.send(&wireMsg{Type: msgAbort, Seq: seq, Pod: pod, ctx: op.span.Context()})
				}
			})
		}
	})
	o.OnFinish(func(_ *ctl.Op, err error) {
		if err != nil {
			op.span.End(trace.Str("err", err.Error()))
			done(nil, err)
			return
		}
		// Commit: the pod lives on the target now. Re-home the member so
		// every later coordinated op addresses it there, and record the
		// target as holder of the migrated image chain.
		job.Members[idx].Agent = target
		c.addHolder(pod, seq, target)
		rounds := len(op.roundPages) - 1
		if rounds < 0 {
			rounds = 0
		}
		op.span.End(trace.Int("rounds", int64(rounds)),
			trace.Int("downtime_us", int64(op.downtime/sim.Microsecond)))
		done(&MigrationResult{
			Pod: pod, From: src, To: target, Seq: seq,
			Rounds:        rounds,
			RoundPages:    op.roundPages,
			BytesStreamed: op.streamed,
			Downtime:      op.downtime,
			Latency:       c.stack.Engine().Now().Sub(op.Started()),
			Messages:      c.migrateMsgCount(op) - op.msgBase,
		}, nil)
	})
	op.Expect("restored", pod)
	op.Expect("cleared", pod)
	c.connectAddrs([]tcpip.AddrPort{src, target}, func(cerr error) {
		if cerr != nil {
			op.Fail(cerr)
			return
		}
		if !op.Active() {
			return
		}
		op.msgBase = c.migrateMsgCount(op)
		// Arm the destination first so its migrate-in op exists before
		// the first round's delta transfer can land.
		c.cpu.Do(c.params.MsgCost, func() {
			cc, ok := c.conns[target]
			if !ok || !cc.TCP().Established() {
				op.Fail(fmt.Errorf("%w: %s", ErrNotConnected, addrKey(target)))
				return
			}
			cc.send(&wireMsg{Type: msgMigrateTarget, Seq: seq, Pod: pod, ctx: op.span.Context()})
		})
		c.cpu.Do(c.params.MsgCost, func() {
			cc, ok := c.conns[src]
			if !ok || !cc.TCP().Established() {
				op.Fail(fmt.Errorf("%w: %s", ErrNotConnected, addrKey(src)))
				return
			}
			cc.send(&wireMsg{
				Type:                  msgMigrate,
				Seq:                   seq,
				Pod:                   pod,
				ctx:                   op.span.Context(),
				Incremental:           opts.Incremental,
				Dedup:                 opts.Dedup,
				Pipeline:              opts.Pipeline,
				PrecopyRounds:         opts.Precopy.MaxRounds,
				PrecopyThresholdPages: opts.Precopy.DirtyThresholdPages,
				PrecopyMinGain:        opts.Precopy.MinRoundGain,
				Repl:                  &replPayload{PeerIP: target.Addr, PeerPort: target.Port},
			})
		})
	})
	if c.params.Timeout > 0 {
		op.ArmTimeout(c.params.Timeout, fmt.Errorf("%w: timeout after %v", ErrAborted, c.params.Timeout))
	}
}

// AbortMigration aborts the job's in-flight migration, if any: both
// agents roll back and the pod keeps running on the source.
func (c *Coordinator) AbortMigration(job string) error {
	o := c.table.Get(job)
	if o == nil {
		return ErrNoMigration
	}
	if _, ok := o.Data.(*migrateOp); !ok {
		return ErrNoMigration
	}
	o.Fail(ErrAborted)
	return nil
}

// migrateOpFor locates the in-flight migration a report belongs to.
func (c *Coordinator) migrateOpFor(pod string, seq int) *migrateOp {
	var found *migrateOp
	c.table.Each(func(o *ctl.Op) {
		if found != nil || o.Seq != seq {
			return
		}
		if op, ok := o.Data.(*migrateOp); ok && op.pod == pod {
			found = op
		}
	})
	return found
}

// handleMigrateDone is the commit point: the pod is live on the
// destination. Record the downtime and tell the source to roll forward.
func (c *Coordinator) handleMigrateDone(m *wireMsg) {
	op := c.migrateOpFor(m.Pod, m.Seq)
	if op == nil {
		return
	}
	if c.tr.Enabled() {
		c.tr.InstantCtx(op.span.Context(), c.stack.Name(), "core", "recv.migrate-done",
			trace.Str("pod", m.Pod), trace.Int("seq", int64(m.Seq)))
	}
	if m.Err != "" {
		op.Fail(fmt.Errorf("%w: pod %s: %s", ErrAgentFailed, m.Pod, m.Err))
		return
	}
	if !op.Arrive("restored", m.Pod) {
		return
	}
	op.downtime = m.BlockedDuration
	op.imageBytes = m.ImageBytes
	c.cpu.Do(c.params.MsgCost, func() {
		if !op.Active() {
			return
		}
		cc, ok := c.conns[op.src]
		if !ok || !cc.TCP().Established() {
			op.Fail(fmt.Errorf("%w: %s", ErrNotConnected, addrKey(op.src)))
			return
		}
		cc.send(&wireMsg{Type: msgMigrateCommit, Seq: m.Seq, Pod: m.Pod, ctx: op.span.Context()})
	})
}

// handleMigrateSrcDone completes the migration: the source destroyed its
// copy and reported the stream accounting.
func (c *Coordinator) handleMigrateSrcDone(m *wireMsg) {
	op := c.migrateOpFor(m.Pod, m.Seq)
	if op == nil {
		return
	}
	if c.tr.Enabled() {
		c.tr.InstantCtx(op.span.Context(), c.stack.Name(), "core", "recv.migrate-src-done",
			trace.Str("pod", m.Pod), trace.Int("seq", int64(m.Seq)))
	}
	if m.Err != "" {
		op.Fail(fmt.Errorf("%w: pod %s: %s", ErrAgentFailed, m.Pod, m.Err))
		return
	}
	if !op.Arrive("cleared", m.Pod) {
		return
	}
	op.roundPages = m.RoundPages
	op.streamed = m.ImageBytes
	if op.Cleared("restored") && op.Cleared("cleared") {
		op.Finish()
	}
}

// ---------------------------------------------------------------------
// Source agent side.

// startMigrateOut begins the source half: pre-copy rounds streamed into
// the destination's store while the pod runs, then the frozen residual
// and the handover.
func (a *Agent) startMigrateOut(c msgSink, m *wireMsg) {
	pod, ok := a.pods[m.Pod]
	if !ok || pod.Destroyed() {
		a.fail(c, msgMigrateSrcDone, m, ErrUnknownPod)
		return
	}
	if m.Repl == nil {
		a.fail(c, msgMigrateSrcDone, m, fmt.Errorf("core: migrate without a destination"))
		return
	}
	op, err := a.beginPodOp("migrate-out", m, c)
	if err != nil {
		a.fail(c, msgMigrateSrcDone, m, err)
		return
	}
	op.precopy = m.PrecopyRounds > 0
	op.migrateTo = tcpip.AddrPort{Addr: m.Repl.PeerIP, Port: m.Repl.PeerPort}
	a.coordConn = c
	a.Stats.MigrationsOut++
	if a.tr.Enabled() {
		op.span = a.tr.BeginChild(m.ctx, a.kern.Name(), "core", "agent.migrate-out",
			trace.Str("pod", m.Pod), trace.Int("seq", int64(m.Seq)),
			trace.Str("to", addrKey(op.migrateTo)))
	}
	// Round-0 base negotiation: a non-incremental migration would open
	// with a full round, but if the destination already replicates this
	// pod's newest stored checkpoint — background durability put it
	// there — round 0 can stream just the delta against that shared
	// base. One query/ack round trip, off the freeze path (the pod is
	// still live).
	if !m.Incremental {
		if base, ok := a.store.LatestSeq(m.Pod); ok && a.store.HasSeq(m.Pod, base) {
			cc, cerr := a.peerConn(op.migrateTo)
			if cerr == nil {
				op.conn = c
				op.baseQuery = m
				cc.send(&wireMsg{Type: msgMigrateBase, Seq: base, Pod: m.Pod, ctx: op.span.Context()})
				return
			}
		}
	}
	a.runMigrateRound(c, m, pod, op, 0, 0, 0)
}

// handleMigrateBase is the destination side of the round-0 base
// negotiation: report whether this store holds the source's newest
// checkpoint chain (Incremental carries the verdict on the ack).
func (a *Agent) handleMigrateBase(c *ctlConn, m *wireMsg) {
	c.send(&wireMsg{Type: msgMigrateBaseAck, Seq: m.Seq, Pod: m.Pod, ctx: m.ctx,
		Incremental: a.store.HasSeq(m.Pod, m.Seq)})
}

// handleMigrateBaseAck resumes the deferred migrate-out: if the
// destination holds the queried base, round 0 streams incrementally
// against it; otherwise the full opening round proceeds as before.
func (a *Agent) handleMigrateBaseAck(m *wireMsg) {
	op := a.podOp(m.Pod)
	if op == nil || op.baseQuery == nil || op.Aborted() {
		return
	}
	mq := op.baseQuery
	op.baseQuery = nil
	pod := a.pods[m.Pod]
	if pod == nil || pod.Destroyed() {
		op.Fail(ErrUnknownPod)
		a.fail(op.conn, msgMigrateSrcDone, mq, ErrUnknownPod)
		return
	}
	baseSeq := 0
	if m.Incremental {
		baseSeq = m.Seq
		if a.tr.Enabled() {
			a.tr.InstantCtx(op.span.Context(), a.kern.Name(), "core", "migrate.base-reuse",
				trace.Str("pod", m.Pod), trace.Int("base", int64(baseSeq)))
		}
	}
	a.runMigrateRound(op.conn, mq, pod, op, 0, 0, baseSeq)
}

// runMigrateRound drives one live migration round and recurses, or hands
// off to the residual freeze once another round is not worth taking. It
// mirrors runPrecopy with one extra stage: after the round's local save,
// the image streams to the destination through the delta protocol, and
// the next round starts only once the destination has adopted it — the
// stream is the pacing, exactly like pre-copy against a slow disk.
func (a *Agent) runMigrateRound(c msgSink, m *wireMsg, pod *zap.Pod, op *agentOp, round, prevPages, baseSeq int) {
	if op.Aborted() {
		return
	}
	if round == 0 && m.Incremental {
		if s, ok := a.store.LatestSeq(m.Pod); ok {
			baseSeq = s
		}
	}
	full := baseSeq == 0
	candidate := pod.DirtyPages()
	if full {
		candidate = pod.ResidentPages()
	}
	converged := round >= m.PrecopyRounds ||
		(m.PrecopyThresholdPages > 0 && candidate <= m.PrecopyThresholdPages) ||
		(m.PrecopyMinGain > 0 && round > 0 &&
			float64(candidate) > (1-m.PrecopyMinGain)*float64(prevPages))
	if converged {
		a.runMigrateResidual(c, m, pod, op, baseSeq)
		return
	}
	seqR := m.Seq - m.PrecopyRounds + round
	if a.tr.Enabled() {
		op.phRound = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "migrate-round",
			trace.Str("pod", m.Pod), trace.Int("round", int64(round)),
			trace.Int("pages", int64(candidate)))
	}
	lc, err := ckpt.CaptureLive(pod, seqR, ckpt.Options{Incremental: !full, Hashes: m.Dedup, BaseSeq: baseSeq})
	if err != nil {
		op.Fail(err)
		a.fail(c, msgMigrateSrcDone, m, err)
		return
	}
	op.rounds = append(op.rounds, lc)
	op.redirty = append(op.redirty, lc.Redirty)
	op.roundPages = append(op.roundPages, candidate)
	captureBytes := int64(lc.Pages()) * mem.PageSize
	a.cpu.Do(a.params.CaptureCost+bytesCost(captureBytes, a.params.CaptureBPS), func() {
		if op.Aborted() {
			return
		}
		a.planImage(m, op, lc.Image, func(plan *ckpt.SavePlan, err error) {
			if op.Aborted() {
				return
			}
			if err != nil {
				op.Fail(err)
				a.fail(c, msgMigrateSrcDone, m, err)
				return
			}
			op.roundSeqs = append(op.roundSeqs, seqR)
			a.streamPlan(m.Pipeline, op, plan.TotalBytes, func() {
				a.streamRound(c, m, op, seqR, func() {
					lc.Release()
					op.phRound.End(trace.Int("bytes", plan.TotalBytes))
					a.runMigrateRound(c, m, pod, op, round+1, candidate, seqR)
				})
			})
		})
	})
}

// streamRound pushes the just-saved round image into the destination's
// store through the offer/want/data delta exchange, invoking next once
// the destination has adopted it.
func (a *Agent) streamRound(c msgSink, m *wireMsg, op *agentOp, seq int, next func()) {
	if op.Aborted() {
		return
	}
	cc, err := a.peerConn(op.migrateTo)
	if err != nil {
		op.Fail(err)
		a.fail(c, msgMigrateSrcDone, m, err)
		return
	}
	ro := a.replicateOn(cc, m.Pod, seq, op.migrateTo, nil, op.span.Context(), ctl.TierStream, func(n int64, rerr error) {
		op.stream = nil
		if op.Aborted() {
			return
		}
		if rerr != nil {
			op.Fail(rerr)
			a.fail(c, msgMigrateSrcDone, m, rerr)
			return
		}
		op.streamed += n
		next()
	})
	if ro != nil && ro.Active() {
		op.stream = ro
	}
}

// runMigrateResidual is the freeze half: filter, stop, capture the
// residual dirty set, save and stream it, then hand the pod over. The
// downtime clock starts at quiescence (op.stoppedAt) and stops when the
// destination resumes the restored pod.
func (a *Agent) runMigrateResidual(c msgSink, m *wireMsg, pod *zap.Pod, op *agentOp, baseSeq int) {
	incremental := baseSeq > 0
	if a.tr.Enabled() {
		op.phQuiesce = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "migrate-freeze",
			trace.Str("pod", m.Pod))
	}
	a.cpu.Do(a.params.FilterCost, func() {
		if op.Aborted() {
			return
		}
		op.filterID = a.kern.Stack().Filter().AddDropAddr(pod.IP())
		if a.tr.Enabled() {
			a.tr.InstantCtx(op.span.Context(), a.kern.Name(), "core", "filter.install", trace.Str("pod", m.Pod))
		}
		pod.Stop(func() {
			if op.Aborted() {
				return
			}
			op.stoppedAt = a.kern.Engine().Now()
			op.phQuiesce.End()
			var captureBytes int64
			for _, vpid := range pod.VPIDs() {
				as := pod.Process(vpid).Mem()
				if incremental {
					captureBytes += int64(as.DirtyBytes())
				} else {
					captureBytes += int64(as.ResidentBytes())
				}
			}
			op.roundPages = append(op.roundPages, int(captureBytes/mem.PageSize))
			a.cpu.Do(a.params.CaptureCost+bytesCost(captureBytes, a.params.CaptureBPS), func() {
				if op.Aborted() {
					return
				}
				if a.tr.Enabled() {
					op.phCapture = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "residual-capture",
						trace.Str("pod", m.Pod))
				}
				img, err := ckpt.Capture(pod, m.Seq, ckpt.Options{Incremental: incremental, Hashes: m.Dedup, BaseSeq: baseSeq})
				if err != nil {
					op.Fail(err)
					a.fail(c, msgMigrateSrcDone, m, err)
					return
				}
				op.phCapture.End(trace.Int("mem_bytes", img.MemoryBytes()))
				op.captured = true
				// The residual's capture cleared dirty bits for pages whose
				// image vanishes if the migration aborts.
				op.redirty = append(op.redirty, func() {
					for i := range img.Processes {
						pi := &img.Processes[i]
						if proc := pod.Process(pi.VPID); proc != nil {
							for _, pn := range pi.Memory.PageNums {
								proc.Mem().MarkDirty(pn)
							}
						}
					}
				})
				a.planImage(m, op, img, func(plan *ckpt.SavePlan, err error) {
					if op.Aborted() {
						return
					}
					if err != nil {
						op.Fail(err)
						a.fail(c, msgMigrateSrcDone, m, err)
						return
					}
					op.roundSeqs = append(op.roundSeqs, m.Seq)
					if a.tr.Enabled() {
						op.phWrite = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "residual-stream",
							trace.Str("pod", m.Pod))
					}
					a.streamPlan(m.Pipeline, op, plan.TotalBytes, func() {
						a.streamRound(c, m, op, m.Seq, func() {
							op.phWrite.End(trace.Int("bytes", plan.TotalBytes))
							// Handover: every byte of state is in the
							// destination's store. One agent-to-agent hop
							// keeps the freeze path short.
							cc, cerr := a.peerConn(op.migrateTo)
							if cerr != nil {
								op.Fail(cerr)
								a.fail(c, msgMigrateSrcDone, m, cerr)
								return
							}
							cc.send(&wireMsg{Type: msgMigrateRestore, Seq: m.Seq, Pod: m.Pod,
								FrozeAt: op.stoppedAt, ctx: op.span.Context()})
						})
					})
				})
			})
		})
	})
}

// handleMigrateCommit rolls the source forward: the pod is live on the
// destination, so the frozen source copy and its uncommitted round
// images go away. The round chain now lives (only) in the destination's
// store, which is exactly where a later restart of the pod will run.
func (a *Agent) handleMigrateCommit(c msgSink, m *wireMsg) {
	op := a.podOp(m.Pod)
	if op == nil || op.Seq != m.Seq {
		return
	}
	pod := a.pods[m.Pod]
	a.cpu.Do(a.params.FilterCost, func() {
		for _, lc := range op.rounds {
			lc.Release()
		}
		if pod != nil && !pod.Destroyed() {
			pod.Destroy()
		}
		if op.filterID != 0 {
			a.kern.Stack().Filter().RemoveRule(op.filterID)
			op.filterID = 0
		}
		if len(op.roundSeqs) > 0 {
			a.store.Discard(m.Pod, op.roundSeqs...)
			op.roundSeqs = nil
		}
		// Clear the rollback state before Finish: the op completes
		// cleanly, nothing must re-mark pages of a destroyed pod.
		op.rounds = nil
		op.redirty = nil
		roundPages := op.roundPages
		streamed := op.streamed
		op.endSpans(trace.Str("outcome", "migrated"))
		op.Finish()
		c.send(&wireMsg{
			Type:       msgMigrateSrcDone,
			Seq:        m.Seq,
			Pod:        m.Pod,
			RoundPages: roundPages,
			ImageBytes: streamed,
			ctx:        op.span.Context(),
		})
	})
}

// ---------------------------------------------------------------------
// Destination agent side.

// migrateInOp tracks the destination half: adopt the streamed rounds,
// pre-merge them into a restorable image while the pod still runs on the
// source, then take over on migrate-restore.
type migrateInOp struct {
	*ctl.Op
	pod  string
	conn msgSink // coordinator connection for the final migrate-done

	// held is the running merge of every adopted round — always a full
	// (non-incremental) image, so the freeze-path work is one small
	// residual merge plus the restore, never a chain walk.
	held    *ckpt.Image
	merging bool
	pending []int // adopted seqs waiting to merge, in arrival order
	adopted []int // every adopted seq, for discard on abort

	frozeAt    sim.Time
	restoreReq bool
	filterID   int
	restored   *zap.Pod

	span      trace.Span
	phMerge   trace.Span
	phRestore trace.Span
}

func (op *migrateInOp) endSpans(args ...trace.Arg) {
	op.phMerge.End(args...)
	op.phRestore.End(args...)
	op.span.End(args...)
}

// startMigrateIn arms the destination: rounds adopted for this pod from
// now on pre-merge toward a restorable image.
func (a *Agent) startMigrateIn(c msgSink, m *wireMsg) {
	o, err := a.table.Begin("migrate-in", m.Pod, m.Seq)
	if err != nil {
		a.fail(c, msgMigrateDone, m, ErrBusy)
		return
	}
	op := &migrateInOp{Op: o, pod: m.Pod, conn: c}
	o.Data = op
	if a.tr.Enabled() {
		op.span = a.tr.BeginChild(m.ctx, a.kern.Name(), "core", "agent.migrate-in",
			trace.Str("pod", m.Pod), trace.Int("seq", int64(m.Seq)))
	}
	o.OnFail(func(_ *ctl.Op, err error) {
		a.Stats.Aborts++
		if op.filterID != 0 {
			a.kern.Stack().Filter().RemoveRule(op.filterID)
			op.filterID = 0
		}
		// A pod restored but not yet committed is destroyed: the source
		// still holds the authoritative copy and resumes it on its own
		// abort path.
		if op.restored != nil && !op.restored.Destroyed() {
			op.restored.Destroy()
		}
		if len(op.adopted) > 0 {
			a.store.Discard(op.pod, op.adopted...)
		}
		op.endSpans(trace.Str("outcome", "aborted"))
	})
}

// migrateRoundArrived hooks each adopted delta transfer: if a migrate-in
// op is armed for the pod, the round joins the pre-merge queue.
func (a *Agent) migrateRoundArrived(pod string, seq int) {
	o := a.table.Get(pod)
	if o == nil {
		return
	}
	op, ok := o.Data.(*migrateInOp)
	if !ok || op.Aborted() {
		return
	}
	op.adopted = append(op.adopted, seq)
	op.pending = append(op.pending, seq)
	a.migrateMerge(op)
}

// migrateMerge drains the pending queue one round at a time. The first
// round loads merged (resolving any base chain the delta protocol
// skipped because this store already held it); later rounds load alone
// and fold into the held image. All of this runs while the pod is still
// live on the source — only the residual's merge can land inside the
// freeze window.
func (a *Agent) migrateMerge(op *migrateInOp) {
	if op.merging || len(op.pending) == 0 || op.Aborted() {
		return
	}
	seq := op.pending[0]
	op.pending = op.pending[1:]
	op.merging = true
	if a.tr.Enabled() {
		op.phMerge = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "migrate-merge",
			trace.Str("pod", op.pod), trace.Int("seq", int64(seq)))
	}
	// Fast path: the round was adopted moments ago, so its decoded form
	// is still in this daemon's memory — fold it at CPU speed instead of
	// reading back what was just written. The read-back paths below
	// remain for the cases where the bytes genuinely are not in memory:
	// deduplicated rounds (chunk reassembly) and a first round whose base
	// chain the delta protocol skipped because this store already held it
	// on disk.
	if inc, ok := a.store.Cached(op.pod, seq); ok && (op.held != nil || !inc.Incremental) {
		if op.held == nil {
			a.mergeDone(op, inc, nil)
			return
		}
		a.cpu.Do(bytesCost(inc.MemoryBytes(), a.params.CaptureBPS), func() {
			if op.Aborted() {
				return
			}
			merged, merr := ckpt.Merge(op.held, inc)
			a.mergeDone(op, merged, merr)
		})
		return
	}
	if op.held == nil {
		a.store.LoadMergedCtx(op.pod, seq, op.span.Context(), func(img *ckpt.Image, err error) {
			a.mergeDone(op, img, err)
		})
		return
	}
	a.store.LoadCtx(op.pod, seq, op.span.Context(), func(inc *ckpt.Image, err error) {
		if err != nil {
			a.mergeDone(op, nil, err)
			return
		}
		// Folding the increment is an in-memory page copy at the capture
		// rate.
		a.cpu.Do(bytesCost(inc.MemoryBytes(), a.params.CaptureBPS), func() {
			if op.Aborted() {
				return
			}
			merged, merr := ckpt.Merge(op.held, inc)
			a.mergeDone(op, merged, merr)
		})
	})
}

// mergeDone finishes one pre-merge step and continues: more pending
// rounds, or — when the source has already handed over — the takeover.
func (a *Agent) mergeDone(op *migrateInOp, img *ckpt.Image, err error) {
	op.merging = false
	if op.Aborted() {
		return
	}
	if err != nil {
		op.phMerge.End(trace.Str("err", err.Error()))
		a.fail(op.conn, msgMigrateDone, &wireMsg{Seq: op.Seq, Pod: op.pod, ctx: op.span.Context()}, err)
		op.Fail(err)
		return
	}
	op.held = img
	op.phMerge.End(trace.Int("mem_bytes", img.MemoryBytes()))
	if len(op.pending) > 0 {
		a.migrateMerge(op)
		return
	}
	if op.restoreReq {
		a.finishMigrateRestore(op)
	}
}

// handleMigrateRestore is the source's handover: the residual is in the
// local store (its adoption acknowledgment is what released the source
// to send this). Take over as soon as the pre-merge queue drains.
func (a *Agent) handleMigrateRestore(m *wireMsg) {
	o := a.table.Get(m.Pod)
	if o == nil || o.Seq != m.Seq {
		return
	}
	op, ok := o.Data.(*migrateInOp)
	if !ok || op.Aborted() {
		return
	}
	op.frozeAt = m.FrozeAt
	op.restoreReq = true
	if !op.merging && len(op.pending) == 0 {
		a.finishMigrateRestore(op)
	}
}

// finishMigrateRestore performs the address takeover: install the drop
// filter for the pod's address, restore the image — which rebinds the
// VIF (IP and MAC move to this node's NIC), reinstates the live TCP
// state, and announces the new location with a gratuitous ARP *after*
// the TCP state exists, so a peer's very next segment finds a socket
// ready to accept it — then resume. Downtime is freeze to this resume.
func (a *Agent) finishMigrateRestore(op *migrateInOp) {
	img := op.held
	if img == nil {
		err := fmt.Errorf("core: migrate-restore before any round arrived")
		a.fail(op.conn, msgMigrateDone, &wireMsg{Seq: op.Seq, Pod: op.pod, ctx: op.span.Context()}, err)
		op.Fail(err)
		return
	}
	if a.tr.Enabled() {
		op.phRestore = a.tr.BeginChild(op.span.Context(), a.kern.Name(), trace.PhaseCat, "takeover",
			trace.Str("pod", op.pod))
	}
	a.cpu.Do(a.params.FilterCost+a.params.CaptureCost, func() {
		if op.Aborted() {
			return
		}
		// Filter first: restored TCP state re-issues its unacknowledged
		// segments immediately, which must not escape before the commit.
		op.filterID = a.kern.Stack().Filter().AddDropAddr(img.Net.IP)
		if old := a.pods[op.pod]; old != nil && !old.Destroyed() {
			old.Destroy()
		}
		pod, rerr := ckpt.Restore(a.kern, img)
		if rerr != nil {
			op.phRestore.End(trace.Str("err", rerr.Error()))
			a.fail(op.conn, msgMigrateDone, &wireMsg{Seq: op.Seq, Pod: op.pod, ctx: op.span.Context()}, rerr)
			op.Fail(rerr)
			return
		}
		op.restored = pod
		a.pods[op.pod] = pod
		a.cpu.Do(a.params.FilterCost, func() {
			if op.Aborted() {
				return
			}
			pod.Resume()
			a.kern.Stack().Filter().RemoveRule(op.filterID)
			op.filterID = 0
			// Re-announce now that the pod is resumed and unfiltered.
			// Restore already broadcast a gratuitous ARP, but the source
			// pod still exists until commit; announcing again from the
			// final network state closes any window in which the switch
			// re-learned the old port. A quiescent pod (a server owing
			// its peers no data) would never source a frame on its own,
			// so a stale CAM entry would black-hole it forever.
			pod.AnnounceLocation()
			a.Stats.MigrationsIn++
			now := a.kern.Engine().Now()
			downtime := now.Sub(op.frozeAt)
			op.phRestore.End(trace.Int("downtime_us", int64(downtime/sim.Microsecond)))
			op.endSpans()
			op.Finish()
			op.conn.send(&wireMsg{
				Type:            msgMigrateDone,
				Seq:             op.Seq,
				Pod:             op.pod,
				LocalDuration:   now.Sub(op.Started()),
				BlockedDuration: downtime,
				ImageBytes:      img.MemoryBytes(),
				ctx:             op.span.Context(),
			})
		})
	})
}
