package core

import (
	"errors"
	"fmt"

	"cruz/internal/ctl"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/trace"
)

// Membership and automatic recovery (the coordinator side of the
// failure-handling extension of §5, taken to completion). The
// coordinator pings every registered node on a virtual-time ticker;
// lease expiry declares the node failed, aborts anything in flight that
// touches it, and — for watched jobs — drives recovery end to end:
// place the failed pods on surviving or spare nodes, fetch any image the
// new home does not already replicate, and restart the whole job from
// the newest checkpoint every failed pod still has a living holder for.

// Errors surfaced by recovery.
var (
	ErrNodeFailed = errors.New("core: node failed")
	ErrNoReplica  = errors.New("core: no surviving replica of a committed checkpoint")
	ErrNoTarget   = errors.New("core: no surviving node can host the pod")
)

// nodeInfo is one registered agent node.
type nodeInfo struct {
	name     string
	addr     tcpip.AddrPort
	spare    bool
	index    int // registration order: the deterministic tiebreak
	alive    bool
	lastPong sim.Time
	load     int // live pods reported by the latest pong
}

// watch is one job under automatic recovery.
type watch struct {
	job        *Job
	onRecovery func(*RecoveryResult, error)
}

// RecoveredPod describes where one failed pod went.
type RecoveredPod struct {
	Pod string
	// From is the surviving replica the image came from; To the new home
	// node. Transferred is false when the new home already held the
	// image (replication made the fetch free). Reconstructed marks a pod
	// whose image no surviving node held whole: the new home pulled the
	// shard subsets of M live erasure-code holders (From names the first)
	// and decoded the chain locally.
	From          string
	To            string
	Transferred   bool
	Reconstructed bool
}

// RecoveryResult reports one automatic recovery, with MTTR split into
// the phases the evaluation tables break out.
type RecoveryResult struct {
	Job        string
	FailedNode string
	// Seq is the checkpoint the job restarted from: the newest committed
	// sequence every failed pod still had a living holder for.
	Seq  int
	Pods []RecoveredPod
	// Phase durations: Detect spans last proof of life to lease expiry;
	// Place is the placement decision; Transfer the image fetches
	// (zero when replicas already sit on the new homes); Restart the
	// coordinated restart. MTTR is their sum.
	Detect   sim.Duration
	Place    sim.Duration
	Transfer sim.Duration
	Restart  sim.Duration
	MTTR     sim.Duration
	// Reconstruct is the longest per-pod erasure decode window, for pods
	// no surviving node held whole. It happens on the new home inside the
	// transfer phase, so it is a decomposition of Transfer, not an extra
	// MTTR term; zero when every image came from a full replica.
	Reconstruct sim.Duration
	// TransferBytes is what the fetches actually moved.
	TransferBytes int64
	// RestartResult is the underlying coordinated restart's report.
	RestartResult *RestartResult
}

// recoveryOp tracks one in-flight recovery.
type recoveryOp struct {
	*ctl.Op
	job        *Job
	w          *watch
	failedNode *nodeInfo
	seq        int
	assign     map[string]tcpip.AddrPort // failed pod -> new home agent
	pods       []RecoveredPod
	ecSources  map[string][]tcpip.AddrPort // reconstructed pod -> shard holders to pull

	detect        sim.Duration
	placeStart    sim.Time
	place         sim.Duration
	transferStart sim.Time
	transfer      sim.Duration
	restartStart  sim.Time
	transferBytes int64
	reconstruct   sim.Duration // max per-pod decode window

	span       trace.Span
	phPlace    trace.Span
	phTransfer trace.Span
	phRestart  trace.Span
}

func (rec *recoveryOp) endSpans(args ...trace.Arg) {
	rec.phPlace.End(args...)
	rec.phTransfer.End(args...)
	rec.phRestart.End(args...)
	rec.span.End(args...)
}

// involves reports whether the recovery depends on the given node.
func (rec *recoveryOp) involves(addr tcpip.AddrPort) bool {
	for _, m := range rec.job.Members {
		if m.Agent == addr {
			return true
		}
	}
	for _, a := range rec.assign {
		if a == addr {
			return true
		}
	}
	return false
}

func recoveryKey(job string) string { return "recovery/" + job }

// RegisterNode makes a node's agent known to the membership layer. Spare
// nodes host no pods initially and exist to absorb recovered ones.
func (c *Coordinator) RegisterNode(name string, addr tcpip.AddrPort, spare bool) {
	if c.nodeByAddr[addr] != nil {
		return
	}
	n := &nodeInfo{name: name, addr: addr, spare: spare, index: len(c.nodes), alive: true}
	c.nodes = append(c.nodes, n)
	c.nodeByAddr[addr] = n
}

// Watch puts a job under automatic recovery: heartbeats start (if not
// already running), and a detected failure of any member's node triggers
// recovery, reported through onRecovery.
func (c *Coordinator) Watch(job *Job, onRecovery func(*RecoveryResult, error)) {
	c.watches = append(c.watches, &watch{job: job, onRecovery: onRecovery})
	now := c.stack.Engine().Now()
	addrs := make([]tcpip.AddrPort, 0, len(c.nodes))
	for _, n := range c.nodes {
		n.lastPong = now
		addrs = append(addrs, n.addr)
	}
	c.connectAddrs(addrs, nil)
	if c.ticker == nil {
		c.ticker = c.stack.Engine().NewTicker(c.params.heartbeatEvery(), c.heartbeatTick)
	}
}

// heartbeatTick expires leases, then pings every live node.
func (c *Coordinator) heartbeatTick() {
	now := c.stack.Engine().Now()
	lease := c.params.leaseTimeout()
	for _, n := range c.nodes {
		if !n.alive {
			continue
		}
		if now.Sub(n.lastPong) > lease {
			c.declareFailed(n)
			continue
		}
		cc, ok := c.conns[n.addr]
		if !ok || !cc.TCP().Established() {
			continue
		}
		conn := cc
		if c.tr.Enabled() {
			c.tr.Instant(c.stack.Name(), "core", "ping", trace.Str("node", n.name))
		}
		c.cpu.Do(c.params.MsgCost, func() { conn.send(&wireMsg{Type: msgPing}) })
	}
}

// handlePong refreshes a node's lease and load.
func (c *Coordinator) handlePong(cc *ctlConn, m *wireMsg) {
	n := c.nodeByAddr[cc.TCP().RemoteAddr()]
	if n == nil || !n.alive {
		return
	}
	n.lastPong = c.stack.Engine().Now()
	n.load = m.Load
}

// declareFailed marks the node dead, fails every in-flight operation
// that depends on it (the agents roll back via <abort> fan-out), and
// starts recovery for each watched job with a member there.
func (c *Coordinator) declareFailed(n *nodeInfo) {
	n.alive = false
	if c.tr.Enabled() {
		c.tr.Instant(c.stack.Name(), "core", "node.failed", trace.Str("node", n.name))
	}
	// Lease expiry is a flight-recorder trigger: the dump captures the
	// heartbeat window that led to the declaration.
	c.tr.DumpFlight("lease.expiry", "node "+n.name)
	var victims []*ctl.Op
	c.table.Each(func(o *ctl.Op) {
		switch d := o.Data.(type) {
		case *coordOp:
			for _, m := range d.job.Members {
				if m.Agent == n.addr {
					victims = append(victims, o)
					break
				}
			}
		case *recoveryOp:
			if d.involves(n.addr) {
				victims = append(victims, o)
			}
		case *migrateOp:
			if d.src == n.addr || d.dst == n.addr {
				victims = append(victims, o)
			}
		}
	})
	for _, o := range victims {
		o.Fail(fmt.Errorf("%w: %s", ErrNodeFailed, n.name))
	}
	for _, w := range c.watches {
		for _, m := range w.job.Members {
			if m.Agent == n.addr {
				c.startRecovery(w, n)
				break
			}
		}
	}
}

// startRecovery begins the detect->place->transfer->restart pipeline.
func (c *Coordinator) startRecovery(w *watch, failed *nodeInfo) {
	o, err := c.table.Begin("recovery", recoveryKey(w.job.Name), 0)
	if err != nil {
		return // recovery for this job already in flight
	}
	now := c.stack.Engine().Now()
	rec := &recoveryOp{
		Op: o, job: w.job, w: w, failedNode: failed,
		assign: make(map[string]tcpip.AddrPort),
		detect: now.Sub(failed.lastPong),
	}
	o.Data = rec
	if c.tr.Enabled() {
		// The recovery op root. The detect window (last proof of life to
		// lease expiry) precedes this span, so it rides along as a lead
		// argument that critical-path analysis turns into a lead segment.
		rec.span = c.tr.BeginOp(c.stack.Name(), "core", "recovery",
			trace.Str("job", w.job.Name), trace.Str("failed", failed.name),
			trace.Int("lead.detect_us", int64(rec.detect/sim.Microsecond)))
		rec.phPlace = c.tr.BeginChild(rec.span.Context(), c.stack.Name(), trace.PhaseCat,
			"recovery.place", trace.Str("job", w.job.Name))
	}
	c.tr.DumpFlight("recovery.start", w.job.Name)
	o.OnFail(func(_ *ctl.Op, err error) {
		rec.endSpans(trace.Str("err", err.Error()))
		if rec.w.onRecovery != nil {
			rec.w.onRecovery(nil, err)
		}
	})
	rec.placeStart = now
	c.cpu.Do(c.params.MsgCost, func() { c.placeRecovery(rec) })
}

// holderNodes returns the live registered nodes holding (pod, seq), in
// registration order (deterministic; the holder set is a map).
func (c *Coordinator) holderNodes(pod string, seq int) []*nodeInfo {
	set := c.holders[pod][seq]
	if len(set) == 0 {
		return nil
	}
	var out []*nodeInfo
	for _, n := range c.nodes {
		if n.alive && set[n.addr] {
			out = append(out, n)
		}
	}
	return out
}

// KnownHolders returns how many agents the coordinator records as
// holding the full image chain for (pod, seq): the commit holder plus
// every <replicated> report received so far. Harnesses that kill nodes
// gate on it — an agent-side replication counter ticks in the event that
// *enqueues* the placement report, one network flight before the
// registry learns of the copy.
func (c *Coordinator) KnownHolders(pod string, seq int) int {
	return len(c.holders[pod][seq])
}

// KnownECShards returns how many ring positions of the erasure-coded
// shard set for (pod, seq) have reported adoption (same gating role as
// KnownHolders for EC durability).
func (c *Coordinator) KnownECShards(pod string, seq int) int {
	if set := c.ecHolders[pod][seq]; set != nil {
		return len(set.byPos)
	}
	return 0
}

// addHolder records that addr holds the image chain for (pod, seq).
func (c *Coordinator) addHolder(pod string, seq int, addr tcpip.AddrPort) {
	if c.holders[pod] == nil {
		c.holders[pod] = make(map[int]map[tcpip.AddrPort]bool)
	}
	if c.holders[pod][seq] == nil {
		c.holders[pod][seq] = make(map[tcpip.AddrPort]bool)
	}
	c.holders[pod][seq][addr] = true
}

// recordCommitHolders marks each member's own agent as a holder of the
// freshly committed checkpoint.
func (c *Coordinator) recordCommitHolders(job *Job, seq int) {
	for _, m := range job.Members {
		c.addHolder(m.Pod, seq, m.Agent)
	}
}

// handleReplicated feeds an agent's placement report into the holder
// registry: a peer now holds the image chain.
func (c *Coordinator) handleReplicated(m *wireMsg) {
	if m.Repl == nil {
		return
	}
	c.addHolder(m.Pod, m.Seq, tcpip.AddrPort{Addr: m.Repl.PeerIP, Port: m.Repl.PeerPort})
	if c.tr.Enabled() {
		c.tr.Instant(c.stack.Name(), "core", "replicated",
			trace.Str("pod", m.Pod), trace.Int("seq", int64(m.Seq)))
	}
}

// handleECHolding feeds an agent's shard placement report into the EC
// registry: the peer at ring position Repl.Holder now stores its shard
// subset of (pod, seq), and the set decodes from any Repl.ECM holders.
func (c *Coordinator) handleECHolding(m *wireMsg) {
	if m.Repl == nil {
		return
	}
	if c.ecHolders[m.Pod] == nil {
		c.ecHolders[m.Pod] = make(map[int]*ecSetHolders)
	}
	set := c.ecHolders[m.Pod][m.Seq]
	if set == nil {
		set = &ecSetHolders{m: m.Repl.ECM, byPos: make(map[int]tcpip.AddrPort)}
		c.ecHolders[m.Pod][m.Seq] = set
	}
	set.byPos[m.Repl.Holder] = tcpip.AddrPort{Addr: m.Repl.PeerIP, Port: m.Repl.PeerPort}
	if c.tr.Enabled() {
		c.tr.Instant(c.stack.Name(), "core", "ec.holding",
			trace.Str("pod", m.Pod), trace.Int("seq", int64(m.Seq)),
			trace.Int("shard", int64(m.Repl.Holder)))
	}
}

// ecLiveHolders returns the live shard holders of (pod, seq) in ring-
// position order (deterministic) plus the set's data-shard count M.
// Positions are distinct, so any M entries carry M distinct shards per
// stripe — the decode threshold. M is 0 when no set was registered.
func (c *Coordinator) ecLiveHolders(pod string, seq int) ([]tcpip.AddrPort, int) {
	set := c.ecHolders[pod][seq]
	if set == nil {
		return nil, 0
	}
	maxPos := 0
	for pos := range set.byPos {
		if pos > maxPos {
			maxPos = pos
		}
	}
	var out []tcpip.AddrPort
	for pos := 0; pos <= maxPos; pos++ {
		addr, ok := set.byPos[pos]
		if !ok {
			continue
		}
		if n := c.nodeByAddr[addr]; n != nil && n.alive {
			out = append(out, addr)
		}
	}
	return out, set.m
}

// ecRecoverable reports whether (pod, seq) can be rebuilt from shards:
// at least M of the M+R holders are still alive.
func (c *Coordinator) ecRecoverable(pod string, seq int) bool {
	live, m := c.ecLiveHolders(pod, seq)
	return m > 0 && len(live) >= m
}

// placeRecovery decides the restore sequence and the new home (and
// source replica) for every failed pod.
func (c *Coordinator) placeRecovery(rec *recoveryOp) {
	if !rec.Active() {
		return
	}
	job := rec.job
	var failedPods []string
	for _, m := range job.Members {
		if m.Agent == rec.failedNode.addr {
			failedPods = append(failedPods, m.Pod)
		}
	}
	// seq*: the newest committed checkpoint every failed pod still has a
	// living holder for — a full replica, or enough live erasure-code
	// shard holders to decode the chain.
	seqStar := 0
	for s := c.committed[job.Name]; s >= 1 && seqStar == 0; s-- {
		ok := true
		for _, p := range failedPods {
			if len(c.holderNodes(p, s)) == 0 && !c.ecRecoverable(p, s) {
				ok = false
				break
			}
		}
		if ok {
			seqStar = s
		}
	}
	if seqStar == 0 {
		rec.Fail(fmt.Errorf("%w: job %s", ErrNoReplica, job.Name))
		return
	}
	rec.seq = seqStar

	// Place each failed pod: spread across nodes hosting the fewest pods
	// of this job, prefer a node already holding the image (free
	// transfer), then the lightest load, then registration order.
	jobPodsOn := func(addr tcpip.AddrPort) int {
		n := 0
		for _, m := range job.Members {
			a := m.Agent
			if t, ok := rec.assign[m.Pod]; ok {
				a = t
			}
			if a == addr {
				n++
			}
		}
		return n
	}
	for _, p := range failedPods {
		var target *nodeInfo
		var tScore [3]int
		for _, n := range c.nodes {
			if !n.alive {
				continue
			}
			holds := 0
			if !c.holders[p][seqStar][n.addr] {
				holds = 1 // needs a transfer
			}
			score := [3]int{jobPodsOn(n.addr), holds, n.load}
			if target == nil || score[0] < tScore[0] ||
				(score[0] == tScore[0] && (score[1] < tScore[1] ||
					(score[1] == tScore[1] && score[2] < tScore[2]))) {
				target, tScore = n, score
			}
		}
		if target == nil {
			rec.Fail(fmt.Errorf("%w: pod %s", ErrNoTarget, p))
			return
		}
		rec.assign[p] = target.addr
		holders := c.holderNodes(p, seqStar)
		if len(holders) == 0 {
			// No full replica survives: the new home reconstructs from M
			// live shard holders. The target's own shards (if it is one)
			// count toward M via its local lookup, so exclude it from the
			// pull list; positions are distinct, so the first M entries
			// give M distinct shards per stripe.
			live, m := c.ecLiveHolders(p, seqStar)
			need := m
			var pull []tcpip.AddrPort
			for _, h := range live {
				if h == target.addr {
					need--
					continue
				}
				pull = append(pull, h)
			}
			if need < 1 {
				need = 1 // the fetch protocol needs at least one source
			}
			if len(pull) < need {
				rec.Fail(fmt.Errorf("%w: pod %s (ec shards)", ErrNoReplica, p))
				return
			}
			pull = pull[:need]
			if rec.ecSources == nil {
				rec.ecSources = make(map[string][]tcpip.AddrPort)
			}
			rec.ecSources[p] = pull
			from := target.name
			if n := c.nodeByAddr[pull[0]]; n != nil {
				from = n.name
			}
			rec.pods = append(rec.pods, RecoveredPod{
				Pod: p, From: from, To: target.name,
				Transferred: true, Reconstructed: true,
			})
			if c.tr.Enabled() {
				c.tr.InstantCtx(rec.span.Context(), c.stack.Name(), "core", "recovery.placed",
					trace.Str("pod", p), trace.Str("to", target.name),
					trace.Str("mode", "reconstruct"), trace.Int("sources", int64(len(pull))))
			}
			continue
		}
		// Source: the lightest-loaded surviving holder (registration
		// order breaks ties); irrelevant when the target already holds.
		src := holders[0]
		for _, h := range holders[1:] {
			if h.load < src.load {
				src = h
			}
		}
		rec.pods = append(rec.pods, RecoveredPod{
			Pod: p, From: src.name, To: target.name,
			Transferred: !c.holders[p][seqStar][target.addr],
		})
		if c.tr.Enabled() {
			c.tr.InstantCtx(rec.span.Context(), c.stack.Name(), "core", "recovery.placed",
				trace.Str("pod", p), trace.Str("to", target.name), trace.Str("from", src.name))
		}
	}
	now := c.stack.Engine().Now()
	rec.place = now.Sub(rec.placeStart)
	rec.phPlace.End()
	rec.transferStart = now
	if c.tr.Enabled() {
		rec.phTransfer = c.tr.BeginChild(rec.span.Context(), c.stack.Name(), trace.PhaseCat,
			"recovery.transfer", trace.Str("job", job.Name))
	}

	// Transfer phase: fetch images onto new homes that lack them.
	fetches := 0
	for i, rp := range rec.pods {
		if !rec.pods[i].Transferred {
			continue
		}
		fetches++
		rec.Expect("fetch", rp.Pod)
	}
	if fetches == 0 {
		c.startRecoveryRestart(rec)
		return
	}
	for _, rp := range rec.pods {
		if !rp.Transferred {
			continue
		}
		rp := rp
		c.cpu.Do(c.params.MsgCost, func() {
			if !rec.Active() {
				return
			}
			target := rec.assign[rp.Pod]
			cc, ok := c.conns[target]
			if !ok || !cc.TCP().Established() {
				rec.Fail(fmt.Errorf("%w: %s", ErrNotConnected, target))
				return
			}
			if rp.Reconstructed {
				srcs := rec.ecSources[rp.Pod]
				members := make([]GroupMember, 0, len(srcs))
				for _, s := range srcs {
					members = append(members, GroupMember{IP: s.Addr, Port: s.Port})
				}
				cc.send(&wireMsg{Type: msgECFetch, Seq: rec.seq, Pod: rp.Pod, Repl: &replPayload{
					Sources: members,
				}, ctx: rec.phTransfer.Context()})
				return
			}
			var src *nodeInfo
			for _, n := range c.nodes {
				if n.name == rp.From {
					src = n
					break
				}
			}
			cc.send(&wireMsg{Type: msgFetch, Seq: rec.seq, Pod: rp.Pod, Repl: &replPayload{
				PeerIP: src.addr.Addr, PeerPort: src.addr.Port,
			}, ctx: rec.phTransfer.Context()})
		})
	}
}

// handleFetchDone advances the recovery transfer barrier.
func (c *Coordinator) handleFetchDone(m *wireMsg) {
	var rec *recoveryOp
	c.table.Each(func(o *ctl.Op) {
		if rec != nil {
			return
		}
		if r, ok := o.Data.(*recoveryOp); ok && r.seq == m.Seq {
			if _, mine := r.assign[m.Pod]; mine {
				rec = r
			}
		}
	})
	if rec == nil {
		return
	}
	if m.Err != "" {
		rec.Fail(fmt.Errorf("%w: fetch %s: %s", ErrNodeFailed, m.Pod, m.Err))
		return
	}
	if !rec.Arrive("fetch", m.Pod) {
		return
	}
	c.addHolder(m.Pod, m.Seq, rec.assign[m.Pod])
	if m.Repl != nil {
		rec.transferBytes += m.Repl.Bytes
	}
	// A reconstructed pod reports its decode-to-disk window; the phase
	// barrier makes the slowest one the Transfer decomposition.
	if m.LocalDuration > rec.reconstruct {
		rec.reconstruct = m.LocalDuration
	}
	if rec.Cleared("fetch") {
		c.startRecoveryRestart(rec)
	}
}

// startRecoveryRestart re-homes the failed members and restarts the
// whole job from seq*.
func (c *Coordinator) startRecoveryRestart(rec *recoveryOp) {
	now := c.stack.Engine().Now()
	rec.transfer = now.Sub(rec.transferStart)
	rec.phTransfer.End(trace.Int("bytes", rec.transferBytes))
	rec.restartStart = now
	if c.tr.Enabled() {
		rec.phRestart = c.tr.BeginChild(rec.span.Context(), c.stack.Name(), trace.PhaseCat,
			"recovery.restart", trace.Str("job", rec.job.Name), trace.Int("seq", int64(rec.seq)))
	}
	job := rec.job
	for i := range job.Members {
		if addr, ok := rec.assign[job.Members[i].Pod]; ok {
			job.Members[i].Agent = addr
		}
	}
	// The restart rolls the whole job back to seq*; later checkpoints
	// (if any) have no surviving copy for the failed pods.
	if rec.seq < c.committed[job.Name] {
		c.committed[job.Name] = rec.seq
	}
	c.Connect(job, func(err error) {
		if err != nil {
			rec.Fail(err)
			return
		}
		c.runRestart(job, rec.seq, true, rec.phRestart.Context(), func(res *RestartResult, err error) {
			if err != nil {
				rec.Fail(err)
				return
			}
			end := c.stack.Engine().Now()
			restartDur := end.Sub(rec.restartStart)
			result := &RecoveryResult{
				Job:           job.Name,
				FailedNode:    rec.failedNode.name,
				Seq:           rec.seq,
				Pods:          rec.pods,
				Detect:        rec.detect,
				Place:         rec.place,
				Transfer:      rec.transfer,
				Restart:       restartDur,
				MTTR:          rec.detect + rec.place + rec.transfer + restartDur,
				Reconstruct:   rec.reconstruct,
				TransferBytes: rec.transferBytes,
				RestartResult: res,
			}
			rec.phRestart.End()
			rec.span.End(trace.Int("mttr_us", int64(result.MTTR/sim.Microsecond)))
			rec.Finish()
			if rec.w.onRecovery != nil {
				rec.w.onRecovery(result, nil)
			}
		})
	})
}
