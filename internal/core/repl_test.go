package core

import (
	"testing"

	"cruz/internal/sim"
	"cruz/internal/tcpip"
)

// ringPeers wires each agent's replication ring: agent i pushes to i+1.
func ringPeers(cl *cluster) {
	n := len(cl.agents)
	for i, ag := range cl.agents {
		peers := make([]tcpip.AddrPort, 0, n-1)
		for j := 1; j < n; j++ {
			peers = append(peers, cl.agents[(i+j)%n].Addr())
		}
		ag.SetPeers(peers)
	}
}

// allReplicated waits until every agent reports at least n completed
// replications.
func (cl *cluster) allReplicated(n uint64) bool {
	return cl.runUntil(func() bool {
		for _, ag := range cl.agents {
			if ag.Stats.Replications < n {
				return false
			}
		}
		return true
	}, 30*sim.Second)
}

// TestReplicationPlacesImageOnPeer: a checkpoint with Replicas=1 lands a
// usable copy of each pod's image on the next ring peer, off the
// protocol's critical path (message count for the cycle is unchanged).
func TestReplicationPlacesImageOnPeer(t *testing.T) {
	cl := newCluster(t, 4, 200*sim.Microsecond)
	ringPeers(cl)
	cl.run(1 * sim.Second)

	res := cl.checkpoint(CheckpointOptions{Replicas: 1})
	// Replication is asynchronous: the coordinated cycle still costs the
	// blocking protocol's 4 messages per member.
	if res.Messages != 4*4 {
		t.Fatalf("Messages = %d, want 16 (replication must stay off the cycle)", res.Messages)
	}
	if !cl.allReplicated(1) {
		t.Fatal("replication never completed")
	}
	for i := range cl.agents {
		peer := (i + 1) % 4
		if !cl.stores[peer].HasSeq(podName(i), res.Seq) {
			t.Fatalf("peer store %d lacks %s seq %d", peer, podName(i), res.Seq)
		}
	}
	cl.run(1 * sim.Second)
	cl.checkHealthy(cl.workers)
}

// TestReplicationDeltaShrinks: with dedup, the second replication of a
// mostly-unchanged heap ships only the delta — far fewer bytes than the
// first full transfer.
func TestReplicationDeltaShrinks(t *testing.T) {
	cl := newCluster(t, 2, 200*sim.Microsecond)
	ringPeers(cl)
	cl.run(1 * sim.Second)

	cl.checkpoint(CheckpointOptions{Dedup: true, Replicas: 1})
	if !cl.allReplicated(1) {
		t.Fatal("first replication never completed")
	}
	first := cl.agents[0].Stats.ReplBytes

	cl.run(50 * sim.Millisecond) // a few rounds dirty a handful of pages
	cl.checkpoint(CheckpointOptions{Dedup: true, Incremental: true, Replicas: 1})
	if !cl.allReplicated(2) {
		t.Fatal("second replication never completed")
	}
	second := cl.agents[0].Stats.ReplBytes - first

	if first == 0 || second == 0 {
		t.Fatalf("replication moved no bytes: first=%d second=%d", first, second)
	}
	if second >= first {
		t.Fatalf("delta replication did not shrink: first=%d second=%d", first, second)
	}
	if cl.agents[0].OpenOps() != 0 || cl.agents[1].OpenOps() != 0 {
		t.Fatalf("leaked agent ops: %d/%d", cl.agents[0].OpenOps(), cl.agents[1].OpenOps())
	}
}
