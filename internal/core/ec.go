package core

import (
	"fmt"
	"strconv"

	"cruz/internal/ckpt"
	"cruz/internal/ctl"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/trace"
)

// Erasure-coded durability (agent side). After a deduplicated checkpoint
// commits, the primary stripes the chain's distinct chunks into groups of
// M, computes R parity blocks per stripe, and streams each of the first
// M+R ring peers its rotated shard subset — 1/M of the data plus parity
// instead of a full copy per replica, so the durable footprint is
// (M+R)/M of the image where k-way replication pays k. Each holder
// exchange reuses the offer/want/data delta shape: unchanged stripes
// dedupe away exactly like unchanged chunks under replication. Shard data
// travels at ctl.TierBackground, so it yields to foreground control
// traffic and migration rounds and is paced by the node's token bucket.
//
// Recovery composes with the coordinator's registry: when no surviving
// node holds the full image, the coordinator directs the new home to pull
// the shard subsets of any M live holders (ec-fetch -> ec-pull ->
// ec-shards) and reconstruct the missing chunks locally — any R node
// losses are survivable by construction, because the rotated placement
// gives every holder exactly one shard per stripe.

// ecKey names one primary->holder shard exchange.
func ecKey(pod string, seq int, remote tcpip.AddrPort) string {
	return "ec/" + pod + "/" + strconv.Itoa(seq) + "/" + addrKey(remote)
}

// ecFetchKey names the reconstruction a recovery target runs for a pod.
func ecFetchKey(pod string) string { return "ec-fetch/" + pod }

// ecOp is the primary side of one shard exchange with one holder.
type ecOp struct {
	*ctl.Op
	pod     string
	peer    tcpip.AddrPort
	conn    *ctlConn
	coord   msgSink
	holder  int
	set     *ckpt.ECSet
	setBlob []byte
	span    trace.Span
}

// ecFetchOp is the recovery target side of a reconstruction: pull shard
// subsets from M surviving holders, decode, install, report.
type ecFetchOp struct {
	*ctl.Op
	pod       string
	conn      msgSink       // coordinator connection for the final fetch-done
	sources   []GroupMember // surviving holders, pulled one at a time
	next      int           // next source to pull
	pending   int           // pulls not yet answered
	adopting  int           // arrival disk writes still in flight
	set       *ckpt.ECSet
	manifests map[int][]byte
	blocks    []ckpt.ChunkData
	wireBytes int64
	span      trace.Span
}

// SetEC configures erasure-coded durability: committed deduplicated
// checkpoints are striped M+R across the first M+R ring peers instead of
// being fully replicated. Checkpoints that cannot stripe (blob form, or
// fewer than M+R peers) fall back to R-way replication.
func (a *Agent) SetEC(p ckpt.ECParams) { a.ec = p }

// ecEligible reports whether the committed checkpoint can be erasure
// coded: EC configured, the image is deduplicated (stripes are chunk
// groups), and the ring has a peer for every shard.
func (a *Agent) ecEligible(dedup bool) bool {
	return a.ec.Enabled() && dedup && len(a.peers) >= a.ec.M+a.ec.R
}

// startDurability dispatches the committed checkpoint's durability work:
// erasure-coded shard distribution when eligible, plain replication
// otherwise (an EC-configured agent falls back to R replicas, keeping the
// survive-R-losses guarantee).
func (a *Agent) startDurability(pod string, seq, replicas int, dedup bool, coord msgSink, ctx trace.SpanContext) {
	if a.ecEligible(dedup) {
		a.startECDistribute(pod, seq, coord, ctx)
		return
	}
	n := replicas
	if a.ec.Enabled() && n < a.ec.R {
		n = a.ec.R
	}
	if n > 0 {
		a.startReplication(pod, seq, n, coord, ctx)
	}
}

// startECDistribute encodes the committed chain into M+R shards and
// streams each holder its subset. Encoding cost is charged at EncodeBPS
// over the striped data; the parity lands on the local disk first (the
// primary is itself a holder of record until the set supersedes).
func (a *Agent) startECDistribute(pod string, seq int, coord msgSink, ctx trace.SpanContext) {
	plan, err := a.store.PlanECSave(pod, seq, a.ec)
	if err != nil {
		a.Stats.ECFailures++
		return
	}
	setBlob, err := plan.Set.Encode()
	if err != nil {
		a.Stats.ECFailures++
		return
	}
	var sp trace.Span
	if a.tr.Enabled() {
		sp = a.tr.BeginChild(ctx, a.kern.Name(), "core", "agent.ec-encode",
			trace.Str("pod", pod), trace.Int("seq", int64(seq)),
			trace.Int("stripes", int64(plan.Stripes)),
			trace.Int("parity_bytes", plan.ParityBytes))
	}
	// Parity is a GF(256) pass over every striped byte.
	a.cpu.Do(bytesCost(plan.DataBytes, a.params.EncodeBPS), func() {
		a.store.Disk().Write(plan.ParityBytes, func() {
			sp.End()
			for h := 0; h < plan.Set.Shards(); h++ {
				a.ecOfferTo(pod, seq, plan.Set, setBlob, h, coord, ctx)
			}
		})
	})
}

// ecOfferTo opens one shard exchange: offer the chain and this holder's
// rotated hash subset; the holder answers with its missing delta.
func (a *Agent) ecOfferTo(pod string, seq int, set *ckpt.ECSet, setBlob []byte, holder int, coord msgSink, ctx trace.SpanContext) {
	peer := a.peers[holder]
	cc, err := a.peerConn(peer)
	if err != nil {
		a.Stats.ECFailures++
		return
	}
	o, err := a.table.Begin("ec", ecKey(pod, seq, cc.TCP().RemoteAddr()), seq)
	if err != nil {
		return // exchange already in flight
	}
	op := &ecOp{Op: o, pod: pod, peer: peer, conn: cc, coord: coord, holder: holder, set: set, setBlob: setBlob}
	o.Data = op
	if a.tr.Enabled() {
		op.span = a.tr.BeginChild(ctx, a.kern.Name(), "core", "agent.ec-distribute",
			trace.Str("pod", pod), trace.Int("seq", int64(seq)),
			trace.Int("holder", int64(holder)))
	}
	o.OnFail(func(_ *ctl.Op, err error) {
		a.Stats.ECFailures++
		op.span.End(trace.Str("err", err.Error()))
	})
	send := func() {
		cc.send(&wireMsg{Type: msgECOffer, Seq: seq, Pod: pod, ctx: op.span.Context(), Repl: &replPayload{
			Chain: set.Chain, Dedup: true, Hashes: set.HolderHashes(holder), Holder: holder,
		}})
	}
	o.ArmRetries(a.params.ReplTimeout, 1, func(*ctl.Op) { send() }, ErrReplTimeout)
	send()
}

// ecOpFor locates the primary-side exchange a reply on cc belongs to.
func (a *Agent) ecOpFor(pod string, seq int, cc *ctlConn) *ecOp {
	if o := a.table.Get(ecKey(pod, seq, cc.TCP().RemoteAddr())); o != nil {
		if op, ok := o.Data.(*ecOp); ok {
			return op
		}
	}
	return nil
}

// handleECOffer is the holder side: answer with the chain manifests and
// shard blocks this store lacks. Set-membership costs DedupPerChunk per
// offered hash, as in replication.
func (a *Agent) handleECOffer(c *ctlConn, m *wireMsg) {
	if m.Repl == nil {
		return
	}
	offer := &ckpt.Offer{Pod: m.Pod, Seq: m.Seq, Chain: m.Repl.Chain, Dedup: true, Hashes: m.Repl.Hashes}
	a.cpu.Do(a.params.DedupPerChunk*sim.Duration(len(offer.Hashes)), func() {
		needSeqs, needHashes := a.store.ECMissingFor(offer)
		c.send(&wireMsg{Type: msgECWant, Seq: m.Seq, Pod: m.Pod, ctx: m.ctx, Repl: &replPayload{
			NeedSeqs: needSeqs, NeedHashes: needHashes, Holder: m.Repl.Holder,
		}})
	})
}

// handleECWant is the primary side: build and ship the shard delta plus
// the set manifest, at background tier.
func (a *Agent) handleECWant(c *ctlConn, m *wireMsg) {
	op := a.ecOpFor(m.Pod, m.Seq, c)
	if op == nil || m.Repl == nil {
		return
	}
	tx, err := a.store.BuildTransfer(m.Pod, m.Seq, m.Repl.NeedSeqs, m.Repl.NeedHashes)
	if err != nil {
		op.Fail(err)
		return
	}
	op.ArmTimeout(a.params.ReplTimeout, ErrReplTimeout)
	a.cpu.Do(bytesCost(tx.TotalBytes, a.params.EncodeBPS), func() {
		if !op.Active() {
			return
		}
		op.conn.send(&wireMsg{Type: msgECData, Seq: m.Seq, Pod: m.Pod, ctx: op.span.Context(), tier: ctl.TierBackground, Repl: &replPayload{
			Manifests: tx.Manifests, Chunks: tx.Chunks, Bytes: tx.TotalBytes,
			ECSet: op.setBlob, Holder: op.holder,
		}})
	})
}

// handleECData is the holder side: adopt the shard subset (decode CPU,
// then the disk write) and acknowledge.
func (a *Agent) handleECData(c *ctlConn, m *wireMsg) {
	if m.Repl == nil {
		return
	}
	set, err := ckpt.DecodeECSet(m.Repl.ECSet)
	if err != nil {
		a.fail(c, msgECDone, m, err)
		return
	}
	holder := m.Repl.Holder
	manifests := m.Repl.Manifests
	chunks := m.Repl.Chunks
	a.cpu.Do(bytesCost(m.Repl.Bytes, a.params.EncodeBPS), func() {
		a.store.AdoptECShards(set, holder, manifests, chunks, m.ctx, func(n int64, aerr error) {
			if aerr != nil {
				a.fail(c, msgECDone, m, aerr)
				return
			}
			c.send(&wireMsg{Type: msgECDone, Seq: m.Seq, Pod: m.Pod, ctx: m.ctx, Repl: &replPayload{
				Bytes: n, Holder: holder,
			}})
		})
	})
}

// handleECDone is the primary side: the holder has its shards on disk.
// Report the placement to the coordinator's shard registry.
func (a *Agent) handleECDone(c *ctlConn, m *wireMsg) {
	op := a.ecOpFor(m.Pod, m.Seq, c)
	if op == nil {
		return
	}
	if m.Err != "" {
		op.Fail(fmt.Errorf("core: ec holder: %s", m.Err))
		return
	}
	var n int64
	if m.Repl != nil {
		n = m.Repl.Bytes
	}
	a.Stats.ECDistributions++
	a.Stats.ECShardBytes += n
	op.span.End(trace.Int("bytes", n))
	if op.coord != nil {
		op.coord.send(&wireMsg{Type: msgECHolding, Seq: m.Seq, Pod: m.Pod, ctx: op.span.Context(), Repl: &replPayload{
			Bytes: n, Holder: op.holder, ECM: op.set.M,
			PeerIP: op.peer.Addr, PeerPort: op.peer.Port,
		}})
	}
	op.Finish()
}

// handleECFetch is the recovery reconstruction, target side: the
// coordinator directs this agent to pull the shard subsets of the given
// surviving holders and rebuild (pod, seq) before the restart lands here.
func (a *Agent) handleECFetch(c *ctlConn, m *wireMsg) {
	if a.store.HasSeq(m.Pod, m.Seq) {
		c.send(&wireMsg{Type: msgFetchDone, Seq: m.Seq, Pod: m.Pod, ctx: m.ctx, Repl: &replPayload{Bytes: 0}})
		return
	}
	if m.Repl == nil || len(m.Repl.Sources) == 0 {
		a.fail(c, msgFetchDone, m, ErrUnknownPod)
		return
	}
	o, err := a.table.Begin("ec-fetch", ecFetchKey(m.Pod), m.Seq)
	if err != nil {
		a.fail(c, msgFetchDone, m, ErrBusy)
		return
	}
	op := &ecFetchOp{Op: o, pod: m.Pod, conn: c, sources: m.Repl.Sources, pending: len(m.Repl.Sources), manifests: make(map[int][]byte)}
	o.Data = op
	if a.tr.Enabled() {
		op.span = a.tr.BeginChild(m.ctx, a.kern.Name(), "core", "agent.ec-fetch",
			trace.Str("pod", m.Pod), trace.Int("seq", int64(m.Seq)),
			trace.Int("sources", int64(len(m.Repl.Sources))))
	}
	mm := *m
	o.OnFail(func(_ *ctl.Op, err error) {
		op.span.End(trace.Str("err", err.Error()))
		a.fail(c, msgFetchDone, &mm, err)
	})
	o.ArmTimeout(a.params.ReplTimeout, ErrReplTimeout)
	// Pull one source at a time. The target's link is the bottleneck
	// either way, so serial pulls cost no extra network time — but they
	// stagger the arrivals, so each subset's disk adoption overlaps the
	// next subset's transfer instead of every write queueing at the end.
	a.ecPullNext(op)
}

// ecPullNext issues the pull for op.sources[op.next], if any remain.
func (a *Agent) ecPullNext(op *ecFetchOp) {
	if op.next >= len(op.sources) {
		return
	}
	s := op.sources[op.next]
	op.next++
	cc, cerr := a.peerConn(s.addrPort())
	if cerr != nil {
		op.Fail(cerr)
		return
	}
	cc.send(&wireMsg{Type: msgECPull, Seq: op.Seq, Pod: op.pod, ctx: op.span.Context()})
}

// handleECPull is the holder side of a reconstruction: serve the shard
// manifest, the chain manifests, and every shard block this node holds.
// The reply streams at TierStream — recovery is latency-sensitive, unlike
// the background distribution that put the shards here.
func (a *Agent) handleECPull(c *ctlConn, m *wireMsg) {
	set, manifests, blocks, err := a.store.ECServe(m.Pod, m.Seq)
	if err != nil {
		a.fail(c, msgECShards, m, err)
		return
	}
	setBlob, err := set.Encode()
	if err != nil {
		a.fail(c, msgECShards, m, err)
		return
	}
	var total int64
	for _, b := range blocks {
		total += int64(len(b.Data))
	}
	for _, blob := range manifests {
		total += int64(len(blob))
	}
	a.cpu.Do(bytesCost(total, a.params.EncodeBPS), func() {
		c.send(&wireMsg{Type: msgECShards, Seq: m.Seq, Pod: m.Pod, ctx: m.ctx, tier: ctl.TierStream, Repl: &replPayload{
			ECSet: setBlob, Manifests: manifests, Chunks: blocks, Bytes: total,
		}})
	})
}

// handleECShards is the target side: accumulate one holder's
// contribution. Each subset's shard blocks go to disk as they arrive —
// they are content-addressed chunks, exactly like the distribute side's
// adoption — so the disk overlaps the remaining network pulls and the
// final decode pass only has the parity-recovered bytes left to write.
// Once every pulled holder has answered and landed, decode and install.
func (a *Agent) handleECShards(c *ctlConn, m *wireMsg) {
	o := a.table.Get(ecFetchKey(m.Pod))
	if o == nil || o.Seq != m.Seq {
		return
	}
	op, ok := o.Data.(*ecFetchOp)
	if !ok {
		return
	}
	if m.Err != "" {
		o.Fail(fmt.Errorf("core: ec holder: %s", m.Err))
		return
	}
	if m.Repl == nil {
		return
	}
	if op.set == nil && len(m.Repl.ECSet) > 0 {
		set, err := ckpt.DecodeECSet(m.Repl.ECSet)
		if err != nil {
			o.Fail(err)
			return
		}
		op.set = set
	}
	for seq, blob := range m.Repl.Manifests {
		op.manifests[seq] = blob
	}
	op.blocks = append(op.blocks, m.Repl.Chunks...)
	op.wireBytes += m.Repl.Bytes
	op.pending--
	a.ecPullNext(op)
	var arrived int64
	for _, cd := range m.Repl.Chunks {
		arrived += int64(len(cd.Data))
	}
	op.adopting++
	a.store.Disk().Write(arrived, func() {
		if !op.Active() {
			return
		}
		op.adopting--
		if op.pending == 0 && op.adopting == 0 {
			a.finishECReconstruct(op)
		}
	})
}

// finishECReconstruct decodes the gathered shards back into the
// checkpoint chain: a GF(256) pass over the striped bytes on the daemon
// CPU, the chunk installs, and one disk write of the parity-recovered
// bytes (the directly-arrived blocks hit disk as their subsets landed).
// The reported LocalDuration is the decode-to-disk window — the
// reconstruct share of the recovery's MTTR.
func (a *Agent) finishECReconstruct(op *ecFetchOp) {
	if op.set == nil {
		op.Fail(fmt.Errorf("core: ec reconstruct %s: no shard manifest arrived", op.pod))
		return
	}
	start := a.kern.Engine().Now()
	a.cpu.Do(bytesCost(op.set.DataBytes(), a.params.EncodeBPS), func() {
		if !op.Active() {
			return
		}
		rec, err := a.store.ReconstructEC(op.set, op.manifests, op.blocks)
		if err != nil {
			op.Fail(err)
			return
		}
		a.store.Disk().Write(rec.DecodedBytes, func() {
			if !op.Active() {
				return
			}
			a.Stats.Reconstructs++
			a.Stats.ReconstructedChunks += uint64(rec.DecodedChunks)
			now := a.kern.Engine().Now()
			op.span.End(
				trace.Int("decoded_stripes", int64(rec.DecodedStripes)),
				trace.Int("decoded_chunks", int64(rec.DecodedChunks)),
				trace.Int("bytes", op.wireBytes))
			op.conn.send(&wireMsg{
				Type:          msgFetchDone,
				Seq:           op.Seq,
				Pod:           op.pod,
				LocalDuration: now.Sub(start),
				ctx:           op.span.Context(),
				Repl:          &replPayload{Bytes: op.wireBytes},
			})
			op.Finish()
		})
	})
}
