package core

import (
	"testing"

	"cruz/internal/sim"
)

// TestProtocolUnderPacketLoss runs checkpoint/restart cycles while every
// link drops packets at random. Control messages ride the same simulated
// TCP as application data, so the protocol must make progress purely via
// retransmission — and the application's sequence invariant must survive
// every cycle.
func TestProtocolUnderPacketLoss(t *testing.T) {
	for _, loss := range []float64{0.01, 0.05} {
		loss := loss
		t.Run("", func(t *testing.T) {
			cl := newCluster(t, 3, 500*sim.Microsecond)
			for i := range cl.kernels {
				cl.sw.SetDropRate(cl.kernels[i].Stack().Interfaces()[0].NIC(), loss)
			}
			cl.run(2 * sim.Second)
			cl.checkHealthy(cl.workers)
			if cl.workers[0].Rounds == 0 {
				t.Fatal("ring made no progress under loss")
			}

			for cycle := 0; cycle < 2; cycle++ {
				res := cl.checkpoint(CheckpointOptions{})
				if res.Seq != cycle*1+cycle+1 && res.Seq == 0 {
					t.Fatalf("bad seq %d", res.Seq)
				}
				cl.run(sim.Second)
				cl.checkHealthy(cl.workers)

				// Crash and restart under the same loss.
				for i, ag := range cl.agents {
					ag.Pod(podName(i)).Destroy()
				}
				cl.restart(0)
				cl.run(sim.Second)
				cl.checkHealthy(cl.currentWorkers())
			}
			workers := cl.currentWorkers()
			for i, w := range workers {
				if w.Rounds == 0 {
					t.Fatalf("worker %d stalled", i)
				}
			}
		})
	}
}

// TestOptimizedProtocolUnderLoss exercises the Fig. 4 variant's extra
// message (comm-disabled) under loss.
func TestOptimizedProtocolUnderLoss(t *testing.T) {
	cl := newCluster(t, 3, 500*sim.Microsecond)
	for i := range cl.kernels {
		cl.sw.SetDropRate(cl.kernels[i].Stack().Interfaces()[0].NIC(), 0.02)
	}
	cl.run(sim.Second)
	for i := 0; i < 3; i++ {
		cl.checkpoint(CheckpointOptions{Optimized: true})
		cl.run(500 * sim.Millisecond)
	}
	cl.checkHealthy(cl.workers)
}

// TestRestartMissingImageFailsCleanly asks for a restart of a job that was
// never checkpointed: every agent reports failure and the coordinator
// surfaces it without committing anything.
func TestRestartMissingImageFailsCleanly(t *testing.T) {
	cl := newCluster(t, 2, 500*sim.Microsecond)
	cl.run(200 * sim.Millisecond)
	fired := false
	cl.coord.Restart(cl.job, 0, func(r *RestartResult, err error) {
		fired = true
		if err == nil {
			t.Error("restart without images succeeded")
		}
	})
	cl.runUntil(func() bool { return fired }, 10*sim.Second)
	if !fired {
		t.Fatal("restart callback never fired")
	}
	// The running application is untouched.
	cl.run(500 * sim.Millisecond)
	cl.checkHealthy(cl.workers)
}

// TestAbortDuringOptimizedCheckpoint aborts (via a failing member) while
// the optimized protocol is mid-flight; all healthy pods must resume.
func TestAbortDuringOptimizedCheckpoint(t *testing.T) {
	cl := newCluster(t, 3, 500*sim.Microsecond)
	cl.run(sim.Second)
	bad := &Job{Name: "bad", Members: append([]Member{}, cl.job.Members...)}
	bad.Members[1].Pod = "phantom"
	connected := false
	cl.coord.Connect(bad, func(error) { connected = true })
	cl.runUntil(func() bool { return connected }, 5*sim.Second)
	fired := false
	cl.coord.Checkpoint(bad, CheckpointOptions{Optimized: true}, func(_ *CheckpointResult, err error) {
		fired = true
		if err == nil {
			t.Error("checkpoint with phantom pod succeeded")
		}
	})
	cl.runUntil(func() bool { return fired }, 20*sim.Second)
	if !fired {
		t.Fatal("abort never surfaced")
	}
	cl.run(2 * sim.Second)
	for i, p := range cl.pods {
		if p.Stopped() {
			t.Fatalf("pod %d left stopped after optimized abort", i)
		}
	}
	cl.checkHealthy(cl.workers)
}

// TestSequentialJobsShareAgents runs two distinct jobs through the same
// agents and coordinator.
func TestSequentialJobsShareAgents(t *testing.T) {
	cl := newCluster(t, 2, 500*sim.Microsecond)
	cl.run(500 * sim.Millisecond)
	// Job A checkpoint.
	resA := cl.checkpoint(CheckpointOptions{})
	if resA.Seq != 1 {
		t.Fatalf("job A seq = %d", resA.Seq)
	}
	// A second job over the same pods but a different name gets its own
	// sequence space.
	jobB := &Job{Name: "ring-b", Members: cl.job.Members}
	connected := false
	cl.coord.Connect(jobB, func(error) { connected = true })
	cl.runUntil(func() bool { return connected }, 5*sim.Second)
	fired := false
	var resB *CheckpointResult
	cl.coord.Checkpoint(jobB, CheckpointOptions{}, func(r *CheckpointResult, err error) {
		fired = true
		if err != nil {
			t.Errorf("job B checkpoint: %v", err)
			return
		}
		resB = r
	})
	cl.runUntil(func() bool { return fired }, 30*sim.Second)
	if resB == nil || resB.Seq != 1 {
		t.Fatalf("job B result: %+v", resB)
	}
	if seq, _ := cl.coord.CommittedSeq("ring"); seq != 1 {
		t.Fatalf("job A committed = %d", seq)
	}
	if seq, _ := cl.coord.CommittedSeq("ring-b"); seq != 1 {
		t.Fatalf("job B committed = %d", seq)
	}
}
