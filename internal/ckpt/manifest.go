package ckpt

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"cruz/internal/kernel"
	"cruz/internal/mem"
	"cruz/internal/sim"
)

// PageRef names one page of a process by its content hash. The page's
// bytes live in the store's chunk table, shared by every manifest (and
// every pod) whose pages have the same contents.
type PageRef struct {
	PN   uint64
	Hash mem.PageHash
}

// ProcManifest mirrors ProcImage with page contents replaced by hash
// references. Everything else (program state, descriptors, signals) is
// small and stays inline.
type ProcManifest struct {
	VPID     int
	Name     string
	ProgData []byte
	Regions  []mem.Region
	Pages    []PageRef
	FDs      []FDImage
	Signals  []kernel.Signal
	CPUTime  sim.Duration
}

// Manifest is the metadata half of a content-addressed checkpoint: the
// full kernel/net/process state plus a page-hash list, with the bulk
// page bytes factored out into the store's deduplicated chunk table.
// A manifest is a few KB where the equivalent monolithic image is ~100
// MB, so writing one is nearly free; only chunks the store has never
// seen cost disk time.
type Manifest struct {
	PodName     string
	Seq         int
	BaseSeq     int
	Incremental bool
	// Synthetic marks a manifest produced by Compact: a full manifest
	// folded from an incremental chain, replacing that chain.
	Synthetic bool
	TakenAt   sim.Time

	Net      NetImage
	NextVPID int
	Procs    []ProcManifest
	Shms     []ShmImage
	Sems     []SemImage
	Pipes    []PipeImage
}

// Encode serializes the manifest (the only part of a deduplicated save
// that is always written in full).
func (m *Manifest) Encode() ([]byte, error) {
	b, err := encodeToBytes(m)
	if err != nil {
		return nil, fmt.Errorf("ckpt: encode manifest: %w", err)
	}
	return b, nil
}

// DecodeManifest parses an encoded manifest.
func DecodeManifest(b []byte) (*Manifest, error) {
	var m Manifest
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return nil, fmt.Errorf("ckpt: decode manifest: %w", err)
	}
	return &m, nil
}

// manifestFromImage splits an image captured with Options.Hashes into
// its manifest; the caller pairs it with the image's page bytes to
// populate the chunk table.
func manifestFromImage(img *Image) (*Manifest, error) {
	m := &Manifest{
		PodName:     img.PodName,
		Seq:         img.Seq,
		BaseSeq:     img.BaseSeq,
		Incremental: img.Incremental,
		TakenAt:     img.TakenAt,
		Net:         img.Net,
		NextVPID:    img.NextVPID,
		Shms:        img.Shms,
		Sems:        img.Sems,
		Pipes:       img.Pipes,
	}
	m.Procs = make([]ProcManifest, len(img.Processes))
	for i := range img.Processes {
		p := &img.Processes[i]
		if len(p.Memory.PageHashes) != p.Memory.NumPages() {
			return nil, fmt.Errorf("ckpt: image %s/%d vpid %d captured without page hashes",
				img.PodName, img.Seq, p.VPID)
		}
		pm := ProcManifest{
			VPID:     p.VPID,
			Name:     p.Name,
			ProgData: p.ProgData,
			Regions:  p.Memory.Regions,
			FDs:      p.FDs,
			Signals:  p.Signals,
			CPUTime:  p.CPUTime,
		}
		pm.Pages = make([]PageRef, p.Memory.NumPages())
		for j, pn := range p.Memory.PageNums {
			pm.Pages[j] = PageRef{PN: pn, Hash: p.Memory.PageHashes[j]}
		}
		m.Procs[i] = pm
	}
	return m, nil
}

// imageFromManifest rebuilds a self-contained image, resolving each page
// reference through lookup (the store's chunk table).
func imageFromManifest(m *Manifest, lookup func(mem.PageHash) []byte) (*Image, error) {
	img := &Image{
		PodName:     m.PodName,
		Seq:         m.Seq,
		BaseSeq:     m.BaseSeq,
		Incremental: m.Incremental,
		TakenAt:     m.TakenAt,
		Net:         m.Net,
		NextVPID:    m.NextVPID,
		Shms:        m.Shms,
		Sems:        m.Sems,
		Pipes:       m.Pipes,
	}
	img.Processes = make([]ProcImage, len(m.Procs))
	for i := range m.Procs {
		pm := &m.Procs[i]
		pi := ProcImage{
			VPID:     pm.VPID,
			Name:     pm.Name,
			ProgData: pm.ProgData,
			FDs:      pm.FDs,
			Signals:  pm.Signals,
			CPUTime:  pm.CPUTime,
		}
		pi.Memory.Regions = pm.Regions
		pi.Memory.PageNums = make([]uint64, len(pm.Pages))
		pi.Memory.PageHashes = make([]mem.PageHash, len(pm.Pages))
		pi.Memory.PageData = make([]byte, 0, len(pm.Pages)*mem.PageSize)
		for j, ref := range pm.Pages {
			data := lookup(ref.Hash)
			if data == nil {
				return nil, fmt.Errorf("ckpt: manifest %s/%d vpid %d page %d: missing chunk",
					m.PodName, m.Seq, pm.VPID, ref.PN)
			}
			pi.Memory.PageNums[j] = ref.PN
			pi.Memory.PageHashes[j] = ref.Hash
			pi.Memory.PageData = append(pi.Memory.PageData, data...)
		}
		img.Processes[i] = pi
	}
	return img, nil
}

// mergeManifests applies an incremental manifest on top of a (merged)
// base — the content-addressed analogue of Merge, but touching only
// metadata: page references merge by number, no page bytes are copied.
func mergeManifests(base, inc *Manifest) (*Manifest, error) {
	if !inc.Incremental {
		return inc, nil
	}
	if base == nil || base.PodName != inc.PodName || inc.BaseSeq != base.Seq {
		return nil, fmt.Errorf("ckpt: increment manifest %s/%d does not apply to base %v",
			inc.PodName, inc.Seq, base)
	}
	out := *inc
	out.Incremental = false
	out.BaseSeq = 0
	out.Procs = make([]ProcManifest, len(inc.Procs))
	baseByVPID := make(map[int]*ProcManifest)
	for i := range base.Procs {
		baseByVPID[base.Procs[i].VPID] = &base.Procs[i]
	}
	for i, p := range inc.Procs {
		merged := p
		if bp, ok := baseByVPID[p.VPID]; ok {
			pages := make(map[uint64]mem.PageHash, len(bp.Pages)+len(p.Pages))
			for _, ref := range bp.Pages {
				pages[ref.PN] = ref.Hash
			}
			for _, ref := range p.Pages {
				pages[ref.PN] = ref.Hash
			}
			pns := make([]uint64, 0, len(pages))
			for pn := range pages {
				pns = append(pns, pn)
			}
			sortUint64(pns)
			merged.Pages = make([]PageRef, len(pns))
			for j, pn := range pns {
				merged.Pages[j] = PageRef{PN: pn, Hash: pages[pn]}
			}
		}
		out.Procs[i] = merged
	}
	return &out, nil
}

// pageRefBytes is the logical page payload a manifest references.
func (m *Manifest) pageRefBytes() int64 {
	var n int64
	for i := range m.Procs {
		n += int64(len(m.Procs[i].Pages)) * mem.PageSize
	}
	return n
}
