package ckpt

import (
	"fmt"

	"cruz/internal/mem"
	"cruz/internal/trace"
)

// SaveStats breaks down one deduplicated save: how many page chunks were
// new to the store versus already resident, and the bytes each accounts
// for. TotalBytes (manifest + new chunks) is what the disk actually
// writes.
type SaveStats struct {
	ManifestBytes int64
	NewChunkBytes int64
	DedupedBytes  int64
	NewChunks     int
	DupChunks     int
}

// TotalBytes returns the bytes this save must write to disk.
func (st SaveStats) TotalBytes() int64 { return st.ManifestBytes + st.NewChunkBytes }

// SavePlan is the synchronous half of a deduplicated save: the manifest
// and chunk bookkeeping are done, and TotalBytes of disk writing remain.
// Agents use it to drive the write themselves (pipelined, in segments);
// SaveDeduped wraps it in a single write for direct store users.
type SavePlan struct {
	Pod        string
	Seq        int
	TotalBytes int64
	Stats      SaveStats
	// CompactAfter is set when this save pushed the pod's incremental
	// chain past the store's auto-compaction threshold; the caller
	// should invoke Compact once the save is committed.
	CompactAfter bool
}

// StoreStats accumulates chunk-table activity over the store's lifetime.
type StoreStats struct {
	NewChunks     int64
	DupChunks     int64
	FreedChunks   int64
	NewChunkBytes int64
	DedupedBytes  int64
	FreedBytes    int64
	Compactions   int64
}

// Stats returns the accumulated chunk-table statistics.
func (s *Store) Stats() StoreStats { return s.stats }

// ChunkCount returns the number of distinct chunks resident in the store.
func (s *Store) ChunkCount() int { return len(s.chunks) }

// SetAutoCompact makes PlanDedupSave flag CompactAfter once a pod's
// incremental chain exceeds n manifests (0 disables auto-compaction).
func (s *Store) SetAutoCompact(n int) { s.autoCompact = n }

func (s *Store) chunkData(h mem.PageHash) []byte {
	if e, ok := s.chunks[h]; ok {
		return e.data
	}
	return nil
}

// PlanDedupSave registers a hash-carrying image as a manifest plus
// chunk-table references and returns the plan describing the disk bytes
// still to be written. Pages whose hash is already resident cost nothing
// beyond a refcount; the image's page bytes back any chunks that are new.
func (s *Store) PlanDedupSave(img *Image) (*SavePlan, error) {
	m, err := manifestFromImage(img)
	if err != nil {
		return nil, err
	}
	mblob, err := m.Encode()
	if err != nil {
		return nil, err
	}
	plan := &SavePlan{Pod: img.PodName, Seq: img.Seq}
	plan.Stats.ManifestBytes = int64(len(mblob))
	for i := range img.Processes {
		p := &img.Processes[i]
		for j, h := range p.Memory.PageHashes {
			if e, ok := s.chunks[h]; ok {
				e.refs++
				plan.Stats.DupChunks++
				plan.Stats.DedupedBytes += mem.PageSize
			} else {
				s.chunks[h] = &chunkEntry{data: p.Memory.Page(j), refs: 1}
				plan.Stats.NewChunks++
				plan.Stats.NewChunkBytes += mem.PageSize
			}
		}
	}
	s.stats.NewChunks += int64(plan.Stats.NewChunks)
	s.stats.DupChunks += int64(plan.Stats.DupChunks)
	s.stats.NewChunkBytes += plan.Stats.NewChunkBytes
	s.stats.DedupedBytes += plan.Stats.DedupedBytes

	if s.manifests[img.PodName] == nil {
		s.manifests[img.PodName] = make(map[int]*Manifest)
		s.manifestBytes[img.PodName] = make(map[int]int64)
	}
	s.manifests[img.PodName][img.Seq] = m
	s.manifestBytes[img.PodName][img.Seq] = int64(len(mblob))
	if img.Seq > s.latest[img.PodName] {
		s.latest[img.PodName] = img.Seq
	}
	plan.TotalBytes = plan.Stats.TotalBytes()
	if s.autoCompact > 0 {
		if chain, cerr := s.manifestChain(img.PodName, img.Seq); cerr == nil && len(chain) > s.autoCompact {
			plan.CompactAfter = true
		}
	}
	return plan, nil
}

// SaveDeduped is the one-call form of a deduplicated save: plan, then a
// single disk write of the unique bytes. done receives the completed
// plan once the write lands.
func (s *Store) SaveDeduped(img *Image, done func(*SavePlan, error)) {
	plan, err := s.PlanDedupSave(img)
	if err != nil {
		done(nil, err)
		return
	}
	var sp trace.Span
	if tr := trace.FromEngine(s.disk.Engine()); tr.Enabled() {
		sp = tr.Begin(s.disk.Name(), "ckpt", "store.save",
			trace.Str("pod", img.PodName), trace.Int("seq", int64(img.Seq)),
			trace.Int("bytes", plan.TotalBytes),
			trace.Int("deduped_bytes", plan.Stats.DedupedBytes))
	}
	s.disk.Write(plan.TotalBytes, func() {
		sp.End()
		done(plan, nil)
	})
}

// manifestChain walks seq back to its full base, returning the sequence
// numbers newest-first.
func (s *Store) manifestChain(pod string, seq int) ([]int, error) {
	metas := s.manifests[pod]
	var chain []int
	cur := seq
	for {
		m, ok := metas[cur]
		if !ok {
			return nil, fmt.Errorf("%w: %s/%d (manifest chain from %d)", ErrNoImage, pod, cur, seq)
		}
		chain = append(chain, cur)
		if !m.Incremental {
			return chain, nil
		}
		cur = m.BaseSeq
	}
}

// mergedManifest folds the chain ending at seq into one full manifest.
func (s *Store) mergedManifest(pod string, seq int) (*Manifest, []int, error) {
	chain, err := s.manifestChain(pod, seq)
	if err != nil {
		return nil, nil, err
	}
	merged := s.manifests[pod][chain[len(chain)-1]]
	for i := len(chain) - 2; i >= 0; i-- {
		merged, err = mergeManifests(merged, s.manifests[pod][chain[i]])
		if err != nil {
			return nil, nil, err
		}
	}
	return merged, chain, nil
}

// uniqueChunkBytes counts the distinct chunk bytes a restore of m must
// read: each referenced hash once, however many pages share it.
func uniqueChunkBytes(m *Manifest) int64 {
	seen := make(map[mem.PageHash]struct{})
	for i := range m.Procs {
		for _, ref := range m.Procs[i].Pages {
			seen[ref.Hash] = struct{}{}
		}
	}
	return int64(len(seen)) * mem.PageSize
}

// loadManifest resolves a manifest-form checkpoint into an image. With
// merged set, the whole incremental chain folds first (metadata only)
// and the disk read covers each chain manifest plus every distinct
// chunk the final page set needs — not the O(chain) page bytes the blob
// path re-reads.
func (s *Store) loadManifest(pod string, seq int, merged bool, ctx trace.SpanContext, done func(*Image, error)) {
	var (
		m     *Manifest
		chain []int
		err   error
	)
	if merged {
		m, chain, err = s.mergedManifest(pod, seq)
	} else {
		m = s.manifests[pod][seq]
		chain = []int{seq}
	}
	if err != nil {
		done(nil, err)
		return
	}
	var total int64
	for _, cs := range chain {
		total += s.manifestBytes[pod][cs]
	}
	total += uniqueChunkBytes(m)
	var sp trace.Span
	if tr := trace.FromEngine(s.disk.Engine()); tr.Enabled() {
		sp = tr.BeginChild(ctx, s.disk.Name(), "ckpt", "store.load",
			trace.Str("pod", pod), trace.Int("seq", int64(seq)),
			trace.Int("bytes", total), trace.Int("chain", int64(len(chain))))
	}
	s.disk.Read(total, func() {
		sp.End()
		img, ierr := imageFromManifest(m, s.chunkData)
		done(img, ierr)
	})
}

// Compact folds the pod's newest incremental chain into one synthetic
// full manifest at the same sequence number, dropping the intermediate
// manifests and any chunks no manifest references anymore — the GC that
// bounds both store growth and restore latency after N incrementals.
// Only the new manifest is written to disk (chunks it references are
// already resident); done, if non-nil, receives the bytes written.
func (s *Store) Compact(pod string, done func(int64, error)) {
	finish := func(n int64, err error) {
		if done != nil {
			done(n, err)
		}
	}
	seq, ok := s.latest[pod]
	if !ok || s.manifests[pod][seq] == nil {
		finish(0, fmt.Errorf("%w: %s (nothing to compact)", ErrNoImage, pod))
		return
	}
	merged, chain, err := s.mergedManifest(pod, seq)
	if err != nil {
		finish(0, err)
		return
	}
	if len(chain) == 1 && !s.manifests[pod][seq].Incremental {
		finish(0, nil) // already a single full manifest
		return
	}
	syn := *merged
	syn.Synthetic = true
	mblob, err := syn.Encode()
	if err != nil {
		finish(0, err)
		return
	}

	// The synthetic manifest takes its own references before the old
	// chain releases; shared chunks never hit refcount zero in between.
	for i := range syn.Procs {
		for _, ref := range syn.Procs[i].Pages {
			s.chunks[ref.Hash].refs++
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		old := s.manifests[pod][chain[i]]
		for j := range old.Procs {
			for _, ref := range old.Procs[j].Pages {
				e := s.chunks[ref.Hash]
				e.refs--
				if e.refs == 0 {
					delete(s.chunks, ref.Hash)
					s.stats.FreedChunks++
					s.stats.FreedBytes += mem.PageSize
				}
			}
		}
		delete(s.manifests[pod], chain[i])
		delete(s.manifestBytes[pod], chain[i])
	}
	s.manifests[pod][seq] = &syn
	s.manifestBytes[pod][seq] = int64(len(mblob))
	s.stats.Compactions++

	var sp trace.Span
	if tr := trace.FromEngine(s.disk.Engine()); tr.Enabled() {
		sp = tr.Begin(s.disk.Name(), trace.PhaseCat, "compact",
			trace.Str("pod", pod), trace.Int("seq", int64(seq)),
			trace.Int("folded", int64(len(chain))),
			trace.Int("bytes", int64(len(mblob))))
	}
	s.disk.Write(int64(len(mblob)), func() {
		sp.End()
		finish(int64(len(mblob)), nil)
	})
}
