package ckpt

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"cruz/internal/kernel"
	"cruz/internal/zap"
)

// Restore reconstructs a pod from an image on the given node. The image
// must be self-contained (merge incremental chains with Merge first).
//
// The restored pod is left in the stopped state with communication
// untouched: the caller — normally the Cruz coordination protocol, which
// has communication disabled for the pod's address (§5) — resumes it when
// the global restart commits. Restored TCP connections arm their
// retransmission timers, so any segments transmitted into the disabled
// network recover automatically once communication is re-enabled.
//
// Restore announces the pod's (possibly new) location with a gratuitous
// ARP so the switch and remote peers re-learn the path (§4.2).
func Restore(kern *kernel.Kernel, img *Image) (*zap.Pod, error) {
	if img.Incremental {
		return nil, fmt.Errorf("ckpt: image %s/%d is incremental; Merge it first", img.PodName, img.Seq)
	}
	cfg := zap.NetConfig{IP: img.Net.IP, FakeMAC: img.Net.FakeMAC}
	if !img.Net.SharedMAC {
		cfg.MAC = img.Net.MAC
	}
	pod, err := zap.New(kern, img.PodName, cfg)
	if err != nil {
		return nil, fmt.Errorf("ckpt: restore pod %s: %w", img.PodName, err)
	}
	// From here on, tear the half-built pod down on any failure.
	ok := false
	defer func() {
		if !ok {
			pod.Destroy()
		}
	}()

	pod.SetNextVPID(img.NextVPID)

	// Pipes first: descriptors reference them by id.
	pipes := make(map[int]*kernel.Pipe, len(img.Pipes))
	for _, pi := range img.Pipes {
		p := kernel.NewPipe(kern)
		p.RestoreBuffer(pi.Buffer)
		pipes[pi.ID] = p
	}

	for _, pi := range img.Processes {
		if err := restoreProcess(kern, pod, pi, pipes); err != nil {
			return nil, fmt.Errorf("ckpt: restore %s vpid %d: %w", img.PodName, pi.VPID, err)
		}
	}

	for _, s := range img.Shms {
		if _, err := kern.InstallShm(s.ID, s.Key, s.Size, s.Contents); err != nil {
			return nil, fmt.Errorf("ckpt: restore shm: %w", err)
		}
		pod.TrackShm(s.ID)
	}
	for _, s := range img.Sems {
		if _, err := kern.InstallSem(s.ID, s.Key, s.Value); err != nil {
			return nil, fmt.Errorf("ckpt: restore sem: %w", err)
		}
		pod.TrackSem(s.ID)
	}

	// Park the pod stopped; the coordinated restart resumes it.
	pod.Stop(nil)
	pod.AnnounceLocation()
	ok = true
	return pod, nil
}

// restoreProcess rebuilds one process from its image.
func restoreProcess(kern *kernel.Kernel, pod *zap.Pod, pi ProcImage, pipes map[int]*kernel.Pipe) error {
	var holder progHolder
	if err := gob.NewDecoder(bytes.NewReader(pi.ProgData)).Decode(&holder); err != nil {
		return fmt.Errorf("decode program (is its type RegisterProgram'ed in this binary?): %w", err)
	}
	proc, err := pod.SpawnAt(pi.Name, holder.P, pi.VPID)
	if err != nil {
		return err
	}
	proc.RestoreSignals(pi.Signals)
	proc.RestoreCPUTime(pi.CPUTime)

	as := proc.Mem()
	for _, r := range pi.Memory.Regions {
		if err := as.InstallRegion(r); err != nil {
			return fmt.Errorf("region %+v: %w", r, err)
		}
	}
	for i, pn := range pi.Memory.PageNums {
		if err := as.InstallPage(pn, pi.Memory.Page(i)); err != nil {
			return fmt.Errorf("page %d: %w", pn, err)
		}
	}

	stack := kern.Stack()
	for _, fi := range pi.FDs {
		switch fi.Kind {
		case kernel.FDConn:
			conn, err := stack.RestoreTCP(fi.Conn)
			if err != nil {
				return fmt.Errorf("fd %d (tcp %v): %w", fi.Num, fi.Conn.Tuple, err)
			}
			proc.InstallConnFD(fi.Num, conn)
		case kernel.FDListener:
			l, err := stack.RestoreListener(fi.Listener)
			if err != nil {
				return fmt.Errorf("fd %d (listener %v): %w", fi.Num, fi.Listener.Local, err)
			}
			proc.InstallListenerFD(fi.Num, l)
		case kernel.FDUDP:
			u, err := stack.OpenUDP(fi.UDP.Local)
			if err != nil {
				return fmt.Errorf("fd %d (udp %v): %w", fi.Num, fi.UDP.Local, err)
			}
			u.Broadcast = fi.UDP.Broadcast
			u.RestoreMessages(fi.UDP.Queue)
			proc.InstallUDPFD(fi.Num, u)
		case kernel.FDPipeRead, kernel.FDPipeWrite:
			p, okPipe := pipes[fi.PipeID]
			if !okPipe {
				return fmt.Errorf("fd %d: unknown pipe id %d", fi.Num, fi.PipeID)
			}
			proc.InstallPipeFD(fi.Num, p, fi.Kind == kernel.FDPipeWrite)
		default:
			return fmt.Errorf("fd %d: unknown kind %v", fi.Num, fi.Kind)
		}
	}
	return nil
}
