package ckpt

import (
	"errors"
	"fmt"

	"cruz/internal/kernel"
	"cruz/internal/mem"
	"cruz/internal/trace"
	"cruz/internal/zap"
)

// Errors returned by capture.
var (
	ErrPodNotStopped = errors.New("ckpt: pod must be stopped before capture")
)

// Options controls a capture.
type Options struct {
	// Incremental saves only memory pages dirtied since the previous
	// capture (kernel state is always saved in full — it is tiny).
	Incremental bool
	// Hashes records each captured page's content hash in the image,
	// enabling content-addressed (deduplicating) storage. Hashes are
	// cached on clean pages, so only pages written since the last
	// hashing capture cost a recompute (counted in Image.FreshHashes).
	Hashes bool
	// BaseSeq, when non-zero, overrides the sequence an Incremental
	// image declares as its base (the default is seq-1). Pre-copy uses
	// it to chain each round onto the previous round's sequence and the
	// residual onto the last round, so a chain stays well-formed even
	// when sequence numbers are strided or an epoch was aborted.
	BaseSeq int
}

// Capture copies a stopped pod's complete state into an Image. The copy
// is atomic in virtual time (the simulation's equivalent of holding the
// network-stack locks for the duration of the socket-state save) and
// non-destructive: the pod can be resumed immediately afterwards.
//
// Every capture clears the pod's dirty-page tracking, so a later
// Incremental capture saves exactly the pages written since this one.
func Capture(pod *zap.Pod, seq int, opts Options) (*Image, error) {
	if !pod.Stopped() {
		return nil, ErrPodNotStopped
	}
	kern := pod.Kernel()
	img := &Image{
		PodName:     pod.Name(),
		Seq:         seq,
		Incremental: opts.Incremental,
		TakenAt:     kern.Engine().Now(),
		NextVPID:    pod.NextVPID(),
		Net: NetImage{
			IP:        pod.IP(),
			MAC:       pod.Config().MAC,
			FakeMAC:   pod.Config().FakeMAC,
			SharedMAC: pod.SharedMAC(),
		},
	}
	if opts.Incremental {
		img.BaseSeq = seq - 1
		if opts.BaseSeq != 0 {
			img.BaseSeq = opts.BaseSeq
		}
	}

	// Pipes are shared objects; assign stable ids as we encounter them.
	pipeIDs := make(map[*kernel.Pipe]int)

	// Dirty tracking is cleared only after the whole pod captures
	// successfully: clearing per process inside the loop would, on a
	// later process's failure, lose the earlier processes' dirty sets
	// and silently corrupt the next incremental capture.
	spaces := make([]*mem.AddressSpace, 0, len(pod.VPIDs()))
	for _, vpid := range pod.VPIDs() {
		proc := pod.Process(vpid)
		pi, err := captureProcess(vpid, proc, opts, pipeIDs, img)
		if err != nil {
			return nil, fmt.Errorf("ckpt: pod %s vpid %d: %w", pod.Name(), vpid, err)
		}
		img.Processes = append(img.Processes, pi)
		spaces = append(spaces, proc.Mem())
	}
	for _, as := range spaces {
		as.ClearDirty()
	}

	for _, id := range pod.ShmIDs() {
		s := kern.Shm(id)
		if s == nil {
			continue
		}
		img.Shms = append(img.Shms, ShmImage{ID: s.ID, Key: s.Key, Size: s.Size, Contents: s.Contents()})
	}
	for _, id := range pod.SemIDs() {
		s := kern.Sem(id)
		if s == nil {
			continue
		}
		img.Sems = append(img.Sems, SemImage{ID: s.ID, Key: s.Key, Value: s.Value()})
	}
	if tr := trace.FromEngine(kern.Engine()); tr.Enabled() {
		tr.Instant(kern.Name(), "ckpt", "capture",
			trace.Str("pod", pod.Name()),
			trace.Int("procs", int64(len(img.Processes))),
			trace.Int("mem_bytes", img.MemoryBytes()),
			trace.Int("shms", int64(len(img.Shms))))
	}
	return img, nil
}

// captureProcess saves one process: program state, memory, descriptors,
// and pending signals.
func captureProcess(vpid int, proc *kernel.Process, opts Options, pipeIDs map[*kernel.Pipe]int, img *Image) (ProcImage, error) {
	pi := ProcImage{
		VPID:    vpid,
		Name:    proc.Name(),
		Signals: proc.PendingSignals(),
		CPUTime: proc.CPUTime(),
	}

	// "CPU state": the program value, gob-encoded through a pooled
	// buffer (captures repeat; keep the steady state allocation-free).
	prog, err := encodeToBytes(&progHolder{P: proc.Program()})
	if err != nil {
		return pi, fmt.Errorf("encode program (did you ckpt.RegisterProgram it?): %w", err)
	}
	pi.ProgData = prog

	// Virtual memory: regions always, pages full or dirty-only.
	as := proc.Mem()
	pi.Memory.Regions = as.Regions()
	pns := as.PageNumbers(opts.Incremental)
	pi.Memory.PageNums = pns
	pi.Memory.PageData = make([]byte, 0, len(pns)*mem.PageSize)
	for _, pn := range pns {
		pi.Memory.PageData = append(pi.Memory.PageData, as.PageData(pn)...)
	}
	if opts.Hashes {
		pi.Memory.PageHashes = make([]mem.PageHash, 0, len(pns))
		before := as.HashComputes()
		for _, pn := range pns {
			pi.Memory.PageHashes = append(pi.Memory.PageHashes, as.PageHash(pn))
		}
		img.FreshHashes += int(as.HashComputes() - before)
	}

	// Descriptors, in fd order for determinism.
	fds := proc.FDs()
	nums := make([]int, 0, len(fds))
	for n := range fds {
		nums = append(nums, n)
	}
	sortInts(nums)
	for _, n := range nums {
		fd := fds[n]
		fi := FDImage{Num: n, Kind: fd.Kind()}
		switch fd.Kind() {
		case kernel.FDConn:
			st, err := fd.Conn().CaptureState()
			if err != nil {
				return pi, fmt.Errorf("fd %d: %w", n, err)
			}
			fi.Conn = st
		case kernel.FDListener:
			fi.Listener = fd.Listener().CaptureState()
		case kernel.FDUDP:
			u := fd.UDP()
			fi.UDP = &UDPImage{
				Local:     u.LocalAddr(),
				Broadcast: u.Broadcast,
				Queue:     u.PendingMessages(),
			}
		case kernel.FDPipeRead, kernel.FDPipeWrite:
			p := fd.PipeObj()
			id, ok := pipeIDs[p]
			if !ok {
				id = len(pipeIDs) + 1
				pipeIDs[p] = id
				img.Pipes = append(img.Pipes, PipeImage{ID: id, Buffer: p.Buffered()})
			}
			fi.PipeID = id
		}
		pi.FDs = append(pi.FDs, fi)
	}
	return pi, nil
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
