package ckpt

import (
	"errors"
	"reflect"
	"testing"

	"cruz/internal/mem"
	"cruz/internal/sim"
	"cruz/internal/zap"
)

// ecRand is a tiny deterministic generator for codec test payloads.
type ecRand uint64

func (r *ecRand) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = ecRand(x)
	return x
}

func ecTestBlocks(seed uint64, n int) [][]byte {
	r := ecRand(seed | 1)
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, mem.PageSize)
		for j := 0; j < mem.PageSize; j += 8 {
			v := r.next()
			for k := 0; k < 8; k++ {
				b[j+k] = byte(v >> (8 * k))
			}
		}
		out[i] = b
	}
	return out
}

func TestGFFieldSanity(t *testing.T) {
	for a := 1; a < 256; a++ {
		if gfMul[a][1] != byte(a) {
			t.Fatalf("a*1 != a for a=%d", a)
		}
		inv := gfDiv(1, byte(a))
		if gfMul[a][inv] != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
	}
	// Distributivity spot checks across the table diagonal.
	for a := 3; a < 256; a += 7 {
		for b := 5; b < 256; b += 11 {
			c := byte((a * 31) & 0xff)
			left := gfMul[a][b^int(c)&0xff]
			right := gfMul[a][b] ^ gfMul[a][c]
			if left != right {
				t.Fatalf("distributivity fails at a=%d b=%d c=%d", a, b, c)
			}
		}
	}
}

func TestECCodecAnyMLosses(t *testing.T) {
	for _, p := range []ECParams{{M: 2, R: 1}, {M: 4, R: 2}, {M: 5, R: 3}} {
		enc := ecEncodeMatrix(p)
		data := ecTestBlocks(uint64(p.M*100+p.R), p.M)
		parity := ecEncodeStripe(enc, p, data)
		total := p.M + p.R
		shard := func(i int) []byte {
			if i < p.M {
				return data[i]
			}
			return parity[i-p.M]
		}
		// Try every m-subset of surviving shards (small totals, cheap).
		var trySubset func(start int, have []int)
		trySubset = func(start int, have []int) {
			if len(have) == p.M {
				blocks := make([][]byte, p.M)
				for k, idx := range have {
					blocks[k] = shard(idx)
				}
				got, err := ecDecodeStripe(enc, p, append([]int(nil), have...), blocks)
				if err != nil {
					t.Fatalf("%v: decode from %v: %v", p, have, err)
				}
				for i := range data {
					if !reflect.DeepEqual(got[i], data[i]) {
						t.Fatalf("%v: decode from %v: data block %d differs", p, have, i)
					}
				}
				return
			}
			for i := start; i < total; i++ {
				trySubset(i+1, append(have, i))
			}
		}
		trySubset(0, nil)

		// Fewer than m shards must fail.
		if _, err := ecDecodeStripe(enc, p, []int{0}, [][]byte{data[0]}); !errors.Is(err, ErrECShards) {
			t.Fatalf("%v: want ErrECShards with 1 shard, got %v", p, err)
		}
	}
}

func TestECCodecPaddedTail(t *testing.T) {
	p := ECParams{M: 4, R: 2}
	enc := ecEncodeMatrix(p)
	// Short stripe: only 2 real blocks, positions 2..3 implicit zeros.
	data := ecTestBlocks(7, 2)
	full := [][]byte{data[0], data[1], nil, nil}
	parity := ecEncodeStripe(enc, p, full)
	// Lose both real data blocks; decode from padding + parity.
	have := []int{2, 3, 4, 5}
	blocks := [][]byte{nil, nil, parity[0], parity[1]}
	got, err := ecDecodeStripe(enc, p, have, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], data[0]) || !reflect.DeepEqual(got[1], data[1]) {
		t.Fatal("padded-tail decode does not recover the real blocks")
	}
	zero := make([]byte, mem.PageSize)
	if !reflect.DeepEqual(got[2], zero) || !reflect.DeepEqual(got[3], zero) {
		t.Fatal("padding positions did not decode to zero blocks")
	}
}

func TestParseECParams(t *testing.T) {
	p, err := ParseECParams("4+2")
	if err != nil || p.M != 4 || p.R != 2 {
		t.Fatalf("ParseECParams(4+2) = %v, %v", p, err)
	}
	for _, bad := range []string{"", "4", "0+2", "4+0", "300+1", "x+y"} {
		if _, err := ParseECParams(bad); err == nil {
			t.Fatalf("ParseECParams(%q) succeeded", bad)
		}
	}
	if p.String() != "4+2" {
		t.Fatalf("String() = %q", p.String())
	}
}

// ecCaptureChain checkpoints a memWorker pod twice (full + incremental)
// into the rig store's dedup form and returns the merged ground truth.
func ecCaptureChain(t *testing.T, r *rig, pod *zap.Pod) *Image {
	t.Helper()
	save := func(img *Image) {
		done := false
		r.store.SaveDeduped(img, func(_ *SavePlan, err error) {
			if err != nil {
				t.Errorf("SaveDeduped: %v", err)
			}
			done = true
		})
		r.run(10 * sim.Second)
		if !done {
			t.Fatal("dedup save never completed")
		}
	}
	img1 := r.stopAndCapture(pod, 1, Options{Hashes: true})
	save(img1)
	pod.Resume()
	r.run(30 * sim.Millisecond)
	img2 := r.stopAndCapture(pod, 2, Options{Hashes: true, Incremental: true})
	save(img2)
	merged, err := Merge(img1, img2)
	if err != nil {
		t.Fatal(err)
	}
	return merged
}

func TestECSaveReconstructRestore(t *testing.T) {
	r := newRig(t, 2)
	pod, _ := zap.New(r.kernels[0], "ecpod", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	pod.Spawn("w", &memWorker{HeapSize: 48 * mem.PageSize})
	r.run(30 * sim.Millisecond)
	truth := ecCaptureChain(t, r, pod)
	pod.Destroy()

	p := ECParams{M: 4, R: 2}
	var plan *ECPlan
	r.store.SaveEC("ecpod", 2, p, func(pl *ECPlan, err error) {
		if err != nil {
			t.Errorf("SaveEC: %v", err)
		}
		plan = pl
	})
	r.run(10 * sim.Second)
	if plan == nil {
		t.Fatal("SaveEC never completed")
	}
	set := plan.Set
	if set.M != 4 || set.R != 2 || len(set.Chain) != 2 {
		t.Fatalf("unexpected set shape: %+v", set)
	}
	if got := plan.ParityBytes; got <= 0 || got > plan.DataBytes {
		t.Fatalf("parity bytes %d out of range (data %d)", got, plan.DataBytes)
	}

	// Simulate distribution: each of the m+r holders takes its rotated
	// shard subset; no holder's set may contain two shards of a stripe
	// (guaranteed by rotation) and together they cover everything.
	manifests := make(map[int][]byte)
	for _, cs := range set.Chain {
		blob, err := r.store.manifests["ecpod"][cs].Encode()
		if err != nil {
			t.Fatal(err)
		}
		manifests[cs] = blob
	}
	holderBlocks := make([][]ChunkData, set.Shards())
	for h := 0; h < set.Shards(); h++ {
		for _, hash := range set.HolderHashes(h) {
			holderBlocks[h] = append(holderBlocks[h], ChunkData{Hash: hash, Data: r.store.chunks[hash].data})
		}
	}

	// Kill r holders (any r): reconstruct from every m-survivor choice of
	// a rotating window to cover varied index mixes.
	for kill := 0; kill < set.Shards(); kill++ {
		target := NewStore(r.kernels[1].Disk())
		var blocks []ChunkData
		for h := 0; h < set.Shards(); h++ {
			if h == kill || h == (kill+1)%set.Shards() {
				continue // two dead holders
			}
			blocks = append(blocks, holderBlocks[h]...)
		}
		rec, err := target.ReconstructEC(set, manifests, blocks)
		if err != nil {
			t.Fatalf("kill %d: %v", kill, err)
		}
		if rec.DecodedStripes == 0 {
			t.Fatalf("kill %d: expected at least one decoded stripe", kill)
		}
		var img *Image
		target.LoadMerged("ecpod", 2, func(i *Image, err error) {
			if err != nil {
				t.Errorf("LoadMerged: %v", err)
			}
			img = i
		})
		r.run(10 * sim.Second)
		if img == nil {
			t.Fatal("load never completed")
		}
		want, got := normalizeImage(t, truth), normalizeImage(t, img)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("kill %d: reconstructed image differs from ground truth", kill)
		}
	}

	// With only m-1 surviving holders a stripe cannot be rebuilt.
	target := NewStore(r.kernels[1].Disk())
	var blocks []ChunkData
	for h := 0; h < set.M-1; h++ {
		blocks = append(blocks, holderBlocks[h]...)
	}
	if _, err := target.ReconstructEC(set, manifests, blocks); !errors.Is(err, ErrECShards) {
		t.Fatalf("want ErrECShards with m-1 holders, got %v", err)
	}
}

// TestECCompactKeepsStripeChunks is the satellite-2 regression: Compact
// folds a chain and frees chunks no manifest references — but a chunk
// covered by a live EC stripe must survive, or reconstruction of the
// stripe's other chunks breaks. The EC set's stripe-granularity
// references keep it resident; dropping the set releases it.
func TestECCompactKeepsStripeChunks(t *testing.T) {
	r := newRig(t, 1)
	pod, _ := zap.New(r.kernels[0], "gc", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	pod.Spawn("w", &memWorker{HeapSize: 32 * mem.PageSize})
	r.run(30 * sim.Millisecond)
	ecCaptureChain(t, r, pod)
	pod.Destroy()

	var plan *ECPlan
	r.store.SaveEC("gc", 1, ECParams{M: 4, R: 2}, func(pl *ECPlan, err error) {
		if err != nil {
			t.Errorf("SaveEC: %v", err)
		}
		plan = pl
	})
	r.run(10 * sim.Second)
	if plan == nil {
		t.Fatal("SaveEC never completed")
	}
	set := plan.Set

	// Compact folds seq 1+2 into a synthetic full manifest at seq 2.
	// Pages overwritten between the captures drop out of the merged
	// manifest — but their chunks sit in live stripes of the seq-1 set.
	r.store.Compact("gc", nil)
	r.run(10 * sim.Second)
	for i := range set.Stripes {
		for _, h := range set.Stripes[i].Data {
			if _, ok := r.store.chunks[h]; !ok {
				t.Fatalf("stripe %d: data chunk %v freed while its EC set is live", i, h)
			}
		}
		for _, h := range set.Stripes[i].Parity {
			if _, ok := r.store.chunks[h]; !ok {
				t.Fatalf("stripe %d: parity block %v freed while its EC set is live", i, h)
			}
		}
	}

	// Dropping the set releases the stripe references; chunks only the
	// folded-away seq-1 manifest needed are now freed.
	before := r.store.ChunkCount()
	r.store.DropECSet("gc", 1)
	if after := r.store.ChunkCount(); after >= before {
		t.Fatalf("DropECSet freed nothing (chunks %d -> %d)", before, after)
	}
	// Everything the live (compacted) manifest references must remain.
	for i := range r.store.manifests["gc"][2].Procs {
		for _, ref := range r.store.manifests["gc"][2].Procs[i].Pages {
			if _, ok := r.store.chunks[ref.Hash]; !ok {
				t.Fatalf("live manifest chunk %v freed by DropECSet", ref.Hash)
			}
		}
	}
}

func TestECSupersedeAndDiscard(t *testing.T) {
	r := newRig(t, 1)
	pod, _ := zap.New(r.kernels[0], "sup", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	pod.Spawn("w", &memWorker{HeapSize: 16 * mem.PageSize})
	r.run(30 * sim.Millisecond)
	ecCaptureChain(t, r, pod)
	pod.Destroy()

	save := func(seq int) *ECSet {
		var plan *ECPlan
		r.store.SaveEC("sup", seq, ECParams{M: 2, R: 1}, func(pl *ECPlan, err error) {
			if err != nil {
				t.Errorf("SaveEC(%d): %v", seq, err)
			}
			plan = pl
		})
		r.run(10 * sim.Second)
		if plan == nil {
			t.Fatalf("SaveEC(%d) never completed", seq)
		}
		return plan.Set
	}
	save(1)
	save(2) // supersedes seq 1
	if _, ok := r.store.ECSetFor("sup", 1); ok {
		t.Fatal("seq-1 EC set not superseded by seq-2 save")
	}
	if _, ok := r.store.ECSetFor("sup", 2); !ok {
		t.Fatal("seq-2 EC set missing")
	}
	// Discarding the sequence drops its set and releases references.
	r.store.Discard("sup", 2)
	if _, ok := r.store.ECSetFor("sup", 2); ok {
		t.Fatal("Discard left the EC set registered")
	}
}
