package ckpt

import (
	"math/rand"
	"testing"

	"cruz/internal/kernel"
	"cruz/internal/mem"
	"cruz/internal/sim"
	"cruz/internal/zap"
)

func init() {
	RegisterProgram(&chaosProg{})
}

// chaosProg performs a seeded random walk over the checkpointable state
// surface: memory writes, pipe traffic, shm/sem updates, and a rolling
// FNV-style digest of everything it has done. Because the walk is
// deterministic in (Seed, Iters), two instances that executed the same
// number of iterations must have identical digests — which is exactly
// what a checkpoint-restore cycle has to preserve.
type chaosProg struct {
	Seed     int64
	MaxIters uint64
	Iters    uint64

	Heap   uint64
	RFD    int
	WFD    int
	Shm    int
	Sem    int
	Init   bool
	Digest uint64
	Fault  string
}

const chaosHeapPages = 32

func (p *chaosProg) mix(v uint64) {
	if p.Digest == 0 {
		p.Digest = 1469598103934665603
	}
	p.Digest ^= v
	p.Digest *= 1099511628211
}

// rng rebuilds the deterministic stream positioned at the current
// iteration. (Programs cannot hold *rand.Rand across checkpoints — it is
// not serializable — so the stream is derived per step.)
func (p *chaosProg) rng() *rand.Rand {
	return rand.New(rand.NewSource(p.Seed ^ int64(p.Iters*2654435761)))
}

func (p *chaosProg) fail(m string) kernel.StepResult {
	p.Fault = m
	return kernel.Exit(0, 2)
}

func (p *chaosProg) Step(ctx *kernel.ProcContext) kernel.StepResult {
	if !p.Init {
		base, err := ctx.Mem().Alloc(chaosHeapPages*mem.PageSize, "chaos")
		if err != nil {
			return p.fail("alloc")
		}
		p.Heap = base
		r, w, err := ctx.Pipe()
		if err != nil {
			return p.fail("pipe")
		}
		p.RFD, p.WFD = r, w
		if p.Shm, err = ctx.ShmGet(7, 4096); err != nil {
			return p.fail("shm")
		}
		if p.Sem, err = ctx.SemGet(8, 1); err != nil {
			return p.fail("sem")
		}
		p.Init = true
		return kernel.Continue(0)
	}
	if p.Iters >= p.MaxIters {
		// Pinned: hold the final state for inspection.
		return kernel.Sleep(0, sim.Second)
	}
	rng := p.rng()
	switch rng.Intn(5) {
	case 0: // memory write + read-back into digest
		off := uint64(rng.Intn(chaosHeapPages * mem.PageSize / 8 * 8))
		off -= off % 8
		val := rng.Uint64()
		if err := ctx.Mem().WriteUint64(p.Heap+off, val); err != nil {
			return p.fail("mem write")
		}
		got, err := ctx.Mem().ReadUint64(p.Heap + off)
		if err != nil || got != val {
			return p.fail("mem readback")
		}
		p.mix(got)
	case 1: // pipe write (bounded so it never blocks forever)
		b := make([]byte, rng.Intn(200)+1)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		if n, err := ctx.Send(p.WFD, b); err == nil {
			p.mix(uint64(n))
		}
	case 2: // pipe read
		b := make([]byte, 256)
		if n, err := ctx.Recv(p.RFD, b, false); err == nil {
			for _, by := range b[:n] {
				p.mix(uint64(by))
			}
		}
	case 3: // shm update under the semaphore
		if err := ctx.SemOp(p.Sem, -1); err == nil {
			var cell [8]byte
			ctx.ShmRead(p.Shm, 16, cell[:])
			cell[0]++
			ctx.ShmWrite(p.Shm, 16, cell[:])
			ctx.SemOp(p.Sem, 1)
			p.mix(uint64(cell[0]))
		}
	case 4: // pure digest churn
		p.mix(rng.Uint64())
	}
	p.Iters++
	return kernel.Sleep(sim.Duration(rng.Intn(int(50*sim.Microsecond))), sim.Duration(rng.Intn(int(200*sim.Microsecond))))
}

// TestPropertyCheckpointTransparency is the core transparency property:
// a program that is checkpointed, destroyed, and restored at random
// points must end in exactly the state of an uninterrupted run with the
// same seed, compared at equal iteration counts via the rolling digest.
func TestPropertyCheckpointTransparency(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			const targetIters = 400

			// Reference: uninterrupted run to targetIters.
			refDigest := runChaos(t, seed, nil, targetIters)

			// Interrupted: 3 checkpoint-restore cycles at random points.
			rng := rand.New(rand.NewSource(seed * 977))
			var cuts []uint64
			for i := 0; i < 3; i++ {
				cuts = append(cuts, uint64(rng.Intn(targetIters*3/4))+1)
			}
			gotDigest := runChaos(t, seed, cuts, targetIters)

			if refDigest != gotDigest {
				t.Fatalf("seed %d: digest diverged after checkpoint-restore cycles: %x vs %x",
					seed, refDigest, gotDigest)
			}
		})
	}
}

// runChaos executes a chaosProg to exactly iters iterations, performing a
// checkpoint-destroy-restore cycle whenever the iteration count passes one
// of cuts (ascending order not required). Returns the final digest.
func runChaos(t *testing.T, seed int64, cuts []uint64, iters uint64) uint64 {
	t.Helper()
	r := newRig(t, 2)
	pod, err := zap.New(r.kernels[0], "chaos", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	if err != nil {
		t.Fatal(err)
	}
	prog := &chaosProg{Seed: seed, MaxIters: iters}
	if _, err := pod.Spawn("chaos", prog); err != nil {
		t.Fatal(err)
	}
	r.run(2 * sim.Millisecond)
	pod.TrackShm(prog.Shm)
	pod.TrackSem(prog.Sem)

	seq := 0
	cur := prog
	pending := append([]uint64(nil), cuts...)
	kernIdx := 0
	for i := 0; i < 100000; i++ {
		if cur.Fault != "" {
			t.Fatalf("chaos fault: %s", cur.Fault)
		}
		if cur.Iters >= iters {
			return cur.Digest
		}
		// Time to cut?
		cut := false
		for j, c := range pending {
			if cur.Iters >= c {
				pending = append(pending[:j], pending[j+1:]...)
				cut = true
				break
			}
		}
		if cut {
			seq++
			img := r.stopAndCapture(pod, seq, Options{})
			pod.Destroy()
			// Alternate target node to exercise cross-node restore.
			kernIdx = 1 - kernIdx
			pod2, rerr := Restore(r.kernels[kernIdx], img)
			if rerr != nil {
				t.Fatalf("restore: %v", rerr)
			}
			pod2.Resume()
			pod = pod2
			cur = pod.Process(1).Program().(*chaosProg)
			continue
		}
		r.run(sim.Millisecond)
	}
	t.Fatalf("chaos run never reached %d iterations (at %d)", iters, cur.Iters)
	return 0
}
