package ckpt

import (
	"cruz/internal/mem"
	"cruz/internal/trace"
	"cruz/internal/zap"
)

// LiveCapture is one pre-copy round's worth of memory, captured from a
// RUNNING pod (§5.2's copy-on-write checkpointing). The image holds the
// page contents as of the snapshot instant; the snapshots behind it stay
// armed until Release, so every application write to a captured page in
// the meantime takes a COW break — the kernel's fault hook charges that
// as the runtime cost of checkpointing concurrently with execution.
//
// The caller owns the capture's lifecycle:
//
//   - Release once the round's image is durably written (or on abort),
//     returning pages to sole ownership so writes stop faulting.
//   - Redirty on abort, after Release: the round cleared dirty tracking
//     when it captured, so the pages it held must be re-marked dirty or
//     the next capture would silently miss them.
type LiveCapture struct {
	Image  *Image
	spaces []*mem.AddressSpace // live spaces, parallel to snaps
	snaps  []*mem.AddressSpace
	pages  [][]uint64 // per-process captured page numbers
}

// CaptureLive captures a round image from a running pod. The copy is
// atomic in virtual time (snapshotting write-protects every page in one
// event; no application write can interleave), and — unlike Capture —
// does not require the pod to be stopped.
//
// Round images are memory-only: kernel state (program values, file
// descriptors, signals, IPC) is deliberately absent, because Merge and
// mergeManifests take kernel state wholly from the newest image in a
// chain and the chain is always topped by a residual captured under
// Capture with the pod stopped. A round image is therefore not
// restorable by itself; it only exists as a link in a pre-copy chain.
//
// Each process's dirty tracking is cleared as it is captured, so the
// next round saves exactly the pages written after this round's
// snapshot instant.
func CaptureLive(pod *zap.Pod, seq int, opts Options) (*LiveCapture, error) {
	kern := pod.Kernel()
	img := &Image{
		PodName:     pod.Name(),
		Seq:         seq,
		Incremental: opts.Incremental,
		TakenAt:     kern.Engine().Now(),
		NextVPID:    pod.NextVPID(),
		Net: NetImage{
			IP:        pod.IP(),
			MAC:       pod.Config().MAC,
			FakeMAC:   pod.Config().FakeMAC,
			SharedMAC: pod.SharedMAC(),
		},
	}
	if opts.Incremental {
		img.BaseSeq = seq - 1
		if opts.BaseSeq != 0 {
			img.BaseSeq = opts.BaseSeq
		}
	}
	lc := &LiveCapture{Image: img}
	for _, vpid := range pod.VPIDs() {
		proc := pod.Process(vpid)
		as := proc.Mem()
		snap := as.Snapshot()
		pns := as.PageNumbers(opts.Incremental)
		as.ClearDirty()

		pi := ProcImage{VPID: vpid, Name: proc.Name()}
		pi.Memory.Regions = snap.Regions()
		pi.Memory.PageNums = pns
		pi.Memory.PageData = make([]byte, 0, len(pns)*mem.PageSize)
		for _, pn := range pns {
			pi.Memory.PageData = append(pi.Memory.PageData, snap.PageData(pn)...)
		}
		if opts.Hashes {
			pi.Memory.PageHashes = make([]mem.PageHash, 0, len(pns))
			before := snap.HashComputes()
			for _, pn := range pns {
				pi.Memory.PageHashes = append(pi.Memory.PageHashes, snap.PageHash(pn))
			}
			img.FreshHashes += int(snap.HashComputes() - before)
		}
		img.Processes = append(img.Processes, pi)
		lc.spaces = append(lc.spaces, as)
		lc.snaps = append(lc.snaps, snap)
		lc.pages = append(lc.pages, pns)
	}
	if tr := trace.FromEngine(kern.Engine()); tr.Enabled() {
		tr.Instant(kern.Name(), "ckpt", "capture-live",
			trace.Str("pod", pod.Name()),
			trace.Int("seq", int64(seq)),
			trace.Int("procs", int64(len(img.Processes))),
			trace.Int("mem_bytes", img.MemoryBytes()))
	}
	return lc, nil
}

// Pages returns the total number of pages the round captured.
func (lc *LiveCapture) Pages() int {
	n := 0
	for _, pns := range lc.pages {
		n += len(pns)
	}
	return n
}

// Release drops the COW sharing behind the capture. Live writes to the
// captured pages stop taking faults; the capture's Image is unaffected
// (its bytes were copied at snapshot time).
func (lc *LiveCapture) Release() {
	for _, snap := range lc.snaps {
		snap.Release()
	}
	lc.snaps = nil
}

// Redirty re-marks every captured page dirty in its live address space.
// The abort path calls it when the round's image is being discarded:
// those pages' only saved copy is going away, so the next capture must
// treat them as unsaved again.
func (lc *LiveCapture) Redirty() {
	for i, as := range lc.spaces {
		for _, pn := range lc.pages[i] {
			as.MarkDirty(pn)
		}
	}
}
