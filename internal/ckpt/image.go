// Package ckpt implements single-pod checkpoint and restart: capturing a
// stopped pod's complete state — program state ("CPU registers"), virtual
// memory, file descriptors including live TCP connections with their
// buffer contents, pipes, System-V IPC, pending signals, and the pod's
// network identity — into a serializable image, and reconstructing a
// running pod from such an image on any node (§3, §4 of the paper).
//
// The checkpoint is non-destructive: after Capture the pod can simply be
// resumed. Restore creates brand-new kernel objects (new physical pids,
// new socket structures); the Zap virtualization layer masks every
// identifier change from the application.
package ckpt

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"cruz/internal/ether"
	"cruz/internal/kernel"
	"cruz/internal/mem"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
)

// encBufPool recycles the scratch buffers behind every gob encode on the
// capture path (program state, whole images, manifests). Checkpoints are
// taken repeatedly over a pod's life, so reusing the grown buffer avoids
// re-paying the append-doubling allocations on every capture.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeToBytes gob-encodes v through a pooled buffer and returns a
// compact copy of the result.
func encodeToBytes(v any) ([]byte, error) {
	buf := encBufPool.Get().(*bytes.Buffer)
	defer encBufPool.Put(buf)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return nil, err
	}
	return append(make([]byte, 0, buf.Len()), buf.Bytes()...), nil
}

// RegisterProgram must be called (once, at init time) for every concrete
// Program type that will be checkpointed, so its state can travel through
// gob. This mirrors the real-world requirement that checkpointable code
// be compiled into the restoring binary.
func RegisterProgram(p kernel.Program) { gob.Register(p) }

// progHolder lets gob encode the Program interface value.
type progHolder struct {
	P kernel.Program
}

// MemImage is a saved address space. Page contents are stored as one
// contiguous blob (PageData[i*PageSize:(i+1)*PageSize] belongs to page
// PageNums[i]) so serialization costs a bulk copy instead of per-page
// reflection — checkpoint images are ~100 MB in the paper's workloads.
type MemImage struct {
	Regions  []mem.Region
	PageNums []uint64
	PageData []byte
	// PageHashes, when present (Options.Hashes), holds the content hash
	// of each stored page, parallel to PageNums. It is what lets a store
	// deduplicate pages without re-reading their contents.
	PageHashes []mem.PageHash
}

// AddPage appends one page to the image.
func (m *MemImage) AddPage(pn uint64, data []byte) {
	m.PageNums = append(m.PageNums, pn)
	m.PageData = append(m.PageData, data...)
}

// Page returns the contents of the i-th stored page.
func (m *MemImage) Page(i int) []byte {
	return m.PageData[i*mem.PageSize : (i+1)*mem.PageSize]
}

// NumPages returns the stored page count.
func (m *MemImage) NumPages() int { return len(m.PageNums) }

// UDPImage is a saved UDP socket.
type UDPImage struct {
	Local     tcpip.AddrPort
	Broadcast bool
	Queue     []tcpip.UDPMessage
}

// FDImage is one saved descriptor-table slot. Exactly one of the payload
// fields is set, per Kind.
type FDImage struct {
	Num  int
	Kind kernel.FDKind

	Conn     *tcpip.TCPSavedState
	Listener *tcpip.TCPListenerState
	UDP      *UDPImage
	PipeID   int // for FDPipeRead / FDPipeWrite
}

// PipeImage is one saved pipe (topology entries in FDImage refer to ID).
type PipeImage struct {
	ID     int
	Buffer []byte
}

// ProcImage is one saved process.
type ProcImage struct {
	VPID     int
	Name     string
	ProgData []byte // gob-encoded progHolder
	Memory   MemImage
	FDs      []FDImage
	Signals  []kernel.Signal
	CPUTime  sim.Duration
}

// ShmImage is one saved shared-memory segment.
type ShmImage struct {
	ID, Key, Size int
	Contents      []byte
}

// SemImage is one saved semaphore.
type SemImage struct {
	ID, Key, Value int
}

// NetImage is the pod's saved network identity.
type NetImage struct {
	IP      tcpip.Addr
	MAC     ether.MAC
	FakeMAC ether.MAC
	// SharedMAC records the no-multi-MAC mode; on restore at a new node
	// the VIF then adopts that node's physical MAC and relies on
	// gratuitous ARP (§4.2's alternate solution).
	SharedMAC bool
}

// Image is a complete pod checkpoint.
type Image struct {
	PodName string
	Seq     int // checkpoint sequence number, monotonically increasing
	BaseSeq int // for incremental images: the Seq this delta applies to
	// Incremental marks an image holding only pages dirtied since
	// BaseSeq (plus full kernel state, which is small).
	Incremental bool
	TakenAt     sim.Time
	// FreshHashes counts the pages whose content hash had to be computed
	// during this capture (cache misses); pages untouched since the last
	// hashing capture reuse their cached hash for free. Agents use this
	// to charge hashing CPU time proportional to fresh bytes only.
	FreshHashes int

	Net       NetImage
	NextVPID  int
	Processes []ProcImage
	Shms      []ShmImage
	Sems      []SemImage
	Pipes     []PipeImage
}

// Encode serializes the image, returning the byte stream a store writes
// to disk.
func (img *Image) Encode() ([]byte, error) {
	b, err := encodeToBytes(img)
	if err != nil {
		return nil, fmt.Errorf("ckpt: encode image: %w", err)
	}
	return b, nil
}

// DecodeImage parses an encoded image.
func DecodeImage(b []byte) (*Image, error) {
	var img Image
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&img); err != nil {
		return nil, fmt.Errorf("ckpt: decode image: %w", err)
	}
	return &img, nil
}

// MemoryBytes returns the total page payload in the image — the dominant
// component of checkpoint size and hence of checkpoint latency (§6).
func (img *Image) MemoryBytes() int64 {
	var n int64
	for _, p := range img.Processes {
		n += int64(len(p.Memory.PageData))
	}
	for _, s := range img.Shms {
		n += int64(len(s.Contents))
	}
	return n
}

// Merge applies an incremental image on top of a (merged) base, producing
// a self-contained image equivalent to a full checkpoint at the
// increment's time. Kernel state (sockets, fds, signals, IPC values)
// comes wholly from the increment; only memory pages merge.
func Merge(base, inc *Image) (*Image, error) {
	if !inc.Incremental {
		return inc, nil
	}
	if base == nil || base.PodName != inc.PodName || inc.BaseSeq != base.Seq {
		return nil, fmt.Errorf("ckpt: increment %s/%d does not apply to base %v",
			inc.PodName, inc.Seq, base)
	}
	out := *inc
	out.Incremental = false
	out.BaseSeq = 0
	out.Processes = make([]ProcImage, len(inc.Processes))
	baseByVPID := make(map[int]*ProcImage)
	for i := range base.Processes {
		baseByVPID[base.Processes[i].VPID] = &base.Processes[i]
	}
	for i, p := range inc.Processes {
		merged := p
		if bp, ok := baseByVPID[p.VPID]; ok {
			// Hashes survive a merge only when both sides carry them.
			withHashes := len(bp.Memory.PageHashes) == bp.Memory.NumPages() &&
				len(p.Memory.PageHashes) == p.Memory.NumPages()
			type pageSrc struct {
				data []byte
				hash mem.PageHash
			}
			pages := make(map[uint64]pageSrc, bp.Memory.NumPages()+p.Memory.NumPages())
			for j, pn := range bp.Memory.PageNums {
				src := pageSrc{data: bp.Memory.Page(j)}
				if withHashes {
					src.hash = bp.Memory.PageHashes[j]
				}
				pages[pn] = src
			}
			for j, pn := range p.Memory.PageNums {
				src := pageSrc{data: p.Memory.Page(j)}
				if withHashes {
					src.hash = p.Memory.PageHashes[j]
				}
				pages[pn] = src
			}
			// Deterministic page order.
			pns := make([]uint64, 0, len(pages))
			for pn := range pages {
				pns = append(pns, pn)
			}
			sortUint64(pns)
			merged.Memory.PageNums = nil
			merged.Memory.PageHashes = nil
			merged.Memory.PageData = make([]byte, 0, len(pns)*mem.PageSize)
			for _, pn := range pns {
				merged.Memory.AddPage(pn, pages[pn].data)
				if withHashes {
					merged.Memory.PageHashes = append(merged.Memory.PageHashes, pages[pn].hash)
				}
			}
		}
		out.Processes[i] = merged
	}
	return &out, nil
}

func sortUint64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
