package ckpt

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cruz/internal/mem"
	"cruz/internal/trace"
)

// Erasure-coded durability tier: instead of shipping k full replicas of
// every committed checkpoint (k× bytes on the wire and on disk), the
// distinct dedup chunks of a checkpoint chain are packed into stripes of
// m chunks and extended with r Reed-Solomon parity blocks, so surviving
// any r node losses costs ~(1+r/m)× instead of k×. The codec is
// stdlib-only GF(256) arithmetic with precomputed exp/log/mul tables and
// a Vandermonde-derived systematic matrix: the m data shards of a stripe
// ARE the chunks (content-addressed, dedup-shared like everything else),
// and parity blocks enter the same chunk table under their own content
// hash, so the existing offer/want/data delta protocol ships shards with
// no new wire format for bulk data.

// ErrECShards is returned when too few shards survive to reconstruct a
// stripe (fewer than m of its m+r shards are available).
var ErrECShards = errors.New("ckpt: too few shards to reconstruct stripe")

// ECParams configures the erasure-coding tier: each stripe holds M data
// chunks and R parity blocks, and any M of the M+R shards reconstruct
// the stripe. Zero params disable EC.
type ECParams struct {
	M int
	R int
}

// Enabled reports whether erasure coding is configured.
func (p ECParams) Enabled() bool { return p.M > 0 && p.R > 0 }

// Validate checks the parameters against the GF(256) field bound.
func (p ECParams) Validate() error {
	if p.M < 1 || p.R < 1 {
		return fmt.Errorf("ckpt: EC params %d+%d: need m >= 1 and r >= 1", p.M, p.R)
	}
	if p.M+p.R > 255 {
		return fmt.Errorf("ckpt: EC params %d+%d: m+r must be <= 255", p.M, p.R)
	}
	return nil
}

// String renders the params in the conventional "m+r" form.
func (p ECParams) String() string { return fmt.Sprintf("%d+%d", p.M, p.R) }

// ParseECParams parses the "m+r" form ("4+2").
func ParseECParams(s string) (ECParams, error) {
	var p ECParams
	i := strings.IndexByte(s, '+')
	if i < 0 {
		return p, fmt.Errorf("ckpt: EC spec %q: want \"m+r\" (e.g. 4+2)", s)
	}
	if _, err := fmt.Sscanf(s, "%d+%d", &p.M, &p.R); err != nil {
		return p, fmt.Errorf("ckpt: EC spec %q: %v", s, err)
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// ECStripe is one stripe of the shard manifest: up to M data chunk
// hashes (only the final stripe of a set may be shorter — the missing
// tail positions are implicit all-zero padding blocks) plus the R parity
// block hashes computed over them.
type ECStripe struct {
	Data   []mem.PageHash
	Parity []mem.PageHash
}

// ECSet is the shard manifest for one erasure-coded checkpoint: which
// distinct chunks of the chain ending at Seq were packed into which
// stripe, and the content hashes of the parity blocks extending each
// stripe. The set plus any M of a stripe's M+R shards reconstructs
// every chunk in the stripe.
type ECSet struct {
	Pod     string
	Seq     int
	M, R    int
	Chain   []int // manifest chain, newest-first
	Stripes []ECStripe
}

// Encode serializes the shard manifest for the wire.
func (set *ECSet) Encode() ([]byte, error) {
	b, err := encodeToBytes(set)
	if err != nil {
		return nil, fmt.Errorf("ckpt: encode EC set: %w", err)
	}
	return b, nil
}

// DecodeECSet parses an encoded shard manifest.
func DecodeECSet(b []byte) (*ECSet, error) {
	var set ECSet
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&set); err != nil {
		return nil, fmt.Errorf("ckpt: decode EC set: %w", err)
	}
	return &set, nil
}

// Shards returns the total shard count per stripe.
func (set *ECSet) Shards() int { return set.M + set.R }

// ShardIndex maps (stripe, holder) to the shard index the holder at ring
// position h stores for that stripe — a rotation, so consecutive stripes
// place their parity on different nodes and no node ever holds two
// shards of one stripe (the placement invariant that makes any R node
// losses survivable).
func (set *ECSet) ShardIndex(stripe, holder int) int {
	return (stripe + holder) % set.Shards()
}

// shardHash resolves one shard index of a stripe to its content hash.
// ok=false marks an implicit zero-padding position (short tail stripe).
func (set *ECSet) shardHash(stripe, idx int) (mem.PageHash, bool) {
	st := &set.Stripes[stripe]
	if idx < set.M {
		if idx >= len(st.Data) {
			return mem.PageHash{}, false
		}
		return st.Data[idx], true
	}
	return st.Parity[idx-set.M], true
}

// HolderHashes lists the distinct content hashes of every shard the
// holder at ring position h must store, in deterministic stripe order.
func (set *ECSet) HolderHashes(holder int) []mem.PageHash {
	seen := make(map[mem.PageHash]bool)
	var out []mem.PageHash
	for s := range set.Stripes {
		h, ok := set.shardHash(s, set.ShardIndex(s, holder))
		if !ok || seen[h] {
			continue
		}
		seen[h] = true
		out = append(out, h)
	}
	return out
}

// DataBytes is the logical chunk payload the set protects.
func (set *ECSet) DataBytes() int64 {
	var n int64
	for i := range set.Stripes {
		n += int64(len(set.Stripes[i].Data)) * mem.PageSize
	}
	return n
}

// ParityBytes is the parity payload the set adds.
func (set *ECSet) ParityBytes() int64 {
	var n int64
	for i := range set.Stripes {
		n += int64(len(set.Stripes[i].Parity)) * mem.PageSize
	}
	return n
}

// ---------------------------------------------------------------------
// GF(256) Reed-Solomon codec. Field: polynomial 0x11d, generator 2.

var (
	gfExp [512]byte
	gfLog [256]byte
	gfMul [256][256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[byte(x)] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			gfMul[a][b] = gfExp[int(gfLog[a])+int(gfLog[b])]
		}
	}
}

func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

type gfMatrix [][]byte

func newGFMatrix(rows, cols int) gfMatrix {
	m := make(gfMatrix, rows)
	buf := make([]byte, rows*cols)
	for i := range m {
		m[i] = buf[i*cols : (i+1)*cols]
	}
	return m
}

// vandermonde builds the rows×cols matrix with row i = [i^0, i^1, ...].
// Distinct evaluation points make every square row-submatrix invertible.
func vandermonde(rows, cols int) gfMatrix {
	m := newGFMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		e := byte(1)
		for j := 0; j < cols; j++ {
			m[i][j] = e
			e = gfMul[e][byte(i)]
		}
		if i == 0 {
			// 0^0 = 1, 0^j = 0 for j > 0.
			for j := 1; j < cols; j++ {
				m[0][j] = 0
			}
			m[0][0] = 1
		}
	}
	return m
}

func (m gfMatrix) mulMat(b gfMatrix) gfMatrix {
	rows, inner, cols := len(m), len(b), len(b[0])
	out := newGFMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for k := 0; k < inner; k++ {
			c := m[i][k]
			if c == 0 {
				continue
			}
			mt := &gfMul[c]
			for j := 0; j < cols; j++ {
				out[i][j] ^= mt[b[k][j]]
			}
		}
	}
	return out
}

// invert Gauss-Jordan-inverts a square matrix in place on a copy.
func (m gfMatrix) invert() (gfMatrix, error) {
	n := len(m)
	work := newGFMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		copy(work[i], m[i])
		work[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, errors.New("ckpt: singular shard matrix")
		}
		work[col], work[pivot] = work[pivot], work[col]
		if p := work[col][col]; p != 1 {
			for j := 0; j < 2*n; j++ {
				work[col][j] = gfDiv(work[col][j], p)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			c := work[r][col]
			mt := &gfMul[c]
			for j := 0; j < 2*n; j++ {
				work[r][j] ^= mt[work[col][j]]
			}
		}
	}
	inv := newGFMatrix(n, n)
	for i := 0; i < n; i++ {
		copy(inv[i], work[i][n:])
	}
	return inv, nil
}

// ecMatrixCache memoizes the systematic encode matrix per (m, r): the
// (m+r)×m Vandermonde matrix normalized so its top m rows are the
// identity (data shards pass through unchanged; the bottom r rows are
// the parity coefficients). Any m rows remain invertible.
var (
	ecMatrixMu    sync.Mutex
	ecMatrixCache = map[ECParams]gfMatrix{}
)

func ecEncodeMatrix(p ECParams) gfMatrix {
	ecMatrixMu.Lock()
	defer ecMatrixMu.Unlock()
	if m, ok := ecMatrixCache[p]; ok {
		return m
	}
	v := vandermonde(p.M+p.R, p.M)
	top := newGFMatrix(p.M, p.M)
	for i := 0; i < p.M; i++ {
		copy(top[i], v[i])
	}
	topInv, err := top.invert()
	if err != nil {
		// Vandermonde top squares are always invertible; reaching this
		// means the field tables are corrupt — fail loudly.
		panic(err)
	}
	enc := v.mulMat(topInv)
	ecMatrixCache[p] = enc
	return enc
}

// ecEncodeStripe computes the r parity blocks for one stripe. data holds
// up to m chunk blocks (nil or missing tail entries are implicit zero
// pages and contribute nothing).
func ecEncodeStripe(enc gfMatrix, p ECParams, data [][]byte) [][]byte {
	parity := make([][]byte, p.R)
	buf := make([]byte, p.R*mem.PageSize)
	for j := range parity {
		parity[j] = buf[j*mem.PageSize : (j+1)*mem.PageSize]
	}
	for i, d := range data {
		if d == nil {
			continue
		}
		for j := 0; j < p.R; j++ {
			c := enc[p.M+j][i]
			if c == 0 {
				continue
			}
			mt := &gfMul[c]
			out := parity[j]
			for b, v := range d {
				out[b] ^= mt[v]
			}
		}
	}
	return parity
}

// ecDecodeStripe reconstructs all m data blocks of a stripe from any m
// available shards. have lists the shard indexes present, blocks the
// matching shard bytes (nil = implicit zero block for a padding index).
func ecDecodeStripe(enc gfMatrix, p ECParams, have []int, blocks [][]byte) ([][]byte, error) {
	if len(have) < p.M {
		return nil, ErrECShards
	}
	sub := newGFMatrix(p.M, p.M)
	for k := 0; k < p.M; k++ {
		copy(sub[k], enc[have[k]])
	}
	inv, err := sub.invert()
	if err != nil {
		return nil, err
	}
	data := make([][]byte, p.M)
	buf := make([]byte, p.M*mem.PageSize)
	for i := range data {
		data[i] = buf[i*mem.PageSize : (i+1)*mem.PageSize]
	}
	for i := 0; i < p.M; i++ {
		for k := 0; k < p.M; k++ {
			c := inv[i][k]
			if c == 0 || blocks[k] == nil {
				continue
			}
			mt := &gfMul[c]
			out := data[i]
			for b, v := range blocks[k] {
				out[b] ^= mt[v]
			}
		}
	}
	return data, nil
}

// ecParallel fans fn(i) for i in [0, n) over a worker pool — the same
// encode-parallelism shape as the pipelined save path, but for CPU-bound
// stripe math. Each index writes only its own output slot, so the result
// is deterministic regardless of scheduling.
func ecParallel(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() { //cruzvet:allow nodeterminism host-CPU parity math inside one event; wg.Wait blocks before the event returns and each index writes only its own slot
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ---------------------------------------------------------------------
// Store integration: planning, holder-side adoption, reconstruction.

// ECPlan is the synchronous half of an erasure-coded save: stripes are
// assembled, parity blocks computed and resident in the chunk table, and
// the shard manifest registered. ParityBytes of disk writing remain for
// the caller (SaveEC wraps it in a single write).
type ECPlan struct {
	Pod         string
	Seq         int
	Set         *ECSet
	Stripes     int
	DataBytes   int64
	ParityBytes int64
}

// PlanECSave packs the distinct chunks of the manifest chain ending at
// (pod, seq) into stripes of p.M chunks, computes p.R parity blocks per
// stripe across a worker pool, and registers the shard manifest. The set
// takes a chunk-table reference on every data and parity block it covers
// — stripe-granularity refcounts, so Compact and Discard can never free
// a chunk whose stripe parity is still live (reconstructing any chunk of
// a stripe needs all of it). An older EC set for the same pod is
// superseded and its references released.
func (s *Store) PlanECSave(pod string, seq int, p ECParams) (*ECPlan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	offer, err := s.ExportOffer(pod, seq)
	if err != nil {
		return nil, err
	}
	if !offer.Dedup {
		return nil, fmt.Errorf("ckpt: EC save %s/%d: checkpoint is not deduplicated", pod, seq)
	}
	set := &ECSet{Pod: pod, Seq: seq, M: p.M, R: p.R, Chain: offer.Chain}
	enc := ecEncodeMatrix(p)
	nStripes := (len(offer.Hashes) + p.M - 1) / p.M
	set.Stripes = make([]ECStripe, nStripes)
	parities := make([][][]byte, nStripes)
	ecParallel(nStripes, func(i int) {
		lo := i * p.M
		hi := lo + p.M
		if hi > len(offer.Hashes) {
			hi = len(offer.Hashes)
		}
		hashes := offer.Hashes[lo:hi]
		data := make([][]byte, len(hashes))
		for j, h := range hashes {
			data[j] = s.chunks[h].data
		}
		parities[i] = ecEncodeStripe(enc, p, data)
		set.Stripes[i].Data = append([]mem.PageHash(nil), hashes...)
	})
	plan := &ECPlan{Pod: pod, Seq: seq, Set: set, Stripes: nStripes}
	plan.DataBytes = int64(len(offer.Hashes)) * mem.PageSize

	// Install parity blocks in the chunk table under their content hash
	// and take the set's stripe references (data and parity alike).
	for i := range set.Stripes {
		set.Stripes[i].Parity = make([]mem.PageHash, p.R)
		for j, blk := range parities[i] {
			h := mem.HashBlock(blk)
			set.Stripes[i].Parity[j] = h
			if e, ok := s.chunks[h]; ok {
				e.refs++
				s.stats.DupChunks++
			} else {
				s.chunks[h] = &chunkEntry{data: blk, refs: 1}
				s.stats.NewChunks++
				s.stats.NewChunkBytes += mem.PageSize
				plan.ParityBytes += mem.PageSize
			}
		}
		for _, h := range set.Stripes[i].Data {
			s.chunks[h].refs++
		}
	}

	if old, ok := s.ecsets[pod]; ok {
		for oseq := range old {
			if oseq < seq {
				s.dropECSet(pod, oseq)
			}
		}
	}
	if s.ecsets[pod] == nil {
		s.ecsets[pod] = make(map[int]*ECSet)
	}
	s.ecsets[pod][seq] = set
	return plan, nil
}

// SaveEC is the one-call form: plan, then a single disk write of the
// parity bytes. done receives the completed plan once the write lands.
func (s *Store) SaveEC(pod string, seq int, p ECParams, done func(*ECPlan, error)) {
	plan, err := s.PlanECSave(pod, seq, p)
	if err != nil {
		done(nil, err)
		return
	}
	var sp trace.Span
	if tr := trace.FromEngine(s.disk.Engine()); tr.Enabled() {
		sp = tr.Begin(s.disk.Name(), "ckpt", "store.save_ec",
			trace.Str("pod", pod), trace.Int("seq", int64(seq)),
			trace.Int("stripes", int64(plan.Stripes)),
			trace.Int("parity_bytes", plan.ParityBytes))
	}
	s.disk.Write(plan.ParityBytes, func() {
		sp.End()
		done(plan, nil)
	})
}

// ECSetFor returns the registered shard manifest for (pod, seq).
func (s *Store) ECSetFor(pod string, seq int) (*ECSet, bool) {
	set, ok := s.ecsets[pod][seq]
	return set, ok
}

// DropECSet unregisters a shard manifest, releasing its stripe
// references (parity blocks nothing else references are freed).
func (s *Store) DropECSet(pod string, seq int) { s.dropECSet(pod, seq) }

func (s *Store) dropECSet(pod string, seq int) {
	set, ok := s.ecsets[pod][seq]
	if !ok {
		return
	}
	for i := range set.Stripes {
		st := &set.Stripes[i]
		for _, h := range st.Data {
			s.releaseChunk(h)
		}
		for _, h := range st.Parity {
			s.releaseChunk(h)
		}
	}
	delete(s.ecsets[pod], seq)
	if len(s.ecsets[pod]) == 0 {
		delete(s.ecsets, pod)
	}
}

func (s *Store) releaseChunk(h mem.PageHash) {
	e, ok := s.chunks[h]
	if !ok {
		return
	}
	e.refs--
	if e.refs == 0 {
		delete(s.chunks, h)
		s.stats.FreedChunks++
		s.stats.FreedBytes += mem.PageSize
	}
}

// ECHeld records a holder's side of one erasure-coded checkpoint: the
// shard manifest, this node's ring position (which shard of each stripe
// it stores), and the raw chain manifests so recovery metadata survives
// the primary.
type ECHeld struct {
	Set       *ECSet
	Holder    int
	Manifests map[int][]byte
}

// ECMissingFor answers a shard offer with the chain manifests and shard
// blocks this store lacks — the EC analogue of MissingFor, consulting
// held raw manifests as well as decoded ones so re-offers of an
// unchanged chain cost nothing.
func (s *Store) ECMissingFor(o *Offer) (needSeqs []int, needHashes []mem.PageHash) {
	for _, cs := range o.Chain {
		if _, ok := s.ecManifests[o.Pod][cs]; ok {
			continue
		}
		if _, ok := s.manifests[o.Pod][cs]; ok {
			continue
		}
		needSeqs = append(needSeqs, cs)
	}
	for _, h := range o.Hashes {
		if _, ok := s.chunks[h]; !ok {
			needHashes = append(needHashes, h)
		}
	}
	return needSeqs, needHashes
}

// AdoptECShards installs a holder's shard delta: the shard manifest,
// this node's ring position, the chain manifests it was missing (kept as
// raw blobs — a holder stores metadata it cannot fully resolve), and the
// missing shard blocks. Every block the held set covers takes a chunk
// reference so the holder's own GC cannot free it. An older held set for
// the same pod is superseded. done fires once the adopted bytes land on
// disk.
func (s *Store) AdoptECShards(set *ECSet, holder int, manifests map[int][]byte, chunks []ChunkData, ctx trace.SpanContext, done func(int64, error)) {
	var total int64
	for _, cd := range chunks {
		if _, ok := s.chunks[cd.Hash]; !ok {
			s.chunks[cd.Hash] = &chunkEntry{data: cd.Data}
			s.stats.NewChunks++
			s.stats.NewChunkBytes += int64(len(cd.Data))
		}
		total += int64(len(cd.Data))
	}
	want := set.HolderHashes(holder)
	for _, h := range want {
		e, ok := s.chunks[h]
		if !ok {
			done(0, fmt.Errorf("ckpt: adopt EC %s/%d: missing shard block %v", set.Pod, set.Seq, h))
			return
		}
		e.refs++
	}
	if s.ecManifests[set.Pod] == nil {
		s.ecManifests[set.Pod] = make(map[int][]byte)
	}
	for seq, blob := range manifests {
		s.ecManifests[set.Pod][seq] = blob
		total += int64(len(blob))
	}
	if old, ok := s.ecHeld[set.Pod]; ok {
		for oseq := range old {
			if oseq < set.Seq {
				s.dropECHeld(set.Pod, oseq)
			}
		}
	}
	if s.ecHeld[set.Pod] == nil {
		s.ecHeld[set.Pod] = make(map[int]*ECHeld)
	}
	held := &ECHeld{Set: set, Holder: holder, Manifests: make(map[int][]byte)}
	for _, cs := range set.Chain {
		if blob, ok := s.ecManifests[set.Pod][cs]; ok {
			held.Manifests[cs] = blob
		} else if m, ok := s.manifests[set.Pod][cs]; ok {
			// The chain manifest arrived earlier through ordinary
			// replication; serve reconstructs from the decoded form.
			if blob, err := m.Encode(); err == nil {
				held.Manifests[cs] = blob
			}
		}
	}
	s.ecHeld[set.Pod][set.Seq] = held
	if total <= 0 {
		done(0, nil)
		return
	}
	var sp trace.Span
	if tr := trace.FromEngine(s.disk.Engine()); tr.Enabled() {
		sp = tr.BeginChild(ctx, s.disk.Name(), "ckpt", "store.adopt_ec",
			trace.Str("pod", set.Pod), trace.Int("seq", int64(set.Seq)),
			trace.Int("holder", int64(holder)), trace.Int("bytes", total))
	}
	s.disk.Write(total, func() {
		sp.End()
		done(total, nil)
	})
}

func (s *Store) dropECHeld(pod string, seq int) {
	held, ok := s.ecHeld[pod][seq]
	if !ok {
		return
	}
	for _, h := range held.Set.HolderHashes(held.Holder) {
		s.releaseChunk(h)
	}
	delete(s.ecHeld[pod], seq)
	if len(s.ecHeld[pod]) == 0 {
		delete(s.ecHeld, pod)
	}
}

// ECHeldFor returns this node's held shard set for (pod, seq).
func (s *Store) ECHeldFor(pod string, seq int) (*ECHeld, bool) {
	held, ok := s.ecHeld[pod][seq]
	return held, ok
}

// ECHeldSeq returns the newest seq this node holds shards for.
func (s *Store) ECHeldSeq(pod string) (int, bool) {
	best, found := 0, false
	for seq := range s.ecHeld[pod] {
		if !found || seq > best {
			best, found = seq, true
		}
	}
	return best, found
}

// ECServe assembles this holder's contribution to a reconstruction: the
// shard manifest, the chain manifests, and every shard block it holds.
func (s *Store) ECServe(pod string, seq int) (*ECSet, map[int][]byte, []ChunkData, error) {
	held, ok := s.ecHeld[pod][seq]
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: %s/%d (no held shards)", ErrNoImage, pod, seq)
	}
	var blocks []ChunkData
	for _, h := range held.Set.HolderHashes(held.Holder) {
		if e, ok := s.chunks[h]; ok {
			blocks = append(blocks, ChunkData{Hash: h, Data: e.data})
		}
	}
	return held.Set, held.Manifests, blocks, nil
}

// ECRecovery summarizes a reconstruction: how many chunks had to be
// decoded from parity versus arrived directly, and the bytes installed.
type ECRecovery struct {
	Chunks         int
	DecodedChunks  int
	DecodedStripes int
	// TotalBytes is every installed data chunk's bytes. A caller that
	// already wrote the directly-arrived shard blocks to disk as they
	// landed charges only DecodedBytes at decode time.
	TotalBytes int64
	// DecodedBytes is the subset of TotalBytes that had to be decoded
	// from parity rather than arriving as a shard block.
	DecodedBytes int64
}

// ReconstructEC rebuilds the checkpoint chain of an erasure-coded set
// from shard blocks gathered off any M surviving holders: stripes whose
// data chunks all arrived install directly; stripes missing data decode
// it from parity (any M of M+R shards), across the same worker pool as
// encode. Recovered chunks are verified against their content hash, the
// chain manifests are installed, and the store is left restart-ready
// (LoadMerged resolves the chain). The caller charges disk and CPU.
func (s *Store) ReconstructEC(set *ECSet, manifests map[int][]byte, blocks []ChunkData) (*ECRecovery, error) {
	p := ECParams{M: set.M, R: set.R}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	avail := make(map[mem.PageHash][]byte, len(blocks))
	for _, cd := range blocks {
		avail[cd.Hash] = cd.Data
	}
	lookup := func(h mem.PageHash) []byte {
		if d, ok := avail[h]; ok {
			return d
		}
		if e, ok := s.chunks[h]; ok {
			return e.data
		}
		return nil
	}
	enc := ecEncodeMatrix(p)
	rec := &ECRecovery{}
	type stripeOut struct {
		decoded bool
		data    [][]byte // recovered blocks for missing data hashes, aligned to Stripes[i].Data
		err     error
	}
	outs := make([]stripeOut, len(set.Stripes))
	ecParallel(len(set.Stripes), func(i int) {
		st := &set.Stripes[i]
		missing := false
		for _, h := range st.Data {
			if lookup(h) == nil {
				missing = true
				break
			}
		}
		if !missing {
			return
		}
		// Gather any M available shards: data positions first (including
		// implicit zero padding), then parity.
		var have []int
		var shards [][]byte
		for idx := 0; idx < set.M+set.R && len(have) < set.M; idx++ {
			h, real := set.shardHash(i, idx)
			if !real {
				have = append(have, idx)
				shards = append(shards, nil) // zero padding block
				continue
			}
			if d := lookup(h); d != nil {
				have = append(have, idx)
				shards = append(shards, d)
			}
		}
		data, err := ecDecodeStripe(enc, p, have, shards)
		if err != nil {
			outs[i] = stripeOut{err: fmt.Errorf("%w: %s/%d stripe %d (%d of %d shards)",
				ErrECShards, set.Pod, set.Seq, i, len(have), set.Shards())}
			return
		}
		out := stripeOut{decoded: true, data: make([][]byte, len(st.Data))}
		for j, h := range st.Data {
			if lookup(h) != nil {
				continue
			}
			if got := mem.HashBlock(data[j]); got != h {
				out.err = fmt.Errorf("ckpt: reconstruct %s/%d stripe %d chunk %d: hash mismatch",
					set.Pod, set.Seq, i, j)
				break
			}
			out.data[j] = data[j]
		}
		outs[i] = out
	})
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
	}
	// Install every data chunk (direct or decoded) into the chunk table;
	// the chain manifests then take their references as in Adopt.
	for i := range set.Stripes {
		st := &set.Stripes[i]
		if outs[i].decoded {
			rec.DecodedStripes++
		}
		for j, h := range st.Data {
			rec.Chunks++
			if _, ok := s.chunks[h]; ok {
				continue
			}
			var d []byte
			if db, ok := avail[h]; ok {
				d = db
			} else if outs[i].data != nil {
				d = outs[i].data[j]
				rec.DecodedChunks++
				rec.DecodedBytes += int64(len(d))
			}
			if d == nil {
				return nil, fmt.Errorf("ckpt: reconstruct %s/%d: chunk %v unresolved", set.Pod, set.Seq, h)
			}
			s.chunks[h] = &chunkEntry{data: d}
			s.stats.NewChunks++
			s.stats.NewChunkBytes += int64(len(d))
			rec.TotalBytes += int64(len(d))
		}
	}
	seqs := append([]int(nil), set.Chain...)
	sort.Ints(seqs)
	for _, seq := range seqs {
		if _, ok := s.manifests[set.Pod][seq]; ok {
			continue
		}
		blob, ok := manifests[seq]
		if !ok {
			return nil, fmt.Errorf("ckpt: reconstruct %s/%d: missing chain manifest %d", set.Pod, set.Seq, seq)
		}
		m, err := DecodeManifest(blob)
		if err != nil {
			return nil, err
		}
		for i := range m.Procs {
			for _, ref := range m.Procs[i].Pages {
				e, ok := s.chunks[ref.Hash]
				if !ok {
					return nil, fmt.Errorf("ckpt: reconstruct %s/%d: missing chunk %v", set.Pod, seq, ref.Hash)
				}
				e.refs++
				s.stats.DupChunks++
			}
		}
		if s.manifests[set.Pod] == nil {
			s.manifests[set.Pod] = make(map[int]*Manifest)
			s.manifestBytes[set.Pod] = make(map[int]int64)
		}
		s.manifests[set.Pod][seq] = m
		s.manifestBytes[set.Pod][seq] = int64(len(blob))
		if seq > s.latest[set.Pod] {
			s.latest[set.Pod] = seq
		}
		rec.TotalBytes += int64(len(blob))
	}
	return rec, nil
}
