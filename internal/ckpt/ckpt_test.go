package ckpt

import (
	"errors"
	"io"
	"testing"

	"cruz/internal/ether"
	"cruz/internal/kernel"
	"cruz/internal/mem"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/zap"
)

func init() {
	RegisterProgram(&memWorker{})
	RegisterProgram(&podServer{})
	RegisterProgram(&pipePair{})
	RegisterProgram(&shmSemWorker{})
}

type rig struct {
	t       *testing.T
	engine  *sim.Engine
	sw      *ether.Switch
	kernels []*kernel.Kernel
	nics    []*ether.NIC
	store   *Store
}

func newRig(t *testing.T, nodes int) *rig {
	t.Helper()
	r := &rig{t: t, engine: sim.NewEngine(21)}
	r.sw = ether.NewSwitch(r.engine)
	for i := 0; i < nodes; i++ {
		mac := ether.MAC{2, 0, 0, 0, 0, byte(i + 1)}
		nic := ether.NewNIC(r.engine, "eth0", mac)
		r.sw.Attach(nic, ether.GigabitLink)
		st := tcpip.NewStack(r.engine, "node")
		if _, err := st.AddInterface("eth0", tcpip.Addr{10, 0, 0, byte(i + 1)}, mac, nic, false); err != nil {
			t.Fatal(err)
		}
		r.kernels = append(r.kernels, kernel.New(r.engine, "node", kernel.DefaultParams(), st))
		r.nics = append(r.nics, nic)
	}
	r.store = NewStore(r.kernels[0].Disk())
	return r
}

func (r *rig) run(d sim.Duration) {
	r.t.Helper()
	if err := r.engine.RunFor(d); err != nil {
		r.t.Fatal(err)
	}
}

func podIP(i int) tcpip.Addr { return tcpip.Addr{10, 0, 1, byte(i + 1)} }
func podMAC(i int) ether.MAC { return ether.MAC{2, 0, 0, 1, 0, byte(i + 1)} }

// stopAndCapture freezes pod traffic, stops the pod, and captures it.
func (r *rig) stopAndCapture(pod *zap.Pod, seq int, opts Options) *Image {
	r.t.Helper()
	f := pod.Kernel().Stack().Filter()
	rule := f.AddDropAddr(pod.IP())
	stopped := false
	pod.Stop(func() { stopped = true })
	r.run(50 * sim.Millisecond)
	if !stopped {
		r.t.Fatal("pod did not quiesce")
	}
	img, err := Capture(pod, seq, opts)
	if err != nil {
		r.t.Fatalf("Capture: %v", err)
	}
	f.RemoveRule(rule)
	return img
}

// memWorker allocates a heap, stamps pages each iteration, and advances a
// counter both in program state and in memory.
type memWorker struct {
	Heap     uint64
	HeapSize uint64
	Iter     uint64
	MyPID    int
}

func (w *memWorker) Step(ctx *kernel.ProcContext) kernel.StepResult {
	m := ctx.Mem()
	if w.Heap == 0 {
		base, err := m.Alloc(w.HeapSize, "heap")
		if err != nil {
			return kernel.Exit(0, 1)
		}
		w.Heap = base
	}
	w.MyPID = ctx.PID()
	w.Iter++
	// Stamp a rotating page plus the counter cell.
	page := (w.Iter % (w.HeapSize / mem.PageSize)) * mem.PageSize
	if err := m.WriteUint64(w.Heap+page, w.Iter); err != nil {
		return kernel.Exit(0, 1)
	}
	if err := m.WriteUint64(w.Heap, w.Iter); err != nil {
		return kernel.Exit(0, 1)
	}
	return kernel.Sleep(100*sim.Microsecond, sim.Millisecond)
}

func TestCheckpointRestartSameNode(t *testing.T) {
	r := newRig(t, 1)
	pod, err := zap.New(r.kernels[0], "w", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	if err != nil {
		t.Fatal(err)
	}
	w := &memWorker{HeapSize: 64 * mem.PageSize}
	if _, err := pod.Spawn("worker", w); err != nil {
		t.Fatal(err)
	}
	r.run(100 * sim.Millisecond)
	img := r.stopAndCapture(pod, 1, Options{})
	iterAtCkpt := w.Iter
	if iterAtCkpt == 0 {
		t.Fatal("worker never ran")
	}

	pod.Destroy()
	r.run(sim.Millisecond)
	pod2, err := Restore(r.kernels[0], img)
	if err != nil {
		t.Fatal(err)
	}
	if !pod2.Stopped() {
		t.Fatal("restored pod should be stopped")
	}
	w2, okProg := pod2.Process(1).Program().(*memWorker)
	if !okProg {
		t.Fatalf("restored program has type %T", pod2.Process(1).Program())
	}
	if w2 == w {
		t.Fatal("restore aliased the original program value")
	}
	if w2.Iter != iterAtCkpt {
		t.Fatalf("restored Iter = %d, want %d", w2.Iter, iterAtCkpt)
	}
	// Memory round trip: counter cell matches the program counter.
	v, err := pod2.Process(1).Mem().ReadUint64(w2.Heap)
	if err != nil {
		t.Fatal(err)
	}
	if v != iterAtCkpt {
		t.Fatalf("restored memory counter = %d, want %d", v, iterAtCkpt)
	}

	pod2.Resume()
	r.run(100 * sim.Millisecond)
	if w2.Iter <= iterAtCkpt {
		t.Fatal("restored worker did not continue")
	}
	if w.Iter != iterAtCkpt {
		t.Fatal("original program value advanced after destroy")
	}
}

func TestRestartSurvivesPIDReuse(t *testing.T) {
	// The Zap headline: restart works even when the saved pids are in
	// use, because applications only ever see virtual pids.
	r := newRig(t, 2)
	pod, _ := zap.New(r.kernels[0], "w", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	w := &memWorker{HeapSize: 4 * mem.PageSize}
	pod.Spawn("worker", w)
	r.run(50 * sim.Millisecond)
	if w.MyPID != 1 {
		t.Fatalf("worker vpid = %d", w.MyPID)
	}
	img := r.stopAndCapture(pod, 1, Options{})
	pod.Destroy()

	// Node 1 already has busy processes occupying low pids.
	for i := 0; i < 7; i++ {
		r.kernels[1].Spawn("squatter", &memWorker{HeapSize: mem.PageSize}, 0)
	}
	r.run(10 * sim.Millisecond)

	pod2, err := Restore(r.kernels[1], img)
	if err != nil {
		t.Fatal(err)
	}
	pod2.Resume()
	r.run(50 * sim.Millisecond)
	w2 := pod2.Process(1).Program().(*memWorker)
	if w2.MyPID != 1 {
		t.Fatalf("restored worker sees pid %d, want its old virtual pid 1", w2.MyPID)
	}
	if pod2.Process(1).PID() == 1 {
		t.Fatal("test is vacuous: physical pid 1 was free on the target")
	}
}

// podServer accepts one connection and echoes forever (like the kernel
// test's echo server, but checkpoint-registered).
type podServer struct {
	Port   uint16
	Phase  int
	LFD    int
	CFD    int
	Buf    []byte
	Echoed int
}

func (p *podServer) Step(ctx *kernel.ProcContext) kernel.StepResult {
	switch p.Phase {
	case 0:
		fd, err := ctx.Listen(tcpip.AddrPort{Port: p.Port}, 4)
		if err != nil {
			return kernel.Exit(0, 1)
		}
		p.LFD = fd
		p.Phase = 1
		return kernel.Continue(0)
	case 1:
		cfd, err := ctx.Accept(p.LFD)
		if err == kernel.ErrWouldBlock {
			return kernel.BlockOnRead(0, p.LFD)
		}
		if err != nil {
			return kernel.Exit(0, 1)
		}
		p.CFD = cfd
		p.Phase = 2
		return kernel.Continue(0)
	case 2:
		buf := make([]byte, 4096)
		n, err := ctx.Recv(p.CFD, buf, false)
		if err == kernel.ErrWouldBlock {
			return kernel.BlockOnRead(0, p.CFD)
		}
		if err == io.EOF {
			return kernel.Exit(0, 0)
		}
		if err != nil {
			return kernel.Exit(0, 1)
		}
		p.Buf = buf[:n]
		p.Phase = 3
		return kernel.Continue(5 * sim.Microsecond)
	default:
		n, err := ctx.Send(p.CFD, p.Buf)
		if err == kernel.ErrWouldBlock {
			return kernel.BlockOnWrite(0, p.CFD)
		}
		if err != nil {
			return kernel.Exit(0, 1)
		}
		p.Echoed += n
		p.Buf = p.Buf[n:]
		if len(p.Buf) == 0 {
			p.Phase = 2
		}
		return kernel.Continue(0)
	}
}

func TestMigrateNetworkedPod(t *testing.T) {
	// A pod echo server migrates from node0 to node2 while an external
	// client (on node1, not under any checkpoint control) is mid-stream.
	// The client must notice nothing except a pause.
	r := newRig(t, 3)
	pod, _ := zap.New(r.kernels[0], "srv", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	server := &podServer{Port: 7}
	pod.Spawn("echod", server)
	r.run(20 * sim.Millisecond)

	// Raw tcpip client on node1 so we control pacing precisely.
	clientStack := r.kernels[1].Stack()
	conn, err := clientStack.DialTCP(tcpip.AddrPort{}, tcpip.AddrPort{Addr: podIP(0), Port: 7})
	if err != nil {
		t.Fatal(err)
	}
	r.run(20 * sim.Millisecond)
	if conn.State() != tcpip.StateEstablished {
		t.Fatalf("client not established: %v", conn.State())
	}

	// Stream some data and read echoes.
	payload := make([]byte, 30000)
	for i := range payload {
		payload[i] = byte(i * 17)
	}
	sent, recvd := 0, 0
	got := make([]byte, 0, len(payload))
	buf := make([]byte, 8192)
	pump := func(budget int) {
		for steps := 0; steps < budget; steps++ {
			if sent < len(payload) {
				if n, err := conn.Send(payload[sent:]); err == nil {
					sent += n
				}
			}
			if n, err := conn.Recv(buf, false); err == nil {
				got = append(got, buf[:n]...)
				recvd += n
			}
			r.run(2 * sim.Millisecond)
			if recvd >= len(payload) {
				return
			}
		}
	}
	pump(20) // partial exchange before migration

	img := r.stopAndCapture(pod, 1, Options{})
	pod.Destroy()
	pod2, err := Restore(r.kernels[2], img)
	if err != nil {
		t.Fatal(err)
	}
	pod2.Resume()

	pump(3000)
	if recvd != len(payload) {
		t.Fatalf("client received %d of %d echoed bytes across migration", recvd, len(payload))
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("echoed byte %d corrupted across migration", i)
		}
	}
	if conn.Err() != nil {
		t.Fatalf("client connection saw error: %v", conn.Err())
	}
	// The server program really is running on the new node.
	s2 := pod2.Process(1).Program().(*podServer)
	if s2.Echoed < len(payload) {
		t.Fatalf("restored server echoed %d", s2.Echoed)
	}
}

// pipePair is a single process owning both ends of a pipe: it writes
// Total bytes and reads them back, one chunk per step.
type pipePair struct {
	RFD, WFD int
	Init     bool
	Total    int
	Written  int
	Read     int
	Sum      uint32
}

func (p *pipePair) Step(ctx *kernel.ProcContext) kernel.StepResult {
	if !p.Init {
		r, w, err := ctx.Pipe()
		if err != nil {
			return kernel.Exit(0, 1)
		}
		p.RFD, p.WFD, p.Init = r, w, true
		return kernel.Continue(0)
	}
	if p.Written < p.Total {
		chunk := make([]byte, 100)
		for i := range chunk {
			chunk[i] = byte(p.Written + i)
		}
		if n, err := ctx.Send(p.WFD, chunk); err == nil {
			p.Written += n
		}
		return kernel.Continue(10 * sim.Microsecond)
	}
	buf := make([]byte, 64)
	n, err := ctx.Recv(p.RFD, buf, false)
	if err == kernel.ErrWouldBlock {
		return kernel.BlockOnRead(0, p.RFD)
	}
	if err != nil {
		return kernel.Exit(0, 1)
	}
	for _, b := range buf[:n] {
		p.Sum += uint32(b)
	}
	p.Read += n
	if p.Read >= p.Total {
		return kernel.Exit(0, 0)
	}
	return kernel.Continue(0)
}

func TestPipeContentsSurviveRestart(t *testing.T) {
	r := newRig(t, 1)
	pod, _ := zap.New(r.kernels[0], "p", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	prog := &pipePair{Total: 5000}
	pod.Spawn("pair", prog)
	// Let it write everything into the pipe but stop before it reads much.
	r.run(200 * sim.Microsecond)
	img := r.stopAndCapture(pod, 1, Options{})
	if prog.Written == 0 {
		t.Fatal("nothing written before checkpoint")
	}
	if prog.Read >= prog.Total {
		t.Fatal("checkpoint landed after the interesting window")
	}
	if len(img.Processes) != 1 || len(img.Pipes) != 1 {
		t.Fatalf("image: %d procs, %d pipes", len(img.Processes), len(img.Pipes))
	}
	readAt := prog.Read
	pod.Destroy()
	pod2, err := Restore(r.kernels[0], img)
	if err != nil {
		t.Fatal(err)
	}
	p2 := pod2.Process(1).Program().(*pipePair)
	pod2.Resume()
	r.run(sim.Second)
	if p2.Read != p2.Total {
		t.Fatalf("restored pair read %d of %d (was %d at ckpt)", p2.Read, p2.Total, readAt)
	}
	// Byte-sum check proves contents, not just counts, survived.
	var want uint32
	for w := 0; w < p2.Total; w += 100 {
		for i := 0; i < 100; i++ {
			want += uint32(byte(w + i))
		}
	}
	if p2.Sum != want {
		t.Fatalf("pipe contents corrupted: sum %d, want %d", p2.Sum, want)
	}
}

// shmSemWorker increments a counter in shared memory under a semaphore,
// ID 1 or 2 alternating via the semaphore token.
type shmSemWorker struct {
	Shm, Sem int
	Init     bool
	Target   uint64
	Done     bool
}

func (w *shmSemWorker) Step(ctx *kernel.ProcContext) kernel.StepResult {
	if !w.Init {
		var err error
		if w.Shm, err = ctx.ShmGet(42, 4096); err != nil {
			return kernel.Exit(0, 1)
		}
		if w.Sem, err = ctx.SemGet(43, 1); err != nil {
			return kernel.Exit(0, 1)
		}
		w.Init = true
		return kernel.Continue(0)
	}
	if err := ctx.SemOp(w.Sem, -1); err == kernel.ErrWouldBlock {
		return kernel.BlockOnSem(0, w.Sem)
	} else if err != nil {
		return kernel.Exit(0, 1)
	}
	var cell [8]byte
	ctx.ShmRead(w.Shm, 0, cell[:])
	v := uint64(cell[0]) | uint64(cell[1])<<8 | uint64(cell[2])<<16 | uint64(cell[3])<<24 |
		uint64(cell[4])<<32 | uint64(cell[5])<<40 | uint64(cell[6])<<48 | uint64(cell[7])<<56
	if v >= w.Target {
		ctx.SemOp(w.Sem, 1)
		w.Done = true
		return kernel.Exit(0, 0)
	}
	v++
	for i := range cell {
		cell[i] = byte(v >> (8 * i))
	}
	ctx.ShmWrite(w.Shm, 0, cell[:])
	ctx.SemOp(w.Sem, 1)
	return kernel.Sleep(10*sim.Microsecond, 100*sim.Microsecond)
}

func TestShmAndSemSurviveRestart(t *testing.T) {
	r := newRig(t, 2)
	pod, _ := zap.New(r.kernels[0], "ipc", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	w1 := &shmSemWorker{Target: 500}
	w2 := &shmSemWorker{Target: 500}
	pod.Spawn("w1", w1)
	pod.Spawn("w2", w2)
	r.run(5 * sim.Millisecond)
	// Track the pod's IPC objects (apps normally do this via the batch
	// layer; tests do it directly).
	pod.TrackShm(w1.Shm)
	pod.TrackSem(w1.Sem)
	r.run(10 * sim.Millisecond)

	img := r.stopAndCapture(pod, 1, Options{})
	pod.Destroy()
	pod2, err := Restore(r.kernels[1], img)
	if err != nil {
		t.Fatal(err)
	}
	pod2.Resume()
	r.run(2 * sim.Second)
	var done []*shmSemWorker
	for _, vpid := range []int{1, 2} {
		if p := pod2.Process(vpid); p != nil {
			done = append(done, p.Program().(*shmSemWorker))
		}
	}
	// Both workers must have finished (exited) and the final counter must
	// be exactly Target — proving the counter continued from its
	// checkpointed value rather than restarting at zero.
	if len(pod2.VPIDs()) != 0 {
		t.Fatalf("workers still alive after 2s: %v", pod2.VPIDs())
	}
	seg := r.kernels[1].Shm(img.Shms[0].ID)
	var cell [8]byte
	seg.Read(0, cell[:])
	v := uint64(cell[0]) | uint64(cell[1])<<8
	if v != 500 {
		t.Fatalf("final shared counter = %d, want 500", v)
	}
	_ = done
}

func TestPendingSignalsPreserved(t *testing.T) {
	r := newRig(t, 1)
	pod, _ := zap.New(r.kernels[0], "s", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	vpid, _ := pod.Spawn("w", &memWorker{HeapSize: mem.PageSize})
	r.run(5 * sim.Millisecond)
	pod.Stop(nil)
	r.run(5 * sim.Millisecond)
	// Queue a user signal on the stopped process, then capture.
	r.kernels[0].Signal(pod.Process(vpid).PID(), kernel.SIGUSR1)
	img, err := Capture(pod, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pod.Destroy()
	pod2, _ := Restore(r.kernels[0], img)
	sigs := pod2.Process(vpid).PendingSignals()
	if len(sigs) != 1 || sigs[0] != kernel.SIGUSR1 {
		t.Fatalf("restored signals = %v", sigs)
	}
}

func TestCaptureRequiresStoppedPod(t *testing.T) {
	r := newRig(t, 1)
	pod, _ := zap.New(r.kernels[0], "x", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	pod.Spawn("w", &memWorker{HeapSize: mem.PageSize})
	r.run(sim.Millisecond)
	if _, err := Capture(pod, 1, Options{}); !errors.Is(err, ErrPodNotStopped) {
		t.Fatalf("capture of running pod = %v", err)
	}
}

func TestIncrementalCheckpointShrinksAndMerges(t *testing.T) {
	r := newRig(t, 1)
	pod, _ := zap.New(r.kernels[0], "inc", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	w := &memWorker{HeapSize: 256 * mem.PageSize}
	pod.Spawn("w", w)
	r.run(50 * sim.Millisecond) // dirties ~50 pages

	full := r.stopAndCapture(pod, 1, Options{})
	pod.Resume()
	r.run(5 * sim.Millisecond) // dirties ~5 more pages

	inc := r.stopAndCapture(pod, 2, Options{Incremental: true})
	if !inc.Incremental || inc.BaseSeq != 1 {
		t.Fatalf("increment metadata: %+v", inc)
	}
	if inc.MemoryBytes() >= full.MemoryBytes() {
		t.Fatalf("increment (%d B) not smaller than full (%d B)", inc.MemoryBytes(), full.MemoryBytes())
	}
	iterAtInc := w.Iter
	pod.Destroy()

	merged, err := Merge(full, inc)
	if err != nil {
		t.Fatal(err)
	}
	pod2, err := Restore(r.kernels[0], merged)
	if err != nil {
		t.Fatal(err)
	}
	w2 := pod2.Process(1).Program().(*memWorker)
	if w2.Iter != iterAtInc {
		t.Fatalf("merged restore Iter = %d, want %d", w2.Iter, iterAtInc)
	}
	// Every stamped page must hold its stamp (catches missing base pages).
	for i := uint64(1); i <= w2.Iter; i++ {
		page := (i % 256) * mem.PageSize
		v, err := pod2.Process(1).Mem().ReadUint64(w2.Heap + page)
		if err != nil {
			t.Fatal(err)
		}
		// The cell holds the latest iteration that stamped this page.
		want := i
		for j := i + 256; j <= w2.Iter; j += 256 {
			want = j
		}
		if page == 0 {
			continue // page 0 also holds the counter cell
		}
		if v != want {
			t.Fatalf("page %d: stamp = %d, want %d", page/mem.PageSize, v, want)
		}
	}
	pod2.Resume()
	r.run(10 * sim.Millisecond)
	if w2.Iter <= iterAtInc {
		t.Fatal("restored-from-merge worker did not continue")
	}
}

func TestMergeRejectsWrongBase(t *testing.T) {
	a := &Image{PodName: "x", Seq: 1}
	inc := &Image{PodName: "x", Seq: 3, BaseSeq: 2, Incremental: true}
	if _, err := Merge(a, inc); err == nil {
		t.Fatal("merge with wrong base accepted")
	}
	if _, err := Merge(nil, inc); err == nil {
		t.Fatal("merge with nil base accepted")
	}
}

func TestRestoreRejectsIncremental(t *testing.T) {
	r := newRig(t, 1)
	img := &Image{PodName: "x", Seq: 2, BaseSeq: 1, Incremental: true}
	if _, err := Restore(r.kernels[0], img); err == nil {
		t.Fatal("restore of raw incremental image accepted")
	}
}

func TestStoreTimingScalesWithImageSize(t *testing.T) {
	r := newRig(t, 1)
	pod, _ := zap.New(r.kernels[0], "big", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	w := &memWorker{HeapSize: 2048 * mem.PageSize}
	pod.Spawn("w", w)
	// Dirty many pages quickly.
	r.run(400 * sim.Millisecond)
	img := r.stopAndCapture(pod, 1, Options{})

	var doneAt sim.Time
	var gotSize int64
	start := r.engine.Now()
	r.store.Save(img, func(size int64, err error) {
		if err != nil {
			t.Errorf("save: %v", err)
		}
		doneAt, gotSize = r.engine.Now(), size
	})
	r.run(10 * sim.Second)
	if gotSize < img.MemoryBytes() {
		t.Fatalf("encoded size %d < memory bytes %d", gotSize, img.MemoryBytes())
	}
	elapsed := doneAt.Sub(start)
	// 110 MB/s + 4 ms latency.
	wantXfer := sim.Duration(gotSize * int64(sim.Second) / (110 << 20))
	want := wantXfer + 4*sim.Millisecond
	if elapsed != want {
		t.Fatalf("save took %v, want %v for %d bytes", elapsed, want, gotSize)
	}

	// Load round trip.
	var loaded *Image
	r.store.LoadLatest("big", func(img *Image, err error) {
		if err != nil {
			t.Errorf("load: %v", err)
		}
		loaded = img
	})
	r.run(10 * sim.Second)
	if loaded == nil || loaded.Seq != 1 || len(loaded.Processes) != 1 {
		t.Fatalf("loaded = %+v", loaded)
	}
}

func TestStoreLoadMergedChain(t *testing.T) {
	r := newRig(t, 1)
	pod, _ := zap.New(r.kernels[0], "chain", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	w := &memWorker{HeapSize: 64 * mem.PageSize}
	pod.Spawn("w", w)
	r.run(20 * sim.Millisecond)

	save := func(img *Image) {
		saved := false
		r.store.Save(img, func(int64, error) { saved = true })
		r.run(10 * sim.Second)
		if !saved {
			t.Fatal("save never completed")
		}
	}
	save(r.stopAndCapture(pod, 1, Options{}))
	pod.Resume()
	r.run(10 * sim.Millisecond)
	save(r.stopAndCapture(pod, 2, Options{Incremental: true}))
	pod.Resume()
	r.run(10 * sim.Millisecond)
	save(r.stopAndCapture(pod, 3, Options{Incremental: true}))
	finalIter := w.Iter
	pod.Destroy()

	var merged *Image
	r.store.LoadLatest("chain", func(img *Image, err error) {
		if err != nil {
			t.Errorf("LoadLatest: %v", err)
		}
		merged = img
	})
	r.run(10 * sim.Second)
	if merged == nil || merged.Incremental {
		t.Fatalf("merged = %+v", merged)
	}
	pod2, err := Restore(r.kernels[0], merged)
	if err != nil {
		t.Fatal(err)
	}
	if got := pod2.Process(1).Program().(*memWorker).Iter; got != finalIter {
		t.Fatalf("chain restore Iter = %d, want %d", got, finalIter)
	}
}

func TestStoreMissingImage(t *testing.T) {
	r := newRig(t, 1)
	called := false
	r.store.Load("ghost", 1, func(img *Image, err error) {
		called = true
		if !errors.Is(err, ErrNoImage) {
			t.Errorf("err = %v", err)
		}
	})
	if !called {
		t.Fatal("missing-image callback not invoked synchronously")
	}
	if _, err := r.store.Size("ghost", 1); !errors.Is(err, ErrNoImage) {
		t.Fatalf("Size err = %v", err)
	}
}
