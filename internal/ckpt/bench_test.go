package ckpt

import (
	"testing"

	"cruz/internal/ether"
	"cruz/internal/kernel"
	"cruz/internal/mem"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/zap"
)

// benchPod builds a stopped pod whose worker has dirtied a sizeable heap,
// ready for repeated captures.
func benchPod(b *testing.B, pages uint64) *zap.Pod {
	b.Helper()
	engine := sim.NewEngine(99)
	sw := ether.NewSwitch(engine)
	mac := ether.MAC{2, 0, 0, 0, 0, 1}
	nic := ether.NewNIC(engine, "eth0", mac)
	sw.Attach(nic, ether.GigabitLink)
	st := tcpip.NewStack(engine, "node")
	if _, err := st.AddInterface("eth0", tcpip.Addr{10, 0, 0, 1}, mac, nic, false); err != nil {
		b.Fatal(err)
	}
	k := kernel.New(engine, "node", kernel.DefaultParams(), st)
	pod, err := zap.New(k, "bench", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	if err != nil {
		b.Fatal(err)
	}
	w := &memWorker{HeapSize: pages * mem.PageSize}
	if _, err := pod.Spawn("w", w); err != nil {
		b.Fatal(err)
	}
	if err := engine.RunFor(sim.Duration(pages) * sim.Millisecond); err != nil {
		b.Fatal(err)
	}
	stopped := false
	pod.Stop(func() { stopped = true })
	if err := engine.RunFor(50 * sim.Millisecond); err != nil {
		b.Fatal(err)
	}
	if !stopped {
		b.Fatal("pod did not quiesce")
	}
	return pod
}

// BenchmarkCapture measures repeated full captures of a warm pod — the
// steady state of periodic checkpointing, where the pooled encode buffers
// and the page-hash cache should keep per-capture allocations flat.
func BenchmarkCapture(b *testing.B) {
	pod := benchPod(b, 512)
	img, err := Capture(pod, 1, Options{Hashes: true})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(img.MemoryBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Capture(pod, i+2, Options{Hashes: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncode measures image serialization, the hot half of every
// store write.
func BenchmarkEncode(b *testing.B) {
	pod := benchPod(b, 512)
	img, err := Capture(pod, 1, Options{Hashes: true})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(img.MemoryBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := img.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}
