package ckpt

import (
	"testing"

	"cruz/internal/mem"
	"cruz/internal/sim"
	"cruz/internal/zap"
)

// adopt drives one offer/missing/transfer/adopt exchange between stores.
func adopt(t *testing.T, r *rig, src, dst *Store, pod string, seq int) *Transfer {
	t.Helper()
	offer, err := src.ExportOffer(pod, seq)
	if err != nil {
		t.Fatalf("ExportOffer: %v", err)
	}
	needSeqs, needHashes := dst.MissingFor(offer)
	tx, err := src.BuildTransfer(pod, seq, needSeqs, needHashes)
	if err != nil {
		t.Fatalf("BuildTransfer: %v", err)
	}
	done := false
	dst.Adopt(tx, func(_ int64, aerr error) {
		if aerr != nil {
			t.Errorf("Adopt: %v", aerr)
		}
		done = true
	})
	r.run(10 * sim.Second)
	if !done {
		t.Fatal("adopt never completed")
	}
	return tx
}

func TestReplicaAdoptBlobChain(t *testing.T) {
	r := newRig(t, 2)
	pod, _ := zap.New(r.kernels[0], "p", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	w := &memWorker{HeapSize: 32 * mem.PageSize}
	pod.Spawn("w", w)
	r.run(50 * sim.Millisecond)

	save := func(seq int, opts Options) {
		img := r.stopAndCapture(pod, seq, opts)
		saved := false
		r.store.Save(img, func(_ int64, err error) {
			if err != nil {
				t.Errorf("Save: %v", err)
			}
			saved = true
		})
		r.run(10 * sim.Second)
		if !saved {
			t.Fatal("save never completed")
		}
		// Resume only after the write lands, so virtual time spent on the
		// disk does not churn the worker's pages between checkpoints.
		pod.Resume()
	}
	save(1, Options{})
	r.run(20 * sim.Millisecond)
	save(2, Options{Incremental: true})

	peer := NewStore(r.kernels[1].Disk())
	if peer.HasSeq("p", 2) {
		t.Fatal("empty peer claims to hold the checkpoint")
	}
	tx := adopt(t, r, r.store, peer, "p", 2)
	if !peer.HasSeq("p", 2) || !peer.HasSeq("p", 1) {
		t.Fatal("peer does not hold the chain after adoption")
	}
	if len(tx.Blobs) != 2 {
		t.Fatalf("first transfer shipped %d blobs, want full chain of 2", len(tx.Blobs))
	}

	// An incremental on top only ships the delta: the peer already holds
	// the base chain.
	r.run(20 * sim.Millisecond)
	save(3, Options{Incremental: true})
	tx2 := adopt(t, r, r.store, peer, "p", 3)
	if len(tx2.Blobs) != 1 {
		t.Fatalf("incremental transfer shipped %d blobs, want 1", len(tx2.Blobs))
	}
	if tx2.TotalBytes >= tx.TotalBytes {
		t.Fatalf("delta transfer (%d B) not smaller than full (%d B)", tx2.TotalBytes, tx.TotalBytes)
	}

	// The replica restores like a local checkpoint.
	var img *Image
	peer.LoadMerged("p", 3, func(i *Image, err error) {
		if err != nil {
			t.Errorf("LoadMerged on replica: %v", err)
		}
		img = i
	})
	r.run(10 * sim.Second)
	if img == nil || img.MemoryBytes() == 0 {
		t.Fatal("replica image empty")
	}
}

func TestReplicaAdoptDedupSendsOnlyMissingChunks(t *testing.T) {
	r := newRig(t, 2)
	pod, _ := zap.New(r.kernels[0], "d", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	w := &memWorker{HeapSize: 64 * mem.PageSize}
	pod.Spawn("w", w)
	r.run(50 * sim.Millisecond)

	// The pod stays stopped across save and adoption: memWorker stamps a
	// page with fresh content every ~1 ms step, so any virtual time it
	// runs (disk writes take real virtual time) churns page hashes and
	// would defeat the steady-state dedup this test measures.
	save := func(seq int) {
		img := r.stopAndCapture(pod, seq, Options{Hashes: true})
		done := false
		r.store.SaveDeduped(img, func(_ *SavePlan, err error) {
			if err != nil {
				t.Errorf("SaveDeduped: %v", err)
			}
			done = true
		})
		r.run(10 * sim.Second)
		if !done {
			t.Fatal("save never completed")
		}
	}
	save(1)
	peer := NewStore(r.kernels[1].Disk())
	tx := adopt(t, r, r.store, peer, "d", 1)
	if len(tx.Chunks) == 0 || len(tx.Manifests) != 1 {
		t.Fatalf("first dedup transfer: %d chunks, %d manifests", len(tx.Chunks), len(tx.Manifests))
	}

	// Steady state: let the worker run briefly so only a few pages
	// change; the second checkpoint's pages then mostly dedup against
	// chunks the replica already holds, so transfer ≈ manifest only.
	pod.Resume()
	r.run(2 * sim.Millisecond)
	save(2)
	tx2 := adopt(t, r, r.store, peer, "d", 2)
	if len(tx2.Chunks) >= len(tx.Chunks)/2 {
		t.Fatalf("steady-state transfer shipped %d chunks vs %d initially — dedup not applied", len(tx2.Chunks), len(tx.Chunks))
	}
	var img *Image
	peer.LoadMerged("d", 2, func(i *Image, err error) {
		if err != nil {
			t.Errorf("LoadMerged on dedup replica: %v", err)
		}
		img = i
	})
	r.run(10 * sim.Second)
	if img == nil {
		t.Fatal("replica dedup image missing")
	}
}
