package ckpt

import (
	"errors"
	"reflect"
	"testing"

	"cruz/internal/kernel"
	"cruz/internal/mem"
	"cruz/internal/sim"
	"cruz/internal/tcpip"
	"cruz/internal/zap"
)

func init() {
	RegisterProgram(&churnWorker{})
}

// churnWorker rewrites one hot page with fresh, never-repeating content
// every step (plus a rotating cold page), so successive checkpoints of it
// strand uniquely-contented stale page versions — exactly what chain
// compaction exists to garbage-collect. (memWorker is unsuitable here:
// its counter page always coincides with some stamped page, so its stale
// versions stay referenced.)
type churnWorker struct {
	Heap     uint64
	HeapSize uint64
	Iter     uint64
}

func (w *churnWorker) Step(ctx *kernel.ProcContext) kernel.StepResult {
	m := ctx.Mem()
	if w.Heap == 0 {
		base, err := m.Alloc(w.HeapSize, "heap")
		if err != nil {
			return kernel.Exit(0, 1)
		}
		w.Heap = base
	}
	w.Iter++
	// Two counter cells make the hot page's content distinct from any
	// single-stamp page.
	if err := m.WriteUint64(w.Heap, w.Iter); err != nil {
		return kernel.Exit(0, 1)
	}
	if err := m.WriteUint64(w.Heap+8, ^w.Iter); err != nil {
		return kernel.Exit(0, 1)
	}
	page := (w.Iter % (w.HeapSize / mem.PageSize)) * mem.PageSize
	if err := m.WriteUint64(w.Heap+page+16, w.Iter); err != nil {
		return kernel.Exit(0, 1)
	}
	return kernel.Sleep(100*sim.Microsecond, sim.Millisecond)
}

// unregisteredProg is deliberately never passed to RegisterProgram, so
// capturing it fails at gob-encode time.
type unregisteredProg struct{ N int }

func (u *unregisteredProg) Step(ctx *kernel.ProcContext) kernel.StepResult {
	u.N++
	return kernel.Sleep(100*sim.Microsecond, sim.Millisecond)
}

func TestFailedCaptureKeepsDirtyTracking(t *testing.T) {
	// Regression: Capture used to clear each process's dirty bits as it
	// went, so a failure on a later process silently corrupted the next
	// incremental checkpoint of the earlier ones. Dirty tracking must be
	// untouched unless the whole pod captures.
	r := newRig(t, 1)
	pod, err := zap.New(r.kernels[0], "mixed", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	if err != nil {
		t.Fatal(err)
	}
	w := &memWorker{HeapSize: 64 * mem.PageSize}
	if _, err := pod.Spawn("w", w); err != nil {
		t.Fatal(err)
	}
	if _, err := pod.Spawn("odd", &unregisteredProg{}); err != nil {
		t.Fatal(err)
	}
	r.run(50 * sim.Millisecond)
	stopped := false
	pod.Stop(func() { stopped = true })
	r.run(50 * sim.Millisecond)
	if !stopped {
		t.Fatal("pod did not quiesce")
	}

	as := pod.Process(1).Mem()
	before := as.DirtyBytes()
	if before == 0 {
		t.Fatal("worker dirtied no pages; test is vacuous")
	}
	if _, err := Capture(pod, 1, Options{}); err == nil {
		t.Fatal("capture of unregistered program type succeeded")
	}
	if got := as.DirtyBytes(); got != before {
		t.Fatalf("failed capture changed dirty tracking: %d B dirty, want %d", got, before)
	}
}

func TestDedupSaveChargesOnlyNewBytes(t *testing.T) {
	r := newRig(t, 1)
	pod, _ := zap.New(r.kernels[0], "dd", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	w := &memWorker{HeapSize: 128 * mem.PageSize}
	pod.Spawn("w", w)
	r.run(50 * sim.Millisecond)

	save := func(img *Image) *SavePlan {
		t.Helper()
		var plan *SavePlan
		r.store.SaveDeduped(img, func(p *SavePlan, err error) {
			if err != nil {
				t.Errorf("SaveDeduped: %v", err)
			}
			plan = p
		})
		r.run(10 * sim.Second)
		if plan == nil {
			t.Fatal("save never completed")
		}
		return plan
	}

	img1 := r.stopAndCapture(pod, 1, Options{Hashes: true})
	plan1 := save(img1)
	// A cold save may still find the odd duplicate (the worker's counter
	// page can coincide with a stamped page), but nearly everything must
	// be new, and every page must be accounted for one way or the other.
	if got := int64(plan1.Stats.NewChunks+plan1.Stats.DupChunks) * mem.PageSize; got != img1.MemoryBytes() {
		t.Fatalf("cold save accounted %d B, image holds %d B", got, img1.MemoryBytes())
	}
	if plan1.Stats.NewChunkBytes < img1.MemoryBytes()*9/10 {
		t.Fatalf("cold save wrote only %d of %d B as new chunks", plan1.Stats.NewChunkBytes, img1.MemoryBytes())
	}

	pod.Resume()
	r.run(5 * sim.Millisecond) // dirties a handful of pages
	img2 := r.stopAndCapture(pod, 2, Options{Hashes: true})
	plan2 := save(img2)
	if plan2.Stats.DupChunks == 0 {
		t.Fatal("warm full save deduplicated nothing")
	}
	if plan2.Stats.NewChunkBytes >= plan1.Stats.NewChunkBytes/4 {
		t.Fatalf("warm save wrote %d new chunk bytes, want far less than cold %d",
			plan2.Stats.NewChunkBytes, plan1.Stats.NewChunkBytes)
	}
	if plan2.TotalBytes >= plan1.TotalBytes/2 {
		t.Fatalf("warm save writes %d B to disk, cold wrote %d", plan2.TotalBytes, plan1.TotalBytes)
	}

	st := r.store.Stats()
	if st.NewChunks != int64(plan1.Stats.NewChunks+plan2.Stats.NewChunks) ||
		st.DupChunks != int64(plan1.Stats.DupChunks+plan2.Stats.DupChunks) {
		t.Fatalf("store stats %+v do not add up to the plans", st)
	}
	// Loading the deduplicated checkpoint reproduces the capture exactly.
	var loaded *Image
	r.store.Load("dd", 2, func(img *Image, err error) {
		if err != nil {
			t.Errorf("Load: %v", err)
		}
		loaded = img
	})
	r.run(10 * sim.Second)
	if loaded == nil {
		t.Fatal("load never completed")
	}
	if !reflect.DeepEqual(normalizeImage(t, img2), normalizeImage(t, loaded)) {
		t.Fatal("deduplicated round trip differs from the captured image")
	}
}

func TestCompactFoldsChainAndFreesChunks(t *testing.T) {
	r := newRig(t, 1)
	pod, _ := zap.New(r.kernels[0], "gc", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	w := &churnWorker{HeapSize: 64 * mem.PageSize}
	pod.Spawn("w", w)
	r.run(30 * sim.Millisecond)

	save := func(img *Image) {
		t.Helper()
		done := false
		r.store.SaveDeduped(img, func(_ *SavePlan, err error) {
			if err != nil {
				t.Errorf("SaveDeduped: %v", err)
			}
			done = true
		})
		r.run(10 * sim.Second)
		if !done {
			t.Fatal("save never completed")
		}
	}
	save(r.stopAndCapture(pod, 1, Options{Hashes: true}))
	for seq := 2; seq <= 4; seq++ {
		pod.Resume()
		r.run(5 * sim.Millisecond)
		save(r.stopAndCapture(pod, seq, Options{Hashes: true, Incremental: true}))
	}
	finalIter := w.Iter
	pod.Destroy()

	loadMerged := func() *Image {
		t.Helper()
		var img *Image
		r.store.LoadMerged("gc", 4, func(i *Image, err error) {
			if err != nil {
				t.Errorf("LoadMerged: %v", err)
			}
			img = i
		})
		r.run(10 * sim.Second)
		if img == nil {
			t.Fatal("load never completed")
		}
		return img
	}
	before := loadMerged()
	chunksBefore := r.store.ChunkCount()

	compacted := false
	r.store.Compact("gc", func(n int64, err error) {
		if err != nil {
			t.Errorf("Compact: %v", err)
		}
		if n <= 0 {
			t.Errorf("Compact wrote %d bytes, want a manifest", n)
		}
		compacted = true
	})
	r.run(10 * sim.Second)
	if !compacted {
		t.Fatal("compact never completed")
	}
	st := r.store.Stats()
	if st.Compactions != 1 {
		t.Fatalf("Compactions = %d", st.Compactions)
	}
	// Each incremental rewrote the counter page; folding the chain must
	// drop the superseded versions from the chunk table.
	if st.FreedChunks == 0 || r.store.ChunkCount() >= chunksBefore {
		t.Fatalf("compact freed %d chunks (store %d -> %d), want stale page versions gone",
			st.FreedChunks, chunksBefore, r.store.ChunkCount())
	}
	if seq, ok := r.store.LatestSeq("gc"); !ok || seq != 4 {
		t.Fatalf("latest after compact = %d, %v", seq, ok)
	}

	after := loadMerged()
	if !reflect.DeepEqual(normalizeImage(t, before), normalizeImage(t, after)) {
		t.Fatal("compaction changed the restored image")
	}
	// Compacting an already-folded store is a no-op, not an error.
	r.store.Compact("gc", func(n int64, err error) {
		if err != nil || n != 0 {
			t.Errorf("second compact = (%d, %v), want no-op", n, err)
		}
	})

	pod2, err := Restore(r.kernels[0], after)
	if err != nil {
		t.Fatal(err)
	}
	if got := pod2.Process(1).Program().(*churnWorker).Iter; got != finalIter {
		t.Fatalf("restored Iter = %d, want %d", got, finalIter)
	}
	pod2.Resume()
	r.run(10 * sim.Millisecond)
	if pod2.Process(1).Program().(*churnWorker).Iter <= finalIter {
		t.Fatal("restored-from-compacted worker did not continue")
	}
}

// normalizeImage strips fields that legitimately differ between storage
// routes (capture-time hash accounting) and passes the image through a
// gob round trip so nil/empty representation differences wash out.
func normalizeImage(t *testing.T, img *Image) *Image {
	t.Helper()
	c := *img
	c.FreshHashes = 0
	blob, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeImage(blob)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRestorePathsEquivalent(t *testing.T) {
	// Property: the same checkpoint chain restored six ways — in-memory
	// image merge, blob store, deduplicated manifests, deduplicated
	// manifests after Compact, a pre-copy chain of live COW rounds
	// topped by a stopped residual, and a 4+2 erasure-coded set decoded
	// with two shard positions lost — yields byte-identical memory and
	// identical TCP state. Exercised against a pod with a live
	// mid-stream TCP connection plus a memory-churning worker.
	r := newRig(t, 3)
	pod, _ := zap.New(r.kernels[0], "eq", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	server := &podServer{Port: 7}
	pod.Spawn("echod", server)
	w := &memWorker{HeapSize: 64 * mem.PageSize}
	pod.Spawn("w", w)
	r.run(20 * sim.Millisecond)

	clientStack := r.kernels[1].Stack()
	conn, err := clientStack.DialTCP(tcpip.AddrPort{}, tcpip.AddrPort{Addr: podIP(0), Port: 7})
	if err != nil {
		t.Fatal(err)
	}
	r.run(20 * sim.Millisecond)
	if conn.State() != tcpip.StateEstablished {
		t.Fatalf("client not established: %v", conn.State())
	}
	payload := make([]byte, 20000)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	sent, recvd := 0, 0
	got := make([]byte, 0, len(payload))
	buf := make([]byte, 8192)
	pump := func(budget int) {
		for steps := 0; steps < budget; steps++ {
			if sent < len(payload) {
				if n, err := conn.Send(payload[sent:]); err == nil {
					sent += n
				}
			}
			if n, err := conn.Recv(buf, false); err == nil {
				got = append(got, buf[:n]...)
				recvd += n
			}
			r.run(2 * sim.Millisecond)
			if recvd >= len(payload) {
				return
			}
		}
	}

	pump(8)
	imgs := []*Image{r.stopAndCapture(pod, 1, Options{Hashes: true})}
	for seq := 2; seq <= 3; seq++ {
		pod.Resume()
		pump(5)
		imgs = append(imgs, r.stopAndCapture(pod, seq, Options{Hashes: true, Incremental: true}))
	}

	saveDeduped := func(s *Store, img *Image) {
		t.Helper()
		done := false
		s.SaveDeduped(img, func(_ *SavePlan, err error) {
			if err != nil {
				t.Errorf("SaveDeduped: %v", err)
			}
			done = true
		})
		r.run(10 * sim.Second)
		if !done {
			t.Fatal("dedup save never completed")
		}
	}

	// Route E: pre-copy. Unlike routes A-D this chain is built while the
	// pod RUNS — three live COW rounds captured concurrently with the
	// echo stream and the heap churn, topped by a residual captured
	// stopped. Its ground truth is a direct full capture taken at the
	// residual stop: byte equality proves no post-snapshot write leaked
	// into any round and no dirtied page was lost between rounds.
	pre := NewStore(r.kernels[0].Disk())
	pod.Resume()
	baseSeq := 0
	for round := 0; round < 3; round++ {
		pump(3) // live TCP traffic + heap writes before the snapshot
		lc, err := CaptureLive(pod, 4+round, Options{Incremental: round > 0, Hashes: true, BaseSeq: baseSeq})
		if err != nil {
			t.Fatal(err)
		}
		// Writes landing after the snapshot instant take COW breaks and
		// must stay out of this round's image (they reappear dirty in
		// the next round or the residual).
		pump(2)
		saveDeduped(pre, lc.Image)
		lc.Release()
		baseSeq = 4 + round
	}
	resid := r.stopAndCapture(pod, 7, Options{Incremental: true, Hashes: true, BaseSeq: baseSeq})
	preTruth, err := Capture(pod, 7, Options{Hashes: true}) // same stopped instant
	if err != nil {
		t.Fatal(err)
	}
	saveDeduped(pre, resid)
	pod.Destroy()

	// Route A: plain in-memory merge of the chain — the ground truth.
	want := imgs[0]
	for _, inc := range imgs[1:] {
		if want, err = Merge(want, inc); err != nil {
			t.Fatal(err)
		}
	}

	// Routes B/C/D/E store the chain and read it back merged.
	load := func(s *Store, seq int) *Image {
		t.Helper()
		var img *Image
		s.LoadMerged("eq", seq, func(i *Image, err error) {
			if err != nil {
				t.Errorf("LoadMerged: %v", err)
			}
			img = i
		})
		r.run(10 * sim.Second)
		if img == nil {
			t.Fatal("load never completed")
		}
		return img
	}
	routes := map[string]*Image{}

	blobStore := NewStore(r.kernels[0].Disk())
	for _, img := range imgs {
		done := false
		blobStore.Save(img, func(int64, error) { done = true })
		r.run(10 * sim.Second)
		if !done {
			t.Fatal("blob save never completed")
		}
	}
	routes["blob"] = load(blobStore, 3)

	for name, compact := range map[string]bool{"dedup": false, "dedup+compact": true} {
		s := NewStore(r.kernels[0].Disk())
		for _, img := range imgs {
			saveDeduped(s, img)
		}
		if compact {
			s.Compact("eq", nil)
			r.run(10 * sim.Second)
		}
		routes[name] = load(s, 3)
	}

	// Route F: erasure coding with losses. The chain is striped 4+2 on a
	// source store; the destination receives the chain manifests and
	// only four of the six rotated shard positions (holders 1 and 3
	// dead — the R-loss worst case), so every stripe whose surviving
	// positions miss a data shard must be decoded before restore.
	{
		src := NewStore(r.kernels[0].Disk())
		for _, img := range imgs {
			saveDeduped(src, img)
		}
		p := ECParams{M: 4, R: 2}
		done := false
		src.SaveEC("eq", 3, p, func(_ *ECPlan, err error) {
			if err != nil {
				t.Errorf("SaveEC: %v", err)
			}
			done = true
		})
		r.run(10 * sim.Second)
		if !done {
			t.Fatal("EC save never completed")
		}
		set, ok := src.ECSetFor("eq", 3)
		if !ok {
			t.Fatal("EC set not registered")
		}
		manifests := make(map[int][]byte)
		for _, cs := range set.Chain {
			blob, merr := src.manifests["eq"][cs].Encode()
			if merr != nil {
				t.Fatal(merr)
			}
			manifests[cs] = blob
		}
		var blocks []ChunkData
		seen := make(map[mem.PageHash]bool)
		for _, holder := range []int{0, 2, 4, 5} { // holders 1 and 3 lost
			for _, h := range set.HolderHashes(holder) {
				if seen[h] {
					continue
				}
				seen[h] = true
				blocks = append(blocks, ChunkData{Hash: h, Data: src.chunks[h].data})
			}
		}
		dst := NewStore(r.kernels[2].Disk())
		rec, rerr := dst.ReconstructEC(set, manifests, blocks)
		if rerr != nil {
			t.Fatalf("ReconstructEC: %v", rerr)
		}
		if rec.DecodedChunks == 0 {
			t.Fatal("reconstruction decoded nothing — the loss pattern exercised no parity")
		}
		routes["ec"] = load(dst, 3)
	}

	wantNorm := normalizeImage(t, want)
	for name, img := range routes {
		norm := normalizeImage(t, img)
		for i := range wantNorm.Processes {
			wp, gp := &wantNorm.Processes[i], &norm.Processes[i]
			if !reflect.DeepEqual(wp.Memory, gp.Memory) {
				t.Fatalf("route %s: vpid %d memory differs from in-memory merge", name, wp.VPID)
			}
			if !reflect.DeepEqual(wp.FDs, gp.FDs) {
				t.Fatalf("route %s: vpid %d descriptor/TCP state differs", name, wp.VPID)
			}
		}
		if !reflect.DeepEqual(wantNorm, norm) {
			t.Fatalf("route %s: restored image differs from in-memory merge", name)
		}
	}

	// Route E compares against its own ground truth (the pod ran on past
	// the seq-3 state while its rounds streamed).
	preMerged := load(pre, 7)
	preNorm, truthNorm := normalizeImage(t, preMerged), normalizeImage(t, preTruth)
	for i := range truthNorm.Processes {
		wp, gp := &truthNorm.Processes[i], &preNorm.Processes[i]
		if !reflect.DeepEqual(wp.Memory, gp.Memory) {
			t.Fatalf("precopy route: vpid %d memory differs from stopped capture", wp.VPID)
		}
		if !reflect.DeepEqual(wp.FDs, gp.FDs) {
			t.Fatalf("precopy route: vpid %d descriptor/TCP state differs", wp.VPID)
		}
	}
	if !reflect.DeepEqual(truthNorm, preNorm) {
		t.Fatal("precopy route: merged chain differs from stopped capture")
	}

	// And the pre-copy chain really restores: finish the echo stream
	// through the revived pod on a third node. (The client advanced past
	// the seq-3 state during the rounds, so the pre-copy image is the
	// only one consistent with its TCP peer.)
	pod2, err := Restore(r.kernels[2], preMerged)
	if err != nil {
		t.Fatal(err)
	}
	pod2.Resume()
	pump(3000)
	if recvd != len(payload) {
		t.Fatalf("client received %d of %d echoed bytes across restore", recvd, len(payload))
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("echoed byte %d corrupted across restore", i)
		}
	}
	if conn.Err() != nil {
		t.Fatalf("client connection saw error: %v", conn.Err())
	}
}

func TestDedupStoreMissingChain(t *testing.T) {
	r := newRig(t, 1)
	pod, _ := zap.New(r.kernels[0], "orphan", zap.NetConfig{IP: podIP(0), MAC: podMAC(0)})
	pod.Spawn("w", &memWorker{HeapSize: 4 * mem.PageSize})
	r.run(10 * sim.Millisecond)
	img := r.stopAndCapture(pod, 2, Options{Hashes: true, Incremental: true})
	img.BaseSeq = 1 // base was never saved
	done := false
	r.store.SaveDeduped(img, func(_ *SavePlan, err error) {
		if err != nil {
			t.Errorf("SaveDeduped: %v", err)
		}
		done = true
	})
	r.run(10 * sim.Second)
	if !done {
		t.Fatal("save never completed")
	}
	r.store.LoadMerged("orphan", 2, func(img *Image, err error) {
		if !errors.Is(err, ErrNoImage) {
			t.Errorf("LoadMerged with missing base = %v", err)
		}
	})
	// An image captured without hashes cannot enter the dedup store.
	plain, err := Capture(pod, 3, Options{}) // pod is still stopped
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.store.PlanDedupSave(plain); err == nil {
		t.Fatal("PlanDedupSave accepted an image without page hashes")
	}
}
