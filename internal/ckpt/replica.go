package ckpt

import (
	"fmt"
	"sort"

	"cruz/internal/mem"
	"cruz/internal/trace"
)

// Replication support: a store can describe one of its checkpoints as an
// Offer, a peer store answers with what it is missing, and the resulting
// Transfer carries only those bytes — the manifest(s) plus chunks the
// replica has never seen, mirroring PlanDedupSave's accounting — so
// steady-state replication of a deduplicated checkpoint chain costs
// little more than the manifest.

// Offer describes one stored checkpoint (and its incremental chain) for
// replication, without any bulk data.
type Offer struct {
	Pod   string
	Seq   int
	// Chain lists the sequence numbers a restore of Seq needs,
	// newest-first (length 1 for a full checkpoint).
	Chain []int
	// Dedup marks the manifest/chunk form; Hashes then lists every
	// distinct page hash the chain references, in deterministic order.
	Dedup  bool
	Hashes []mem.PageHash
}

// ChunkData pairs a page hash with its bytes on the wire.
type ChunkData struct {
	Hash mem.PageHash
	Data []byte
}

// Transfer is the delta a replica asked for: encoded images (blob form)
// or encoded manifests plus missing chunks (dedup form).
type Transfer struct {
	Pod       string
	Seq       int
	Blobs     map[int][]byte
	Manifests map[int][]byte
	Chunks    []ChunkData
	// TotalBytes is what the replica's disk will write on adoption.
	TotalBytes int64
	// Ctx is the trace context of the replication exchange this transfer
	// belongs to; Adopt parents its disk-write span under it. The store is
	// wire-agnostic — the core layer sets this from the carrying message.
	Ctx trace.SpanContext
}

// HasSeq reports whether the store holds a usable checkpoint at seq —
// the image (or manifest) plus, for incrementals, its whole base chain.
func (s *Store) HasSeq(pod string, seq int) bool {
	if _, ok := s.manifests[pod][seq]; ok {
		_, err := s.manifestChain(pod, seq)
		return err == nil
	}
	meta, ok := s.images[pod][seq]
	for ok {
		if !meta.Incremental {
			return true
		}
		meta, ok = s.images[pod][meta.BaseSeq]
	}
	return false
}

// ExportOffer describes the checkpoint at (pod, seq) for replication.
func (s *Store) ExportOffer(pod string, seq int) (*Offer, error) {
	o := &Offer{Pod: pod, Seq: seq}
	if _, ok := s.manifests[pod][seq]; ok {
		chain, err := s.manifestChain(pod, seq)
		if err != nil {
			return nil, err
		}
		o.Chain = chain
		o.Dedup = true
		seen := make(map[mem.PageHash]bool)
		for _, cs := range chain {
			m := s.manifests[pod][cs]
			for i := range m.Procs {
				for _, ref := range m.Procs[i].Pages {
					if !seen[ref.Hash] {
						seen[ref.Hash] = true
						o.Hashes = append(o.Hashes, ref.Hash)
					}
				}
			}
		}
		return o, nil
	}
	metas := s.images[pod]
	cur := seq
	for {
		meta, ok := metas[cur]
		if !ok {
			return nil, fmt.Errorf("%w: %s/%d (chain from %d)", ErrNoImage, pod, cur, seq)
		}
		o.Chain = append(o.Chain, cur)
		if !meta.Incremental {
			return o, nil
		}
		cur = meta.BaseSeq
	}
}

// MissingFor answers an offer with the chain sequences and chunk hashes
// this store lacks — the delta the sender must ship.
func (s *Store) MissingFor(o *Offer) (needSeqs []int, needHashes []mem.PageHash) {
	for _, cs := range o.Chain {
		if o.Dedup {
			if _, ok := s.manifests[o.Pod][cs]; ok {
				continue
			}
		} else if _, ok := s.blobs[o.Pod][cs]; ok {
			continue
		}
		needSeqs = append(needSeqs, cs)
	}
	for _, h := range o.Hashes {
		if _, ok := s.chunks[h]; !ok {
			needHashes = append(needHashes, h)
		}
	}
	return needSeqs, needHashes
}

// BuildTransfer assembles the delta a replica asked for.
func (s *Store) BuildTransfer(pod string, seq int, needSeqs []int, needHashes []mem.PageHash) (*Transfer, error) {
	t := &Transfer{Pod: pod, Seq: seq}
	for _, cs := range needSeqs {
		if m, ok := s.manifests[pod][cs]; ok {
			mblob, err := m.Encode()
			if err != nil {
				return nil, err
			}
			if t.Manifests == nil {
				t.Manifests = make(map[int][]byte)
			}
			t.Manifests[cs] = mblob
			t.TotalBytes += int64(len(mblob))
			continue
		}
		blob, ok := s.blobs[pod][cs]
		if !ok {
			return nil, fmt.Errorf("%w: %s/%d", ErrNoImage, pod, cs)
		}
		if t.Blobs == nil {
			t.Blobs = make(map[int][]byte)
		}
		t.Blobs[cs] = blob
		t.TotalBytes += int64(len(blob))
	}
	for _, h := range needHashes {
		e, ok := s.chunks[h]
		if !ok {
			return nil, fmt.Errorf("ckpt: transfer missing chunk %v", h)
		}
		t.Chunks = append(t.Chunks, ChunkData{Hash: h, Data: e.data})
		t.TotalBytes += int64(len(e.data))
	}
	return t, nil
}

// Adopt installs a received transfer into this store — the replica's
// half of replication — charging the bytes to the local disk. done fires
// with the bytes written once the write lands.
func (s *Store) Adopt(t *Transfer, done func(int64, error)) {
	// Chunks first so adopted manifests can take references.
	for _, cd := range t.Chunks {
		if _, ok := s.chunks[cd.Hash]; !ok {
			s.chunks[cd.Hash] = &chunkEntry{data: cd.Data}
			s.stats.NewChunks++
			s.stats.NewChunkBytes += int64(len(cd.Data))
		}
	}
	for _, seq := range sortedSeqs(t.Blobs) {
		blob := t.Blobs[seq]
		img, err := DecodeImage(blob)
		if err != nil {
			done(0, err)
			return
		}
		if s.blobs[t.Pod] == nil {
			s.blobs[t.Pod] = make(map[int][]byte)
			s.images[t.Pod] = make(map[int]*Image)
		}
		s.blobs[t.Pod][seq] = blob
		s.images[t.Pod][seq] = img
		if seq > s.latest[t.Pod] {
			s.latest[t.Pod] = seq
		}
	}
	for _, seq := range sortedSeqs(t.Manifests) {
		mblob := t.Manifests[seq]
		m, err := DecodeManifest(mblob)
		if err != nil {
			done(0, err)
			return
		}
		for i := range m.Procs {
			for _, ref := range m.Procs[i].Pages {
				e, ok := s.chunks[ref.Hash]
				if !ok {
					done(0, fmt.Errorf("ckpt: adopt %s/%d: missing chunk %v", t.Pod, seq, ref.Hash))
					return
				}
				e.refs++
				s.stats.DupChunks++
			}
		}
		if s.manifests[t.Pod] == nil {
			s.manifests[t.Pod] = make(map[int]*Manifest)
			s.manifestBytes[t.Pod] = make(map[int]int64)
		}
		s.manifests[t.Pod][seq] = m
		s.manifestBytes[t.Pod][seq] = int64(len(mblob))
		if seq > s.latest[t.Pod] {
			s.latest[t.Pod] = seq
		}
	}
	if t.TotalBytes <= 0 {
		done(0, nil)
		return
	}
	var sp trace.Span
	if tr := trace.FromEngine(s.disk.Engine()); tr.Enabled() {
		sp = tr.BeginChild(t.Ctx, s.disk.Name(), "ckpt", "store.adopt",
			trace.Str("pod", t.Pod), trace.Int("seq", int64(t.Seq)),
			trace.Int("bytes", t.TotalBytes))
	}
	s.disk.Write(t.TotalBytes, func() {
		sp.End()
		done(t.TotalBytes, nil)
	})
}

func sortedSeqs(m map[int][]byte) []int {
	seqs := make([]int, 0, len(m))
	for seq := range m {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs
}
