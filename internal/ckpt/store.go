package ckpt

import (
	"errors"
	"fmt"

	"cruz/internal/kernel"
	"cruz/internal/mem"
	"cruz/internal/trace"
)

// ErrNoImage is returned when a requested checkpoint does not exist.
var ErrNoImage = errors.New("ckpt: no such image")

// Store is checkpoint stable storage: a network-accessible file system
// holding encoded images (the paper relies on such a file system being
// reachable from any machine the application may restart on, and notes
// checkpoint latency "is dominated by the time to write this state to
// disk"). All Save/Load timing flows through the store's disk; the
// network path to it is assumed faster than the disk and not modeled
// separately.
type Store struct {
	disk   *kernel.Disk
	blobs  map[string]map[int][]byte
	images map[string]map[int]*Image // decoded metadata (Seq/BaseSeq chain)
	latest map[string]int

	// Content-addressed half: manifests (metadata + page-hash lists) and
	// the refcounted chunk table they reference. A pod's checkpoints use
	// either the blob form (Save) or the manifest form (SaveDeduped);
	// Load/LoadMerged resolve whichever form a sequence was stored in.
	manifests     map[string]map[int]*Manifest
	manifestBytes map[string]map[int]int64
	chunks        map[mem.PageHash]*chunkEntry
	autoCompact   int
	stats         StoreStats

	// Erasure-coded half: shard manifests registered by PlanECSave (the
	// primary's view), shard sets held for other nodes' checkpoints, and
	// raw chain-manifest blobs a holder keeps without resolving. EC sets
	// hold chunk references at stripe granularity, so a chunk stays
	// resident while any stripe parity covering it is live.
	ecsets      map[string]map[int]*ECSet
	ecHeld      map[string]map[int]*ECHeld
	ecManifests map[string]map[int][]byte
}

type chunkEntry struct {
	data []byte
	refs int
}

// NewStore creates a store backed by the given disk.
func NewStore(disk *kernel.Disk) *Store {
	return &Store{
		disk:          disk,
		blobs:         make(map[string]map[int][]byte),
		images:        make(map[string]map[int]*Image),
		latest:        make(map[string]int),
		manifests:     make(map[string]map[int]*Manifest),
		manifestBytes: make(map[string]map[int]int64),
		chunks:        make(map[mem.PageHash]*chunkEntry),
		ecsets:        make(map[string]map[int]*ECSet),
		ecHeld:        make(map[string]map[int]*ECHeld),
		ecManifests:   make(map[string]map[int][]byte),
	}
}

// Disk exposes the backing disk (agents drive pipelined writes through
// it directly).
func (s *Store) Disk() *kernel.Disk { return s.disk }

// Save encodes the image and writes it through the disk, invoking done
// with the encoded size when the write completes. Encoding errors are
// reported synchronously through done as well.
func (s *Store) Save(img *Image, done func(size int64, err error)) {
	blob, err := img.Encode()
	if err != nil {
		done(0, err)
		return
	}
	if s.blobs[img.PodName] == nil {
		s.blobs[img.PodName] = make(map[int][]byte)
		s.images[img.PodName] = make(map[int]*Image)
	}
	s.blobs[img.PodName][img.Seq] = blob
	s.images[img.PodName][img.Seq] = img
	if img.Seq > s.latest[img.PodName] {
		s.latest[img.PodName] = img.Seq
	}
	size := int64(len(blob))
	var sp trace.Span
	if tr := trace.FromEngine(s.disk.Engine()); tr.Enabled() {
		sp = tr.Begin(s.disk.Name(), "ckpt", "store.save",
			trace.Str("pod", img.PodName), trace.Int("seq", int64(img.Seq)),
			trace.Int("bytes", size))
	}
	s.disk.Write(size, func() {
		sp.End()
		done(size, nil)
	})
}

// PlanSave encodes and registers the image without writing it, returning
// a plan whose TotalBytes the caller still owes the disk. Agents use it
// to drive the write themselves, in pipelined segments; Save remains the
// one-call encode-and-write form.
func (s *Store) PlanSave(img *Image) (*SavePlan, error) {
	blob, err := img.Encode()
	if err != nil {
		return nil, err
	}
	if s.blobs[img.PodName] == nil {
		s.blobs[img.PodName] = make(map[int][]byte)
		s.images[img.PodName] = make(map[int]*Image)
	}
	s.blobs[img.PodName][img.Seq] = blob
	s.images[img.PodName][img.Seq] = img
	if img.Seq > s.latest[img.PodName] {
		s.latest[img.PodName] = img.Seq
	}
	return &SavePlan{Pod: img.PodName, Seq: img.Seq, TotalBytes: int64(len(blob))}, nil
}

// Discard removes stored checkpoints that were registered but never
// committed — the pre-copy rounds of an aborted epoch. Manifest-form
// entries release their chunk references (chunks nothing else references
// are freed); blob-form entries are simply dropped. Discarding a
// sequence that was never stored is a no-op, so an abort handler can
// pass every sequence it planned without tracking which rounds landed.
func (s *Store) Discard(pod string, seqs ...int) {
	for _, seq := range seqs {
		delete(s.blobs[pod], seq)
		delete(s.images[pod], seq)
		if m, ok := s.manifests[pod][seq]; ok {
			for i := range m.Procs {
				for _, ref := range m.Procs[i].Pages {
					if e := s.chunks[ref.Hash]; e != nil {
						e.refs--
						if e.refs == 0 {
							delete(s.chunks, ref.Hash)
							s.stats.FreedChunks++
							s.stats.FreedBytes += mem.PageSize
						}
					}
				}
			}
			delete(s.manifests[pod], seq)
			delete(s.manifestBytes[pod], seq)
		}
		s.dropECSet(pod, seq)
	}
	// Recompute the pod's latest sequence (max is order-insensitive).
	maxSeq, found := 0, false
	for seq := range s.images[pod] {
		if !found || seq > maxSeq {
			maxSeq, found = seq, true
		}
	}
	for seq := range s.manifests[pod] {
		if !found || seq > maxSeq {
			maxSeq, found = seq, true
		}
	}
	if found {
		s.latest[pod] = maxSeq
	} else {
		delete(s.latest, pod)
	}
}

// Cached returns the in-memory decoded form of a blob-form image, with
// no disk traffic modeled. A migration's restore-on-arrival merge uses
// it: the adopted bytes passed through this daemon's memory moments ago,
// so folding them into the held image costs CPU, not a read-back of what
// was just written. Deduplicated (manifest-form) images keep no single
// decoded representation and report false.
func (s *Store) Cached(pod string, seq int) (*Image, bool) {
	img, ok := s.images[pod][seq]
	return img, ok
}

// LatestSeq returns the highest stored sequence number for a pod.
func (s *Store) LatestSeq(pod string) (int, bool) {
	seq, ok := s.latest[pod]
	return seq, ok
}

// Size returns the encoded size of one stored image. For a deduplicated
// checkpoint this is the logical size (manifest plus every referenced
// page), not the unique bytes it cost to store.
func (s *Store) Size(pod string, seq int) (int64, error) {
	if blob, ok := s.blobs[pod][seq]; ok {
		return int64(len(blob)), nil
	}
	if m, ok := s.manifests[pod][seq]; ok {
		return s.manifestBytes[pod][seq] + m.pageRefBytes(), nil
	}
	return 0, fmt.Errorf("%w: %s/%d", ErrNoImage, pod, seq)
}

// Load reads and decodes one image through the disk, invoking done when
// the read completes. Incremental images are returned as-is; use
// LoadMerged to resolve a chain.
func (s *Store) Load(pod string, seq int, done func(*Image, error)) {
	s.LoadCtx(pod, seq, trace.SpanContext{}, done)
}

// LoadCtx is Load with a trace context: the store.load span becomes a
// child of the given operation (a migration's restore-on-arrival merge)
// so the disk read shows up on that op's critical path.
func (s *Store) LoadCtx(pod string, seq int, ctx trace.SpanContext, done func(*Image, error)) {
	blob, ok := s.blobs[pod][seq]
	if !ok {
		if _, mok := s.manifests[pod][seq]; mok {
			s.loadManifest(pod, seq, false, ctx, done)
			return
		}
		done(nil, fmt.Errorf("%w: %s/%d", ErrNoImage, pod, seq))
		return
	}
	var sp trace.Span
	if tr := trace.FromEngine(s.disk.Engine()); tr.Enabled() {
		sp = tr.BeginChild(ctx, s.disk.Name(), "ckpt", "store.load",
			trace.Str("pod", pod), trace.Int("seq", int64(seq)),
			trace.Int("bytes", int64(len(blob))))
	}
	s.disk.Read(int64(len(blob)), func() {
		sp.End()
		img, err := DecodeImage(blob)
		done(img, err)
	})
}

// LoadMerged reads the image at seq and, if it is incremental, every
// image back to its full base, merging them into one self-contained
// image. The disk read time covers the whole chain.
func (s *Store) LoadMerged(pod string, seq int, done func(*Image, error)) {
	s.LoadMergedCtx(pod, seq, trace.SpanContext{}, done)
}

// LoadMergedCtx is LoadMerged with a trace context: the store.load span
// becomes a child of the given operation (restart, recovery fetch) so the
// disk read shows up on that op's critical path.
func (s *Store) LoadMergedCtx(pod string, seq int, ctx trace.SpanContext, done func(*Image, error)) {
	if _, ok := s.manifests[pod][seq]; ok {
		s.loadManifest(pod, seq, true, ctx, done)
		return
	}
	metas := s.images[pod]
	if metas == nil {
		done(nil, fmt.Errorf("%w: %s/%d", ErrNoImage, pod, seq))
		return
	}
	// Walk the chain from seq down to the full base.
	var chain []int
	var total int64
	cur := seq
	for {
		meta, ok := metas[cur]
		if !ok {
			done(nil, fmt.Errorf("%w: %s/%d (chain from %d)", ErrNoImage, pod, cur, seq))
			return
		}
		chain = append(chain, cur)
		total += int64(len(s.blobs[pod][cur]))
		if !meta.Incremental {
			break
		}
		cur = meta.BaseSeq
	}
	var sp trace.Span
	if tr := trace.FromEngine(s.disk.Engine()); tr.Enabled() {
		sp = tr.BeginChild(ctx, s.disk.Name(), "ckpt", "store.load",
			trace.Str("pod", pod), trace.Int("seq", int64(seq)),
			trace.Int("bytes", total), trace.Int("chain", int64(len(chain))))
	}
	s.disk.Read(total, func() {
		sp.End()
		// Decode base-first, merging upward.
		merged, err := DecodeImage(s.blobs[pod][chain[len(chain)-1]])
		if err != nil {
			done(nil, err)
			return
		}
		for i := len(chain) - 2; i >= 0; i-- {
			inc, derr := DecodeImage(s.blobs[pod][chain[i]])
			if derr != nil {
				done(nil, derr)
				return
			}
			merged, derr = Merge(merged, inc)
			if derr != nil {
				done(nil, derr)
				return
			}
		}
		done(merged, nil)
	})
}

// LoadLatest resolves the newest image (merging any incremental chain).
func (s *Store) LoadLatest(pod string, done func(*Image, error)) {
	s.LoadLatestCtx(pod, trace.SpanContext{}, done)
}

// LoadLatestCtx is LoadLatest with a trace context for the load span.
func (s *Store) LoadLatestCtx(pod string, ctx trace.SpanContext, done func(*Image, error)) {
	seq, ok := s.LatestSeq(pod)
	if !ok {
		done(nil, fmt.Errorf("%w: %s", ErrNoImage, pod))
		return
	}
	s.LoadMergedCtx(pod, seq, ctx, done)
}
