package exp

import (
	"fmt"
	"math"
	"strings"

	"cruz"
	"cruz/internal/trace"
	"cruz/internal/trace/critpath"
)

// CritPathResult is one traced kill-and-recover run reassembled into
// causal span trees, with the critical-path decomposition of both the
// replicated checkpoint that preceded the failure and the automatic
// recovery that followed it.
type CritPathResult struct {
	// Checkpoint and Recovery are the latency decompositions of the two
	// distributed operations; the matching trees hold the full cross-node
	// span structure.
	Checkpoint     *critpath.Report
	Recovery       *critpath.Report
	CheckpointTree *critpath.Tree
	RecoveryTree   *critpath.Tree
	// MTTRMs is the recovery result's own MTTR — the number the
	// recovery report's phase sum is validated against (within 1%).
	MTTRMs float64
	// Dump is the flight-recorder snapshot taken at lease expiry: the
	// event window that led up to the failure declaration.
	Dump *trace.FlightDump
	// Dropped counts trace-ring overwrites (0 in a healthy run).
	Dropped uint64
}

// CritPath runs the traced kill-and-recover experiment: a replicated
// checkpoint on a 4-node ring with a spare, a node failure, and the
// automatic recovery — all under full tracing — then reassembles the
// causal span trees and extracts the critical path of each operation.
// The result is self-checked: both trees must span the coordinator and
// at least two agent nodes, the recovery decomposition must sum to the
// reported MTTR within 1%, and the lease-expiry flight dump must exist.
func CritPath(scale float64) (*CritPathResult, error) {
	const n = 4
	cl, err := recoveryCluster(n, scale, RecoveryConfig{Replicas: 1, Spares: 1}, true)
	if err != nil {
		return nil, err
	}
	cl.FailNode(1)
	if !cl.AwaitRecovery(1, 60*cruz.Second) {
		return nil, fmt.Errorf("exp: critpath recovery never completed")
	}
	if err := cl.RecoveryErr(); err != nil {
		return nil, fmt.Errorf("exp: critpath recovery: %w", err)
	}
	res := cl.Recoveries()[0]

	dropped, err := traceHealth(cl)
	if err != nil {
		return nil, err
	}
	if dropped > 0 {
		return nil, fmt.Errorf("exp: critpath trace ring overflowed (%d events dropped); raise TraceCapacity", dropped)
	}
	trees := critpath.BuildTrees(cl.Trace().Events())
	out := &CritPathResult{
		CheckpointTree: critpath.FindRoot(trees, "checkpoint"),
		RecoveryTree:   critpath.FindRoot(trees, "recovery"),
		MTTRMs:         res.MTTR.Milliseconds(),
		Dropped:        dropped,
	}
	if out.CheckpointTree == nil || out.RecoveryTree == nil {
		return nil, fmt.Errorf("exp: critpath trees missing (checkpoint=%v recovery=%v)",
			out.CheckpointTree != nil, out.RecoveryTree != nil)
	}
	for _, tr := range []*critpath.Tree{out.CheckpointTree, out.RecoveryTree} {
		if len(tr.Nodes) < 3 {
			return nil, fmt.Errorf("exp: critpath op %d spans only %v — not a distributed tree", tr.Op, tr.Nodes)
		}
		if len(tr.Orphans) > 0 {
			return nil, fmt.Errorf("exp: critpath op %d has %d orphan spans", tr.Op, len(tr.Orphans))
		}
	}
	out.Checkpoint = critpath.Analyze(out.CheckpointTree)
	out.Recovery = critpath.Analyze(out.RecoveryTree)
	if out.Checkpoint == nil || out.Recovery == nil {
		return nil, fmt.Errorf("exp: critpath analysis failed (open root span)")
	}
	var phaseSum float64
	for _, s := range out.Recovery.Phases {
		phaseSum += s.Ms
	}
	if diff := math.Abs(phaseSum - out.MTTRMs); diff > 0.01*out.MTTRMs {
		return nil, fmt.Errorf("exp: critpath recovery phases sum %.3f ms vs MTTR %.3f ms (diff %.3f > 1%%)",
			phaseSum, out.MTTRMs, diff)
	}
	for _, d := range cl.FlightRecorder().FlightDumps() {
		if d.Trigger == "lease.expiry" {
			out.Dump = d
			break
		}
	}
	if out.Dump == nil {
		return nil, fmt.Errorf("exp: critpath run produced no lease-expiry flight dump")
	}
	return out, nil
}

// pathKey reduces a critical-path segment to a stable aggregation key:
// the last dot component of the span name ("agent.checkpoint" ->
// "checkpoint"), with self-time segments folded under "self".
func pathKey(s critpath.Segment) string {
	if s.Kind == critpath.SegSelf {
		return "self"
	}
	name := s.Name
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	return name
}
