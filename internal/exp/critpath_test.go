package exp

import (
	"strings"
	"testing"
)

func TestCritPathShape(t *testing.T) {
	cp, err := CritPath(0.05)
	if err != nil {
		t.Fatal(err)
	}
	// CritPath self-checks the cross-node tree shape, the 1% MTTR
	// agreement, and the lease-expiry dump; here assert what the report
	// contains on top of the experiment's own gates.
	if cp.Recovery.LeadMs < 350 {
		t.Fatalf("recovery lead (detect) = %.3f ms, want >= lease timeout", cp.Recovery.LeadMs)
	}
	var names []string
	for _, s := range cp.Recovery.Phases {
		names = append(names, pathKey(s))
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"detect", "place", "transfer", "restart"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("recovery phases %v missing %s", names, want)
		}
	}
	// The checkpoint tree fans out in parallel, so its path must sum to
	// its total even though phases overlap.
	var pathSum float64
	for _, s := range cp.Checkpoint.Path {
		pathSum += s.Ms
	}
	if diff := pathSum - cp.Checkpoint.TotalMs; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("checkpoint path sum %.6f != total %.6f", pathSum, cp.Checkpoint.TotalMs)
	}
	// The lease-expiry dump must actually hold the pre-failure window.
	if len(cp.Dump.Events) == 0 {
		t.Fatal("lease-expiry flight dump is empty")
	}
	if cp.Dump.Reason != "node node1" {
		t.Fatalf("dump reason = %q, want the failed node", cp.Dump.Reason)
	}
	// Byte-identical re-run: same seed, same trees, same tables.
	cp2, err := CritPath(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := cp.RecoveryTree.Format(), cp2.RecoveryTree.Format(); a != b {
		t.Fatalf("recovery tree not deterministic:\n%s\n---\n%s", a, b)
	}
	if a, b := cp.Recovery.Format(), cp2.Recovery.Format(); a != b {
		t.Fatal("recovery report not deterministic")
	}
	if a, b := cp.Dump.Format(), cp2.Dump.Format(); a != b {
		t.Fatal("flight dump not deterministic")
	}
}
