package exp

import (
	"fmt"

	"cruz"
	"cruz/internal/apps/slm"
)

// RecoveryConfig is one automatic-recovery configuration to measure:
// how many replicas each checkpoint keeps and how many standby nodes
// are available as restart targets.
type RecoveryConfig struct {
	Replicas int
	Spares   int
}

// RecoveryRow reports one configuration's kill-and-recover run with the
// MTTR split into the phases §3's failure-handling design implies:
// lease-based detection, placement, image transfer (zero when the new
// home already replicates the image), and coordinated restart.
type RecoveryRow struct {
	Nodes    int
	Replicas int
	Spares   int

	DetectMs   float64
	PlaceMs    float64
	TransferMs float64
	RestartMs  float64
	MTTRMs     float64
	// TransferMB is what the recovery fetches actually moved.
	TransferMB float64
	// Target is the node the failed pod was re-homed to.
	Target string
}

// recoveryCluster deploys the slm ring on an auto-recovering cluster and
// takes one checkpoint, waiting until every pod-hosting agent has
// finished streaming its replicas so a node kill cannot outrun them.
// With traced set, the full tracing subsystem is on (sized so a
// kill-and-recover run cannot overflow the ring).
func recoveryCluster(n int, scale float64, cfg RecoveryConfig, traced bool) (*cruz.Cluster, error) {
	cl, err := cruz.New(cruz.Config{
		Nodes: n, Seed: int64(n)*101 + 7,
		Replicas: cfg.Replicas, AutoRecover: true, Spares: cfg.Spares,
		Trace: traced, TraceCapacity: 1 << 17,
	})
	if err != nil {
		return nil, err
	}
	wcfg := slmConfig(n, scale)
	var names []string
	var ips []cruz.Addr
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("slm-%d", i)
		pod, perr := cl.NewPod(i, name)
		if perr != nil {
			return nil, perr
		}
		names = append(names, name)
		ips = append(ips, pod.IP())
	}
	var workers []*slm.Worker
	for i, name := range names {
		w := slm.NewWorker(wcfg, i, ips[(i+1)%n])
		if _, err := cl.Pod(name).Spawn("slm", w); err != nil {
			return nil, err
		}
		workers = append(workers, w)
	}
	job, err := cl.DefineJob("slm", names...)
	if err != nil {
		return nil, err
	}
	ok := cl.RunUntil(func() bool {
		for _, w := range workers {
			if w.StepsDone < 2 {
				return false
			}
		}
		return true
	}, 10*60*cruz.Second)
	if !ok {
		return nil, fmt.Errorf("exp: recovery slm ring never started (n=%d)", n)
	}
	res, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		return nil, err
	}
	// Gate on the coordinator's holder registry, not the agents' counters:
	// an agent counts a replication in the event that enqueues its
	// <replicated> report, one network flight before the coordinator can
	// use the copy for placement — a node kill must not outrun that.
	ok = cl.RunUntil(func() bool {
		for _, name := range names {
			if cl.Coordinator.KnownHolders(name, res.Seq) < cfg.Replicas+1 {
				return false
			}
		}
		return true
	}, 60*cruz.Second)
	if !ok {
		return nil, fmt.Errorf("exp: recovery replication never completed (n=%d k=%d)", n, cfg.Replicas)
	}
	return cl, nil
}

// Recovery measures automatic failure recovery (§3): for each
// configuration it checkpoints the n-node slm ring with k replicas,
// kills a node mid-run, and reports the MTTR phase breakdown of the
// automatic restart. The shape claims: detection is bounded by the
// lease timeout regardless of configuration, and a replica-holding
// target makes the transfer phase free.
func Recovery(n int, scale float64, cfgs []RecoveryConfig) ([]RecoveryRow, error) {
	var rows []RecoveryRow
	for _, cfg := range cfgs {
		cl, err := recoveryCluster(n, scale, cfg, false)
		if err != nil {
			return nil, err
		}
		cl.FailNode(1)
		if !cl.AwaitRecovery(1, 60*cruz.Second) {
			return nil, fmt.Errorf("exp: recovery never completed (n=%d k=%d s=%d)", n, cfg.Replicas, cfg.Spares)
		}
		if err := cl.RecoveryErr(); err != nil {
			return nil, fmt.Errorf("exp: recovery n=%d k=%d s=%d: %w", n, cfg.Replicas, cfg.Spares, err)
		}
		res := cl.Recoveries()[0]
		// Prove the job actually resumed before reporting numbers.
		before := make([]int, n)
		resolve := func(i int) *slm.Worker {
			return cl.Pod(fmt.Sprintf("slm-%d", i)).Process(1).Program().(*slm.Worker)
		}
		for i := 0; i < n; i++ {
			before[i] = resolve(i).StepsDone
		}
		progressed := cl.RunUntil(func() bool {
			for i := 0; i < n; i++ {
				if resolve(i).StepsDone <= before[i] {
					return false
				}
			}
			return true
		}, 60*cruz.Second)
		if !progressed {
			return nil, fmt.Errorf("exp: ring stuck after recovery (n=%d k=%d s=%d)", n, cfg.Replicas, cfg.Spares)
		}
		live := make([]*slm.Worker, n)
		for i := 0; i < n; i++ {
			live[i] = resolve(i)
		}
		if err := checkWorkers(live); err != nil {
			return nil, err
		}
		target := ""
		if len(res.Pods) > 0 {
			target = res.Pods[0].To
		}
		rows = append(rows, RecoveryRow{
			Nodes:      n,
			Replicas:   cfg.Replicas,
			Spares:     cfg.Spares,
			DetectMs:   res.Detect.Milliseconds(),
			PlaceMs:    res.Place.Milliseconds(),
			TransferMs: res.Transfer.Milliseconds(),
			RestartMs:  res.Restart.Milliseconds(),
			MTTRMs:     res.MTTR.Milliseconds(),
			TransferMB: float64(res.TransferBytes) / (1 << 20),
			Target:     target,
		})
	}
	return rows, nil
}
