package exp

import (
	"testing"

	"cruz"
)

// The experiment tests run at reduced scale (0.05 = 5 MB pod images) and
// assert the paper's *shape* claims; absolute paper-scale numbers are
// produced by cmd/cruzbench and the root benchmarks.

func TestFig5ShapeSmallScale(t *testing.T) {
	rows, err := Fig5([]int{2, 4}, 2, 500*cruz.Millisecond, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LatencyMeanMs <= 0 || r.OverheadMeanUs <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		// Overhead is negligible vs latency (the paper's headline).
		if r.OverheadMeanUs/1000 > r.LatencyMeanMs/10 {
			t.Fatalf("overhead not negligible: %+v", r)
		}
	}
	// Fig 5(a): latency is roughly flat in node count (parallel local
	// saves dominate); allow 30% growth.
	if rows[1].LatencyMeanMs > rows[0].LatencyMeanMs*1.3 {
		t.Fatalf("latency not flat: %v -> %v", rows[0].LatencyMeanMs, rows[1].LatencyMeanMs)
	}
	// Fig 5(b): overhead grows with node count.
	if rows[1].OverheadMeanUs <= rows[0].OverheadMeanUs {
		t.Fatalf("overhead not increasing: %v -> %v", rows[0].OverheadMeanUs, rows[1].OverheadMeanUs)
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadyMbps < 700 {
		t.Fatalf("steady rate %.0f Mb/s too low", res.SteadyMbps)
	}
	if res.ZeroMs <= 0 {
		t.Fatal("no zero-rate interval observed")
	}
	if res.RecoveryMs <= res.CheckpointMs {
		t.Fatalf("recovery (%.1fms) before checkpoint completion (%.1fms)?", res.RecoveryMs, res.CheckpointMs)
	}
	// TCP backoff delays recovery beyond checkpoint completion by on the
	// order of the 200 ms RTO floor — the paper's ~100 ms corresponds to
	// its kernel's effective timer; ours must be in the same regime
	// (tens to hundreds of ms, not seconds).
	if gap := res.RecoveryMs - res.CheckpointMs; gap > 1000 {
		t.Fatalf("TCP recovery gap %.0f ms too large", gap)
	}
	if len(res.Series.Points) < 100 {
		t.Fatalf("series too sparse: %d points", len(res.Series.Points))
	}
}

func TestRuntimeOverheadBelowHalfPercent(t *testing.T) {
	res, err := RuntimeOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if res.OverheadPct < 0 {
		t.Fatalf("pod run faster than native? %+v", res)
	}
	if res.OverheadPct >= 0.5 {
		t.Fatalf("virtualization overhead %.3f%% exceeds the paper's 0.5%% bound", res.OverheadPct)
	}
}

func TestMessageComplexityShape(t *testing.T) {
	rows, err := MessageComplexity([]int{2, 4}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CruzMsgs != 4*r.Nodes {
			t.Fatalf("cruz msgs = %d at n=%d, want %d", r.CruzMsgs, r.Nodes, 4*r.Nodes)
		}
		if r.FlushMarkerMsgs != r.Nodes*(r.Nodes-1) {
			t.Fatalf("markers = %d at n=%d, want %d", r.FlushMarkerMsgs, r.Nodes, r.Nodes*(r.Nodes-1))
		}
	}
	// O(N) vs O(N²): doubling nodes doubles Cruz messages but grows
	// markers 6x (2->12 for 2->4 nodes).
	if rows[1].CruzMsgs != 2*rows[0].CruzMsgs {
		t.Fatalf("cruz growth not linear: %d -> %d", rows[0].CruzMsgs, rows[1].CruzMsgs)
	}
	if rows[1].FlushMarkerMsgs != 6*rows[0].FlushMarkerMsgs {
		t.Fatalf("marker growth not quadratic: %d -> %d", rows[0].FlushMarkerMsgs, rows[1].FlushMarkerMsgs)
	}
}

func TestFig4CompareShape(t *testing.T) {
	rows, err := Fig4Compare([]int{3}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig4Variant{}
	for _, v := range rows[0].Variants {
		byName[v.Name] = v
	}
	blocking, fig4, cow := byName["blocking"], byName["fig4-optimized"], byName["copy-on-write"]
	// Under blocking, the fast pods wait for the straggler: their freeze
	// tracks the slowest save. Under Fig. 4 they resume at their own
	// save, so the fast-pod freeze must drop substantially.
	if fig4.MinBlockedMs >= blocking.MinBlockedMs*0.85 {
		t.Fatalf("fig4 fast-pod freeze %.1f not below blocking %.1f",
			fig4.MinBlockedMs, blocking.MinBlockedMs)
	}
	// The straggler itself cannot resume before its own save finishes.
	if fig4.MaxBlockedMs < fig4.MinBlockedMs {
		t.Fatalf("inconsistent freezes: %+v", fig4)
	}
	// COW slashes every pod's freeze.
	if cow.MaxBlockedMs*5 > blocking.MinBlockedMs {
		t.Fatalf("COW freeze %.1f not far below blocking %.1f", cow.MaxBlockedMs, blocking.MinBlockedMs)
	}
}

func TestRestartLatencyShape(t *testing.T) {
	rows, err := RestartLatency([]int{2}, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.LatencyMeanMs <= 0 || r.LocalMeanMs <= 0 {
		t.Fatalf("degenerate %+v", r)
	}
	// Like checkpoint, restart is dominated by local work (image read +
	// restore), not coordination.
	if r.OverheadMeanUs/1000 > r.LatencyMeanMs/10 {
		t.Fatalf("restart overhead not negligible: %+v", r)
	}
}

func TestIncrementalAblationShape(t *testing.T) {
	rows, err := IncrementalAblation(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Kind != "full" || rows[1].Kind != "incremental" {
		t.Fatalf("rows %+v", rows)
	}
	if rows[1].ImageMB >= rows[0].ImageMB {
		t.Fatalf("incremental image %.2f MB not smaller than full %.2f MB", rows[1].ImageMB, rows[0].ImageMB)
	}
	if rows[1].LatencyMs >= rows[0].LatencyMs {
		t.Fatalf("incremental latency %.2f not below full %.2f", rows[1].LatencyMs, rows[0].LatencyMs)
	}
}

func TestRecoveryShape(t *testing.T) {
	rows, err := Recovery(3, 0.05, []RecoveryConfig{
		{Replicas: 1, Spares: 0},
		{Replicas: 1, Spares: 1},
		{Replicas: 2, Spares: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DetectMs <= 0 || r.PlaceMs <= 0 || r.RestartMs <= 0 || r.MTTRMs <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		// Detection is lease-bound regardless of replication or spare
		// configuration: no earlier than the 350 ms lease timeout, no
		// later than one extra 100 ms heartbeat period.
		if r.DetectMs < 350 || r.DetectMs > 460 {
			t.Fatalf("detection not lease-bound: %+v", r)
		}
	}
	// No spare: a replica-holding survivor doubles up, so the transfer
	// phase is free.
	if rows[0].TransferMs != 0 || rows[0].TransferMB != 0 {
		t.Fatalf("survivor recovery moved bytes: %+v", rows[0])
	}
	// A spare takes the pod when present, but with only one replica (on
	// the ring survivor) it has to fetch the image first.
	if rows[1].Target == rows[0].Target {
		t.Fatalf("spare not preferred: both recoveries targeted %s", rows[0].Target)
	}
	if rows[1].TransferMs <= 0 || rows[1].TransferMB <= 0 {
		t.Fatalf("spare recovery with k=1 should pay a transfer: %+v", rows[1])
	}
	// With a second replica the spare already holds the image: same
	// target, transfer free again — strictly lower MTTR.
	if rows[2].Target != rows[1].Target {
		t.Fatalf("k=2 target %s differs from k=1 spare target %s", rows[2].Target, rows[1].Target)
	}
	if rows[2].TransferMs != 0 || rows[2].TransferMB != 0 {
		t.Fatalf("k=2 spare recovery moved bytes: %+v", rows[2])
	}
	if rows[2].MTTRMs >= rows[1].MTTRMs {
		t.Fatalf("extra replica did not cut MTTR: %.1f vs %.1f", rows[2].MTTRMs, rows[1].MTTRMs)
	}
}

func TestPrecopyAblationShape(t *testing.T) {
	rows, err := PrecopyAblation(2, 2, 0.05, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PrecopyRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	stop, pre := byName["stop-and-copy"], byName["precopy"]
	if stop.DowntimeMs <= 0 || pre.DowntimeMs <= 0 {
		t.Fatalf("degenerate rows: %+v", rows)
	}
	// The acceptance claim: pre-copy rounds shrink the freeze window at
	// least 5x versus stop-and-copy (O(image) -> O(residual dirty set)).
	if pre.DowntimeMs*5 > stop.DowntimeMs {
		t.Fatalf("precopy downtime %.1f ms not 5x below stop-and-copy %.1f ms",
			pre.DowntimeMs, stop.DowntimeMs)
	}
	// The commit latency still covers the full image volume: pre-copy
	// moves the copy off the freeze window, it does not make it free.
	if pre.LatencyMs*3 < stop.LatencyMs {
		t.Fatalf("precopy latency %.1f ms suspiciously below stop-and-copy %.1f ms",
			pre.LatencyMs, stop.LatencyMs)
	}
	// Only the residual is written while frozen.
	if pre.FrozenMB >= stop.FrozenMB/5 {
		t.Fatalf("precopy frozen copy %.2f MB not well below full %.2f MB",
			pre.FrozenMB, stop.FrozenMB)
	}
}

// TestExperimentsDeterministic re-runs an experiment end to end and
// demands bit-identical results — the property that makes EXPERIMENTS.md
// reproducible.
func TestExperimentsDeterministic(t *testing.T) {
	a, err := Fig5([]int{3}, 1, 200*cruz.Millisecond, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig5([]int{3}, 1, 200*cruz.Millisecond, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", a[0], b[0])
	}
}
