package exp

import (
	"fmt"

	"cruz"
	"cruz/internal/apps/slm"
	"cruz/internal/metrics"
)

// MigrateRow is one variant of the live-migration ablation (A10): the
// same pod bounced between a loaded node and a spare, live (pre-copy
// rounds + address takeover) versus stop-and-copy.
type MigrateRow struct {
	Variant    string
	Migrations int
	// DowntimeMs is the application-visible gap per migration: source
	// freeze to the pod running (resumed, ARP announced) on the
	// destination. The paper-level claim: O(image size) for
	// stop-and-copy collapsing to O(residual dirty set) live.
	DowntimeMs float64
	// LatencyMs is the whole operation, first message to commit; the
	// live variant pays more here (rounds stream while the pod runs).
	LatencyMs float64
	// Rounds is the mean pre-copy round count before the freeze.
	Rounds float64
	// StreamedMB is what the delta transfers moved per migration,
	// rounds plus residual.
	StreamedMB float64
}

// migrateVariants are the two transfer strategies the ablation compares.
var migrateVariants = []struct {
	name string
	live bool
}{
	{"live-precopy", true},
	{"stop-and-copy", false},
}

// migrateCluster deploys an n-worker slm ring on nodes 0..n-1 of an
// (n+1)-node cluster; node n is the idle migration target.
func migrateCluster(n int, scale float64) (*cruz.Cluster, *cruz.Job, []*slm.Worker, error) {
	cfg := slmConfig(n, scale)
	cl, err := cruz.New(cruz.Config{Nodes: n + 1, Seed: int64(n)*131 + 3})
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	var ips []cruz.Addr
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("slm-%d", i)
		pod, perr := cl.NewPod(i, name)
		if perr != nil {
			return nil, nil, nil, perr
		}
		names = append(names, name)
		ips = append(ips, pod.IP())
	}
	var workers []*slm.Worker
	for i, name := range names {
		w := slm.NewWorker(cfg, i, ips[(i+1)%n])
		if _, err := cl.Pod(name).Spawn("slm", w); err != nil {
			return nil, nil, nil, err
		}
		workers = append(workers, w)
	}
	job, err := cl.DefineJob("slm", names...)
	if err != nil {
		return nil, nil, nil, err
	}
	ok := cl.RunUntil(func() bool {
		for _, w := range workers {
			if w.StepsDone < 2 {
				return false
			}
		}
		return true
	}, 10*60*cruz.Second)
	if !ok {
		return nil, nil, nil, fmt.Errorf("exp: migrate ring never started (n=%d)", n)
	}
	return cl, job, workers, nil
}

// migrateOpts builds the pre-copy configuration for one live migration.
// slm dirties in bursts (the whole write set at each step boundary), so
// a sub-step threshold makes the rounds run until one lands inside a
// step's compute window and catches a near-empty dirty set — the
// residual then carries fixed takeover costs, not image volume.
func migrateOpts(live bool, dirtyPerStep int) cruz.MigrateOptions {
	if !live {
		return cruz.MigrateOptions{}
	}
	threshold := dirtyPerStep / 2
	if threshold < 16 {
		threshold = 16
	}
	return cruz.MigrateOptions{Precopy: cruz.PrecopyConfig{
		MaxRounds:           10,
		DirtyThresholdPages: threshold,
	}}
}

// migrateSeries bounces pod slm-1 of a fresh n-worker ring between its
// home node and the spare, migs hops, and returns the per-hop summaries.
func migrateSeries(n, migs int, scale float64, live bool) (down, lat, rounds, streamed metrics.Summary, err error) {
	cl, job, workers, cerr := migrateCluster(n, scale)
	if cerr != nil {
		err = cerr
		return
	}
	dirty := slmConfig(n, scale).DirtyPagesPerStep
	for k := 0; k < migs; k++ {
		target := n // the spare
		if k%2 == 1 {
			target = 1 // back home
		}
		res, merr := cl.Migrate(job, "slm-1", target, migrateOpts(live, dirty))
		if merr != nil {
			err = fmt.Errorf("exp: migrate live=%v hop %d: %w", live, k, merr)
			return
		}
		down.AddDuration(res.Downtime)
		lat.AddDuration(res.Latency)
		rounds.Add(float64(res.Rounds))
		streamed.Add(float64(res.BytesStreamed))
		cl.Run(300 * cruz.Millisecond)
	}
	if werr := checkWorkers(workers); werr != nil {
		err = fmt.Errorf("exp: migrate live=%v: %w", live, werr)
	}
	return
}

// MigrateAblation measures live pod migration against the stop-and-copy
// baseline (A10): an n-worker slm ring plus one spare node, pod slm-1
// bounced spare-and-back migs times per variant. Live migration streams
// pre-copy rounds through the replication delta protocol while the pod
// runs and freezes only for the residual dirty set; stop-and-copy
// freezes for the whole image.
func MigrateAblation(n, migs int, scale float64) ([]MigrateRow, error) {
	var rows []MigrateRow
	for _, v := range migrateVariants {
		down, lat, rounds, streamed, err := migrateSeries(n, migs, scale, v.live)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MigrateRow{
			Variant:    v.name,
			Migrations: migs,
			DowntimeMs: down.Mean(),
			LatencyMs:  lat.Mean(),
			Rounds:     rounds.Mean(),
			StreamedMB: streamed.Mean() / (1 << 20),
		})
	}
	return rows, nil
}

// migrateBench adds the live-migration distributions to the benchmark
// report: migrate_n4/downtime_ms against migrate_n4/stopcopy_downtime_ms
// is the headline pair.
func migrateBench(rep *BenchReport, migs int, scale float64) error {
	const n = 4
	// Each migration moves the whole image volume; three per variant
	// bound the report's runtime while still giving a distribution.
	if migs > 3 {
		migs = 3
	}
	down, lat, rounds, streamed, err := migrateSeries(n, migs, scale, true)
	if err != nil {
		return err
	}
	prefix := fmt.Sprintf("migrate_n%d", n)
	rep.Experiments[prefix+"/downtime_ms"] = down.Dist()
	rep.Experiments[prefix+"/latency_ms"] = lat.Dist()
	rep.Experiments[prefix+"/rounds"] = rounds.Dist()
	rep.Experiments[prefix+"/bytes_streamed"] = streamed.Dist()
	sdown, slat, _, _, err := migrateSeries(n, migs, scale, false)
	if err != nil {
		return err
	}
	rep.Experiments[prefix+"/stopcopy_downtime_ms"] = sdown.Dist()
	rep.Experiments[prefix+"/stopcopy_latency_ms"] = slat.Dist()
	return nil
}
