package exp

import (
	"fmt"

	"cruz"
	"cruz/internal/metrics"
)

// PrecopyRow is one (write-rate, variant) cell of the pre-copy ablation.
type PrecopyRow struct {
	Variant string
	// DirtyPagesPerStep is the workload's write rate: grid pages each
	// slm step rewrites. Pre-copy's convergence — and hence its win —
	// depends on it.
	DirtyPagesPerStep int
	// DowntimeMs is the slowest pod's freeze window (SIGSTOP quiesce to
	// resume), averaged over the checkpoints — the metric pre-copy
	// attacks: O(image size) for stop-and-copy, O(residual dirty set)
	// with rounds.
	DowntimeMs float64
	// LatencyMs is the coordinator's commit latency (unlike downtime, it
	// still covers the full image volume).
	LatencyMs float64
	// FrozenMB is the image volume written while pods were stopped: the
	// whole image for stop-and-copy/pipelined, only the residual under
	// pre-copy (rounds stream while the pod runs).
	FrozenMB float64
}

// precopyVariants are the checkpoint strategies the ablation compares.
var precopyVariants = []struct {
	name string
	opts cruz.CheckpointOptions
}{
	{"stop-and-copy", cruz.CheckpointOptions{}},
	{"pipelined", cruz.CheckpointOptions{Pipeline: true}},
	{"precopy", cruz.CheckpointOptions{
		Precopy: cruz.PrecopyConfig{MaxRounds: 3, DirtyThresholdPages: 16, MinRoundGain: 0.2},
	}},
}

// PrecopyAblation measures checkpoint downtime versus application write
// rate for the three save strategies (A7): classic stop-and-copy, the
// pipelined save path, and pre-copy rounds with copy-on-write capture.
// Each (variant, write-rate) cell runs on a fresh n-node slm cluster
// whose DirtyPagesPerStep is scaled by the corresponding multiplier,
// taking ckpts checkpoints 500 ms apart.
func PrecopyAblation(n, ckpts int, scale float64, writeMults []float64) ([]PrecopyRow, error) {
	var rows []PrecopyRow
	for _, wm := range writeMults {
		for _, v := range precopyVariants {
			cfg := slmConfig(n, scale)
			cfg.DirtyPagesPerStep = int(float64(cfg.DirtyPagesPerStep) * wm)
			if cfg.DirtyPagesPerStep < 1 {
				cfg.DirtyPagesPerStep = 1
			}
			cl, job, workers, err := slmClusterCfg(n, cfg, false, false, nil, 0)
			if err != nil {
				return nil, err
			}
			var down, lat, mb metrics.Summary
			for k := 0; k < ckpts; k++ {
				res, cerr := cl.Checkpoint(job, v.opts)
				if cerr != nil {
					return nil, fmt.Errorf("exp: precopy %s x%.1f ckpt %d: %w", v.name, wm, k, cerr)
				}
				down.AddDuration(res.MaxBlocked)
				lat.AddDuration(res.Latency)
				mb.Add(float64(res.TotalImageBytes) / (1 << 20))
				cl.Run(500 * cruz.Millisecond)
			}
			if err := checkWorkers(workers); err != nil {
				return nil, fmt.Errorf("exp: precopy %s x%.1f: %w", v.name, wm, err)
			}
			rows = append(rows, PrecopyRow{
				Variant:           v.name,
				DirtyPagesPerStep: cfg.DirtyPagesPerStep,
				DowntimeMs:        down.Mean(),
				LatencyMs:         lat.Mean(),
				FrozenMB:          mb.Mean(),
			})
		}
	}
	return rows, nil
}
