package exp

import (
	"fmt"
	"time"

	"cruz"
	"cruz/internal/apps/slm"
	"cruz/internal/coord"
	"cruz/internal/metrics"
	"cruz/internal/sim"
)

// ScalingRow is one cell of the A9 scaling ablation: a coordinated
// checkpoint of an n-pod job under flat or hierarchical (two-level
// tree) coordination, with the engine's wall-clock throughput while it
// ran.
type ScalingRow struct {
	Nodes int
	// GroupSize is the tree's group size (0 = flat fan-out).
	GroupSize int
	// Messages is the root coordinator's control-message count for the
	// checkpoint: sends plus receives on its connections to the job.
	// Flat grows O(N); the tree grows O(N/size) = O(√N).
	Messages int
	// LatencyMs is the coordinated commit latency at the root.
	LatencyMs float64
	// Engine throughput while the cell ran (deploy, warm-up,
	// checkpoint): simulation events fired per wall-clock second.
	EventsPerSec float64
	// WallMs is the cell's total wall-clock time.
	WallMs float64
}

// Tree reports whether the row used hierarchical coordination.
func (r ScalingRow) Tree() bool { return r.GroupSize > 1 }

// wideSlmConfig is the reduced workload for wide clusters: small grids
// keep n=256 image writes cheap while every pod still computes,
// exchanges halos, and saves real state. scale multiplies the grid as
// elsewhere, with a floor so images stay non-trivial.
func wideSlmConfig(workers int, scale float64) slm.Config {
	grid := uint64(float64(64<<10) * scale)
	if grid < 16<<10 {
		grid = 16 << 10
	}
	return slm.Config{
		Workers:             workers,
		Steps:               0,
		TotalComputePerStep: 2 * sim.Millisecond,
		StepOverhead:        200 * sim.Microsecond,
		HaloBytes:           1 << 10,
		GridBytes:           grid,
		DirtyPagesPerStep:   4,
		Port:                9300,
	}
}

// wideCluster deploys one light slm worker pod per node and warms the
// ring up. groupSize 0 keeps the flat fan-out.
func wideCluster(n, groupSize int, scale float64) (*cruz.Cluster, *cruz.Job, []*slm.Worker, error) {
	cl, err := cruz.New(cruz.Config{Nodes: n, Seed: int64(n)*131 + 3, GroupSize: groupSize})
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := wideSlmConfig(n, scale)
	names := make([]string, n)
	ips := make([]cruz.Addr, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("w%03d", i)
		pod, perr := cl.NewPod(i, names[i])
		if perr != nil {
			return nil, nil, nil, perr
		}
		ips[i] = pod.IP()
	}
	workers := make([]*slm.Worker, n)
	for i, name := range names {
		w := slm.NewWorker(cfg, i, ips[(i+1)%n])
		if _, err := cl.Pod(name).Spawn("slm", w); err != nil {
			return nil, nil, nil, err
		}
		workers[i] = w
	}
	job, err := cl.DefineJob("ring", names...)
	if err != nil {
		return nil, nil, nil, err
	}
	ok := cl.RunUntil(func() bool {
		for _, w := range workers {
			if w.StepsDone < 2 {
				return false
			}
		}
		return true
	}, 10*60*cruz.Second)
	if !ok {
		return nil, nil, nil, fmt.Errorf("exp: wide ring never started (n=%d)", n)
	}
	return cl, job, workers, nil
}

// scalingCell runs one (n, groupSize) configuration: deploy, warm up,
// checkpoint once, and report the root's message count, commit latency,
// and the engine's events-per-wall-second over the whole cell.
func scalingCell(n, groupSize int, scale float64) (ScalingRow, error) {
	//cruzvet:allow nodeterminism events-per-wall-second is deliberately a host-clock metric; it never feeds back into the simulation
	wallStart := time.Now()
	cl, job, workers, err := wideCluster(n, groupSize, scale)
	if err != nil {
		return ScalingRow{}, err
	}
	res, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		return ScalingRow{}, fmt.Errorf("exp: scaling n=%d size=%d: %w", n, groupSize, err)
	}
	if err := checkWorkers(workers); err != nil {
		return ScalingRow{}, err
	}
	//cruzvet:allow nodeterminism wall-clock half of the engine-throughput metric; sim-visible results never depend on it
	wall := time.Since(wallStart)
	fired := cl.Engine.Fired()
	row := ScalingRow{
		Nodes:     n,
		GroupSize: groupSize,
		Messages:  res.Messages,
		LatencyMs: res.Latency.Milliseconds(),
		WallMs:    float64(wall.Nanoseconds()) / 1e6,
	}
	if secs := wall.Seconds(); secs > 0 {
		row.EventsPerSec = float64(fired) / secs
	}
	return row, nil
}

// Scaling runs the A9 scaling ablation: for each node count, a flat and
// a tree (group size ⌈√N⌉) checkpoint of the light slm ring. The flat
// rows pin the O(N) root fan-out, the tree rows the O(√N) aggregate;
// commit decisions are identical either way (see the equivalence tests),
// so the comparison isolates coordination cost.
func Scaling(nodeCounts []int, scale float64) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, n := range nodeCounts {
		for _, size := range []int{0, coord.GroupSizeFor(n)} {
			row, err := scalingCell(n, size, scale)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ScalingNodeCounts is the default sweep: the paper-scale cluster and
// the two wide configurations the hierarchical coordinator targets.
var ScalingNodeCounts = []int{8, 64, 256}

// scalingBench folds the scaling ablation into a benchmark report as
// scale_* (coordination) and engine_* (simulator throughput) keys.
func scalingBench(rep *BenchReport, nodeCounts []int, scale float64) error {
	rows, err := Scaling(nodeCounts, scale)
	if err != nil {
		return err
	}
	for _, r := range rows {
		mode := "flat"
		if r.Tree() {
			mode = "tree"
		}
		prefix := fmt.Sprintf("scale_n%d_%s", r.Nodes, mode)
		var msgs, lat, eps metrics.Summary
		msgs.Add(float64(r.Messages))
		lat.Add(r.LatencyMs)
		eps.Add(r.EventsPerSec / 1000)
		rep.Experiments[prefix+"/coord_messages"] = msgs.Dist()
		rep.Experiments[prefix+"/latency_ms"] = lat.Dist()
		rep.Experiments[fmt.Sprintf("engine_n%d_%s/kevents_per_wall_sec", r.Nodes, mode)] = eps.Dist()
	}
	return nil
}
