package exp

import (
	"fmt"

	"cruz"
	"cruz/internal/apps/slm"
)

// ECScheme names one durability configuration of the ablation.
type ECScheme string

const (
	// SchemeRepl3 is 3-way ring replication (PR 3's durability tier):
	// every committed image streams whole to three peers.
	SchemeRepl3 ECScheme = "repl_k3"
	// SchemeEC42 is the erasure-coded tier: 4 data + 2 parity shards per
	// stripe, one shard subset per holder.
	SchemeEC42 ECScheme = "ec_4p2"
)

// ECRow reports one scheme's run of the erasure-coding ablation: the
// bytes durability moved for the first (full) and second (incremental)
// checkpoint, the storage overhead factor, and the MTTR decomposition of
// a kill-and-recover — with the reconstruct window broken out for the EC
// scheme, where the new home decodes the image instead of fetching a
// surviving replica.
type ECRow struct {
	Nodes  int
	Scheme ECScheme

	// ImageMB is the committed checkpoint's total image bytes.
	ImageMB float64
	// WireMB is what the first checkpoint's durability distribution
	// shipped (replica streams or shard subsets — also what landed on
	// peer disks, since the delta protocol only ships what is missing).
	WireMB float64
	// SteadyMB is the same measure for the second, incremental
	// checkpoint: the steady-state durability cost per checkpoint.
	SteadyMB float64
	// Overhead is WireMB / ImageMB — the durable-copies factor
	// (k for replication, (m+r)/m for erasure coding).
	Overhead float64

	DetectMs      float64
	PlaceMs       float64
	TransferMs    float64
	ReconstructMs float64
	RestartMs     float64
	MTTRMs        float64
	TransferMB    float64
	// Reconstructed reports whether recovery had to decode shards (no
	// surviving full copy) rather than fetch a replica.
	Reconstructed bool
}

// durabilityBytes sums what every agent's durability protocol shipped so
// far (full replica streams plus erasure-coded shard subsets).
func durabilityBytes(cl *cruz.Cluster) int64 {
	var n int64
	for _, node := range cl.Nodes {
		n += node.Agent.Stats.ReplBytes + node.Agent.Stats.ECShardBytes
	}
	return n
}

// ecAblationRun measures one scheme: deploy the n-pod slm ring, take two
// deduplicated checkpoints (full then incremental) measuring durability
// bytes for each, then kill a pod-hosting node and report the automatic
// recovery's MTTR split.
func ecAblationRun(n int, scale float64, scheme ECScheme) (*ECRow, error) {
	cfg := cruz.Config{Nodes: n, Seed: int64(n)*131 + 17, AutoRecover: true}
	ec, err := cruz.ParseECParams("4+2")
	if err != nil {
		return nil, err
	}
	switch scheme {
	case SchemeRepl3:
		cfg.Replicas = 3
	case SchemeEC42:
		cfg.EC = ec
	default:
		return nil, fmt.Errorf("exp: unknown EC scheme %q", scheme)
	}
	cl, err := cruz.New(cfg)
	if err != nil {
		return nil, err
	}
	// Wide cells reuse the A9 light workload so n=64 stays tractable;
	// paper-scale cells use the benchmark slm configuration.
	wcfg := slmConfig(n, scale)
	if n > 16 {
		wcfg = wideSlmConfig(n, scale)
		// Keep each partition a few dozen chunks so stripe padding (a
		// partial final stripe per image) stays a rounding error in the
		// byte comparison rather than dominating it.
		if wcfg.GridBytes < 256<<10 {
			wcfg.GridBytes = 256 << 10
		}
	}
	// Salt each rank's grid: the default fill gives every rank the same
	// page set, so cross-pod dedup would ship replication almost for
	// free and invert the byte comparison this ablation exists for.
	wcfg.UniquePages = true
	var names []string
	var ips []cruz.Addr
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("ec-%d", i)
		pod, perr := cl.NewPod(i, name)
		if perr != nil {
			return nil, perr
		}
		names = append(names, name)
		ips = append(ips, pod.IP())
	}
	var workers []*slm.Worker
	for i, name := range names {
		w := slm.NewWorker(wcfg, i, ips[(i+1)%n])
		if _, err := cl.Pod(name).Spawn("slm", w); err != nil {
			return nil, err
		}
		workers = append(workers, w)
	}
	job, err := cl.DefineJob("ec", names...)
	if err != nil {
		return nil, err
	}
	ok := cl.RunUntil(func() bool {
		for _, w := range workers {
			if w.StepsDone < 2 {
				return false
			}
		}
		return true
	}, 10*60*cruz.Second)
	if !ok {
		return nil, fmt.Errorf("exp: ec ring never started (n=%d)", n)
	}

	// durable drives one deduplicated checkpoint and waits until the
	// coordinator has registered its full durability placement.
	durable := func() (*cruz.CheckpointResult, error) {
		res, cerr := cl.Checkpoint(job, cruz.CheckpointOptions{Dedup: true})
		if cerr != nil {
			return nil, cerr
		}
		settled := cl.RunUntil(func() bool {
			for _, name := range names {
				switch scheme {
				case SchemeEC42:
					if cl.Coordinator.KnownECShards(name, res.Seq) < ec.M+ec.R {
						return false
					}
				default:
					if cl.Coordinator.KnownHolders(name, res.Seq) < cfg.Replicas+1 {
						return false
					}
				}
			}
			return true
		}, 5*60*cruz.Second)
		if !settled {
			return nil, fmt.Errorf("exp: ec durability never settled (n=%d %s seq=%d)", n, scheme, res.Seq)
		}
		return res, nil
	}

	first, err := durable()
	if err != nil {
		return nil, err
	}
	wire := durabilityBytes(cl)
	row := &ECRow{
		Nodes: n, Scheme: scheme,
		ImageMB:  float64(first.TotalImageBytes) / (1 << 20),
		WireMB:   float64(wire) / (1 << 20),
		Overhead: float64(wire) / float64(first.TotalImageBytes),
	}

	// Steady state: run on, checkpoint incrementally, measure the delta
	// the durability tier ships (unchanged chunks — and for EC unchanged
	// stripes' parity — dedupe away on re-offer).
	cl.Run(200 * cruz.Millisecond)
	if _, err := durable(); err != nil {
		return nil, err
	}
	row.SteadyMB = float64(durabilityBytes(cl)-wire) / (1 << 20)

	// Kill the pod host. Under replication the new home is usually a
	// replica holder (free transfer); under EC nobody holds the full
	// image, so the new home pulls M shard subsets and reconstructs.
	cl.FailNode(1)
	if !cl.AwaitRecovery(1, 60*cruz.Second) {
		return nil, fmt.Errorf("exp: ec recovery never completed (n=%d %s)", n, scheme)
	}
	if err := cl.RecoveryErr(); err != nil {
		return nil, fmt.Errorf("exp: ec recovery n=%d %s: %w", n, scheme, err)
	}
	res := cl.Recoveries()[0]
	row.DetectMs = res.Detect.Milliseconds()
	row.PlaceMs = res.Place.Milliseconds()
	row.TransferMs = res.Transfer.Milliseconds()
	row.ReconstructMs = res.Reconstruct.Milliseconds()
	row.RestartMs = res.Restart.Milliseconds()
	row.MTTRMs = res.MTTR.Milliseconds()
	row.TransferMB = float64(res.TransferBytes) / (1 << 20)
	for _, rp := range res.Pods {
		if rp.Reconstructed {
			row.Reconstructed = true
		}
	}

	// Prove the job actually resumed before reporting numbers.
	resolve := func(i int) *slm.Worker {
		return cl.Pod(names[i]).Process(1).Program().(*slm.Worker)
	}
	before := make([]int, n)
	for i := range before {
		before[i] = resolve(i).StepsDone
	}
	progressed := cl.RunUntil(func() bool {
		for i := 0; i < n; i++ {
			if resolve(i).StepsDone <= before[i] {
				return false
			}
		}
		return true
	}, 60*cruz.Second)
	if !progressed {
		return nil, fmt.Errorf("exp: ec ring stuck after recovery (n=%d %s)", n, scheme)
	}
	live := make([]*slm.Worker, n)
	for i := range live {
		live[i] = resolve(i)
	}
	if err := checkWorkers(live); err != nil {
		return nil, err
	}
	return row, nil
}

// ECAblation is the storage-tier ablation the erasure-coding design
// argues from: for each node count, the same workload runs under 3-way
// replication and under 4+2 erasure coding, reporting durability bytes
// (first and steady-state checkpoints), the storage overhead factor, and
// the MTTR decomposition of an automatic kill-and-recover — where the EC
// scheme pays a reconstruct window for its ~2× byte savings.
func ECAblation(nodeCounts []int, scale float64) ([]ECRow, error) {
	var rows []ECRow
	for _, n := range nodeCounts {
		for _, scheme := range []ECScheme{SchemeRepl3, SchemeEC42} {
			row, err := ecAblationRun(n, scale, scheme)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}
