package exp

import (
	"fmt"
	"sort"

	"cruz"
	"cruz/internal/metrics"
	"cruz/internal/trace"
)

// PhasesResult decomposes coordinated checkpoint latency into the named
// protocol phases (quiesce, drain, capture, write, commit) recorded by
// the tracing subsystem. This is the breakdown behind E1–E4: it shows
// where the latency of Fig. 5 actually goes (the paper: checkpoint
// latency "is dominated by the time to write this state to disk").
type PhasesResult struct {
	Nodes       int
	Checkpoints int
	Report      *trace.PhaseReport
	// Events is the full trace, for optional Chrome-trace export.
	Events []trace.Event
	// Dropped counts events the trace ring overwrote. A nonzero value
	// means the phase report saw a truncated run; consumers that need the
	// full window (exports, critical paths) should fail loudly on it.
	Dropped uint64
}

// traceHealth is the end-of-run trace check shared by the traced
// experiments: every span must be closed (a leak means a protocol path
// lost an End) and the ring-drop count is surfaced to the caller.
func traceHealth(cl *cruz.Cluster) (uint64, error) {
	tr := cl.Trace()
	if tr == nil {
		return 0, nil
	}
	if n := tr.OpenSpans(); n != 0 {
		return tr.Dropped(), fmt.Errorf("exp: %d trace spans left open: %v", n, tr.OpenSpanNames())
	}
	return tr.Dropped(), nil
}

// Phases runs ckpts coordinated checkpoints of the slm benchmark on n
// nodes with tracing enabled and returns the per-phase latency report.
func Phases(n, ckpts int, scale float64) (*PhasesResult, error) {
	cl, job, workers, err := slmClusterTraced(n, scale)
	if err != nil {
		return nil, err
	}
	for k := 0; k < ckpts; k++ {
		if _, err := cl.Checkpoint(job, cruz.CheckpointOptions{}); err != nil {
			return nil, fmt.Errorf("exp: phases n=%d ckpt %d: %w", n, k, err)
		}
		cl.Run(500 * cruz.Millisecond)
	}
	if err := checkWorkers(workers); err != nil {
		return nil, err
	}
	dropped, err := traceHealth(cl)
	if err != nil {
		return nil, err
	}
	events := cl.Trace().Events()
	return &PhasesResult{
		Nodes:       n,
		Checkpoints: ckpts,
		Report:      trace.PhaseBreakdown(events),
		Events:      events,
		Dropped:     dropped,
	}, nil
}

// BenchReport is the machine-readable benchmark output written by
// cruzbench -json to BENCH_cruz.json: one distribution per experiment
// metric, keyed "experiment/metric".
type BenchReport struct {
	Scale       float64                 `json:"scale"`
	Experiments map[string]metrics.Dist `json:"experiments"`
}

// Keys returns the experiment keys in sorted (stable) order.
func (r *BenchReport) Keys() []string {
	keys := make([]string, 0, len(r.Experiments))
	for k := range r.Experiments {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// JSONBench collects the distributions behind the headline experiments:
// coordinated checkpoint latency, coordination overhead, and slowest
// local checkpoint for each node count, plus coordinated restart latency
// at the largest count.
func JSONBench(nodeCounts []int, ckpts int, scale float64) (*BenchReport, error) {
	rep := &BenchReport{Scale: scale, Experiments: make(map[string]metrics.Dist)}
	for _, n := range nodeCounts {
		cl, job, workers, err := slmCluster(n, scale, false)
		if err != nil {
			return nil, err
		}
		var lat, ovh, local metrics.Summary
		for k := 0; k < ckpts; k++ {
			res, cerr := cl.Checkpoint(job, cruz.CheckpointOptions{})
			if cerr != nil {
				return nil, fmt.Errorf("exp: jsonbench n=%d ckpt %d: %w", n, k, cerr)
			}
			lat.AddDuration(res.Latency)
			ovh.Add(res.Overhead.Microseconds())
			local.AddDuration(res.MaxLocalCheckpoint)
			cl.Run(500 * cruz.Millisecond)
		}
		if err := checkWorkers(workers); err != nil {
			return nil, err
		}
		prefix := fmt.Sprintf("checkpoint_n%d", n)
		rep.Experiments[prefix+"/latency_ms"] = lat.Dist()
		rep.Experiments[prefix+"/coord_overhead_us"] = ovh.Dist()
		rep.Experiments[prefix+"/max_local_ms"] = local.Dist()
	}
	if len(nodeCounts) > 0 {
		n := nodeCounts[len(nodeCounts)-1]
		cl, job, _, err := slmCluster(n, scale, false)
		if err != nil {
			return nil, err
		}
		var lat, ovh metrics.Summary
		for k := 0; k < ckpts; k++ {
			if _, err := cl.Checkpoint(job, cruz.CheckpointOptions{}); err != nil {
				return nil, fmt.Errorf("exp: jsonbench restart ckpt: %w", err)
			}
			cl.Run(100 * cruz.Millisecond)
			for i := 0; i < n; i++ {
				cl.Pod(fmt.Sprintf("slm-%d", i)).Destroy()
			}
			res, rerr := cl.Restart(job, 0)
			if rerr != nil {
				return nil, fmt.Errorf("exp: jsonbench restart: %w", rerr)
			}
			lat.AddDuration(res.Latency)
			ovh.Add(res.Overhead.Microseconds())
			cl.Run(200 * cruz.Millisecond)
		}
		prefix := fmt.Sprintf("restart_n%d", n)
		rep.Experiments[prefix+"/latency_ms"] = lat.Dist()
		rep.Experiments[prefix+"/coord_overhead_us"] = ovh.Dist()
	}

	// Dedup ablation: steady-state (second-and-later) deduplicated
	// checkpoints at 4 nodes, with and without the pipelined save path.
	// Compare against checkpoint_n4/latency_ms, the non-dedup full
	// baseline above.
	const dn = 4
	for _, variant := range []struct {
		key      string
		pipeline bool
	}{
		{"checkpoint_n4_dedup", false},
		{"checkpoint_n4_dedup_pipe", true},
	} {
		cl, job, workers, err := slmCluster(dn, scale, false)
		if err != nil {
			return nil, err
		}
		var first, steady metrics.Summary
		for k := 0; k < ckpts; k++ {
			res, cerr := cl.Checkpoint(job, cruz.CheckpointOptions{Dedup: true, Pipeline: variant.pipeline})
			if cerr != nil {
				return nil, fmt.Errorf("exp: jsonbench %s ckpt %d: %w", variant.key, k, cerr)
			}
			if k == 0 {
				first.AddDuration(res.Latency)
			} else {
				steady.AddDuration(res.Latency)
			}
			cl.Run(500 * cruz.Millisecond)
		}
		if err := checkWorkers(workers); err != nil {
			return nil, err
		}
		rep.Experiments[variant.key+"/latency_ms"] = steady.Dist()
		rep.Experiments[variant.key+"/first_latency_ms"] = first.Dist()
	}

	// Pre-copy ablation: per-checkpoint downtime (slowest pod's freeze
	// window) under each save strategy at 4 nodes. Compare
	// precopy_n4_rounds against precopy_n4_stopcopy: the paper-level
	// claim is O(image size) collapsing to O(residual dirty set).
	for _, variant := range []struct {
		key  string
		opts cruz.CheckpointOptions
	}{
		{"precopy_n4_stopcopy", cruz.CheckpointOptions{}},
		{"precopy_n4_pipelined", cruz.CheckpointOptions{Pipeline: true}},
		{"precopy_n4_rounds", cruz.CheckpointOptions{
			Precopy: cruz.PrecopyConfig{MaxRounds: 3, DirtyThresholdPages: 16, MinRoundGain: 0.2},
		}},
	} {
		cl, job, workers, err := slmCluster(dn, scale, false)
		if err != nil {
			return nil, err
		}
		var down, lat metrics.Summary
		for k := 0; k < ckpts; k++ {
			res, cerr := cl.Checkpoint(job, variant.opts)
			if cerr != nil {
				return nil, fmt.Errorf("exp: jsonbench %s ckpt %d: %w", variant.key, k, cerr)
			}
			down.AddDuration(res.MaxBlocked)
			lat.AddDuration(res.Latency)
			cl.Run(500 * cruz.Millisecond)
		}
		if err := checkWorkers(workers); err != nil {
			return nil, err
		}
		rep.Experiments[variant.key+"/downtime_ms"] = down.Dist()
		rep.Experiments[variant.key+"/latency_ms"] = lat.Dist()
	}

	// Restore after an 8-incremental deduplicated chain with
	// auto-compaction folding it en route; compare against
	// restart_n{max}/latency_ms, the fresh full-image restore above.
	{
		cl, job, workers, err := slmClusterCfg(dn, slmConfig(dn, scale), false, false, nil, 4)
		if err != nil {
			return nil, err
		}
		for k := 0; k < 9; k++ {
			opts := cruz.CheckpointOptions{Dedup: true, Incremental: k > 0}
			if _, cerr := cl.Checkpoint(job, opts); cerr != nil {
				return nil, fmt.Errorf("exp: jsonbench compact chain ckpt %d: %w", k, cerr)
			}
			cl.Run(200 * cruz.Millisecond)
		}
		if err := checkWorkers(workers); err != nil {
			return nil, err
		}
		for i := 0; i < dn; i++ {
			cl.Pod(fmt.Sprintf("slm-%d", i)).Destroy()
		}
		var lat metrics.Summary
		res, rerr := cl.Restart(job, 0)
		if rerr != nil {
			return nil, fmt.Errorf("exp: jsonbench compact restart: %w", rerr)
		}
		lat.AddDuration(res.Latency)
		rep.Experiments["restart_n4_compact/latency_ms"] = lat.Dist()
	}

	// Automatic failure recovery: kill a node of a replicated 4-node job
	// and report the MTTR phase split, without and with a spare standby
	// node as the restart target.
	for _, rc := range []RecoveryConfig{{Replicas: 1, Spares: 0}, {Replicas: 1, Spares: 1}} {
		rows, err := Recovery(4, scale, []RecoveryConfig{rc})
		if err != nil {
			return nil, fmt.Errorf("exp: jsonbench recovery k=%d s=%d: %w", rc.Replicas, rc.Spares, err)
		}
		r := rows[0]
		var mttr, detect, place, transfer, restart metrics.Summary
		mttr.Add(r.MTTRMs)
		detect.Add(r.DetectMs)
		place.Add(r.PlaceMs)
		transfer.Add(r.TransferMs)
		restart.Add(r.RestartMs)
		prefix := fmt.Sprintf("recovery_n4_k%d_s%d", rc.Replicas, rc.Spares)
		rep.Experiments[prefix+"/mttr_ms"] = mttr.Dist()
		rep.Experiments[prefix+"/detect_ms"] = detect.Dist()
		rep.Experiments[prefix+"/place_ms"] = place.Dist()
		rep.Experiments[prefix+"/transfer_ms"] = transfer.Dist()
		rep.Experiments[prefix+"/restart_ms"] = restart.Dist()
	}

	// Critical-path decomposition of the traced kill-and-recover run:
	// the recovery op's phase split (sequential, so phases are the
	// decomposition) and the checkpoint op's critical-path segments
	// aggregated by phase kind (parallel fan-out, so only the path sums
	// to the total).
	{
		cp, err := CritPath(scale)
		if err != nil {
			return nil, err
		}
		add := func(key string, ms float64) {
			var s metrics.Summary
			s.Add(ms)
			rep.Experiments[key] = s.Dist()
		}
		add("critpath_recovery_n4/total_ms", cp.Recovery.TotalMs)
		for _, seg := range cp.Recovery.Phases {
			add("critpath_recovery_n4/"+pathKey(seg)+"_ms", seg.Ms)
		}
		add("critpath_checkpoint_n4/total_ms", cp.Checkpoint.TotalMs)
		agg := make(map[string]float64)
		var order []string
		for _, seg := range cp.Checkpoint.Path {
			k := pathKey(seg)
			if _, ok := agg[k]; !ok {
				order = append(order, k)
			}
			agg[k] += seg.Ms
		}
		for _, k := range order {
			add("critpath_checkpoint_n4/path_"+k+"_ms", agg[k])
		}
	}

	// A11 erasure-coded storage tier: the same 8-node workload under
	// 3-way replication and under 4+2 striping — durability bytes for the
	// full and steady-state checkpoints, the storage-overhead factor, and
	// the kill-and-recover MTTR with the EC reconstruct window broken out.
	{
		rows, err := ECAblation([]int{8}, scale)
		if err != nil {
			return nil, fmt.Errorf("exp: jsonbench ec: %w", err)
		}
		add := func(key string, v float64) {
			var s metrics.Summary
			s.Add(v)
			rep.Experiments[key] = s.Dist()
		}
		for _, r := range rows {
			prefix := fmt.Sprintf("ec_n%d_%s", r.Nodes, r.Scheme)
			add(prefix+"/image_mb", r.ImageMB)
			add(prefix+"/wire_mb", r.WireMB)
			add(prefix+"/steady_mb", r.SteadyMB)
			add(prefix+"/overhead", r.Overhead)
			add(prefix+"/mttr_ms", r.MTTRMs)
			add(prefix+"/detect_ms", r.DetectMs)
			add(prefix+"/transfer_ms", r.TransferMs)
			add(prefix+"/reconstruct_ms", r.ReconstructMs)
			add(prefix+"/restart_ms", r.RestartMs)
		}
	}

	// A10 live migration: pod slm-1 of a 4-worker ring bounced to a
	// spare node and back, live (pre-copy + address takeover) and
	// stop-and-copy; migrate_n4/downtime_ms against
	// migrate_n4/stopcopy_downtime_ms is the headline pair.
	if err := migrateBench(rep, ckpts, scale); err != nil {
		return nil, err
	}

	// A9 scaling ablation: flat versus hierarchical coordination at 8,
	// 64, and 256 pods, plus the engine's wall-clock throughput while
	// each cell ran.
	if err := scalingBench(rep, ScalingNodeCounts, scale); err != nil {
		return nil, err
	}
	return rep, nil
}
