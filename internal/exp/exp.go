// Package exp is the experiment harness: one function per table or
// figure in the paper's evaluation (§6), each returning structured
// results. cmd/cruzbench renders them as text; the repository-root
// benchmarks report them as testing.B metrics; EXPERIMENTS.md records
// paper-versus-measured values.
//
// Scale notes: the paper's pods checkpoint ≈100 MB images. A scale
// parameter (1.0 = paper scale) shrinks the slm grid proportionally so
// quick runs stay quick; all *shape* results (who wins, slopes,
// crossovers) are scale-invariant, and the calibrated absolute numbers
// in EXPERIMENTS.md use scale 1.0.
package exp

import (
	"fmt"

	"cruz"
	"cruz/internal/apps/slm"
	"cruz/internal/apps/stream"
	"cruz/internal/metrics"
	"cruz/internal/sim"
)

func init() {
	cruz.RegisterProgram(&slm.Worker{})
	cruz.RegisterProgram(&stream.Sender{})
	cruz.RegisterProgram(&stream.Receiver{})
}

// slmConfig returns the benchmark slm configuration at the given scale.
func slmConfig(workers int, scale float64) slm.Config {
	cfg := slm.DefaultConfig(workers)
	cfg.Steps = 0 // run until the experiment ends
	cfg.GridBytes = uint64(float64(cfg.GridBytes) * scale)
	if cfg.GridBytes < 1<<20 {
		cfg.GridBytes = 1 << 20
	}
	// Keep step time moderate at small scales so experiments converge
	// in reasonable virtual time.
	if scale < 1 {
		cfg.TotalComputePerStep = sim.Duration(float64(cfg.TotalComputePerStep) * scale)
		cfg.StepOverhead = sim.Duration(float64(cfg.StepOverhead) * scale)
		if cfg.TotalComputePerStep < 10*sim.Millisecond {
			cfg.TotalComputePerStep = 10 * sim.Millisecond
		}
		if cfg.StepOverhead < sim.Millisecond {
			cfg.StepOverhead = sim.Millisecond
		}
		cfg.DirtyPagesPerStep = int(float64(cfg.DirtyPagesPerStep) * scale)
		if cfg.DirtyPagesPerStep < 8 {
			cfg.DirtyPagesPerStep = 8
		}
	}
	return cfg
}

// slmCluster builds an n-node cluster running the slm ring, one worker
// pod per node, and returns it with the job and workers.
func slmCluster(n int, scale float64, flushToo bool) (*cruz.Cluster, *cruz.Job, []*slm.Worker, error) {
	return slmClusterCfg(n, slmConfig(n, scale), flushToo, false, nil, 0)
}

// slmClusterTraced is slmCluster with the tracing subsystem enabled.
func slmClusterTraced(n int, scale float64) (*cruz.Cluster, *cruz.Job, []*slm.Worker, error) {
	return slmClusterCfg(n, slmConfig(n, scale), false, true, nil, 0)
}

// slmClusterSkewed additionally scales worker i's grid by gridMult[i]
// (nil = homogeneous), used to expose save-time skew in the Fig. 4
// comparison.
func slmClusterSkewed(n int, scale float64, flushToo bool, gridMult []float64) (*cruz.Cluster, *cruz.Job, []*slm.Worker, error) {
	return slmClusterCfg(n, slmConfig(n, scale), flushToo, false, gridMult, 0)
}

// slmClusterCfg is the fully parameterized deployment. autoCompact > 0
// enables store chain compaction (deduplicated checkpoints only).
func slmClusterCfg(n int, cfg slm.Config, flushToo, traced bool, gridMult []float64, autoCompact int) (*cruz.Cluster, *cruz.Job, []*slm.Worker, error) {
	cl, err := cruz.New(cruz.Config{Nodes: n, Seed: int64(n)*101 + 7, FlushBaseline: flushToo, Trace: traced, AutoCompact: autoCompact})
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	var ips []cruz.Addr
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("slm-%d", i)
		pod, perr := cl.NewPod(i, name)
		if perr != nil {
			return nil, nil, nil, perr
		}
		names = append(names, name)
		ips = append(ips, pod.IP())
	}
	var workers []*slm.Worker
	for i, name := range names {
		wcfg := cfg
		if i < len(gridMult) && gridMult[i] > 0 {
			wcfg.GridBytes = uint64(float64(cfg.GridBytes) * gridMult[i])
		}
		w := slm.NewWorker(wcfg, i, ips[(i+1)%n])
		if _, err := cl.Pod(name).Spawn("slm", w); err != nil {
			return nil, nil, nil, err
		}
		workers = append(workers, w)
	}
	job, err := cl.DefineJob("slm", names...)
	if err != nil {
		return nil, nil, nil, err
	}
	// Warm up: let the ring form and take a few steps.
	ok := cl.RunUntil(func() bool {
		for _, w := range workers {
			if w.StepsDone < 2 {
				return false
			}
		}
		return true
	}, 10*60*cruz.Second)
	if !ok {
		return nil, nil, nil, fmt.Errorf("exp: slm ring never started (n=%d)", n)
	}
	return cl, job, workers, nil
}

// checkWorkers returns an error if any worker recorded a fault.
func checkWorkers(ws []*slm.Worker) error {
	for i, w := range ws {
		if w.Fault != "" {
			return fmt.Errorf("exp: worker %d fault: %s", i, w.Fault)
		}
	}
	return nil
}

// Fig5Row is one node-count configuration of Fig. 5.
type Fig5Row struct {
	Nodes       int
	Checkpoints int
	// Fig. 5(a): total checkpoint latency at the coordinator.
	LatencyMeanMs, LatencyStdMs float64
	// Fig. 5(b): coordination overhead.
	OverheadMeanUs, OverheadStdUs float64
	// Supporting detail: slowest local checkpoint and image volume.
	LocalMeanMs   float64
	PerPodImageMB float64
}

// Fig5 reproduces Figures 5(a) and 5(b): coordinated checkpoints of the
// slm benchmark across node counts, reporting total latency and
// coordination overhead (mean ± stddev over ckptsEach checkpoints taken
// every interval, as in the paper's every-8-seconds runs).
func Fig5(nodeCounts []int, ckptsEach int, interval cruz.Duration, scale float64) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, n := range nodeCounts {
		cl, job, workers, err := slmCluster(n, scale, false)
		if err != nil {
			return nil, err
		}
		var lat, ovh, local metrics.Summary
		var imgBytes int64
		for k := 0; k < ckptsEach; k++ {
			res, cerr := cl.Checkpoint(job, cruz.CheckpointOptions{})
			if cerr != nil {
				return nil, fmt.Errorf("exp: fig5 n=%d ckpt %d: %w", n, k, cerr)
			}
			lat.AddDuration(res.Latency)
			ovh.Add(res.Overhead.Microseconds())
			local.AddDuration(res.MaxLocalCheckpoint)
			imgBytes = res.TotalImageBytes / int64(n)
			cl.Run(interval)
		}
		if err := checkWorkers(workers); err != nil {
			return nil, err
		}
		rows = append(rows, Fig5Row{
			Nodes:          n,
			Checkpoints:    ckptsEach,
			LatencyMeanMs:  lat.Mean(),
			LatencyStdMs:   lat.StdDev(),
			OverheadMeanUs: ovh.Mean(),
			OverheadStdUs:  ovh.StdDev(),
			LocalMeanMs:    local.Mean(),
			PerPodImageMB:  float64(imgBytes) / (1 << 20),
		})
	}
	return rows, nil
}

// Fig6Result is the TCP streaming trace of Fig. 6.
type Fig6Result struct {
	// Series is the receive rate in Mb/s sampled every millisecond over
	// a 10 ms sliding window, time-shifted so the checkpoint starts at 0.
	Series *metrics.Series
	// SteadyMbps is the pre-checkpoint rate.
	SteadyMbps float64
	// CheckpointMs is the coordinated checkpoint latency.
	CheckpointMs float64
	// ZeroMs is how long the receiver observed a zero rate.
	ZeroMs float64
	// RecoveryMs is when the rate is back above 90% of steady, measured
	// from checkpoint start.
	RecoveryMs float64
}

// Fig6 reproduces Figure 6: the effect of a coordinated checkpoint's
// dropped packets on a maximum-rate TCP stream between two nodes.
func Fig6() (*Fig6Result, error) {
	cl, err := cruz.New(cruz.Config{Nodes: 2})
	if err != nil {
		return nil, err
	}
	rpod, err := cl.NewPod(0, "recv")
	if err != nil {
		return nil, err
	}
	spod, err := cl.NewPod(1, "send")
	if err != nil {
		return nil, err
	}
	// Ballast sizes the pods so the local checkpoint takes ≈120 ms, the
	// paper's Fig. 6 timeline (checkpoint completes at ~120 ms, TCP
	// recovers ~100 ms later).
	const ballast = 12 << 20
	recv := stream.NewReceiver(0)
	recv.Ballast = ballast
	if _, err := rpod.Spawn("receiver", recv); err != nil {
		return nil, err
	}
	sender := stream.NewSender(cruz.AddrPort{Addr: rpod.IP(), Port: stream.DefaultPort})
	sender.Ballast = ballast
	if _, err := spod.Spawn("sender", sender); err != nil {
		return nil, err
	}
	job, err := cl.DefineJob("stream", "recv", "send")
	if err != nil {
		return nil, err
	}
	cl.Run(300 * cruz.Millisecond) // reach steady state

	meter := metrics.NewRateMeter(10 * cruz.Millisecond)
	series := &metrics.Series{Name: "receive rate (Mb/s), checkpoint at t=0"}
	last := recv.Received
	resolve := func() *stream.Receiver {
		return cl.Pod("recv").Process(1).Program().(*stream.Receiver)
	}
	ticker := cl.Engine.NewTicker(cruz.Millisecond, func() {
		r := resolve()
		if r.Received >= last {
			meter.Record(cl.Engine.Now(), int(r.Received-last))
		}
		last = r.Received
		series.Add(cl.Engine.Now(), meter.RateMbps(cl.Engine.Now()))
	})
	defer ticker.Stop()

	cl.Run(50 * cruz.Millisecond) // steady-rate samples before t=0
	steady := meter.RateMbps(cl.Engine.Now())

	t0 := cl.Engine.Now()
	res, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		return nil, err
	}
	cl.Run(700 * cruz.Millisecond)
	if r := resolve(); r.Fault != "" {
		return nil, fmt.Errorf("exp: fig6 receiver fault: %s", r.Fault)
	}

	out := &Fig6Result{
		Series:       series.Shifted(t0),
		SteadyMbps:   steady,
		CheckpointMs: res.Latency.Milliseconds(),
	}
	// Analyze the shifted trace: total zero-rate span, then recovery =
	// first return to 90% of steady *after* the rate has collapsed (the
	// sliding window keeps early post-checkpoint samples high).
	var zeroSpan cruz.Duration
	var prev cruz.Time
	sawZero := false
	for _, p := range out.Series.Points {
		if p.T < 0 {
			prev = p.T
			continue
		}
		if p.V == 0 {
			sawZero = true
			zeroSpan += sim.Duration(p.T - prev)
		}
		if out.RecoveryMs == 0 && sawZero && p.V >= 0.9*steady {
			out.RecoveryMs = sim.Duration(p.T).Milliseconds()
		}
		prev = p.T
	}
	out.ZeroMs = zeroSpan.Milliseconds()
	return out, nil
}

// OverheadResult reports the §6 runtime-virtualization measurement.
type OverheadResult struct {
	NativeMs, PodMs float64
	OverheadPct     float64
}

// RuntimeOverhead reproduces the §6 claim that Cruz's runtime overhead is
// negligible (< 0.5%): the same slm computation is run natively and
// inside pods, and the execution times compared.
func RuntimeOverhead() (*OverheadResult, error) {
	const n = 2
	cfg := slmConfig(n, 0.02)
	cfg.Steps = 100

	runPods := func() (sim.Duration, error) {
		cl, err := cruz.New(cruz.Config{Nodes: n})
		if err != nil {
			return 0, err
		}
		var workers []*slm.Worker
		var ips []cruz.Addr
		for i := 0; i < n; i++ {
			pod, perr := cl.NewPod(i, fmt.Sprintf("p%d", i))
			if perr != nil {
				return 0, perr
			}
			ips = append(ips, pod.IP())
		}
		for i := 0; i < n; i++ {
			w := slm.NewWorker(cfg, i, ips[(i+1)%n])
			workers = append(workers, w)
			if _, err := cl.Pod(fmt.Sprintf("p%d", i)).Spawn("slm", w); err != nil {
				return 0, err
			}
		}
		return waitSlm(cl, workers)
	}
	runNative := func() (sim.Duration, error) {
		cl, err := cruz.New(cruz.Config{Nodes: n})
		if err != nil {
			return 0, err
		}
		var workers []*slm.Worker
		for i := 0; i < n; i++ {
			// Native processes bind the node's own address.
			w := slm.NewWorker(cfg, i, cl.Nodes[(i+1)%n].Addr())
			workers = append(workers, w)
			cl.Nodes[i].Kernel.Spawn("slm", w, 0)
		}
		return waitSlm(cl, workers)
	}

	podT, err := runPods()
	if err != nil {
		return nil, fmt.Errorf("exp: pod run: %w", err)
	}
	natT, err := runNative()
	if err != nil {
		return nil, fmt.Errorf("exp: native run: %w", err)
	}
	return &OverheadResult{
		NativeMs:    natT.Milliseconds(),
		PodMs:       podT.Milliseconds(),
		OverheadPct: 100 * (podT.Seconds() - natT.Seconds()) / natT.Seconds(),
	}, nil
}

// waitSlm runs until all workers finish and returns the slowest
// steady-state runtime.
func waitSlm(cl *cruz.Cluster, workers []*slm.Worker) (sim.Duration, error) {
	done := func() bool {
		for _, w := range workers {
			if !w.Done() {
				return false
			}
		}
		return true
	}
	if !cl.RunUntil(done, 60*60*cruz.Second) {
		return 0, fmt.Errorf("exp: slm run never finished (steps %d)", workers[0].StepsDone)
	}
	if err := checkWorkers(workers); err != nil {
		return 0, err
	}
	var max sim.Duration
	for _, w := range workers {
		if d := sim.Duration(w.FinishedAt - w.StartedAt); d > max {
			max = d
		}
	}
	return max, nil
}
