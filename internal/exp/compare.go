package exp

import (
	"fmt"

	"cruz"
	"cruz/internal/metrics"
)

// MsgRow compares control-message complexity (§5.2): Cruz's O(N) versus
// the flushing baselines' O(N²).
type MsgRow struct {
	Nodes int
	// CruzMsgs counts coordinator<->agent messages for one Cruz
	// checkpoint (4N for the blocking protocol).
	CruzMsgs int
	// FlushCoordMsgs counts the flushing coordinator's messages (also
	// 4N) and FlushMarkerMsgs the all-to-all channel markers (N(N-1)).
	FlushCoordMsgs  int
	FlushMarkerMsgs int
	// Latencies for the same workload and image sizes.
	CruzLatencyMs  float64
	FlushLatencyMs float64
	// FlushDrainMs is the marker-exchange-plus-drain phase Cruz
	// eliminates entirely.
	FlushDrainMs float64
}

// MessageComplexity reproduces the §5.2 comparison on live clusters: the
// same slm workload is checkpointed once with Cruz and once with the
// flushing protocol, counting messages.
func MessageComplexity(nodeCounts []int, scale float64) ([]MsgRow, error) {
	// Average latencies over a few rounds: the pod-quiesce phase (a
	// compute burst may be mid-flight when SIGSTOP lands) adds noise of
	// up to one step time per sample.
	const rounds = 3
	var rows []MsgRow
	for _, n := range nodeCounts {
		// Short compute bursts: the SIGSTOP-quiesce wait (up to one
		// burst) would otherwise add noise larger than the protocol
		// difference being measured.
		cfg := slmConfig(n, scale)
		cfg.TotalComputePerStep = 20 * cruz.Millisecond
		cfg.StepOverhead = 2 * cruz.Millisecond
		cl, job, workers, err := slmClusterCfg(n, cfg, true, false, nil, 0)
		if err != nil {
			return nil, err
		}
		var names []string
		for _, m := range job.Members {
			names = append(names, m.Pod)
		}
		fjob, err := cl.DefineFlushJob("slm-flush", names...)
		if err != nil {
			return nil, err
		}
		row := MsgRow{Nodes: n}
		var cruzLat, flushLat, drain metrics.Summary
		for k := 0; k < rounds; k++ {
			cres, cerr := cl.Checkpoint(job, cruz.CheckpointOptions{})
			if cerr != nil {
				return nil, fmt.Errorf("exp: msgs cruz n=%d: %w", n, cerr)
			}
			cl.Run(100 * cruz.Millisecond)
			fres, ferr := cl.FlushCheckpoint(fjob)
			if ferr != nil {
				return nil, fmt.Errorf("exp: msgs flush n=%d: %w", n, ferr)
			}
			cl.Run(100 * cruz.Millisecond)
			row.CruzMsgs = cres.Messages
			row.FlushCoordMsgs = fres.CoordinatorMessages
			row.FlushMarkerMsgs = fres.MarkerMessages
			cruzLat.AddDuration(cres.Latency)
			flushLat.AddDuration(fres.Latency)
			drain.AddDuration(fres.MaxFlush)
		}
		if err := checkWorkers(workers); err != nil {
			return nil, err
		}
		row.CruzLatencyMs = cruzLat.Mean()
		row.FlushLatencyMs = flushLat.Mean()
		row.FlushDrainMs = drain.Mean()
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig4Variant is one protocol variant's freeze profile.
type Fig4Variant struct {
	Name string
	// MaxBlockedMs is the slowest pod's freeze (bounded below by its own
	// save); MinBlockedMs the fastest pod's — the Fig. 4 optimization's
	// beneficiary, which no longer waits for the slowest save.
	MaxBlockedMs float64
	MinBlockedMs float64
	LatencyMs    float64
}

// Fig4Row compares how long pods stay frozen under each protocol variant.
type Fig4Row struct {
	Nodes    int
	Variants []Fig4Variant
}

// Fig4Compare measures the Fig. 4 early-continue optimization and the
// §5.2 copy-on-write extension against the blocking protocol. The
// workload is deliberately skewed — one worker has twice the grid — since
// the early-continue gain is exactly the save-time skew the other nodes
// no longer wait out.
func Fig4Compare(nodeCounts []int, scale float64) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, n := range nodeCounts {
		mult := make([]float64, n)
		for i := range mult {
			mult[i] = 1
		}
		mult[0] = 2 // the straggler
		cl, job, workers, err := slmClusterSkewed(n, scale, false, mult)
		if err != nil {
			return nil, err
		}
		row := Fig4Row{Nodes: n}
		for _, v := range []struct {
			name string
			opts cruz.CheckpointOptions
		}{
			{"blocking", cruz.CheckpointOptions{}},
			{"fig4-optimized", cruz.CheckpointOptions{Optimized: true}},
			{"copy-on-write", cruz.CheckpointOptions{COW: true}},
		} {
			res, cerr := cl.Checkpoint(job, v.opts)
			if cerr != nil {
				return nil, fmt.Errorf("exp: fig4 n=%d %s: %w", n, v.name, cerr)
			}
			row.Variants = append(row.Variants, Fig4Variant{
				Name:         v.name,
				MaxBlockedMs: res.MaxBlocked.Milliseconds(),
				MinBlockedMs: res.MinBlocked.Milliseconds(),
				LatencyMs:    res.Latency.Milliseconds(),
			})
			cl.Run(200 * cruz.Millisecond)
		}
		if err := checkWorkers(workers); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RestartRow reports coordinated restart costs (the paper notes restart
// results are "similar to" Fig. 5 and omits them for space).
type RestartRow struct {
	Nodes          int
	LatencyMeanMs  float64
	LatencyStdMs   float64
	OverheadMeanUs float64
	LocalMeanMs    float64
}

// RestartLatency measures coordinated restart across node counts:
// checkpoint, crash all pods, restart, repeated.
func RestartLatency(nodeCounts []int, repeats int, scale float64) ([]RestartRow, error) {
	var rows []RestartRow
	for _, n := range nodeCounts {
		cl, job, _, err := slmCluster(n, scale, false)
		if err != nil {
			return nil, err
		}
		var lat, ovh, local metrics.Summary
		for k := 0; k < repeats; k++ {
			if _, err := cl.Checkpoint(job, cruz.CheckpointOptions{}); err != nil {
				return nil, fmt.Errorf("exp: restart n=%d ckpt: %w", n, err)
			}
			cl.Run(100 * cruz.Millisecond)
			for i := 0; i < n; i++ {
				cl.Pod(fmt.Sprintf("slm-%d", i)).Destroy()
			}
			res, rerr := cl.Restart(job, 0)
			if rerr != nil {
				return nil, fmt.Errorf("exp: restart n=%d: %w", n, rerr)
			}
			lat.AddDuration(res.Latency)
			ovh.Add(res.Overhead.Microseconds())
			local.AddDuration(res.MaxLocalRestore)
			cl.Run(200 * cruz.Millisecond)
		}
		rows = append(rows, RestartRow{
			Nodes:          n,
			LatencyMeanMs:  lat.Mean(),
			LatencyStdMs:   lat.StdDev(),
			OverheadMeanUs: ovh.Mean(),
			LocalMeanMs:    local.Mean(),
		})
	}
	return rows, nil
}

// IncrementalRow reports the incremental-checkpoint ablation.
type IncrementalRow struct {
	Kind      string // "full" or "incremental"
	ImageMB   float64
	LatencyMs float64
}

// IncrementalAblation measures full versus incremental checkpoint size
// and latency on the slm workload (§5.2 mentions incremental
// checkpointing as a standard optimization Cruz composes with).
func IncrementalAblation(scale float64) ([]IncrementalRow, error) {
	cl, job, workers, err := slmCluster(2, scale, false)
	if err != nil {
		return nil, err
	}
	full, err := cl.Checkpoint(job, cruz.CheckpointOptions{})
	if err != nil {
		return nil, err
	}
	cl.Run(500 * cruz.Millisecond)
	inc, err := cl.Checkpoint(job, cruz.CheckpointOptions{Incremental: true})
	if err != nil {
		return nil, err
	}
	if err := checkWorkers(workers); err != nil {
		return nil, err
	}
	return []IncrementalRow{
		{Kind: "full", ImageMB: float64(full.TotalImageBytes) / (1 << 20), LatencyMs: full.Latency.Milliseconds()},
		{Kind: "incremental", ImageMB: float64(inc.TotalImageBytes) / (1 << 20), LatencyMs: inc.Latency.Milliseconds()},
	}, nil
}
