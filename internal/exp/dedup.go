package exp

import (
	"fmt"

	"cruz"
	"cruz/internal/metrics"
	"cruz/internal/trace"
)

// DedupRow is one storage-strategy variant of the dedup ablation.
type DedupRow struct {
	Variant string
	// FirstLatencyMs is the cold checkpoint (every page new to the store).
	FirstLatencyMs float64
	// SteadyLatencyMs is the mean over second-and-later checkpoints of
	// the steady-state workload — where content addressing pays off.
	SteadyLatencyMs float64
	// FirstMB and SteadyMB are the bytes actually written to disk.
	FirstMB  float64
	SteadyMB float64
	// RestoreMs is a coordinated restart from the newest checkpoint.
	RestoreMs float64
}

// dedupVariants defines the ablation: how each storage strategy shapes
// the per-checkpoint options.
var dedupVariants = []struct {
	name string
	opts func(k int) cruz.CheckpointOptions
}{
	{"full", func(int) cruz.CheckpointOptions { return cruz.CheckpointOptions{} }},
	{"incremental", func(k int) cruz.CheckpointOptions {
		return cruz.CheckpointOptions{Incremental: k > 0}
	}},
	{"dedup", func(int) cruz.CheckpointOptions { return cruz.CheckpointOptions{Dedup: true} }},
	{"dedup+pipeline", func(int) cruz.CheckpointOptions {
		return cruz.CheckpointOptions{Dedup: true, Pipeline: true}
	}},
}

// DedupAblation compares the checkpoint storage strategies on the slm
// workload: full monolithic images, incremental chains, content-addressed
// (dedup) full captures, and dedup with the pipelined save path. Each
// variant runs on a fresh n-node cluster taking ckpts checkpoints 500 ms
// apart, then a coordinated restart.
func DedupAblation(n, ckpts int, scale float64) ([]DedupRow, error) {
	var rows []DedupRow
	for _, v := range dedupVariants {
		cl, job, workers, err := slmCluster(n, scale, false)
		if err != nil {
			return nil, err
		}
		var steadyLat, steadyMB metrics.Summary
		row := DedupRow{Variant: v.name}
		for k := 0; k < ckpts; k++ {
			res, cerr := cl.Checkpoint(job, v.opts(k))
			if cerr != nil {
				return nil, fmt.Errorf("exp: dedup ablation %s ckpt %d: %w", v.name, k, cerr)
			}
			mb := float64(res.TotalImageBytes) / (1 << 20)
			if k == 0 {
				row.FirstLatencyMs = res.Latency.Milliseconds()
				row.FirstMB = mb
			} else {
				steadyLat.AddDuration(res.Latency)
				steadyMB.Add(mb)
			}
			cl.Run(500 * cruz.Millisecond)
		}
		if err := checkWorkers(workers); err != nil {
			return nil, fmt.Errorf("exp: dedup ablation %s: %w", v.name, err)
		}
		row.SteadyLatencyMs = steadyLat.Mean()
		row.SteadyMB = steadyMB.Mean()
		for i := 0; i < n; i++ {
			cl.Pod(fmt.Sprintf("slm-%d", i)).Destroy()
		}
		res, rerr := cl.Restart(job, 0)
		if rerr != nil {
			return nil, fmt.Errorf("exp: dedup ablation %s restart: %w", v.name, rerr)
		}
		row.RestoreMs = res.Latency.Milliseconds()
		rows = append(rows, row)
	}
	return rows, nil
}

// CompactionRow is one restore scenario of the compaction ablation.
type CompactionRow struct {
	Scenario string
	// Checkpoints taken before the restore (1 full + the rest
	// incremental, all deduplicated).
	Checkpoints int
	RestoreMs   float64
	// Chunks resident in node 0's store at restore time, and the chunk
	// bytes compaction freed.
	StoreChunks int
	FreedMB     float64
}

// CompactionAblation shows what chain compaction buys: restore latency
// from (a) one fresh full deduplicated checkpoint, (b) a chain of 1 full
// + incs incremental deduplicated checkpoints with no GC, and (c) the
// same chain with auto-compaction folding it en route. The paper-level
// claim under test: compaction bounds restore latency after N
// incrementals near the fresh-full cost.
func CompactionAblation(n, incs int, scale float64) ([]CompactionRow, error) {
	scenarios := []struct {
		name        string
		ckpts       int
		autoCompact int
	}{
		{"fresh-full", 1, 0},
		{"chain", 1 + incs, 0},
		{"chain+compact", 1 + incs, 4},
	}
	var rows []CompactionRow
	for _, sc := range scenarios {
		cl, job, workers, err := slmClusterCfg(n, slmConfig(n, scale), false, false, nil, sc.autoCompact)
		if err != nil {
			return nil, err
		}
		for k := 0; k < sc.ckpts; k++ {
			opts := cruz.CheckpointOptions{Dedup: true, Incremental: k > 0}
			if _, cerr := cl.Checkpoint(job, opts); cerr != nil {
				return nil, fmt.Errorf("exp: compaction %s ckpt %d: %w", sc.name, k, cerr)
			}
			cl.Run(200 * cruz.Millisecond)
		}
		if err := checkWorkers(workers); err != nil {
			return nil, fmt.Errorf("exp: compaction %s: %w", sc.name, err)
		}
		for i := 0; i < n; i++ {
			cl.Pod(fmt.Sprintf("slm-%d", i)).Destroy()
		}
		res, rerr := cl.Restart(job, 0)
		if rerr != nil {
			return nil, fmt.Errorf("exp: compaction %s restart: %w", sc.name, rerr)
		}
		st := cl.Nodes[0].Store
		rows = append(rows, CompactionRow{
			Scenario:    sc.name,
			Checkpoints: sc.ckpts,
			RestoreMs:   res.Latency.Milliseconds(),
			StoreChunks: st.ChunkCount(),
			FreedMB:     float64(st.Stats().FreedBytes) / (1 << 20),
		})
	}
	return rows, nil
}

// PhasesDedup is the E1 phase decomposition for the content-addressed
// pipeline: deduplicated incremental checkpoints with the pipelined
// save path and auto-compaction, so the hash, dedup, and compact phases
// appear alongside the classic lifecycle.
func PhasesDedup(n, ckpts int, scale float64) (*PhasesResult, error) {
	autoCompact := ckpts - 1
	if autoCompact < 2 {
		autoCompact = 2
	}
	cl, job, workers, err := slmClusterCfg(n, slmConfig(n, scale), false, true, nil, autoCompact)
	if err != nil {
		return nil, err
	}
	for k := 0; k < ckpts; k++ {
		opts := cruz.CheckpointOptions{Dedup: true, Pipeline: true, Incremental: k > 0}
		if _, err := cl.Checkpoint(job, opts); err != nil {
			return nil, fmt.Errorf("exp: phases-dedup n=%d ckpt %d: %w", n, k, err)
		}
		cl.Run(500 * cruz.Millisecond)
	}
	if err := checkWorkers(workers); err != nil {
		return nil, err
	}
	dropped, err := traceHealth(cl)
	if err != nil {
		return nil, err
	}
	events := cl.Trace().Events()
	return &PhasesResult{
		Nodes:       n,
		Checkpoints: ckpts,
		Report:      trace.PhaseBreakdown(events),
		Events:      events,
		Dropped:     dropped,
	}, nil
}
