package ether

import (
	"testing"

	"cruz/internal/sim"
)

type testPayload struct {
	size int
	tag  string
}

func (p testPayload) WireSize() int { return p.size }

func mac(b byte) MAC { return MAC{0x02, 0, 0, 0, 0, b} }

type rig struct {
	engine *sim.Engine
	sw     *Switch
	nics   []*NIC
	rx     [][]Frame
}

func newRig(t *testing.T, n int, cfg LinkConfig) *rig {
	t.Helper()
	r := &rig{engine: sim.NewEngine(1), rx: make([][]Frame, n)}
	r.sw = NewSwitch(r.engine)
	for i := 0; i < n; i++ {
		i := i
		nic := NewNIC(r.engine, "nic", mac(byte(i+1)))
		nic.SetReceiver(func(f Frame) { r.rx[i] = append(r.rx[i], f) })
		r.sw.Attach(nic, cfg)
		r.nics = append(r.nics, nic)
	}
	return r
}

func TestUnknownUnicastFloods(t *testing.T) {
	r := newRig(t, 3, GigabitLink)
	r.nics[0].Send(Frame{Src: mac(1), Dst: mac(2), Type: TypeIPv4, Payload: testPayload{size: 100}})
	r.engine.Run()
	// Destination unlearned: flooded to ports 1 and 2; NIC 2 filters it.
	if len(r.rx[1]) != 1 {
		t.Fatalf("nic1 got %d frames, want 1", len(r.rx[1]))
	}
	if len(r.rx[2]) != 0 {
		t.Fatalf("nic2 got %d frames, want 0 (MAC filter)", len(r.rx[2]))
	}
	if r.nics[2].Stats.RxFiltered != 1 {
		t.Fatalf("nic2 RxFiltered = %d, want 1", r.nics[2].Stats.RxFiltered)
	}
	if r.sw.Stats.Flooded != 1 {
		t.Fatalf("Flooded = %d, want 1", r.sw.Stats.Flooded)
	}
}

func TestLearningDirectsSubsequentFrames(t *testing.T) {
	r := newRig(t, 3, GigabitLink)
	// nic1 speaks first so the switch learns its port.
	r.nics[1].Send(Frame{Src: mac(2), Dst: mac(1), Type: TypeIPv4, Payload: testPayload{size: 64}})
	r.engine.Run()
	r.nics[0].Send(Frame{Src: mac(1), Dst: mac(2), Type: TypeIPv4, Payload: testPayload{size: 64}})
	r.engine.Run()
	if got := r.sw.LearnedPortOf(mac(2)); got != r.nics[1] {
		t.Fatalf("LearnedPortOf(mac2) = %v", got)
	}
	if len(r.rx[1]) != 1 {
		t.Fatalf("nic1 frames = %d, want 1", len(r.rx[1]))
	}
	// nic2 never saw the directed frame: no flood.
	if r.nics[2].Stats.RxFiltered+r.nics[2].Stats.RxFrames != 1 {
		t.Fatalf("nic2 unexpectedly saw the directed frame")
	}
	if r.sw.Stats.Forwarded != 1 {
		t.Fatalf("Forwarded = %d, want 1", r.sw.Stats.Forwarded)
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	r := newRig(t, 4, GigabitLink)
	r.nics[0].Send(Frame{Src: mac(1), Dst: Broadcast, Type: TypeARP, Payload: testPayload{size: 28}})
	r.engine.Run()
	for i := 1; i < 4; i++ {
		if len(r.rx[i]) != 1 {
			t.Fatalf("nic%d got %d broadcast frames, want 1", i, len(r.rx[i]))
		}
	}
	if len(r.rx[0]) != 0 {
		t.Fatal("sender received its own broadcast")
	}
}

func TestPromiscuousReceivesForeignFrames(t *testing.T) {
	r := newRig(t, 3, GigabitLink)
	r.nics[2].SetPromiscuous(true)
	r.nics[0].Send(Frame{Src: mac(1), Dst: mac(2), Type: TypeIPv4, Payload: testPayload{size: 64}})
	r.engine.Run()
	if len(r.rx[2]) != 1 {
		t.Fatalf("promiscuous nic got %d frames, want 1", len(r.rx[2]))
	}
}

func TestMultipleMACsPerNIC(t *testing.T) {
	r := newRig(t, 2, GigabitLink)
	vifMAC := mac(0x77)
	r.nics[1].AddMAC(vifMAC)
	r.nics[0].Send(Frame{Src: mac(1), Dst: vifMAC, Type: TypeIPv4, Payload: testPayload{size: 64}})
	r.engine.Run()
	if len(r.rx[1]) != 1 {
		t.Fatalf("VIF MAC frame not delivered")
	}
	r.nics[1].RemoveMAC(vifMAC)
	r.sw.ForgetMAC(vifMAC)
	r.nics[0].Send(Frame{Src: mac(1), Dst: vifMAC, Type: TypeIPv4, Payload: testPayload{size: 64}})
	r.engine.Run()
	if len(r.rx[1]) != 1 {
		t.Fatalf("frame delivered after MAC removal")
	}
	// Primary MAC cannot be removed.
	r.nics[1].RemoveMAC(mac(2))
	if !r.nics[1].HasMAC(mac(2)) {
		t.Fatal("primary MAC was removed")
	}
}

func TestWireSizeMinimum(t *testing.T) {
	f := Frame{Payload: testPayload{size: 1}}
	if f.WireSize() != minFrameBytes {
		t.Fatalf("WireSize = %d, want %d", f.WireSize(), minFrameBytes)
	}
	f = Frame{Payload: testPayload{size: 1500}}
	if f.WireSize() != 1500+headerBytes+crcBytes {
		t.Fatalf("WireSize = %d", f.WireSize())
	}
}

func TestLatencyModel(t *testing.T) {
	// One 1500-byte frame over a gigabit link: serialization 2x (NIC out,
	// switch out) plus 2x 5µs latency.
	r := newRig(t, 2, GigabitLink)
	var arrival sim.Time
	r.nics[1].SetReceiver(func(Frame) { arrival = r.engine.Now() })
	r.nics[0].Send(Frame{Src: mac(1), Dst: Broadcast, Payload: testPayload{size: 1500 - headerBytes - crcBytes}})
	r.engine.Run()
	ser := GigabitLink.serialization(1500)
	want := sim.Time(0).Add(ser + GigabitLink.Latency + ser + GigabitLink.Latency)
	if arrival != want {
		t.Fatalf("arrival = %v, want %v", arrival, want)
	}
	if ser != sim.Duration(12*sim.Microsecond) {
		t.Fatalf("1500B @ 1Gb/s serialization = %v, want 12µs", ser)
	}
}

func TestBackToBackSendsSerialize(t *testing.T) {
	r := newRig(t, 2, GigabitLink)
	var arrivals []sim.Time
	r.nics[1].SetReceiver(func(Frame) { arrivals = append(arrivals, r.engine.Now()) })
	payload := testPayload{size: 1500 - headerBytes - crcBytes}
	for i := 0; i < 3; i++ {
		r.nics[0].Send(Frame{Src: mac(1), Dst: Broadcast, Payload: payload})
	}
	r.engine.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d, want 3", len(arrivals))
	}
	ser := GigabitLink.serialization(1500)
	for i := 1; i < 3; i++ {
		gap := arrivals[i].Sub(arrivals[i-1])
		if gap != ser {
			t.Fatalf("inter-frame gap %d = %v, want %v", i, gap, ser)
		}
	}
}

func TestSendDetached(t *testing.T) {
	e := sim.NewEngine(1)
	nic := NewNIC(e, "lonely", mac(9))
	if err := nic.Send(Frame{}); err != ErrDetached {
		t.Fatalf("err = %v, want ErrDetached", err)
	}
}

func TestDetachStopsDelivery(t *testing.T) {
	r := newRig(t, 2, GigabitLink)
	r.sw.Detach(r.nics[1])
	r.nics[0].Send(Frame{Src: mac(1), Dst: Broadcast, Payload: testPayload{size: 64}})
	r.engine.Run()
	if len(r.rx[1]) != 0 {
		t.Fatal("frame delivered to detached NIC")
	}
}

func TestLinkDownDropsBothDirections(t *testing.T) {
	r := newRig(t, 3, GigabitLink)
	r.sw.SetLinkDown(r.nics[1], true)
	r.nics[0].Send(Frame{Src: mac(1), Dst: Broadcast, Payload: testPayload{size: 64}})
	r.nics[1].Send(Frame{Src: mac(2), Dst: Broadcast, Payload: testPayload{size: 64}})
	r.engine.Run()
	if len(r.rx[1]) != 0 {
		t.Fatal("frame delivered over downed link")
	}
	if len(r.rx[2]) != 1 { // only nic0's broadcast arrives
		t.Fatalf("nic2 got %d frames, want 1", len(r.rx[2]))
	}
}

func TestDropRateLosesFrames(t *testing.T) {
	r := newRig(t, 2, GigabitLink)
	r.sw.SetDropRate(r.nics[0], 1.0)
	for i := 0; i < 10; i++ {
		r.nics[0].Send(Frame{Src: mac(1), Dst: Broadcast, Payload: testPayload{size: 64}})
	}
	r.engine.Run()
	if len(r.rx[1]) != 0 {
		t.Fatalf("frames delivered despite 100%% drop: %d", len(r.rx[1]))
	}
	if r.nics[0].Stats.Dropped != 10 {
		t.Fatalf("Dropped = %d, want 10", r.nics[0].Stats.Dropped)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Fatalf("String = %q", m.String())
	}
	if !Broadcast.IsBroadcast() || m.IsBroadcast() {
		t.Fatal("IsBroadcast misbehaves")
	}
	if !(MAC{}).IsZero() || m.IsZero() {
		t.Fatal("IsZero misbehaves")
	}
}
