// Package ether simulates the layer-2 substrate of the cluster: Ethernet
// MACs, frames, NICs, and a store-and-forward learning switch with
// configurable per-link bandwidth and latency.
//
// The paper's testbed is a gigabit Ethernet cluster; coordination-overhead
// results (Fig. 5b) are in the hundreds of microseconds, so frame
// serialization and switch latency must be modeled, not hand-waved.
// Network-address migration (§4.2) additionally requires MAC learning,
// gratuitous ARP visibility, multiple unicast MACs per NIC, and
// promiscuous mode — all implemented here.
package ether

import (
	"errors"
	"fmt"

	"cruz/internal/sim"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// String renders the address in the usual colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IsZero reports whether m is the zero address.
func (m MAC) IsZero() bool { return m == MAC{} }

// EtherType identifies the payload protocol of a frame.
type EtherType uint16

// EtherTypes used by the simulation.
const (
	TypeIPv4 EtherType = 0x0800
	TypeARP  EtherType = 0x0806
)

// Payload is the body of a frame. Payloads are kept as structured Go
// values rather than marshaled bytes — the simulation charges wire time
// based on WireSize, and checkpoint code never needs raw frame bytes.
type Payload interface {
	// WireSize returns the encoded size of the payload in bytes, used
	// for bandwidth accounting.
	WireSize() int
}

// Frame is an Ethernet frame.
type Frame struct {
	Src, Dst MAC
	Type     EtherType
	Payload  Payload
}

// Ethernet framing constants.
const (
	headerBytes   = 14
	crcBytes      = 4
	minFrameBytes = 64
	// MTU is the maximum payload (L3 packet) size per frame.
	MTU = 1500
)

// WireSize returns the frame's on-wire size in bytes including header,
// CRC, and minimum-size padding.
func (f Frame) WireSize() int {
	n := headerBytes + crcBytes
	if f.Payload != nil {
		n += f.Payload.WireSize()
	}
	if n < minFrameBytes {
		n = minFrameBytes
	}
	return n
}

// LinkConfig describes one attachment point (NIC-to-switch cable plus the
// switch's own forwarding cost for that port).
type LinkConfig struct {
	// BandwidthBPS is the link speed in bits per second.
	BandwidthBPS int64
	// Latency is the one-way propagation plus processing delay.
	Latency sim.Duration
}

// GigabitLink matches the paper's testbed: 1 Gb/s links through a
// store-and-forward switch.
var GigabitLink = LinkConfig{BandwidthBPS: 1_000_000_000, Latency: 5 * sim.Microsecond}

// serialization returns the time to clock size bytes onto the wire.
func (c LinkConfig) serialization(size int) sim.Duration {
	if c.BandwidthBPS <= 0 {
		return 0
	}
	return sim.Duration(int64(size) * 8 * int64(sim.Second) / c.BandwidthBPS)
}

// ErrDetached is returned when sending through a NIC with no switch port.
var ErrDetached = errors.New("ether: nic not attached to a switch")

// NIC is a simulated network interface card. A NIC can carry several
// unicast MAC addresses (the paper relies on hardware multi-MAC support or
// promiscuous mode for per-pod VIF MACs).
type NIC struct {
	engine  *sim.Engine
	name    string
	macs    map[MAC]bool
	primary MAC
	promisc bool
	port    *port
	recv    func(Frame)

	// txFree is when the transmitter finishes the current frame;
	// back-to-back sends queue behind it, modeling serialization.
	txFree sim.Time

	// Stats are cumulative transmit/receive counters.
	Stats NICStats
}

// NICStats counts NIC activity.
type NICStats struct {
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
	RxFiltered         uint64 // frames discarded by MAC filtering
	Dropped            uint64 // frames lost to link faults
}

// NewNIC returns a NIC with the given primary MAC address.
func NewNIC(engine *sim.Engine, name string, primary MAC) *NIC {
	return &NIC{
		engine:  engine,
		name:    name,
		macs:    map[MAC]bool{primary: true},
		primary: primary,
	}
}

// Name returns the NIC's name (e.g. "node3/eth0").
func (n *NIC) Name() string { return n.name }

// PrimaryMAC returns the NIC's burned-in address.
func (n *NIC) PrimaryMAC() MAC { return n.primary }

// AddMAC installs an additional unicast address (used for pod VIF MACs).
func (n *NIC) AddMAC(m MAC) { n.macs[m] = true }

// RemoveMAC removes a previously added address. The primary address cannot
// be removed.
func (n *NIC) RemoveMAC(m MAC) {
	if m != n.primary {
		delete(n.macs, m)
	}
}

// HasMAC reports whether the NIC currently accepts unicast frames to m.
func (n *NIC) HasMAC(m MAC) bool { return n.macs[m] }

// SetPromiscuous toggles promiscuous mode (accept all frames).
func (n *NIC) SetPromiscuous(v bool) { n.promisc = v }

// SetReceiver installs the upper-layer frame handler. Frames that pass MAC
// filtering are delivered to it.
func (n *NIC) SetReceiver(fn func(Frame)) { n.recv = fn }

// Send transmits a frame. The frame is serialized at link speed, crosses
// the link, and is forwarded by the switch; delivery to the destination
// NIC(s) happens in virtual time.
func (n *NIC) Send(f Frame) error {
	if n.port == nil {
		return ErrDetached
	}
	size := f.WireSize()
	cfg := n.port.cfg
	start := n.engine.Now()
	if n.txFree > start {
		start = n.txFree
	}
	done := start.Add(cfg.serialization(size))
	n.txFree = done
	n.Stats.TxFrames++
	n.Stats.TxBytes += uint64(size)
	p := n.port
	n.engine.ScheduleAt(done.Add(cfg.Latency), func() { p.sw.forward(p, f) })
	return nil
}

// deliver is invoked by the switch when a frame arrives at this NIC.
func (n *NIC) deliver(f Frame) {
	accept := n.promisc || f.Dst.IsBroadcast() || n.macs[f.Dst]
	if !accept {
		n.Stats.RxFiltered++
		return
	}
	n.Stats.RxFrames++
	n.Stats.RxBytes += uint64(f.WireSize())
	if n.recv != nil {
		n.recv(f)
	}
}

// port is one switch port with its attached NIC and output-side state.
type port struct {
	sw     *Switch
	nic    *NIC
	cfg    LinkConfig
	txFree sim.Time // when the switch-side transmitter frees up
	down   bool
	// dropRate in [0,1] models a faulty cable; used by failure-injection
	// tests.
	dropRate float64
}

// Switch is a store-and-forward learning Ethernet switch.
type Switch struct {
	engine *sim.Engine
	ports  []*port
	// table maps learned source MACs to ports.
	table map[MAC]*port
	// Stats counts forwarding decisions.
	Stats SwitchStats
}

// SwitchStats counts switch activity.
type SwitchStats struct {
	Forwarded uint64 // unicast frames sent to a learned port
	Flooded   uint64 // frames flooded (broadcast or unknown destination)
}

// NewSwitch returns an empty switch.
func NewSwitch(engine *sim.Engine) *Switch {
	return &Switch{engine: engine, table: make(map[MAC]*port)}
}

// Attach connects a NIC to a new switch port using the given link
// configuration.
func (s *Switch) Attach(n *NIC, cfg LinkConfig) {
	p := &port{sw: s, nic: n, cfg: cfg}
	s.ports = append(s.ports, p)
	n.port = p
}

// Detach disconnects a NIC from the switch, simulating a pulled cable.
func (s *Switch) Detach(n *NIC) {
	for i, p := range s.ports {
		if p.nic == n {
			s.ports = append(s.ports[:i], s.ports[i+1:]...)
			n.port = nil
			for m, tp := range s.table {
				if tp == p {
					delete(s.table, m)
				}
			}
			return
		}
	}
}

// SetLinkDown marks the NIC's link up or down; frames in either direction
// are silently lost while down.
func (s *Switch) SetLinkDown(n *NIC, down bool) {
	if n.port != nil {
		n.port.down = down
	}
}

// SetDropRate sets a random frame-loss probability on the NIC's link, for
// fault-injection tests. The probability applies independently per frame.
func (s *Switch) SetDropRate(n *NIC, rate float64) {
	if n.port != nil {
		n.port.dropRate = rate
	}
}

// forward handles a frame that has fully arrived at ingress port in.
func (s *Switch) forward(in *port, f Frame) {
	if in.down {
		in.nic.Stats.Dropped++
		return
	}
	if in.dropRate > 0 && s.engine.Rand().Float64() < in.dropRate {
		in.nic.Stats.Dropped++
		return
	}
	// Learn the source address.
	if !f.Src.IsBroadcast() && !f.Src.IsZero() {
		s.table[f.Src] = in
	}
	if !f.Dst.IsBroadcast() {
		if out, ok := s.table[f.Dst]; ok {
			if out != in {
				s.Stats.Forwarded++
				s.transmit(out, f)
			}
			return
		}
	}
	// Flood: broadcast or unknown unicast.
	s.Stats.Flooded++
	for _, out := range s.ports {
		if out != in {
			s.transmit(out, f)
		}
	}
}

// transmit clocks a frame out of a switch port toward its NIC.
func (s *Switch) transmit(out *port, f Frame) {
	if out.down {
		return
	}
	if out.dropRate > 0 && s.engine.Rand().Float64() < out.dropRate {
		return
	}
	size := f.WireSize()
	start := s.engine.Now()
	if out.txFree > start {
		start = out.txFree
	}
	done := start.Add(out.cfg.serialization(size))
	out.txFree = done
	nic := out.nic
	s.engine.ScheduleAt(done.Add(out.cfg.Latency), func() { nic.deliver(f) })
}

// ForgetMAC drops a learned table entry, forcing the next frame to that
// MAC to flood. Gratuitous ARP after migration normally re-teaches the
// switch; this hook lets tests exercise the flooding path.
func (s *Switch) ForgetMAC(m MAC) { delete(s.table, m) }

// LearnedPortOf reports which attached NIC the switch currently associates
// with MAC m, or nil if unlearned. Exposed for tests of migration
// behaviour.
func (s *Switch) LearnedPortOf(m MAC) *NIC {
	if p, ok := s.table[m]; ok {
		return p.nic
	}
	return nil
}
