package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder derives the tree's mutex acquisition graph from static
// call facts and reports ordering hazards:
//
//   - cycles in the lock-order graph (lock A held while taking B in
//     one function, B held while taking A in another — the classic
//     cross-daemon deadlock shape from the paper's coordinator/agent
//     split);
//   - the same lock acquired again while already held;
//   - locks held across blocking scheduler yields (sim.Engine.Run /
//     RunUntil / RunFor / Step, or any function that transitively
//     reaches one): holding a mutex while the discrete-event engine
//     dispatches arbitrary events invites both deadlock and
//     event-order-dependent critical sections.
//
// Lock identity is structural: a field lock is keyed by its declaring
// struct type and field name (all instances alias), a package-level
// lock by its qualified name, a local lock by its defining function.
// Held sets are tracked in source order within each function
// (straight-line approximation, Unlock anywhere ends the hold; defer
// Unlock holds to function end), and propagated across the static
// call graph by a whole-program fixpoint in the Finish phase.
var LockOrder = &Analyzer{
	Name:   "lockorder",
	Doc:    "report mutex acquisition cycles and locks held across blocking scheduler yields",
	Run:    runLockOrder,
	Finish: finishLockOrder,
}

// yieldFuncs are the blocking scheduler entry points: calling one with
// a lock held means the lock is held across arbitrary event dispatch.
var yieldFuncs = map[string]bool{
	"cruz/internal/sim.(Engine).Run":      true,
	"cruz/internal/sim.(Engine).RunUntil": true,
	"cruz/internal/sim.(Engine).RunFor":   true,
	"cruz/internal/sim.(Engine).Step":     true,
}

type lockEdge struct {
	from, to string
	pos      token.Position
}

type lockCall struct {
	held   []string // lock keys held at the call site (may be empty)
	callee string   // funcKey of a statically resolved callee
	name   string   // display name of the callee
	pos    token.Position
}

type lockFuncInfo struct {
	acquires map[string]token.Position // locks taken directly in this function
	edges    []lockEdge
	calls    []lockCall
	yields   bool // calls a yield function directly
}

// lockFacts is the per-package fact exported for Finish.
type lockFacts struct {
	funcs map[string]*lockFuncInfo // funcKey → info
}

func runLockOrder(pass *Pass) {
	facts := &lockFacts{funcs: make(map[string]*lockFuncInfo)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			info := analyzeLockFunc(pass, fn, fd.Body)
			if info != nil {
				facts.funcs[funcKey(fn)] = info
			}
		}
	}
	if len(facts.funcs) > 0 {
		pass.ExportFact(facts)
	}
}

// syncLockMethod classifies a call as a lock-table operation on a
// sync.Mutex/RWMutex (including embedded ones), returning the method
// name and the expression denoting the lock, or "".
func syncLockMethod(pass *Pass, call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || pkgPathOf(fn) != "sync" {
		return "", nil
	}
	rpkg, rname := recvTypeName(fn)
	if rpkg != "sync" || (rname != "Mutex" && rname != "RWMutex") {
		return "", nil
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
		return fn.Name(), lockExprOf(pass, sel.X)
	}
	return "", nil
}

// lockExprOf peels `x.mu` down to the expression that denotes the
// mutex itself; for a receiver that embeds the mutex it is the
// receiver.
func lockExprOf(_ *Pass, x ast.Expr) ast.Expr { return ast.Unparen(x) }

// lockKeyOf names a lock structurally. Two expressions that reach the
// same struct field get the same key.
func lockKeyOf(pass *Pass, owner *types.Func, x ast.Expr) string {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if fv, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && fv.IsField() {
			// Key by the declaring struct type of the field.
			if tv, ok := pass.TypesInfo.Types[x.X]; ok {
				t := tv.Type
				if p, ok := t.Underlying().(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					return pkgPathOf(named.Obj()) + "." + named.Obj().Name() + "." + fv.Name()
				}
			}
			return pkgPathOf(fv) + ".?." + fv.Name()
		}
		if v, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
			return pkgPathOf(v) + "." + v.Name()
		}
	case *ast.Ident:
		obj, _ := pass.TypesInfo.Uses[x].(*types.Var)
		if obj == nil {
			break
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return pkgPathOf(obj) + "." + obj.Name() // package-level lock
		}
		// Local or receiver-bound lock: scope it to the function.
		return funcKey(owner) + "/" + obj.Name()
	}
	return funcKey(owner) + "/expr" // opaque expression: per-site key
}

func analyzeLockFunc(pass *Pass, fn *types.Func, body *ast.BlockStmt) *lockFuncInfo {
	info := &lockFuncInfo{acquires: make(map[string]token.Position)}
	var held []string // in acquisition order
	heldSet := func(k string) bool {
		for _, h := range held {
			if h == k {
				return true
			}
		}
		return false
	}
	drop := func(k string) {
		for i, h := range held {
			if h == k {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	// Source-order walk. Function literals are included: their bodies
	// execute with whatever the enclosing code holds (a straight-line
	// approximation; see the analyzer doc).
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, lockX := syncLockMethod(pass, call); op != "" {
			key := lockKeyOf(pass, fn, lockX)
			pos := pass.Fset.Position(call.Pos())
			switch op {
			case "Lock", "RLock", "TryLock", "TryRLock":
				if heldSet(key) {
					pass.Reportf(call.Pos(), "lock %s acquired while already held (self-deadlock or missing unlock)", shortLockKey(key))
				}
				for _, h := range held {
					info.edges = append(info.edges, lockEdge{from: h, to: key, pos: pos})
				}
				if _, ok := info.acquires[key]; !ok {
					info.acquires[key] = pos
				}
				held = append(held, key)
			case "Unlock", "RUnlock":
				// A deferred unlock holds to function end; an inline
				// unlock ends the hold here.
				if !isDeferredCall(body, call) {
					drop(key)
				}
			}
			return true
		}
		callee := calleeOf(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		key := funcKey(callee)
		if yieldFuncs[key] || callee.Name() == "Yield" {
			info.yields = true
			if len(held) > 0 {
				pass.Reportf(call.Pos(), "lock %s held across blocking scheduler yield %s", shortLockKey(held[len(held)-1]), calleeName(pass, call))
			}
			return true
		}
		if len(held) > 0 || callee.Pkg() != nil {
			info.calls = append(info.calls, lockCall{
				held:   append([]string(nil), held...),
				callee: key,
				name:   calleeName(pass, call),
				pos:    pass.Fset.Position(call.Pos()),
			})
		}
		return true
	})
	if len(info.acquires) == 0 && len(info.calls) == 0 && !info.yields {
		return nil
	}
	return info
}

// isDeferredCall reports whether call is the immediate call of a defer
// statement in body.
func isDeferredCall(body *ast.BlockStmt, call *ast.CallExpr) bool {
	deferred := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Call == call {
			deferred = true
		}
		return !deferred
	})
	return deferred
}

func shortLockKey(k string) string {
	if i := strings.LastIndex(k, "/"); i >= 0 {
		k = k[i+1:]
	}
	parts := strings.Split(k, ".")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, ".")
}

func finishLockOrder(s *Suite) {
	// Merge per-package facts into one function table.
	funcs := make(map[string]*lockFuncInfo)
	for _, v := range s.Facts("lockorder") {
		for k, info := range v.(*lockFacts).funcs {
			funcs[k] = info
		}
	}
	if len(funcs) == 0 {
		return
	}

	// Fixpoint: transitive acquires and yield-reachability over the
	// static call graph.
	acqT := make(map[string]map[string]bool, len(funcs))
	yieldT := make(map[string]bool, len(funcs))
	for k, info := range funcs {
		set := make(map[string]bool, len(info.acquires))
		for a := range info.acquires {
			set[a] = true
		}
		acqT[k] = set
		yieldT[k] = info.yields
	}
	for changed := true; changed; {
		changed = false
		for k, info := range funcs {
			for _, c := range info.calls {
				if yieldFuncs[c.callee] || yieldT[c.callee] {
					if !yieldT[k] {
						yieldT[k] = true
						changed = true
					}
				}
				for a := range acqT[c.callee] {
					if !acqT[k][a] {
						acqT[k][a] = true
						changed = true
					}
				}
			}
		}
	}

	// Assemble the global edge set: direct edges plus held-set ×
	// transitive-acquires of callees; flag held-across-yield calls.
	type edgeKey struct{ from, to string }
	edges := make(map[edgeKey]token.Position)
	addEdge := func(from, to string, pos token.Position) {
		k := edgeKey{from, to}
		if _, ok := edges[k]; !ok {
			edges[k] = pos
		}
	}
	for _, info := range funcs {
		for _, e := range info.edges {
			addEdge(e.from, e.to, e.pos)
		}
		for _, c := range info.calls {
			if len(c.held) == 0 {
				continue
			}
			if yieldFuncs[c.callee] || yieldT[c.callee] {
				s.ReportFinish("lockorder", c.pos, "lock %s held across call to %s, which blocks on the scheduler", shortLockKey(c.held[len(c.held)-1]), c.name)
			}
			for _, h := range c.held {
				for a := range acqT[c.callee] {
					addEdge(h, a, c.pos)
				}
			}
		}
	}

	// Cycle detection over the lock graph.
	adj := make(map[string][]string)
	for e := range edges {
		if e.from == e.to {
			continue // self-acquisition is reported at the site during Run
		}
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, ts := range adj {
		sort.Strings(ts)
	}
	for _, cyc := range lockCycles(adj) {
		parts := make([]string, len(cyc))
		for i, k := range cyc {
			parts[i] = shortLockKey(k)
		}
		pos := edges[edgeKey{cyc[len(cyc)-1], cyc[0]}]
		if pos.Line == 0 {
			pos = edges[edgeKey{cyc[0], cyc[1%len(cyc)]}]
		}
		s.ReportFinish("lockorder", pos, "lock-order cycle: %s -> %s (deadlock risk)", strings.Join(parts, " -> "), parts[0])
	}
}

// lockCycles returns the elementary cycles found by DFS over adj, each
// normalized to start at its lexicographically smallest node, deduped.
func lockCycles(adj map[string][]string) [][]string {
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	seen := make(map[string]bool)
	var out [][]string
	var stack []string
	onStack := make(map[string]int)
	var dfs func(n string)
	dfs = func(n string) {
		if depth, ok := onStack[n]; ok {
			cyc := append([]string(nil), stack[depth:]...)
			cyc = normalizeCycle(cyc)
			key := strings.Join(cyc, "\x00")
			if !seen[key] {
				seen[key] = true
				out = append(out, cyc)
			}
			return
		}
		onStack[n] = len(stack)
		stack = append(stack, n)
		for _, m := range adj[n] {
			dfs(m)
		}
		stack = stack[:len(stack)-1]
		delete(onStack, n)
	}
	for _, n := range nodes {
		dfs(n)
	}
	return out
}

func normalizeCycle(cyc []string) []string {
	min := 0
	for i, s := range cyc {
		if s < cyc[min] {
			min = i
		}
	}
	out := make([]string, 0, len(cyc))
	out = append(out, cyc[min:]...)
	out = append(out, cyc[:min]...)
	return out
}
