package analysis

import (
	"go/ast"
	"go/types"
)

// This file is the interprocedural half of cruzvet: per-function effect
// summaries, computed bottom-up over the loaded package graph and shared
// by the resource-lifecycle and protocol analyzers (poolleak,
// oplifecycle, ctxprop, errdrop).
//
// A summary answers "what does calling this function do to its
// arguments" without the caller having to see the body: "releases arg i
// to pool P", "terminates the op passed as arg i", "propagates the
// trace context passed as arg i onto the wire or into a child span",
// "every error this function returns is nil". The path-sensitive
// analyzers then treat a call to a summarized helper exactly like the
// base operation itself, so the checks see through one-or-more helper
// levels instead of going silent at the first wrapper.
//
// Resolution order mirrors lockorder's whole-program fixpoint, but can
// be eager instead of deferred: Load returns packages in `go list
// -deps` post-order (every dependency before its importers), and Go
// forbids import cycles, so by the time a package is summarized every
// cross-package callee already has its final summary. Within a package,
// mutual recursion is possible and the computation iterates to a
// fixpoint. Summaries are exported as per-package facts (analyzer key
// "effects") so tests and Finish hooks can inspect them.
//
// Function literals are deliberately excluded when collecting a
// function's own effects: a closure handed to a callback or the
// scheduler runs later (or never), so its body must not count as
// something the call performs. Deferred direct calls do count — a
// `defer c.putFrameBuf(b)` is guaranteed on every return path.

// recvIndex is the pseudo parameter index of a method receiver in a
// FuncEffects map.
const recvIndex = -1

// FuncEffects is one function's interprocedural summary. Keys are
// parameter indices (0-based; recvIndex for the receiver).
type FuncEffects struct {
	// Releases maps a parameter to the buffer pool ("frame", "seg") the
	// function returns it to on some path.
	Releases map[int]string
	// Terminates marks *ctl.Op parameters whose eventual completion the
	// function guarantees: it calls Fail, Finish, ArmTimeout, or
	// ArmRetries on them (directly or transitively).
	Terminates map[int]bool
	// Propagates marks trace.SpanContext parameters the function carries
	// onward: into SendCtx, BeginChild, InstantCtx, or a callee that
	// itself propagates.
	Propagates map[int]bool
	// NilErr reports that every value the function returns in its error
	// result is the nil constant — callers may discard it.
	NilErr bool
}

// pkgEffects is the per-package fact exported under the "effects" key:
// funcKey → summary, for every function declared in the package.
type pkgEffects struct {
	funcs map[string]*FuncEffects
}

// poolPutNames maps the release-method naming convention to its pool.
// Recognition is by method name (any receiver), so the ctl frame pool,
// the tcpip segment free list, and fixture pools all match without a
// hard dependency on one package.
var poolPutNames = map[string]string{
	"putFrameBuf": "frame",
	"putSegBuf":   "seg",
}

// poolGetNames maps the acquisition-method naming convention to its pool.
var poolGetNames = map[string]string{
	"getFrameBuf": "frame",
	"getSegBuf":   "seg",
}

// opTerminators are the ctl.Op methods that guarantee the op's eventual
// completion: immediate (Fail/Finish) or armed (a timeout always ends in
// Fail unless something else completes the op first).
var opTerminators = map[string]bool{
	"cruz/internal/ctl.(Op).Fail":       true,
	"cruz/internal/ctl.(Op).Finish":     true,
	"cruz/internal/ctl.(Op).ArmTimeout": true,
	"cruz/internal/ctl.(Op).ArmRetries": true,
}

// ctxSinkParams maps the base trace-context sinks to the parameter
// index that adopts the context.
var ctxSinkParams = map[string]int{
	"cruz/internal/ctl.(Conn).SendCtx":        1,
	"cruz/internal/trace.(Tracer).BeginChild": 0,
	"cruz/internal/trace.(Tracer).InstantCtx": 0,
}

// effectsFor returns the whole-program summary table, computing and
// exporting this package's entries on first use. Analyzers call it from
// Run; because packages arrive in dependency order, lookups for
// imported packages always see finished summaries (packages outside the
// analyzed set simply have none — conservative silence).
func effectsFor(pass *Pass) map[string]*FuncEffects {
	s := pass.Suite
	if s.effects == nil {
		s.effects = make(map[string]*FuncEffects)
		s.effectsDone = make(map[string]bool)
	}
	if !s.effectsDone[pass.Pkg.Path()] {
		s.effectsDone[pass.Pkg.Path()] = true
		computeEffects(pass, s.effects)
	}
	return s.effects
}

// effectDecl is one function declaration being summarized.
type effectDecl struct {
	key       string
	body      *ast.BlockStmt
	params    map[*types.Var]int // receiver and parameters → index
	ctxParams map[int]*types.Var // SpanContext-typed parameters
	hasErr    bool               // last result is error
}

func computeEffects(pass *Pass, merged map[string]*FuncEffects) {
	var decls []*effectDecl
	exported := &pkgEffects{funcs: make(map[string]*FuncEffects)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sig := fn.Type().(*types.Signature)
			d := &effectDecl{
				key:    funcKey(fn),
				body:   fd.Body,
				params: make(map[*types.Var]int),
			}
			if r := sig.Recv(); r != nil {
				d.params[r] = recvIndex
			}
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				d.params[p] = i
				if isSpanContextType(p.Type()) && p.Name() != "" && p.Name() != "_" {
					if d.ctxParams == nil {
						d.ctxParams = make(map[int]*types.Var)
					}
					d.ctxParams[i] = p
				}
			}
			if n := sig.Results().Len(); n > 0 && isErrorType(sig.Results().At(n-1).Type()) {
				d.hasErr = true
			}
			eff := &FuncEffects{
				Releases:   make(map[int]string),
				Terminates: make(map[int]bool),
				Propagates: make(map[int]bool),
			}
			merged[d.key] = eff
			exported.funcs[d.key] = eff
			decls = append(decls, d)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if summarizeOne(pass, d, merged) {
				changed = true
			}
		}
	}
	// Exported under a reserved analyzer key shared by all consumers.
	pass.Suite.facts[factKey{"effects", pass.Pkg.Path()}] = exported
}

// summarizeOne rescans one declaration against the current summary
// table, reporting whether its own summary grew.
func summarizeOne(pass *Pass, d *effectDecl, merged map[string]*FuncEffects) bool {
	eff := merged[d.key]
	changed := false
	setRelease := func(i int, pool string) {
		if eff.Releases[i] != pool {
			eff.Releases[i] = pool
			changed = true
		}
	}
	setTerm := func(i int) {
		if !eff.Terminates[i] {
			eff.Terminates[i] = true
			changed = true
		}
	}
	setProp := func(i int) {
		if !eff.Propagates[i] {
			eff.Propagates[i] = true
			changed = true
		}
	}
	paramOf := func(e ast.Expr) (int, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return 0, false
		}
		v, _ := pass.TypesInfo.Uses[id].(*types.Var)
		if v == nil {
			return 0, false
		}
		i, ok := d.params[v]
		return i, ok
	}

	walkShallow(d.body, func(s ast.Stmt) {
		for _, call := range stmtCalls(s) {
			fn := calleeOf(pass.TypesInfo, call)
			if fn == nil {
				continue
			}
			key := funcKey(fn)
			recvX := callReceiver(fn, call)

			// Base pool release: c.putFrameBuf(b) / s.putSegBuf(b).
			if pool, ok := poolPutNames[fn.Name()]; ok && recvX != nil && len(call.Args) == 1 {
				if i, ok := paramOf(call.Args[0]); ok {
					setRelease(i, pool)
				}
			}
			// Base op terminators: op.Fail / Finish / ArmTimeout / ArmRetries.
			if opTerminators[key] && recvX != nil {
				if i, ok := paramOf(recvX); ok {
					setTerm(i)
				}
			}
			// Base context sinks.
			if argIdx, ok := ctxSinkParams[key]; ok && argIdx < len(call.Args) {
				if i, ok := paramOf(call.Args[argIdx]); ok {
					setProp(i)
				}
			}
			// Transitive effects through a summarized callee.
			ce := merged[key]
			if ce == nil {
				continue
			}
			lift := func(calleeIdx int, apply func(int)) {
				var arg ast.Expr
				if calleeIdx == recvIndex {
					arg = recvX
				} else if calleeIdx < len(call.Args) {
					arg = call.Args[calleeIdx]
				}
				if arg == nil {
					return
				}
				if i, ok := paramOf(arg); ok {
					apply(i)
				}
			}
			for j, pool := range ce.Releases {
				pool := pool
				lift(j, func(i int) { setRelease(i, pool) })
			}
			for j := range ce.Terminates {
				lift(j, setTerm)
			}
			for j := range ce.Propagates {
				lift(j, setProp)
			}
		}
	})

	// SpanContext parameters: the full propagation classifier (ctxprop.go)
	// decides — base sinks and summarized callees, but also field reads
	// (manual adoption), stores, returns, and closure captures. Running
	// it inside the fixpoint lets `f(ctx){ g(ctx) }` become propagating
	// the moment g does.
	for i, p := range d.ctxParams {
		if !eff.Propagates[i] && ctxParamPropagates(pass, merged, d.body, p) {
			setProp(i)
		}
	}

	if d.hasErr && !eff.NilErr && returnsOnlyNilErr(pass, d, merged) {
		eff.NilErr = true
		changed = true
	}
	return changed
}

// returnsOnlyNilErr reports whether every return statement at the
// function's own nesting level yields nil (or a NilErr callee's result)
// in the error position. Bare returns of named results are conservatively
// treated as possibly non-nil.
func returnsOnlyNilErr(pass *Pass, d *effectDecl, merged map[string]*FuncEffects) bool {
	allNil := true
	walkShallow(d.body, func(s ast.Stmt) {
		ret, ok := s.(*ast.ReturnStmt)
		if !ok || !allNil {
			return
		}
		if len(ret.Results) == 0 {
			allNil = false // bare return: named error may hold anything
			return
		}
		last := ast.Unparen(ret.Results[len(ret.Results)-1])
		switch e := last.(type) {
		case *ast.Ident:
			if _, isNil := pass.TypesInfo.Uses[e].(*types.Nil); isNil {
				return
			}
		case *ast.CallExpr:
			if fn := calleeOf(pass.TypesInfo, e); fn != nil {
				if ce := merged[funcKey(fn)]; ce != nil && ce.NilErr {
					return
				}
			}
		}
		allNil = false
	})
	return allNil
}

// callReceiver returns the receiver expression of a method call
// (x in x.m(...)), or nil when fn is not a method or the call is not in
// selector form.
func callReceiver(fn *types.Func, call *ast.CallExpr) ast.Expr {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return ast.Unparen(sel.X)
}

// stmtCalls returns the call expressions appearing at the statement's
// own level: expression and defer statements, assignment right-hand
// sides, and return results. Calls nested deeper (inside composite
// statements, which own their own CFG nodes, or function literals) are
// not included.
func stmtCalls(s ast.Stmt) []*ast.CallExpr {
	var out []*ast.CallExpr
	add := func(e ast.Expr) {
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
			out = append(out, call)
		}
	}
	switch s := s.(type) {
	case *ast.ExprStmt:
		add(s.X)
	case *ast.DeferStmt:
		out = append(out, s.Call)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			add(r)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			add(r)
		}
	}
	return out
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

var errorType = types.Universe.Lookup("error").Type()

// isSpanContextType reports whether t is trace.SpanContext.
func isSpanContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return pkgPathOf(obj) == "cruz/internal/trace" && obj.Name() == "SpanContext"
}
