package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags discarded error results on sim-side recovery,
// migration, and takeover paths.
//
// These are exactly the paths the chaos-campaign roadmap item drives:
// an error silently dropped during an abort or failover turns an
// injected fault into a wrong answer instead of a detected failure.
// The check applies only to callees inside this module — dropping an
// error from the standard library is out of scope — and only in
// sim-side internal packages (examples and cmd binaries may shed
// errors for brevity).
//
// Interprocedural refinement: a callee whose summary proves it always
// returns a nil error (directly or through helpers) is exempt, so
// infallible-by-construction functions don't force ritual `_ =`
// plumbing. Intentional fire-and-forget sites carry a
// //cruzvet:allow errdrop with the reason, or — for whole protocol
// layers with a documented error model — an entry in errDropExempt.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flag discarded error results from module-internal calls on sim-side paths",
	Run:  runErrDrop,
}

// errDropExempt lists callees whose error result is legitimately
// fire-and-forget everywhere, with the documented reason. Kept small
// on purpose: site-specific exceptions belong in //cruzvet:allow.
var errDropExempt = map[string]bool{
	// A failed control-plane send means the conn died; that surfaces
	// through the connection's onErr callback and lease expiry, never
	// through the per-send error. All fan-out senders drop it.
	"cruz/internal/core.(ctlConn).send": true,
	"cruz/internal/core.(msgSink).send": true,
	// The link layer is lossy by contract: a frame that cannot be
	// transmitted is indistinguishable from one dropped by the switch,
	// and ARP retry / TCP retransmission recover either way.
	"cruz/internal/ether.(NIC).Send": true,
}

func runErrDrop(pass *Pass) {
	if !pass.Suite.SimSide(pass.Pkg.Path()) || !strings.HasPrefix(pass.Pkg.Path(), "cruz/internal/") {
		return
	}
	effects := effectsFor(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
					checkDroppedCall(pass, effects, call, "")
				}
			case *ast.GoStmt:
				checkDroppedCall(pass, effects, s.Call, "")
			case *ast.DeferStmt:
				checkDroppedCall(pass, effects, s.Call, "deferred ")
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, effects, s)
			}
			return true
		})
	}
}

// checkDroppedCall reports a bare call statement whose callee returns
// an error that nothing receives.
func checkDroppedCall(pass *Pass, effects map[string]*FuncEffects, call *ast.CallExpr, kind string) {
	fn := errReturningCruzCallee(pass, effects, call)
	if fn == nil {
		return
	}
	pass.Reportf(call.Pos(), "%serror result of %s discarded on a sim-side path: handle it or annotate //cruzvet:allow errdrop <reason>",
		kind, fn.Name())
}

// checkBlankErrAssign reports `x, _ := f()` where the blanked position
// is f's error result.
func checkBlankErrAssign(pass *Pass, effects map[string]*FuncEffects, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := errReturningCruzCallee(pass, effects, call)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	if len(as.Lhs) != res.Len() {
		return
	}
	for i := 0; i < res.Len(); i++ {
		if !isErrorType(res.At(i).Type()) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(id.Pos(), "error result of %s assigned to _ on a sim-side path: handle it or annotate //cruzvet:allow errdrop <reason>",
				fn.Name())
		}
	}
}

// errReturningCruzCallee resolves the callee if it is a module-internal
// function returning a non-exempt, possibly-non-nil error.
func errReturningCruzCallee(pass *Pass, effects map[string]*FuncEffects, call *ast.CallExpr) *types.Func {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	if !strings.HasPrefix(pkgPathOf(fn), "cruz") {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	res := sig.Results()
	hasErr := false
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			hasErr = true
		}
	}
	if !hasErr {
		return nil
	}
	key := funcKey(fn)
	if errDropExempt[key] {
		return nil
	}
	if eff := effects[key]; eff != nil && eff.NilErr {
		return nil
	}
	return fn
}
