package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags `for range` over a map whose loop body reaches
// sim-visible state.
//
// Go randomizes map iteration order, so anything order-sensitive done
// per entry — emitting trace events, scheduling engine events, sending
// on the control plane or the simulated network, writing or encoding
// bytes — makes the run's observable output differ between two
// executions of the same seed. The fix is to iterate a sorted key
// slice (a sortedKeys-style helper) instead of the map itself;
// genuinely order-insensitive loops can be annotated
// //cruzvet:allow maporder <reason>.
//
// The check is a lightweight taint walk over the loop body (function
// literals included): it looks for calls that emit — by qualified name
// for the trace and sim packages, and by method-name prefix (Send*,
// Write*, Encode*, Emit*, Print*/Fprint*) elsewhere — and for calls to
// same-package helpers whose own body directly emits. Pure
// accumulation (sums, sets, collect-then-sort) is not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose body reaches order-sensitive (sim-visible) sinks",
	Run:  runMapOrder,
}

// sinkMethodPrefixes are method/function name prefixes treated as
// order-sensitive emission regardless of receiver: network and
// control-plane sends, byte-stream writes (io.Writer, bytes.Buffer,
// strings.Builder, hash.Hash), encoders, trace emitters, and printing.
var sinkMethodPrefixes = []string{"Send", "Write", "Encode", "Emit", "Print", "Fprint"}

// qualifiedSinks maps funcKey identifiers to a short description, for
// sinks whose names do not match the prefix heuristic.
var qualifiedSinks = map[string]string{
	"cruz/internal/trace.(Tracer).Instant":  "emits a trace event",
	"cruz/internal/trace.(Tracer).Counter":  "emits a trace event",
	"cruz/internal/trace.(Tracer).Begin":    "emits a trace event",
	"cruz/internal/trace.(Span).End":        "emits a trace event",
	"cruz/internal/sim.(Engine).Schedule":   "enqueues a scheduler event",
	"cruz/internal/sim.(Engine).ScheduleAt": "enqueues a scheduler event",
	"cruz/internal/sim.(Engine).NewTicker":  "enqueues a scheduler event",
}

func runMapOrder(pass *Pass) {
	// sinkyLocals: same-package functions whose body directly contains
	// a sink call, for one level of taint through helpers.
	sinkyLocals := make(map[*types.Func]string)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if _, why := findDirectSink(pass, fd.Body, nil); why != "" {
				sinkyLocals[fn] = why
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok || !isMapType(tv.Type) {
				return true
			}
			if call, why := findDirectSink(pass, rng.Body, sinkyLocals); call != nil {
				pass.Reportf(rng.Pos(), "map iteration order reaches a sim-visible sink: %s %s; iterate sorted keys instead", calleeName(pass, call), why)
			}
			return true
		})
	}
}

// findDirectSink walks body (descending into function literals) and
// returns the first order-sensitive sink call, with a description of
// why it is a sink. sinkyLocals, if non-nil, extends the walk one
// level into same-package helpers.
func findDirectSink(pass *Pass, body ast.Node, sinkyLocals map[*types.Func]string) (*ast.CallExpr, string) {
	var found *ast.CallExpr
	var why string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if w := sinkWhy(fn); w != "" {
			found, why = call, w
			return false
		}
		if w, ok := sinkyLocals[fn]; ok {
			found, why = call, "calls a helper that "+w
			return false
		}
		return true
	})
	return found, why
}

// sinkWhy classifies fn as an order-sensitive sink, returning a short
// reason or "".
func sinkWhy(fn *types.Func) string {
	if why, ok := qualifiedSinks[funcKey(fn)]; ok {
		return why
	}
	name := fn.Name()
	// Sprint*/Sprintf are pure: they build a value rather than emit.
	if strings.HasPrefix(name, "Sprint") {
		return ""
	}
	for _, p := range sinkMethodPrefixes {
		if strings.HasPrefix(name, p) {
			return "emits in iteration order (" + name + ")"
		}
	}
	return ""
}

func calleeName(pass *Pass, call *ast.CallExpr) string {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil {
		return "call"
	}
	if _, rname := recvTypeName(fn); rname != "" {
		return rname + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
