package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load enumerates, parses, and type-checks the packages matching
// patterns (relative to dir; empty dir means the current directory).
//
// It shells out to `go list -export -json -deps`, which makes the go
// command do the heavy lifting of module resolution and of compiling
// dependency export data into the build cache; dependencies are then
// imported from that export data while the matched packages themselves
// are type-checked from source with full syntax trees. This mirrors
// what a go/analysis unitchecker driver receives from `go vet`,
// without depending on the x/tools module.
//
// Test files are excluded (as in `go build`), so fixture and test code
// is never linted.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	byPath := make(map[string]*listPkg)
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		byPath[lp.ImportPath] = lp
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, byPath)
	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := &types.Config{
		Importer: &mappedImporter{imp: imp, importMap: lp.ImportMap},
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// newExportImporter builds a types.Importer that resolves import paths
// through the `go list` universe and reads compiler export data from
// the build cache paths go list reported.
func newExportImporter(fset *token.FileSet, byPath map[string]*listPkg) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		lp, ok := byPath[path]
		if !ok {
			return nil, fmt.Errorf("cruzvet: import %q not in go list output", path)
		}
		if lp.Export == "" {
			return nil, fmt.Errorf("cruzvet: no export data for %q", path)
		}
		return os.Open(lp.Export)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// mappedImporter applies a package's ImportMap (vendoring, test
// variants) before delegating to the shared export-data importer.
type mappedImporter struct {
	imp       types.Importer
	importMap map[string]string
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.imp.Import(path)
}
