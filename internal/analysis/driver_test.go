package analysis

import (
	"os/exec"
	"regexp"
	"strings"
	"testing"
)

// TestCruzvetStatsOutput drives the actual cmd/cruzvet binary over the
// allowok fixture end to end: exit status 0 (everything suppressed),
// suppression counts in -stats output, and the stale directive
// surfaced.
func TestCruzvetStatsOutput(t *testing.T) {
	cmd := exec.Command("go", "run", "../../cmd/cruzvet",
		"-stats",
		"-simside", fixtureImport+"allowok",
		"./testdata/src/allowok")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cruzvet exited non-zero: %v\n%s", err, out)
	}
	s := string(out)
	for _, re := range []string{
		`(?m)^cruzvet: 1 packages, 0 findings, 3 suppressed$`,
		`(?m)^\s+nodeterminism\s+0 findings, 2 suppressed \([0-9]`,
		`(?m)^\s+maporder\s+0 findings, 1 suppressed \([0-9]`,
		`(?m)^\s+load\+typecheck\s+[0-9]`,
		`(?m)allowed .*allowok\.go.*reason: host timestamp`,
		`(?m)stale //cruzvet:allow spanleak`,
	} {
		if !regexp.MustCompile(re).MatchString(s) {
			t.Errorf("cruzvet -stats output missing %q:\n%s", re, s)
		}
	}
}

// TestCruzvetStrictAllow proves -strict-allow turns a stale directive
// into a gating failure: the allowok fixture carries one on purpose.
func TestCruzvetStrictAllow(t *testing.T) {
	cmd := exec.Command("go", "run", "../../cmd/cruzvet",
		"-strict-allow",
		"-simside", fixtureImport+"allowok",
		"./testdata/src/allowok")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("cruzvet -strict-allow exited zero despite a stale directive:\n%s", out)
	}
	if !strings.Contains(string(out), "stale //cruzvet:allow spanleak") {
		t.Errorf("cruzvet -strict-allow did not name the stale directive:\n%s", out)
	}
}

// TestCruzvetList pins the default analyzer roster: all eight must be
// registered in the driver.
func TestCruzvetList(t *testing.T) {
	cmd := exec.Command("go", "run", "../../cmd/cruzvet", "-list")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cruzvet -list: %v\n%s", err, out)
	}
	for _, name := range []string{
		"nodeterminism", "maporder", "spanleak", "lockorder",
		"poolleak", "oplifecycle", "ctxprop", "errdrop",
	} {
		if !regexp.MustCompile(`(?m)^` + name + `\s`).MatchString(string(out)) {
			t.Errorf("cruzvet -list missing analyzer %q:\n%s", name, out)
		}
	}
}

// TestCruzvetExitCode proves the gate actually gates: an unsuppressed
// finding makes the driver exit 1 and print it.
func TestCruzvetExitCode(t *testing.T) {
	cmd := exec.Command("go", "run", "../../cmd/cruzvet", "./testdata/src/allowbad")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("cruzvet exited zero on a package with findings:\n%s", out)
	}
	if !strings.Contains(string(out), "[maporder]") {
		t.Errorf("cruzvet output did not print the maporder finding:\n%s", out)
	}
}
