package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolLeak enforces buffer-pool discipline on the ctl frame pool and
// the tcpip segment free list.
//
// A pooled buffer that misses its put on an early-return or abort path
// is not a memory leak — the GC reclaims it — but it silently degrades
// the pool hit rate the PR 7/8 zero-copy work paid for, exactly on the
// failure paths that benchmarks never drive. The opposite bugs are
// worse: a double put lets two owners share one backing array, and a
// use-after-put races the next getter's writes. All three are
// structural here.
//
// Pools are recognized by the method-name convention getFrameBuf /
// putFrameBuf ("frame" pool) and getSegBuf / putSegBuf ("seg" pool),
// so the check covers ctl.Conn, tcpip.Stack, and fixture pools without
// a hard package dependency.
//
// Like spanleak, the check is escape-aware: only buffers bound to a
// local that never escapes (not stored, returned, aliased, or captured
// by a closure) are path-checked — queued frames are legitimately put
// by the writer-side drain long after the acquiring function returns.
// Content operations do not count as escapes: slicing, indexing,
// copy/len/cap/append-as-source, encoding/binary calls, and — via the
// interprocedural summaries — passing the buffer to a helper that
// releases it, which counts as the put itself.
var PoolLeak = &Analyzer{
	Name: "poolleak",
	Doc:  "flag pooled buffers missing their put, put twice, or used after put",
	Run:  runPoolLeak,
}

func runPoolLeak(pass *Pass) {
	effects := effectsFor(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkPoolLeakFunc(pass, effects, n.Body)
				}
			case *ast.FuncLit:
				checkPoolLeakFunc(pass, effects, n.Body)
			}
			return true
		})
	}
}

// poolCall returns (call, pool) if expr is a call to a pool
// acquisition method.
func poolCall(pass *Pass, expr ast.Expr) (*ast.CallExpr, string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil {
		return nil, ""
	}
	pool, ok := poolGetNames[fn.Name()]
	if !ok || callReceiver(fn, call) == nil {
		return nil, ""
	}
	return call, pool
}

// poolUseKind classifies one appearance of a tracked buffer variable.
type poolUseKind int

const (
	poolUseNeutral poolUseKind = iota // content access, comparison, redefinition
	poolUseEscape                     // stored, returned, aliased, captured
	poolUseRelease                    // passed to a put (directly or via summary)
)

// poolUse is one classified appearance of the buffer.
type poolUse struct {
	kind poolUseKind
	pool string   // for poolUseRelease: which pool it was returned to
	stmt ast.Stmt // innermost enclosing statement
	id   *ast.Ident
}

// checkPoolLeakFunc runs the three pool checks over one function body.
func checkPoolLeakFunc(pass *Pass, effects map[string]*FuncEffects, body *ast.BlockStmt) {
	type acquisition struct {
		stmt ast.Stmt
		call *ast.CallExpr
		pool string
		obj  *types.Var
	}
	var acqs []acquisition
	walkShallow(body, func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, pool := poolCall(pass, s.X); call != nil {
				pass.Reportf(call.Pos(), "%s pool buffer discarded: the result of %s must be kept and put back", pool, calleeName(pass, call))
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return
			}
			for i, rhs := range s.Rhs {
				call, pool := poolCall(pass, rhs)
				if call == nil {
					continue
				}
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue // stored straight into a field/index: escapes
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "%s pool buffer discarded: the result of %s must be kept and put back", pool, calleeName(pass, call))
					continue
				}
				obj, _ := pass.TypesInfo.Defs[id].(*types.Var)
				if obj == nil {
					obj, _ = pass.TypesInfo.Uses[id].(*types.Var)
				}
				if obj != nil {
					acqs = append(acqs, acquisition{stmt: s, call: call, pool: pool, obj: obj})
				}
			}
		}
	})
	if len(acqs) == 0 {
		return
	}

	var g *cfg
	for _, acq := range acqs {
		uses, escaped := collectPoolUses(pass, effects, body, acq.obj, acq.stmt)
		if escaped {
			continue
		}
		releases := make(map[ast.Stmt]bool) // statements releasing to the matching pool
		deferred := false                   // a deferred release covers every return path
		var liveReleases []ast.Stmt         // non-deferred releases, for use-after-put
		for _, u := range uses {
			if u.kind != poolUseRelease {
				continue
			}
			if u.pool != acq.pool {
				pass.Reportf(u.id.Pos(), "buffer %s from the %s pool is returned to the %s pool", acq.obj.Name(), acq.pool, u.pool)
				// Still a release for path purposes: the buffer is gone.
			}
			releases[u.stmt] = true
			if _, isDefer := u.stmt.(*ast.DeferStmt); isDefer {
				deferred = true
			} else {
				liveReleases = append(liveReleases, u.stmt)
			}
		}

		if g == nil {
			g, _ = buildCFG(body)
			if !g.ok {
				return // unmodeled control flow (goto): stay silent
			}
		}
		start := g.byStmt[acq.stmt]
		if start == nil {
			continue
		}
		if !deferred {
			rel := func(n *cfgNode) bool { return releases[n.stmt] }
			if g.pathMissing(start, rel) {
				pass.Reportf(acq.call.Pos(), "buffer %s from %s is not returned to the %s pool on every return path",
					acq.obj.Name(), calleeName(pass, acq.call), acq.pool)
			}
		}
		for _, rel := range liveReleases {
			checkUseAfterPut(pass, g, rel, acq.obj, acq.pool, releases)
		}
	}
}

// checkUseAfterPut walks forward from a release statement and reports
// any use of the buffer before it is redefined (typically by the next
// loop iteration's acquisition).
func checkUseAfterPut(pass *Pass, g *cfg, rel ast.Stmt, obj *types.Var, pool string, releases map[ast.Stmt]bool) {
	start := g.byStmt[rel]
	if start == nil {
		return
	}
	seen := make(map[*cfgNode]bool)
	var dfs func(n *cfgNode)
	dfs = func(n *cfgNode) {
		if n == nil || n == g.exit || seen[n] {
			return
		}
		seen[n] = true
		redef := stmtRedefines(pass, n.stmt, obj)
		if use := stmtHeaderUse(pass, n.stmt, obj); use != nil {
			// A redefining statement may still read the old value on its
			// right-hand side (b = append(b, ...)) — that read is the bug.
			if !redef || assignRHSUses(pass, n.stmt, obj) {
				if releases[n.stmt] {
					pass.Reportf(use.Pos(), "buffer %s returned to the %s pool twice", obj.Name(), pool)
				} else {
					pass.Reportf(use.Pos(), "buffer %s used after being returned to the %s pool", obj.Name(), pool)
				}
				return
			}
		}
		if redef {
			return
		}
		for _, s := range n.succs {
			dfs(s)
		}
	}
	for _, s := range start.succs {
		dfs(s)
	}
}

// stmtRedefines reports whether the statement assigns a fresh value to
// obj as a plain identifier (b = ... or b := ...).
func stmtRedefines(pass *Pass, s ast.Stmt, obj *types.Var) bool {
	as, ok := s.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if pass.TypesInfo.Defs[id] == obj || pass.TypesInfo.Uses[id] == obj {
				return true
			}
		}
	}
	return false
}

// assignRHSUses reports whether an assignment's right-hand side reads obj.
func assignRHSUses(pass *Pass, s ast.Stmt, obj *types.Var) bool {
	as, ok := s.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, rhs := range as.Rhs {
		if exprUses(pass, rhs, obj) != nil {
			return true
		}
	}
	return false
}

// stmtHeaderUse returns an identifier reading obj within the parts of
// the statement its CFG node represents: the full statement for simple
// statements, only the header expressions for compound ones (their
// bodies are separate nodes). LHS identifiers of a redefinition are
// not uses.
func stmtHeaderUse(pass *Pass, s ast.Stmt, obj *types.Var) *ast.Ident {
	switch s := s.(type) {
	case nil:
		return nil
	case *ast.IfStmt:
		return firstUse(pass, obj, s.Init, s.Cond)
	case *ast.ForStmt:
		return firstUse(pass, obj, s.Init, s.Cond, s.Post)
	case *ast.RangeStmt:
		return firstUse(pass, obj, s.X)
	case *ast.SwitchStmt:
		return firstUse(pass, obj, s.Init, s.Tag)
	case *ast.TypeSwitchStmt:
		return firstUse(pass, obj, s.Init, s.Assign)
	case *ast.SelectStmt:
		return nil
	case *ast.AssignStmt:
		// Only RHS reads count; LHS mention is a redefinition.
		for _, rhs := range s.Rhs {
			if id := exprUses(pass, rhs, obj); id != nil {
				return id
			}
		}
		return nil
	default:
		return firstUse(pass, obj, s)
	}
}

func firstUse(pass *Pass, obj *types.Var, nodes ...ast.Node) *ast.Ident {
	for _, n := range nodes {
		if n == nil {
			continue
		}
		if id := nodeUses(pass, n, obj); id != nil {
			return id
		}
	}
	return nil
}

func exprUses(pass *Pass, e ast.Expr, obj *types.Var) *ast.Ident {
	if e == nil {
		return nil
	}
	return nodeUses(pass, e, obj)
}

func nodeUses(pass *Pass, n ast.Node, obj *types.Var) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(n, func(c ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = id
		}
		return true
	})
	return found
}

// collectPoolUses classifies every appearance of obj in the body,
// skipping the defining statement. escaped is true as soon as any use
// retains the buffer beyond this function's control.
func collectPoolUses(pass *Pass, effects map[string]*FuncEffects, body *ast.BlockStmt, obj *types.Var, def ast.Stmt) (uses []poolUse, escaped bool) {
	// stack holds the ancestor chain of the node being visited,
	// innermost last.
	var stack []ast.Node
	inLit := 0
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil || escaped {
			return
		}
		if _, ok := n.(*ast.FuncLit); ok {
			inLit++
			defer func() { inLit-- }()
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			if inLit > 0 {
				escaped = true // captured by a closure
				return
			}
			u := classifyPoolUse(pass, effects, stack, id)
			if u.kind == poolUseEscape {
				escaped = true
				return
			}
			uses = append(uses, u)
		}
		stack = append(stack, n)
		for _, c := range childNodes(n) {
			walk(c)
		}
		stack = stack[:len(stack)-1]
	}
	walk(body)
	return uses, escaped
}

// classifyPoolUse decides what one appearance of the buffer does, by
// ascending from the identifier through value-preserving wrappers
// (parens, slicing) to the consuming construct.
func classifyPoolUse(pass *Pass, effects map[string]*FuncEffects, stack []ast.Node, id *ast.Ident) poolUse {
	u := poolUse{kind: poolUseNeutral, stmt: enclosingStmt(stack), id: id}
	var cur ast.Node = id
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.SliceExpr:
			if p.X == cur {
				cur = p // b[i:j] shares b's storage: keep ascending
				continue
			}
			return u // index position: content arithmetic
		case *ast.IndexExpr:
			if p.X == cur {
				// b[i]: a byte, not the array — unless its address is taken.
				if i > 0 {
					if un, ok := stack[i-1].(*ast.UnaryExpr); ok && un.Op == token.AND {
						u.kind = poolUseEscape
					}
				}
				return u
			}
			return u
		case *ast.CallExpr:
			if p.Fun == cur {
				u.kind = poolUseEscape // calling the buffer: impossible, be safe
				return u
			}
			return classifyPoolCallArg(pass, effects, p, cur, u)
		case *ast.BinaryExpr:
			return u // comparisons (b == nil), length arithmetic
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == cur {
					return u // plain redefinition target
				}
			}
			u.kind = poolUseEscape // aliased or stored: x := b / f.b = b
			return u
		case *ast.RangeStmt:
			if p.X == cur {
				return u // iterating contents
			}
			u.kind = poolUseEscape
			return u
		default:
			// Composite literals, key/values, returns, address-of,
			// channel sends, map index values...: the buffer outlives
			// this function's view of it.
			u.kind = poolUseEscape
			return u
		}
	}
	return u
}

// classifyPoolCallArg decides what passing the buffer to a call does:
// a release (matching put method or a summarized releasing helper), a
// content operation (copy/len/cap, append-as-source, encoding/binary),
// or an escape.
func classifyPoolCallArg(pass *Pass, effects map[string]*FuncEffects, call *ast.CallExpr, arg ast.Node, u poolUse) poolUse {
	argIdx := -1
	for i, a := range call.Args {
		if a == arg {
			argIdx = i
			break
		}
	}
	if argIdx < 0 {
		// Receiver position (x.m() where x is the buffer): []byte has no
		// methods in this tree; be safe.
		u.kind = poolUseEscape
		return u
	}
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil {
		// Builtin or function-typed value.
		if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			switch fid.Name {
			case "copy", "len", "cap", "min", "max":
				return u // content operations
			case "append":
				if argIdx > 0 {
					return u // append(dst, b...): copies bytes out
				}
			}
		}
		u.kind = poolUseEscape
		return u
	}
	if pool, ok := poolPutNames[fn.Name()]; ok && callReceiver(fn, call) != nil && argIdx == 0 {
		u.kind, u.pool = poolUseRelease, pool
		return u
	}
	if eff := effects[funcKey(fn)]; eff != nil {
		if pool, ok := eff.Releases[argIdx]; ok {
			u.kind, u.pool = poolUseRelease, pool
			return u
		}
	}
	if pkgPathOf(fn) == "encoding/binary" {
		return u // PutUint32 and friends write into the buffer
	}
	u.kind = poolUseEscape
	return u
}

// enclosingStmt returns the innermost statement on the ancestor stack.
func enclosingStmt(stack []ast.Node) ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if s, ok := stack[i].(ast.Stmt); ok {
			return s
		}
	}
	return nil
}
