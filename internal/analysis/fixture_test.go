package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureImport is the module path prefix of the fixture packages.
const fixtureImport = "cruz/internal/analysis/testdata/src/"

// loadFixture loads one testdata/src package. The go command excludes
// testdata directories from wildcard patterns, so fixtures never leak
// into `cruzvet ./...` runs, but explicit paths load fine.
func loadFixture(t *testing.T, name string) []*Package {
	t.Helper()
	pkgs, err := Load("", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs
}

// want is one expectation: a regexp that must match a diagnostic
// reported on its line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("// want (.*)$")
var wantPatRE = regexp.MustCompile("`([^`]*)`")

// collectWants parses `// want ...` comments (one or more backquoted
// regexps per line) from every .go file of a fixture.
func collectWants(t *testing.T, name string) []want {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pats := wantPatRE.FindAllStringSubmatch(m[1], -1)
			if len(pats) == 0 {
				t.Fatalf("%s:%d: `// want` with no backquoted pattern", path, i+1)
			}
			for _, p := range pats {
				re, err := regexp.Compile(p[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, p[1], err)
				}
				wants = append(wants, want{file: abs, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// runFixture runs the given analyzers over a fixture and checks the
// unsuppressed diagnostics against the fixture's want comments, both
// ways: every want must be hit (the analyzer is not weakened) and
// every diagnostic must be wanted (no false positives).
func runFixture(t *testing.T, name string, cfg Config, analyzers ...*Analyzer) *Result {
	t.Helper()
	pkgs := loadFixture(t, name)
	suite := NewSuite(cfg, analyzers...)
	res := suite.Run(pkgs)
	checkWants(t, name, res)
	return res
}

func checkWants(t *testing.T, name string, res *Result) {
	t.Helper()
	wants := collectWants(t, name)
	matched := make([]bool, len(wants))
	for _, d := range res.Diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", name, d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: no diagnostic matched want %q at %s:%d", name, w.re, w.file, w.line)
		}
	}
}

func TestNoDeterminismFixture(t *testing.T) {
	runFixture(t, "nodet",
		Config{SimSide: []string{fixtureImport + "nodet"}}, NoDeterminism)
}

func TestMapOrderFixture(t *testing.T) {
	runFixture(t, "mapord", Config{}, MapOrder)
}

func TestSpanLeakFixture(t *testing.T) {
	runFixture(t, "spanleakfix", Config{}, SpanLeak)
}

func TestLockOrderFixture(t *testing.T) {
	runFixture(t, "lockorderfix", Config{}, LockOrder)
}

// TestTreeLeaderFixture covers the group-leader shapes hierarchical
// coordination added: a span leaked across a leader-promotion return
// path, the per-member relay loop leak, and the two-tier agent/relay
// lock ordering (inversion cycle, held-across-yield).
func TestTreeLeaderFixture(t *testing.T) {
	runFixture(t, "treeleader", Config{}, SpanLeak, LockOrder)
}

// TestMigrateFixture covers the code shapes live migration added: the
// per-round phase span leaked across the round loop's abort and
// convergence early returns, and the agent/stack (core↔tcpip) lock
// ordering of the address-takeover path.
func TestMigrateFixture(t *testing.T) {
	runFixture(t, "migratefix", Config{}, SpanLeak, LockOrder)
}

func TestPoolLeakFixture(t *testing.T) {
	runFixture(t, "poolleakfix", Config{}, PoolLeak)
}

func TestOpLifecycleFixture(t *testing.T) {
	runFixture(t, "oplifefix", Config{}, OpLifecycle)
}

func TestCtxPropFixture(t *testing.T) {
	runFixture(t, "ctxpropfix", Config{}, CtxProp)
}

// TestECFixture covers the code shapes the erasure-coded storage tier
// added: a pooled shard buffer leaked across the decode-failure early
// return, and reconstruct helpers that drop the recovery op's trace
// context (directly, transitively, and via a plain Send).
func TestECFixture(t *testing.T) {
	runFixture(t, "ecfix", Config{}, PoolLeak, CtxProp)
}

func TestErrDropFixture(t *testing.T) {
	runFixture(t, "errdropfix",
		Config{SimSide: []string{fixtureImport + "errdropfix"}}, ErrDrop)
}

// TestAllowNewFixture proves the //cruzvet:allow escape hatch covers
// the v2 analyzers: one finding per analyzer, each annotated, zero
// unsuppressed, zero stale.
func TestAllowNewFixture(t *testing.T) {
	cfg := Config{SimSide: []string{fixtureImport + "allownew"}}
	pkgs := loadFixture(t, "allownew")
	suite := NewSuite(cfg, PoolLeak, OpLifecycle, CtxProp, ErrDrop)
	res := suite.Run(pkgs)
	if len(res.Diags) != 0 {
		t.Errorf("allownew: want 0 unsuppressed findings, got %d:", len(res.Diags))
		for _, d := range res.Diags {
			t.Errorf("  %s", d)
		}
	}
	if len(res.Suppressed) != 4 {
		t.Errorf("allownew: want 4 suppressed findings (one per v2 analyzer), got %d:", len(res.Suppressed))
		for _, sup := range res.Suppressed {
			t.Errorf("  %s", sup.Diagnostic)
		}
	}
	byAnalyzer := make(map[string]int)
	for _, sup := range res.Suppressed {
		byAnalyzer[sup.Analyzer]++
	}
	for _, name := range []string{"poolleak", "oplifecycle", "ctxprop", "errdrop"} {
		if byAnalyzer[name] != 1 {
			t.Errorf("allownew: want exactly 1 %s suppression, got %d", name, byAnalyzer[name])
		}
	}
	if len(res.Unused) != 0 {
		t.Errorf("allownew: want no stale directives, got %+v", res.Unused)
	}
}

// TestAllowFixture proves the //cruzvet:allow escape hatch: annotated
// findings are silenced, counted as suppressions, and stale
// directives are surfaced as unused.
func TestAllowFixture(t *testing.T) {
	cfg := Config{SimSide: []string{fixtureImport + "allowok"}}
	pkgs := loadFixture(t, "allowok")
	suite := NewSuite(cfg, NoDeterminism, MapOrder, SpanLeak)
	res := suite.Run(pkgs)
	if len(res.Diags) != 0 {
		t.Errorf("allowok: want 0 unsuppressed findings, got %d:", len(res.Diags))
		for _, d := range res.Diags {
			t.Errorf("  %s", d)
		}
	}
	if len(res.Suppressed) != 3 {
		t.Errorf("allowok: want 3 suppressed findings, got %d", len(res.Suppressed))
	}
	for _, sup := range res.Suppressed {
		if sup.Reason == "" {
			t.Errorf("allowok: suppression at %s lost its reason", sup.Pos)
		}
	}
	if len(res.Unused) != 1 || res.Unused[0].Analyzer != "spanleak" {
		t.Errorf("allowok: want exactly the stale spanleak directive flagged unused, got %+v", res.Unused)
	}
	stats := suite.Stats(res)
	counts := make(map[string]Stats)
	for _, st := range stats {
		counts[st.Analyzer] = st
	}
	if got := counts["nodeterminism"]; got.Findings != 0 || got.Suppressed != 2 {
		t.Errorf("allowok: nodeterminism stats = %+v, want 0 findings / 2 suppressed", got)
	}
	if got := counts["maporder"]; got.Findings != 0 || got.Suppressed != 1 {
		t.Errorf("allowok: maporder stats = %+v, want 0 findings / 1 suppressed", got)
	}
}

// TestAllowBadFixture proves malformed or misdirected directives
// cannot silence findings and are themselves reported.
func TestAllowBadFixture(t *testing.T) {
	pkgs := loadFixture(t, "allowbad")
	suite := NewSuite(Config{}, NoDeterminism, MapOrder, SpanLeak)
	res := suite.Run(pkgs)
	var malformed, unknown, maporder int
	for _, d := range res.Diags {
		switch {
		case strings.Contains(d.Message, "malformed //cruzvet:allow"):
			malformed++
		case strings.Contains(d.Message, "unknown analyzer"):
			unknown++
		case d.Analyzer == "maporder":
			maporder++
		default:
			t.Errorf("allowbad: unexpected diagnostic: %s", d)
		}
	}
	if malformed != 2 {
		t.Errorf("allowbad: want 2 malformed-directive findings, got %d", malformed)
	}
	if unknown != 1 {
		t.Errorf("allowbad: want 1 unknown-analyzer finding, got %d", unknown)
	}
	if maporder != 1 {
		t.Errorf("allowbad: the misdirected allow must not suppress the maporder finding (got %d findings)", maporder)
	}
	if len(res.Suppressed) != 0 {
		t.Errorf("allowbad: nothing should be suppressed, got %d", len(res.Suppressed))
	}
	if len(res.Unused) != 1 {
		t.Errorf("allowbad: the misdirected spanleak allow should be unused, got %+v", res.Unused)
	}
}

// allAnalyzers returns the full default suite, in the same order
// cmd/cruzvet registers them.
func allAnalyzers() []*Analyzer {
	return []*Analyzer{NoDeterminism, MapOrder, SpanLeak, LockOrder,
		PoolLeak, OpLifecycle, CtxProp, ErrDrop}
}

// loadTree loads and type-checks the whole module once per test
// process; TestCleanTree and TestDeterministicOutput share the result
// (packages are read-only to the suite).
var treeOnce sync.Once
var treePkgs []*Package
var treeErr error

func loadTree(t *testing.T) []*Package {
	t.Helper()
	treeOnce.Do(func() { treePkgs, treeErr = Load("", "cruz/...") })
	if treeErr != nil {
		t.Fatal(treeErr)
	}
	return treePkgs
}

// TestCleanTree is the enforcement test: the whole module must be free
// of unsuppressed findings under all eight analyzers. It is the same
// invocation `make check` gates on, so a regression fails both.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole tree")
	}
	pkgs := loadTree(t)
	suite := NewSuite(Config{}, allAnalyzers()...)
	res := suite.Run(pkgs)
	for _, d := range res.Diags {
		t.Errorf("%s", d)
	}
	if res.Packages < 20 {
		t.Errorf("suspiciously few packages analyzed: %d", res.Packages)
	}
}

// formatResult renders everything cruzvet prints from a Result (minus
// wall-clock timings) so determinism can be asserted byte-for-byte.
func formatResult(suite *Suite, res *Result) string {
	var b strings.Builder
	for _, d := range res.Diags {
		fmt.Fprintln(&b, d)
	}
	for _, st := range suite.Stats(res) {
		fmt.Fprintf(&b, "%s %d %d\n", st.Analyzer, st.Findings, st.Suppressed)
	}
	for _, sup := range res.Suppressed {
		fmt.Fprintf(&b, "allowed %s: [%s] %s (%s)\n", sup.Pos, sup.Analyzer, sup.Message, sup.Reason)
	}
	for _, u := range res.Unused {
		fmt.Fprintf(&b, "stale %s %s\n", u.Analyzer, u.Pos)
	}
	return b.String()
}

// TestDeterministicOutput runs the full eight-analyzer suite twice
// back-to-back over the same whole-tree load and requires byte-identical
// output and identical per-analyzer stats: analyzer scheduling,
// fact-merging Finish hooks, and diagnostic sorting must not leak map
// iteration order.
func TestDeterministicOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole tree")
	}
	pkgs := loadTree(t)
	run := func() (string, []Stats) {
		suite := NewSuite(Config{}, allAnalyzers()...)
		res := suite.Run(pkgs)
		return formatResult(suite, res), suite.Stats(res)
	}
	out1, stats1 := run()
	out2, stats2 := run()
	if out1 != out2 {
		t.Errorf("back-to-back cruzvet runs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", out1, out2)
	}
	if len(stats1) != len(stats2) {
		t.Fatalf("stats length differs: %d vs %d", len(stats1), len(stats2))
	}
	for i := range stats1 {
		if stats1[i] != stats2[i] {
			t.Errorf("stats[%d] differ: %+v vs %+v", i, stats1[i], stats2[i])
		}
	}
}
