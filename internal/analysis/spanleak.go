package analysis

import (
	"go/ast"
	"go/types"
)

// SpanLeak flags trace span acquisitions that are not closed on every
// return path.
//
// A trace.Span left open skews the phase-breakdown report, leaks an
// entry in the tracer's open-span table, and — because the End event
// never lands in the ring — makes the exported trace differ from the
// events that actually happened. This is the bug class PR 1 fixed by
// hand in pod.Stop; the analyzer makes it structural.
//
// The check is deliberately conservative: it only tracks spans
// assigned to a local variable that never escapes the function (not
// stored in a field, passed to a call, returned, or captured by a
// closure — event-driven code legitimately ends spans in a later
// event, which path analysis cannot see). For tracked spans it
// requires, on every control-flow path from the acquisition to a
// return, either a sp.End(...) call or a `defer sp.End(...)`.
// Discarding a span (`_ =` or a bare call statement) is always
// reported.
var SpanLeak = &Analyzer{
	Name: "spanleak",
	Doc:  "flag span/op acquisitions lacking an End on some return path",
	Run:  runSpanLeak,
}

// spanTypes identifies span-like named types by (package path, type
// name). The End method name is fixed: End.
var spanTypes = map[[2]string]bool{
	{"cruz/internal/trace", "Span"}: true,
}

func isSpanType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return spanTypes[[2]string{pkgPathOf(obj), obj.Name()}]
}

func runSpanLeak(pass *Pass) {
	for _, file := range pass.Files {
		// Analyze every function body — declarations and literals —
		// each against its own control-flow graph.
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkSpanLeakFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkSpanLeakFunc(pass, n.Body)
			}
			return true
		})
	}
}

// spanCall returns the call expression if expr is a call whose single
// result is a span type.
func spanCall(pass *Pass, expr ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || !isSpanType(tv.Type) {
		return nil
	}
	return call
}

func checkSpanLeakFunc(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: find span acquisitions bound at this body's own nesting
	// level (not inside nested function literals).
	type acquisition struct {
		stmt ast.Stmt
		call *ast.CallExpr
		obj  *types.Var // nil for discarded spans
	}
	var acqs []acquisition
	walkShallow(body, func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call := spanCall(pass, s.X); call != nil {
				pass.Reportf(call.Pos(), "span discarded: the result of %s must be kept and ended", calleeName(pass, call))
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return
			}
			for i, rhs := range s.Rhs {
				call := spanCall(pass, rhs)
				if call == nil {
					continue
				}
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue // sp stored straight into a field/index: escapes
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "span discarded: the result of %s must be kept and ended", calleeName(pass, call))
					continue
				}
				obj, _ := pass.TypesInfo.Defs[id].(*types.Var)
				if obj == nil {
					// Plain `=` to an existing variable; resolve the use.
					obj, _ = pass.TypesInfo.Uses[id].(*types.Var)
				}
				if obj != nil {
					acqs = append(acqs, acquisition{stmt: s, call: call, obj: obj})
				}
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, v := range vs.Values {
					if call := spanCall(pass, v); call != nil {
						obj, _ := pass.TypesInfo.Defs[vs.Names[i]].(*types.Var)
						if obj != nil {
							acqs = append(acqs, acquisition{stmt: s, call: call, obj: obj})
						}
					}
				}
			}
		}
	})
	if len(acqs) == 0 {
		return
	}

	var g *cfg
	for _, acq := range acqs {
		if escapesSpan(pass, body, acq.obj, acq.stmt) {
			continue
		}
		if hasDeferredEnd(pass, body, acq.obj) {
			continue
		}
		if g == nil {
			g, _ = buildCFG(body)
			if !g.ok {
				return // unmodeled control flow (goto): stay silent
			}
		}
		start := g.byStmt[acq.stmt]
		if start == nil {
			continue
		}
		ends := func(n *cfgNode) bool { return stmtEndsSpan(pass, n.stmt, acq.obj) }
		if g.pathMissing(start, ends) {
			pass.Reportf(acq.call.Pos(), "span %s from %s is not ended on every return path (add %s.End(...) or defer it)",
				acq.obj.Name(), calleeName(pass, acq.call), acq.obj.Name())
		}
	}
}

// walkShallow visits the statements of body without descending into
// nested function literals.
func walkShallow(body *ast.BlockStmt, fn func(ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if s, ok := n.(ast.Stmt); ok {
			fn(s)
		}
		return true
	})
}

// escapesSpan reports whether the span variable is used in any way
// other than sp.End(...)/sp.Active() calls or its defining assignment:
// passed to a call, stored, returned, aliased, address-taken, or
// captured by a function literal.
func escapesSpan(pass *Pass, body *ast.BlockStmt, obj *types.Var, def ast.Stmt) bool {
	escaped := false
	var inLit int
	var walk func(n ast.Node, parent ast.Node)
	walk = func(n ast.Node, parent ast.Node) {
		if escaped || n == nil {
			return
		}
		if _, ok := n.(*ast.FuncLit); ok {
			inLit++
			defer func() { inLit-- }()
		}
		if id, ok := n.(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == obj {
				if inLit > 0 {
					escaped = true // captured by a closure
					return
				}
				// Allowed shape: the receiver of a method call,
				// i.e. parent is SelectorExpr sp.End / sp.Active.
				if sel, ok := parent.(*ast.SelectorExpr); !ok || sel.X != id {
					escaped = true
					return
				}
			}
		}
		for _, c := range childNodes(n) {
			walk(c, n)
		}
	}
	walk(body, nil)
	return escaped
}

// childNodes returns the direct AST children of n, in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

// hasDeferredEnd reports whether body contains `defer sp.End(...)` at
// any nesting level outside function literals.
func hasDeferredEnd(pass *Pass, body *ast.BlockStmt, obj *types.Var) bool {
	found := false
	walkShallow(body, func(s ast.Stmt) {
		d, ok := s.(*ast.DeferStmt)
		if ok && isEndCallOn(pass, d.Call, obj) {
			found = true
		}
	})
	return found
}

// stmtEndsSpan reports whether the statement contains sp.End(...) at
// its own level (not inside a nested block of a compound statement,
// which has its own CFG node, and not inside a function literal).
func stmtEndsSpan(pass *Pass, s ast.Stmt, obj *types.Var) bool {
	if s == nil {
		return false
	}
	switch s := s.(type) {
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && isEndCallOn(pass, call, obj)
	case *ast.DeferStmt:
		return isEndCallOn(pass, s.Call, obj)
	default:
		return false
	}
}

func isEndCallOn(pass *Pass, call *ast.CallExpr, obj *types.Var) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}
