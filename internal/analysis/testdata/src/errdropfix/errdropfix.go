// Package errdropfix is a cruzvet fixture for the errdrop analyzer:
// discarded error results from module-internal callees on sim-side
// paths — bare call statements, blank assignments, deferred calls —
// and the shapes that must stay silent: handled errors and callees
// whose summary proves (transitively) that they only ever return nil.
package errdropfix

import "errors"

var errBoom = errors.New("boom")

func mightFail(x bool) error {
	if x {
		return errBoom
	}
	return nil
}

// alwaysNil and wrapsNil are the interprocedural NilErr cases: provably
// infallible, one and two levels deep, so dropping them is fine.
func alwaysNil() error { return nil }

func wrapsNil() error { return alwaysNil() }

func fetch(x bool) (int, error) {
	if x {
		return 0, errBoom
	}
	return 1, nil
}

func Bad(x bool) {
	mightFail(x) // want `error result of mightFail discarded on a sim-side path`
}

func BadBlank(x bool) {
	_ = mightFail(x) // want `error result of mightFail assigned to _ on a sim-side path`
}

func BadPair(x bool) int {
	n, _ := fetch(x) // want `error result of fetch assigned to _`
	return n
}

func BadDefer(x bool) {
	defer mightFail(x) // want `deferred error result of mightFail discarded`
}

func OkNil() {
	alwaysNil()
	wrapsNil()
}

func OkHandled(x bool) error {
	if err := mightFail(x); err != nil {
		return err
	}
	return nil
}
