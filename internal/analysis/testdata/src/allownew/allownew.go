// Package allownew is a cruzvet fixture: one real finding from each of
// the four v2 analyzers (poolleak, oplifecycle, ctxprop, errdrop),
// each silenced by a //cruzvet:allow directive with a reason. The
// suite must report zero unsuppressed findings here and count all four
// suppressions for -stats.
package allownew

import (
	"errors"

	"cruz/internal/ctl"
	"cruz/internal/trace"
)

type pool struct{ free [][]byte }

func (p *pool) getFrameBuf(n int) []byte { return make([]byte, n) }
func (p *pool) putFrameBuf(b []byte)     { p.free = append(p.free, b[:0]) }

var errBoom = errors.New("boom")

func fails() error { return errBoom }

func Leak(p *pool, bad bool) {
	//cruzvet:allow poolleak one-shot diagnostic buffer, pool hit rate irrelevant here
	b := p.getFrameBuf(8)
	if bad {
		return
	}
	p.putFrameBuf(b)
}

func Orphan(tb *ctl.Table) {
	op, err := tb.Begin("job", "k", 1)
	if err != nil {
		return
	}
	//cruzvet:allow oplifecycle set cleared by a test-only harness outside the analyzed tree
	op.Expect("neverarrives", "n1")
	op.Finish()
}

//cruzvet:allow ctxprop this is the trace sink itself: the context terminates here by design
func DroppedCtx(ctx trace.SpanContext) {}

func FireAndForget() {
	fails() //cruzvet:allow errdrop best-effort warmup, failure is benign and retried
}
