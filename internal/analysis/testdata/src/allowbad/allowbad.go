// Package allowbad is a cruzvet fixture: malformed or misdirected
// //cruzvet:allow directives must not silence anything and must
// themselves be reported.
package allowbad

import "fmt"

//cruzvet:allow
func bareDirective() {}

//cruzvet:allow maporder
func missingReason() {}

//cruzvet:allow nosuchanalyzer because reasons
func unknownAnalyzer() {}

// A directive naming the wrong analyzer does not suppress the finding.
func WrongName(m map[string]int) {
	//cruzvet:allow spanleak wrong analyzer for this finding
	for k := range m {
		fmt.Println(k)
	}
}
