// Package ecfix is a cruzvet fixture for the code shapes the
// erasure-coded storage tier added: pooled shard buffers leaked across
// a decode-failure early return (poolleak), and reconstruct helpers
// that sever the recovery op's causal edge by dropping its trace
// context (ctxprop) — plus the clean variants of both, which are how
// the real internal/core EC paths are written.
package ecfix

import (
	"errors"

	"cruz/internal/ctl"
	"cruz/internal/trace"
)

// holder mimics the shard-exchange side of the EC protocol: shard
// blocks travel in pooled frame buffers.
type holder struct {
	pool [][]byte
}

func (h *holder) getFrameBuf(n int) []byte { return make([]byte, n) }
func (h *holder) putFrameBuf(b []byte)     { h.pool = append(h.pool, b[:0]) }

var errShortStripe = errors.New("ecfix: not enough shards")

// DecodeLeak is the bug shape the fixture exists for: the stripe's
// scratch buffer goes back to the pool on the success path only — the
// decode-failure early return leaks it.
func (h *holder) DecodeLeak(shards [][]byte, m int) error {
	buf := h.getFrameBuf(1 << 12) // want `buffer buf from .*getFrameBuf is not returned to the frame pool on every return path`
	if len(shards) < m {
		return errShortStripe
	}
	for _, s := range shards {
		copy(buf, s)
	}
	h.putFrameBuf(buf)
	return nil
}

// DecodeOK is the same routine written correctly: the deferred put
// covers the failure return too.
func (h *holder) DecodeOK(shards [][]byte, m int) error {
	buf := h.getFrameBuf(1 << 12)
	defer h.putFrameBuf(buf)
	if len(shards) < m {
		return errShortStripe
	}
	for _, s := range shards {
		copy(buf, s)
	}
	return nil
}

// ReconstructDropsCtx severs the recovery op's causal chain: the
// coordinator's fetch context arrives and dies here, so the decode
// work never appears under the recovery span tree.
func reconstructDropsCtx(ctx trace.SpanContext, stripes int) int { // want `trace context ctx is dropped`
	return stripes
}

// PullShards is the transitive case: handing the context to a helper
// that drops it is just as severed one frame up.
func PullShards(ctx trace.SpanContext, stripes int) int { // want `trace context ctx is dropped`
	return reconstructDropsCtx(ctx, stripes)
}

// FetchDoneBadSend reports reconstruction completion with a plain Send
// while the op's context sits right there: the coordinator's MTTR
// decomposition would adopt an empty parent.
func FetchDoneBadSend(c *ctl.Conn, ctx trace.SpanContext) error {
	if err := c.SendCtx(nil, ctx); err != nil {
		return err
	}
	return c.Send(nil) // want `plain Send carries a zero trace context`
}

// ReconstructOK adopts the fetch context into the decode span — the
// shape internal/core's finishECReconstruct uses.
func ReconstructOK(tr *trace.Tracer, ctx trace.SpanContext, stripes int) int {
	sp := tr.BeginChild(ctx, "n1", "ecfix", "reconstruct")
	defer sp.End()
	return stripes
}

// ServeOK propagates the context onto the wire with the shard payload.
func ServeOK(c *ctl.Conn, ctx trace.SpanContext) error {
	return c.SendCtx(nil, ctx)
}
