// Package lockorderfix is a cruzvet fixture for the lockorder
// analyzer: acquisition cycles (direct and through calls), double
// acquisition, and locks held across blocking scheduler yields.
package lockorderfix

import (
	"sync"

	"cruz/internal/sim"
)

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// Direct cycle: ab locks A then B, ba locks B then A.
func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `lock-order cycle`
	a.mu.Unlock()
	b.mu.Unlock()
}

// Transitive cycle: the opposing acquisition happens inside callees,
// so only the whole-program fixpoint can see it.
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

func lockC(c *C) {
	c.mu.Lock()
	c.mu.Unlock()
}

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func cThenD(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockD(d)
}

func dThenC(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	lockC(c) // want `lock-order cycle`
}

func doubleAcquire(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want `already held`
	a.mu.Unlock()
	a.mu.Unlock()
}

func heldAcrossYield(e *sim.Engine, a *A) {
	a.mu.Lock()
	e.Step() // want `held across blocking scheduler yield`
	a.mu.Unlock()
}

func runEngine(e *sim.Engine) {
	_ = e.RunFor(sim.Millisecond)
}

func heldAcrossYieldTransitively(e *sim.Engine, a *A) {
	a.mu.Lock()
	runEngine(e) // want `blocks on the scheduler`
	a.mu.Unlock()
}

// Consistent ordering and sequential (non-nested) use are fine.
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

func efOne(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
}

func efTwo(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func sequential(e *E, f *F) {
	e.mu.Lock()
	e.mu.Unlock()
	f.mu.Lock()
	f.mu.Unlock()
}

func yieldUnlocked(e *sim.Engine, a *A) {
	a.mu.Lock()
	a.mu.Unlock()
	e.Step()
}
