// Package poolleakfix is a cruzvet fixture for the poolleak analyzer:
// pooled buffers that miss their put on an early-return or loop-skip
// path, double puts, use-after-put, wrong-pool puts, and the shapes
// that must stay silent — deferred puts, escapes into a queue, content
// operations, and puts performed by a (transitively summarized)
// helper.
package poolleakfix

import "encoding/binary"

// conn mimics the ctl frame pool / tcpip segment free list by method
// name; poolleak matches the get/put convention, not a package.
type conn struct {
	fpool [][]byte
	spool [][]byte
}

func (c *conn) getFrameBuf(n int) []byte { return make([]byte, n) }
func (c *conn) putFrameBuf(b []byte)     { c.fpool = append(c.fpool, b[:0]) }
func (c *conn) getSegBuf(n int) []byte   { return make([]byte, n) }
func (c *conn) putSegBuf(b []byte)       { c.spool = append(c.spool, b[:0]) }

// release and release2 are the interprocedural summary cases: passing
// a buffer to them must count as the put itself, one and two helper
// levels deep.
func (c *conn) release(b []byte)  { c.putFrameBuf(b) }
func (c *conn) release2(b []byte) { c.release(b) }

func (c *conn) LeakEarlyReturn(bad bool) {
	b := c.getFrameBuf(64) // want `buffer b from .*getFrameBuf is not returned to the frame pool on every return path`
	if bad {
		return
	}
	c.putFrameBuf(b)
}

// LeakLoop is the relay-loop shape from PR 7: the continue path skips
// the put every other iteration.
func (c *conn) LeakLoop(n int) {
	for i := 0; i < n; i++ {
		b := c.getSegBuf(1460) // want `buffer b from .*getSegBuf is not returned to the seg pool`
		if i%2 == 0 {
			continue
		}
		c.putSegBuf(b)
	}
}

func (c *conn) Discard() {
	c.getFrameBuf(8) // want `frame pool buffer discarded`
}

func (c *conn) DiscardBlank() {
	_ = c.getSegBuf(8) // want `seg pool buffer discarded`
}

func (c *conn) DoublePut() {
	b := c.getFrameBuf(8)
	c.putFrameBuf(b)
	c.putFrameBuf(b) // want `buffer b returned to the frame pool twice`
}

func (c *conn) UseAfterPut() byte {
	b := c.getFrameBuf(8)
	c.putFrameBuf(b)
	return b[0] // want `buffer b used after being returned to the frame pool`
}

func (c *conn) WrongPool() {
	b := c.getFrameBuf(8)
	c.putSegBuf(b) // want `buffer b from the frame pool is returned to the seg pool`
}

// OkBothBranches puts on every path: clean.
func (c *conn) OkBothBranches(x bool) {
	b := c.getFrameBuf(16)
	if x {
		c.putFrameBuf(b)
		return
	}
	c.putFrameBuf(b)
}

// OkDeferred covers every return path by defer: clean.
func (c *conn) OkDeferred(x bool) {
	b := c.getFrameBuf(16)
	defer c.putFrameBuf(b)
	if x {
		return
	}
	b[0] = 1
}

// frame mimics ctl's wframe: buffers queued for a later drain are the
// writer side's responsibility, so the acquisition must stay silent.
type frame struct{ buf []byte }

func (c *conn) OkEscapes() *frame {
	b := c.getFrameBuf(8)
	return &frame{buf: b}
}

// OkViaHelper releases through summarized helpers on both paths: clean.
func (c *conn) OkViaHelper(x bool) {
	b := c.getFrameBuf(8)
	if x {
		c.release(b)
		return
	}
	c.release2(b)
}

// OkContent exercises the content-operation exemptions: binary writes,
// slicing, copy, len — none of which retain the buffer.
func (c *conn) OkContent(payload []byte) {
	b := c.getFrameBuf(len(payload) + 8)
	binary.BigEndian.PutUint32(b, uint32(len(payload)))
	copy(b[8:], payload)
	c.putFrameBuf(b)
}
