// Package mapord is a cruzvet fixture for the maporder analyzer: map
// iterations whose body emits must be flagged; pure accumulation and
// the collect-then-sort idiom must not.
package mapord

import (
	"bytes"
	"fmt"
	"sort"

	"cruz/internal/trace"
)

func printsInMapOrder(m map[string]int) {
	for k := range m { // want `sim-visible sink`
		fmt.Println(k)
	}
}

func encodesInMapOrder(m map[string]int, buf *bytes.Buffer) {
	for k, v := range m { // want `sim-visible sink`
		fmt.Fprintf(buf, "%s=%d", k, v)
	}
}

func writesInMapOrder(m map[string][]byte, buf *bytes.Buffer) {
	for _, v := range m { // want `sim-visible sink`
		buf.Write(v)
	}
}

func tracesInMapOrder(tr *trace.Tracer, m map[string]int) {
	for k := range m { // want `sim-visible sink`
		tr.Instant("n", "c", k)
	}
}

func closureSink(m map[string]int) {
	for k := range m { // want `sim-visible sink`
		func() { fmt.Println(k) }()
	}
}

func helperSink(m map[string]int) {
	for k := range m { // want `calls a helper`
		emit(k)
	}
}

func emit(k string) { fmt.Println(k) }

// collect-then-sort is the sanctioned pattern.
func sortedDump(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// commutative accumulation does not observe order.
func sum(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
