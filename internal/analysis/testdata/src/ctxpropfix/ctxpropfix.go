// Package ctxpropfix is a cruzvet fixture for the ctxprop analyzer:
// trace contexts dropped by a function (directly or transitively
// through a helper that ignores them), plain Send where the op's
// context was available, discarded FrameCtx reads, and the propagation
// shapes that must stay silent — SendCtx, BeginChild, struct stores,
// field reads, and helpers that propagate.
package ctxpropfix

import (
	"cruz/internal/ctl"
	"cruz/internal/trace"
)

func Dropped(ctx trace.SpanContext) { // want `trace context ctx is dropped`
}

// ZeroOnly uses the context only for a liveness check — the causal
// edge still dies here.
func ZeroOnly(ctx trace.SpanContext) bool { // want `trace context ctx is dropped`
	return ctx.Zero()
}

// dropsIt and Transitive are the interprocedural case: passing the
// context to a helper whose summary does not propagate it is still a
// severed edge — at both levels.
func dropsIt(ctx trace.SpanContext) bool { // want `trace context ctx is dropped`
	return ctx.Zero()
}

func Transitive(ctx trace.SpanContext) { // want `trace context ctx is dropped`
	dropsIt(ctx)
}

// BadSend sends a zero context while the op's context sits unused in a
// parameter: the receive side adopts an empty parent.
func BadSend(c *ctl.Conn, ctx trace.SpanContext) error {
	if err := c.SendCtx(nil, ctx); err != nil {
		return err
	}
	return c.Send(nil) // want `plain Send carries a zero trace context`
}

func BadFrameCtx(c *ctl.Conn) {
	c.FrameCtx() // want `frame context discarded`
}

// OkSend propagates via the wire.
func OkSend(c *ctl.Conn, ctx trace.SpanContext) error {
	return c.SendCtx(nil, ctx)
}

// forward/OkHelper: propagation through a summarized helper.
func forward(c *ctl.Conn, ctx trace.SpanContext) error {
	return c.SendCtx(nil, ctx)
}

func OkHelper(c *ctl.Conn, ctx trace.SpanContext) error {
	return forward(c, ctx)
}

// pending mimics core's wireMsg: storing the context hands it to an
// event-driven consumer.
type pending struct{ ctx trace.SpanContext }

func OkStored(ctx trace.SpanContext) *pending {
	return &pending{ctx: ctx}
}

// OkChild adopts the context into a child span.
func OkChild(tr *trace.Tracer, ctx trace.SpanContext) {
	sp := tr.BeginChild(ctx, "n1", "fixture", "phase")
	sp.End()
}

// OkFieldRead is manual adoption: stamping the op id somewhere.
func OkFieldRead(ctx trace.SpanContext) uint64 {
	return uint64(ctx.Op)
}

// OkFrameCtx adopts the wire context at the decode site.
func OkFrameCtx(c *ctl.Conn, tr *trace.Tracer) {
	sp := tr.BeginChild(c.FrameCtx(), "n1", "fixture", "decode")
	sp.End()
}
