// Package allowok is a cruzvet fixture: real findings, each silenced
// by a //cruzvet:allow directive, plus one stale directive. The suite
// must report zero unsuppressed findings here, count every suppression
// for -stats, and surface the stale allow as unused.
package allowok

import (
	"fmt"
	"time"
)

// UnixStamp is nondeterministic on purpose; the annotation keeps the
// analyzer honest about it.
func UnixStamp() int64 {
	//cruzvet:allow nodeterminism host timestamp feeds only the artifact file name, never sim state
	return time.Now().UnixNano()
}

func Sleepy() {
	time.Sleep(time.Millisecond) //cruzvet:allow nodeterminism same-line form of the escape hatch
}

func DebugDump(m map[string]int) {
	//cruzvet:allow maporder debug dump read by humans, order never observed by tests
	for k, v := range m {
		fmt.Println(k, v)
	}
}

//cruzvet:allow spanleak stale directive: there is no span here, the suite must flag it as unused
func Quiet() {}
