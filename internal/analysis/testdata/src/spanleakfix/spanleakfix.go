// Package spanleakfix is a cruzvet fixture for the spanleak analyzer:
// spans must be ended on every return path, discarding one is always a
// leak, and spans that escape into event-driven code are exempt.
package spanleakfix

import (
	"cruz/internal/sim"
	"cruz/internal/trace"
)

func leakOnEarlyReturn(tr *trace.Tracer, fail bool) {
	sp := tr.Begin("n", "c", "op") // want `not ended on every return path`
	if fail {
		return
	}
	sp.End()
}

func leakInOneBranch(tr *trace.Tracer, mode int) {
	sp := tr.Begin("n", "c", "op") // want `not ended on every return path`
	switch mode {
	case 0:
		sp.End()
	case 1:
		sp.End()
	default:
		// forgotten
	}
}

func leakPerIteration(tr *trace.Tracer, n int) {
	for i := 0; i < n; i++ {
		sp := tr.Begin("n", "c", "iter") // want `not ended on every return path`
		if i%2 == 0 {
			continue
		}
		sp.End()
	}
}

func discarded(tr *trace.Tracer) {
	tr.Begin("n", "c", "op")     // want `span discarded`
	_ = tr.Begin("n", "c", "op") // want `span discarded`
}

func okDefer(tr *trace.Tracer, fail bool) {
	sp := tr.Begin("n", "c", "op")
	defer sp.End()
	if fail {
		return
	}
}

func okEveryPath(tr *trace.Tracer, fail bool) (int, error) {
	sp := tr.Begin("n", "c", "op")
	if fail {
		sp.End()
		return 0, nil
	}
	sp.End()
	return 1, nil
}

func okLoopBreak(tr *trace.Tracer, n int) {
	for i := 0; i < n; i++ {
		sp := tr.Begin("n", "c", "iter")
		if i == 3 {
			sp.End()
			break
		}
		sp.End()
	}
}

func okPanicPath(tr *trace.Tracer, fail bool) {
	sp := tr.Begin("n", "c", "op")
	if fail {
		panic("dead path needs no End")
	}
	sp.End()
}

// Spans that escape are event-driven: a later event ends them, which
// path analysis inside one function cannot (and must not) judge.
func okEscapesToEvent(e *sim.Engine, tr *trace.Tracer) {
	sp := tr.Begin("n", "c", "op")
	e.Schedule(sim.Millisecond, func() { sp.End() })
}

type holder struct{ sp trace.Span }

func okEscapesToField(h *holder, tr *trace.Tracer) {
	h.sp = tr.Begin("n", "c", "op")
}

func okReturned(tr *trace.Tracer) trace.Span {
	sp := tr.Begin("n", "c", "op")
	return sp
}

// A leak inside a function literal is still a leak.
func leakInClosure(tr *trace.Tracer) func(bool) {
	return func(fail bool) {
		sp := tr.Begin("n", "c", "op") // want `not ended on every return path`
		if fail {
			return
		}
		sp.End()
	}
}
