// Package oplifefix is a cruzvet fixture for the oplifecycle analyzer:
// ops from (Table).Begin that can leak in the table (no Fail/Finish and
// no armed timeout on some path), discarded Begin results, orphaned
// Expect wait-sets, and the shapes that must stay silent — both-branch
// completion, armed timeouts, termination through summarized helpers,
// the ErrOpExists guard path, and event-driven ops that escape into
// wrapper structs.
package oplifefix

import (
	"errors"

	"cruz/internal/ctl"
	"cruz/internal/sim"
)

var errTimeout = errors.New("op timed out")

func LeakNoTerminator(tb *ctl.Table, cond bool) error {
	op, err := tb.Begin("job", "k1", 1) // want `op op from Begin neither completes \(Fail/Finish\) nor arms a timeout`
	if err != nil {
		return err
	}
	if cond {
		return nil
	}
	op.Finish()
	return nil
}

func DropOp(tb *ctl.Table) {
	_, err := tb.Begin("job", "k2", 1) // want `op from Begin discarded`
	if err != nil {
		return
	}
}

func DropErr(tb *ctl.Table) {
	op, _ := tb.Begin("job", "k3", 1) // want `Begin error discarded`
	op.Finish()
}

func ExpectOrphan(tb *ctl.Table) {
	op, err := tb.Begin("job", "k4", 1)
	if err != nil {
		return
	}
	op.Expect("orphan", "n1") // want `wait-set "orphan" is expected but no Arrive for it exists`
	op.ArmTimeout(sim.Duration(10), errTimeout)
}

// OkBothBranches completes the op on every path after the guard.
func OkBothBranches(tb *ctl.Table, cond bool) {
	op, err := tb.Begin("job", "k5", 1)
	if err != nil {
		return
	}
	if cond {
		op.Fail(errTimeout)
		return
	}
	op.Finish()
}

// OkTimeout arms eventual termination instead of completing inline.
func OkTimeout(tb *ctl.Table) {
	op, err := tb.Begin("job", "k6", 1)
	if err != nil {
		return
	}
	op.ArmTimeout(sim.Duration(100), errTimeout)
}

// finishIt / finishDeep are the interprocedural summary cases: passing
// the op to them must count as termination, one and two levels deep.
func finishIt(op *ctl.Op)   { op.Finish() }
func finishDeep(op *ctl.Op) { finishIt(op) }

func OkHelper(tb *ctl.Table) {
	op, err := tb.Begin("job", "k7", 1)
	if err != nil {
		return
	}
	finishDeep(op)
}

// wrapper mimics core's coordOp/replOp/recoveryOp: the op escapes into
// a struct and is completed event-driven — the analyzer must be silent.
type wrapper struct{ op *ctl.Op }

func OkEscape(tb *ctl.Table) *wrapper {
	op, err := tb.Begin("job", "k8", 1)
	if err != nil {
		return nil
	}
	return &wrapper{op: op}
}

// OkExpectMatched pairs the wait-set with an Arrive handler elsewhere
// in the package (below): whole-program matching keeps it silent.
func OkExpectMatched(tb *ctl.Table, peer string) {
	op, err := tb.Begin("job", "k9", 1)
	if err != nil {
		return
	}
	op.Expect("acks", peer)
	op.ArmTimeout(sim.Duration(10), errTimeout)
}

func HandleAck(tb *ctl.Table, key, peer string) {
	if op := tb.Get(key); op != nil {
		op.Arrive("acks", peer)
	}
}
