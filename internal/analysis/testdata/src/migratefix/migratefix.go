// Package migratefix is a cruzvet fixture for the code shapes live
// migration introduced: per-round phase spans that must survive the
// round loop's abort/convergence early returns, and the agent/stack
// lock ordering of the address-takeover path (core installs the drop
// filter and rebinds the VIF against tcpip state). The bug shapes here
// are the ones the analyzers must keep catching in internal/core's
// migrate paths.
package migratefix

import (
	"sync"

	"cruz/internal/sim"
	"cruz/internal/trace"
)

// round is a stand-in for one pre-copy round's accounting.
type round struct {
	pages   int
	aborted bool
}

// agent models the per-node daemon: its own lock plus the network
// stack's state (the tcpip tier the takeover path re-enters).
type agent struct {
	mu    sync.Mutex
	stack netStack
}

type netStack struct {
	mu      sync.Mutex
	filters int
}

// roundLeak is the round-loop bug shape: the per-round span is begun
// before the abort check, and the aborted path returns without ending
// it — exactly the early return a mid-migration abort takes.
func roundLeak(tr *trace.Tracer, r round) int {
	sp := tr.Begin("node", "phase", "migrate-round") // want `not ended on every return path`
	if r.aborted {
		return 0 // forgot sp.End()
	}
	sp.End()
	return r.pages
}

// convergeLeak is the convergence loop: a non-converged round continues
// to the next iteration and abandons its span.
func convergeLeak(tr *trace.Tracer, rounds []round, threshold int) {
	for _, r := range rounds {
		sp := tr.Begin("node", "phase", "migrate-round") // want `not ended on every return path`
		if r.pages > threshold {
			continue // forgot sp.End()
		}
		sp.End()
	}
}

// takeoverDiscard drops the takeover span on the floor.
func takeoverDiscard(tr *trace.Tracer) {
	tr.Begin("node", "phase", "takeover") // want `span discarded`
}

// roundOK ends the span on both the aborted and the streamed path.
func roundOK(tr *trace.Tracer, r round) int {
	sp := tr.Begin("node", "phase", "migrate-round")
	defer sp.End()
	if r.aborted {
		return 0
	}
	return r.pages
}

// okEscapesToAdoption is the streaming shape: the round span outlives
// the function and is ended by the destination's adoption ack, an event
// path analysis inside one function must not judge.
func okEscapesToAdoption(e *sim.Engine, tr *trace.Tracer) {
	sp := tr.Begin("node", "phase", "migrate-stream")
	e.Schedule(sim.Millisecond, func() { sp.End() })
}

// Lock ordering: the agent lock and the stack lock are two tiers; every
// takeover path must take agent.mu before stack.mu.

// takeoverFilter is the correct order: agent state first, then the
// stack to install the drop filter and rebind the VIF.
func takeoverFilter(a *agent) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stack.mu.Lock()
	a.stack.filters++
	a.stack.mu.Unlock()
}

// stackNotify inverts the order — the classic takeover deadlock: a
// stack-side notification (gratuitous-ARP learn, socket wakeup)
// re-enters the agent while still holding stack state.
func stackNotify(a *agent) {
	a.stack.mu.Lock()
	a.mu.Lock() // want `lock-order cycle`
	a.mu.Unlock()
	a.stack.mu.Unlock()
}

// freezeHold parks on the scheduler while holding the stack — the
// residual freeze must never block the engine under tcpip state.
func freezeHold(e *sim.Engine, a *agent) {
	a.stack.mu.Lock()
	_ = e.RunFor(sim.Millisecond) // want `held across blocking scheduler yield`
	a.stack.mu.Unlock()
}

// sequentialTiers takes the tiers one after another (never nested in
// the inverse order): fine.
func sequentialTiers(a *agent) {
	a.stack.mu.Lock()
	a.stack.filters--
	a.stack.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}
