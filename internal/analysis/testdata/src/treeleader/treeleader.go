// Package treeleader is a cruzvet fixture for the group-leader code
// shapes hierarchical (two-level tree) coordination introduced: relay
// spans that must survive leader-promotion error paths, and the
// two-tier agent/relay lock ordering. The bug shapes here are the ones
// the analyzers must keep catching in internal/core's leader paths.
package treeleader

import (
	"errors"
	"sync"

	"cruz/internal/sim"
	"cruz/internal/trace"
)

// member is a stand-in for one group member's state.
type member struct {
	name string
	live bool
}

// agent models the per-node daemon: its own lock plus a relay table
// (the leader role's aggregation state) with a second lock tier.
type agent struct {
	mu    sync.Mutex
	relay relayTable
}

type relayTable struct {
	mu      sync.Mutex
	pending int
}

var errDead = errors.New("member dead")

// promoteLeak is the leader-promotion bug shape: the relay span is
// begun before the liveness scan, and the no-live-member error path
// returns without ending it — the span leaks across the promotion
// return path and the trace export diverges from reality.
func promoteLeak(tr *trace.Tracer, members []member) (string, error) {
	sp := tr.Begin("node", "coord", "relay.promote") // want `not ended on every return path`
	for _, m := range members {
		if m.live {
			sp.End()
			return m.name, nil
		}
	}
	return "", errDead // forgot sp.End()
}

// promoteOK ends the span on both the promoted and the error path.
func promoteOK(tr *trace.Tracer, members []member) (string, error) {
	sp := tr.Begin("node", "coord", "relay.promote")
	defer sp.End()
	for _, m := range members {
		if m.live {
			return m.name, nil
		}
	}
	return "", errDead
}

// relayLeak is the leader's per-member fan-out loop: the member span
// is abandoned when the member errors out mid-relay.
func relayLeak(tr *trace.Tracer, members []member) {
	for _, m := range members {
		sp := tr.Begin("node", "coord", "relay.member") // want `not ended on every return path`
		if !m.live {
			continue // forgot sp.End()
		}
		sp.End()
	}
}

// aggregateDiscard drops the aggregation span on the floor.
func aggregateDiscard(tr *trace.Tracer) {
	tr.Begin("node", "coord", "relay.aggregate") // want `span discarded`
}

// Lock ordering: the agent lock and the relay-table lock are two
// tiers; every path must take agent.mu before relay.mu.

// leaderBatch is the correct order: agent state first, then the relay
// aggregation table.
func leaderBatch(a *agent) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.relay.mu.Lock()
	a.relay.pending++
	a.relay.mu.Unlock()
}

// memberReply inverts the order — the classic promotion-time deadlock:
// a member reply grabs the relay table, then re-enters the agent.
func memberReply(a *agent) {
	a.relay.mu.Lock()
	a.mu.Lock() // want `lock-order cycle`
	a.mu.Unlock()
	a.relay.mu.Unlock()
}

// flushRelay holds the relay table across a blocking engine run — the
// leader must never sleep on the scheduler while holding its
// aggregation state.
func flushRelay(e *sim.Engine, a *agent) {
	a.relay.mu.Lock()
	_ = e.RunFor(sim.Millisecond) // want `held across blocking scheduler yield`
	a.relay.mu.Unlock()
}

// sequentialTiers takes the tiers one after another (never nested in
// the inverse order): fine.
func sequentialTiers(a *agent) {
	a.relay.mu.Lock()
	a.relay.pending--
	a.relay.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}
