// Package nodet is a cruzvet fixture: every construct the
// nodeterminism analyzer must flag, plus the seeded/virtual-time
// equivalents it must accept.
package nodet

import (
	crand "crypto/rand"
	"math/rand"
	"os"
	"time"
)

func wallClock() {
	_ = time.Now()                   // want `time\.Now`
	time.Sleep(time.Millisecond)     // want `time\.Sleep`
	_ = time.Since(time.Time{})      // want `time\.Since`
	<-time.After(time.Second)        // want `time\.After`
	t := time.NewTicker(time.Second) // want `time\.NewTicker`
	t.Stop()
}

func ambientEntropy() {
	_ = rand.Intn(4)                   // want `process-global random source`
	rand.Shuffle(0, func(i, j int) {}) // want `process-global random source`
	var b [8]byte
	_, _ = crand.Read(b[:]) // want `host entropy`
}

func ambientOS() {
	_ = os.Getpid()      // want `ambient process state`
	_, _ = os.Hostname() // want `ambient process state`
	_ = os.Getenv("X")   // want `ambient process state`
}

func rawGoroutine(ch chan int) {
	go func() { ch <- 1 }() // want `raw go statement`
}

// seeded randomness and explicit time values are fine.
func allowed() {
	r := rand.New(rand.NewSource(7))
	_ = r.Intn(4) // method on a seeded source: not ambient
	d := 5 * time.Millisecond
	_ = d
	var at time.Time
	_ = at.Add(d) // arithmetic on explicit values, no clock read
}
