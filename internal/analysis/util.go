package analysis

import (
	"go/ast"
	"go/types"
)

// calleeOf resolves the called function/method object of a call
// expression, seeing through parentheses. It returns nil for calls of
// function-typed values, builtins, and type conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgPathOf returns the import path of the package declaring obj, or
// "" for builtins and universe-scope objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// recvTypeName returns (pkgpath, typename) of a method's receiver base
// type, or ("", "") if fn is not a method. Pointer receivers are
// unwrapped.
func recvTypeName(fn *types.Func) (string, string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	return pkgPathOf(obj), obj.Name()
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// funcKey returns a stable cross-package identifier for a function or
// method: "pkg.Func" or "pkg.(Type).Method".
func funcKey(fn *types.Func) string {
	pkg := pkgPathOf(fn)
	if rpkg, rname := recvTypeName(fn); rname != "" {
		return rpkg + ".(" + rname + ")." + fn.Name()
	}
	return pkg + "." + fn.Name()
}
