// Package analysis is cruzvet: a determinism-and-invariant lint suite
// for the Cruz tree.
//
// Every guarantee the reproduction makes — trace-identical recovery
// runs, restore-equivalence across checkpoint routes, the paper's TCP
// invariants — rests on the simulation being a pure function of its
// seed. A single stray time.Now, an unseeded rand call, a raw
// goroutine, or a map iteration whose order leaks into sim-visible
// state silently breaks that, and is only caught (if ever) by
// downstream trace-diff tests. cruzvet makes determinism a
// compile-time property instead.
//
// The package is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis pass shape (that module is not
// vendored here): an Analyzer owns a Run func invoked once per
// type-checked package with a Pass carrying the syntax, type
// information, and a Report sink. Analyzers that need whole-program
// facts (lockorder) additionally export per-package facts and a Finish
// hook that runs after every package has been visited.
//
// Suppressions: a finding is silenced by the comment
//
//	//cruzvet:allow <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory — a bare allow is itself reported — and every suppression
// is counted in `cruzvet -stats` output so exceptions stay visible.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, positioned in the loaded file set.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Suppressed is a finding silenced by a //cruzvet:allow directive.
type Suppressed struct {
	Diagnostic
	Reason string
}

// Directive is one parsed //cruzvet:allow comment.
type Directive struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	used     int
}

// Analyzer is one cruzvet pass.
type Analyzer struct {
	Name string
	Doc  string
	// Run is invoked once per loaded package.
	Run func(*Pass)
	// Finish, if non-nil, runs after Run has seen every package; it
	// receives the Suite so it can combine per-package facts (stored
	// via Pass.ExportFact) into whole-program findings.
	Finish func(*Suite)
}

// Pass carries one package's worth of material to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Suite     *Suite
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Suite.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact stores a per-package fact for the pass's analyzer, keyed
// by the package path, for use from Analyzer.Finish.
func (p *Pass) ExportFact(fact any) {
	key := factKey{p.Analyzer.Name, p.Pkg.Path()}
	p.Suite.facts[key] = fact
}

type factKey struct {
	analyzer, pkg string
}

// Config tunes a Suite.
type Config struct {
	// SimSide lists import-path prefixes treated as "inside the
	// simulation": packages whose behaviour must be a pure function of
	// the seed. nodeterminism only fires there. Empty means
	// DefaultSimSide.
	SimSide []string
	// SchedulerShim lists packages allowed to own raw concurrency and
	// ticker primitives (the discrete-event engine itself). Empty
	// means DefaultSchedulerShim.
	SchedulerShim []string
}

// DefaultSimSide is the sim-side package set enforced in this tree.
// internal/trace and internal/metrics are deliberately included: their
// output is exactly the artifact that must be seed-deterministic.
var DefaultSimSide = []string{
	"cruz",
	"cruz/internal/apps",
	"cruz/internal/batch",
	"cruz/internal/ckpt",
	"cruz/internal/core",
	"cruz/internal/ctl",
	"cruz/internal/dhcp",
	"cruz/internal/ether",
	"cruz/internal/exp",
	"cruz/internal/flush",
	"cruz/internal/kernel",
	"cruz/internal/mem",
	"cruz/internal/metrics",
	"cruz/internal/sim",
	"cruz/internal/tcpip",
	"cruz/internal/trace",
	"cruz/internal/zap",
}

// DefaultSchedulerShim is the one package allowed to use raw scheduling
// primitives: the discrete-event engine.
var DefaultSchedulerShim = []string{"cruz/internal/sim"}

// Suite runs a set of analyzers over loaded packages and owns the
// shared diagnostic, suppression, and fact state.
type Suite struct {
	Analyzers []*Analyzer
	Config    Config

	fset       *token.FileSet
	facts      map[factKey]any
	directives []*Directive
	raw        []Diagnostic // pre-suppression findings
	malformed  []Diagnostic // bad //cruzvet:allow comments

	// Interprocedural summary state (summary.go): the whole-program
	// funcKey → FuncEffects table and the set of packages already
	// summarized into it.
	effects     map[string]*FuncEffects
	effectsDone map[string]bool

	timings map[string]time.Duration // per-analyzer wall time
}

// NewSuite builds a suite over the given analyzers.
func NewSuite(cfg Config, analyzers ...*Analyzer) *Suite {
	if len(cfg.SimSide) == 0 {
		cfg.SimSide = DefaultSimSide
	}
	if len(cfg.SchedulerShim) == 0 {
		cfg.SchedulerShim = DefaultSchedulerShim
	}
	return &Suite{
		Analyzers: analyzers,
		Config:    cfg,
		facts:     make(map[factKey]any),
	}
}

// SimSide reports whether the import path is inside the simulation
// boundary (exact match or a child of a configured prefix).
func (s *Suite) SimSide(path string) bool {
	return hasPathPrefix(path, s.Config.SimSide)
}

// SchedulerShim reports whether the package may own raw scheduling
// primitives.
func (s *Suite) SchedulerShim(path string) bool {
	return hasPathPrefix(path, s.Config.SchedulerShim)
}

func hasPathPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func (s *Suite) report(d Diagnostic) { s.raw = append(s.raw, d) }

// Fact returns the fact exported by analyzer for pkg, or nil.
func (s *Suite) Fact(analyzer, pkg string) any {
	return s.facts[factKey{analyzer, pkg}]
}

// Facts returns all facts exported by analyzer, keyed by package path.
func (s *Suite) Facts(analyzer string) map[string]any {
	out := make(map[string]any)
	for k, v := range s.facts {
		if k.analyzer == analyzer {
			out[k.pkg] = v
		}
	}
	return out
}

// ReportFinish records a whole-program finding from an
// Analyzer.Finish hook, attributed to the named analyzer.
func (s *Suite) ReportFinish(analyzer string, pos token.Position, format string, args ...any) {
	s.report(Diagnostic{Pos: pos, Analyzer: analyzer, Message: fmt.Sprintf(format, args...)})
}

var allowRE = regexp.MustCompile(`^//cruzvet:allow(?:\s+(\S+))?(?:\s+(.*\S))?\s*$`)

// collectDirectives parses //cruzvet:allow comments from a package's
// files. Malformed directives (missing analyzer or reason) are
// reported as findings so an ineffective suppression never passes
// silently.
func (s *Suite) collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//cruzvet:") {
					continue
				}
				m := allowRE.FindStringSubmatch(c.Text)
				pos := fset.Position(c.Pos())
				if m == nil {
					s.malformed = append(s.malformed, Diagnostic{
						Pos: pos, Analyzer: "cruzvet",
						Message: fmt.Sprintf("unrecognized cruzvet directive %q (want //cruzvet:allow <analyzer> <reason>)", c.Text),
					})
					continue
				}
				name, reason := m[1], m[2]
				switch {
				case name == "" || reason == "":
					s.malformed = append(s.malformed, Diagnostic{
						Pos: pos, Analyzer: "cruzvet",
						Message: fmt.Sprintf("malformed //cruzvet:allow: need both an analyzer name and a reason, got %q", c.Text),
					})
				case !known[name]:
					s.malformed = append(s.malformed, Diagnostic{
						Pos: pos, Analyzer: "cruzvet",
						Message: fmt.Sprintf("//cruzvet:allow names unknown analyzer %q", name),
					})
				default:
					s.directives = append(s.directives, &Directive{Pos: pos, Analyzer: name, Reason: reason})
				}
			}
		}
	}
}

// Result is the outcome of a suite run.
type Result struct {
	// Diags are the unsuppressed findings, sorted by position. A
	// non-empty slice means the tree is not clean.
	Diags []Diagnostic
	// Suppressed are findings silenced by //cruzvet:allow, with the
	// annotated reason.
	Suppressed []Suppressed
	// Unused are allow directives that silenced nothing; they are
	// informational (stale annotations worth deleting).
	Unused []Directive
	// Packages counts the packages analyzed.
	Packages int
}

// Run executes every analyzer over every package, applies
// //cruzvet:allow suppression, and returns the result.
func (s *Suite) Run(pkgs []*Package) *Result {
	known := make(map[string]bool)
	for _, a := range s.Analyzers {
		known[a.Name] = true
	}
	if s.timings == nil {
		s.timings = make(map[string]time.Duration)
	}
	for _, pkg := range pkgs {
		s.fset = pkg.Fset
		s.collectDirectives(pkg.Fset, pkg.Files, known)
		for _, a := range s.Analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Suite:     s,
			}
			t0 := time.Now() //cruzvet:allow nodeterminism per-analyzer wall-time for -stats; analysis tooling runs on the host, not in the sim
			a.Run(pass)
			s.timings[a.Name] += time.Since(t0) //cruzvet:allow nodeterminism per-analyzer wall-time for -stats; analysis tooling runs on the host, not in the sim
		}
	}
	for _, a := range s.Analyzers {
		if a.Finish != nil {
			t0 := time.Now() //cruzvet:allow nodeterminism per-analyzer wall-time for -stats; analysis tooling runs on the host, not in the sim
			a.Finish(s)
			s.timings[a.Name] += time.Since(t0) //cruzvet:allow nodeterminism per-analyzer wall-time for -stats; analysis tooling runs on the host, not in the sim
		}
	}

	res := &Result{Packages: len(pkgs)}
	byLine := make(map[string][]*Directive)
	lineKey := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	for _, d := range s.directives {
		k := lineKey(d.Pos.Filename, d.Pos.Line)
		byLine[k] = append(byLine[k], d)
	}
	match := func(d Diagnostic) *Directive {
		// A directive suppresses findings of its analyzer on its own
		// line and on the line below (directive-above-statement form).
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, dir := range byLine[lineKey(d.Pos.Filename, line)] {
				if dir.Analyzer == d.Analyzer {
					return dir
				}
			}
		}
		return nil
	}
	for _, d := range s.raw {
		if dir := match(d); dir != nil {
			dir.used++
			res.Suppressed = append(res.Suppressed, Suppressed{Diagnostic: d, Reason: dir.Reason})
			continue
		}
		res.Diags = append(res.Diags, d)
	}
	res.Diags = append(res.Diags, s.malformed...)
	for _, dir := range s.directives {
		if dir.used == 0 {
			res.Unused = append(res.Unused, *dir)
		}
	}
	sortDiags(res.Diags)
	sort.Slice(res.Suppressed, func(i, j int) bool {
		return diagLess(res.Suppressed[i].Diagnostic, res.Suppressed[j].Diagnostic)
	})
	return res
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool { return diagLess(ds[i], ds[j]) })
}

func diagLess(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	if a.Analyzer != b.Analyzer {
		return a.Analyzer < b.Analyzer
	}
	// Message is the final tiebreak so equal-position findings from one
	// analyzer still sort deterministically (back-to-back runs must be
	// byte-identical).
	return a.Message < b.Message
}

// AnalyzerTime is one analyzer's cumulative wall time across Run and
// Finish, for -stats output.
type AnalyzerTime struct {
	Analyzer string
	Duration time.Duration
}

// Timings returns per-analyzer wall time in registration order. Only
// meaningful after Run.
func (s *Suite) Timings() []AnalyzerTime {
	out := make([]AnalyzerTime, 0, len(s.Analyzers))
	for _, a := range s.Analyzers {
		out = append(out, AnalyzerTime{Analyzer: a.Name, Duration: s.timings[a.Name]})
	}
	return out
}

// Stats summarizes a result per analyzer for -stats output.
type Stats struct {
	Analyzer   string
	Findings   int
	Suppressed int
}

// Stats aggregates per-analyzer counts, in analyzer registration order.
func (s *Suite) Stats(res *Result) []Stats {
	idx := make(map[string]int, len(s.Analyzers)+1)
	out := make([]Stats, 0, len(s.Analyzers)+1)
	for _, a := range s.Analyzers {
		idx[a.Name] = len(out)
		out = append(out, Stats{Analyzer: a.Name})
	}
	get := func(name string) *Stats {
		i, ok := idx[name]
		if !ok {
			idx[name] = len(out)
			out = append(out, Stats{Analyzer: name})
			i = len(out) - 1
		}
		return &out[i]
	}
	for _, d := range res.Diags {
		get(d.Analyzer).Findings++
	}
	for _, d := range res.Suppressed {
		get(d.Analyzer).Suppressed++
	}
	return out
}
