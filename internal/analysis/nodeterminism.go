package analysis

import (
	"go/ast"
)

// NoDeterminism forbids ambient-state reads and raw concurrency in
// sim-side packages.
//
// Inside the simulation boundary every observable value must be a pure
// function of the seed. Wall-clock reads (time.Now and friends),
// global-source randomness (package-level math/rand functions),
// crypto/rand entropy, and process-ambient reads (os.Getpid,
// os.Getenv, hostname, ...) all smuggle host state into the
// simulation; raw `go` statements and time.Ticker/time.Timer hand
// event ordering to the Go runtime scheduler. Both break the
// bit-for-bit reproducibility that the trace-diff and
// restore-equivalence tests depend on.
//
// Time must come from sim.Engine.Now, randomness from
// sim.Engine.Rand, and concurrency from Engine.Schedule /
// Engine.NewTicker. The engine package itself (the scheduler shim) is
// exempt from the concurrency rule.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid wall-clock, ambient-entropy, and raw-concurrency use in sim-side packages",
	Run:  runNoDeterminism,
}

// wallClockFuncs are the package time functions that read or depend on
// the host clock or runtime timers.
var wallClockFuncs = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on host timers",
	"After":     "creates a host timer",
	"AfterFunc": "creates a host timer",
	"Tick":      "creates a host ticker",
	"NewTimer":  "creates a host timer",
	"NewTicker": "creates a host ticker",
}

// seededRandFuncs are the math/rand constructors that take an explicit
// source or seed; everything else at package level draws from the
// process-global source.
var seededRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// ambientOSFuncs are os functions that read process-ambient identity
// or environment.
var ambientOSFuncs = map[string]bool{
	"Getpid":        true,
	"Getppid":       true,
	"Getuid":        true,
	"Geteuid":       true,
	"Getgid":        true,
	"Getegid":       true,
	"Getgroups":     true,
	"Getenv":        true,
	"LookupEnv":     true,
	"Environ":       true,
	"Hostname":      true,
	"Getwd":         true,
	"TempDir":       true,
	"UserHomeDir":   true,
	"UserCacheDir":  true,
	"UserConfigDir": true,
}

func runNoDeterminism(pass *Pass) {
	path := pass.Pkg.Path()
	if !pass.Suite.SimSide(path) {
		return
	}
	shim := pass.Suite.SchedulerShim(path)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !shim {
					pass.Reportf(n.Pos(), "raw go statement in sim-side package: event ordering must come from sim.Engine.Schedule, not the Go runtime scheduler")
				}
			case *ast.CallExpr:
				checkNoDeterminismCall(pass, n, shim)
			}
			return true
		})
	}
}

func checkNoDeterminismCall(pass *Pass, call *ast.CallExpr, shim bool) {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	// Only package-level functions are ambient; methods (e.g.
	// (*rand.Rand).Intn on an engine-seeded source, time.Time.Sub)
	// carry their state explicitly.
	if _, rname := recvTypeName(fn); rname != "" {
		return
	}
	switch pkgPathOf(fn) {
	case "time":
		if why, bad := wallClockFuncs[fn.Name()]; bad {
			if shim && (fn.Name() == "Tick" || fn.Name() == "NewTicker" || fn.Name() == "NewTimer") {
				return
			}
			pass.Reportf(call.Pos(), "call to time.%s in sim-side package: %s; use virtual time from sim.Engine (Now/Schedule/NewTicker)", fn.Name(), why)
		}
	case "math/rand", "math/rand/v2":
		if !seededRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "call to %s.%s draws from the process-global random source; use the engine's seeded source (sim.Engine.Rand)", pkgPathOf(fn), fn.Name())
		}
	case "crypto/rand":
		pass.Reportf(call.Pos(), "call to crypto/rand.%s in sim-side package: host entropy is not reproducible; use the engine's seeded source", fn.Name())
	case "os":
		if ambientOSFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "call to os.%s reads ambient process state; thread the value through configuration instead", fn.Name())
		}
	}
}
