package analysis

import (
	"go/ast"
	"go/types"
)

// CtxProp keeps the PR 6 causal trees connected: a trace.SpanContext
// that is handed to a function and then dropped severs every span
// below it from the op that caused it, and the break only shows up
// later as an orphaned root in the trace viewer.
//
// Three checks:
//
//  1. A function with a trace.SpanContext parameter must propagate it:
//     into SendCtx/BeginChild/InstantCtx, a summarized propagating
//     helper, a struct field or return value (event-driven hand-off),
//     or by reading its fields (adoption by hand). A parameter that is
//     unused — or used only for ctx.Zero() checks — is a severed edge.
//     The check is interprocedural: passing the context to a helper
//     only counts if the helper's summary says it propagates.
//
//  2. A plain (ctl.Conn).Send in a function that holds a SpanContext
//     parameter sends a zero context while the op's context is in
//     scope: the receive side adopts an empty parent. Use SendCtx.
//
//  3. A discarded (ctl.Conn).FrameCtx() result at a frame-decode site
//     reads the causal context off the wire and throws it away.
var CtxProp = &Analyzer{
	Name: "ctxprop",
	Doc:  "flag severed trace-context chains: dropped ctx params, Send-not-SendCtx, discarded FrameCtx",
	Run:  runCtxProp,
}

const (
	connSendKey     = "cruz/internal/ctl.(Conn).Send"
	connFrameCtxKey = "cruz/internal/ctl.(Conn).FrameCtx"
)

func runCtxProp(pass *Pass) {
	effects := effectsFor(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxParams(pass, effects, fd)
			checkBareSends(pass, fd)
		}
		// Check 3 applies anywhere, including closures (OnFrame handlers
		// are function literals).
		ast.Inspect(file, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
				if fn := calleeOf(pass.TypesInfo, call); fn != nil && funcKey(fn) == connFrameCtxKey {
					pass.Reportf(call.Pos(), "frame context discarded: FrameCtx() read off the wire must be adopted (BeginChild) or attached to the decoded message")
				}
			}
			return true
		})
	}
}

// checkCtxParams applies check 1 to each SpanContext parameter of the
// declared function. The verdict is simply the function's own summary:
// a parameter without a Propagates entry after the package fixpoint is
// a severed edge.
func checkCtxParams(pass *Pass, effects map[string]*FuncEffects, fd *ast.FuncDecl) {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	eff := effects[funcKey(fn)]
	if eff == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if !isSpanContextType(p.Type()) || p.Name() == "_" || p.Name() == "" {
			continue
		}
		if !eff.Propagates[i] {
			pass.Reportf(p.Pos(),
				"trace context %s is dropped: never sent, stored, returned, or adopted into a child span — the causal tree breaks here",
				p.Name())
		}
	}
}

// ctxParamPropagates reports whether some use of the parameter carries
// the context onward. Uses inside function literals, stores, returns,
// and composite literals get the benefit of the doubt (event-driven
// propagation); field reads count as manual adoption; a Zero() check
// alone does not.
func ctxParamPropagates(pass *Pass, effects map[string]*FuncEffects, body *ast.BlockStmt, obj types.Object) bool {
	propagates := false
	var stack []ast.Node
	inLit := 0
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil || propagates {
			return
		}
		if _, ok := n.(*ast.FuncLit); ok {
			inLit++
			defer func() { inLit-- }()
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			if inLit > 0 {
				propagates = true // captured: handler decides later
				return
			}
			if ctxUsePropagates(pass, effects, stack, id) {
				propagates = true
			}
			return
		}
		stack = append(stack, n)
		for _, c := range childNodes(n) {
			walk(c)
		}
		stack = stack[:len(stack)-1]
	}
	walk(body)
	return propagates
}

// ctxUsePropagates classifies one appearance of the context parameter.
func ctxUsePropagates(pass *Pass, effects map[string]*FuncEffects, stack []ast.Node, id *ast.Ident) bool {
	var parent ast.Node
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// ctx.Op / ctx.Span field reads are manual adoption; the Zero()
		// liveness check alone is not.
		return p.Sel.Name != "Zero"
	case *ast.CallExpr:
		fn := calleeOf(pass.TypesInfo, p)
		if fn == nil {
			return false // builtin or function value: not a known sink
		}
		key := funcKey(fn)
		for argIdx, a := range p.Args {
			if ast.Unparen(a) != id {
				continue
			}
			if sinkIdx, ok := ctxSinkParams[key]; ok && sinkIdx == argIdx {
				return true
			}
			if eff := effects[key]; eff != nil && eff.Propagates[argIdx] {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return false // comparison only
	default:
		// Composite literal fields (wireMsg{ctx: ctx}), assignments,
		// returns, channel sends: the context moves on.
		return true
	}
}

// checkBareSends applies check 2: (ctl.Conn).Send inside a function
// that has the op's context as a parameter.
func checkBareSends(pass *Pass, fd *ast.FuncDecl) {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	hasCtx := false
	for i := 0; i < sig.Params().Len(); i++ {
		if isSpanContextType(sig.Params().At(i).Type()) {
			hasCtx = true
			break
		}
	}
	if !hasCtx {
		return
	}
	walkShallow(fd.Body, func(s ast.Stmt) {
		for _, call := range stmtCalls(s) {
			callee := calleeOf(pass.TypesInfo, call)
			if callee != nil && funcKey(callee) == connSendKey {
				pass.Reportf(call.Pos(),
					"plain Send carries a zero trace context while the op's context is a parameter here: use SendCtx")
			}
		}
	})
}
