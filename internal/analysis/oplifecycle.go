package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// OpLifecycle enforces the ctl op protocol from PR 3: every op created
// via (Table).Begin must be driven to completion — Fail or Finish on
// every path, or an armed timeout/retry policy that guarantees eventual
// termination — and every Expect wait-set must have an Arrive handler
// somewhere in the program, or the op stalls forever on a set that can
// never clear.
//
// Three checks:
//
//  1. Begin's error result must not be discarded: ErrOpExists is how
//     duplicate coordination rounds are detected, and dropping it
//     double-drives the op. Discarding the op itself is also reported —
//     an op nobody holds can only be completed by key lookup, which no
//     caller does.
//
//  2. A non-escaping op must reach a terminator on every path from
//     Begin to return: op.Fail, op.Finish, op.ArmTimeout, op.ArmRetries,
//     or — via the interprocedural summaries — a helper that terminates
//     it. Ops that escape (stored in a wrapper struct, captured by a
//     handler closure, returned) are event-driven and exempt; that is
//     the dominant pattern in core (coordOp, replOp, recoveryOp).
//
//  3. Wait-set names passed to op.Expect must have a matching op.Arrive
//     somewhere in the analyzed tree (whole-program, via package facts
//     merged in Finish — same shape as lockorder). Only string-literal
//     set names are matched; a dynamic Arrive name is treated as a
//     wildcard that may clear anything.
var OpLifecycle = &Analyzer{
	Name:   "oplifecycle",
	Doc:    "flag ctl ops that can miss Fail/Finish and Expect sets with no Arrive",
	Run:    runOpLifecycle,
	Finish: finishOpLifecycle,
}

const (
	opBeginKey  = "cruz/internal/ctl.(Table).Begin"
	opExpectKey = "cruz/internal/ctl.(Op).Expect"
	opArriveKey = "cruz/internal/ctl.(Op).Arrive"
)

// opWaitSite is one Expect or Arrive call site.
type opWaitSite struct {
	set string // literal set name; "" if dynamic
	pos token.Position
}

// opLifecycleFacts is the per-package fact: wait-set call sites.
type opLifecycleFacts struct {
	expects []opWaitSite
	arrives []opWaitSite
}

func runOpLifecycle(pass *Pass) {
	effects := effectsFor(pass)
	facts := &opLifecycleFacts{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkOpLifecycleFunc(pass, effects, n.Body)
				}
			case *ast.FuncLit:
				checkOpLifecycleFunc(pass, effects, n.Body)
			case *ast.CallExpr:
				collectWaitSite(pass, facts, n)
			}
			return true
		})
	}
	pass.ExportFact(facts)
}

// collectWaitSite records Expect/Arrive call sites for the
// whole-program wait-set check.
func collectWaitSite(pass *Pass, facts *opLifecycleFacts, call *ast.CallExpr) {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil || len(call.Args) == 0 {
		return
	}
	key := funcKey(fn)
	if key != opExpectKey && key != opArriveKey {
		return
	}
	site := opWaitSite{pos: pass.Fset.Position(call.Pos())}
	if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
		if s, err := strconv.Unquote(lit.Value); err == nil {
			site.set = s
		}
	}
	if key == opExpectKey {
		facts.expects = append(facts.expects, site)
	} else {
		facts.arrives = append(facts.arrives, site)
	}
}

// finishOpLifecycle merges every package's wait-set sites and reports
// Expect sets that no Arrive anywhere can clear. Iteration is over
// sorted package paths so output is deterministic.
func finishOpLifecycle(s *Suite) {
	all := s.Facts("oplifecycle")
	paths := make([]string, 0, len(all))
	for p := range all {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	arrived := make(map[string]bool)
	wildcardArrive := false
	for _, p := range paths {
		f := all[p].(*opLifecycleFacts)
		for _, a := range f.arrives {
			if a.set == "" {
				wildcardArrive = true
			} else {
				arrived[a.set] = true
			}
		}
	}
	if wildcardArrive {
		return // a dynamic Arrive may clear any set: nothing provable
	}
	for _, p := range paths {
		f := all[p].(*opLifecycleFacts)
		for _, e := range f.expects {
			if e.set == "" || arrived[e.set] {
				continue
			}
			s.ReportFinish("oplifecycle", e.pos,
				"wait-set %q is expected but no Arrive for it exists anywhere: the op can never clear", e.set)
		}
	}
}

// checkOpLifecycleFunc applies checks 1 and 2 to one function body.
func checkOpLifecycleFunc(pass *Pass, effects map[string]*FuncEffects, body *ast.BlockStmt) {
	type beginSite struct {
		stmt   ast.Stmt
		call   *ast.CallExpr
		obj    *types.Var // the op variable; nil if discarded
		errObj *types.Var // the error variable; nil if blanked
	}
	var sites []beginSite
	walkShallow(body, func(s ast.Stmt) {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeOf(pass.TypesInfo, call)
		if fn == nil || funcKey(fn) != opBeginKey {
			return
		}
		if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(call.Pos(), "Begin error discarded: ErrOpExists must be handled or the op is double-driven")
		}
		opID, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return // op stored straight into a field: escapes, event-driven
		}
		if opID.Name == "_" {
			pass.Reportf(call.Pos(), "op from Begin discarded: it stays in the table but nothing can ever complete it")
			return
		}
		obj, _ := pass.TypesInfo.Defs[opID].(*types.Var)
		if obj == nil {
			obj, _ = pass.TypesInfo.Uses[opID].(*types.Var)
		}
		var errObj *types.Var
		if errID, ok := as.Lhs[1].(*ast.Ident); ok {
			errObj, _ = pass.TypesInfo.Defs[errID].(*types.Var)
			if errObj == nil {
				errObj, _ = pass.TypesInfo.Uses[errID].(*types.Var)
			}
		}
		if obj != nil {
			sites = append(sites, beginSite{stmt: s, call: call, obj: obj, errObj: errObj})
		}
	})
	if len(sites) == 0 {
		return
	}

	var g *cfg
	for _, site := range sites {
		if escapesOp(pass, effects, body, site.obj) {
			continue
		}
		if hasDeferredTerminator(pass, effects, body, site.obj) {
			continue
		}
		if g == nil {
			g, _ = buildCFG(body)
			if !g.ok {
				return // unmodeled control flow (goto): stay silent
			}
		}
		start := g.byStmt[site.stmt]
		if start == nil {
			continue
		}
		// Paths through the immediate `if err != nil { ... }` guard hold
		// a nil op — Begin failed, there is nothing to complete. The
		// guard body's statements block path exploration.
		guarded := beginGuardStmts(pass, start, site.errObj)
		term := func(n *cfgNode) bool {
			return guarded[n.stmt] || stmtTerminatesOp(pass, effects, n.stmt, site.obj)
		}
		if g.pathMissing(start, term) {
			pass.Reportf(site.call.Pos(),
				"op %s from Begin neither completes (Fail/Finish) nor arms a timeout on some path: it leaks in the table",
				site.obj.Name())
		}
	}
}

// beginGuardStmts returns the statements inside the error guard that
// immediately follows a Begin call — `if err != nil { ... }` as the
// next statement, testing Begin's own error variable. Returns from
// inside that body are the ErrOpExists path, where the op is nil; they
// must not be required to terminate it. Any other shape returns an
// empty set and every path is checked.
func beginGuardStmts(pass *Pass, begin *cfgNode, errObj *types.Var) map[ast.Stmt]bool {
	out := make(map[ast.Stmt]bool)
	if errObj == nil || len(begin.succs) != 1 {
		return out
	}
	ifs, ok := begin.succs[0].stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return out
	}
	cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op != token.NEQ {
		return out
	}
	id, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != errObj {
		return out
	}
	if nid, ok := ast.Unparen(cond.Y).(*ast.Ident); !ok || nid.Name != "nil" {
		return out
	}
	ast.Inspect(ifs.Body, func(n ast.Node) bool {
		if s, ok := n.(ast.Stmt); ok {
			out[s] = true
		}
		return true
	})
	return out
}

// escapesOp reports whether the op variable leaves this function's
// direct control: stored into a struct or field, returned, aliased,
// captured by a closure, or passed to a callee that is not known to
// terminate it. Method calls on the op itself (op.Fail, op.Expect,
// op.OnFinish, op.Data reads) are direct control, not escapes.
func escapesOp(pass *Pass, effects map[string]*FuncEffects, body *ast.BlockStmt, obj *types.Var) bool {
	escaped := false
	var stack []ast.Node
	inLit := 0
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil || escaped {
			return
		}
		if _, ok := n.(*ast.FuncLit); ok {
			inLit++
			defer func() { inLit-- }()
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			if inLit > 0 {
				escaped = true // captured: completion is the handler's job
				return
			}
			parent := ast.Node(nil)
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			}
			switch p := parent.(type) {
			case *ast.SelectorExpr:
				if p.X != id {
					escaped = true
				}
			case *ast.CallExpr:
				// Allowed only when the callee terminates the op at this
				// argument position.
				if !callTerminatesArg(pass, effects, p, id) {
					escaped = true
				}
			default:
				escaped = true
			}
			return
		}
		stack = append(stack, n)
		for _, c := range childNodes(n) {
			walk(c)
		}
		stack = stack[:len(stack)-1]
	}
	walk(body)
	return escaped
}

// callTerminatesArg reports whether call passes id to a callee position
// with a Terminates summary.
func callTerminatesArg(pass *Pass, effects map[string]*FuncEffects, call *ast.CallExpr, id *ast.Ident) bool {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	eff := effects[funcKey(fn)]
	if eff == nil {
		return false
	}
	for i, a := range call.Args {
		if ast.Unparen(a) == id && eff.Terminates[i] {
			return true
		}
	}
	if rx := callReceiver(fn, call); rx == id && eff.Terminates[recvIndex] {
		return true
	}
	return false
}

// hasDeferredTerminator reports whether body contains a deferred direct
// call that terminates the op on every return path.
func hasDeferredTerminator(pass *Pass, effects map[string]*FuncEffects, body *ast.BlockStmt, obj *types.Var) bool {
	found := false
	walkShallow(body, func(s ast.Stmt) {
		d, ok := s.(*ast.DeferStmt)
		if ok && callIsTerminatorOn(pass, effects, d.Call, obj) {
			found = true
		}
	})
	return found
}

// stmtTerminatesOp reports whether the statement contains, at its own
// level, a call that terminates the op: one of the Op terminator
// methods or a summarized terminating helper.
func stmtTerminatesOp(pass *Pass, effects map[string]*FuncEffects, s ast.Stmt, obj *types.Var) bool {
	if s == nil {
		return false
	}
	for _, call := range stmtCalls(s) {
		if callIsTerminatorOn(pass, effects, call, obj) {
			return true
		}
	}
	return false
}

func callIsTerminatorOn(pass *Pass, effects map[string]*FuncEffects, call *ast.CallExpr, obj *types.Var) bool {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	key := funcKey(fn)
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	}
	if opTerminators[key] {
		if rx := callReceiver(fn, call); rx != nil && isObj(rx) {
			return true
		}
	}
	if eff := effects[key]; eff != nil {
		for i, a := range call.Args {
			if eff.Terminates[i] && isObj(a) {
				return true
			}
		}
		if eff.Terminates[recvIndex] {
			if rx := callReceiver(fn, call); rx != nil && isObj(rx) {
				return true
			}
		}
	}
	return false
}
