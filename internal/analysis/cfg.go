package analysis

import (
	"go/ast"
)

// cfgNode is one statement in a function's control-flow graph.
// Compound statements (if/for/switch/select) get a node for their
// header (init/cond/tag); their bodies are separate nodes.
type cfgNode struct {
	stmt  ast.Stmt
	succs []*cfgNode
}

// cfg is a minimal intra-function control-flow graph: just enough to
// ask "does every path from node A to function exit pass through a
// node in set B". Function literals are opaque (their bodies are
// analyzed as separate functions).
type cfg struct {
	exit   *cfgNode // synthetic: reached by returns and by falling off the end
	byStmt map[ast.Stmt]*cfgNode
	// ok is false if the function uses control flow the builder does
	// not model (goto); callers should then skip path analysis rather
	// than risk false reports.
	ok bool
}

type cfgBuilder struct {
	g *cfg
	// break/continue targets for the innermost enclosing constructs.
	breaks    []*cfgNode
	continues []*cfgNode
	// labeled break/continue targets.
	labelBreak    map[string]*cfgNode
	labelContinue map[string]*cfgNode
	// pendingLabel is set between a LabeledStmt and the loop/switch it
	// labels.
	pendingLabel string
}

// buildCFG constructs the graph for a function body and returns it
// with the entry node. cfg.ok is false if unsupported control flow
// (goto) was found.
func buildCFG(body *ast.BlockStmt) (*cfg, *cfgNode) {
	g := &cfg{
		exit:   &cfgNode{},
		byStmt: make(map[ast.Stmt]*cfgNode),
		ok:     true,
	}
	b := &cfgBuilder{
		g:             g,
		labelBreak:    make(map[string]*cfgNode),
		labelContinue: make(map[string]*cfgNode),
	}
	entry := b.buildList(body.List, g.exit)
	return g, entry
}

func (b *cfgBuilder) node(s ast.Stmt) *cfgNode {
	n := &cfgNode{stmt: s}
	b.g.byStmt[s] = n
	return n
}

// buildList wires a statement list so that control falls through to
// follow, returning the entry node of the list (follow if empty).
func (b *cfgBuilder) buildList(stmts []ast.Stmt, follow *cfgNode) *cfgNode {
	next := follow
	for i := len(stmts) - 1; i >= 0; i-- {
		next = b.buildStmt(stmts[i], next)
	}
	return next
}

func (b *cfgBuilder) buildStmt(s ast.Stmt, follow *cfgNode) *cfgNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.buildList(s.List, follow)

	case *ast.IfStmt:
		n := b.node(s)
		thenE := b.buildList(s.Body.List, follow)
		elseE := follow
		if s.Else != nil {
			elseE = b.buildStmt(s.Else, follow)
		}
		n.succs = []*cfgNode{thenE, elseE}
		return n

	case *ast.ForStmt:
		n := b.node(s)
		b.registerLabel(n, follow)
		b.breaks = append(b.breaks, follow)
		b.continues = append(b.continues, n)
		bodyE := b.buildList(s.Body.List, n)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		n.succs = []*cfgNode{bodyE}
		if s.Cond != nil {
			// `for {}` only exits via break; with a condition the loop
			// may also terminate normally.
			n.succs = append(n.succs, follow)
		}
		return n

	case *ast.RangeStmt:
		n := b.node(s)
		b.registerLabel(n, follow)
		b.breaks = append(b.breaks, follow)
		b.continues = append(b.continues, n)
		bodyE := b.buildList(s.Body.List, n)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		n.succs = []*cfgNode{bodyE, follow}
		return n

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var clauses []ast.Stmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			clauses = sw.Body.List
		} else {
			clauses = s.(*ast.TypeSwitchStmt).Body.List
		}
		n := b.node(s)
		b.registerLabel(n, follow)
		b.breaks = append(b.breaks, follow)
		hasDefault := false
		// Build clauses last-to-first so fallthrough can target the
		// next clause's entry.
		next := follow // entry of the following clause, for fallthrough
		entries := make([]*cfgNode, 0, len(clauses))
		for i := len(clauses) - 1; i >= 0; i-- {
			cc := clauses[i].(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			e := b.buildCaseBody(cc.Body, follow, next)
			entries = append(entries, e)
			next = e
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		n.succs = entries
		if !hasDefault {
			n.succs = append(n.succs, follow)
		}
		return n

	case *ast.SelectStmt:
		n := b.node(s)
		b.registerLabel(n, follow)
		b.breaks = append(b.breaks, follow)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			n.succs = append(n.succs, b.buildList(cc.Body, follow))
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if len(n.succs) == 0 {
			// select{} blocks forever: no successors.
		}
		return n

	case *ast.ReturnStmt:
		n := b.node(s)
		n.succs = []*cfgNode{b.g.exit}
		return n

	case *ast.BranchStmt:
		n := b.node(s)
		switch s.Tok.String() {
		case "break":
			if t := b.branchTarget(s, b.breaks, b.labelBreak); t != nil {
				n.succs = []*cfgNode{t}
			} else {
				b.g.ok = false
			}
		case "continue":
			if t := b.branchTarget(s, b.continues, b.labelContinue); t != nil {
				n.succs = []*cfgNode{t}
			} else {
				b.g.ok = false
			}
		case "fallthrough":
			// Handled in buildCaseBody; a bare one here (invalid Go)
			// falls through to follow.
			n.succs = []*cfgNode{follow}
		default: // goto: not modeled
			b.g.ok = false
		}
		return n

	case *ast.LabeledStmt:
		saved := b.pendingLabel
		b.pendingLabel = s.Label.Name
		e := b.buildStmt(s.Stmt, follow)
		b.pendingLabel = saved
		return e

	default:
		// Simple statements: expr, assign, decl, defer, go, send,
		// inc/dec, empty.
		n := b.node(s)
		if isTerminalCall(s) {
			// panic() and similar never fall through; giving them no
			// successor keeps "must do X before exit" checks from
			// flagging paths that die.
			return n
		}
		n.succs = []*cfgNode{follow}
		return n
	}
}

// buildCaseBody builds one case clause body where a trailing
// fallthrough jumps to nextClause instead of follow.
func (b *cfgBuilder) buildCaseBody(body []ast.Stmt, follow, nextClause *cfgNode) *cfgNode {
	if n := len(body); n > 0 {
		if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
			fallNode := b.node(br)
			fallNode.succs = []*cfgNode{nextClause}
			return b.buildList(body[:n-1], fallNode)
		}
	}
	return b.buildList(body, follow)
}

func (b *cfgBuilder) registerLabel(continueTarget, breakTarget *cfgNode) {
	if b.pendingLabel != "" {
		b.labelContinue[b.pendingLabel] = continueTarget
		b.labelBreak[b.pendingLabel] = breakTarget
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, stack []*cfgNode, labeled map[string]*cfgNode) *cfgNode {
	if s.Label != nil {
		return labeled[s.Label.Name]
	}
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// isTerminalCall reports whether the statement is a call that never
// returns (panic).
func isTerminalCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// pathMissing reports whether some path from start's successors to
// g.exit avoids every node for which stop returns true. Nodes where
// stop is true are not traversed past.
func (g *cfg) pathMissing(start *cfgNode, stop func(*cfgNode) bool) bool {
	seen := make(map[*cfgNode]bool)
	var dfs func(n *cfgNode) bool
	dfs = func(n *cfgNode) bool {
		if n == g.exit {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		if stop(n) {
			return false
		}
		for _, s := range n.succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	for _, s := range start.succs {
		if dfs(s) {
			return true
		}
	}
	return false
}
