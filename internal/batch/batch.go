// Package batch is a miniature cluster job scheduler in the spirit of
// LSF, which the paper integrated Cruz with ("We have implemented Cruz on
// a cluster of Linux 2.4 systems and integrated it with LSF", §6). It
// places a parallel job's tasks into pods across nodes, wires the ring of
// pod addresses into the application, and drives periodic coordinated
// checkpoints; jobs can be suspended to their last checkpoint and resumed
// later — the resource-management use case from the paper's introduction.
package batch

import (
	"errors"
	"fmt"

	"cruz"
	"cruz/internal/sim"
)

// Errors returned by the scheduler.
var (
	ErrJobExists  = errors.New("batch: job already exists")
	ErrNoSuchJob  = errors.New("batch: no such job")
	ErrNotRunning = errors.New("batch: job is not running")
)

// TaskFactory builds the program for one rank of a job. podIPs lists the
// pod addresses of all ranks, in rank order, so tasks can find each other
// (Cruz preserves these addresses across checkpoint-restart, which is
// exactly why no location service is needed after a restart).
type TaskFactory func(rank, n int, podIPs []cruz.Addr) cruz.Program

// JobSpec describes a parallel job.
type JobSpec struct {
	Name  string
	Tasks int
	Make  TaskFactory
	// CheckpointEvery enables periodic coordinated checkpoints (0 = off).
	// The paper's slm runs used an 8-second interval.
	CheckpointEvery cruz.Duration
	// Optimized selects the Fig. 4 protocol for periodic checkpoints.
	Optimized bool
	// Incremental makes periodic checkpoints after the first incremental.
	Incremental bool
}

// JobState is a scheduler job's lifecycle state.
type JobState int

// Job states.
const (
	StateRunning JobState = iota + 1
	StateSuspended
	StateCompleted
)

// Job is a scheduled parallel job.
type Job struct {
	Spec         JobSpec
	Core         *cruz.Job
	PodIPs       []cruz.Addr
	pods         []string
	sched        *Scheduler
	state        JobState
	ticker       *sim.Ticker
	ckptInFlight bool

	// Checkpoints counts committed periodic checkpoints; LastResult is
	// the most recent one.
	Checkpoints int
	LastResult  *cruz.CheckpointResult
	// CheckpointErrs counts failed periodic attempts.
	CheckpointErrs int
}

// Scheduler places jobs on a cluster.
type Scheduler struct {
	cluster       *cruz.Cluster
	jobs          map[string]*Job
	nextPlacement int
}

// New creates a scheduler for the cluster.
func New(cluster *cruz.Cluster) *Scheduler {
	return &Scheduler{cluster: cluster, jobs: make(map[string]*Job)}
}

// Job returns a job by name, or nil.
func (s *Scheduler) Job(name string) *Job { return s.jobs[name] }

// Submit places and starts a job: one pod per task, round-robin across
// nodes, then spawns each rank's program with the full address list.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	if _, dup := s.jobs[spec.Name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrJobExists, spec.Name)
	}
	if spec.Tasks <= 0 || spec.Make == nil {
		return nil, fmt.Errorf("batch: invalid spec for %q", spec.Name)
	}
	j := &Job{Spec: spec, sched: s, state: StateRunning}

	// Create all pods first so every rank can learn every address.
	var pods []*cruz.Pod
	for i := 0; i < spec.Tasks; i++ {
		name := fmt.Sprintf("%s-%d", spec.Name, i)
		node := s.nextPlacement % len(s.cluster.Nodes)
		s.nextPlacement++
		pod, err := s.cluster.NewPod(node, name)
		if err != nil {
			return nil, fmt.Errorf("batch: place %s: %w", name, err)
		}
		pods = append(pods, pod)
		j.pods = append(j.pods, name)
		j.PodIPs = append(j.PodIPs, pod.IP())
	}
	for i, pod := range pods {
		if _, err := pod.Spawn(fmt.Sprintf("rank%d", i), spec.Make(i, spec.Tasks, j.PodIPs)); err != nil {
			return nil, fmt.Errorf("batch: spawn rank %d: %w", i, err)
		}
	}
	coreJob, err := s.cluster.DefineJob(spec.Name, j.pods...)
	if err != nil {
		return nil, err
	}
	j.Core = coreJob
	s.jobs[spec.Name] = j
	if spec.CheckpointEvery > 0 {
		j.ticker = s.cluster.Engine.NewTicker(spec.CheckpointEvery, j.periodicCheckpoint)
	}
	return j, nil
}

// periodicCheckpoint fires from the scheduler's timer inside the event
// loop, so it uses the asynchronous coordinator API.
func (j *Job) periodicCheckpoint() {
	if j.state != StateRunning || j.ckptInFlight || j.Done() {
		return
	}
	opts := cruz.CheckpointOptions{
		Optimized:   j.Spec.Optimized,
		Incremental: j.Spec.Incremental && j.Checkpoints > 0,
	}
	j.ckptInFlight = true
	j.sched.cluster.Coordinator.Checkpoint(j.Core, opts, func(res *cruz.CheckpointResult, err error) {
		j.ckptInFlight = false
		if err != nil {
			j.CheckpointErrs++
			return
		}
		j.Checkpoints++
		j.LastResult = res
	})
}

// State returns the job's lifecycle state, detecting completion.
func (j *Job) State() JobState {
	if j.state == StateRunning && j.Done() {
		j.state = StateCompleted
		if j.ticker != nil {
			j.ticker.Stop()
		}
	}
	return j.state
}

// Done reports whether every task process has exited.
func (j *Job) Done() bool {
	for _, name := range j.pods {
		pod := j.sched.cluster.Pod(name)
		if pod == nil {
			return false
		}
		if len(pod.VPIDs()) > 0 {
			return false
		}
	}
	return true
}

// drainCheckpoint stops the periodic ticker and waits out any in-flight
// coordinated checkpoint, so lifecycle operations never collide with the
// coordinator's one-op-per-job rule.
func (j *Job) drainCheckpoint() error {
	if j.ticker != nil {
		j.ticker.Stop()
		j.ticker = nil
	}
	if !j.sched.cluster.RunUntil(func() bool { return !j.ckptInFlight }, 10*60*cruz.Second) {
		return fmt.Errorf("batch: %s: in-flight checkpoint never finished", j.Spec.Name)
	}
	return nil
}

// Suspend checkpoints the job and releases its compute: the pods are
// destroyed after a final coordinated checkpoint. The paper's
// introduction calls this out for "resource management in emerging
// Utility Computing and Grid environments".
func (j *Job) Suspend() error {
	if j.state != StateRunning {
		return fmt.Errorf("%w: %s", ErrNotRunning, j.Spec.Name)
	}
	if err := j.drainCheckpoint(); err != nil {
		return err
	}
	res, err := j.sched.cluster.Checkpoint(j.Core, cruz.CheckpointOptions{})
	if err != nil {
		return fmt.Errorf("batch: suspend checkpoint: %w", err)
	}
	j.Checkpoints++
	j.LastResult = res
	for _, name := range j.pods {
		if pod := j.sched.cluster.Pod(name); pod != nil {
			pod.Destroy()
		}
	}
	j.state = StateSuspended
	return nil
}

// Resume restarts a suspended job from its last checkpoint.
func (j *Job) Resume() error {
	if j.state != StateSuspended {
		return fmt.Errorf("batch: %s is not suspended", j.Spec.Name)
	}
	if _, err := j.sched.cluster.Restart(j.Core, 0); err != nil {
		return fmt.Errorf("batch: resume: %w", err)
	}
	j.state = StateRunning
	if j.Spec.CheckpointEvery > 0 {
		j.ticker = j.sched.cluster.Engine.NewTicker(j.Spec.CheckpointEvery, j.periodicCheckpoint)
	}
	return nil
}

// RecoverFromCrash restarts the job from its last committed checkpoint
// after its pods were lost (e.g. the processes were killed). Unlike
// Resume it does not require a prior Suspend.
func (j *Job) RecoverFromCrash() error {
	if err := j.drainCheckpoint(); err != nil {
		return err
	}
	for _, name := range j.pods {
		if pod := j.sched.cluster.Pod(name); pod != nil && !pod.Destroyed() {
			pod.Destroy()
		}
	}
	if _, err := j.sched.cluster.Restart(j.Core, 0); err != nil {
		return fmt.Errorf("batch: recover: %w", err)
	}
	j.state = StateRunning
	if j.Spec.CheckpointEvery > 0 {
		j.ticker = j.sched.cluster.Engine.NewTicker(j.Spec.CheckpointEvery, j.periodicCheckpoint)
	}
	return nil
}
