package batch

import (
	"errors"
	"testing"

	"cruz"
	"cruz/internal/apps/slm"
	"cruz/internal/sim"
)

func init() {
	cruz.RegisterProgram(&slm.Worker{})
}

func slmSpec(name string, tasks, steps int, ckptEvery cruz.Duration) JobSpec {
	cfg := slm.Config{
		Workers:             tasks,
		Steps:               steps,
		TotalComputePerStep: 4 * sim.Millisecond,
		StepOverhead:        500 * sim.Microsecond,
		HaloBytes:           4 << 10,
		GridBytes:           1 << 20,
		DirtyPagesPerStep:   16,
		Port:                9200,
	}
	return JobSpec{
		Name:            name,
		Tasks:           tasks,
		CheckpointEvery: ckptEvery,
		Make: func(rank, n int, ips []cruz.Addr) cruz.Program {
			return slm.NewWorker(cfg, rank, ips[(rank+1)%n])
		},
	}
}

func newCluster(t *testing.T, nodes int) *cruz.Cluster {
	t.Helper()
	cl, err := cruz.New(cruz.Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestSubmitAndComplete(t *testing.T) {
	cl := newCluster(t, 3)
	s := New(cl)
	job, err := s.Submit(slmSpec("wx", 3, 30, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !cl.RunUntil(func() bool { return job.State() == StateCompleted }, 10*cruz.Second) {
		t.Fatalf("job never completed; state=%v", job.State())
	}
}

func TestPeriodicCheckpoints(t *testing.T) {
	cl := newCluster(t, 2)
	s := New(cl)
	job, err := s.Submit(slmSpec("wx", 2, 0 /* forever */, 100*cruz.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(650 * cruz.Millisecond)
	if job.Checkpoints < 4 || job.Checkpoints > 7 {
		t.Fatalf("checkpoints in 650ms at 100ms interval = %d", job.Checkpoints)
	}
	if job.CheckpointErrs != 0 {
		t.Fatalf("checkpoint errors: %d", job.CheckpointErrs)
	}
	if job.LastResult == nil || job.LastResult.Seq != job.Checkpoints {
		t.Fatalf("last result %+v", job.LastResult)
	}
}

func TestSuspendResume(t *testing.T) {
	cl := newCluster(t, 2)
	s := New(cl)
	job, err := s.Submit(slmSpec("wx", 2, 200, 0))
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(300 * cruz.Millisecond)
	stepsAt := cl.Pod("wx-0").Process(1).Program().(*slm.Worker).StepsDone
	if stepsAt == 0 {
		t.Fatal("no progress before suspend")
	}
	if err := job.Suspend(); err != nil {
		t.Fatal(err)
	}
	if job.State() != StateSuspended {
		t.Fatalf("state = %v", job.State())
	}
	// While suspended, the cluster's nodes are free: no job processes.
	for _, n := range cl.Nodes {
		if len(n.Kernel.Processes()) > 1 { // the agent owns no processes; allow daemons
			for _, p := range n.Kernel.Processes() {
				t.Fatalf("process %q still running while suspended", p.Name())
			}
		}
	}
	cl.Run(500 * cruz.Millisecond)
	if err := job.Resume(); err != nil {
		t.Fatal(err)
	}
	w := cl.Pod("wx-0").Process(1).Program().(*slm.Worker)
	if w.StepsDone+1 < stepsAt {
		t.Fatalf("resume lost work: %d vs %d", w.StepsDone, stepsAt)
	}
	if !cl.RunUntil(func() bool { return job.State() == StateCompleted }, 10*cruz.Second) {
		t.Fatalf("job never completed after resume (steps=%d, fault=%q)", w.StepsDone, w.Fault)
	}
	if w2 := cl.Pod("wx-0").Process(1); w2 != nil {
		t.Fatal("completed job left processes")
	}
}

func TestRecoverFromCrash(t *testing.T) {
	cl := newCluster(t, 2)
	s := New(cl)
	job, err := s.Submit(slmSpec("wx", 2, 300, 100*cruz.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(450 * cruz.Millisecond)
	if job.Checkpoints == 0 {
		t.Fatal("no checkpoint before crash")
	}
	// Crash the pods.
	cl.Pod("wx-0").Destroy()
	cl.Pod("wx-1").Destroy()
	if err := job.RecoverFromCrash(); err != nil {
		t.Fatal(err)
	}
	if !cl.RunUntil(func() bool { return job.State() == StateCompleted }, 20*cruz.Second) {
		w := cl.Pod("wx-0").Process(1)
		detail := "gone"
		if w != nil {
			detail = w.Program().(*slm.Worker).Fault
		}
		t.Fatalf("job never completed after recovery (%s)", detail)
	}
}

func TestSubmitValidation(t *testing.T) {
	cl := newCluster(t, 2)
	s := New(cl)
	if _, err := s.Submit(JobSpec{Name: "bad"}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := s.Submit(slmSpec("dup", 2, 10, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(slmSpec("dup", 2, 10, 0)); !errors.Is(err, ErrJobExists) {
		t.Fatalf("duplicate submit = %v", err)
	}
	if s.Job("dup") == nil || s.Job("ghost") != nil {
		t.Fatal("job lookup broken")
	}
}

func TestSuspendRequiresRunning(t *testing.T) {
	cl := newCluster(t, 2)
	s := New(cl)
	job, _ := s.Submit(slmSpec("wx", 2, 10, 0))
	cl.RunUntil(func() bool { return job.State() == StateCompleted }, 10*cruz.Second)
	if err := job.Suspend(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("suspend completed job = %v", err)
	}
}
