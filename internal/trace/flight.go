package trace

import (
	"fmt"
	"sort"
	"strings"

	"cruz/internal/sim"
)

// The flight recorder is the always-on half of the tracing plane: a small
// bounded ring of recent events per node that exists even when the main
// trace ring is off (Config.FlightOnly). When something goes wrong — an
// op aborts, a lease expires, recovery starts — DumpFlight freezes the
// window of events leading up to the trigger, turning a fault-injection
// run into a self-explaining artifact instead of a bare error string.
//
// Determinism: rings are keyed per node but every recorded event also
// gets a global monotonic sequence number, and dumps merge rings by that
// sequence — so a dump's bytes are a pure function of the seed, like
// every other export.

// FlightConfig tunes the always-on flight recorder.
type FlightConfig struct {
	// PerNode bounds the events retained per node. 0 means
	// DefaultFlightPerNode.
	PerNode int
	// Window is how far before the trigger a dump reaches. 0 means
	// DefaultFlightWindow (chosen to cover a full lease timeout).
	Window sim.Duration
	// MaxDumps bounds the dumps retained per run; later triggers are
	// counted but discarded. 0 means DefaultFlightMaxDumps.
	MaxDumps int
}

// Defaults for FlightConfig.
const (
	DefaultFlightPerNode  = 256
	DefaultFlightWindow   = 500 * sim.Millisecond
	DefaultFlightMaxDumps = 8
)

type flightEntry struct {
	seq uint64 // global emission order across all nodes
	ev  Event
}

type flightRing struct {
	buf   []flightEntry
	total uint64
}

type flightRecorder struct {
	cfg          FlightConfig
	seq          uint64
	rings        map[string]*flightRing
	order        []string // node names in first-emission order
	dumps        []*FlightDump
	dumpsDropped int
}

func newFlightRecorder(cfg FlightConfig) *flightRecorder {
	if cfg.PerNode <= 0 {
		cfg.PerNode = DefaultFlightPerNode
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultFlightWindow
	}
	if cfg.MaxDumps <= 0 {
		cfg.MaxDumps = DefaultFlightMaxDumps
	}
	return &flightRecorder{cfg: cfg, rings: make(map[string]*flightRing)}
}

func (f *flightRecorder) record(ev *Event) {
	r := f.rings[ev.Node]
	if r == nil {
		r = &flightRing{buf: make([]flightEntry, f.cfg.PerNode)}
		f.rings[ev.Node] = r
		f.order = append(f.order, ev.Node)
	}
	f.seq++
	r.buf[r.total%uint64(len(r.buf))] = flightEntry{seq: f.seq, ev: *ev}
	r.total++
}

// FlightDump is one frozen pre-trigger window of events.
type FlightDump struct {
	At      sim.Time
	Trigger string // what fired the dump: op.fail, lease.expiry, recovery.start, ...
	Reason  string // trigger detail (op key, node name)
	Window  sim.Duration
	Events  []Event // merged across nodes in global emission order
}

// DumpFlight freezes the flight recorder: every retained event within
// the configured window before now, merged across all nodes in emission
// order. The dump is returned and — up to the MaxDumps bound — kept for
// FlightDumps. Nil-safe.
func (t *Tracer) DumpFlight(trigger, reason string) *FlightDump {
	if t == nil || t.flight == nil {
		return nil
	}
	f := t.flight
	d := &FlightDump{At: t.now(), Trigger: trigger, Reason: reason, Window: f.cfg.Window}
	cutoff := d.At.Add(-f.cfg.Window)
	var entries []flightEntry
	for _, node := range f.order {
		r := f.rings[node]
		n := uint64(len(r.buf))
		start := uint64(0)
		if r.total > n {
			start = r.total - n
		}
		for i := start; i < r.total; i++ {
			e := r.buf[i%n]
			if e.ev.At >= cutoff {
				entries = append(entries, e)
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	d.Events = make([]Event, len(entries))
	for i, e := range entries {
		d.Events[i] = e.ev
	}
	if len(f.dumps) < f.cfg.MaxDumps {
		f.dumps = append(f.dumps, d)
	} else {
		f.dumpsDropped++
	}
	// Mark the trigger in the main trace too (after the snapshot, so the
	// dump itself stays pre-trigger).
	t.Instant("sim", "flight", "dump", Str("trigger", trigger), Str("reason", reason))
	return d
}

// FlightDumps returns the dumps recorded so far, oldest first (bounded
// by FlightConfig.MaxDumps).
func (t *Tracer) FlightDumps() []*FlightDump {
	if t == nil || t.flight == nil {
		return nil
	}
	return t.flight.dumps
}

// FlightDumpsDropped returns how many dumps were discarded because the
// MaxDumps bound was already reached.
func (t *Tracer) FlightDumpsDropped() int {
	if t == nil || t.flight == nil {
		return 0
	}
	return t.flight.dumpsDropped
}

// Format renders the dump as a header line plus the standard timeline.
func (d *FlightDump) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight dump @%v trigger=%s reason=%s window=%v events=%d\n",
		d.At, d.Trigger, d.Reason, d.Window, len(d.Events))
	WriteTimeline(&b, d.Events) //cruzvet:allow errdrop writes to a strings.Builder cannot fail
	return b.String()
}
