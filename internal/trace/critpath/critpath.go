// Package critpath reassembles distributed operations from a flat trace
// event stream and reports what bounds their end-to-end latency.
//
// Every span emitted under a traced operation carries the operation's
// OpID and its parent SpanID (internal/trace SpanContext, propagated
// across the wire in ctl frame headers). BuildTrees groups the Begin/End
// events by OpID and rebuilds one causally-linked span tree per
// operation — coordinator root, agent phases, replication exchanges and
// disk I/O on every node involved. Analyze then walks a tree twice:
//
//   - Phases: the root's direct children in chronological order, plus
//     any lead window the root declared (a "lead.<name>_us" begin
//     argument — e.g. the failure-detection window that elapses before a
//     recovery op can even begin). For sequential pipelines such as
//     recovery (place -> transfer -> restart) the phase durations sum to
//     the operation's total.
//   - Path: the critical path proper — the backward greedy walk that, at
//     every level, follows the child whose End bounds the parent's
//     completion, descending to the deepest span. Time no child covers
//     is attributed to the covering span as self time. The path segment
//     durations always sum to the operation's total, including for
//     trees with parallel branches where phase durations would not.
//
// Everything here is deterministic: trees, reports, and their renderings
// are pure functions of the event slice, and all orderings are explicit
// (time, then SpanID).
package critpath

import (
	"fmt"
	"sort"
	"strings"

	"cruz/internal/sim"
	"cruz/internal/trace"
)

// Span is one reassembled Begin/End pair inside an operation's tree.
type Span struct {
	ID     trace.SpanID
	Op     trace.OpID
	Parent trace.SpanID // zero for the operation root
	Node   string
	Cat    string
	Name   string
	Begin  sim.Time
	End    sim.Time
	// BeginArgs and EndArgs are the arguments carried on the Begin and
	// End events.
	BeginArgs []trace.Arg
	EndArgs   []trace.Arg
	// Children are this span's direct causal children, ordered by Begin
	// time (SpanID breaks ties).
	Children []*Span

	ended bool
}

// Duration is the span's measured extent (zero if it never ended).
func (s *Span) Duration() sim.Duration {
	if !s.ended {
		return 0
	}
	return s.End.Sub(s.Begin)
}

// Ended reports whether the span's End event was observed.
func (s *Span) Ended() bool { return s.ended }

// Tree is one distributed operation's reassembled span tree.
type Tree struct {
	Op   trace.OpID
	Root *Span
	// Spans indexes every span of the operation by ID.
	Spans map[trace.SpanID]*Span
	// Nodes lists the simulated machines that contributed spans, in
	// first-appearance order — the cross-node footprint of the op.
	Nodes []string
	// Orphans are spans whose parent span was never observed (its Begin
	// fell off the ring). They are not reachable from Root.
	Orphans []*Span
}

// BuildTrees reassembles one tree per distributed operation found in the
// event stream, ordered by OpID. Events not linked to an operation
// (Op == 0) and non-span events are ignored.
func BuildTrees(events []trace.Event) []*Tree {
	trees := make(map[trace.OpID]*Tree)
	var order []trace.OpID
	for i := range events {
		ev := &events[i]
		if ev.Op == 0 {
			continue
		}
		tr, ok := trees[ev.Op]
		if !ok {
			tr = &Tree{Op: ev.Op, Spans: make(map[trace.SpanID]*Span)}
			trees[ev.Op] = tr
			order = append(order, ev.Op)
		}
		switch ev.Kind {
		case trace.KindBegin:
			s := &Span{
				ID: ev.Span, Op: ev.Op, Parent: ev.Parent,
				Node: ev.Node, Cat: ev.Cat, Name: ev.Name,
				Begin:     ev.At,
				BeginArgs: append([]trace.Arg(nil), ev.ArgSlice()...),
			}
			tr.Spans[s.ID] = s
			tr.addNode(s.Node)
		case trace.KindEnd:
			if s := tr.Spans[ev.Span]; s != nil {
				s.End = ev.At
				s.ended = true
				s.EndArgs = append([]trace.Arg(nil), ev.ArgSlice()...)
			}
		}
	}
	out := make([]*Tree, 0, len(order))
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, op := range order {
		tr := trees[op]
		tr.link()
		out = append(out, tr)
	}
	return out
}

// addNode records a node in first-appearance order.
func (t *Tree) addNode(node string) {
	for _, n := range t.Nodes {
		if n == node {
			return
		}
	}
	t.Nodes = append(t.Nodes, node)
}

// link wires parent/child edges and identifies the root and orphans.
func (t *Tree) link() {
	ids := make([]trace.SpanID, 0, len(t.Spans))
	for id := range t.Spans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := t.Spans[id]
		if s.Parent == 0 {
			if t.Root == nil {
				t.Root = s
			} else {
				t.Orphans = append(t.Orphans, s)
			}
			continue
		}
		p := t.Spans[s.Parent]
		if p == nil {
			t.Orphans = append(t.Orphans, s)
			continue
		}
		p.Children = append(p.Children, s)
	}
	for _, id := range ids {
		s := t.Spans[id]
		sort.Slice(s.Children, func(i, j int) bool {
			a, b := s.Children[i], s.Children[j]
			if a.Begin != b.Begin {
				return a.Begin < b.Begin
			}
			return a.ID < b.ID
		})
	}
}

// FindRoot returns the first tree (by OpID) whose root span has the
// given name, or nil.
func FindRoot(trees []*Tree, name string) *Tree {
	for _, t := range trees {
		if t.Root != nil && t.Root.Name == name {
			return t
		}
	}
	return nil
}

// SegKind classifies a report segment.
type SegKind uint8

// Segment kinds: a lead window declared by the root, a traced span, or
// self time (parent time no child covers).
const (
	SegLead SegKind = iota
	SegSpan
	SegSelf
)

// Segment is one slice of an operation's latency.
type Segment struct {
	Name string
	Node string // empty for lead segments
	Ms   float64
	Kind SegKind
}

// Report is the latency decomposition of one operation.
type Report struct {
	Op   trace.OpID
	Root string // root span name
	Node string // root span node
	// TotalMs is the operation's end-to-end latency: declared lead
	// windows plus the root span's duration.
	TotalMs float64
	LeadMs  float64
	// Phases decomposes the operation top-level: lead segments, then the
	// root's direct children in chronological order, then the root's
	// residual self time. For sequential pipelines the phase Ms values
	// sum to TotalMs; for parallel fan-outs they can overlap (use Path).
	Phases []Segment
	// Path is the critical path: the chain of spans (with self-time
	// gaps) that bounds the root's completion. Segment Ms values sum to
	// TotalMs exactly.
	Path []Segment
}

// leadArgPrefix marks a root begin argument as a lead window in
// microseconds: "lead.detect_us" becomes lead segment "detect".
const (
	leadArgPrefix = "lead."
	leadArgSuffix = "_us"
)

// Analyze decomposes one operation tree. Returns nil if the tree has no
// root or the root span never ended.
func Analyze(t *Tree) *Report {
	if t == nil || t.Root == nil || !t.Root.ended {
		return nil
	}
	root := t.Root
	r := &Report{Op: t.Op, Root: root.Name, Node: root.Node}
	for _, a := range root.BeginArgs {
		if !a.IsStr && strings.HasPrefix(a.Key, leadArgPrefix) && strings.HasSuffix(a.Key, leadArgSuffix) {
			name := strings.TrimSuffix(strings.TrimPrefix(a.Key, leadArgPrefix), leadArgSuffix)
			ms := a.Num / 1e3
			r.LeadMs += ms
			r.Phases = append(r.Phases, Segment{Name: name, Ms: ms, Kind: SegLead})
		}
	}
	r.TotalMs = r.LeadMs + root.Duration().Milliseconds()

	// Phases: the root's direct children, chronological, plus self time.
	var covered sim.Duration
	for _, c := range root.Children {
		if !c.ended {
			continue
		}
		r.Phases = append(r.Phases, Segment{Name: c.Name, Node: c.Node, Ms: c.Duration().Milliseconds(), Kind: SegSpan})
		covered += c.Duration()
	}
	if self := root.Duration() - covered; self > 0 {
		r.Phases = append(r.Phases, Segment{Name: root.Name + " self", Node: root.Node, Ms: self.Milliseconds(), Kind: SegSelf})
	}

	// Path: lead segments, then the backward greedy walk from the root.
	for _, s := range r.Phases {
		if s.Kind == SegLead {
			r.Path = append(r.Path, s)
		}
	}
	r.Path = append(r.Path, criticalPath(root)...)
	return r
}

// criticalPath walks s backward from its End: at each step it descends
// into the ended child whose End is the latest not after the cursor,
// attributing uncovered time to the covering span as self time. The
// returned segments are chronological and their durations sum exactly to
// s's duration.
func criticalPath(s *Span) []Segment {
	segs := walkBack(s)
	// walkBack emits latest-first; flip to chronological.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return segs
}

func walkBack(s *Span) []Segment {
	var segs []Segment
	cursor := s.End
	for cursor > s.Begin {
		// The child bounding the cursor: latest End <= cursor (IDs break
		// exact ties; children are Begin-ordered so scan all). Requiring
		// Begin < cursor guarantees the cursor strictly decreases — a
		// zero-duration child sitting exactly at the cursor would
		// otherwise be re-picked forever.
		var best *Span
		for _, c := range s.Children {
			if !c.ended || c.End > cursor || c.Begin >= cursor || c.Begin < s.Begin {
				continue
			}
			if best == nil || c.End > best.End || (c.End == best.End && c.ID > best.ID) {
				best = c
			}
		}
		if best == nil {
			segs = append(segs, Segment{Name: s.Name, Node: s.Node, Ms: cursor.Sub(s.Begin).Milliseconds(), Kind: selfKind(s)})
			return segs
		}
		if gap := cursor.Sub(best.End); gap > 0 {
			segs = append(segs, Segment{Name: s.Name, Node: s.Node, Ms: gap.Milliseconds(), Kind: SegSelf})
		}
		segs = append(segs, walkBack(best)...)
		cursor = best.Begin
	}
	return segs
}

// selfKind labels a span's own contribution: a leaf span counts as a
// span segment, an interior span's uncovered prefix as self time.
func selfKind(s *Span) SegKind {
	if len(s.Children) == 0 {
		return SegSpan
	}
	return SegSelf
}

// Summary renders the report as one line, e.g.
//
//	recovery op=3 [svc] total 412.000 ms = detect 350.000 + recovery.place 2.000 + ...
func (r *Report) Summary() string {
	// Phases tile the root exactly for sequential pipelines (recovery);
	// then "= a + b" is real arithmetic. Parallel fan-out (per-agent
	// checkpoint spans) overlaps, so render "; a | b" instead of
	// implying a sum that does not hold.
	sum := 0.0
	for _, s := range r.Phases {
		sum += s.Ms
	}
	lead, sep := " =", " +"
	if d := sum - r.TotalMs; d > 1e-6 || d < -1e-6 {
		lead, sep = ";", " |"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s op=%d [%s] total %.3f ms%s", r.Root, r.Op, r.Node, r.TotalMs, lead)
	for i, s := range r.Phases {
		if i > 0 {
			b.WriteString(sep)
		}
		fmt.Fprintf(&b, " %s %.3f", s.Name, s.Ms)
	}
	return b.String()
}

// Format renders the full decomposition as a two-part table.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "op %d %s [%s] total %.3f ms (lead %.3f ms)\n", r.Op, r.Root, r.Node, r.TotalMs, r.LeadMs)
	b.WriteString("phases:\n")
	writeSegs(&b, r.Phases)
	b.WriteString("critical path:\n")
	writeSegs(&b, r.Path)
	return b.String()
}

func writeSegs(b *strings.Builder, segs []Segment) {
	for _, s := range segs {
		node := s.Node
		switch s.Kind {
		case SegLead:
			node = "(lead)"
		case SegSelf:
			node += " (self)"
		}
		fmt.Fprintf(b, "  %-28s %-18s %12.3f ms\n", s.Name, node, s.Ms)
	}
}

// Format renders the tree indented, children ordered by Begin then ID.
// Offsets are relative to the root span's Begin.
func (t *Tree) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "op %d spans=%d nodes=%s\n", t.Op, len(t.Spans), strings.Join(t.Nodes, ","))
	if t.Root != nil {
		writeSpan(&b, t.Root, t.Root.Begin, 1)
	}
	for _, o := range t.Orphans {
		fmt.Fprintf(&b, "  (orphan)\n")
		writeSpan(&b, o, o.Begin, 1)
	}
	return b.String()
}

func writeSpan(b *strings.Builder, s *Span, base sim.Time, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if s.ended {
		fmt.Fprintf(b, "%s [%s] @%.3f +%.3f ms\n",
			s.Name, s.Node, s.Begin.Sub(base).Milliseconds(), s.Duration().Milliseconds())
	} else {
		fmt.Fprintf(b, "%s [%s] @%.3f +open\n", s.Name, s.Node, s.Begin.Sub(base).Milliseconds())
	}
	for _, c := range s.Children {
		writeSpan(b, c, base, depth+1)
	}
}
