package critpath

import (
	"math"
	"strings"
	"testing"

	"cruz/internal/sim"
	"cruz/internal/trace"
)

func ms(n int64) sim.Time { return sim.Time(n * int64(sim.Millisecond)) }

func begin(at sim.Time, op trace.OpID, id, parent trace.SpanID, node, name string, args ...trace.Arg) trace.Event {
	ev := trace.Event{At: at, Kind: trace.KindBegin, Node: node, Cat: "core", Name: name,
		Span: id, Op: op, Parent: parent}
	for _, a := range args {
		ev.Args[ev.NArgs] = a
		ev.NArgs++
	}
	return ev
}

func end(at sim.Time, op trace.OpID, id trace.SpanID) trace.Event {
	return trace.Event{At: at, Kind: trace.KindEnd, Span: id, Op: op}
}

// recoveryEvents models a sequential recovery pipeline with one nested
// disk span on another node and a 350 ms declared detect lead.
func recoveryEvents() []trace.Event {
	return []trace.Event{
		begin(ms(0), 5, 1, 0, "svc", "recovery", trace.Int("lead.detect_us", 350000)),
		begin(ms(0), 5, 2, 1, "svc", "recovery.place"),
		end(ms(10), 5, 2),
		begin(ms(10), 5, 3, 1, "svc", "recovery.transfer"),
		begin(ms(12), 5, 4, 3, "node1", "store.adopt"),
		end(ms(38), 5, 4),
		end(ms(40), 5, 3),
		begin(ms(40), 5, 5, 1, "svc", "recovery.restart"),
		end(ms(100), 5, 5),
		end(ms(100), 5, 1),
	}
}

func TestBuildTreesShape(t *testing.T) {
	trees := BuildTrees(recoveryEvents())
	if len(trees) != 1 {
		t.Fatalf("trees = %d, want 1", len(trees))
	}
	tr := trees[0]
	if tr.Op != 5 || tr.Root == nil || tr.Root.Name != "recovery" {
		t.Fatalf("bad root: %+v", tr.Root)
	}
	if len(tr.Root.Children) != 3 {
		t.Fatalf("root children = %d, want 3", len(tr.Root.Children))
	}
	wantNodes := []string{"svc", "node1"}
	if len(tr.Nodes) != 2 || tr.Nodes[0] != wantNodes[0] || tr.Nodes[1] != wantNodes[1] {
		t.Fatalf("nodes = %v, want %v", tr.Nodes, wantNodes)
	}
	if got := FindRoot(trees, "recovery"); got != tr {
		t.Fatal("FindRoot missed the tree")
	}
	if got := FindRoot(trees, "nope"); got != nil {
		t.Fatal("FindRoot invented a tree")
	}
}

func TestAnalyzePhasesAndLead(t *testing.T) {
	r := Analyze(BuildTrees(recoveryEvents())[0])
	if r == nil {
		t.Fatal("nil report")
	}
	if r.LeadMs != 350 {
		t.Fatalf("lead = %v, want 350", r.LeadMs)
	}
	if r.TotalMs != 450 {
		t.Fatalf("total = %v, want 450", r.TotalMs)
	}
	wantPhases := []struct {
		name string
		ms   float64
	}{
		{"detect", 350}, {"recovery.place", 10}, {"recovery.transfer", 30}, {"recovery.restart", 60},
	}
	if len(r.Phases) != len(wantPhases) {
		t.Fatalf("phases = %+v, want %d entries", r.Phases, len(wantPhases))
	}
	var sum float64
	for i, w := range wantPhases {
		if r.Phases[i].Name != w.name || r.Phases[i].Ms != w.ms {
			t.Fatalf("phase %d = %+v, want %+v", i, r.Phases[i], w)
		}
		sum += r.Phases[i].Ms
	}
	// Sequential pipeline: phases decompose the total exactly.
	if sum != r.TotalMs {
		t.Fatalf("phase sum %v != total %v", sum, r.TotalMs)
	}
}

func TestCriticalPathSumsToTotal(t *testing.T) {
	r := Analyze(BuildTrees(recoveryEvents())[0])
	var sum float64
	for _, s := range r.Path {
		sum += s.Ms
	}
	if math.Abs(sum-r.TotalMs) > 1e-9 {
		t.Fatalf("path sum %v != total %v (path %+v)", sum, r.TotalMs, r.Path)
	}
	// The deepest span (the node1 disk adopt) must appear on the path.
	found := false
	for _, s := range r.Path {
		if s.Name == "store.adopt" && s.Node == "node1" && s.Ms == 26 {
			found = true
		}
	}
	if !found {
		t.Fatalf("store.adopt missing from path: %+v", r.Path)
	}
}

func TestCriticalPathParallelChildren(t *testing.T) {
	// Two overlapping children: c1 0-30, c2 5-50 under a 0-50 root. The
	// path follows c2 and charges the uncovered prefix to the root.
	events := []trace.Event{
		begin(ms(0), 7, 10, 0, "svc", "checkpoint"),
		begin(ms(0), 7, 11, 10, "node0", "agent.checkpoint"),
		begin(ms(5), 7, 12, 10, "node1", "agent.checkpoint"),
		end(ms(30), 7, 11),
		end(ms(50), 7, 12),
		end(ms(50), 7, 10),
	}
	r := Analyze(BuildTrees(events)[0])
	if r.TotalMs != 50 {
		t.Fatalf("total = %v, want 50", r.TotalMs)
	}
	var sum float64
	for _, s := range r.Path {
		sum += s.Ms
	}
	if sum != 50 {
		t.Fatalf("path sum %v != 50 (path %+v)", sum, r.Path)
	}
	// Phases overlap (30+45 > 50) — exactly why Path exists.
	if len(r.Path) != 2 || r.Path[0].Kind != SegSelf || r.Path[0].Ms != 5 ||
		r.Path[1].Node != "node1" || r.Path[1].Ms != 45 {
		t.Fatalf("path = %+v", r.Path)
	}
}

func TestOrphanSpans(t *testing.T) {
	// Span 21's parent 99 was never observed (fell off the ring).
	events := []trace.Event{
		begin(ms(0), 3, 20, 0, "svc", "op"),
		begin(ms(1), 3, 21, 99, "node0", "lost.parent"),
		end(ms(2), 3, 21),
		end(ms(3), 3, 20),
	}
	tr := BuildTrees(events)[0]
	if len(tr.Orphans) != 1 || tr.Orphans[0].Name != "lost.parent" {
		t.Fatalf("orphans = %+v", tr.Orphans)
	}
	if got := tr.Format(); !strings.Contains(got, "(orphan)") {
		t.Fatalf("format lacks orphan marker:\n%s", got)
	}
}

func TestAnalyzeOpenRoot(t *testing.T) {
	events := []trace.Event{begin(ms(0), 2, 30, 0, "svc", "hung")}
	if r := Analyze(BuildTrees(events)[0]); r != nil {
		t.Fatalf("expected nil report for unended root, got %+v", r)
	}
}

func TestRenderingsDeterministic(t *testing.T) {
	trees1 := BuildTrees(recoveryEvents())
	trees2 := BuildTrees(recoveryEvents())
	if a, b := trees1[0].Format(), trees2[0].Format(); a != b {
		t.Fatalf("tree format differs:\n%s\n---\n%s", a, b)
	}
	r1, r2 := Analyze(trees1[0]), Analyze(trees2[0])
	if r1.Format() != r2.Format() || r1.Summary() != r2.Summary() {
		t.Fatal("report rendering differs across identical inputs")
	}
	for _, want := range []string{"recovery.restart", "detect", "(lead)", "critical path:"} {
		if !strings.Contains(r1.Format(), want) {
			t.Fatalf("format lacks %q:\n%s", want, r1.Format())
		}
	}
}
