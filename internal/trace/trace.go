// Package trace is Cruz's deterministic tracing and telemetry layer.
//
// Because the whole stack runs on one discrete-event engine, every trace
// event is stamped with virtual time and the complete trace is a pure
// function of the simulation seed: two runs from the same seed produce
// byte-identical exports. That makes traces diffable — a behavioural
// change shows up as a trace diff, not as noise.
//
// The model is deliberately small:
//
//   - Instant: a point event (a signal delivered, a retransmit fired).
//   - Span: a Begin/End pair measuring a phase (quiesce, disk write, a
//     whole coordinated checkpoint). Spans nest and may overlap across
//     nodes; they are matched by SpanID, not by stack discipline.
//   - Counter: a named numeric sample (events dispatched, queue depth).
//
// Every event carries a node (which simulated machine), a category
// (which subsystem: sim, kernel, tcp, zap, core, flush, ckpt, phase),
// and up to MaxArgs key/value arguments stored inline — no maps, no
// interface boxing — so an enabled tracer stays allocation-light and a
// nil *Tracer is a safe no-op everywhere.
//
// Events land in a bounded ring buffer; exporters (export.go) render the
// ring as a human-readable timeline or as Chrome trace-event JSON for
// Perfetto / chrome://tracing, and report.go derives the per-phase
// checkpoint-latency breakdown the paper's Fig. 5 discussion implies.
package trace

import "cruz/internal/sim"

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	KindInstant Kind = iota
	KindBegin
	KindEnd
	KindCounter
)

func (k Kind) String() string {
	switch k {
	case KindInstant:
		return "instant"
	case KindBegin:
		return "begin"
	case KindEnd:
		return "end"
	case KindCounter:
		return "counter"
	}
	return "unknown"
}

// MaxArgs is the number of key/value arguments an event can carry inline.
const MaxArgs = 4

// Arg is one key/value argument. Exactly one of Str (IsStr) or Num is
// meaningful. Args are stored by value inside events to avoid per-event
// heap allocation.
type Arg struct {
	Key   string
	Str   string
	Num   float64
	IsStr bool
}

// Str builds a string-valued argument.
func Str(key, val string) Arg { return Arg{Key: key, Str: val, IsStr: true} }

// Num builds a float-valued argument.
func Num(key string, val float64) Arg { return Arg{Key: key, Num: val} }

// Int builds an integer-valued argument.
func Int(key string, val int64) Arg { return Arg{Key: key, Num: float64(val)} }

// SpanID identifies one Begin/End pair. IDs are allocated from a
// deterministic counter, never reused within a run.
type SpanID uint64

// Event is one trace record. At is virtual time; Node and Cat scope the
// event to a machine and subsystem; Span links Begin/End pairs; Value
// carries the sample for counters.
type Event struct {
	At    sim.Time
	Kind  Kind
	Node  string
	Cat   string
	Name  string
	Span  SpanID
	Value float64
	NArgs uint8
	Args  [MaxArgs]Arg
}

// ArgSlice returns the event's populated arguments.
func (ev *Event) ArgSlice() []Arg { return ev.Args[:ev.NArgs] }

// Config tunes a Tracer.
type Config struct {
	// Capacity bounds the event ring buffer; once full, the oldest events
	// are overwritten. 0 means DefaultCapacity.
	Capacity int
	// SampleEvery emits engine dispatch counters every N events fired.
	// 0 means DefaultSampleEvery; negative disables engine sampling.
	SampleEvery int
}

// Defaults for Config.
const (
	DefaultCapacity    = 1 << 16
	DefaultSampleEvery = 4096
)

type spanMeta struct {
	node, cat, name string
}

// Tracer collects events into a bounded ring. A nil *Tracer is valid and
// every method on it is a no-op, so call sites need no enablement checks
// beyond guarding expensive argument construction with Enabled.
type Tracer struct {
	engine *sim.Engine
	buf    []Event
	total  uint64 // events ever emitted; buf index = total % len(buf)
	nextID SpanID
	open   map[SpanID]spanMeta
}

// New creates a tracer, attaches it to the engine as its trace sink (so
// trace.FromEngine finds it from any component), and installs the
// sampled dispatch-counter hook.
func New(engine *sim.Engine, cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	t := &Tracer{
		engine: engine,
		buf:    make([]Event, cfg.Capacity),
		open:   make(map[SpanID]spanMeta),
	}
	engine.SetTraceSink(t)
	if cfg.SampleEvery >= 0 {
		every := uint64(cfg.SampleEvery)
		if every == 0 {
			every = DefaultSampleEvery
		}
		engine.SetStepHook(func() {
			if fired := engine.Fired(); fired%every == 0 {
				t.Counter("sim", "sim", "events_fired", float64(fired))
				t.Counter("sim", "sim", "queue_depth", float64(engine.Pending()))
			}
		})
	}
	return t
}

// FromEngine returns the tracer attached to an engine, or nil if tracing
// is disabled. The nil result is safe to use directly.
func FromEngine(e *sim.Engine) *Tracer {
	if e == nil {
		return nil
	}
	t, _ := e.TraceSink().(*Tracer)
	return t
}

// Enabled reports whether events are being collected. Use it to guard
// argument construction that would otherwise run on hot paths:
//
//	if tr.Enabled() {
//		tr.Instant(node, "tcp", "rto", trace.Str("conn", c.tuple.String()))
//	}
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) now() sim.Time {
	if t.engine != nil {
		return t.engine.Now()
	}
	return 0
}

func (t *Tracer) emit(ev *Event) {
	t.buf[t.total%uint64(len(t.buf))] = *ev
	t.total++
}

func setArgs(ev *Event, args []Arg) {
	n := len(args)
	if n > MaxArgs {
		n = MaxArgs
	}
	for i := 0; i < n; i++ {
		ev.Args[i] = args[i]
	}
	ev.NArgs = uint8(n)
}

// Instant records a point event.
func (t *Tracer) Instant(node, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	ev := Event{At: t.now(), Kind: KindInstant, Node: node, Cat: cat, Name: name}
	setArgs(&ev, args)
	t.emit(&ev)
}

// Counter records a numeric sample.
func (t *Tracer) Counter(node, cat, name string, value float64) {
	if t == nil {
		return
	}
	t.emit(&Event{At: t.now(), Kind: KindCounter, Node: node, Cat: cat, Name: name, Value: value})
}

// Begin opens a span and returns a handle whose End closes it. The zero
// Span (and any Span from a nil tracer) is inert.
func (t *Tracer) Begin(node, cat, name string, args ...Arg) Span {
	if t == nil {
		return Span{}
	}
	t.nextID++
	id := t.nextID
	t.open[id] = spanMeta{node: node, cat: cat, name: name}
	ev := Event{At: t.now(), Kind: KindBegin, Node: node, Cat: cat, Name: name, Span: id}
	setArgs(&ev, args)
	t.emit(&ev)
	return Span{t: t, id: id}
}

// Span is a handle to an open span.
type Span struct {
	t  *Tracer
	id SpanID
}

// Active reports whether the span is real and still open.
func (s Span) Active() bool {
	if s.t == nil {
		return false
	}
	_, ok := s.t.open[s.id]
	return ok
}

// End closes the span. Ending an inert or already-ended span is a no-op,
// which lets cleanup paths End unconditionally.
func (s Span) End(args ...Arg) {
	t := s.t
	if t == nil {
		return
	}
	meta, ok := t.open[s.id]
	if !ok {
		return
	}
	delete(t.open, s.id)
	ev := Event{At: t.now(), Kind: KindEnd, Node: meta.node, Cat: meta.cat, Name: meta.name, Span: s.id}
	setArgs(&ev, args)
	t.emit(&ev)
}

// Len returns the number of events currently held in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.total < uint64(len(t.buf)) {
		return int(t.total)
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	if t.total <= uint64(len(t.buf)) {
		return 0
	}
	return t.total - uint64(len(t.buf))
}

// OpenSpans returns the number of spans begun but not yet ended.
func (t *Tracer) OpenSpans() int {
	if t == nil {
		return 0
	}
	return len(t.open)
}

// Events returns the buffered events oldest-first. The slice is a copy.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	n := uint64(len(t.buf))
	out := make([]Event, 0, t.Len())
	start := uint64(0)
	if t.total > n {
		start = t.total - n
	}
	for i := start; i < t.total; i++ {
		out = append(out, t.buf[i%n])
	}
	return out
}
