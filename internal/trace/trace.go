// Package trace is Cruz's deterministic tracing and telemetry layer.
//
// Because the whole stack runs on one discrete-event engine, every trace
// event is stamped with virtual time and the complete trace is a pure
// function of the simulation seed: two runs from the same seed produce
// byte-identical exports. That makes traces diffable — a behavioural
// change shows up as a trace diff, not as noise.
//
// The model is deliberately small:
//
//   - Instant: a point event (a signal delivered, a retransmit fired).
//   - Span: a Begin/End pair measuring a phase (quiesce, disk write, a
//     whole coordinated checkpoint). Spans nest and may overlap across
//     nodes; they are matched by SpanID, not by stack discipline.
//   - Counter: a named numeric sample (events dispatched, queue depth).
//
// Every event carries a node (which simulated machine), a category
// (which subsystem: sim, kernel, tcp, zap, core, flush, ckpt, phase),
// and up to MaxArgs key/value arguments stored inline — no maps, no
// interface boxing — so an enabled tracer stays allocation-light and a
// nil *Tracer is a safe no-op everywhere.
//
// Events land in a bounded ring buffer; exporters (export.go) render the
// ring as a human-readable timeline or as Chrome trace-event JSON for
// Perfetto / chrome://tracing, and report.go derives the per-phase
// checkpoint-latency breakdown the paper's Fig. 5 discussion implies.
package trace

import (
	"fmt"
	"sort"

	"cruz/internal/sim"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	KindInstant Kind = iota
	KindBegin
	KindEnd
	KindCounter
)

func (k Kind) String() string {
	switch k {
	case KindInstant:
		return "instant"
	case KindBegin:
		return "begin"
	case KindEnd:
		return "end"
	case KindCounter:
		return "counter"
	}
	return "unknown"
}

// MaxArgs is the number of key/value arguments an event can carry inline.
const MaxArgs = 4

// Arg is one key/value argument. Exactly one of Str (IsStr) or Num is
// meaningful. Args are stored by value inside events to avoid per-event
// heap allocation.
type Arg struct {
	Key   string
	Str   string
	Num   float64
	IsStr bool
}

// Str builds a string-valued argument.
func Str(key, val string) Arg { return Arg{Key: key, Str: val, IsStr: true} }

// Num builds a float-valued argument.
func Num(key string, val float64) Arg { return Arg{Key: key, Num: val} }

// Int builds an integer-valued argument.
func Int(key string, val int64) Arg { return Arg{Key: key, Num: float64(val)} }

// SpanID identifies one Begin/End pair. IDs are allocated from a
// deterministic counter, never reused within a run.
type SpanID uint64

// OpID identifies one distributed operation (a coordinated checkpoint,
// restart, or recovery). Like SpanID it is allocated from a deterministic
// counter; all spans of an op — on any node — share its OpID, which is
// what lets the critpath package reassemble one tree from a flat ring.
type OpID uint64

// SpanContext is the causal trace context carried across the wire: the
// operation a message belongs to and the span it was sent under. The
// zero SpanContext means "no traced operation" and is always safe to
// propagate.
type SpanContext struct {
	Op   OpID
	Span SpanID
}

// Zero reports whether the context carries no operation.
func (c SpanContext) Zero() bool { return c == SpanContext{} }

// Event is one trace record. At is virtual time; Node and Cat scope the
// event to a machine and subsystem; Span links Begin/End pairs; Value
// carries the sample for counters.
type Event struct {
	At   sim.Time
	Kind Kind
	Node string
	Cat  string
	Name string
	Span SpanID
	// Op and Parent place the event in a distributed operation's span
	// tree: Op names the operation, Parent the span this one is causally
	// under. Both are zero for unlinked events.
	Op     OpID
	Parent SpanID
	Value  float64
	NArgs  uint8
	Args   [MaxArgs]Arg
}

// ArgSlice returns the event's populated arguments.
func (ev *Event) ArgSlice() []Arg { return ev.Args[:ev.NArgs] }

// Config tunes a Tracer.
type Config struct {
	// Capacity bounds the event ring buffer; once full, the oldest events
	// are overwritten. 0 means DefaultCapacity.
	Capacity int
	// SampleEvery emits engine dispatch counters every N events fired.
	// 0 means DefaultSampleEvery; negative disables engine sampling.
	SampleEvery int
	// FlightOnly drops the main event ring entirely: events feed only the
	// per-node flight recorder. This is the always-on mode a cluster runs
	// in when full tracing is off — Len/Dropped/Events report an empty
	// ring, but DumpFlight still yields the recent-event window.
	FlightOnly bool
	// Flight tunes the always-on flight recorder; zero values mean the
	// DefaultFlight* constants.
	Flight FlightConfig
}

// Defaults for Config.
const (
	DefaultCapacity    = 1 << 16
	DefaultSampleEvery = 4096
)

type spanMeta struct {
	node, cat, name string
	op              OpID
	parent          SpanID
}

// Tracer collects events into a bounded ring. A nil *Tracer is valid and
// every method on it is a no-op, so call sites need no enablement checks
// beyond guarding expensive argument construction with Enabled.
type Tracer struct {
	engine *sim.Engine
	buf    []Event // nil in FlightOnly mode
	total  uint64  // events ever emitted; buf index = total % len(buf)
	nextID SpanID
	nextOp OpID
	open   map[SpanID]spanMeta
	flight *flightRecorder
}

// New creates a tracer, attaches it to the engine as its trace sink (so
// trace.FromEngine finds it from any component), and installs the
// sampled dispatch-counter hook.
func New(engine *sim.Engine, cfg Config) *Tracer {
	t := &Tracer{
		engine: engine,
		open:   make(map[SpanID]spanMeta),
		flight: newFlightRecorder(cfg.Flight),
	}
	if !cfg.FlightOnly {
		if cfg.Capacity <= 0 {
			cfg.Capacity = DefaultCapacity
		}
		t.buf = make([]Event, cfg.Capacity)
	}
	engine.SetTraceSink(t)
	if cfg.SampleEvery >= 0 {
		every := uint64(cfg.SampleEvery)
		if every == 0 {
			every = DefaultSampleEvery
		}
		engine.SetStepHook(func() {
			if fired := engine.Fired(); fired%every == 0 {
				t.Counter("sim", "sim", "events_fired", float64(fired))
				t.Counter("sim", "sim", "queue_depth", float64(engine.Pending()))
			}
		})
	}
	return t
}

// FromEngine returns the tracer attached to an engine, or nil if tracing
// is disabled. The nil result is safe to use directly.
func FromEngine(e *sim.Engine) *Tracer {
	if e == nil {
		return nil
	}
	t, _ := e.TraceSink().(*Tracer)
	return t
}

// Enabled reports whether events are being collected. Use it to guard
// argument construction that would otherwise run on hot paths:
//
//	if tr.Enabled() {
//		tr.Instant(node, "tcp", "rto", trace.Str("conn", c.tuple.String()))
//	}
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) now() sim.Time {
	if t.engine != nil {
		return t.engine.Now()
	}
	return 0
}

func (t *Tracer) emit(ev *Event) {
	if t.buf != nil {
		t.buf[t.total%uint64(len(t.buf))] = *ev
		t.total++
	}
	t.flight.record(ev)
}

func setArgs(ev *Event, args []Arg) {
	n := len(args)
	if n > MaxArgs {
		n = MaxArgs
	}
	for i := 0; i < n; i++ {
		ev.Args[i] = args[i]
	}
	ev.NArgs = uint8(n)
}

// Instant records a point event.
func (t *Tracer) Instant(node, cat, name string, args ...Arg) {
	t.InstantCtx(SpanContext{}, node, cat, name, args...)
}

// InstantCtx records a point event linked under a trace context, so it
// renders inside the op's span tree rather than as a free-floating mark.
func (t *Tracer) InstantCtx(ctx SpanContext, node, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	ev := Event{At: t.now(), Kind: KindInstant, Node: node, Cat: cat, Name: name, Op: ctx.Op, Parent: ctx.Span}
	setArgs(&ev, args)
	t.emit(&ev)
}

// Counter records a numeric sample.
func (t *Tracer) Counter(node, cat, name string, value float64) {
	if t == nil {
		return
	}
	t.emit(&Event{At: t.now(), Kind: KindCounter, Node: node, Cat: cat, Name: name, Value: value})
}

// Begin opens a span and returns a handle whose End closes it. The zero
// Span (and any Span from a nil tracer) is inert. A plain Begin belongs
// to no distributed operation; use BeginOp/BeginChild for spans that
// should link into a cross-node tree.
func (t *Tracer) Begin(node, cat, name string, args ...Arg) Span {
	if t == nil {
		return Span{}
	}
	return t.begin(SpanContext{}, node, cat, name, args)
}

// BeginOp opens the root span of a new distributed operation, allocating
// a fresh OpID from the tracer's deterministic counter.
func (t *Tracer) BeginOp(node, cat, name string, args ...Arg) Span {
	if t == nil {
		return Span{}
	}
	t.nextOp++
	return t.begin(SpanContext{Op: t.nextOp}, node, cat, name, args)
}

// BeginChild opens a span under an existing trace context — typically
// one received off the wire, adopting the sender's operation on this
// node. A zero ctx degrades to a plain Begin.
func (t *Tracer) BeginChild(ctx SpanContext, node, cat, name string, args ...Arg) Span {
	if t == nil {
		return Span{}
	}
	return t.begin(ctx, node, cat, name, args)
}

func (t *Tracer) begin(ctx SpanContext, node, cat, name string, args []Arg) Span {
	t.nextID++
	id := t.nextID
	t.open[id] = spanMeta{node: node, cat: cat, name: name, op: ctx.Op, parent: ctx.Span}
	ev := Event{At: t.now(), Kind: KindBegin, Node: node, Cat: cat, Name: name, Span: id, Op: ctx.Op, Parent: ctx.Span}
	setArgs(&ev, args)
	t.emit(&ev)
	return Span{t: t, id: id, op: ctx.Op}
}

// Span is a handle to an open span.
type Span struct {
	t  *Tracer
	id SpanID
	op OpID
}

// Context returns the trace context for work causally under this span.
// It remains valid after End — a reply sent as a span's last act still
// carries the right lineage.
func (s Span) Context() SpanContext {
	if s.t == nil {
		return SpanContext{}
	}
	return SpanContext{Op: s.op, Span: s.id}
}

// Active reports whether the span is real and still open.
func (s Span) Active() bool {
	if s.t == nil {
		return false
	}
	_, ok := s.t.open[s.id]
	return ok
}

// End closes the span. Ending an inert or already-ended span is a no-op,
// which lets cleanup paths End unconditionally.
func (s Span) End(args ...Arg) {
	t := s.t
	if t == nil {
		return
	}
	meta, ok := t.open[s.id]
	if !ok {
		return
	}
	delete(t.open, s.id)
	ev := Event{At: t.now(), Kind: KindEnd, Node: meta.node, Cat: meta.cat, Name: meta.name,
		Span: s.id, Op: meta.op, Parent: meta.parent}
	setArgs(&ev, args)
	t.emit(&ev)
}

// Len returns the number of events currently held in the ring.
func (t *Tracer) Len() int {
	if t == nil || t.buf == nil {
		return 0
	}
	if t.total < uint64(len(t.buf)) {
		return int(t.total)
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil || t.buf == nil {
		return 0
	}
	if t.total <= uint64(len(t.buf)) {
		return 0
	}
	return t.total - uint64(len(t.buf))
}

// OpenSpans returns the number of spans begun but not yet ended.
func (t *Tracer) OpenSpans() int {
	if t == nil {
		return 0
	}
	return len(t.open)
}

// OpenSpanNames returns one "node/cat/name#id" label per open span,
// ordered by span id — the payload for an end-of-run leak report.
func (t *Tracer) OpenSpanNames() []string {
	if t == nil || len(t.open) == 0 {
		return nil
	}
	ids := make([]SpanID, 0, len(t.open))
	for id := range t.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		m := t.open[id]
		out = append(out, fmt.Sprintf("%s/%s/%s#%d", m.node, m.cat, m.name, id))
	}
	return out
}

// Events returns the buffered events oldest-first. The slice is a copy.
func (t *Tracer) Events() []Event {
	if t == nil || t.buf == nil {
		return nil
	}
	n := uint64(len(t.buf))
	out := make([]Event, 0, t.Len())
	start := uint64(0)
	if t.total > n {
		start = t.total - n
	}
	for i := start; i < t.total; i++ {
		out = append(out, t.buf[i%n])
	}
	return out
}
