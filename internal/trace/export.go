package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"cruz/internal/sim"
)

// WriteTimeline renders events as a human-readable timeline, one line
// per event, oldest first. Span Ends show the span duration; nesting is
// indented per node. The output is deterministic for a given event
// sequence.
func WriteTimeline(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	begins := make(map[SpanID]sim.Time)
	depth := make(map[string]int)
	for i := range events {
		ev := &events[i]
		var mark string
		var tail string
		switch ev.Kind {
		case KindBegin:
			mark = ">"
			begins[ev.Span] = ev.At
		case KindEnd:
			mark = "<"
			if at, ok := begins[ev.Span]; ok {
				tail = fmt.Sprintf(" (%v)", ev.At.Sub(at))
				delete(begins, ev.Span)
			}
			if depth[ev.Node] > 0 {
				depth[ev.Node]--
			}
		case KindCounter:
			mark = "#"
			tail = fmt.Sprintf(" = %g", ev.Value)
		default:
			mark = "*"
		}
		fmt.Fprintf(bw, "[%12.3fms] %-8s %-6s %*s%s %s", float64(ev.At)/1e6,
			ev.Node, ev.Cat, 2*depth[ev.Node], "", mark, ev.Name)
		for _, a := range ev.ArgSlice() {
			if a.IsStr {
				fmt.Fprintf(bw, " %s=%s", a.Key, a.Str)
			} else {
				fmt.Fprintf(bw, " %s=%g", a.Key, a.Num)
			}
		}
		bw.WriteString(tail)
		bw.WriteByte('\n')
		if ev.Kind == KindBegin {
			depth[ev.Node]++
		}
	}
	return bw.Flush()
}

// WriteChromeTrace renders events as Chrome trace-event JSON (the
// "JSON Array Format" with a traceEvents wrapper), loadable in Perfetto
// or chrome://tracing. Nodes map to processes; categories map to named
// threads within each node. Spans are emitted as nestable async events
// ("b"/"e" keyed by span id) because Cruz spans cross callbacks and are
// not stack-disciplined per thread.
//
// The writer builds JSON by hand so field and argument order — and hence
// the exact bytes — are deterministic for a given event sequence.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")

	pids := make(map[string]int)
	tids := make(map[string]int) // "node\x00cat" -> tid within node
	perNode := make(map[string]int)
	first := true
	comma := func() {
		if first {
			first = false
		} else {
			bw.WriteByte(',')
		}
	}
	ids := func(ev *Event) (pid, tid int) {
		pid, ok := pids[ev.Node]
		if !ok {
			pid = len(pids) + 1
			pids[ev.Node] = pid
			comma()
			fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}}",
				pid, strconv.Quote(ev.Node))
		}
		key := ev.Node + "\x00" + ev.Cat
		tid, ok = tids[key]
		if !ok {
			perNode[ev.Node]++
			tid = perNode[ev.Node]
			tids[key] = tid
			comma()
			fmt.Fprintf(bw, "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}",
				pid, tid, strconv.Quote(ev.Cat))
		}
		return pid, tid
	}
	writeArgs := func(ev *Event) {
		bw.WriteString("\"args\":{")
		for i, a := range ev.ArgSlice() {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.Quote(a.Key))
			bw.WriteByte(':')
			if a.IsStr {
				bw.WriteString(strconv.Quote(a.Str))
			} else {
				bw.WriteString(strconv.FormatFloat(a.Num, 'g', -1, 64))
			}
		}
		bw.WriteString("}}")
	}

	for i := range events {
		ev := &events[i]
		pid, tid := ids(ev)
		ts := strconv.FormatFloat(float64(ev.At)/1e3, 'f', 3, 64) // µs
		comma()
		switch ev.Kind {
		case KindBegin, KindEnd:
			ph := "b"
			if ev.Kind == KindEnd {
				ph = "e"
			}
			fmt.Fprintf(bw, "{\"name\":%s,\"cat\":%s,\"ph\":%q,\"id\":\"0x%x\",\"ts\":%s,\"pid\":%d,\"tid\":%d,",
				strconv.Quote(ev.Name), strconv.Quote(ev.Cat), ph, uint64(ev.Span), ts, pid, tid)
			writeArgs(ev)
		case KindCounter:
			fmt.Fprintf(bw, "{\"name\":%s,\"cat\":%s,\"ph\":\"C\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"value\":%s}}",
				strconv.Quote(ev.Name), strconv.Quote(ev.Cat), ts, pid, tid,
				strconv.FormatFloat(ev.Value, 'g', -1, 64))
		default:
			fmt.Fprintf(bw, "{\"name\":%s,\"cat\":%s,\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%d,",
				strconv.Quote(ev.Name), strconv.Quote(ev.Cat), ts, pid, tid)
			writeArgs(ev)
		}
	}
	bw.WriteString("],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}
