package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"cruz/internal/sim"
)

// WriteTimeline renders events as a human-readable timeline, one line
// per event, oldest first. Span Ends show the span duration; nesting is
// indented per node. The output is deterministic for a given event
// sequence.
func WriteTimeline(w io.Writer, events []Event) error {
	return writeTimeline(w, events, 0)
}

// WriteTimeline renders the tracer's ring, with a trailing footer line
// reporting how many older events the ring overflowed past.
func (t *Tracer) WriteTimeline(w io.Writer) error {
	return writeTimeline(w, t.Events(), t.Dropped())
}

func writeTimeline(w io.Writer, events []Event, dropped uint64) error {
	bw := bufio.NewWriter(w)
	begins := make(map[SpanID]sim.Time)
	depth := make(map[string]int)
	for i := range events {
		ev := &events[i]
		var mark string
		var tail string
		switch ev.Kind {
		case KindBegin:
			mark = ">"
			begins[ev.Span] = ev.At
		case KindEnd:
			mark = "<"
			if at, ok := begins[ev.Span]; ok {
				tail = fmt.Sprintf(" (%v)", ev.At.Sub(at))
				delete(begins, ev.Span)
			}
			if depth[ev.Node] > 0 {
				depth[ev.Node]--
			}
		case KindCounter:
			mark = "#"
			tail = fmt.Sprintf(" = %g", ev.Value)
		default:
			mark = "*"
		}
		fmt.Fprintf(bw, "[%12.3fms] %-8s %-6s %*s%s %s", float64(ev.At)/1e6,
			ev.Node, ev.Cat, 2*depth[ev.Node], "", mark, ev.Name)
		if ev.Kind == KindBegin && ev.Op != 0 {
			fmt.Fprintf(bw, " op=%d", uint64(ev.Op))
			if ev.Parent != 0 {
				fmt.Fprintf(bw, " parent=%d", uint64(ev.Parent))
			}
		}
		for _, a := range ev.ArgSlice() {
			if a.IsStr {
				fmt.Fprintf(bw, " %s=%s", a.Key, a.Str)
			} else {
				fmt.Fprintf(bw, " %s=%g", a.Key, a.Num)
			}
		}
		bw.WriteString(tail)
		bw.WriteByte('\n')
		if ev.Kind == KindBegin {
			depth[ev.Node]++
		}
	}
	if dropped > 0 {
		fmt.Fprintf(bw, "# dropped %d older events (ring overflow)\n", dropped)
	}
	return bw.Flush()
}

// WriteChromeTrace renders events as Chrome trace-event JSON (the
// "JSON Array Format" with a traceEvents wrapper), loadable in Perfetto
// or chrome://tracing. Nodes map to processes; categories map to named
// threads within each node. Spans are emitted as nestable async events
// ("b"/"e" keyed by span id) because Cruz spans cross callbacks and are
// not stack-disciplined per thread.
//
// The writer builds JSON by hand so field and argument order — and hence
// the exact bytes — are deterministic for a given event sequence.
//
// Span Begin events (and linked instants) carry the distributed trace
// context as "op"/"parent" args, so a cross-node operation can be
// reassembled from the export alone.
func WriteChromeTrace(w io.Writer, events []Event) error {
	return writeChromeTrace(w, events, 0)
}

// WriteChromeTrace renders the tracer's ring; when the ring overflowed,
// a top-level "metadata" object reports the dropped-event count (kept
// out of the traceEvents array so viewers ignore it cleanly).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return writeChromeTrace(w, t.Events(), t.Dropped())
}

func writeChromeTrace(w io.Writer, events []Event, dropped uint64) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")

	pids := make(map[string]int)
	tids := make(map[string]int) // "node\x00cat" -> tid within node
	perNode := make(map[string]int)
	first := true
	comma := func() {
		if first {
			first = false
		} else {
			bw.WriteByte(',')
		}
	}
	ids := func(ev *Event) (pid, tid int) {
		pid, ok := pids[ev.Node]
		if !ok {
			pid = len(pids) + 1
			pids[ev.Node] = pid
			comma()
			fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}}",
				pid, strconv.Quote(ev.Node))
		}
		key := ev.Node + "\x00" + ev.Cat
		tid, ok = tids[key]
		if !ok {
			perNode[ev.Node]++
			tid = perNode[ev.Node]
			tids[key] = tid
			comma()
			fmt.Fprintf(bw, "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}",
				pid, tid, strconv.Quote(ev.Cat))
		}
		return pid, tid
	}
	writeArgs := func(ev *Event) {
		bw.WriteString("\"args\":{")
		n := 0
		if (ev.Kind == KindBegin || ev.Kind == KindInstant) && ev.Op != 0 {
			fmt.Fprintf(bw, "\"op\":\"0x%x\"", uint64(ev.Op))
			n++
			if ev.Parent != 0 {
				fmt.Fprintf(bw, ",\"parent\":\"0x%x\"", uint64(ev.Parent))
				n++
			}
		}
		for _, a := range ev.ArgSlice() {
			if n > 0 {
				bw.WriteByte(',')
			}
			n++
			bw.WriteString(strconv.Quote(a.Key))
			bw.WriteByte(':')
			if a.IsStr {
				bw.WriteString(strconv.Quote(a.Str))
			} else {
				bw.WriteString(strconv.FormatFloat(a.Num, 'g', -1, 64))
			}
		}
		bw.WriteString("}}")
	}

	for i := range events {
		ev := &events[i]
		pid, tid := ids(ev)
		ts := strconv.FormatFloat(float64(ev.At)/1e3, 'f', 3, 64) // µs
		comma()
		switch ev.Kind {
		case KindBegin, KindEnd:
			ph := "b"
			if ev.Kind == KindEnd {
				ph = "e"
			}
			fmt.Fprintf(bw, "{\"name\":%s,\"cat\":%s,\"ph\":%q,\"id\":\"0x%x\",\"ts\":%s,\"pid\":%d,\"tid\":%d,",
				strconv.Quote(ev.Name), strconv.Quote(ev.Cat), ph, uint64(ev.Span), ts, pid, tid)
			writeArgs(ev)
		case KindCounter:
			fmt.Fprintf(bw, "{\"name\":%s,\"cat\":%s,\"ph\":\"C\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"value\":%s}}",
				strconv.Quote(ev.Name), strconv.Quote(ev.Cat), ts, pid, tid,
				strconv.FormatFloat(ev.Value, 'g', -1, 64))
		default:
			fmt.Fprintf(bw, "{\"name\":%s,\"cat\":%s,\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%d,",
				strconv.Quote(ev.Name), strconv.Quote(ev.Cat), ts, pid, tid)
			writeArgs(ev)
		}
	}
	bw.WriteString("],\"displayTimeUnit\":\"ms\"")
	if dropped > 0 {
		fmt.Fprintf(bw, ",\"metadata\":{\"droppedEvents\":%d}", dropped)
	}
	bw.WriteString("}\n")
	return bw.Flush()
}
