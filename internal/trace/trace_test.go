package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cruz/internal/sim"
)

func newTestTracer(capacity int) (*sim.Engine, *Tracer) {
	e := sim.NewEngine(1)
	return e, New(e, Config{Capacity: capacity, SampleEvery: -1})
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Instant("n", "c", "x")
	tr.Counter("n", "c", "x", 1)
	sp := tr.Begin("n", "c", "x")
	if sp.Active() {
		t.Fatal("nil tracer span reports active")
	}
	sp.End()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.OpenSpans() != 0 {
		t.Fatal("nil tracer reports nonzero state")
	}
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil tracer returned events: %v", evs)
	}
}

func TestFromEngine(t *testing.T) {
	e := sim.NewEngine(1)
	if tr := FromEngine(e); tr != nil {
		t.Fatal("expected nil tracer from bare engine")
	}
	tr := New(e, Config{})
	if got := FromEngine(e); got != tr {
		t.Fatalf("FromEngine = %p, want %p", got, tr)
	}
}

func TestRingWraparound(t *testing.T) {
	e, tr := newTestTracer(8)
	for i := 0; i < 20; i++ {
		e.Schedule(sim.Duration(i)*sim.Millisecond, func() {})
	}
	i := 0
	for e.Step() {
		tr.Counter("n", "c", "tick", float64(i))
		i++
	}
	if tr.Len() != 8 {
		t.Fatalf("Len = %d, want 8", tr.Len())
	}
	if tr.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("Events len = %d, want 8", len(evs))
	}
	// The surviving events are the newest 12..19, in order.
	for j, ev := range evs {
		if want := float64(12 + j); ev.Value != want {
			t.Fatalf("event %d value = %v, want %v", j, ev.Value, want)
		}
		if j > 0 && evs[j].At < evs[j-1].At {
			t.Fatalf("events out of order at %d: %v < %v", j, evs[j].At, evs[j-1].At)
		}
	}
}

func TestNestedSpans(t *testing.T) {
	e, tr := newTestTracer(0)
	outer := tr.Begin("node0", "test", "outer", Str("k", "v"))
	var inner Span
	e.Schedule(sim.Millisecond, func() {
		inner = tr.Begin("node0", "test", "inner")
	})
	e.Schedule(2*sim.Millisecond, func() {
		inner.End(Int("bytes", 42))
	})
	e.Schedule(3*sim.Millisecond, func() {
		outer.End()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.OpenSpans() != 0 {
		t.Fatalf("OpenSpans = %d after all ends, want 0", tr.OpenSpans())
	}
	evs := tr.Events()
	// Begin/End pairs must match by span id with End.At >= Begin.At, and
	// the End must carry the Begin's identity (node/cat/name).
	begins := make(map[SpanID]Event)
	for _, ev := range evs {
		switch ev.Kind {
		case KindBegin:
			begins[ev.Span] = ev
		case KindEnd:
			b, ok := begins[ev.Span]
			if !ok {
				t.Fatalf("end without begin: %+v", ev)
			}
			if ev.At < b.At {
				t.Fatalf("end before begin: %+v", ev)
			}
			if ev.Node != b.Node || ev.Cat != b.Cat || ev.Name != b.Name {
				t.Fatalf("end identity mismatch: begin %+v end %+v", b, ev)
			}
			delete(begins, ev.Span)
		}
	}
	if len(begins) != 0 {
		t.Fatalf("%d begins without ends", len(begins))
	}
	// Idempotent End: a second End must not emit another event.
	n := tr.Len()
	outer.End()
	if tr.Len() != n {
		t.Fatal("double End emitted an event")
	}
	if outer.Active() {
		t.Fatal("ended span reports active")
	}
}

// chromeTrace mirrors the Chrome trace-event JSON schema the exporter
// must produce.
type chromeTrace struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Cat   string         `json:"cat"`
		Ph    string         `json:"ph"`
		Ts    float64        `json:"ts"`
		Pid   int            `json:"pid"`
		Tid   int            `json:"tid"`
		ID    string         `json:"id"`
		Scope string         `json:"scope"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestChromeTraceExport(t *testing.T) {
	e, tr := newTestTracer(0)
	sp := tr.Begin("node0", "phase", "write", Int("bytes", 1024))
	e.Schedule(5*sim.Millisecond, func() {
		tr.Instant("node0", "tcp", "rto", Str("conn", "a->b"))
		tr.Counter("node1", "sim", "queue_depth", 3)
		sp.End()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v\n%s", err, buf.String())
	}
	if ct.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", ct.DisplayTimeUnit)
	}
	var kinds = map[string]int{}
	for _, ev := range ct.TraceEvents {
		kinds[ev.Ph]++
		switch ev.Ph {
		case "b", "e":
			if ev.ID == "" {
				t.Fatalf("async event without id: %+v", ev)
			}
		case "M":
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				t.Fatalf("unexpected metadata event %q", ev.Name)
			}
		}
	}
	for _, ph := range []string{"b", "e", "i", "C", "M"} {
		if kinds[ph] == 0 {
			t.Fatalf("no %q events in export: %v", ph, kinds)
		}
	}
	// The begin event must carry its args.
	found := false
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "b" && ev.Name == "write" {
			found = true
			if ev.Args["bytes"] != float64(1024) {
				t.Fatalf("begin args = %v", ev.Args)
			}
		}
	}
	if !found {
		t.Fatal("write begin event missing")
	}
}

func TestTimelineExport(t *testing.T) {
	e, tr := newTestTracer(0)
	sp := tr.Begin("node0", "phase", "capture")
	e.Schedule(sim.Millisecond, func() { sp.End() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"capture", "node0", "phase"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestStepHookCounters(t *testing.T) {
	e := sim.NewEngine(1)
	tr := New(e, Config{SampleEvery: 2})
	for i := 0; i < 10; i++ {
		e.Schedule(sim.Duration(i+1)*sim.Millisecond, func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var fired, depth int
	for _, ev := range tr.Events() {
		if ev.Kind != KindCounter {
			continue
		}
		switch ev.Name {
		case "events_fired":
			fired++
		case "queue_depth":
			depth++
		}
	}
	if fired == 0 || depth == 0 {
		t.Fatalf("step hook emitted fired=%d depth=%d samples", fired, depth)
	}
}

func TestPhaseBreakdown(t *testing.T) {
	e, tr := newTestTracer(0)
	op := tr.Begin("node0", "core", "agent.checkpoint")
	q := tr.Begin("node0", PhaseCat, "quiesce")
	e.Schedule(2*sim.Millisecond, func() {
		q.End()
		w := tr.Begin("node0", PhaseCat, "write")
		e.Schedule(8*sim.Millisecond, func() {
			w.End()
			op.End()
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rep := PhaseBreakdown(tr.Events())
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %+v", rep.Rows)
	}
	if rep.Rows[0].Phase != "quiesce" || rep.Rows[1].Phase != "write" {
		t.Fatalf("phase order = %q, %q", rep.Rows[0].Phase, rep.Rows[1].Phase)
	}
	if rep.Rows[0].MeanMs != 2 || rep.Rows[1].MeanMs != 8 {
		t.Fatalf("phase means = %v, %v", rep.Rows[0].MeanMs, rep.Rows[1].MeanMs)
	}
	if rep.OpCount != 1 || rep.OpMeanMs != 10 {
		t.Fatalf("op stats = %d, %v", rep.OpCount, rep.OpMeanMs)
	}
	if !strings.Contains(rep.Format(), "end-to-end") {
		t.Fatalf("report missing end-to-end row:\n%s", rep.Format())
	}
}
